package main

import (
	"os"
	"testing"
)

// TestMainSmoke drives the CLI end to end on the scenario warehouse:
// flag parsing, the Role:Level group/filter grammar, integration feed,
// query execution and formatting. The OLAP engine itself is pinned in
// internal/dw; this guards the flag wiring.
func TestMainSmoke(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{
		"olapcli",
		"-fact", "LastMinuteSales",
		"-measure", "Price",
		"-agg", "sum",
		"-group", "Destination:City",
		"-group", "Date:Month",
		"-filter", "Destination:Country=Spain",
	}
	main()
}

func TestSplitRoleLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		role string
		lvl  string
		ok   bool
	}{
		{"Destination:City", "Destination", "City", true},
		{"Date:Month", "Date", "Month", true},
		{"NoColon", "", "", false},
		{":City", "", "", false},
		{"Role:", "", "", false},
	} {
		role, lvl, ok := splitRoleLevel(tc.in)
		if role != tc.role || lvl != tc.lvl || ok != tc.ok {
			t.Errorf("splitRoleLevel(%q) = %q, %q, %v; want %q, %q, %v",
				tc.in, role, lvl, ok, tc.role, tc.lvl, tc.ok)
		}
	}
}
