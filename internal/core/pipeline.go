package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwqa/internal/dw"
	"dwqa/internal/engine"
	"dwqa/internal/etl"
	"dwqa/internal/ir"
	"dwqa/internal/mdm"
	"dwqa/internal/merge"
	"dwqa/internal/nl2olap"
	"dwqa/internal/obs"
	"dwqa/internal/ontology"
	"dwqa/internal/qa"
	"dwqa/internal/store"
	"dwqa/internal/uml2onto"
	"dwqa/internal/webcorpus"
	"dwqa/internal/wordnet"
)

// Config parameterises a pipeline run.
type Config struct {
	Seed   int64
	Year   int
	Months []int

	// ScaleFactor multiplies the synthetic sales demand (0 or 1 keeps the
	// paper's scenario size; large values generate 100k+ fact rows for the
	// scaling benchmarks — see PopulateScenarioScaled).
	ScaleFactor int

	// QA holds the ablation switches forwarded to the QA system.
	QA qa.Config

	// TableAware selects the future-work table pre-processing when
	// extracting text from web pages (experiment E-TBL).
	TableAware bool

	// Corpus overrides the web corpus configuration; zero value uses the
	// scenario default derived from Year/Months.
	Corpus *webcorpus.Config

	// HarvestPassages widens Module 2's passage budget during Step 5
	// harvesting (a month of daily records needs more passages than a
	// single-answer question).
	HarvestPassages int

	// PassageSize overrides the IR-n sentence-window size (0 keeps the
	// paper's eight consecutive sentences, footnote 6). The E-PSIZE
	// ablation sweeps it.
	PassageSize int

	// Engine sizes the concurrent serving layer returned by
	// Pipeline.Engine (worker count, answer-cache capacity, admission
	// and deadline limits). The zero value selects the engine sizing
	// defaults but DISABLES admission control and default deadlines:
	// the pipeline is the library surface, where batches are as large
	// as the caller wants, and serving limits are the serving command's
	// decision (cmd/dwqa serve sets them from flags). Set the fields
	// explicitly to opt limits in.
	Engine engine.Config
}

// DefaultConfig is the paper's evaluated configuration: everything on.
func DefaultConfig() Config {
	return Config{
		Seed:            42,
		Year:            2004,
		Months:          []int{1, 2, 3},
		QA:              qa.DefaultConfig(),
		HarvestPassages: 150,
	}
}

// Pipeline holds every system of the integration: the warehouse side, the
// QA side, and the shared ontology between them. Steps must run in order;
// RunAll does so.
//
// Once Step 4 has run, Ask, AskAll and Step5FeedWarehouse are safe to
// call concurrently from any number of goroutines — the serving scenario
// of answering user questions while a feed refreshes the warehouse. The
// setup steps themselves (1-4) are not concurrent with each other.
type Pipeline struct {
	Config Config

	Schema    *mdm.Schema
	Warehouse *dw.Warehouse
	Corpus    *webcorpus.Corpus
	Index     *ir.Index
	Lexicon   *wordnet.WordNet

	Ontology    *ontology.Ontology // created by Step 1
	MergeReport *merge.Report      // created by Step 3
	QA          *qa.System         // created by Step 4
	Loader      *etl.Loader        // created by Step 5
	LoadReport  *etl.Report        // result of Step 5

	step atomic.Int32 // highest completed step

	mu        sync.Mutex          // guards eng/trans/Loader creation and LoadReport writes
	eng       *engine.Engine      // lazily built by Engine()
	trans     *nl2olap.Translator // lazily built by Translator()
	transOnto *ontology.Ontology  // the lexicon trans was built over

	st       *store.Store        // durable store (durable.go); nil in-memory
	recovery *store.RecoveryInfo // what OpenPipeline recovered; nil in-memory
}

// NewPipeline builds the scenario environment: the Figure 1 schema, the
// populated warehouse, the web corpus and the passage index (the
// indexation phase of Figure 3). No integration step has run yet.
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg = normalizeConfig(cfg)
	schema := Figure1Schema()
	wh, err := dw.New(schema)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := PopulateScenarioScaled(wh, cfg.Year, cfg.Months, cfg.Seed, cfg.ScaleFactor); err != nil {
		return nil, fmt.Errorf("core: populating scenario: %w", err)
	}
	corpus := webcorpus.Build(corpusConfig(cfg))
	var opts []ir.Option
	if cfg.PassageSize > 0 {
		opts = append(opts, ir.WithPassageSize(cfg.PassageSize))
	}
	index := ir.NewIndex(opts...)
	if err := index.AddAll(corpus.Documents(cfg.TableAware)); err != nil {
		return nil, fmt.Errorf("core: indexing corpus: %w", err)
	}
	return &Pipeline{
		Config:    cfg,
		Schema:    schema,
		Warehouse: wh,
		Corpus:    corpus,
		Index:     index,
		Lexicon:   wordnet.Seed(),
	}, nil
}

// corpusConfig derives the web-corpus configuration from a pipeline
// config — shared by NewPipeline and the recovery path (durable.go), so
// a recovered boot rebuilds exactly the corpus metadata the index was
// built over.
func corpusConfig(cfg Config) webcorpus.Config {
	ccfg := webcorpus.DefaultConfig()
	ccfg.Year = cfg.Year
	ccfg.Months = cfg.Months
	ccfg.Seed = cfg.Seed
	if cfg.Corpus != nil {
		ccfg = *cfg.Corpus
	}
	return ccfg
}

// normalizeConfig fills the config defaults NewPipeline and the recovery
// path both rely on.
func normalizeConfig(cfg Config) Config {
	if cfg.Year == 0 {
		cfg.Year = 2004
	}
	if len(cfg.Months) == 0 {
		cfg.Months = []int{1, 2, 3}
	}
	if cfg.HarvestPassages <= 0 {
		cfg.HarvestPassages = 40
	}
	return cfg
}

func (p *Pipeline) require(step int) error {
	if int(p.step.Load()) < step {
		return fmt.Errorf("core: step %d requires step %d to have run", step+1, step)
	}
	return nil
}

// Step1DeriveOntology obtains the domain ontology from the UML
// multidimensional model (Figure 1 → Figure 2).
func (p *Pipeline) Step1DeriveOntology() error {
	o, err := uml2onto.Transform(p.Schema)
	if err != nil {
		return err
	}
	p.Ontology = o
	p.step.Store(1)
	return nil
}

// Step2FeedOntology feeds the ontology with the contents of the DW: every
// airport member becomes an Airport instance (with its city), every city a
// City instance, exactly as the paper enriches "Airport" with "JFK",
// "John Wayne" and "La Guardia".
func (p *Pipeline) Step2FeedOntology() error {
	if err := p.require(1); err != nil {
		return err
	}
	if err := feedOntologyFromMembers(p.Ontology, p.Warehouse); err != nil {
		return err
	}
	p.step.Store(2)
	return nil
}

// memberSource is the dimension read surface Step 2 extracts instances
// from — a single warehouse or a shard cluster (whose dimensions are
// replicated, so either answers identically).
type memberSource interface {
	Members(dim, level string) []string
	ParentName(dim, level, name string) (string, error)
	MemberKey(dim, level, name string) (int, error)
	Member(dim, level string, key int) (dw.Member, error)
}

// feedOntologyFromMembers performs the Step 2 extraction: every airport
// member becomes an Airport instance (with its city and alias/IATA
// names), every city a City instance, every country a Country instance.
func feedOntologyFromMembers(o *ontology.Ontology, wh memberSource) error {
	for _, name := range wh.Members("Airport", "Airport") {
		city, err := wh.ParentName("Airport", "Airport", name)
		if err != nil {
			return fmt.Errorf("core: step 2: %w", err)
		}
		key, _ := wh.MemberKey("Airport", "Airport", name)
		m, _ := wh.Member("Airport", "Airport", key)
		var aliases []string
		if alias := m.Attrs["Alias"]; alias != "" {
			aliases = append(aliases, alias)
		}
		if iata := m.Attrs["IATA"]; iata != "" && iata != name {
			aliases = append(aliases, iata)
		}
		o.AddInstance("Airport", ontology.Instance{
			Name:       name,
			Aliases:    aliases,
			Properties: map[string]string{"locatedIn": city},
		})
	}
	for _, city := range wh.Members("Airport", "City") {
		country, err := wh.ParentName("Airport", "City", city)
		if err != nil {
			return fmt.Errorf("core: step 2: %w", err)
		}
		o.AddInstance("City", ontology.Instance{
			Name:       city,
			Properties: map[string]string{"locatedIn": country},
		})
	}
	for _, country := range wh.Members("Airport", "Country") {
		o.AddInstance("Country", ontology.Instance{Name: country})
	}
	return nil
}

// Step3MergeUpperOntology merges the enriched domain ontology into the
// QA system's upper ontology (WordNet). With QA.UseOntology off (the
// E-ONTO ablation) the merge is skipped and the lexicon stays untuned.
func (p *Pipeline) Step3MergeUpperOntology() error {
	if err := p.require(2); err != nil {
		return err
	}
	if p.Config.QA.UseOntology {
		rep, err := merge.Merge(p.Ontology, p.Lexicon)
		if err != nil {
			return err
		}
		p.MergeReport = rep
	} else {
		p.MergeReport = &merge.Report{Mapping: map[string]string{}}
	}
	p.step.Store(3)
	return nil
}

// TemperatureAxioms returns the Step 4 axiomatic knowledge: a temperature
// is a number followed by the scale (ºC or F), valid in [-90, 60] ºC, with
// the Celsius↔Fahrenheit conversion formula.
func TemperatureAxioms() []ontology.Axiom {
	return []ontology.Axiom{
		{Concept: "Temperature", Kind: ontology.AxiomValueFormat, Units: []string{"ºC", "F"}},
		{Concept: "Temperature", Kind: ontology.AxiomValueRange, Unit: "C", Min: -90, Max: 60},
		{Concept: "Temperature", Kind: ontology.AxiomUnitConversion, FromUnit: "C", ToUnit: "F", Scale: 1.8, Offset: 32},
	}
}

// Step4TuneQA tunes the QA system to the new query types: the Temperature
// concept receives its axioms and the weather question patterns are
// installed.
func (p *Pipeline) Step4TuneQA() error {
	if err := p.require(3); err != nil {
		return err
	}
	for _, a := range TemperatureAxioms() {
		if err := p.Ontology.AddAxiom(a); err != nil {
			return err
		}
	}
	sys, err := qa.NewSystem(p.Lexicon, p.qaOntology(), p.Index, p.Config.QA)
	if err != nil {
		return err
	}
	sys.TunePatterns(qa.WeatherPatterns()...)
	p.QA = sys
	p.step.Store(4)
	return nil
}

// WeatherQuestions generates the Step 5 query workload: one month-level
// weather question per (destination airport, covered month), phrased like
// the paper's examples.
func (p *Pipeline) WeatherQuestions() []string {
	var qs []string
	for _, a := range ScenarioAirports {
		if _, ok := p.Corpus.Weather[a.City]; !ok {
			continue
		}
		for _, month := range p.Config.Months {
			qs = append(qs, fmt.Sprintf("What is the weather like in %s of %d in %s?",
				time.Month(month), p.Config.Year, a.Name))
		}
	}
	return qs
}

// StepResult carries per-question Step 5 outcomes.
type StepResult struct {
	Question string
	Answers  int
}

// Step5FeedWarehouse runs the harvest questions through the QA system and
// loads every well-formed (temperature – date – city – web page) record
// into the Weather fact. The harvest runs on the serving engine's worker
// pool: answers are extracted concurrently per question and committed in
// one batch load, in question order, so the outcome matches the
// sequential harvest-and-load loop exactly.
func (p *Pipeline) Step5FeedWarehouse(questions []string) ([]StepResult, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	if len(questions) == 0 {
		// An explicitly empty workload feeds nothing (the engine-level
		// default-workload fallback is for the serving API only).
		p.mu.Lock()
		p.LoadReport = &etl.Report{}
		p.mu.Unlock()
		p.step.Store(5)
		return nil, nil
	}
	items, total, err := eng.HarvestAll(context.Background(), questions)
	if err != nil {
		return nil, err
	}
	// The batch is committed at this point: record what loaded even if a
	// question failed, so the warehouse state stays observable.
	p.mu.Lock()
	p.LoadReport = total
	p.mu.Unlock()
	var results []StepResult
	for _, it := range items {
		if it.Err != nil {
			return nil, fmt.Errorf("core: step 5 question %q: %w", it.Question, it.Err)
		}
		results = append(results, StepResult{Question: it.Question, Answers: it.Loaded})
	}
	p.step.Store(5)
	return results, nil
}

// Engine returns the concurrent QA serving layer over the tuned system
// (requires Step 4), creating it on first call. The engine persists
// across Step 5 runs — its loader keeps the dedup state that makes
// repeated feeds idempotent, and its answer cache is invalidated by every
// feed.
func (p *Pipeline) Engine() (*engine.Engine, error) {
	if err := p.require(4); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.eng != nil {
		return p.eng, nil
	}
	if p.Loader == nil {
		loader, err := etl.NewLoader(p.Ontology, p.Warehouse, "Weather", "City", "Date")
		if err != nil {
			return nil, err
		}
		p.Loader = loader
	}
	harvester, err := p.NewHarvester()
	if err != nil {
		return nil, err
	}
	// Library mode: unset limits stay off (see Config.Engine) so bulk
	// callers — evaluation sweeps, corpus benchmarks — are never shed
	// or timed out by serving defaults they did not choose.
	cfg := p.Config.Engine
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = -1
	}
	if cfg.AskTimeout == 0 {
		cfg.AskTimeout = -1
	}
	if cfg.HarvestTimeout == 0 {
		cfg.HarvestTimeout = -1
	}
	eng, err := engine.New(cfg, p.QA, harvester, p.Loader, p.Index)
	if err != nil {
		return nil, err
	}
	eng.SetDefaultHarvest(p.WeatherQuestions())
	// The analytic path: Ask/AskAll classify every question and dispatch
	// analytic ones to the compiled OLAP engine instead of the factoid
	// modules (DESIGN.md §6).
	trans, err := p.translatorLocked()
	if err != nil {
		return nil, err
	}
	eng.SetTranslator(trans)
	// Durable pipelines wire the engine into the store so SnapshotTo and
	// background snapshots work, and /healthz reports recovery stats. The
	// store reports its WAL append/fsync latency into the engine's
	// registry (nil histograms under NoObserve — the store then skips its
	// clock readings).
	if p.st != nil {
		eng.SetDurability(p, p.st, p.recovery)
		p.st.SetMetrics(store.Metrics{
			Append: eng.StageHistogram(obs.StageWALAppend),
			Fsync:  eng.WALFsyncHistogram(),
		})
	}
	p.eng = eng
	return eng, nil
}

// NewHarvester builds the Step 5 harvesting system: the tuned QA system
// with the wide harvest passage budget (a month of daily records needs
// more passages than a single-answer question). The serving engine and
// the benchmarks share this recipe so they always measure the system the
// pipeline actually feeds with.
func (p *Pipeline) NewHarvester() (*qa.System, error) {
	harvestCfg := p.Config.QA
	harvestCfg.TopPassages = p.Config.HarvestPassages
	harvester, err := qa.NewSystem(p.Lexicon, p.qaOntology(), p.Index, harvestCfg)
	if err != nil {
		return nil, err
	}
	harvester.TunePatterns(qa.WeatherPatterns()...)
	return harvester, nil
}

// AskAll answers a batch of questions concurrently on the serving
// engine's worker pool (requires Step 4). Results are in input order;
// for every distinct surface form the result matches what a sequential
// Ask call would return, and questions that normalise identically share
// the first form's result (see engine.NormalizeQuestion). Previously
// answered questions are served from the engine's cache.
func (p *Pipeline) AskAll(questions []string) ([]engine.AskResult, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.AskAll(context.Background(), questions), nil
}

// qaOntology returns the ontology handed to QA systems: nil when the
// ontology ablation is on keeps even axiom access away.
func (p *Pipeline) qaOntology() *ontology.Ontology {
	if !p.Config.QA.UseOntology {
		return nil
	}
	return p.Ontology
}

// RunAll executes the five steps with the default question workload.
func (p *Pipeline) RunAll() error {
	if err := p.Step1DeriveOntology(); err != nil {
		return err
	}
	if err := p.Step2FeedOntology(); err != nil {
		return err
	}
	if err := p.Step3MergeUpperOntology(); err != nil {
		return err
	}
	if err := p.Step4TuneQA(); err != nil {
		return err
	}
	_, err := p.Step5FeedWarehouse(p.WeatherQuestions())
	return err
}

// Ask answers one question through the tuned QA system (requires
// Step 4). This is the raw factoid path; the serving surfaces (AskAll,
// AskOLAP, the HTTP API) classify each question first and dispatch
// analytic ones to the compiled OLAP engine instead.
func (p *Pipeline) Ask(question string) (*qa.Result, error) {
	if err := p.require(4); err != nil {
		return nil, err
	}
	return p.QA.Answer(question)
}

// Table1 reproduces the paper's Table 1 trace for a question (by default
// the paper's own query).
func (p *Pipeline) Table1(question string) (qa.Trace, error) {
	if question == "" {
		question = "What is the weather like in January of 2004 in El Prat?"
	}
	res, err := p.Ask(question)
	if err != nil {
		return qa.Trace{}, err
	}
	return res.Trace(), nil
}

// Summary renders a human-readable pipeline summary.
func (p *Pipeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline (seed %d, year %d, months %v)\n", p.Config.Seed, p.Config.Year, p.Config.Months)
	fmt.Fprintf(&b, "  warehouse: %d sales rows, %d weather rows\n",
		p.Warehouse.FactCount("LastMinuteSales"), p.Warehouse.FactCount("Weather"))
	fmt.Fprintf(&b, "  corpus: %d pages, %d passages indexed\n", len(p.Corpus.Pages), p.Index.PassageCount())
	if p.Ontology != nil {
		fmt.Fprintf(&b, "  ontology: %d concepts, %d instances\n", p.Ontology.Size(), p.Ontology.InstanceCount())
	}
	if p.MergeReport != nil {
		fmt.Fprintf(&b, "  %s\n", p.MergeReport)
	}
	p.mu.Lock()
	load := p.LoadReport
	p.mu.Unlock()
	if load != nil {
		fmt.Fprintf(&b, "  %s\n", load)
	}
	return b.String()
}
