package engine_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dwqa/internal/core"
	"dwqa/internal/engine"
)

// newDurableServer boots a durable pipeline in a temp directory, feeds
// it, restarts it (so recovery fields are populated) and serves it.
func newDurableServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Months = []int{1}
	dir := t.TempDir()
	p, _, err := core.OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	if err := p.Store().Close(); err != nil {
		t.Fatal(err)
	}
	p, info, err := core.OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Store().Close() })
	if !info.Recovered || info.WALReplayed == 0 {
		t.Fatalf("expected snapshot+WAL recovery, got %+v", info)
	}
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)
	return srv, eng
}

// TestHealthzDurability checks the recovery observability surface: a
// restarted server reports warehouse sizing, boot replay counts and —
// after a snapshot — the last-snapshot timestamp.
func TestHealthzDurability(t *testing.T) {
	srv, eng := newDurableServer(t)

	getHealthz := func() map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		return payload
	}

	payload := getHealthz()
	if payload["status"] != "ok" {
		t.Fatalf("status = %v", payload["status"])
	}
	if payload["durable"] != true || payload["recovered"] != true {
		t.Fatalf("durability flags missing: %+v", payload)
	}
	for _, field := range []string{"members", "fact_rows", "passages", "documents", "wal_replayed"} {
		n, ok := payload[field].(float64)
		if !ok || n <= 0 {
			t.Fatalf("healthz %s = %v, want a positive count (payload %+v)", field, payload[field], payload)
		}
	}
	if _, present := payload["last_snapshot"]; present {
		t.Fatalf("last_snapshot present before any snapshot this run: %v", payload["last_snapshot"])
	}

	// After a snapshot the timestamp appears (and parses).
	if _, err := eng.SnapshotTo(); err != nil {
		t.Fatal(err)
	}
	payload = getHealthz()
	ts, ok := payload["last_snapshot"].(string)
	if !ok {
		t.Fatalf("last_snapshot missing after SnapshotTo: %+v", payload)
	}
	if _, err := time.Parse(time.RFC3339, ts); err != nil {
		t.Fatalf("last_snapshot %q is not RFC 3339: %v", ts, err)
	}
}

// TestSnapshotToWithoutDurability pins the error path for in-memory
// engines.
func TestSnapshotToWithoutDurability(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SnapshotTo(); err == nil {
		t.Fatal("SnapshotTo succeeded without a store")
	}
}

// TestSnapshotEvery checks the background snapshot loop publishes and
// stops cleanly.
func TestSnapshotEvery(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Months = []int{1}
	p, _, err := core.OpenPipeline(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Store().Close()
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	stop := eng.SnapshotEvery(5*time.Millisecond, func(err error) { t.Errorf("background snapshot: %v", err) })
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().LastSnapshot == "" {
		if time.Now().After(deadline) {
			t.Fatal("background snapshot never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
