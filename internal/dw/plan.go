package dw

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// ---------------------------------------------------------------------------
// Memoised roll-up lookup arrays.
//
// rollUpKeyLocked walks the parent chain per row per query — O(pathLen) map
// and slice hops for every fact row. The compiled engine instead resolves a
// whole (dimension, level) pair once into a dense lookup array mapping every
// base-level surrogate key to its ancestor key at the target level (-1 for
// broken chains). Arrays are memoised on the warehouse and invalidated
// whenever a member write could change them.
// ---------------------------------------------------------------------------

type rollupMemoKey struct{ dim, level string }

// rollupTableLocked returns the memoised base→level lookup array. Callers
// must hold w.mu (read or write). The memo has its own mutex so concurrent
// readers can share freshly built tables; lock order is always w.mu before
// w.memoMu.
func (w *Warehouse) rollupTableLocked(dim, level string) []int32 {
	key := rollupMemoKey{dim, level}
	w.memoMu.Lock()
	defer w.memoMu.Unlock()
	if t, ok := w.rollups[key]; ok {
		return t
	}
	t := w.buildRollupLocked(dim, level)
	if w.rollups == nil {
		w.rollups = make(map[rollupMemoKey][]int32)
	}
	w.rollups[key] = t
	return t
}

// buildRollupLocked composes the parent links level by level along the
// roll-up path, mirroring rollUpKeyLocked's semantics exactly.
func (w *Warehouse) buildRollupLocked(dim, level string) []int32 {
	dd := w.dims[dim]
	path := dd.class.PathTo(level)
	if path == nil {
		return nil
	}
	base := dd.levels[path[0]]
	out := make([]int32, len(base.members))
	for k := range out {
		out[k] = int32(k)
	}
	for i := 0; i < len(path)-1; i++ {
		lt := dd.levels[path[i]]
		for j, k := range out {
			if k < 0 || int(k) >= len(lt.members) {
				out[j] = int32(NoParent)
				continue
			}
			out[j] = int32(lt.members[k].Parent)
		}
	}
	return out
}

// invalidateRollups drops every memoised lookup array. Called under w.mu
// whenever a member write could change a parent chain or level cardinality.
func (w *Warehouse) invalidateRollups() {
	w.memoMu.Lock()
	w.rollups = nil
	w.memoMu.Unlock()
}

// ---------------------------------------------------------------------------
// Compiled query plans.
//
// compilePlan resolves every role, level, filter value and measure of a
// query exactly once, so the scan is pure array indexing: per row, each
// filter is two array loads and a bool test, each group-by is two array
// loads folded into a dense composite integer key. No maps, no strings, no
// per-row allocation on the hot path.
// ---------------------------------------------------------------------------

type planGroup struct {
	col    []int32  // coordinate column of the role
	lookup []int32  // base key → target-level key (-1 = unknown)
	names  []string // target-level member names by key
	card   uint64   // len(names)+1; slot 0 encodes "(unknown)"
}

// planFilter evaluates one filter branch-free. The compile step folds the
// rollup lookup and the allowed-value set into two tables arranged so the
// scan needs no per-row conditional: slot maps a (clamped) base key to
// target key+1 with 0 as the "unknown/out-of-range" sentinel, and bits is
// a bitset over those slots whose bit 0 is never set — so the sentinel
// always tests as filtered, and one shift+mask per filter replaces the
// three-way bounds-and-membership branch chain.
type planFilter struct {
	col  []int32
	slot []int32  // base key → target key+1; last entry is the 0 sentinel
	bits []uint64 // allowed-slot bitset; bit 0 (sentinel) always clear
}

type plan struct {
	q       Query
	nRows   int
	measure []float64 // nil for Count (the value is never read)
	groups  []planGroup
	filters []planFilter
	// cells is the product of group cardinalities: the size of the dense
	// aggregation table, or the key space of the sparse one.
	cells uint64
	// overflow marks a key space beyond uint64: composite keys would wrap
	// and merge distinct groups, so Execute must fall back to the
	// reference engine's string keys.
	overflow bool
}

// planCell accumulates one group's aggregates. count==0 marks an untouched
// dense slot.
type planCell struct {
	sum   float64
	count int
	min   float64
	max   float64
}

func (c *planCell) add(v float64) {
	if c.count == 0 {
		c.min = math.Inf(1)
		c.max = math.Inf(-1)
	}
	c.sum += v
	c.count++
	if v < c.min {
		c.min = v
	}
	if v > c.max {
		c.max = v
	}
}

func (c *planCell) merge(o planCell) {
	if o.count == 0 {
		return
	}
	if c.count == 0 {
		*c = o
		return
	}
	c.sum += o.sum
	c.count += o.count
	if o.min < c.min {
		c.min = o.min
	}
	if o.max > c.max {
		c.max = o.max
	}
}

// compilePlanLocked builds the execution plan for a validated query.
// Callers must hold w.mu.
func (w *Warehouse) compilePlanLocked(q Query, fd *factData, roleDim map[string]string) *plan {
	p := &plan{q: q, nRows: fd.rows, cells: 1}
	if q.Agg != Count {
		p.measure = fd.measureColumn(q.Measure)
	}
	for _, g := range q.GroupBy {
		dim := roleDim[g.Role]
		lt := w.dims[dim].levels[g.Level]
		names := make([]string, len(lt.members))
		for i := range lt.members {
			names[i] = lt.members[i].Name
		}
		pg := planGroup{
			col:    fd.roleColumn(g.Role),
			lookup: w.rollupTableLocked(dim, g.Level),
			names:  names,
			card:   uint64(len(names)) + 1,
		}
		if p.cells > math.MaxUint64/pg.card {
			p.overflow = true
		}
		p.cells *= pg.card
		p.groups = append(p.groups, pg)
	}
	for _, f := range q.Filters {
		dim := roleDim[f.Role]
		lt := w.dims[dim].levels[f.Level]
		lookup := w.rollupTableLocked(dim, f.Level)
		// slot has one extra entry: scanChunk clamps any out-of-range base
		// key (including negatives via unsigned wrap) onto it, and its
		// value stays 0 — the sentinel slot whose bit is never set.
		slot := make([]int32, len(lookup)+1)
		for i, t := range lookup {
			if t >= 0 && int(t) < len(lt.members) {
				slot[i] = t + 1
			}
		}
		bits := make([]uint64, (len(lt.members)+1+63)/64)
		for _, v := range f.Values {
			if key, ok := lt.byName[v]; ok {
				b := uint32(key) + 1
				bits[b>>6] |= 1 << (b & 63)
			}
		}
		p.filters = append(p.filters, planFilter{
			col:  fd.roleColumn(f.Role),
			slot: slot,
			bits: bits,
		})
	}
	return p
}

// planChunkSize is fixed (not derived from GOMAXPROCS) so chunk boundaries
// — and therefore the floating-point association order of the merged sums —
// are identical on every machine and at every parallelism level.
const planChunkSize = 8192

// denseCellLimit bounds the dense aggregation table; beyond it the scan
// falls back to a sparse map keyed by the same composite integer.
const denseCellLimit = 1 << 16

// chunkDenseLimit bounds a per-chunk dense table: a chunk touches at most
// planChunkSize groups, so a dense table much larger than that wastes
// zeroing and merge sweeps — such chunks go sparse even when the final
// accumulator is dense.
const chunkDenseLimit = 2 * planChunkSize

// partial holds aggregates: dense when the group-key space is small,
// sparse otherwise.
type partial struct {
	dense  []planCell
	sparse map[uint64]*planCell
}

func newPartial(cells, denseLimit uint64) *partial {
	if cells <= denseLimit {
		return &partial{dense: make([]planCell, cells)}
	}
	return &partial{sparse: make(map[uint64]*planCell)}
}

func (pt *partial) cell(key uint64) *planCell {
	if pt.dense != nil {
		return &pt.dense[key]
	}
	c, ok := pt.sparse[key]
	if !ok {
		c = &planCell{}
		pt.sparse[key] = c
	}
	return c
}

// mergeFrom folds another partial in. Distinct keys never interact, so the
// per-cell association order is the order of mergeFrom calls (chunk order)
// regardless of the sparse map's iteration order — determinism holds.
func (pt *partial) mergeFrom(o *partial) {
	if o.dense != nil {
		for i := range o.dense {
			if o.dense[i].count > 0 {
				pt.cell(uint64(i)).merge(o.dense[i])
			}
		}
		return
	}
	for k, c := range o.sparse {
		pt.cell(k).merge(*c)
	}
}

// scanChunk aggregates rows [start, end) into pt. Filter evaluation is
// branch-free: each filter contributes one allowed/filtered bit folded
// into pass with mask arithmetic (the index clamp compiles to a
// conditional move), so the row loop carries a single filter branch —
// the final pass test — however many filters the query has.
func (p *plan) scanChunk(pt *partial, start, end int) {
	for r := start; r < end; r++ {
		pass := uint64(1)
		for fi := range p.filters {
			f := &p.filters[fi]
			k := uint32(f.col[r]) // negatives wrap to huge values and clamp
			if k >= uint32(len(f.slot)) {
				k = uint32(len(f.slot)) - 1
			}
			t := uint32(f.slot[k])
			pass &= f.bits[t>>6] >> (t & 63)
		}
		if pass == 0 {
			continue
		}
		var key, mult uint64 = 0, 1
		for gi := range p.groups {
			g := &p.groups[gi]
			k := g.col[r]
			var slot uint64
			if k >= 0 && int(k) < len(g.lookup) {
				if t := g.lookup[k]; t >= 0 {
					slot = uint64(t) + 1
				}
			}
			key += slot * mult
			mult *= g.card
		}
		var v float64
		if p.measure != nil {
			v = p.measure[r]
		}
		pt.cell(key).add(v)
	}
}

// run executes the plan: the scan is split into fixed-size chunks
// processed in waves of up to GOMAXPROCS workers, and each wave's partial
// aggregates are merged into the accumulator in chunk order before the
// next wave starts — so at most GOMAXPROCS partials are ever live, and the
// per-cell float association order is the chunk order, which keeps the
// result bit-for-bit deterministic regardless of scheduling or core count.
func (p *plan) run() *partial {
	nChunks := (p.nRows + planChunkSize - 1) / planChunkSize
	if nChunks <= 1 {
		pt := newPartial(p.cells, denseCellLimit)
		p.scanChunk(pt, 0, p.nRows)
		return pt
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	total := newPartial(p.cells, denseCellLimit)
	wave := make([]*partial, workers)
	for base := 0; base < nChunks; base += workers {
		n := workers
		if base+n > nChunks {
			n = nChunks - base
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := (base + i) * planChunkSize
				end := start + planChunkSize
				if end > p.nRows {
					end = p.nRows
				}
				pt := newPartial(p.cells, chunkDenseLimit)
				p.scanChunk(pt, start, end)
				wave[i] = pt
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			total.mergeFrom(wave[i])
			wave[i] = nil
		}
	}
	return total
}

// materialize turns the aggregate table into a sorted Result, decoding each
// composite key back into member names.
func (p *plan) materialize(pt *partial) *Result {
	cells := p.materializeCells(pt)
	res := &Result{Query: p.q}
	for i := range cells {
		c := &cells[i]
		res.Rows = append(res.Rows, Row{Groups: c.Groups, Value: finalValue(p.q.Agg, c), Count: c.Count})
	}
	return res
}

// materializeCells decodes the aggregate table into name-keyed raw cells
// — sorted by group names and coalesced — without applying the final
// aggregation. Execute finalises them directly; a sharded deployment
// ships them to the scatter/gather coordinator instead (scatter.go).
func (p *plan) materializeCells(pt *partial) []CellRow {
	type named struct {
		groups []string
		c      planCell
	}
	var cells []named
	emit := func(key uint64, c *planCell) {
		groups := make([]string, len(p.groups))
		for i := range p.groups {
			g := &p.groups[i]
			slot := key % g.card
			key /= g.card
			if slot == 0 {
				groups[i] = "(unknown)"
			} else {
				groups[i] = g.names[slot-1]
			}
		}
		cells = append(cells, named{groups, *c})
	}
	if pt.dense != nil {
		for i := range pt.dense {
			if pt.dense[i].count > 0 {
				emit(uint64(i), &pt.dense[i])
			}
		}
	} else {
		keys := make([]uint64, 0, len(pt.sparse))
		for k := range pt.sparse {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			emit(k, pt.sparse[k])
		}
	}
	less := func(a, b []string) bool {
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	}
	// Sort by group names, matching the reference engine's order (it sorts
	// NUL-joined name strings; elementwise comparison is equivalent because
	// member names never contain NUL).
	sort.Slice(cells, func(i, j int) bool { return less(cells[i].groups, cells[j].groups) })
	// Coalesce adjacent cells with identical names: a member literally
	// named "(unknown)" shares its label with the broken-chain sentinel
	// slot, and the reference engine (keyed by name strings) merges the
	// two; do the same.
	out := make([]CellRow, 0, len(cells))
	for i := 0; i < len(cells); {
		c := cells[i].c
		j := i + 1
		for j < len(cells) && !less(cells[i].groups, cells[j].groups) {
			c.merge(cells[j].c)
			j++
		}
		out = append(out, CellRow{Groups: cells[i].groups, Sum: c.sum, Count: c.count, Min: c.min, Max: c.max})
		i = j
	}
	return out
}
