package seed

import "dwqa/internal/obs"

// ProcessRSS returns the process's current resident set size in bytes,
// and ProcessPeakRSS its lifetime peak. The /proc/self/status reader
// lives in internal/obs (the observability package owns process
// sampling); these wrappers keep the seed package's historical API for
// the memory benchmarks. Both return 0 where procfs is unavailable;
// callers treat 0 as "unknown", never as a measurement.
func ProcessRSS() uint64 { return obs.ProcessRSS() }

// ProcessPeakRSS returns the peak resident set size in bytes (VmHWM).
func ProcessPeakRSS() uint64 { return obs.ProcessPeakRSS() }
