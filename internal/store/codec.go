package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary codec beneath the snapshot and WAL formats: a writer that
// appends to a growing buffer and a reader with a sticky error, so the
// decode paths read field after field and check failure once. All
// integers are varints (zigzag for signed), bulk numeric columns are
// little-endian fixed-width runs — the layout a restore can load with one
// pass and no intermediate structures.

type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) strs(ss []string) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// i32s writes an int32 column as a fixed-width little-endian run.
func (w *writer) i32s(col []int32) {
	w.uvarint(uint64(len(col)))
	for _, v := range col {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v))
	}
}

// f64s writes a float64 column as a fixed-width little-endian run.
func (w *writer) f64s(col []float64) {
	w.uvarint(uint64(len(col)))
	for _, v := range col {
		w.f64(v)
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("store: truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("store: truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a length prefix and bounds it against the bytes remaining,
// so a corrupt length fails instead of allocating gigabytes.
func (r *reader) count(elemMin int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64((len(r.buf)-r.off)/elemMin+1) {
		r.fail("store: implausible count %d at offset %d", v, r.off)
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.buf) {
		r.fail("store: truncated string at offset %d", r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) strs() []string {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("store: truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) i32s() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	if r.off+4*n > len(r.buf) {
		r.fail("store: truncated int32 column at offset %d", r.off)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.buf[r.off+4*i:]))
	}
	r.off += 4 * n
	return out
}

func (r *reader) f64s() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	if r.off+8*n > len(r.buf) {
		r.fail("store: truncated float64 column at offset %d", r.off)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off+8*i:]))
	}
	r.off += 8 * n
	return out
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// seek repositions the reader at an absolute offset (a section-table
// entry). Out-of-range offsets trip the sticky error.
func (r *reader) seek(off int) {
	if r.err != nil {
		return
	}
	if off < 0 || off > len(r.buf) {
		r.fail("store: seek to %d outside %d-byte body", off, len(r.buf))
		return
	}
	r.off = off
}

// bytes returns the next n raw bytes as a capacity-clamped subslice of
// the body, so appending to the result can never grow in place over
// neighbouring sections.
func (r *reader) bytes(n int) []byte {
	if r.err != nil || n == 0 {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("store: truncated byte run at offset %d", r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}
