package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dwqa/internal/dw"
)

// testRow is one valid fact row for the test schema.
func testRow(day string) dw.FactRow {
	return dw.FactRow{
		Coords:     map[string]string{"City": "Barcelona", "Date": day},
		Measures:   map[string]float64{"TempC": 13.5},
		Provenance: "http://w/bcn",
	}
}

// openFaultStore opens a store over a fresh FaultFS in a temp dir.
func openFaultStore(t *testing.T) (*Store, *FaultFS) {
	t.Helper()
	ffs := NewFaultFS(OS())
	s, err := OpenFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, ffs
}

// TestFaultWALSyncFailure: a failed fsync on a WAL append must surface as
// ErrWAL, leave no record behind (the ack contract), bump the error
// counter, and let the next append succeed once the disk recovers.
func TestFaultWALSyncFailure(t *testing.T) {
	s, ffs := openFaultStore(t)
	ffs.Arm(Fault{Op: OpSync, Nth: 1})

	err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-01")})
	if !errors.Is(err, ErrWAL) {
		t.Fatalf("err = %v, want ErrWAL", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, should wrap the injected fault", err)
	}
	if s.WALErrors() != 1 {
		t.Errorf("WALErrors = %d, want 1", s.WALErrors())
	}
	if s.Seq() != 0 {
		t.Errorf("seq = %d after failed append, want 0 (rolled back)", s.Seq())
	}

	ffs.Disarm()
	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-02")}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if s.Seq() != 1 {
		t.Errorf("seq = %d, want 1", s.Seq())
	}

	// Replay sees exactly the acked record.
	var got []string
	_, err = s.Replay(0, ReplayHandlers{FactRows: func(fact string, rows []dw.FactRow) error {
		for _, r := range rows {
			got = append(got, r.Coords["Date"])
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"2004-01-02"}) {
		t.Errorf("replayed rows = %v, want only the acked append", got)
	}
}

// TestFaultWALShortWrite: a torn write followed by a working rollback
// leaves a clean log; the appended-then-failed bytes never reach replay.
func TestFaultWALShortWrite(t *testing.T) {
	s, ffs := openFaultStore(t)
	ffs.Arm(Fault{Op: OpWrite, Nth: 1, Short: 5})

	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-01")}); !errors.Is(err, ErrWAL) {
		t.Fatalf("err = %v, want ErrWAL", err)
	}
	ffs.Disarm()
	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-02")}); err != nil {
		t.Fatal(err)
	}
	applied, err := s.Replay(0, ReplayHandlers{FactRows: func(string, []dw.FactRow) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("replayed %d records, want 1", applied)
	}
}

// TestFaultWALShortWritePoisonedHandle: when the rollback truncate fails
// too, the handle is poisoned (further appends refuse), and a reopen
// repairs the torn tail so acked history survives.
func TestFaultWALShortWritePoisonedHandle(t *testing.T) {
	ffs := NewFaultFS(OS())
	dir := t.TempDir()
	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-01")}); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(
		Fault{Op: OpWrite, Nth: 1, Short: 3},
		Fault{Op: OpTruncate, Nth: 1},
	)
	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-02")}); !errors.Is(err, ErrWAL) {
		t.Fatalf("err = %v, want ErrWAL", err)
	}
	// The handle is poisoned: even with the disk healthy again, appends
	// refuse rather than land after unknown bytes.
	ffs.Disarm()
	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-03")}); !errors.Is(err, ErrWAL) {
		t.Fatalf("append on poisoned handle = %v, want ErrWAL", err)
	}
	s.Close()

	// Reopen: tail repair drops the torn bytes, the acked record remains.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.WALRepaired() == 0 {
		t.Error("reopen should have repaired the torn tail")
	}
	applied, err := s2.Replay(0, ReplayHandlers{FactRows: func(string, []dw.FactRow) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("replayed %d records, want 1 (the acked one)", applied)
	}
	if err := s2.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-04")}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

// TestFaultSnapshotPublish: rename and fsync failures during snapshot
// publish fail the write loudly without corrupting the directory — the
// next attempt (the engine's retry) succeeds and recovery reads it.
func TestFaultSnapshotPublish(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault Fault
	}{
		{"rename refused", Fault{Op: OpRename, Nth: 1}},
		{"temp write torn", Fault{Op: OpWrite, Nth: 1, Short: 10}},
		{"temp fsync failed", Fault{Op: OpSync, Nth: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, ffs := openFaultStore(t)
			state := buildTestState(t)
			ffs.Arm(tc.fault)
			if _, err := s.WriteSnapshot(state); err == nil {
				t.Fatal("faulted snapshot write should fail")
			}
			ffs.Disarm()
			info, err := s.WriteSnapshot(state)
			if err != nil {
				t.Fatalf("retry after fault: %v", err)
			}
			loaded, path, err := s.LoadSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if loaded == nil || path != info.Path {
				t.Fatalf("loaded %q, want the retried snapshot %q", path, info.Path)
			}
		})
	}
}

// TestFaultDelayOnly: a delay-only fault slows the op without failing it.
func TestFaultDelayOnly(t *testing.T) {
	s, ffs := openFaultStore(t)
	ffs.Arm(Fault{Op: OpSync, Nth: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := s.LogFactRows("Weather", []dw.FactRow{testRow("2004-01-01")}); err != nil {
		t.Fatalf("delay-only fault must not fail the append: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("append took %v, want ≥ the scheduled 10ms delay", elapsed)
	}
	if ffs.Fired() != 1 {
		t.Errorf("fired = %d, want 1", ffs.Fired())
	}
}

// TestRandomScheduleDeterministic: the same seed yields the same
// schedule — what makes a failing chaos run replayable.
func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 100, 0.1)
	b := RandomSchedule(42, 100, 0.1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("p=0.1 over 300 ops should schedule at least one fault")
	}
	c := RandomSchedule(43, 100, 0.1)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestFaultFSOpClasses drives every schedulable operation class through
// its fault branch directly — the chaos schedules only cover
// write/sync/rename, and the open/read/remove classes must inject just
// as reliably when a test arms them.
func TestFaultFSOpClasses(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS())
	custom := errors.New("disk on fire")
	ffs.Arm(
		Fault{Op: OpOpen, Nth: 1},
		Fault{Op: OpOpen, Nth: 2, Err: custom},
		Fault{Op: OpRead, Nth: 1},
		Fault{Op: OpRemove, Nth: 1},
		Fault{Op: OpSync, Nth: 1}, // SyncDir shares the sync class
	)
	if _, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("OpenFile fault = %v, want ErrInjected", err)
	}
	if _, err := ffs.CreateTemp(dir, "tmp-*"); !errors.Is(err, custom) {
		t.Fatalf("CreateTemp fault = %v, want the scheduled custom error", err)
	}
	if _, err := ffs.ReadFile(filepath.Join(dir, "missing")); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadFile fault = %v, want ErrInjected", err)
	}
	if err := ffs.Remove(filepath.Join(dir, "missing")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Remove fault = %v, want ErrInjected", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("SyncDir fault = %v, want ErrInjected", err)
	}
	if got := ffs.Fired(); got != 5 {
		t.Fatalf("Fired = %d, want 5", got)
	}
	// Past the schedule the classes behave normally again.
	f, err := ffs.OpenFile(filepath.Join(dir, "b"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if data, err := ffs.ReadFile(filepath.Join(dir, "b")); err != nil || string(data) != "ok" {
		t.Fatalf("ReadFile after schedule = %q, %v", data, err)
	}
	if err := ffs.Remove(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if got := ffs.OpCount(OpOpen); got != 3 {
		t.Fatalf("OpCount(OpOpen) = %d, want 3", got)
	}
	// Every class names itself in error messages.
	for op := FaultOp(0); op < numFaultOps; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Fatalf("FaultOp(%d).String() = %q, want a name", op, s)
		}
	}
	if s := numFaultOps.String(); !strings.HasPrefix(s, "op(") {
		t.Fatalf("out-of-range String() = %q, want op(N) fallback", s)
	}
}
