package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
)

// The failure-mode suite: every way a data directory can be damaged must
// either fail loudly or recover cleanly — never half-load.

func writeTestSnapshot(t *testing.T, s *Store, walSeq uint64) string {
	t.Helper()
	state := buildTestState(t)
	state.WALSeq = walSeq
	info, err := s.WriteSnapshot(state)
	if err != nil {
		t.Fatal(err)
	}
	return info.Path
}

// walBackedSnapshots logs three documents and publishes snapshots at
// walSeq 1 and 2 — both stale relative to the log head, so neither
// resets the WAL and the log keeps covering every record. Returns the
// two snapshot paths.
func walBackedSnapshots(t *testing.T, s *Store) (old, newest string) {
	t.Helper()
	for i := 0; i < 3; i++ {
		if err := s.LogDocument(ir.Document{URL: "u", Text: "Some text."}); err != nil {
			t.Fatal(err)
		}
	}
	old = writeTestSnapshot(t, s, 1)
	newest = writeTestSnapshot(t, s, 2)
	return old, newest
}

func TestTruncatedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	old, newest := walBackedSnapshots(t, s)

	// Simulate a newest snapshot that lost its tail (e.g. disk full).
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	state, path, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if path != old || state.WALSeq != 1 {
		t.Fatalf("expected fallback to %s, got %s (seq %d)", old, path, state.WALSeq)
	}
	// The WAL still covers everything past the fallback: replay closes
	// the gap the corrupt snapshot left.
	n, err := s.Replay(state.WALSeq, ReplayHandlers{Document: func(ir.Document) error { return nil }})
	if err != nil || n != 2 {
		t.Fatalf("gap replay: n=%d err=%v", n, err)
	}
}

func TestChecksumMismatchFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	old, newest := walBackedSnapshots(t, s)

	// Flip one byte in the middle of the newest snapshot.
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	state, path, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if path != old {
		t.Fatalf("expected fallback to %s, got %s", old, path)
	}
	if state == nil || state.WALSeq != 1 {
		t.Fatal("fallback snapshot not loaded")
	}
}

// TestFallbackRefusesToLoseAckedRecords pins the double-failure window:
// a snapshot covered the log and reset it, then went unreadable. Falling
// back to the older snapshot would silently drop the acked batches the
// reset removed, so LoadSnapshot must fail loudly instead.
func TestFallbackRefusesToLoseAckedRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.LogDocument(ir.Document{URL: "u1", Text: "First text."}); err != nil {
		t.Fatal(err)
	}
	writeTestSnapshot(t, s, 1) // stale: keeps the WAL
	if err := s.LogDocument(ir.Document{URL: "u2", Text: "Second text."}); err != nil {
		t.Fatal(err)
	}
	state := buildTestState(t)
	state.WALSeq = s.Seq()
	info, err := s.WriteSnapshot(state) // covers the log: resets it
	if err != nil {
		t.Fatal(err)
	}
	if !info.WALReset {
		t.Fatal("covering snapshot did not reset the WAL")
	}
	data, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(info.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.LoadSnapshot(); err == nil {
		t.Fatal("fallback silently dropped acked feed batches")
	} else if !strings.Contains(err.Error(), "would lose acked feed batches") {
		t.Fatalf("unhelpful loss error: %v", err)
	}
}

func TestAllSnapshotsCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p1 := writeTestSnapshot(t, s, 1)
	p2 := writeTestSnapshot(t, s, 2)
	for _, p := range []string{p1, p2} {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.LoadSnapshot(); err == nil {
		t.Fatal("two corrupt snapshots loaded without error")
	} else if !strings.Contains(err.Error(), "no readable snapshot") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestFutureSchemaVersionRejected(t *testing.T) {
	state := buildTestState(t)
	data := EncodeState(state)

	// Rewrite the version varint (right after the magic) to a future one,
	// then re-checksum so only the version gate can reject it.
	var future []byte
	future = append(future, data[:len(snapshotMagic)]...)
	future = binary.AppendUvarint(future, SchemaVersion+41)
	_, n := binary.Uvarint(data[len(snapshotMagic):])
	future = append(future, data[len(snapshotMagic)+n:len(data)-4]...)
	future = appendCRC(future)

	_, err := DecodeState(future)
	if err == nil {
		t.Fatal("future-version snapshot decoded")
	}
	if !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("unhelpful version error: %v", err)
	}

	// And through the directory path: the future file must not half-load
	// or shadow the absence of valid snapshots.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := os.WriteFile(filepath.Join(dir, snapshotPrefix+"00000000000000000009"+snapshotSuffix), future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadSnapshot(); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("future-version snapshot not rejected loudly: %v", err)
	}
}

func TestTornWALFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogDocument(ir.Document{URL: "u1", Text: "First document text."}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDocument(ir.Document{URL: "u2", Text: "Second document text."}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record mid-payload.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the torn tail is dropped, the first record survives, and
	// appending continues from the repaired end.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.WALRepaired() == 0 {
		t.Fatal("torn tail not reported")
	}
	if s2.Seq() != 1 {
		t.Fatalf("seq after repair = %d, want 1", s2.Seq())
	}
	var urls []string
	n, err := s2.Replay(0, ReplayHandlers{Document: func(d ir.Document) error { urls = append(urls, d.URL); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(urls) != 1 || urls[0] != "u1" {
		t.Fatalf("replay after repair: n=%d urls=%v", n, urls)
	}
	if err := s2.LogDocument(ir.Document{URL: "u3", Text: "Third document text."}); err != nil {
		t.Fatal(err)
	}
	urls = nil
	if _, err := s2.Replay(0, ReplayHandlers{Document: func(d ir.Document) error { urls = append(urls, d.URL); return nil }}); err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[1] != "u3" {
		t.Fatalf("append after repair: %v", urls)
	}
}

func TestWALGarbageMidFileTruncates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogMembers([]dw.MemberSpec{{Dim: "City", Level: "Country", Name: "Spain"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// A valid record followed by garbage: replay keeps the record, drops
	// the garbage, and the file is repaired in place.
	if err := os.WriteFile(walPath, append(data, []byte("!!!! not a record !!!!")...), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.Replay(0, ReplayHandlers{Members: func([]dw.MemberSpec) error { return nil }})
	if err != nil || n != 1 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if repaired, _ := os.ReadFile(walPath); len(repaired) != len(data) {
		t.Fatalf("WAL not repaired in place: %d bytes, want %d", len(repaired), len(data))
	}
}

func TestEmptyDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh", "nested")
	s, err := Open(dir) // creates the directory tree
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if state, path, err := s.LoadSnapshot(); err != nil || state != nil || path != "" {
		t.Fatalf("empty dir: state=%v path=%q err=%v", state, path, err)
	}
	if n, err := s.Replay(0, ReplayHandlers{}); err != nil || n != 0 {
		t.Fatalf("empty dir replay: n=%d err=%v", n, err)
	}
	if s.Seq() != 0 {
		t.Fatalf("empty dir seq = %d", s.Seq())
	}
}

func TestReplayAfterStaleSnapshotSkipsCoveredRecords(t *testing.T) {
	// The crash window the sequence gate exists for: snapshot published,
	// WAL reset failed (simulated here by writing the snapshot with a
	// stale WALSeq so the store keeps the log). Replay must apply only
	// the uncovered tail.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, url := range []string{"u1", "u2", "u3"} {
		if err := s.LogDocument(ir.Document{URL: url, Text: "Document number " + string(rune('1'+i)) + " text."}); err != nil {
			t.Fatal(err)
		}
	}
	state := buildTestState(t)
	state.WALSeq = 2 // pretend the snapshot was exported before u3
	if _, err := s.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	n, err := s.Replay(loaded.WALSeq, ReplayHandlers{Document: func(d ir.Document) error { urls = append(urls, d.URL); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(urls) != 1 || urls[0] != "u3" {
		t.Fatalf("covered records re-applied: n=%d urls=%v", n, urls)
	}
}
