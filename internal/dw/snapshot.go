package dw

import (
	"fmt"
	"sort"
)

// This file is the warehouse half of the durability subsystem
// (internal/store): bulk export and import of the columnar state, the
// redo-journal hook that records committed write batches, and the
// accessors recovery needs (Counts, ScanFact).

// LevelSnapshot is the exported form of one dimension level table: the
// member rows in surrogate-key order (Member.Key == slice index), which is
// exactly the invariant Import relies on to restore the byName map in one
// pass.
type LevelSnapshot struct {
	Level   string
	Members []Member
}

// DimensionSnapshot is the exported form of one dimension: its level
// tables in schema order.
type DimensionSnapshot struct {
	Dim    string
	Levels []LevelSnapshot
}

// FactSnapshot is the exported form of one fact table: the raw columns of
// the columnar store (coords in role order, measures in measure order)
// plus the sparse provenance sidecar flattened into parallel slices sorted
// by row.
type FactSnapshot struct {
	Fact     string
	Rows     int
	Coords   [][]int32   // [role column][row], role order = schema order
	Measures [][]float64 // [measure column][row], measure order = schema order
	ProvRows []int32     // rows that carry provenance, ascending
	ProvVals []string    // provenance strings, parallel to ProvRows
}

// Snapshot is a point-in-time copy of the warehouse contents (not the
// schema — the schema is code and both sides of a snapshot round-trip
// must be built for the same one). Produced by Export, consumed by
// Import; internal/store gives it a binary encoding.
type Snapshot struct {
	Dims  []DimensionSnapshot
	Facts []FactSnapshot
}

// Export copies the full warehouse contents into a Snapshot under the
// read lock. Dimension, level, fact, role and measure order follow the
// schema, so exporting the same state always yields the same snapshot.
// The copy is deep: later warehouse writes do not mutate it.
func (w *Warehouse) Export() *Snapshot {
	w.mu.RLock()
	defer w.mu.RUnlock()
	snap := &Snapshot{}
	for _, dc := range w.schema.Dimensions {
		dd := w.dims[dc.Name]
		ds := DimensionSnapshot{Dim: dc.Name}
		for _, lvl := range dc.Levels {
			lt := dd.levels[lvl.Name]
			members := make([]Member, len(lt.members))
			for i, m := range lt.members {
				cp := m
				cp.Attrs = nil // empty and nil attrs export identically
				if len(m.Attrs) > 0 {
					cp.Attrs = make(map[string]string, len(m.Attrs))
					for k, v := range m.Attrs {
						cp.Attrs[k] = v
					}
				}
				members[i] = cp
			}
			ds.Levels = append(ds.Levels, LevelSnapshot{Level: lvl.Name, Members: members})
		}
		snap.Dims = append(snap.Dims, ds)
	}
	for _, fc := range w.schema.Facts {
		fd := w.facts[fc.Name]
		fs := FactSnapshot{Fact: fc.Name, Rows: fd.rows}
		fs.Coords = make([][]int32, len(fd.coords))
		for i, col := range fd.coords {
			fs.Coords[i] = append([]int32(nil), col...)
		}
		fs.Measures = make([][]float64, len(fd.measures))
		for i, col := range fd.measures {
			fs.Measures[i] = append([]float64(nil), col...)
		}
		if len(fd.provenance) > 0 {
			rows := make([]int, 0, len(fd.provenance))
			for r := range fd.provenance {
				rows = append(rows, r)
			}
			sort.Ints(rows)
			for _, r := range rows {
				fs.ProvRows = append(fs.ProvRows, int32(r))
				fs.ProvVals = append(fs.ProvVals, fd.provenance[r])
			}
		}
		snap.Facts = append(snap.Facts, fs)
	}
	return snap
}

// Import replaces the warehouse contents with a snapshot in one bulk
// column load: member slices and fact columns are installed wholesale
// (the byName maps are rebuilt in a single pass per level), never
// row-at-a-time through the insert path. The warehouse must have been
// built for the same schema the snapshot was exported from; every shape
// mismatch (unknown dimension or fact, wrong column count, ragged column
// lengths, out-of-range keys) fails loudly before anything is installed,
// so a bad snapshot never half-loads.
func (w *Warehouse) Import(snap *Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	// Validate everything first: Import is all-or-nothing. levelSize
	// indexes the snapshot's own tables so parent links and fact
	// coordinates can be bounds-checked against the state being
	// installed.
	levelSize := map[string]int{} // "dim\x00level" → member count
	for _, ds := range snap.Dims {
		for _, ls := range ds.Levels {
			levelSize[ds.Dim+"\x00"+ls.Level] = len(ls.Members)
		}
	}
	for _, ds := range snap.Dims {
		dd, ok := w.dims[ds.Dim]
		if !ok {
			return fmt.Errorf("dw: import: unknown dimension %q", ds.Dim)
		}
		for _, ls := range ds.Levels {
			if _, ok := dd.levels[ls.Level]; !ok {
				return fmt.Errorf("dw: import: unknown level %q of dimension %q", ls.Level, ds.Dim)
			}
			lvl := dd.class.Level(ls.Level)
			parentSize := 0
			if lvl.RollsUpTo != "" {
				parentSize = levelSize[ds.Dim+"\x00"+lvl.RollsUpTo]
			}
			for i, m := range ls.Members {
				if m.Key != i {
					return fmt.Errorf("dw: import: %s.%s member %d has key %d (surrogate keys must be dense)",
						ds.Dim, ls.Level, i, m.Key)
				}
				if m.Name == "" {
					return fmt.Errorf("dw: import: %s.%s member %d has empty name", ds.Dim, ls.Level, i)
				}
				if m.Parent != NoParent {
					if lvl.RollsUpTo == "" {
						return fmt.Errorf("dw: import: %s.%s member %q has parent %d but the level is the hierarchy top",
							ds.Dim, ls.Level, m.Name, m.Parent)
					}
					if m.Parent < 0 || m.Parent >= parentSize {
						return fmt.Errorf("dw: import: %s.%s member %q parent key %d out of range (level %q has %d members)",
							ds.Dim, ls.Level, m.Name, m.Parent, lvl.RollsUpTo, parentSize)
					}
				}
			}
		}
	}
	for _, fs := range snap.Facts {
		fd, ok := w.facts[fs.Fact]
		if !ok {
			return fmt.Errorf("dw: import: unknown fact %q", fs.Fact)
		}
		if len(fs.Coords) != len(fd.roles) {
			return fmt.Errorf("dw: import: fact %q has %d coordinate columns, schema wants %d",
				fs.Fact, len(fs.Coords), len(fd.roles))
		}
		if len(fs.Measures) != len(fd.measures) {
			return fmt.Errorf("dw: import: fact %q has %d measure columns, schema wants %d",
				fs.Fact, len(fs.Measures), len(fd.measures))
		}
		for i, col := range fs.Coords {
			if len(col) != fs.Rows {
				return fmt.Errorf("dw: import: fact %q coordinate column %d has %d rows, expected %d",
					fs.Fact, i, len(col), fs.Rows)
			}
			ref := fd.class.Dimensions[i]
			baseSize := levelSize[ref.Dimension+"\x00"+w.dims[ref.Dimension].class.Base().Name]
			for r, key := range col {
				if int(key) < 0 || int(key) >= baseSize {
					return fmt.Errorf("dw: import: fact %q row %d role %q key %d out of range (base level has %d members)",
						fs.Fact, r, ref.Role, key, baseSize)
				}
			}
		}
		for i, col := range fs.Measures {
			if len(col) != fs.Rows {
				return fmt.Errorf("dw: import: fact %q measure column %d has %d rows, expected %d",
					fs.Fact, i, len(col), fs.Rows)
			}
		}
		if len(fs.ProvRows) != len(fs.ProvVals) {
			return fmt.Errorf("dw: import: fact %q has %d provenance rows but %d values",
				fs.Fact, len(fs.ProvRows), len(fs.ProvVals))
		}
		for _, r := range fs.ProvRows {
			if int(r) < 0 || int(r) >= fs.Rows {
				return fmt.Errorf("dw: import: fact %q provenance row %d out of range", fs.Fact, r)
			}
		}
	}

	// Install: bulk slice loads, maps rebuilt in one pass each.
	for _, ds := range snap.Dims {
		dd := w.dims[ds.Dim]
		for _, ls := range ds.Levels {
			lt := dd.levels[ls.Level]
			lt.members = append([]Member(nil), ls.Members...)
			lt.byName = make(map[string]int, len(ls.Members))
			for i := range lt.members {
				m := &lt.members[i]
				m.Attrs = nil
				if len(ls.Members[i].Attrs) > 0 {
					attrs := make(map[string]string, len(ls.Members[i].Attrs))
					for k, v := range ls.Members[i].Attrs {
						attrs[k] = v
					}
					m.Attrs = attrs
				}
				lt.byName[m.Name] = m.Key
			}
		}
	}
	for _, fs := range snap.Facts {
		fd := w.facts[fs.Fact]
		for i, col := range fs.Coords {
			fd.coords[i] = append([]int32(nil), col...)
		}
		for i, col := range fs.Measures {
			fd.measures[i] = append([]float64(nil), col...)
		}
		fd.provenance = nil
		if len(fs.ProvRows) > 0 {
			fd.provenance = make(map[int]string, len(fs.ProvRows))
			for i, r := range fs.ProvRows {
				fd.provenance[int(r)] = fs.ProvVals[i]
			}
		}
		fd.rows = fs.Rows
	}
	w.invalidateRollups()
	return nil
}

// Counts returns the total number of dimension members and fact rows —
// the sizing figures the serving stats and recovery logs report.
func (w *Warehouse) Counts() (members, factRows int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	for _, dd := range w.dims {
		for _, lt := range dd.levels {
			members += len(lt.members)
		}
	}
	for _, fd := range w.facts {
		factRows += fd.rows
	}
	return members, factRows
}

// ScanFact calls fn for every row of a fact with the base-level member
// names of the requested roles (in the given order) and the row's
// provenance string. The names slice is reused across calls; copy it if
// it must outlive fn. Recovery uses this to rebuild the Step 5 loader's
// dedup state from the warehouse itself.
func (w *Warehouse) ScanFact(fact string, roles []string, fn func(row int, names []string, provenance string) error) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	fd, ok := w.facts[fact]
	if !ok {
		return fmt.Errorf("dw: unknown fact %q", fact)
	}
	cols := make([][]int32, len(roles))
	tables := make([]*levelTable, len(roles))
	for i, role := range roles {
		ri, ok := fd.roleIdx[role]
		if !ok {
			return fmt.Errorf("dw: fact %q has no role %q", fact, role)
		}
		cols[i] = fd.coords[ri]
		ref := fd.class.Dimensions[ri]
		dd := w.dims[ref.Dimension]
		tables[i] = dd.levels[dd.class.Base().Name]
	}
	names := make([]string, len(roles))
	for row := 0; row < fd.rows; row++ {
		for i := range roles {
			key := int(cols[i][row])
			if key < 0 || key >= len(tables[i].members) {
				return fmt.Errorf("dw: fact %q row %d role %q: key %d out of range", fact, row, roles[i], key)
			}
			names[i] = tables[i].members[key].Name
		}
		if err := fn(row, names, fd.provenance[row]); err != nil {
			return err
		}
	}
	return nil
}
