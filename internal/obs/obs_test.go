package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the Prometheus text exposition format
// byte-for-byte: family sorting, HELP/TYPE lines, label rendering,
// cumulative histogram buckets, _sum/_count, func gauges and value
// formatting. Any change to the wire format must update this golden.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("dwqa_cache_hits_total", "Answer-cache hits.")
	hits.Add(41)
	hits.Inc()
	lag := r.Gauge("dwqa_shard_replica_lag", "Replica apply lag in WAL records.", L("shard", "0"))
	lag.Set(-3)
	r.Gauge("dwqa_shard_replica_lag", "Replica apply lag in WAL records.", L("shard", "1")).Set(7)
	r.GaugeFunc("dwqa_wal_seq", "Highest WAL sequence.", func() float64 { return 12345 })
	r.CounterFunc("dwqa_generation_total", "Committed feeds.", func() float64 { return 2 })
	h := r.Histogram("dwqa_stage_duration_seconds", "Time spent in each pipeline stage.",
		[]float64{0.001, 0.01, 0.1}, L("stage", "ir_search"))
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)

	const want = `# HELP dwqa_cache_hits_total Answer-cache hits.
# TYPE dwqa_cache_hits_total counter
dwqa_cache_hits_total 42
# HELP dwqa_generation_total Committed feeds.
# TYPE dwqa_generation_total counter
dwqa_generation_total 2
# HELP dwqa_shard_replica_lag Replica apply lag in WAL records.
# TYPE dwqa_shard_replica_lag gauge
dwqa_shard_replica_lag{shard="0"} -3
dwqa_shard_replica_lag{shard="1"} 7
# HELP dwqa_stage_duration_seconds Time spent in each pipeline stage.
# TYPE dwqa_stage_duration_seconds histogram
dwqa_stage_duration_seconds_bucket{stage="ir_search",le="0.001"} 2
dwqa_stage_duration_seconds_bucket{stage="ir_search",le="0.01"} 2
dwqa_stage_duration_seconds_bucket{stage="ir_search",le="0.1"} 3
dwqa_stage_duration_seconds_bucket{stage="ir_search",le="+Inf"} 4
dwqa_stage_duration_seconds_sum{stage="ir_search"} 2.051
dwqa_stage_duration_seconds_count{stage="ir_search"} 4
# HELP dwqa_wal_seq Highest WAL sequence.
# TYPE dwqa_wal_seq gauge
dwqa_wal_seq 12345
`
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registering the same counter returned a different handle")
	}
	h1 := r.Histogram("h_seconds", "", nil, L("k", "v"))
	h2 := r.Histogram("h_seconds", "", nil, L("k", "v"))
	if h1 != h2 {
		t.Fatal("re-registering the same histogram returned a different handle")
	}
	if h3 := r.Histogram("h_seconds", "", nil, L("k", "w")); h3 == h1 {
		t.Fatal("different label values shared a histogram")
	}
	// Func re-registration swaps the callback.
	fg := r.GaugeFunc("g", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 2 })
	if got := fg.Value(); got != 2 {
		t.Fatalf("re-registered GaugeFunc value = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.001, 0.01}, nil...)
	h.Observe(time.Millisecond)     // le="0.001" is upper-inclusive
	h.Observe(time.Millisecond + 1) // next bucket
	h.Observe(time.Hour)            // +Inf
	h.Observe(-time.Second)         // clamps to 0, first bucket
	got := h.BucketCounts()
	want := []uint64{2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != time.Millisecond+time.Millisecond+1+time.Hour {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", L("q", "say \"hi\"\nback\\slash")).Set(1)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `g{q="say \"hi\"\nback\\slash"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition %q does not contain %q", sb.String(), want)
	}
}

func TestSpanAndSlowQueryLog(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)

	var sp Span
	sp.Observe(StageNLPAnalyse, 2*time.Millisecond)
	sp.Observe(StageIRSearch, 3*time.Millisecond)
	sp.Observe(StageIRSearch, 1*time.Millisecond) // accumulates
	if d, ok := sp.Duration(StageIRSearch); !ok || d != 4*time.Millisecond {
		t.Fatalf("ir_search duration = %v ok=%v, want 4ms true", d, ok)
	}
	if _, ok := sp.Duration(StageQAExtract); ok {
		t.Fatal("unstamped stage reported as set")
	}

	var lines []string
	tr.SetSlowQuery(time.Millisecond, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	tr.Finish(&sp, 10*time.Millisecond, "what is the weather", "ok")
	if len(lines) != 1 {
		t.Fatalf("slow-query log lines = %d, want 1 (%v)", len(lines), lines)
	}
	for _, frag := range []string{"nlp_analyse=2ms", "ir_search=4ms", "outcome=ok", `"what is the weather"`} {
		if !strings.Contains(lines[0], frag) {
			t.Fatalf("slow-query line %q missing %q", lines[0], frag)
		}
	}
	if got := tr.StageHistogram(StageIRSearch).Count(); got != 1 {
		t.Fatalf("ir_search histogram count = %d, want 1", got)
	}

	// Sampling: a second slow request inside the gap is swallowed.
	var sp2 Span
	sp2.Observe(StageNLPAnalyse, time.Millisecond)
	tr.Finish(&sp2, 10*time.Millisecond, "again", "ok")
	if len(lines) != 1 {
		t.Fatalf("slow-query sampling leaked: %d lines", len(lines))
	}

	// Disarmed: fast path records histograms only.
	tr.SetSlowQuery(0, nil)
	if tr.SlowQueryArmed() {
		t.Fatal("tracer still armed after disarm")
	}
	tr.Finish(&sp2, time.Hour, "quiet", "ok")
	if len(lines) != 1 {
		t.Fatal("disarmed tracer logged")
	}
}

func TestProcessGauges(t *testing.T) {
	reg := NewRegistry()
	pg := RegisterProcessGauges(reg)
	if pg.HeapAlloc.Value() <= 0 {
		t.Fatal("heap_alloc gauge reported nothing")
	}
	if pg.HeapInuse.Value() <= 0 {
		t.Fatal("heap_inuse gauge reported nothing")
	}
	// RSS may legitimately be 0 where procfs is unavailable; on Linux CI
	// it must be populated.
	if rss := pg.RSS.Value(); rss < 0 {
		t.Fatalf("rss gauge negative: %v", rss)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dwqa_heap_alloc_bytes") {
		t.Fatal("process gauges missing from exposition")
	}
}
