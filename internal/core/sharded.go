package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwqa/internal/dw"
	"dwqa/internal/engine"
	"dwqa/internal/etl"
	"dwqa/internal/ir"
	"dwqa/internal/mdm"
	"dwqa/internal/merge"
	"dwqa/internal/obs"
	"dwqa/internal/ontology"
	"dwqa/internal/qa"
	"dwqa/internal/shard"
	"dwqa/internal/store"
	"dwqa/internal/uml2onto"
	"dwqa/internal/webcorpus"
	"dwqa/internal/wordnet"
)

// The sharded deployment of the five-step pipeline (DESIGN.md §10): the
// same scenario, corpus and QA stack as Pipeline, but the warehouse
// fact columns and the passage index partition across N shards by
// city-dimension hash (shard.Cluster). Answers are byte-identical to a
// single-node Pipeline — the equivalence suite pins factoid and
// analytic answers across 1/2/4-shard topologies — because dimensions
// replicate, OLAP plans scatter/gather through the deterministic cell
// merge, and retrieval federates with global corpus statistics.

// ScenarioRoutes is the fact routing for the Figure 1 schema: weather
// rows hash by their City coordinate, sales rows by the city their
// Destination airport rolls up to — so one city's weather and inbound
// sales co-locate on one shard.
func ScenarioRoutes() map[string]shard.Route {
	return map[string]shard.Route{
		"Weather":         {Role: "City", Level: "City"},
		"LastMinuteSales": {Role: "Destination", Level: "City"},
	}
}

// ShardedPipeline is the N-shard counterpart of Pipeline: one writer
// process owns the cluster (and, when opened durably, its per-shard
// stores); follower processes open the same directory read-only and
// tail the WAL (OpenShardedFollower).
type ShardedPipeline struct {
	Config Config

	Schema  *mdm.Schema
	Cluster *shard.Cluster
	Corpus  *webcorpus.Corpus
	Lexicon *wordnet.WordNet

	Ontology    *ontology.Ontology
	MergeReport *merge.Report
	QA          *qa.System
	Loader      *etl.Loader

	integrated atomic.Bool

	mu       sync.Mutex
	eng      *engine.Engine
	durable  *shard.Durable      // leader persistence; nil in-memory or follower
	follower *shard.Follower     // replica tail; nil on the writer
	recovery *store.RecoveryInfo // what a durable open recovered
}

// newScenarioCluster builds an empty cluster with the scenario schema,
// routes and the config's index geometry.
func newScenarioCluster(cfg Config, shards int) (*mdm.Schema, *shard.Cluster, error) {
	schema := Figure1Schema()
	var opts []ir.Option
	if cfg.PassageSize > 0 {
		opts = append(opts, ir.WithPassageSize(cfg.PassageSize))
	}
	cl, err := shard.NewCluster(schema, shards, ScenarioRoutes(), opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	return schema, cl, nil
}

// NewShardedPipeline builds the scenario environment over N shards —
// the sharded analogue of NewPipeline: populated cluster, web corpus,
// partitioned passage index. Integrate() runs the setup steps.
func NewShardedPipeline(cfg Config, shards int) (*ShardedPipeline, error) {
	cfg = normalizeConfig(cfg)
	schema, cl, err := newScenarioCluster(cfg, shards)
	if err != nil {
		return nil, err
	}
	if err := PopulateScenarioScaled(cl, cfg.Year, cfg.Months, cfg.Seed, cfg.ScaleFactor); err != nil {
		return nil, fmt.Errorf("core: populating scenario: %w", err)
	}
	corpus := webcorpus.Build(corpusConfig(cfg))
	if err := indexCorpusSharded(cl, corpus, cfg.TableAware); err != nil {
		return nil, fmt.Errorf("core: indexing corpus: %w", err)
	}
	return &ShardedPipeline{
		Config:  cfg,
		Schema:  schema,
		Cluster: cl,
		Corpus:  corpus,
		Lexicon: wordnet.Seed(),
	}, nil
}

// indexCorpusSharded feeds the corpus into the cluster in publication
// order — ordinals follow it, which is what keeps federated ranking
// identical to a single index built by AddAll. Weather pages route by
// their subject city (co-located with the city's facts); distractor
// pages, which have no subject, route by URL.
func indexCorpusSharded(cl *shard.Cluster, corpus *webcorpus.Corpus, tableAware bool) error {
	docs := corpus.Documents(tableAware)
	for i, doc := range docs {
		key := doc.URL
		if i < len(corpus.Pages) && corpus.Pages[i].URL == doc.URL && len(corpus.Pages[i].Gold) > 0 {
			key = corpus.Pages[i].Gold[0].City
		}
		if err := cl.AddDocument(doc, key); err != nil {
			return err
		}
	}
	return nil
}

// Integrate runs the setup steps (1-4) over the cluster: ontology
// derivation and feeding, upper-ontology merge, QA tuning. The sharded
// pipeline exposes them as one call — the per-step staging Pipeline
// offers exists for the paper walk-through, not for serving.
func (sp *ShardedPipeline) Integrate() error {
	o, err := uml2onto.Transform(sp.Schema)
	if err != nil {
		return err
	}
	sp.Ontology = o
	if err := feedOntologyFromMembers(sp.Ontology, sp.Cluster); err != nil {
		return err
	}
	return sp.integrateTail()
}

// integrateTail runs the cheap deterministic tail shared by fresh and
// restored boots: the Step 3 merge into a fresh lexicon and the Step 4
// tuning (axiom re-adds are no-ops on a restored ontology).
func (sp *ShardedPipeline) integrateTail() error {
	if sp.Config.QA.UseOntology {
		rep, err := merge.Merge(sp.Ontology, sp.Lexicon)
		if err != nil {
			return err
		}
		sp.MergeReport = rep
	} else {
		sp.MergeReport = &merge.Report{Mapping: map[string]string{}}
	}
	for _, a := range TemperatureAxioms() {
		if err := sp.Ontology.AddAxiom(a); err != nil {
			return err
		}
	}
	sys, err := qa.NewSystem(sp.Lexicon, sp.qaOntology(), sp.Cluster, sp.Config.QA)
	if err != nil {
		return err
	}
	sys.TunePatterns(qa.WeatherPatterns()...)
	sp.QA = sys
	sp.integrated.Store(true)
	return nil
}

// qaOntology mirrors Pipeline.qaOntology: the E-ONTO ablation hides the
// ontology from QA entirely.
func (sp *ShardedPipeline) qaOntology() *ontology.Ontology {
	if !sp.Config.QA.UseOntology {
		return nil
	}
	return sp.Ontology
}

// WeatherQuestions generates the Step 5 workload, identically to
// Pipeline.WeatherQuestions.
func (sp *ShardedPipeline) WeatherQuestions() []string {
	var qs []string
	for _, a := range ScenarioAirports {
		if _, ok := sp.Corpus.Weather[a.City]; !ok {
			continue
		}
		for _, month := range sp.Config.Months {
			qs = append(qs, fmt.Sprintf("What is the weather like in %s of %d in %s?",
				time.Month(month), sp.Config.Year, a.Name))
		}
	}
	return qs
}

// Engine returns the serving engine over the cluster, creating it on
// first call. On a follower the engine has no loader — feeds are
// refused with a clear error — and its per-shard stats report
// replication lag instead of the writer's sequences.
func (sp *ShardedPipeline) Engine() (*engine.Engine, error) {
	if !sp.integrated.Load() {
		return nil, fmt.Errorf("core: sharded engine requires Integrate() first")
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.eng != nil {
		return sp.eng, nil
	}
	var loader *etl.Loader
	if sp.follower == nil {
		if sp.Loader == nil {
			l, err := etl.NewLoader(sp.Ontology, sp.Cluster, "Weather", "City", "Date")
			if err != nil {
				return nil, err
			}
			sp.Loader = l
		}
		loader = sp.Loader
	}
	harvestCfg := sp.Config.QA
	harvestCfg.TopPassages = sp.Config.HarvestPassages
	harvester, err := qa.NewSystem(sp.Lexicon, sp.qaOntology(), sp.Cluster, harvestCfg)
	if err != nil {
		return nil, err
	}
	harvester.TunePatterns(qa.WeatherPatterns()...)
	// Library mode: unset limits stay off, exactly like Pipeline.Engine.
	cfg := sp.Config.Engine
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = -1
	}
	if cfg.AskTimeout == 0 {
		cfg.AskTimeout = -1
	}
	if cfg.HarvestTimeout == 0 {
		cfg.HarvestTimeout = -1
	}
	eng, err := engine.New(cfg, sp.QA, harvester, loader, sp.Cluster)
	if err != nil {
		return nil, err
	}
	if sp.follower != nil {
		eng.SetReadOnlyReplica()
	}
	// Per-shard fan-out latency lands in the engine's stage histograms
	// (nil under NoObserve — the cluster then never reads the clock).
	sp.Cluster.SetFanoutHistogram(eng.StageHistogram(obs.StageShardFanout))
	eng.SetDefaultHarvest(sp.WeatherQuestions())
	trans, err := NewScenarioTranslator(sp.Cluster, sp.qaOntology())
	if err != nil {
		return nil, err
	}
	eng.SetTranslator(trans)
	if sp.durable != nil {
		eng.SetSnapshotter(sp.durable, sp.recovery)
		d := sp.durable
		// Every shard's store reports WAL latency into the same engine
		// registry; the histograms aggregate across shards.
		met := store.Metrics{
			Append: eng.StageHistogram(obs.StageWALAppend),
			Fsync:  eng.WALFsyncHistogram(),
		}
		for _, st := range d.Stores() {
			st.SetMetrics(met)
		}
		eng.SetShardStats(func() []engine.ShardStat {
			seqs := d.ShardSeqs()
			out := make([]engine.ShardStat, len(seqs))
			for i, s := range seqs {
				out[i] = engine.ShardStat{Shard: i, Seq: s}
			}
			return out
		})
	}
	if sp.follower != nil {
		f := sp.follower
		eng.SetShardStats(func() []engine.ShardStat {
			stats := f.Stats()
			out := make([]engine.ShardStat, len(stats))
			for i, s := range stats {
				out[i] = engine.ShardStat{Shard: s.Shard, Seq: s.Seq, Lag: s.Lag}
			}
			return out
		})
	}
	sp.eng = eng
	return eng, nil
}

// AskAll answers a question batch on the serving engine.
func (sp *ShardedPipeline) AskAll(questions []string) ([]engine.AskResult, error) {
	eng, err := sp.Engine()
	if err != nil {
		return nil, err
	}
	return eng.AskAll(context.Background(), questions), nil
}

// Feed runs the Step 5 harvest-and-load over the cluster (writer only).
func (sp *ShardedPipeline) Feed(questions []string) ([]StepResult, error) {
	eng, err := sp.Engine()
	if err != nil {
		return nil, err
	}
	items, _, err := eng.HarvestAll(context.Background(), questions)
	if err != nil {
		return nil, err
	}
	var results []StepResult
	for _, it := range items {
		if it.Err != nil {
			return nil, fmt.Errorf("core: feed question %q: %w", it.Question, it.Err)
		}
		results = append(results, StepResult{Question: it.Question, Answers: it.Loaded})
	}
	return results, nil
}

// Summary renders a human-readable cluster summary.
func (sp *ShardedPipeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded pipeline (%d shards, seed %d, year %d, months %v)\n",
		sp.Cluster.Shards(), sp.Config.Seed, sp.Config.Year, sp.Config.Months)
	fmt.Fprintf(&b, "  warehouse: %d sales rows, %d weather rows\n",
		sp.Cluster.FactCount("LastMinuteSales"), sp.Cluster.FactCount("Weather"))
	fmt.Fprintf(&b, "  corpus: %d pages, %d passages indexed\n", len(sp.Corpus.Pages), sp.Cluster.PassageCount())
	for i := 0; i < sp.Cluster.Shards(); i++ {
		node := sp.Cluster.Node(i)
		_, rows := node.WH.Counts()
		fmt.Fprintf(&b, "  shard %d: %d fact rows, %d docs, %d passages\n",
			i, rows, node.IX.DocCount(), node.IX.PassageCount())
	}
	return b.String()
}

// Durable returns the leader persistence handle (nil for in-memory and
// follower pipelines).
func (sp *ShardedPipeline) Durable() *shard.Durable {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.durable
}

// RecoveryInfo returns what the durable open recovered (nil in-memory).
func (sp *ShardedPipeline) RecoveryInfo() *store.RecoveryInfo {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.recovery
}

// ExportShardStates exports every shard's warehouse and index — the
// comparable cluster state. A leader and a caught-up replica built over
// the same directory export byte-identical encodings (the replica
// convergence check compares store.EncodeState of each entry).
func (sp *ShardedPipeline) ExportShardStates() []*store.State {
	fp := configFingerprint(sp.Config)
	n := sp.Cluster.Shards()
	states := make([]*store.State, n)
	for i := 0; i < n; i++ {
		node := sp.Cluster.Node(i)
		states[i] = &store.State{
			Fingerprint: shard.ShardFingerprint(fp, i, n),
			DW:          node.WH.Export(),
			IR:          node.IX.Export(),
		}
	}
	return states
}

// --- Durable leader ---

// OpenShardedPipeline boots a sharded writer from a cluster directory
// (one store per shard under it), recovering each shard from its newest
// snapshot plus WAL tail, or building the deterministic baseline fresh
// on first boot — the sharded analogue of OpenPipeline.
func OpenShardedPipeline(cfg Config, dataDir string, shards int) (*ShardedPipeline, *store.RecoveryInfo, error) {
	return OpenShardedPipelineFS(cfg, dataDir, shards, store.OS())
}

// OpenShardedPipelineFS is OpenShardedPipeline over an explicit
// filesystem (the fault-injection seam).
func OpenShardedPipelineFS(cfg Config, dataDir string, shards int, fsys store.FS) (*ShardedPipeline, *store.RecoveryInfo, error) {
	cfg = normalizeConfig(cfg)
	fp := configFingerprint(cfg)

	stores := make([]*store.Store, shards)
	states := make([]*store.State, shards)
	closeAll := func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}
	info := &store.RecoveryInfo{Recovered: true, SnapshotPath: dataDir}
	for i := 0; i < shards; i++ {
		st, err := store.OpenFS(shard.ShardDir(dataDir, i), fsys)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		stores[i] = st
		state, _, err := st.LoadSnapshot()
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		if state != nil {
			want := shard.ShardFingerprint(fp, i, shards)
			if state.Fingerprint != "" && state.Fingerprint != want {
				closeAll()
				return nil, nil, fmt.Errorf(
					"core: shard %d snapshot was created as (%s), this boot expects (%s); restart with matching flags and -shards or a fresh data directory",
					i, state.Fingerprint, want)
			}
			if state.WALSeq > info.SnapshotSeq {
				info.SnapshotSeq = state.WALSeq
			}
		} else {
			info.Recovered = false
		}
		states[i] = state
		info.WALRepaired += st.WALRepaired()
	}

	var sp *ShardedPipeline
	var err error
	if info.Recovered {
		sp, err = recoverSharded(cfg, shards, states)
	} else {
		// First boot (or a crash before every shard published its first
		// snapshot): build the deterministic baseline the WAL records
		// were logged against, then graft whatever snapshots do exist.
		sp, err = NewShardedPipeline(cfg, shards)
		if err == nil {
			err = sp.Integrate()
		}
		for i := 0; err == nil && i < shards; i++ {
			if states[i] != nil {
				err = sp.installShardState(i, states[i])
			}
		}
	}
	if err != nil {
		closeAll()
		return nil, nil, err
	}

	// Replay each shard's WAL tail onto its node (snapshot-covered
	// records are skipped by the per-shard sequence gate).
	for i, st := range stores {
		var after uint64
		if states[i] != nil {
			after = states[i].WALSeq
		}
		node := sp.Cluster.Node(i)
		shardIdx := i
		replayed, rerr := st.Replay(after, store.ReplayHandlers{
			Members:  node.WH.AddMembers,
			FactRows: node.WH.AddFactRows,
			Document: func(doc ir.Document) error {
				if aerr := node.IX.Add(doc); aerr != nil {
					return aerr
				}
				sp.Cluster.NoteDocument(doc.Ord, shardIdx, node.IX.DocCount()-1)
				return nil
			},
		})
		if rerr != nil {
			closeAll()
			return nil, nil, fmt.Errorf("core: shard %d WAL replay: %w", i, rerr)
		}
		info.WALReplayed += replayed
	}

	// The feed loader must skip every record already in the cluster.
	loader, err := etl.NewLoader(sp.Ontology, sp.Cluster, "Weather", "City", "Date")
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	if _, err := loader.RestoreDedup(); err != nil {
		closeAll()
		return nil, nil, err
	}

	durable, err := shard.NewDurable(sp.Cluster, dataDir, stores, sp.Ontology, fp)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	sp.mu.Lock()
	sp.Loader = loader
	sp.durable = durable
	sp.recovery = info
	sp.mu.Unlock()

	if !info.Recovered {
		// Publish the initial per-shard snapshots so the next boot (and
		// any follower) restores instead of rebuilding.
		publish, perr := durable.ExportForSnapshot()
		if perr == nil {
			_, perr = publish()
		}
		if perr != nil {
			closeAll()
			return nil, nil, perr
		}
	}

	// Journals attach last: everything before is in a snapshot or the
	// WAL already; everything after gets logged.
	durable.AttachJournals()
	return sp, info, nil
}

// recoverSharded rebuilds a sharded pipeline around restored per-shard
// states: bulk-import every shard, adopt the (replicated) ontology from
// shard 0, rebuild the cheap derived pieces.
func recoverSharded(cfg Config, shards int, states []*store.State) (*ShardedPipeline, error) {
	schema, cl, err := newScenarioCluster(cfg, shards)
	if err != nil {
		return nil, err
	}
	onto, err := ontology.FromSnapshot(states[0].Onto)
	if err != nil {
		return nil, fmt.Errorf("core: restoring ontology: %w", err)
	}
	sp := &ShardedPipeline{
		Config:   cfg,
		Schema:   schema,
		Cluster:  cl,
		Corpus:   webcorpus.Build(corpusConfig(cfg)),
		Lexicon:  wordnet.Seed(),
		Ontology: onto,
	}
	for i, state := range states {
		if err := sp.installShardState(i, state); err != nil {
			return nil, err
		}
	}
	if err := sp.integrateTail(); err != nil {
		return nil, err
	}
	return sp, nil
}

// installShardState swaps shard i's node for one imported from a
// snapshot state and rebuilds its ordinal entries.
func (sp *ShardedPipeline) installShardState(i int, state *store.State) error {
	wh, err := dw.New(sp.Schema)
	if err != nil {
		return err
	}
	if err := wh.Import(state.DW); err != nil {
		return fmt.Errorf("core: shard %d: restoring warehouse: %w", i, err)
	}
	ix := ir.NewIndex() // geometry comes from the snapshot
	if err := ix.Import(state.IR); err != nil {
		return fmt.Errorf("core: shard %d: restoring index: %w", i, err)
	}
	sp.Cluster.SetNode(i, &shard.Node{WH: wh, IX: ix})
	return sp.Cluster.ReindexShard(i)
}

// --- Follower (read replica) ---

// OpenShardedFollower opens a leader's cluster directory read-only: it
// loads every shard's newest shipped snapshot, tails the WAL once to
// catch up, and returns a serving-ready read replica. Poll (or
// StartTailing) keeps it converging while the leader feeds.
func OpenShardedFollower(cfg Config, dataDir string, shards int) (*ShardedPipeline, error) {
	return OpenShardedFollowerFS(cfg, dataDir, shards, store.OS())
}

// OpenShardedFollowerFS is OpenShardedFollower over an explicit
// filesystem.
func OpenShardedFollowerFS(cfg Config, dataDir string, shards int, fsys store.FS) (*ShardedPipeline, error) {
	cfg = normalizeConfig(cfg)
	fp := configFingerprint(cfg)
	schema, cl, err := newScenarioCluster(cfg, shards)
	if err != nil {
		return nil, err
	}
	f := shard.NewFollower(cl, fsys, dataDir)
	states, err := f.Bootstrap()
	if err != nil {
		return nil, err
	}
	for i, state := range states {
		if state == nil {
			return nil, fmt.Errorf("core: shard %d has no snapshot yet — start the leader first (it publishes the baseline at boot)", i)
		}
		want := shard.ShardFingerprint(fp, i, shards)
		if state.Fingerprint != "" && state.Fingerprint != want {
			return nil, fmt.Errorf("core: shard %d snapshot was created as (%s), this follower expects (%s)", i, state.Fingerprint, want)
		}
	}
	onto, err := ontology.FromSnapshot(states[0].Onto)
	if err != nil {
		return nil, fmt.Errorf("core: restoring ontology: %w", err)
	}
	sp := &ShardedPipeline{
		Config:   cfg,
		Schema:   schema,
		Cluster:  cl,
		Corpus:   webcorpus.Build(corpusConfig(cfg)),
		Lexicon:  wordnet.Seed(),
		Ontology: onto,
		follower: f,
	}
	if err := sp.integrateTail(); err != nil {
		return nil, err
	}
	// Catch up past the snapshots before first serve.
	if _, err := f.Poll(); err != nil {
		return nil, err
	}
	return sp, nil
}

// Poll advances a follower one catch-up round and flushes the answer
// cache when anything applied. Returns records applied.
func (sp *ShardedPipeline) Poll() (int, error) {
	sp.mu.Lock()
	f := sp.follower
	eng := sp.eng
	sp.mu.Unlock()
	if f == nil {
		return 0, fmt.Errorf("core: Poll is for followers (OpenShardedFollower)")
	}
	n, err := f.Poll()
	if n > 0 && eng != nil {
		eng.InvalidateCache()
	}
	return n, err
}

// StartTailing polls the leader directory at the given interval until
// the returned stop function is called. Errors go to onErr (may be
// nil); polling continues after errors — a torn read this round
// succeeds the next.
func (sp *ShardedPipeline) StartTailing(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := sp.Poll(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// ReplicaStats reports a follower's per-shard replication position.
func (sp *ShardedPipeline) ReplicaStats() []shard.FollowerStat {
	sp.mu.Lock()
	f := sp.follower
	sp.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Stats()
}
