package ir

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestSelectTopKMatchesFullSort cross-checks the bounded heap against a
// full sort over random score vectors, including heavy ties.
func TestSelectTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse buckets force score ties so the id tiebreak matters.
			scores[i] = float64(rng.Intn(8))
		}
		k := rng.Intn(20) + 1
		got := selectTopK(scores, k)

		var ids []int32
		for id, s := range scores {
			if s > 0 {
				ids = append(ids, int32(id))
			}
		}
		sort.Slice(ids, func(i, j int) bool {
			si, sj := scores[ids[i]], scores[ids[j]]
			if si != sj {
				return si > sj
			}
			return ids[i] < ids[j]
		})
		if len(ids) > k {
			ids = ids[:k]
		}
		if len(got) != len(ids) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(ids))
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("trial %d: rank %d = %d, want %d", trial, i, got[i], ids[i])
			}
		}
	}
}

// TestSelectTopKHugeKClamped guards against a "return everything" k
// reserving O(k) memory: the heap must be bounded by the candidate count.
func TestSelectTopKHugeKClamped(t *testing.T) {
	scores := []float64{0, 3, 1, 0, 2}
	got := selectTopK(scores, 1<<31-1)
	want := []int32{1, 4, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestSearchTopKPrefixStable asserts that shrinking k only truncates the
// ranking — the bounded heap must not reorder survivors.
func TestSearchTopKPrefixStable(t *testing.T) {
	ix := NewIndex(WithPassageSize(2), WithStride(1))
	for d := 0; d < 12; d++ {
		text := ""
		for s := 0; s < 6; s++ {
			switch (d + s) % 3 {
			case 0:
				text += "The weather in Barcelona is warm today. "
			case 1:
				text += "Madrid temperature rises in summer heat. "
			default:
				text += "Flights depart on time from the airport. "
			}
		}
		if err := ix.Add(Document{URL: fmt.Sprintf("doc-%d", d), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	terms := QueryTerms("warm weather temperature in Barcelona")
	full := ix.Search(terms, ix.PassageCount())
	if len(full) == 0 {
		t.Fatal("no results for scored query")
	}
	for _, k := range []int{1, 2, 5, len(full)} {
		got := ix.Search(terms, k)
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(got) != want {
			t.Fatalf("k=%d returned %d results, want %d", k, len(got), want)
		}
		for i := range got {
			if got[i].DocURL != full[i].DocURL || got[i].SentStart != full[i].SentStart || got[i].Score != full[i].Score {
				t.Errorf("k=%d rank %d = %s[%d] (%.4f), full ranking has %s[%d] (%.4f)",
					k, i, got[i].DocURL, got[i].SentStart, got[i].Score,
					full[i].DocURL, full[i].SentStart, full[i].Score)
			}
		}
	}
	// Scores must be non-increasing.
	for i := 1; i < len(full); i++ {
		if full[i].Score > full[i-1].Score {
			t.Errorf("ranking not monotone at %d: %.4f > %.4f", i, full[i].Score, full[i-1].Score)
		}
	}
}

// TestSearchDocumentsTopK mirrors the prefix check for the document-level
// baseline mode.
func TestSearchDocumentsTopK(t *testing.T) {
	ix := NewIndex()
	docs := []Document{
		{URL: "a", Text: "Barcelona weather is warm. Barcelona beaches are sunny."},
		{URL: "b", Text: "Madrid weather is dry. The summer is hot in Madrid."},
		{URL: "c", Text: "Flight schedules changed this morning at the airport."},
	}
	if err := ix.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	terms := QueryTerms("warm Barcelona weather")
	full := ix.SearchDocuments(terms, 3)
	top1 := ix.SearchDocuments(terms, 1)
	if len(top1) != 1 || len(full) < 2 {
		t.Fatalf("unexpected result sizes: %d, %d", len(top1), len(full))
	}
	if top1[0].URL != full[0].URL {
		t.Errorf("k=1 winner %q != full ranking winner %q", top1[0].URL, full[0].URL)
	}
	if full[0].URL != "a" {
		t.Errorf("best doc = %q, want a", full[0].URL)
	}
}
