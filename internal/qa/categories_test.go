package qa

import (
	"strings"
	"testing"
)

// These tests exercise the remaining answer-type extractors of Module 3
// against the corpus distractor pages (which double as a small open-domain
// document set): temporal, person, numerical quantity, percentage and
// definition questions.

func TestAnswerTemporalWhen(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("When did Iraq invade Kuwait?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatTempDate {
		t.Errorf("category = %s, want temporal date", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	// The Gulf War page: "Iraq invaded Kuwait in August of 1990."
	if res.Best.Date.Year != 1990 || res.Best.Date.Month != 8 {
		t.Errorf("answer date = %+v, want August 1990", res.Best.Date)
	}
	if !strings.Contains(res.Best.Text, "1990") {
		t.Errorf("answer text = %q", res.Best.Text)
	}
}

func TestAnswerPersonWho(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("Who was the mayor of New York?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatPerson {
		t.Errorf("category = %s, want person", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	if !strings.Contains(strings.ToLower(res.Best.Text), "la guardia") {
		t.Errorf("answer = %q, want La Guardia", res.Best.Text)
	}
}

func TestAnswerNumericalQuantity(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("How many terms did La Guardia serve?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatNumQuantity {
		t.Errorf("category = %s, want numerical quantity", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	// "La Guardia served 3 terms between 1934 and 1945" — the count, not
	// the years.
	if res.Best.Value != 3 {
		t.Errorf("answer = %q (value %v), want 3", res.Best.Text, res.Best.Value)
	}
}

func TestAnswerPercentage(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What percentage did inflation reach in January of 1998?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatNumPercent {
		t.Errorf("category = %s, want numerical percentage", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	// "Inflation reached 8 percent in January of 1998".
	if res.Best.Value != 8 || !strings.Contains(res.Best.Text, "%") {
		t.Errorf("answer = %q (value %v), want 8%%", res.Best.Text, res.Best.Value)
	}
}

func TestAnswerDefinition(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What is Sirius?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatDefinition {
		t.Errorf("category = %s, want definition (proper-noun focus)", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	low := strings.ToLower(res.Best.Sentence)
	if !strings.Contains(low, "sirius") {
		t.Errorf("supporting sentence %q should mention Sirius", res.Best.Sentence)
	}
}

func TestAnswerGroupQuestion(t *testing.T) {
	// "Which band recorded 46 songs?" — group category via the focus.
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("Which band played concerts in Barcelona?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatGroup {
		t.Errorf("category = %s, want group", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	if !strings.Contains(strings.ToLower(res.Best.Text), "el prat") {
		t.Errorf("answer = %q, want El Prat (the musical group)", res.Best.Text)
	}
}

func TestNoPatternFallsBackToDefinition(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("Tell me about the financial crisis.")
	if err != nil {
		t.Fatalf("keyword-style input should still analyse: %v", err)
	}
	if res.Analysis.Category != CatDefinition {
		t.Errorf("category = %s, want the definition fallback", res.Analysis.Category)
	}
}
