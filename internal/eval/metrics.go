// Package eval implements the evaluation harness: retrieval/extraction
// metrics and one runnable experiment per table and figure of the paper
// (plus the quantified versions of its qualitative claims). Every
// experiment returns a Table whose rows are what EXPERIMENTS.md records.
package eval

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Metrics is a standard TP/FP/FN counter.
type Metrics struct {
	TP int
	FP int
	FN int
}

// Add accumulates another counter.
func (m *Metrics) Add(o Metrics) {
	m.TP += o.TP
	m.FP += o.FP
	m.FN += o.FN
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MRR computes the mean reciprocal rank of 1-based ranks (0 = not found).
func MRR(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var sum float64
	for _, r := range ranks {
		if r > 0 {
			sum += 1 / float64(r)
		}
	}
	return sum / float64(len(ranks))
}

// Table is one experiment's result: an identifier matching DESIGN.md's
// per-experiment index, a caption, and formatted rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row (stringifying the cells with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text with its title and notes.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// tableJSON is the machine-readable shape of one table.
type tableJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// TablesJSON renders tables as one JSON array (the shape of
// cmd/benchreport's -json output), so consumers can parse it as a single
// document.
func TablesJSON(tables []*Table) (string, error) {
	all := make([]tableJSON, len(tables))
	for i, t := range tables {
		all[i] = tableJSON{t.ID, t.Title, t.Header, t.Rows, t.Notes}
	}
	out, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
