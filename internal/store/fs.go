package store

import (
	"os"
	"path/filepath"
)

// FS is the filesystem surface the durability layer writes through: the
// WAL's open/write/sync/truncate cycle and the snapshot publish protocol
// (temp file, fsync, rename, directory sync). Production uses OS(); the
// fault-injection tests substitute a FaultFS wrapping it, so every
// failure mode a real disk exhibits — failed fsync, short write, rename
// refused, slow I/O — can be scheduled deterministically against the
// exact code paths that run in production.
type FS interface {
	// MkdirAll creates a directory (and parents) like os.MkdirAll.
	MkdirAll(dir string, perm os.FileMode) error
	// OpenFile opens the named file like os.OpenFile.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file like os.ReadFile.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(path string) error
	// Glob lists files matching pattern like filepath.Glob.
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory so a just-renamed entry is durable.
	SyncDir(dir string) error
}

// File is the handle surface the WAL and snapshot writers need from an
// open file. *os.File satisfies it.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
	Name() string
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
