package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dwqa/internal/store"
)

// recoveryConfig keeps the crash-recovery suite fast: one covered month
// still exercises every moving part (harvest, members, fact rows,
// provenance, analytic plans).
func recoveryConfig() Config {
	cfg := DefaultConfig()
	cfg.Months = []int{1}
	return cfg
}

// answerFingerprint renders every factoid trace and analytic answer of
// the scenario workload into one string — the byte-identity oracle of the
// recovery tests.
func answerFingerprint(t *testing.T, p *Pipeline) string {
	t.Helper()
	var b strings.Builder
	for _, q := range p.WeatherQuestions() {
		res, err := p.Ask(q)
		if err != nil {
			t.Fatalf("ask %q: %v", q, err)
		}
		b.WriteString(res.Trace().Format())
		b.WriteByte('\n')
	}
	for _, q := range AnalyticQuestions() {
		ans, err := p.AskOLAP(q)
		if err != nil {
			t.Fatalf("askOLAP %q: %v", q, err)
		}
		b.WriteString(ans.PlanString())
		b.WriteByte('\n')
		b.WriteString(ans.Result.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// feedPerQuestion runs Step 5 one question at a time, producing one WAL
// record pair per feed — the many-batches workload the crash trials cut
// at random offsets.
func feedPerQuestion(t *testing.T, p *Pipeline) {
	t.Helper()
	for _, q := range p.WeatherQuestions() {
		if _, err := p.Step5FeedWarehouse([]string{q}); err != nil {
			t.Fatalf("feeding %q: %v", q, err)
		}
	}
}

// closePipeline releases the store of a durable pipeline.
func closePipeline(t *testing.T, p *Pipeline) {
	t.Helper()
	if st := p.Store(); st != nil {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// copyDataDir clones a data directory (snapshots + WAL) for a trial.
func copyDataDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenPipelineRestart is the round-trip backbone: boot fresh, feed,
// restart, and the recovered pipeline must answer byte-identically
// without re-feeding anything.
func TestOpenPipelineRestart(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()

	p1, info1, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	feedPerQuestion(t, p1)
	want := answerFingerprint(t, p1)
	wantMembers, wantRows := p1.Warehouse.Counts()
	wantDocs, wantPassages, wantTerms := p1.Index.DocCount(), p1.Index.PassageCount(), p1.Index.TermCount()
	if wantRows == 0 {
		t.Fatal("feed loaded nothing; the test would be vacuous")
	}
	closePipeline(t, p1)

	p2, info2, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p2)
	if !info2.Recovered {
		t.Fatal("restart did not recover from the snapshot")
	}
	if info2.WALReplayed == 0 {
		t.Fatal("feed records were not replayed from the WAL")
	}
	gotMembers, gotRows := p2.Warehouse.Counts()
	if gotMembers != wantMembers || gotRows != wantRows {
		t.Fatalf("recovered warehouse %d members/%d rows, want %d/%d", gotMembers, gotRows, wantMembers, wantRows)
	}
	if d, ps, tm := p2.Index.DocCount(), p2.Index.PassageCount(), p2.Index.TermCount(); d != wantDocs || ps != wantPassages || tm != wantTerms {
		t.Fatalf("recovered index %d/%d/%d, want %d/%d/%d", d, ps, tm, wantDocs, wantPassages, wantTerms)
	}
	if got := answerFingerprint(t, p2); got != want {
		t.Fatal("recovered pipeline answers diverge from the uninterrupted run")
	}

	// Second restart: the state keeps round-tripping (snapshot written at
	// boot 1 + WAL replayed at boot 2 must equal what boot 3 sees).
	closePipeline(t, p2)
	p3, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p3)
	if got := answerFingerprint(t, p3); got != want {
		t.Fatal("second restart diverges")
	}
}

// TestCrashRecoveryProperty is the acceptance property: kill the process
// at a random WAL byte offset mid-feed; recovery must come up cleanly on
// the surviving prefix, and completing the interrupted feed must yield
// factoid and analytic answers byte-identical to a run that was never
// interrupted.
func TestCrashRecoveryProperty(t *testing.T) {
	cfg := recoveryConfig()
	refDir := t.TempDir()

	ref, _, err := OpenPipeline(cfg, refDir)
	if err != nil {
		t.Fatal(err)
	}
	questions := ref.WeatherQuestions()
	feedPerQuestion(t, ref)
	want := answerFingerprint(t, ref)
	wantMembers, wantRows := ref.Warehouse.Counts()
	closePipeline(t, ref)

	walBytes, err := os.ReadFile(filepath.Join(refDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("feed produced no WAL records; the property would be vacuous")
	}

	rng := rand.New(rand.NewSource(42))
	cuts := []int{0, len(walBytes)} // boundary kills: before any record, after a clean feed
	for i := 0; i < 6; i++ {
		cuts = append(cuts, rng.Intn(len(walBytes)))
	}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "trial")
			copyDataDir(t, refDir, dir)
			if err := os.WriteFile(filepath.Join(dir, "wal.log"), walBytes[:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			p, info, err := OpenPipeline(cfg, dir)
			if err != nil {
				t.Fatalf("recovery failed at cut %d: %v", cut, err)
			}
			defer closePipeline(t, p)
			if !info.Recovered {
				t.Fatal("trial did not recover from the snapshot")
			}
			// The surviving prefix never exceeds the uninterrupted state.
			members, rows := p.Warehouse.Counts()
			if members > wantMembers || rows > wantRows {
				t.Fatalf("recovered state overshoots: %d/%d members/rows vs %d/%d", members, rows, wantMembers, wantRows)
			}
			if cut == len(walBytes) {
				// A kill after the last ack loses nothing: answers must
				// already be byte-identical with no re-feed at all.
				if rows != wantRows {
					t.Fatalf("clean-WAL recovery lost rows: %d vs %d", rows, wantRows)
				}
				if got := answerFingerprint(t, p); got != want {
					t.Fatal("clean-WAL recovery diverges from the uninterrupted run")
				}
				return
			}
			// Complete the interrupted feed: the loader's restored dedup
			// state makes re-harvesting idempotent, so the result must
			// converge on the uninterrupted run exactly.
			if _, err := p.Step5FeedWarehouse(questions); err != nil {
				t.Fatal(err)
			}
			if members, rows := p.Warehouse.Counts(); members != wantMembers || rows != wantRows {
				t.Fatalf("after completing the feed: %d/%d members/rows, want %d/%d", members, rows, wantMembers, wantRows)
			}
			if got := answerFingerprint(t, p); got != want {
				t.Fatal("answers after recovery+refeed diverge from the uninterrupted run")
			}
		})
	}
}

// TestRefeedIdempotent is the WAL-replay-safety satellite at the system
// level: re-applying the same harvest (duplicate member names, identical
// fact rows) against a live or recovered warehouse changes nothing.
func TestRefeedIdempotent(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	p, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	questions := p.WeatherQuestions()
	if _, err := p.Step5FeedWarehouse(questions); err != nil {
		t.Fatal(err)
	}
	members1, rows1 := p.Warehouse.Counts()
	want := answerFingerprint(t, p)

	// Same batch, same loader: everything must dedup.
	if _, err := p.Step5FeedWarehouse(questions); err != nil {
		t.Fatal(err)
	}
	if m, r := p.Warehouse.Counts(); m != members1 || r != rows1 {
		t.Fatalf("re-feed changed the warehouse: %d/%d → %d/%d", members1, rows1, m, r)
	}
	if got := answerFingerprint(t, p); got != want {
		t.Fatal("re-feed changed answers")
	}
	closePipeline(t, p)

	// Same batch after a restart: the dedup state is rebuilt from the
	// warehouse itself, so recovery + re-feed must also change nothing.
	p2, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p2)
	if _, err := p2.Step5FeedWarehouse(questions); err != nil {
		t.Fatal(err)
	}
	if m, r := p2.Warehouse.Counts(); m != members1 || r != rows1 {
		t.Fatalf("post-recovery re-feed changed the warehouse: %d/%d → %d/%d", members1, rows1, m, r)
	}
	if got := answerFingerprint(t, p2); got != want {
		t.Fatal("post-recovery re-feed changed answers")
	}
}

// TestEngineSnapshotTo checks the serving-side snapshot path: SnapshotTo
// publishes a snapshot equal to the live state and resets the WAL it
// covers, and the stats surface the durability fields.
func TestEngineSnapshotTo(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	p, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	info, err := eng.SnapshotTo()
	if err != nil {
		t.Fatal(err)
	}
	if !info.WALReset {
		t.Fatal("snapshot covering all feeds did not reset the WAL")
	}
	st := eng.Stats()
	if !st.Durable || st.LastSnapshot == "" {
		t.Fatalf("stats missing durability fields: %+v", st)
	}
	if st.Members == 0 || st.FactRows == 0 {
		t.Fatalf("stats missing warehouse sizing: %+v", st)
	}
	want := answerFingerprint(t, p)
	wantMembers, wantRows := p.Warehouse.Counts()
	closePipeline(t, p)

	// The next boot restores from that snapshot with zero WAL replay.
	p2, info2, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p2)
	if !info2.Recovered || info2.WALReplayed != 0 {
		t.Fatalf("expected pure-snapshot recovery, got %+v", info2)
	}
	if m, r := p2.Warehouse.Counts(); m != wantMembers || r != wantRows {
		t.Fatalf("recovered %d/%d members/rows, want %d/%d", m, r, wantMembers, wantRows)
	}
	if got := answerFingerprint(t, p2); got != want {
		t.Fatal("post-SnapshotTo recovery diverges")
	}
}

// TestOpenPipelineWALOnlyBoot covers the crash window before the first
// snapshot: a directory holding only a WAL must boot by rebuilding the
// deterministic baseline and replaying the log on top of it.
func TestOpenPipelineWALOnlyBoot(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	p, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	want := answerFingerprint(t, p)
	_, wantRows := p.Warehouse.Counts()
	closePipeline(t, p)

	// Delete every snapshot, keep the WAL.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots to delete (err %v)", err)
	}
	for _, s := range snaps {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}

	p2, info, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p2)
	if info.Recovered {
		t.Fatal("WAL-only boot claimed a snapshot recovery")
	}
	if info.WALReplayed == 0 {
		t.Fatal("WAL-only boot replayed nothing")
	}
	if _, rows := p2.Warehouse.Counts(); rows != wantRows {
		t.Fatalf("WAL-only boot recovered %d rows, want %d", rows, wantRows)
	}
	if got := answerFingerprint(t, p2); got != want {
		t.Fatal("WAL-only boot diverges from the uninterrupted run")
	}
}

// TestRecoveredPipelineKeepsJournaling ensures feeds after a recovery are
// themselves durable: a second crash-and-recover sees them.
func TestRecoveredPipelineKeepsJournaling(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	p, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	questions := p.WeatherQuestions()
	if len(questions) < 2 {
		t.Fatalf("need at least 2 questions, have %d", len(questions))
	}
	if _, err := p.Step5FeedWarehouse(questions[:1]); err != nil {
		t.Fatal(err)
	}
	closePipeline(t, p)

	p2, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Step5FeedWarehouse(questions[1:]); err != nil {
		t.Fatal(err)
	}
	want := answerFingerprint(t, p2)
	_, wantRows := p2.Warehouse.Counts()
	closePipeline(t, p2)

	p3, info, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p3)
	if info.WALReplayed == 0 {
		t.Fatal("post-recovery feed was not journaled")
	}
	if _, rows := p3.Warehouse.Counts(); rows != wantRows {
		t.Fatalf("third boot recovered %d rows, want %d", rows, wantRows)
	}
	if got := answerFingerprint(t, p3); got != want {
		t.Fatal("third boot diverges")
	}
}

// TestRecoveryRejectsConfigMismatch pins the fingerprint gate: a data
// directory created under one scenario configuration refuses to graft
// its state onto a differently-configured boot.
func TestRecoveryRejectsConfigMismatch(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	p, _, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	closePipeline(t, p)

	other := cfg
	other.Seed = cfg.Seed + 1
	if _, _, err := OpenPipeline(other, dir); err == nil {
		t.Fatal("mismatched seed recovered silently")
	} else if !strings.Contains(err.Error(), "different scenario parameters") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}

	// The matching configuration still recovers.
	p2, info, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p2)
	if !info.Recovered {
		t.Fatal("matching config did not recover")
	}
}

// Compile-time check: the pipeline satisfies the engine's snapshot
// source contract.
var _ interface {
	ExportState() (*store.State, error)
	StateCounts() (int, int)
} = (*Pipeline)(nil)
