package nlp

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func tokenTexts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello world", []string{"Hello", "world"}},
		{"What is the temperature?", []string{"What", "is", "the", "temperature", "?"}},
		{"8ºC", []string{"8", "º", "C"}},
		{"46.4 F", []string{"46.4", "F"}},
		{"Monday, January 31, 2004", []string{"Monday", ",", "January", "31", ",", "2004"}},
		{"the 12th of May, 1997", []string{"the", "12th", "of", "May", ",", "1997"}},
		{"last-minute sales", []string{"last-minute", "sales"}},
		{"El Prat", []string{"El", "Prat"}},
		{"", nil},
		{"   ", nil},
		{"don't", []string{"don't"}},
		{"(8ºC)", []string{"(", "8", "º", "C", ")"}},
	}
	for _, c := range cases {
		got := tokenTexts(Tokenize(c.in))
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	in := "Barcelona Weather: Temperature 8º C around 46.4 F"
	for _, tok := range Tokenize(in) {
		if tok.Start < 0 || tok.End > len(in) || tok.Start >= tok.End {
			t.Fatalf("bad offsets %d:%d for %q", tok.Start, tok.End, tok.Text)
		}
		if in[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: text[%d:%d]=%q, token=%q",
				tok.Start, tok.End, in[tok.Start:tok.End], tok.Text)
		}
	}
}

// Property: every token's offsets index its own surface form, tokens are
// ordered and non-overlapping, for arbitrary input strings.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true // tokenizer contract assumes valid UTF-8
		}
		toks := Tokenize(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: concatenating token texts loses only whitespace.
func TestTokenizeCoversNonSpace(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		var kept int
		for _, tok := range Tokenize(s) {
			kept += tok.End - tok.Start
		}
		nonSpace := 0
		for _, r := range s {
			if !isSpaceRune(r) {
				nonSpace += utf8.RuneLen(r)
			}
		}
		return kept == nonSpace
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func isSpaceRune(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\r', '\v', '\f', 0x85, 0xA0:
		return true
	}
	return r > 0xFF && strings.ContainsRune("                　", r)
}

func tagOf(t *testing.T, sentence, word string) Tag {
	t.Helper()
	for _, tok := range Analyze(sentence) {
		if tok.Text == word {
			return tok.Tag
		}
	}
	t.Fatalf("word %q not found in %q", word, sentence)
	return ""
}

func TestTaggerPaperQuery(t *testing.T) {
	// The paper's Table 1 analysis of "What is the weather like in January
	// of 2004 in El Prat?": What/WP is/VBZ the/DT weather/NN like/IN in/IN
	// January/NP of/OF 2004/CD in/IN El/NP Prat/NP ?/SENT.
	q := "What is the weather like in January of 2004 in El Prat?"
	want := map[string]Tag{
		"What": TagWP, "is": TagVBZ, "the": TagDT, "weather": TagNN,
		"like": TagIN, "in": TagIN, "January": TagNP, "of": TagOF,
		"2004": TagCD, "El": TagNP, "Prat": TagNP, "?": TagSENT,
	}
	for word, wantTag := range want {
		if got := tagOf(t, q, word); got != wantTag {
			t.Errorf("tag(%q) = %s, want %s", word, got, wantTag)
		}
	}
}

func TestTaggerPaperPassage(t *testing.T) {
	// Table 1 passage: "Monday, January 31, 2004 Barcelona Weather:
	// Temperature 8º C around 46.4 F Clear skies today".
	p := "Monday, January 31, 2004\nBarcelona Weather: Temperature 8º C around 46.4 F Clear skies today"
	want := map[string]Tag{
		"Monday": TagNP, "January": TagNP, "31": TagCD, "2004": TagCD,
		"Barcelona": TagNP, "Weather": TagNP, "Temperature": TagNN,
		// The paper's Table 1 tags the degree marker as NN ("º NN º").
		"8": TagCD, "º": TagNN, "C": TagNP, "around": TagIN,
		"46.4": TagCD, "F": TagNP, "Clear": TagNP, "skies": TagNNS,
		"today": TagNN,
	}
	for word, wantTag := range want {
		if got := tagOf(t, p, word); got != wantTag {
			t.Errorf("tag(%q) = %s, want %s", word, got, wantTag)
		}
	}
}

func TestTaggerCLEFQuestion(t *testing.T) {
	q := "Which country did Iraq invade in 1990?"
	want := map[string]Tag{
		"Which": TagWP, "country": TagNN, "did": TagVBD, "Iraq": TagNP,
		"invade": TagVB, "in": TagIN, "1990": TagCD, "?": TagSENT,
	}
	for word, wantTag := range want {
		if got := tagOf(t, q, word); got != wantTag {
			t.Errorf("tag(%q) = %s, want %s", word, got, wantTag)
		}
	}
}

func TestLemmatize(t *testing.T) {
	cases := []struct {
		word string
		tag  Tag
		want string
	}{
		{"skies", TagNNS, "sky"},
		{"cities", TagNNS, "city"},
		{"temperatures", TagNNS, "temperature"},
		{"is", TagVBZ, "be"},
		{"was", TagVBD, "be"},
		{"invaded", TagVBD, "invade"},
		{"flights", TagNNS, "flight"},
		{"January", TagNP, "january"},
		{"goes", TagVBZ, "go"},
		{"dropped", TagVBD, "drop"},
		{"hoping", TagVBG, "hope"},
		{"arriving", TagVBG, "arrive"},
		{"boxes", TagNNS, "box"},
		{"buses", TagNNS, "bus"},
		{"people", TagNNS, "person"},
		{"8", TagCD, "8"},
		{"sales", TagNNS, "sale"},
	}
	for _, c := range cases {
		if got := Lemmatize(c.word, c.tag); got != c.want {
			t.Errorf("Lemmatize(%q,%s) = %q, want %q", c.word, c.tag, got, c.want)
		}
	}
}

// Property: lemmas are always lower-case and never empty for non-empty words.
func TestLemmatizeProperty(t *testing.T) {
	tags := []Tag{TagNN, TagNNS, TagVB, TagVBZ, TagVBD, TagVBG, TagNP, TagCD}
	f := func(word string, tagIdx uint8) bool {
		if word == "" || !utf8.ValidString(word) {
			return true
		}
		lemma := Lemmatize(word, tags[int(tagIdx)%len(tags)])
		return lemma == strings.ToLower(lemma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitSentences(t *testing.T) {
	text := "All stars shine but none do it like Sirius, the brightest star in the night sky. " +
		"The weather was mild. Temperatures reached 21 degrees."
	sents := SplitSentences(text)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences, want 3: %v", len(sents), sents)
	}
	if !strings.Contains(sents[0].Text(), "Sirius") {
		t.Errorf("first sentence lost content: %q", sents[0].Text())
	}
}

func TestSplitSentencesDecimalsSafe(t *testing.T) {
	text := "Temperature 8º C around 46.4 F. Clear skies today."
	sents := SplitSentences(text)
	if len(sents) != 2 {
		t.Fatalf("decimal split error: got %d sentences: %v", len(sents), sents)
	}
	if !strings.Contains(sents[0].Text(), "46.4") {
		t.Errorf("decimal token broken: %q", sents[0].Text())
	}
}

func TestSplitSentencesLineStructured(t *testing.T) {
	// Weather pages are line-structured without final punctuation.
	text := "Monday, January 31, 2004\nBarcelona Weather: Temperature 8º C around 46.4 F Clear skies today\nSunday, January 30, 2004\nBarcelona Weather: Temperature 7º C around 44.6 F Light rain"
	sents := SplitSentences(text)
	if len(sents) != 4 {
		t.Fatalf("got %d sentences, want 4", len(sents))
	}
}

func TestSentenceContentLemmas(t *testing.T) {
	sents := SplitSentences("What is the temperature in January of 2004 in El Prat?")
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence, got %d", len(sents))
	}
	lemmas := sents[0].ContentLemmas()
	want := map[string]bool{"temperature": true, "january": true, "2004": true, "el": true, "prat": true}
	for _, l := range lemmas {
		if !want[l] {
			t.Errorf("unexpected content lemma %q", l)
		}
		delete(want, l)
	}
	for l := range want {
		t.Errorf("missing content lemma %q", l)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "of", "is", "what"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"temperature", "barcelona", "weather"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Text: "January", Lemma: "january", Tag: TagNP}
	if got := tok.String(); got != "January NP january" {
		t.Errorf("Token.String() = %q", got)
	}
}

func TestContentWord(t *testing.T) {
	toks := Analyze("The temperature is 8 degrees")
	var content []string
	for _, tok := range toks {
		if tok.IsContentWord() {
			content = append(content, tok.Text)
		}
	}
	want := []string{"temperature", "8", "degrees"}
	if strings.Join(content, " ") != strings.Join(want, " ") {
		t.Errorf("content words = %v, want %v", content, want)
	}
}

func TestMonthDayHelpers(t *testing.T) {
	if m, ok := IsMonthName("january"); !ok || m != 1 {
		t.Errorf("IsMonthName(january) = %d,%v", m, ok)
	}
	if m, ok := IsMonthName("may"); !ok || m != 5 {
		t.Errorf("IsMonthName(may) = %d,%v", m, ok)
	}
	if _, ok := IsMonthName("prat"); ok {
		t.Error("IsMonthName(prat) should be false")
	}
	if !IsDayName("monday") || IsDayName("barcelona") {
		t.Error("IsDayName misbehaves")
	}
}

func TestAnalyzeOrdinals(t *testing.T) {
	toks := Analyze("What is the weather like in John Wayne on the 12th of May, 1997?")
	var found bool
	for _, tok := range toks {
		if tok.Text == "12th" {
			found = true
			if tok.Tag != TagCD {
				t.Errorf("12th tagged %s, want CD", tok.Tag)
			}
		}
	}
	if !found {
		t.Fatal("ordinal 12th not tokenised as one token")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	text := "Monday, January 31, 2004. Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(text)
	}
}
