package engine

import (
	"time"

	"dwqa/internal/qa"
)

// Test seams for the external engine_test package. The engine has no
// pluggable extraction in its public API (the qa.Systems are the real
// modules); these setters let resilience tests inject panicking, slow or
// stateful work functions without widening the production surface.

// SetAnswerFnForTest replaces the per-question factoid answer function.
func (e *Engine) SetAnswerFnForTest(fn func(string) (*qa.Result, error)) {
	e.answerFn = func(q string) (*qa.Result, qa.Timings, error) {
		r, err := fn(q)
		return r, qa.Timings{}, err
	}
}

// SetHarvestFnForTest replaces the per-question harvest function.
func (e *Engine) SetHarvestFnForTest(fn func(string) ([]qa.Answer, *qa.Result, error)) {
	e.harvestFn = func(q string) ([]qa.Answer, *qa.Result, qa.Timings, error) {
		a, r, err := fn(q)
		return a, r, qa.Timings{}, err
	}
}

// EnterDegradedForTest latches degraded read-only mode directly.
func (e *Engine) EnterDegradedForTest(reason string) { e.enterDegraded(reason) }

// SetSnapshotRetryForTest tightens the snapshot publish retry schedule
// and returns a restore function.
func SetSnapshotRetryForTest(retries int, backoff time.Duration) (restore func()) {
	oldR, oldB := snapshotRetries, snapshotBackoff
	snapshotRetries, snapshotBackoff = retries, backoff
	return func() { snapshotRetries, snapshotBackoff = oldR, oldB }
}
