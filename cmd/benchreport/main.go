// Command benchreport regenerates every experiment table of the
// reproduction (the data behind EXPERIMENTS.md). Each experiment maps to a
// table or figure of the paper, or to one of its quantified qualitative
// claims — see the per-experiment index in DESIGN.md.
//
// Usage:
//
//	benchreport              # run everything, plain text
//	benchreport -exp F5      # one experiment
//	benchreport -markdown    # markdown tables (EXPERIMENTS.md format)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dwqa/internal/eval"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment: F1 F2 F3 T1 F4 F5 QAIR ONTO IRFILTER PSIZE FEED")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	s := &eval.Suite{Seed: *seed}
	runs := map[string]func() (*eval.Table, error){
		"F1": s.Figure1, "F2": s.Figure2, "F3": s.Figure3, "T1": s.Table1,
		"F4": s.Figure4, "F5": s.Figure5, "QAIR": s.QAvsIR,
		"ONTO": s.OntologyAblation, "IRFILTER": s.IRFilter, "PSIZE": s.PassageSize, "FEED": s.Feed,
	}

	var tables []*eval.Table
	if *exp != "" {
		run, ok := runs[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchreport: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		tbl, err := run()
		if err != nil {
			fatal(err)
		}
		tables = append(tables, tbl)
	} else {
		all, err := s.RunAll()
		if err != nil {
			fatal(err)
		}
		tables = all
	}
	for _, t := range tables {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
