package qa

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dwqa/internal/ir"
	"dwqa/internal/ontology"
	"dwqa/internal/sbparser"
	"dwqa/internal/wordnet"
)

// Config holds the ablation switches and pipeline parameters. Each switch
// maps to a claim of the paper (see DESIGN.md §5).
type Config struct {
	// UseOntology enables entity resolution and axiom validation through
	// the shared ontology and the merged lexicon (Steps 2-4 on). Off, the
	// system behaves like an untuned AliQAn (the E-ONTO ablation).
	UseOntology bool
	// UseIRFilter runs IR-n passage retrieval before extraction. Off, the
	// extractor analyses every passage of the collection (the paper: "IR
	// tools are usually run as a first filtering phase, and QA works on IR
	// output. In this way, time of analysis ... is highly decreased").
	UseIRFilter bool
	// TopPassages is how many passages Module 2 hands to Module 3.
	TopPassages int
	// MinScore is the acceptance threshold for the best answer.
	MinScore float64
}

// DefaultConfig enables everything, as the paper's evaluated system does.
func DefaultConfig() Config {
	return Config{UseOntology: true, UseIRFilter: true, TopPassages: 5, MinScore: 0.5}
}

// System is the assembled AliQAn reproduction: a lexical database (merged
// or untuned), an optional domain ontology, the passage index built in the
// indexation phase, and the question pattern set (defaults + Step 4
// tuning).
//
// A System is safe for concurrent use: Answer and Harvest may run from any
// number of goroutines (the serving engine in internal/engine does exactly
// that), and TunePatterns may interleave with them — the pattern set is
// replaced copy-on-write so in-flight questions keep the set they started
// with. The substrates are themselves concurrency-safe (ir.Index and
// wordnet.WordNet use read-write locks; the document-location cache below
// is guarded by docLocMu).
type System struct {
	wn    *wordnet.WordNet
	dom   *ontology.Ontology
	index Retriever
	cfg   Config

	// patterns holds the active pattern set sorted by priority (highest
	// first, ties in installation order). TunePatterns replaces the slice
	// wholesale under patMu; analyze snapshots it under the read lock, so
	// matched *QuestionPattern pointers stay valid after later tuning.
	patMu    sync.RWMutex
	patterns []*QuestionPattern

	docLocMu sync.Mutex
	docLoc   map[int]string // document index → first city in its header

	// sentMemo memoizes every question-independent derivation over a
	// corpus sentence — rendered text, shallow parse, extracted dates,
	// content lemmas, first city — keyed by (document index, sentence
	// index). These are functions of the corpus and the tuned lexicon,
	// not the question, so the cold path computes them once per sentence
	// instead of once per question that retrieves its passage. Same
	// lexicon-stability assumption as docLoc above.
	sentMu   sync.Mutex
	sentMemo map[[2]int]*sentInfo
}

// sentInfo carries the memoized per-sentence derivations. The entry is
// published in the map before it is filled; the once gate lets concurrent
// questions share one computation without holding sentMu across it.
type sentInfo struct {
	once   sync.Once
	text   string
	blocks []sbparser.Block
	dates  []sbparser.DateRef
	lemmas []string // content lemmas
	loc    string   // first city, "" when none
}

// Retriever is the passage-retrieval substrate a System answers from. A
// single *ir.Index satisfies it directly; a sharded cluster satisfies it
// by scattering searches and gathering with globally-consistent term
// weights (internal/shard), which is invisible to the QA layers above.
type Retriever interface {
	// Search returns the top-k passages for the analysed question terms.
	Search(terms []string, k int) []ir.Passage
	// AllPassages returns every passage (the no-IR-filter ablation path).
	AllPassages() []ir.Passage
	// Document resolves a Passage.DocIndex back to its document.
	Document(i int) (ir.Document, error)
}

// NewSystem assembles a QA system. wn and index are required; dom may be
// nil (the system then runs without Step 2/4 knowledge).
func NewSystem(wn *wordnet.WordNet, dom *ontology.Ontology, index Retriever, cfg Config) (*System, error) {
	if wn == nil {
		return nil, fmt.Errorf("qa: nil lexicon")
	}
	if index == nil {
		return nil, fmt.Errorf("qa: nil passage index")
	}
	if cfg.TopPassages <= 0 {
		cfg.TopPassages = 5
	}
	s := &System{
		wn:    wn,
		dom:   dom,
		index: index,
		cfg:   cfg,
	}
	s.patterns = sortedPatterns(nil, DefaultPatterns())
	return s, nil
}

// lexicon returns the lexical database.
func (s *System) lexicon() *wordnet.WordNet { return s.wn }

// Config returns the active configuration.
func (s *System) Config() Config { return s.cfg }

// TunePatterns installs additional question patterns — Step 4 of the
// integration model ("the QA system is tuned to the new types of queries
// that are required by the users through a training process"). Safe to
// call while questions are in flight: the sorted set is rebuilt and
// swapped in atomically.
func (s *System) TunePatterns(ps ...QuestionPattern) {
	s.patMu.Lock()
	defer s.patMu.Unlock()
	s.patterns = sortedPatterns(s.patterns, ps)
}

// sortedPatterns builds a fresh priority-sorted pattern slice from the
// existing set plus additions. The old slice is never mutated, so readers
// holding a snapshot are unaffected.
func sortedPatterns(old []*QuestionPattern, add []QuestionPattern) []*QuestionPattern {
	out := make([]*QuestionPattern, 0, len(old)+len(add))
	out = append(out, old...)
	for i := range add {
		p := add[i]
		out = append(out, &p)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// snapshotPatterns returns the current pattern set for one question's
// analysis.
func (s *System) snapshotPatterns() []*QuestionPattern {
	s.patMu.RLock()
	defer s.patMu.RUnlock()
	return s.patterns
}

// Result is the full outcome of one question: the Module 1 analysis, the
// Module 2 passages, and the Module 3 candidates.
type Result struct {
	Analysis   *Analysis
	Passages   []ir.Passage
	Candidates []Answer
	// Best is the accepted answer, nil when no candidate clears MinScore.
	Best *Answer
}

// Timings reports the wall-clock time one question spent in each
// module, returned by value from the Timed entry points. The plain
// Answer/Harvest calls take no clock readings at all.
type Timings struct {
	Analyse time.Duration // Module 1: question analysis
	Search  time.Duration // Module 2: IR-n passage retrieval
	Extract time.Duration // Module 3: answer extraction
}

// clock reads the wall clock only when timings are wanted.
// Answer runs the three search modules on a question.
func (s *System) Answer(question string) (*Result, error) {
	r, _, err := s.answerTimed(question, false)
	return r, err
}

// AnswerTimed is Answer with per-module timing returned by value —
// value, not pointer, so the serving engine's hot path gets the module
// breakdown without a per-question heap allocation (a *Timings passed
// through the engine's indirect answer-function call would escape).
func (s *System) AnswerTimed(question string) (*Result, Timings, error) {
	return s.answerTimed(question, true)
}

func (s *System) answerTimed(question string, timed bool) (*Result, Timings, error) {
	var tm Timings
	var t time.Time
	if timed {
		t = time.Now()
	}
	a, err := s.analyze(question)
	if timed {
		tm.Analyse = time.Since(t)
	}
	if err != nil {
		return nil, tm, err
	}
	if timed {
		t = time.Now()
	}
	passages := s.selectPassages(a)
	if timed {
		tm.Search = time.Since(t)
		t = time.Now()
	}
	cands := s.extract(a, passages)
	if timed {
		tm.Extract = time.Since(t)
	}
	res := &Result{Analysis: a, Passages: passages, Candidates: cands}
	if len(cands) > 0 && cands[0].Score >= s.cfg.MinScore {
		best := cands[0]
		res.Best = &best
	}
	return res, tm, nil
}

// selectPassages is Module 2: IR-n retrieval over the main SB terms, or
// the whole collection when the IR filter is ablated.
func (s *System) selectPassages(a *Analysis) []ir.Passage {
	if !s.cfg.UseIRFilter {
		return s.index.AllPassages()
	}
	return s.index.Search(a.Terms, s.cfg.TopPassages)
}

// Harvest extracts every distinct well-formed record answering the
// question — the Step 5 operation that generates the database
// (temperature – date – city – web page) from a month-level query. One
// record per (date, location) is kept: the best-scoring one.
func (s *System) Harvest(question string) ([]Answer, *Result, error) {
	answers, r, _, err := s.harvestTimed(question, false)
	return answers, r, err
}

// HarvestTimed is Harvest with per-module timing returned by value
// (see AnswerTimed).
func (s *System) HarvestTimed(question string) ([]Answer, *Result, Timings, error) {
	return s.harvestTimed(question, true)
}

func (s *System) harvestTimed(question string, timed bool) ([]Answer, *Result, Timings, error) {
	var tm Timings
	var t time.Time
	if timed {
		t = time.Now()
	}
	a, err := s.analyze(question)
	if timed {
		tm.Analyse = time.Since(t)
	}
	if err != nil {
		return nil, nil, tm, err
	}
	if timed {
		t = time.Now()
	}
	passages := s.selectPassages(a)
	if timed {
		tm.Search = time.Since(t)
		t = time.Now()
	}
	cands := s.extract(a, passages)
	if timed {
		tm.Extract = time.Since(t)
	}
	res := &Result{Analysis: a, Passages: passages, Candidates: cands}

	type key struct {
		d   sbparser.DateRef
		loc string
	}
	best := map[key]Answer{}
	var order []key
	for _, c := range cands {
		if c.Score < s.cfg.MinScore {
			continue
		}
		// The harvest is query-driven: records outside the question's
		// temporal or spatial constraints do not enter the database.
		if len(a.Dates) > 0 && (c.Date.IsZero() || !dateMatches(a.Dates, c.Date)) {
			continue
		}
		if len(a.Locations) > 0 && !locationMatches(a.Locations, c.Location) {
			continue
		}
		k := key{c.Date, strings.ToLower(c.Location)}
		cur, ok := best[k]
		if !ok {
			best[k] = c
			order = append(order, k)
			continue
		}
		if c.Score > cur.Score {
			best[k] = c
		}
	}
	out := make([]Answer, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	sortAnswers(out)
	return out, res, tm, nil
}

// Trace reproduces the paper's Table 1 for a result: every row of the
// pipeline from the query to the extracted answer.
type Trace struct {
	Query              string
	QueryAnalysis      string // syntactic-morphologic analysis of the query
	QuestionPattern    string
	ExpectedAnswerType string
	MainSBs            []string
	PassageURL         string
	PassageText        string
	PassageAnalysis    string // syntactic-morphologic analysis of the passage
	ExtractedAnswer    string
}

// Trace builds the Table 1 view of a result. The passage shown is the
// top-ranked one (the paper shows the first passage of Figure 4).
func (r *Result) Trace() Trace {
	t := Trace{
		Query:              r.Analysis.Question,
		QueryAnalysis:      sbparser.Render(r.Analysis.Blocks),
		QuestionPattern:    r.Analysis.Pattern.Name,
		ExpectedAnswerType: r.Analysis.ExpectedAnswerType(),
		MainSBs:            r.Analysis.MainSBStrings(),
	}
	if len(r.Passages) > 0 {
		// Show the passage supporting the extracted answer; without an
		// answer, the top-ranked passage.
		p := r.Passages[0]
		if r.Best != nil {
		find:
			for _, cand := range r.Passages {
				if cand.DocURL != r.Best.URL {
					continue
				}
				for _, sent := range cand.Sentences {
					if sent.Text() == r.Best.Sentence {
						p = cand
						break find
					}
				}
			}
		}
		t.PassageURL = p.DocURL
		t.PassageText = p.Text
		var rendered []string
		for _, sent := range p.Sentences {
			rendered = append(rendered, sbparser.Render(sbparser.Parse(sent)))
		}
		t.PassageAnalysis = strings.Join(rendered, "\n")
	}
	if r.Best != nil {
		t.ExtractedAnswer = r.Best.Render()
	}
	return t
}

// Format renders the trace as the two-column table of the paper.
func (t Trace) Format() string {
	var b strings.Builder
	row := func(label, value string) {
		fmt.Fprintf(&b, "%-42s| %s\n", label, value)
	}
	row("Query", t.Query)
	row("Syntactic-morphologic analysis of the query", t.QueryAnalysis)
	row("Question pattern", t.QuestionPattern)
	row("Expected answer type", t.ExpectedAnswerType)
	row("Main SBs passed to the IR-n passage retrieval system", strings.Join(t.MainSBs, "  "))
	row("Passage returned by the IR-n system", strings.ReplaceAll(t.PassageText, "\n", " / "))
	row("Syntactic-morphologic analysis of the passage", strings.ReplaceAll(t.PassageAnalysis, "\n", " / "))
	row("Extracted answer", t.ExtractedAnswer)
	return b.String()
}
