// Package merge implements Step 3 of the paper's integration model: the
// domain ontology (derived from the UML model in Step 1 and enriched with
// DW instances in Step 2) is merged and mapped into the upper ontology
// (WordNet) used by the QA system.
//
// The algorithm follows the paper's description of its PROMPT-inspired
// name matching (references [5, 12]):
//
//  1. every concept is looked up in WordNet; if found, its instances are
//     attached under that synset;
//  2. if the concept is not found, its head word is looked up and the
//     concept is added as a new hyponym of the head's synset ("Last
//     Minute Sales" → hyponym of "Sale");
//  3. if there is no similar concept, the concept starts a new
//     ontological tree;
//  4. instances that already exist under the right subtree are kept;
//     instances whose alias matches an existing synset enrich it with the
//     new name ("JFK" becomes a synonym of "Kennedy International
//     Airport"); all others become new instance synsets.
package merge

import (
	"fmt"
	"sort"
	"strings"

	"dwqa/internal/nlp"
	"dwqa/internal/ontology"
	"dwqa/internal/wordnet"
)

// Action classifies what the merge did for one concept or instance.
type Action string

// Merge actions.
const (
	ExactMatch       Action = "exact-match"       // concept found in WordNet
	HeadMatch        Action = "head-match"        // added under its head word's synset
	NewTree          Action = "new-tree"          // added as a new root
	InstanceKept     Action = "instance-kept"     // instance already present under the subtree
	InstanceAdded    Action = "instance-added"    // instance synset created
	SynonymEnriched  Action = "synonym-enriched"  // existing synset gained the new name
	AlreadyMerged    Action = "already-merged"    // concept synset existed from a prior merge
	InstanceRelinked Action = "instance-relinked" // holonym edge added from instance properties
)

// Entry records one merge decision.
type Entry struct {
	Name     string // concept or instance name
	Action   Action
	SynsetID string // the synset the name ended up in / under
}

// Report summarises a merge run.
type Report struct {
	Entries []Entry
	// Mapping maps ontology concept names (normalised) to synset IDs —
	// the conceptualisation shared between DW and QA.
	Mapping map[string]string
}

// Count returns how many entries carry the action.
func (r *Report) Count(a Action) int {
	n := 0
	for _, e := range r.Entries {
		if e.Action == a {
			n++
		}
	}
	return n
}

// String renders a compact summary.
func (r *Report) String() string {
	return fmt.Sprintf("merge: %d exact, %d head, %d new-tree, %d inst-added, %d inst-kept, %d enriched",
		r.Count(ExactMatch), r.Count(HeadMatch), r.Count(NewTree),
		r.Count(InstanceAdded), r.Count(InstanceKept), r.Count(SynonymEnriched))
}

// conceptSynsetID derives the deterministic synset ID for a merged domain
// concept.
func conceptSynsetID(name string) string {
	return "n.dom." + strings.ReplaceAll(ontology.Normalize(name), " ", "_")
}

// instanceSynsetID derives the deterministic synset ID for a merged
// instance.
func instanceSynsetID(name string) string {
	return "n.inst." + strings.ReplaceAll(ontology.Normalize(name), " ", "_")
}

// Merge merges the domain ontology into the lexical database in place and
// returns the report. Merging is idempotent: re-running on the same inputs
// adds nothing new.
func Merge(dom *ontology.Ontology, wn *wordnet.WordNet) (*Report, error) {
	rep := &Report{Mapping: make(map[string]string)}

	concepts := dom.Concepts()
	sort.Strings(concepts)

	// Pass 1: map or create concept synsets.
	for _, name := range concepts {
		id, action, err := mergeConcept(dom, wn, name)
		if err != nil {
			return nil, err
		}
		rep.Mapping[ontology.Normalize(name)] = id
		rep.Entries = append(rep.Entries, Entry{Name: name, Action: action, SynsetID: id})
	}

	// Pass 2: instances.
	for _, name := range concepts {
		c := dom.Concept(name)
		conceptSyn := rep.Mapping[ontology.Normalize(name)]
		instNames := make([]string, 0, len(c.Instances))
		for k := range c.Instances {
			instNames = append(instNames, k)
		}
		sort.Strings(instNames)
		for _, ik := range instNames {
			inst := c.Instances[ik]
			entries, err := mergeInstance(wn, conceptSyn, inst)
			if err != nil {
				return nil, err
			}
			rep.Entries = append(rep.Entries, entries...)
		}
	}
	return rep, nil
}

// mergeConcept maps one concept to a synset, creating it when needed.
func mergeConcept(dom *ontology.Ontology, wn *wordnet.WordNet, name string) (string, Action, error) {
	// Already merged in a previous run?
	domID := conceptSynsetID(name)
	if wn.Synset(domID) != nil {
		return domID, AlreadyMerged, nil
	}
	// 1) Exact match on the concept name.
	if senses := wn.Lookup(name, wordnet.Noun); len(senses) > 0 {
		return senses[0].ID, ExactMatch, nil
	}
	// 2) Head-word match: the head of the phrase, lemmatised as a plural
	// noun would be ("Last Minute Sales" → "sale").
	head := headWord(name)
	if head != "" && !strings.EqualFold(head, name) {
		if senses := wn.Lookup(head, wordnet.Noun); len(senses) > 0 {
			if _, err := wn.AddSynset(domID, wordnet.Noun, senses[0].Base,
				domainGloss(dom, name), ontology.Normalize(name)); err != nil {
				return "", "", fmt.Errorf("merge: %w", err)
			}
			if err := wn.Relate(domID, wordnet.Hypernym, senses[0].ID); err != nil {
				return "", "", fmt.Errorf("merge: %w", err)
			}
			return domID, HeadMatch, nil
		}
	}
	// 3) New ontological tree.
	if _, err := wn.AddSynset(domID, wordnet.Noun, wordnet.BaseObject,
		domainGloss(dom, name), ontology.Normalize(name)); err != nil {
		return "", "", fmt.Errorf("merge: %w", err)
	}
	return domID, NewTree, nil
}

// headWord extracts the lemma of the syntactic head of a concept name —
// its last word, singularised ("Last Minute Sales" → "sale").
func headWord(name string) string {
	fields := strings.Fields(ontology.Normalize(name))
	if len(fields) == 0 {
		return ""
	}
	last := fields[len(fields)-1]
	return nlp.Lemmatize(last, nlp.TagNNS)
}

func domainGloss(dom *ontology.Ontology, name string) string {
	return "domain concept " + name + " from the " + dom.Name + " ontology"
}

// mergeInstance attaches one instance under the concept synset following
// the paper's rules.
func mergeInstance(wn *wordnet.WordNet, conceptSyn string, inst *ontology.Instance) ([]Entry, error) {
	var entries []Entry

	names := append([]string{inst.Name}, inst.Aliases...)

	// (a) Instance (or an alias) already known under the subtree?
	for _, n := range names {
		for _, s := range wn.Lookup(n, wordnet.Noun) {
			if wn.IsA(s.ID, conceptSyn) {
				// Known: make sure the canonical name is a lemma of it
				// (the JFK case: alias "Kennedy International Airport" is
				// known, enrich it with the synonym "JFK").
				if !s.HasLemma(inst.Name) {
					if err := wn.AddLemma(s.ID, inst.Name); err != nil {
						return nil, fmt.Errorf("merge: %w", err)
					}
					entries = append(entries, Entry{Name: inst.Name, Action: SynonymEnriched, SynsetID: s.ID})
				} else {
					entries = append(entries, Entry{Name: inst.Name, Action: InstanceKept, SynsetID: s.ID})
				}
				return entries, nil
			}
		}
	}

	// (b) New instance synset. Note: a name may exist in WordNet under an
	// unrelated subtree (the "John Wayne" actor, the "El Prat" band); the
	// paper adds the airport reading as a *new* sense rather than reusing
	// those.
	id := instanceSynsetID(inst.Name)
	if wn.Synset(id) == nil {
		if _, err := wn.AddSynset(id, wordnet.Noun, wordnet.BaseObject,
			"instance "+inst.Name+" fed from the data warehouse", names...); err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		if err := wn.Relate(id, wordnet.InstanceHypernym, conceptSyn); err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		entries = append(entries, Entry{Name: inst.Name, Action: InstanceAdded, SynsetID: id})
	} else {
		entries = append(entries, Entry{Name: inst.Name, Action: InstanceKept, SynsetID: id})
	}

	// (c) Location-style properties become holonym edges when the value
	// resolves to a known synset ("El Prat" locatedIn "Barcelona").
	propKeys := make([]string, 0, len(inst.Properties))
	for k := range inst.Properties {
		propKeys = append(propKeys, k)
	}
	sort.Strings(propKeys)
	for _, k := range propKeys {
		v := inst.Properties[k]
		if senses := wn.Lookup(v, wordnet.Noun); len(senses) > 0 {
			if err := wn.Relate(id, wordnet.PartHolonym, senses[0].ID); err != nil {
				return nil, fmt.Errorf("merge: %w", err)
			}
			entries = append(entries, Entry{Name: inst.Name + "→" + v, Action: InstanceRelinked, SynsetID: senses[0].ID})
		}
	}
	return entries, nil
}
