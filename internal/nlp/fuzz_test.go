package nlp

import (
	"testing"
	"unicode/utf8"
)

// fuzzSeeds are drawn from the paper's example questions and trace
// passages (Table 1, Figure 4/5, the CLEF query of §2) plus adversarial
// shapes for the tokenizer's number/ordinal/symbol handling.
var fuzzSeeds = []string{
	"What is the weather like in January of 2004 in El Prat?",
	"Which country did Iraq invade in 1990?",
	"What is Sirius?",
	"How hot is it in Barcelona in February of 2004?",
	"Barcelona Weather: Temperature 7º C around 44.6 F Light rain today",
	"High (ºC) 8 Low -2 Monday, January 31, 2004",
	"Temperature -4º C on the 12th of May",
	"46.4 F equals 8ºC; 100,5 is a decimal too",
	"the 1st, 2nd, 3rd and 12th of May 2004",
	"a-b-c it's O'Brien's 3.14159 …",
	"ºººº °° ª 8º9º10",
	"",
	" \t\n ",
	"12those 12th 12thx",
	"\xff\xfe invalid utf8 \xc3\x28",
}

// FuzzTokenize asserts the tokenizer's structural invariants on arbitrary
// input: every token spans valid, in-bounds, strictly increasing byte
// offsets and reproduces its slice of the input; the full analysis and
// sentence-splitting paths must not panic and sentences must cover their
// tokens.
func FuzzTokenize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		prevEnd := 0
		for i, tok := range toks {
			if tok.Text == "" {
				t.Fatalf("token %d is empty", i)
			}
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(text) {
				t.Fatalf("token %d has bad span [%d,%d) after %d in text of %d bytes",
					i, tok.Start, tok.End, prevEnd, len(text))
			}
			if text[tok.Start:tok.End] != tok.Text {
				t.Fatalf("token %d text %q does not match span %q",
					i, tok.Text, text[tok.Start:tok.End])
			}
			prevEnd = tok.End
		}

		// The tagged/lemmatised path must not panic and must keep spans.
		analyzed := Analyze(text)
		if len(analyzed) != len(toks) {
			t.Fatalf("Analyze returned %d tokens, Tokenize %d", len(analyzed), len(toks))
		}
		for i, tok := range analyzed {
			if utf8.ValidString(text) && tok.Lemma == "" && tok.Text != "" {
				t.Fatalf("token %d (%q) has empty lemma", i, tok.Text)
			}
		}

		// Sentences partition the tokens in order.
		total := 0
		for _, s := range SplitSentences(text) {
			if len(s.Tokens) == 0 {
				t.Fatal("empty sentence")
			}
			if s.Start != s.Tokens[0].Start || s.End != s.Tokens[len(s.Tokens)-1].End {
				t.Fatalf("sentence span [%d,%d) disagrees with its tokens", s.Start, s.End)
			}
			_ = s.Text()
			_ = s.ContentLemmas()
			total += len(s.Tokens)
		}
		if total != len(toks) {
			t.Fatalf("sentences hold %d tokens, tokenizer produced %d", total, len(toks))
		}
	})
}
