package engine_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dwqa/internal/core"
	"dwqa/internal/engine"
)

// newEquivalencePair builds two pipelines over the identical scenario
// (same seed, corpus, warehouse) whose engines differ in exactly one
// knob: selective tag-based invalidation (the default) versus the
// flush-everything-on-feed oracle (Config.FullFlushOnFeed). Driving both
// through the same feed/ask sequence must produce byte-identical
// answers — the oracle recomputes everything post-feed, so any
// divergence means selective invalidation under-evicted and served a
// stale answer.
func newEquivalencePair(t *testing.T) (sel, oracle *engine.Engine, pool []string) {
	t.Helper()
	// The ask pool mixes every cache-entry shape: factoid (untagged —
	// must survive feeds), member-filtered analytic (m: tags), grouped
	// unfiltered analytic (f: tag), and a dynamically-enumerated date
	// filter with no year (d: tag — its value set tracks the Month
	// level's member population).
	pool = []string{
		"What is the weather like in January of 2004 in El Prat?", // factoid
		"What is the average temperature in Barcelona by month?",  // m: filter
		"count of weather observations by city",                   // f: unfiltered
		"How many tickets were sold to Barcelona in January of 2004?",
		"Total last-minute revenue per destination city in January", // d: dynamic month
	}
	return newFlushConfiguredEngine(t, false), newFlushConfiguredEngine(t, true), pool
}

// newFlushConfiguredEngine builds a full scenario pipeline (Steps 1-4)
// and returns its serving engine with the feed-invalidation strategy
// pinned: selective tag-based eviction (false) or the legacy
// flush-everything oracle (true). Shared by the equivalence test and
// the hit-rate benchmark.
func newFlushConfiguredEngine(tb testing.TB, fullFlush bool) *engine.Engine {
	tb.Helper()
	cfg := core.DefaultConfig()
	cfg.Engine.FullFlushOnFeed = fullFlush
	p, err := core.NewPipeline(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for _, step := range []func() error{
		p.Step1DeriveOntology, p.Step2FeedOntology,
		p.Step3MergeUpperOntology, p.Step4TuneQA,
	} {
		if err := step(); err != nil {
			tb.Fatal(err)
		}
	}
	eng, err := p.Engine()
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// TestSelectiveInvalidationMatchesFullFlushOracle is the PR-7
// equivalence property test: random feed/ask interleavings must be
// answer-equivalent between selective invalidation and the full-flush
// oracle, while the selective cache demonstrably keeps untouched
// entries alive across feeds (the whole point of tagging).
func TestSelectiveInvalidationMatchesFullFlushOracle(t *testing.T) {
	sel, oracle, pool := newEquivalencePair(t)
	ctx := context.Background()
	harvest := sel.DefaultHarvest() // same scenario on both engines

	rng := rand.New(rand.NewSource(7))
	factoidSurvived := false
	analyticEvicted := false
	for round := 0; round < 8; round++ {
		// One random harvest slice, fed to both engines.
		i := rng.Intn(len(harvest))
		j := i + 1 + rng.Intn(3)
		if j > len(harvest) {
			j = len(harvest)
		}
		batch := harvest[i:j]
		selItems, selRep, selErr := sel.HarvestAll(ctx, batch)
		_, oraRep, oraErr := oracle.HarvestAll(ctx, batch)
		if selErr != nil || oraErr != nil {
			t.Fatalf("round %d: feed errs %v / %v", round, selErr, oraErr)
		}
		if selRep.Loaded != oraRep.Loaded || selRep.Skipped != oraRep.Skipped {
			t.Fatalf("round %d: feeds diverged: %+v vs %+v", round, selRep, oraRep)
		}
		_ = selItems

		// Ask the full pool in random order plus random repeats,
		// byte-compared slot by slot against the oracle.
		sample := append([]string(nil), pool...)
		rng.Shuffle(len(sample), func(a, b int) { sample[a], sample[b] = sample[b], sample[a] })
		for k := 0; k < rng.Intn(3); k++ {
			sample = append(sample, pool[rng.Intn(len(pool))])
		}
		selOut := sel.AskAll(ctx, sample)
		oraOut := oracle.AskAll(ctx, sample)
		for s := range sample {
			got, want := renderAsk(selOut[s]), renderAsk(oraOut[s])
			if got != want {
				t.Fatalf("round %d slot %d (%q):\nselective = %q\noracle    = %q",
					round, s, sample[s], got, want)
			}
			if selOut[s].Cached && selOut[s].Result != nil && !oraOut[s].Cached && round > 0 {
				factoidSurvived = true // untouched factoid entry outlived a feed
			}
			if round > 0 && selRep.Loaded > 0 && !selOut[s].Cached && selOut[s].OLAP != nil &&
				selOut[s].Question == "count of weather observations by city" {
				analyticEvicted = true // whole-fact entry died with the feed
			}
		}
	}

	// The selective cache must have strictly out-hit the flushing oracle
	// (same traffic, fewer evictions), and both invariants must have
	// actually been exercised.
	selStats, oraStats := sel.Stats(), oracle.Stats()
	if selStats.CacheHits < oraStats.CacheHits {
		t.Errorf("selective cache hits %d < oracle %d on identical traffic",
			selStats.CacheHits, oraStats.CacheHits)
	}
	if !factoidSurvived {
		t.Error("no factoid entry ever survived a feed; selectivity was not exercised")
	}
	if !analyticEvicted {
		t.Error("the whole-fact analytic entry never got evicted by a row-loading feed")
	}

	// Concurrency storm under the race detector: feeds (all-duplicate
	// after the rounds above, so warehouse state is already final) race
	// asks on the selective engine. Then, quiesced, every pool answer
	// must still match the oracle's post-feed recomputation.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 10; n++ {
			if _, _, err := sel.HarvestAll(ctx, nil); err != nil { // nil = full default workload
				t.Errorf("storm feed: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for n := 0; n < 20; n++ {
				q := pool[r.Intn(len(pool))]
				if res := sel.Ask(ctx, q); res.Err != nil {
					t.Errorf("storm ask %q: %v", q, res.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, _, err := oracle.HarvestAll(ctx, nil); err != nil {
		t.Fatal(err)
	}
	selOut := sel.AskAll(ctx, pool)
	oraOut := oracle.AskAll(ctx, pool)
	for s := range pool {
		if got, want := renderAsk(selOut[s]), renderAsk(oraOut[s]); got != want {
			t.Errorf("post-storm slot %d (%q):\nselective = %q\noracle    = %q", s, pool[s], got, want)
		}
	}
}
