package core

import (
	"errors"
	"testing"

	"dwqa/internal/nl2olap"
)

// TestPipelineAnalyticSurface covers the pipeline facade of the analytic
// path: the lazily built translator, the canonical analytic workload, and
// AskOLAP/AskAll dispatch through the serving engine.
func TestPipelineAnalyticSurface(t *testing.T) {
	p := newPipeline(t)
	for _, step := range []func() error{
		p.Step1DeriveOntology, p.Step2FeedOntology,
		p.Step3MergeUpperOntology, p.Step4TuneQA,
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}

	trans, err := p.Translator()
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.Translator()
	if err != nil {
		t.Fatal(err)
	}
	if trans != again {
		t.Error("Translator() should return the cached instance")
	}

	// Every canonical analytic question must translate (the workload the
	// mixed benchmarks replay).
	questions := AnalyticQuestions()
	if len(questions) == 0 {
		t.Fatal("empty analytic workload")
	}
	for _, q := range questions {
		if _, err := trans.Translate(q); err != nil {
			t.Errorf("Translate(%q): %v", q, err)
		}
	}

	ans, err := p.AskOLAP("Average price by destination country and month")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Result.Rows) == 0 {
		t.Error("no result rows")
	}
	if _, err := p.AskOLAP("What is Sirius?"); !errors.Is(err, nl2olap.ErrFactoid) {
		t.Errorf("factoid AskOLAP = %v, want ErrFactoid", err)
	}

	// AskAll dispatches per question: one factoid, one analytic.
	results, err := p.AskAll([]string{
		"What is the weather like in January of 2004 in El Prat?",
		"Number of flights per departure airport",
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Result == nil || results[0].OLAP != nil {
		t.Errorf("slot 0 should be factoid: %+v", results[0])
	}
	if results[1].OLAP == nil || results[1].Result != nil {
		t.Errorf("slot 1 should be analytic: %+v", results[1])
	}
}

// TestAskOLAPRequiresStep4: the analytic path runs on the serving engine,
// which needs the tuned QA system.
func TestAskOLAPRequiresStep4(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.AskOLAP("Total revenue"); err == nil {
		t.Fatal("AskOLAP before Step 4 should fail")
	}
}

// TestEarlyTranslatorPicksUpOntology: a translator requested before
// Step 1 must not freeze alias grounding off — once the ontology exists
// the pipeline rebuilds it, so Engine() always serves lexicon-backed
// grounding.
func TestEarlyTranslatorPicksUpOntology(t *testing.T) {
	p := newPipeline(t)
	early, err := p.Translator() // before any step: nil ontology
	if err != nil {
		t.Fatal(err)
	}
	if _, err := early.Translate("maximum temperature in El Prat in February of 2004"); err == nil {
		t.Fatal("ontology-free translator should not ground El Prat on Weather")
	}
	if err := p.RunAll(); err != nil {
		t.Fatal(err)
	}
	ans, err := p.AskOLAP("maximum temperature in El Prat in February of 2004")
	if err != nil {
		t.Fatalf("post-RunAll AskOLAP should ground through the ontology: %v", err)
	}
	if len(ans.Result.Rows) == 0 {
		t.Error("no result rows")
	}
	rebuilt, err := p.Translator()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == early {
		t.Error("translator was not rebuilt after the ontology appeared")
	}
}
