package ontology

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// buildSample constructs a small ontology shaped like the paper's Figure 2.
func buildSample() *Ontology {
	o := New("LastMinuteSales")
	o.Subclass("Airport", "Place")
	o.Subclass("City", "Place")
	o.Subclass("State", "Place")
	o.Subclass("Country", "Place")
	o.AddConcept("Last Minute Sales")
	o.AddAttribute("Last Minute Sales", Attribute{"Price", KindMeasure, "Float"})
	o.AddAttribute("Last Minute Sales", Attribute{"Miles", KindMeasure, "Float"})
	o.AddRelation("Airport", Relation{"locatedIn", "City"})
	o.AddRelation("City", Relation{"locatedIn", "State"})
	o.AddInstance("Airport", Instance{
		Name:       "El Prat",
		Aliases:    []string{"Barcelona-El Prat"},
		Properties: map[string]string{"locatedIn": "Barcelona"},
	})
	o.AddInstance("Airport", Instance{Name: "JFK", Aliases: []string{"Kennedy International Airport"}})
	o.AddInstance("City", Instance{Name: "Barcelona"})
	return o
}

func TestAddAndLookup(t *testing.T) {
	o := buildSample()
	if o.Concept("airport") == nil {
		t.Fatal("lookup must be case-insensitive")
	}
	if o.Concept("Last  Minute   Sales") == nil {
		t.Fatal("lookup must normalise whitespace")
	}
	if o.Concept("nope") != nil {
		t.Error("unknown concept should be nil")
	}
	if got := o.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	if got := o.InstanceCount(); got != 3 {
		t.Errorf("InstanceCount = %d, want 3", got)
	}
}

func TestAddConceptIdempotent(t *testing.T) {
	o := New("x")
	a := o.AddConcept("Airport")
	b := o.AddConcept("airport")
	if a != b {
		t.Error("AddConcept should be idempotent under normalisation")
	}
}

func TestSubclassAndIsA(t *testing.T) {
	o := buildSample()
	o.Subclass("International Airport", "Airport")
	if !o.IsA("International Airport", "Place") {
		t.Error("IsA should be transitive")
	}
	if !o.IsA("Airport", "Airport") {
		t.Error("IsA should be reflexive")
	}
	if o.IsA("Place", "Airport") {
		t.Error("IsA should not hold upward")
	}
	if o.IsA("ghost", "Place") {
		t.Error("unknown child should not IsA")
	}
}

func TestInstanceMergeOnReAdd(t *testing.T) {
	o := buildSample()
	o.AddInstance("Airport", Instance{
		Name:       "el prat",
		Aliases:    []string{"El Prat de Llobregat"},
		Properties: map[string]string{"iata": "BCN"},
	})
	concept, inst := o.FindInstance("El Prat")
	if concept != "Airport" || inst == nil {
		t.Fatalf("FindInstance(El Prat) = %q,%v", concept, inst)
	}
	if len(inst.Aliases) != 2 {
		t.Errorf("aliases not merged: %v", inst.Aliases)
	}
	if inst.Properties["iata"] != "BCN" || inst.Properties["locatedIn"] != "Barcelona" {
		t.Errorf("properties not merged: %v", inst.Properties)
	}
}

func TestFindInstanceByAlias(t *testing.T) {
	o := buildSample()
	concept, inst := o.FindInstance("Kennedy International Airport")
	if concept != "Airport" || inst == nil || inst.Name != "JFK" {
		t.Errorf("FindInstance by alias = %q,%v", concept, inst)
	}
	if c, i := o.FindInstance("Atlantis"); c != "" || i != nil {
		t.Error("unknown instance should return empty")
	}
}

func TestValidate(t *testing.T) {
	o := buildSample()
	if err := o.Validate(); err != nil {
		t.Fatalf("valid ontology rejected: %v", err)
	}
	// Inject a dangling parent bypassing Subclass's auto-create.
	o.Concept("Airport").Parents = append(o.Concept("Airport").Parents, "Ghost")
	if err := o.Validate(); err == nil {
		t.Error("dangling parent should fail validation")
	}
}

func TestValidateCycle(t *testing.T) {
	o := New("c")
	o.Subclass("A", "B")
	o.Subclass("B", "C")
	// Force a cycle directly.
	o.Concept("C").Parents = append(o.Concept("C").Parents, "A")
	if err := o.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func temperatureAxioms(t *testing.T, o *Ontology) {
	t.Helper()
	for _, a := range []Axiom{
		{Concept: "Temperature", Kind: AxiomValueFormat, Units: []string{"ºC", "C", "Celsius", "ºF", "F", "Fahrenheit"}},
		{Concept: "Temperature", Kind: AxiomValueRange, Unit: "C", Min: -90, Max: 60},
		{Concept: "Temperature", Kind: AxiomUnitConversion, FromUnit: "C", ToUnit: "F", Scale: 1.8, Offset: 32},
	} {
		if err := o.AddAxiom(a); err != nil {
			t.Fatalf("AddAxiom: %v", err)
		}
	}
}

func TestAxiomsConvertAndRange(t *testing.T) {
	o := New("ax")
	temperatureAxioms(t, o)

	f, err := o.Convert("Temperature", 8, "C", "F")
	if err != nil || f != 46.4 {
		t.Errorf("Convert(8C→F) = %v,%v want 46.4", f, err)
	}
	c, err := o.Convert("Temperature", 46.4, "F", "C")
	if err != nil || c < 7.999 || c > 8.001 {
		t.Errorf("Convert(46.4F→C) = %v,%v want 8", c, err)
	}
	if _, err := o.Convert("Temperature", 1, "C", "K"); err == nil {
		t.Error("unknown conversion should fail")
	}
	if v, _ := o.Convert("Temperature", 5, "c", "C"); v != 5 {
		t.Error("identity conversion should be a no-op")
	}

	ok, err := o.InRange("Temperature", 8, "C")
	if err != nil || !ok {
		t.Errorf("InRange(8C) = %v,%v", ok, err)
	}
	ok, _ = o.InRange("Temperature", 2000, "C")
	if ok {
		t.Error("2000C should be out of range")
	}
	// Range check with unit conversion: 46.4F is 8C, in range.
	ok, err = o.InRange("Temperature", 46.4, "F")
	if err != nil || !ok {
		t.Errorf("InRange(46.4F) = %v,%v", ok, err)
	}
	// No axioms → always in range.
	ok, _ = o.InRange("Price", 1e12, "EUR")
	if !ok {
		t.Error("concept without range axioms should accept all")
	}
}

func TestUnitKnown(t *testing.T) {
	o := New("ax")
	temperatureAxioms(t, o)
	for _, u := range []string{"ºC", "c", "Fahrenheit"} {
		if !o.UnitKnown("Temperature", u) {
			t.Errorf("UnitKnown(%q) = false", u)
		}
	}
	if o.UnitKnown("Temperature", "kelvin") {
		t.Error("kelvin should be unknown")
	}
}

func TestAxiomValidation(t *testing.T) {
	o := New("ax")
	bad := []Axiom{
		{Kind: AxiomValueFormat},                                              // no concept
		{Concept: "T", Kind: AxiomValueFormat},                                // no units
		{Concept: "T", Kind: AxiomValueRange, Min: 5, Max: 1},                 // inverted
		{Concept: "T", Kind: AxiomUnitConversion, FromUnit: "C"},              // no target
		{Concept: "T", Kind: AxiomUnitConversion, FromUnit: "C", ToUnit: "F"}, // zero scale
		{Concept: "T", Kind: "bogus"},
	}
	for i, a := range bad {
		if err := o.AddAxiom(a); err == nil {
			t.Errorf("bad axiom %d accepted", i)
		}
	}
}

// Property: Convert is invertible for the linear conversions we declare.
func TestConvertInverseProperty(t *testing.T) {
	o := New("ax")
	temperatureAxioms(t, o)
	f := func(v float64) bool {
		if v != v || v > 1e12 || v < -1e12 { // skip NaN and the extremes
			return true
		}
		fv, err := o.Convert("Temperature", v, "C", "F")
		if err != nil {
			return false
		}
		back, err := o.Convert("Temperature", fv, "F", "C")
		if err != nil {
			return false
		}
		diff := back - v
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOWLRoundTrip(t *testing.T) {
	o := buildSample()
	temperatureAxioms(t, o)
	var buf bytes.Buffer
	if err := o.WriteOWL(&buf); err != nil {
		t.Fatalf("WriteOWL: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"<Ontology", `name="LastMinuteSales"`, "El Prat", "SubClassOf", "NamedIndividual"} {
		if !strings.Contains(out, want) {
			t.Errorf("OWL output missing %q", want)
		}
	}

	back, err := ReadOWL(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ReadOWL: %v", err)
	}
	if back.Size() != o.Size() {
		t.Errorf("round trip size %d → %d", o.Size(), back.Size())
	}
	if back.InstanceCount() != o.InstanceCount() {
		t.Errorf("round trip instances %d → %d", o.InstanceCount(), back.InstanceCount())
	}
	if !back.IsA("Airport", "Place") {
		t.Error("round trip lost subclass edge")
	}
	concept, inst := back.FindInstance("el prat")
	if concept != "Airport" || inst == nil || inst.Properties["locatedIn"] != "Barcelona" {
		t.Error("round trip lost instance data")
	}
	if v, err := back.Convert("Temperature", 8, "C", "F"); err != nil || v != 46.4 {
		t.Errorf("round trip lost conversion axiom: %v %v", v, err)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped ontology invalid: %v", err)
	}
}

func TestReadOWLMalformed(t *testing.T) {
	if _, err := ReadOWL(strings.NewReader("<not-xml")); err == nil {
		t.Error("malformed XML should fail")
	}
}

func TestConcurrentUse(t *testing.T) {
	o := buildSample()
	done := make(chan bool)
	go func() {
		for i := 0; i < 200; i++ {
			o.FindInstance("El Prat")
			o.IsA("Airport", "Place")
		}
		done <- true
	}()
	for i := 0; i < 200; i++ {
		o.AddInstance("City", Instance{Name: "Madrid"})
	}
	<-done
}

func BenchmarkFindInstance(b *testing.B) {
	o := buildSample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.FindInstance("Kennedy International Airport")
	}
}
