// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms, all lock-free and allocation-free on
// the record path) plus the per-request stage tracing the engine stamps
// on every question (trace.go) and the process-level heap/RSS gauges the
// seeder and /metrics read (proc.go).
//
// Design rules, in order of priority:
//
//  1. The record path (Counter.Inc, Gauge.Set, Histogram.Observe) costs
//     one or two atomic operations and never allocates — it sits inside
//     the ask hot path PR 9 made zero-alloc, and the bench regression
//     gate holds it to a +0 allocs/op budget.
//  2. Exposition is Prometheus text format 0.0.4 (WriteTo), rendered
//     from per-metric line prefixes built once at registration, so a
//     scrape never formats a label.
//  3. Registration is idempotent: asking for an existing (name, labels)
//     pair returns the existing metric, so wiring code may re-run.
//
// Naming follows the Prometheus conventions: a `dwqa_` prefix, counters
// end in `_total`, durations are `_seconds` histograms, sizes are
// `_bytes` gauges. DESIGN.md §12 holds the full catalogue.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, rendered once at registration.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable integer value (sizes, sequence numbers, 0/1
// states).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FuncGauge is a gauge whose value is computed at read time (scrape or
// Value call) — used for values owned elsewhere, like WAL sequences or
// replica lag. The callback must not call back into the registry.
type FuncGauge struct {
	mu sync.Mutex
	fn func() float64
}

// Value evaluates the callback.
func (f *FuncGauge) Value() float64 {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

func (f *FuncGauge) set(fn func() float64) {
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// DefBuckets is the default latency histogram layout: exponential from
// 100µs to 10s, matched to the serving deadlines (DefaultAskTimeout sits
// mid-range, so timeout-adjacent tail latency lands in populated
// buckets, not a catch-all +Inf).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// IOBuckets is the disk-latency layout: exponential from 10µs (a
// buffered write) to 1s (a stalled fsync).
var IOBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free:
// one atomic add into the owning bucket, one into the count, one into
// the nanosecond sum. Bucket bounds are upper-inclusive in seconds, per
// the Prometheus `le` convention; a final implicit +Inf bucket catches
// the rest.
type Histogram struct {
	boundsNanos []int64 // upper bounds in nanoseconds, ascending
	buckets     []atomic.Uint64
	count       atomic.Uint64
	sumNanos    atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		boundsNanos: make([]int64, len(bounds)),
		buckets:     make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range bounds {
		h.boundsNanos[i] = int64(b * 1e9)
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	i := 0
	for i < len(h.boundsNanos) && n > h.boundsNanos[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// BucketCounts returns a snapshot of the per-bucket counts (the last
// entry is the +Inf bucket). Test and invariant-check helper.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) typeName() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered (name, labels) series with its prerendered
// exposition line prefixes.
type metric struct {
	name string
	help string
	kind metricKind
	seq  int // registration order within the family

	line string // "name{labels} " — simple value line prefix

	c  *Counter
	g  *Gauge
	fg *FuncGauge
	h  *Histogram

	// Histogram line prefixes: one per bucket (ascending, +Inf last),
	// plus the _sum and _count lines.
	bucketLines []string
	sumLine     string
	countLine   string
}

// Registry holds the registered metrics and renders the exposition.
// Registration takes a mutex; the returned metric handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed on name + rendered labels
	names   map[string]string  // family name → help of first registration
	order   []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		names:   make(map[string]string),
	}
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels, nil)
	return m.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels, nil)
	return m.g
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
// Re-registering the same series replaces the callback (wiring code may
// install a fresher closure, e.g. after a replica reconfigures).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *FuncGauge {
	m := r.register(name, help, kindGaugeFunc, labels, nil)
	m.fg.set(fn)
	return m.fg
}

// CounterFunc registers a counter whose value is fn() at scrape time,
// for monotone counts owned elsewhere (WAL errors, feed generation).
// Like GaugeFunc, re-registration replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) *FuncGauge {
	m := r.register(name, help, kindCounterFunc, labels, nil)
	m.fg.set(fn)
	return m.fg
}

// Histogram registers (or returns the existing) histogram series with
// the given upper bounds in seconds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.register(name, help, kindHistogram, labels, bounds)
	return m.h
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label, bounds []float64) *metric {
	if name == "" {
		panic("obs: empty metric name")
	}
	rendered := renderLabels(labels)
	key := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, kind.typeName(), m.kind.typeName()))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, seq: len(r.order), line: name + rendered + " "}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindCounterFunc, kindGaugeFunc:
		m.fg = &FuncGauge{}
	case kindHistogram:
		m.h = newHistogram(bounds)
		m.bucketLines = make([]string, len(bounds)+1)
		for i, b := range bounds {
			m.bucketLines[i] = name + "_bucket" + mergeLabels(rendered, `le="`+formatFloat(b)+`"`) + " "
		}
		m.bucketLines[len(bounds)] = name + "_bucket" + mergeLabels(rendered, `le="+Inf"`) + " "
		m.sumLine = name + "_sum" + rendered + " "
		m.countLine = name + "_count" + rendered + " "
	}
	if _, ok := r.names[name]; !ok {
		r.names[name] = help
	}
	r.metrics[key] = m
	r.order = append(r.order, m)
	return m
}

// renderLabels renders a label set as `{k="v",k2="v2"}` ("" when empty),
// escaping backslash, quote and newline in values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// mergeLabels appends extra (already rendered, no braces) into a
// rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// formatFloat renders a float the shortest way that round-trips —
// "0.005", "1", "2.5e-05".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue renders a scrape value: integral floats print without an
// exponent or trailing zeros so counters read naturally.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the Prometheus text exposition (format 0.0.4):
// families sorted by name, series within a family in registration
// order, `# HELP`/`# TYPE` once per family. Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()

	sort.SliceStable(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return metrics[i].seq < metrics[j].seq
	})

	var sb strings.Builder
	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				sb.WriteString("# HELP ")
				sb.WriteString(m.name)
				sb.WriteByte(' ')
				sb.WriteString(m.help)
				sb.WriteByte('\n')
			}
			sb.WriteString("# TYPE ")
			sb.WriteString(m.name)
			sb.WriteByte(' ')
			sb.WriteString(m.kind.typeName())
			sb.WriteByte('\n')
		}
		switch m.kind {
		case kindCounter:
			sb.WriteString(m.line)
			sb.WriteString(strconv.FormatUint(m.c.Value(), 10))
			sb.WriteByte('\n')
		case kindGauge:
			sb.WriteString(m.line)
			sb.WriteString(strconv.FormatInt(m.g.Value(), 10))
			sb.WriteByte('\n')
		case kindCounterFunc, kindGaugeFunc:
			sb.WriteString(m.line)
			sb.WriteString(formatValue(m.fg.Value()))
			sb.WriteByte('\n')
		case kindHistogram:
			// Cumulative buckets, per the exposition format. Counts are
			// read bucket-first; a concurrent Observe may make the final
			// _count read higher than the bucket sum of this snapshot,
			// never lower, so cumulative ordering stays monotone.
			var cum uint64
			for i := range m.bucketLines {
				cum += m.h.buckets[i].Load()
				sb.WriteString(m.bucketLines[i])
				sb.WriteString(strconv.FormatUint(cum, 10))
				sb.WriteByte('\n')
			}
			sb.WriteString(m.sumLine)
			sb.WriteString(formatValue(m.h.Sum().Seconds()))
			sb.WriteByte('\n')
			sb.WriteString(m.countLine)
			sb.WriteString(strconv.FormatUint(cum, 10))
			sb.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}
