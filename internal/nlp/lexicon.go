package nlp

// lexicon maps lower-cased word forms of closed classes and frequent open
// class words to their tag. Open-class words not present here are tagged by
// the suffix and capitalisation heuristics in tagger.go.
var lexicon = map[string]Tag{
	// Determiners.
	"the": TagDT, "a": TagDT, "an": TagDT, "this": TagDT, "that": TagDT,
	"these": TagDT, "those": TagDT, "each": TagDT, "every": TagDT,
	"some": TagDT, "any": TagDT, "no": TagDT, "all": TagDT, "both": TagDT,

	// Prepositions (the paper's trace splits "of" into its own OF tag).
	"of": TagOF,
	"in": TagIN, "on": TagIN, "at": TagIN, "by": TagIN, "for": TagIN,
	"with": TagIN, "from": TagIN, "into": TagIN, "during": TagIN,
	"about": TagIN, "against": TagIN, "between": TagIN, "through": TagIN,
	"under": TagIN, "over": TagIN, "after": TagIN, "before": TagIN,
	"above": TagIN, "below": TagIN, "around": TagIN, "near": TagIN,
	"like": TagIN, "as": TagIN, "per": TagIN, "since": TagIN,
	"until": TagIN, "within": TagIN, "without": TagIN, "towards": TagIN,

	// Wh-words.
	"what": TagWP, "who": TagWP, "whom": TagWP, "which": TagWP, "whose": TagWP,
	"when": TagWRB, "where": TagWRB, "why": TagWRB, "how": TagWRB,

	// Forms of "to be" (tagged VBZ/VBD... with lemma "be").
	"is": TagVBZ, "am": TagVBP, "are": TagVBP, "was": TagVBD, "were": TagVBD,
	"be": TagVB, "been": TagVBN, "being": TagVBG, "isn't": TagVBZ,

	// Forms of "to have" and "to do".
	"has": TagVBZ, "have": TagVBP, "had": TagVBD, "having": TagVBG,
	"does": TagVBZ, "do": TagVBP, "did": TagVBD, "doing": TagVBG, "done": TagVBN,

	// Modals.
	"can": TagMD, "could": TagMD, "will": TagMD, "would": TagMD,
	"shall": TagMD, "should": TagMD, "may": TagMD, "might": TagMD, "must": TagMD,

	// Infinitival "to" (IN "to" as direction collapses here too; the
	// shallow parser treats TO like a preposition when followed by an NP).
	"to": TagTO,

	// Pronouns.
	"i": TagPRP, "you": TagPRP, "he": TagPRP, "she": TagPRP, "it": TagPRP,
	"we": TagPRP, "they": TagPRP, "me": TagPRP, "him": TagPRP, "her": TagPRP,
	"us": TagPRP, "them": TagPRP,
	"my": TagPRPS, "your": TagPRPS, "his": TagPRPS, "its": TagPRPS,
	"our": TagPRPS, "their": TagPRPS,

	// Conjunctions.
	"and": TagCC, "or": TagCC, "but": TagCC, "nor": TagCC, "yet": TagCC,

	// Existential.
	"there": TagEX,

	// Frequent adverbs that the suffix rules would miss.
	"not": TagRB, "n't": TagRB, "very": TagRB, "too": TagRB, "also": TagRB,
	"now": TagRB, "then": TagRB, "here": TagRB, "so": TagRB, "just": TagRB,
	"only": TagRB, "more": TagRB, "most": TagRB, "much": TagRB, "well": TagRB,
	"today": TagNN, "yesterday": TagNN, "tomorrow": TagNN,

	// Frequent adjectives without adjectival suffixes.
	"good": TagJJ, "bad": TagJJ, "new": TagJJ, "old": TagJJ, "high": TagJJ,
	"low": TagJJ, "hot": TagJJ, "cold": TagJJ, "warm": TagJJ, "cool": TagJJ,
	"mild": TagJJ, "clear": TagJJ, "cloudy": TagJJ, "sunny": TagJJ,
	"rainy": TagJJ, "last": TagJJ, "next": TagJJ, "first": TagJJ,
	"late": TagJJ, "great": TagJJ, "big": TagJJ, "small": TagJJ,
	"best": TagJJ, "worst": TagJJ, "average": TagJJ, "maximum": TagJJ,
	"minimum": TagJJ, "brightest": TagJJ, "visible": TagJJ, "many": TagJJ,
	"few": TagJJ, "several": TagJJ, "daily": TagJJ, "whole": TagJJ,

	// Frequent verbs the heuristics would mistag.
	"buy": TagVBP, "bought": TagVBD, "sell": TagVBP, "sold": TagVBD,
	"sale": TagNN, "fly": TagVBP, "flew": TagVBD, "flown": TagVBN,
	"shine": TagVBP, "shone": TagVBD, "go": TagVBP, "went": TagVBD,
	"gone": TagVBN, "come": TagVBP, "came": TagVBD, "get": TagVBP,
	"got": TagVBD, "made": TagVBD, "make": TagVBP, "take": TagVBP,
	"took": TagVBD, "taken": TagVBN, "see": TagVBP, "saw": TagVBD,
	"seen": TagVBN, "say": TagVBP, "said": TagVBD, "invade": TagVB,
	"invaded": TagVBD, "reach": TagVBP, "reached": TagVBD, "rose": TagVBD,
	"rise": TagVBP, "fell": TagVBD, "fall": TagVBP, "expect": TagVBP,
	"expected": TagVBD, "record": TagVBP, "recorded": TagVBD,
	"measure": TagVBP, "measured": TagVBD, "drop": TagVBP,
	"dropped": TagVBD, "remain": TagVBP, "remained": TagVBD,
	"stay": TagVBP, "stayed": TagVBD, "hover": TagVBP, "hovered": TagVBD,

	// Frequent common nouns relevant to the evaluation domain.
	"weather": TagNN, "temperature": TagNN, "temperatures": TagNNS,
	"sky": TagNN, "skies": TagNNS, "city": TagNN, "cities": TagNNS,
	"country": TagNN, "airport": TagNN, "airports": TagNNS,
	"flight": TagNN, "flights": TagNNS, "ticket": TagNN, "tickets": TagNNS,
	"price": TagNN, "prices": TagNNS, "degree": TagNN, "degrees": TagNNS,
	"day": TagNN, "days": TagNNS, "month": TagNN, "months": TagNNS,
	"year": TagNN, "years": TagNNS, "week": TagNN, "weeks": TagNNS,
	"star": TagNN, "stars": TagNNS, "universe": TagNN, "night": TagNN,
	"morning": TagNN, "afternoon": TagNN, "evening": TagNN,
	"rain": TagNN, "snow": TagNN, "wind": TagNN, "humidity": TagNN,
	"forecast": TagNN, "climate": TagNN, "customer": TagNN,
	"customers": TagNNS, "company": TagNN, "group": TagNN,
	"person": TagNN, "people": TagNNS, "mile": TagNN, "miles": TagNNS,
	"sales": TagNNS, "report": TagNN, "reports": TagNNS,
	"passenger": TagNN, "passengers": TagNNS, "traveler": TagNN,
	"travelers": TagNNS, "capital": TagNN, "state": TagNN,
	"conditions": TagNNS, "condition": TagNN, "none": TagNN,
}

// monthNames and dayNames are tagged as proper nouns (the paper tags
// "January NP january") and drive date detection in the shallow parser.
var monthNames = map[string]int{
	"january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
	"june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
	"november": 11, "december": 12,
}

var dayNames = map[string]bool{
	"monday": true, "tuesday": true, "wednesday": true, "thursday": true,
	"friday": true, "saturday": true, "sunday": true,
}

// IsMonthName reports whether the lower-cased word names a month and, if
// so, its 1-based number.
func IsMonthName(lower string) (int, bool) {
	m, ok := monthNames[lower]
	return m, ok
}

// IsDayName reports whether the lower-cased word names a weekday.
func IsDayName(lower string) bool { return dayNames[lower] }
