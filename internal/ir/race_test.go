package ir

import (
	"fmt"
	"sync"
	"testing"
)

// TestAddWhileSearchRace interleaves Add with every search path under the
// race detector: the pooled sparse accumulators are shared mutable
// scratch state, and this pins that each query owns its accumulator
// exclusively while documents (and therefore term ids, posting lists and
// the passage count) grow concurrently. Run with -race to arm it.
func TestAddWhileSearchRace(t *testing.T) {
	ix := NewIndex(WithPassageSize(2), WithStride(1))
	if err := ix.AddAll(testDocs()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Writer: keeps indexing fresh documents, growing passages and terms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 60; i++ {
			doc := Document{
				URL: fmt.Sprintf("http://race.example/%d", i),
				Text: fmt.Sprintf("Fresh document number %d mentions temperature in Barcelona. "+
					"Another sentence cites term%d and weather in January.", i, i),
			}
			if err := ix.Add(doc); err != nil {
				t.Errorf("Add: %v", err)
				return
			}
		}
	}()

	// Readers: sparse and dense searches, both retrieval levels, plus the
	// read-only accessors, all racing the writer.
	queries := [][]string{
		{"temperature", "barcelona"},
		{"weather", "january"},
		{"actor", "album"},
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				terms := queries[(g+i)%len(queries)]
				ix.Search(terms, 3)
				ix.SearchDocuments(terms, 2)
				ix.SearchReference(terms, 3)
				ix.SearchDocumentsReference(terms, 2)
				ix.DF("temperature")
				ix.PassageCount()
			}
		}(g)
	}
	wg.Wait()

	// The index must still answer correctly after the churn.
	got := ix.Search([]string{"temperature", "barcelona"}, 3)
	if len(got) == 0 {
		t.Fatal("no results after concurrent add/search")
	}
}
