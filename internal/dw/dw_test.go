package dw

import (
	"math/rand"
	"strings"
	"testing"

	"dwqa/internal/mdm"
)

// testSchema builds a miniature Last Minute Sales star schema: a fact with
// Price/Miles, an Airport dimension with an Airport→City→Country hierarchy
// (used twice, as Departure and Destination) and a Date dimension
// Day→Month→Year.
func testSchema() *mdm.Schema {
	airport := &mdm.DimensionClass{
		Name: "Airport",
		Levels: []*mdm.Level{
			{Name: "Airport", Descriptor: "Name", RollsUpTo: "City"},
			{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
			{Name: "Country", Descriptor: "Name"},
		},
	}
	date := &mdm.DimensionClass{
		Name: "Date",
		Levels: []*mdm.Level{
			{Name: "Day", Descriptor: "Date", RollsUpTo: "Month"},
			{Name: "Month", Descriptor: "Name", RollsUpTo: "Year"},
			{Name: "Year", Descriptor: "Name"},
		},
	}
	fact := &mdm.FactClass{
		Name:     "LastMinuteSales",
		Measures: []mdm.Measure{{Name: "Price", Type: mdm.TypeFloat}, {Name: "Miles", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "Departure", Dimension: "Airport"},
			{Role: "Destination", Dimension: "Airport"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	return mdm.NewSchema("test").AddDimension(airport).AddDimension(date).AddFact(fact)
}

// populate fills the warehouse with a small deterministic dataset.
func populate(t testing.TB, w *Warehouse) {
	t.Helper()
	add := func(dim, level, name, parent string) {
		t.Helper()
		if _, err := w.AddMember(dim, level, name, nil, parent); err != nil {
			t.Fatalf("AddMember(%s,%s,%s): %v", dim, level, name, err)
		}
	}
	add("Airport", "Country", "Spain", "")
	add("Airport", "Country", "USA", "")
	add("Airport", "City", "Barcelona", "Spain")
	add("Airport", "City", "Madrid", "Spain")
	add("Airport", "City", "New York", "USA")
	add("Airport", "Airport", "El Prat", "Barcelona")
	add("Airport", "Airport", "Barajas", "Madrid")
	add("Airport", "Airport", "JFK", "New York")
	add("Airport", "Airport", "La Guardia", "New York")

	add("Date", "Year", "2004", "")
	add("Date", "Month", "2004-01", "2004")
	add("Date", "Month", "2004-02", "2004")
	add("Date", "Day", "2004-01-30", "2004-01")
	add("Date", "Day", "2004-01-31", "2004-01")
	add("Date", "Day", "2004-02-01", "2004-02")

	rows := []struct {
		dep, dst, day string
		price, miles  float64
	}{
		{"Barajas", "El Prat", "2004-01-30", 120, 300},
		{"Barajas", "El Prat", "2004-01-31", 150, 300},
		{"JFK", "El Prat", "2004-01-31", 480, 3800},
		{"El Prat", "JFK", "2004-02-01", 520, 3800},
		{"El Prat", "La Guardia", "2004-02-01", 410, 3750},
		{"Barajas", "JFK", "2004-01-30", 450, 3600},
	}
	for _, r := range rows {
		err := w.AddFact("LastMinuteSales",
			map[string]string{"Departure": r.dep, "Destination": r.dst, "Date": r.day},
			map[string]float64{"Price": r.price, "Miles": r.miles})
		if err != nil {
			t.Fatalf("AddFact: %v", err)
		}
	}
}

func newPopulated(t *testing.T) *Warehouse {
	t.Helper()
	w, err := New(testSchema())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	populate(t, w)
	return w
}

func TestNewRejectsInvalidSchema(t *testing.T) {
	s := mdm.NewSchema("bad").AddFact(&mdm.FactClass{Name: "F"})
	if _, err := New(s); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestAddMemberErrors(t *testing.T) {
	w, _ := New(testSchema())
	if _, err := w.AddMember("Ghost", "X", "a", nil, ""); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := w.AddMember("Airport", "Ghost", "a", nil, ""); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := w.AddMember("Airport", "Airport", "", nil, ""); err == nil {
		t.Error("empty member name accepted")
	}
	if _, err := w.AddMember("Airport", "Airport", "El Prat", nil, "Barcelona"); err == nil {
		t.Error("missing parent accepted")
	}
	if _, err := w.AddMember("Airport", "Country", "Spain", nil, "Europe"); err == nil {
		t.Error("parent on top level accepted")
	}
}

func TestAddMemberIdempotentAndUpdating(t *testing.T) {
	w, _ := New(testSchema())
	if _, err := w.AddMember("Airport", "Country", "Spain", nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMember("Airport", "City", "Barcelona", map[string]string{"pop": "1.6M"}, "Spain"); err != nil {
		t.Fatal(err)
	}
	k1, _ := w.MemberKey("Airport", "City", "Barcelona")
	k2, err := w.AddMember("Airport", "City", "Barcelona", map[string]string{"area": "101km2"}, "")
	if err != nil || k1 != k2 {
		t.Fatalf("re-add changed key: %d → %d (%v)", k1, k2, err)
	}
	m, _ := w.Member("Airport", "City", k1)
	if m.Attrs["pop"] != "1.6M" || m.Attrs["area"] != "101km2" {
		t.Errorf("attrs not merged: %v", m.Attrs)
	}
	if m.Parent == NoParent {
		t.Error("re-add without parent cleared the parent link")
	}
}

func TestAddFactErrors(t *testing.T) {
	w := newPopulated(t)
	base := map[string]string{"Departure": "El Prat", "Destination": "JFK", "Date": "2004-01-30"}
	if err := w.AddFact("Ghost", base, nil); err == nil {
		t.Error("unknown fact accepted")
	}
	if err := w.AddFact("LastMinuteSales", map[string]string{"Departure": "El Prat"}, nil); err == nil {
		t.Error("missing role accepted")
	}
	bad := map[string]string{"Departure": "El Prat", "Destination": "Narnia", "Date": "2004-01-30"}
	if err := w.AddFact("LastMinuteSales", bad, nil); err == nil {
		t.Error("unknown member accepted")
	}
	if err := w.AddFact("LastMinuteSales", base, map[string]float64{"Ghost": 1}); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestExecuteGroupByCity(t *testing.T) {
	w := newPopulated(t)
	res, err := w.Execute(Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got := map[string]float64{}
	for _, r := range res.Rows {
		got[r.Groups[0]] = r.Value
	}
	want := map[string]float64{"Barcelona": 750, "New York": 1380}
	for city, v := range want {
		if got[city] != v {
			t.Errorf("sum(Price) dest=%s = %v, want %v", city, got[city], v)
		}
	}
}

func TestExecuteRollUpToCountry(t *testing.T) {
	w := newPopulated(t)
	q := Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}},
	}
	res, err := w.RollUp(q, "Destination", "Country")
	if err != nil {
		t.Fatalf("RollUp: %v", err)
	}
	got := map[string]float64{}
	for _, r := range res.Rows {
		got[r.Groups[0]] = r.Value
	}
	if got["Spain"] != 750 || got["USA"] != 1380 {
		t.Errorf("country sums = %v", got)
	}
}

func TestExecuteSliceAndDice(t *testing.T) {
	w := newPopulated(t)
	q := Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Date", Level: "Month"}},
	}
	res, err := w.Slice(q, "Destination", "City", "Barcelona")
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	got := map[string]float64{}
	for _, r := range res.Rows {
		got[r.Groups[0]] = r.Value
	}
	if got["2004-01"] != 750 || len(res.Rows) != 1 {
		t.Errorf("slice rows = %v", res.Rows)
	}

	res, err = w.Dice(q, "Destination", "Airport", []string{"JFK", "La Guardia"})
	if err != nil {
		t.Fatalf("Dice: %v", err)
	}
	var total float64
	for _, r := range res.Rows {
		total += r.Value
	}
	if total != 1380 {
		t.Errorf("dice total = %v, want 1380", total)
	}
}

func TestExecuteAggregations(t *testing.T) {
	w := newPopulated(t)
	for _, c := range []struct {
		agg  Agg
		want float64
	}{
		{Sum, 2130}, {Count, 6}, {Avg, 355}, {Min, 120}, {Max, 520},
	} {
		res, err := w.Execute(Query{Fact: "LastMinuteSales", Measure: "Price", Agg: c.agg})
		if err != nil {
			t.Fatalf("Execute(%s): %v", c.agg, err)
		}
		if len(res.Rows) != 1 || res.Rows[0].Value != c.want {
			t.Errorf("%s(Price) = %v, want %v", c.agg, res.Rows, c.want)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	w := newPopulated(t)
	if _, err := w.Execute(Query{Fact: "Ghost", Measure: "Price", Agg: Sum}); err == nil {
		t.Error("unknown fact accepted")
	}
	if _, err := w.Execute(Query{Fact: "LastMinuteSales", Measure: "Ghost", Agg: Sum}); err == nil {
		t.Error("unknown measure accepted")
	}
	if _, err := w.Execute(Query{Fact: "LastMinuteSales", Measure: "Price", Agg: "median"}); err == nil {
		t.Error("unknown agg accepted")
	}
	q := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Ghost", Level: "City"}}}
	if _, err := w.Execute(q); err == nil {
		t.Error("unknown role accepted")
	}
	q = Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "Ghost"}}}
	if _, err := w.Execute(q); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestFilterUnknownValueMatchesNothing(t *testing.T) {
	w := newPopulated(t)
	res, err := w.Slice(Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum},
		"Destination", "City", "Oz")
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("slicing on unknown member returned rows: %v", res.Rows)
	}
}

// Property: the grand total is invariant under the grouping level — a sum
// rolled up from Airport to City to Country never changes.
func TestRollUpSumInvariant(t *testing.T) {
	w, _ := New(testSchema())
	populate(t, w)
	rng := rand.New(rand.NewSource(7))
	days := []string{"2004-01-30", "2004-01-31", "2004-02-01"}
	airports := []string{"El Prat", "Barajas", "JFK", "La Guardia"}
	for i := 0; i < 300; i++ {
		err := w.AddFact("LastMinuteSales", map[string]string{
			"Departure":   airports[rng.Intn(len(airports))],
			"Destination": airports[rng.Intn(len(airports))],
			"Date":        days[rng.Intn(len(days))],
		}, map[string]float64{"Price": float64(rng.Intn(500) + 50)})
		if err != nil {
			t.Fatalf("AddFact: %v", err)
		}
	}
	var totals []float64
	for _, level := range []string{"Airport", "City", "Country"} {
		res, err := w.Execute(Query{
			Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
			GroupBy: []LevelSel{{Role: "Destination", Level: level}},
		})
		if err != nil {
			t.Fatalf("Execute(%s): %v", level, err)
		}
		var total float64
		for _, r := range res.Rows {
			total += r.Value
		}
		totals = append(totals, total)
	}
	if totals[0] != totals[1] || totals[1] != totals[2] {
		t.Errorf("roll-up changed the grand total: %v", totals)
	}
}

func TestProvenance(t *testing.T) {
	w := newPopulated(t)
	err := w.AddFactProvenance("LastMinuteSales",
		map[string]string{"Departure": "El Prat", "Destination": "JFK", "Date": "2004-01-30"},
		map[string]float64{"Price": 99},
		"http://example.com/page")
	if err != nil {
		t.Fatalf("AddFactProvenance: %v", err)
	}
	if w.FactCount("LastMinuteSales") != 7 {
		t.Errorf("FactCount = %d, want 7", w.FactCount("LastMinuteSales"))
	}
}

func TestMembersListing(t *testing.T) {
	w := newPopulated(t)
	cities := w.Members("Airport", "City")
	if strings.Join(cities, ",") != "Barcelona,Madrid,New York" {
		t.Errorf("Members = %v", cities)
	}
	if w.MemberCount("Airport", "Airport") != 4 {
		t.Errorf("MemberCount = %d", w.MemberCount("Airport", "Airport"))
	}
	if w.Members("Ghost", "X") != nil {
		t.Error("unknown dimension should list nil")
	}
}

func TestResultFormat(t *testing.T) {
	w := newPopulated(t)
	res, _ := w.Execute(Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}},
	})
	out := res.Format()
	if !strings.Contains(out, "Destination/City") || !strings.Contains(out, "Barcelona") {
		t.Errorf("Format output missing fields:\n%s", out)
	}
}

func TestConcurrentLoadAndQuery(t *testing.T) {
	w := newPopulated(t)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			_, err := w.Execute(Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum})
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 100; i++ {
		err := w.AddFact("LastMinuteSales",
			map[string]string{"Departure": "El Prat", "Destination": "JFK", "Date": "2004-01-31"},
			map[string]float64{"Price": 100})
		if err != nil {
			t.Fatalf("AddFact: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("concurrent Execute: %v", err)
	}
}

func BenchmarkExecuteGroupBy(b *testing.B) {
	w, _ := New(testSchema())
	populate(b, w)
	rng := rand.New(rand.NewSource(7))
	days := []string{"2004-01-30", "2004-01-31", "2004-02-01"}
	airports := []string{"El Prat", "Barajas", "JFK", "La Guardia"}
	for i := 0; i < 10000; i++ {
		_ = w.AddFact("LastMinuteSales", map[string]string{
			"Departure":   airports[rng.Intn(len(airports))],
			"Destination": airports[rng.Intn(len(airports))],
			"Date":        days[rng.Intn(len(days))],
		}, map[string]float64{"Price": float64(rng.Intn(500))})
	}
	q := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "Country"}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestValidateWithoutExecute covers the exported validation entry point
// the NL→OLAP translator uses to guarantee it never emits a rejectable
// plan.
func TestValidateWithoutExecute(t *testing.T) {
	w := newPopulated(t)
	good := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}}}
	if err := w.Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	for name, bad := range map[string]Query{
		"unknown fact":    {Fact: "Nope", Measure: "Price", Agg: Sum},
		"unknown measure": {Fact: "LastMinuteSales", Measure: "Nope", Agg: Sum},
		"unknown agg":     {Fact: "LastMinuteSales", Measure: "Price", Agg: "median"},
		"unknown role": {Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
			GroupBy: []LevelSel{{Role: "Nope", Level: "City"}}},
		"duplicate group-by": {Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
			GroupBy: []LevelSel{{Role: "Destination", Level: "City"}, {Role: "Destination", Level: "City"}}},
	} {
		if err := w.Validate(bad); err == nil {
			t.Errorf("Validate(%s) accepted an invalid query", name)
		}
	}
}

// TestBatchAPIs covers the single-lock batch loaders the Step 5 feed
// uses: ordered member batches, atomic fact-row batches, and the
// Schema/ParentName accessors the metadata layers read.
func TestBatchAPIs(t *testing.T) {
	w, err := New(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if w.Schema() == nil {
		t.Fatal("Schema() returned nil")
	}
	if err := w.AddMembers([]MemberSpec{
		{Dim: "Airport", Level: "Country", Name: "Spain"},
		{Dim: "Airport", Level: "City", Name: "Barcelona", Parent: "Spain"},
		{Dim: "Airport", Level: "Airport", Name: "El Prat", Parent: "Barcelona"},
		{Dim: "Date", Level: "Month", Name: "2004-01"},
		{Dim: "Date", Level: "Day", Name: "2004-01-01", Parent: "2004-01"},
	}); err != nil {
		t.Fatalf("AddMembers: %v", err)
	}
	if parent, err := w.ParentName("Airport", "Airport", "El Prat"); err != nil || parent != "Barcelona" {
		t.Errorf("ParentName = %q, %v", parent, err)
	}
	if _, err := w.ParentName("Airport", "Airport", "Ghost"); err == nil {
		t.Error("ParentName of a missing member should fail")
	}
	// A failing spec aborts the batch at that spec (AddMember semantics).
	if err := w.AddMembers([]MemberSpec{
		{Dim: "Airport", Level: "City", Name: "Madrid", Parent: "Spain"},
		{Dim: "Airport", Level: "City", Name: "Oops", Parent: "Atlantis"},
	}); err == nil {
		t.Error("bad parent in a member batch should fail")
	}

	rows := []FactRow{
		{Coords: map[string]string{"Departure": "El Prat", "Destination": "El Prat", "Date": "2004-01-01"},
			Measures: map[string]float64{"Price": 100}},
		{Coords: map[string]string{"Departure": "El Prat", "Destination": "El Prat", "Date": "2004-01-01"},
			Measures: map[string]float64{"Price": 50}, Provenance: "test"},
	}
	if err := w.AddFactRows("LastMinuteSales", rows); err != nil {
		t.Fatalf("AddFactRows: %v", err)
	}
	if n := w.FactCount("LastMinuteSales"); n != 2 {
		t.Errorf("FactCount = %d, want 2", n)
	}
	// The batch is atomic: one bad row loads nothing.
	bad := append([]FactRow(nil), rows...)
	bad = append(bad, FactRow{Coords: map[string]string{"Departure": "Ghost", "Destination": "El Prat", "Date": "2004-01-01"}})
	if err := w.AddFactRows("LastMinuteSales", bad); err == nil {
		t.Fatal("bad row in a fact batch should fail")
	}
	if n := w.FactCount("LastMinuteSales"); n != 2 {
		t.Errorf("FactCount after failed batch = %d, want 2 (atomic)", n)
	}
	if err := w.AddFactRows("Ghost", rows); err == nil {
		t.Error("unknown fact in a batch should fail")
	}
	if err := w.AddFactRows("LastMinuteSales", nil); err != nil {
		t.Errorf("empty batch should be a no-op: %v", err)
	}
}
