package ir

import "sync"

// sparseAcc is an epoch-stamped sparse score accumulator: scores are
// recorded only for the ids that actually match a query term, so a query
// costs O(matched postings) instead of O(index). A slot is live when its
// stamp equals the current epoch; starting a new query is one counter
// increment, not an O(index) clear. Accumulators are recycled through
// accPool, so the steady state allocates nothing per query regardless of
// index size (the arrays grow monotonically to the largest index seen).
type sparseAcc struct {
	stamp   []uint32
	scores  []float64
	touched []int32 // matched ids, in first-touch order
	epoch   uint32
}

// accPool recycles accumulators across queries (and across indexes — an
// accumulator is index-agnostic, sized on demand). Each Get hands the
// caller exclusive ownership, so concurrent searches never share scratch
// state.
var accPool = sync.Pool{New: func() any { return new(sparseAcc) }}

// getAcc returns an accumulator ready for one query over n ids.
func getAcc(n int) *sparseAcc {
	a := accPool.Get().(*sparseAcc)
	if len(a.stamp) < n {
		a.stamp = make([]uint32, n)
		a.scores = make([]float64, n)
		// Fresh stamps are all zero; epoch 0 must never be live. begin()
		// below moves the epoch off zero before any add.
	}
	a.begin()
	return a
}

// putAcc returns an accumulator to the pool.
func putAcc(a *sparseAcc) { accPool.Put(a) }

// begin starts a new query epoch. On the (astronomically rare) uint32
// wrap the stamps are cleared so a slot last touched 2^32 queries ago
// cannot alias as live.
func (a *sparseAcc) begin() {
	a.epoch++
	if a.epoch == 0 {
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.touched = a.touched[:0]
}

// add accumulates weight w onto id, registering it on first touch.
func (a *sparseAcc) add(id int32, w float64) {
	if a.stamp[id] != a.epoch {
		a.stamp[id] = a.epoch
		a.scores[id] = 0
		a.touched = append(a.touched, id)
	}
	a.scores[id] += w
}

// rank selects the k best matched ids (score descending, id ascending —
// the same total order as the dense reference's selectTopK, and because
// the order is total the result is independent of touch order). k is
// clamped to the matched count so a "return everything" request cannot
// reserve O(k) memory up front.
func (a *sparseAcc) rank(k int) []int32 {
	if k > len(a.touched) {
		k = len(a.touched)
	}
	h := newTopK(k)
	for _, id := range a.touched {
		if s := a.scores[id]; s > 0 {
			h.offer(id, s)
		}
	}
	return h.ranked()
}
