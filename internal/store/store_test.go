package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/mdm"
	"dwqa/internal/ontology"
)

// testSchema builds a small star schema for the store tests.
func testSchema() *mdm.Schema {
	city := &mdm.DimensionClass{
		Name: "City",
		Levels: []*mdm.Level{
			{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
			{Name: "Country", Descriptor: "Name"},
		},
	}
	date := &mdm.DimensionClass{
		Name: "Date",
		Levels: []*mdm.Level{
			{Name: "Day", Descriptor: "Date", RollsUpTo: "Month"},
			{Name: "Month", Descriptor: "Name"},
		},
	}
	weather := &mdm.FactClass{
		Name:     "Weather",
		Measures: []mdm.Measure{{Name: "TempC", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "City", Dimension: "City"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	return mdm.NewSchema("store-test").AddDimension(city).AddDimension(date).AddFact(weather)
}

// buildTestState assembles a populated State: warehouse rows with
// provenance and attributes, an index over real prose, an ontology with
// instances and axioms.
func buildTestState(t *testing.T) *State {
	t.Helper()
	wh, err := dw.New(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.AddMembers([]dw.MemberSpec{
		{Dim: "City", Level: "Country", Name: "Spain"},
		{Dim: "City", Level: "City", Name: "Barcelona", Parent: "Spain", Attrs: map[string]string{"IATA": "BCN"}},
		{Dim: "Date", Level: "Month", Name: "2004-01"},
		{Dim: "Date", Level: "Day", Name: "2004-01-01", Parent: "2004-01"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := wh.AddFactRows("Weather", []dw.FactRow{
		{Coords: map[string]string{"City": "Barcelona", "Date": "2004-01-01"},
			Measures: map[string]float64{"TempC": 13.5}, Provenance: "http://w/bcn"},
	}); err != nil {
		t.Fatal(err)
	}

	ix := ir.NewIndex(ir.WithPassageSize(3), ir.WithStride(1))
	if err := ix.AddAll([]ir.Document{
		{URL: "http://w/bcn", Text: "Barcelona is mild in January. Temperatures reach 13 degrees. Rain is rare. The beach stays open."},
		{URL: "http://w/mad", Text: "Madrid is cold in January. Temperatures drop to 2 degrees. Snow falls on the sierra."},
	}); err != nil {
		t.Fatal(err)
	}

	onto := ontology.New("store-test")
	onto.Subclass("Airport", "Location")
	onto.AddAttribute("Airport", ontology.Attribute{Name: "Name", Kind: ontology.KindDescriptor, Type: "String"})
	onto.AddRelation("Airport", ontology.Relation{Name: "locatedIn", Target: "City"})
	onto.AddInstance("Airport", ontology.Instance{
		Name: "El Prat", Aliases: []string{"BCN"}, Properties: map[string]string{"locatedIn": "Barcelona"},
	})
	if err := onto.AddAxiom(ontology.Axiom{
		Concept: "Temperature", Kind: ontology.AxiomUnitConversion,
		FromUnit: "C", ToUnit: "F", Scale: 1.8, Offset: 32,
	}); err != nil {
		t.Fatal(err)
	}

	return &State{WALSeq: 7, DW: wh.Export(), IR: ix.Export(), Onto: onto.Export()}
}

func TestStateCodecRoundTrip(t *testing.T) {
	state := buildTestState(t)
	data := EncodeState(state)
	got, err := DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.WALSeq != state.WALSeq {
		t.Fatalf("WALSeq %d, want %d", got.WALSeq, state.WALSeq)
	}
	if !reflect.DeepEqual(got.DW, state.DW) {
		t.Fatal("warehouse snapshot diverges after codec round-trip")
	}
	if !reflect.DeepEqual(got.IR, state.IR) {
		t.Fatal("index snapshot diverges after codec round-trip")
	}
	if !reflect.DeepEqual(got.Onto, state.Onto) {
		t.Fatal("ontology snapshot diverges after codec round-trip")
	}
	// Determinism: encoding the same state twice yields identical bytes.
	if !reflect.DeepEqual(data, EncodeState(state)) {
		t.Fatal("snapshot encoding is not deterministic")
	}
	// The decoded snapshots import into live structures.
	wh, err := dw.New(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Import(got.DW); err != nil {
		t.Fatal(err)
	}
	ix := ir.NewIndex()
	if err := ix.Import(got.IR); err != nil {
		t.Fatal(err)
	}
	if _, err := ontology.FromSnapshot(got.Onto); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFileRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Empty dir: no snapshot, no error.
	if state, _, err := s.LoadSnapshot(); err != nil || state != nil {
		t.Fatalf("empty dir: state=%v err=%v", state, err)
	}

	for seq := uint64(1); seq <= 3; seq++ {
		state := buildTestState(t)
		state.WALSeq = seq
		if _, err := s.WriteSnapshot(state); err != nil {
			t.Fatal(err)
		}
	}
	state, path, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if state.WALSeq != 3 {
		t.Fatalf("loaded snapshot covers seq %d, want newest (3)", state.WALSeq)
	}
	if filepath.Base(path) != "snap-00000000000000000003.dwqa" {
		t.Fatalf("unexpected snapshot path %s", path)
	}
	// Pruned to the newest two.
	if paths := s.snapshotPaths(); len(paths) != 2 {
		t.Fatalf("%d snapshots kept, want 2: %v", len(paths), paths)
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	members := []dw.MemberSpec{
		{Dim: "City", Level: "Country", Name: "Spain"},
		{Dim: "City", Level: "City", Name: "Barcelona", Parent: "Spain", Attrs: map[string]string{"IATA": "BCN"}},
	}
	rows := []dw.FactRow{
		{Coords: map[string]string{"City": "Barcelona", "Date": "2004-01-01"},
			Measures: map[string]float64{"TempC": 13.5}, Provenance: "http://w/bcn"},
	}
	doc := ir.Document{URL: "http://w/bcn", Text: "Barcelona is mild."}

	if err := s.LogMembers(members); err != nil {
		t.Fatal(err)
	}
	if err := s.LogFactRows("Weather", rows); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDocument(doc); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != 3 {
		t.Fatalf("seq %d after 3 appends", s.Seq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (as recovery would) and replay everything.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 3 {
		t.Fatalf("reopened seq %d, want 3", s2.Seq())
	}
	var gotMembers []dw.MemberSpec
	var gotFact string
	var gotRows []dw.FactRow
	var gotDocs []ir.Document
	n, err := s2.Replay(0, ReplayHandlers{
		Members:  func(specs []dw.MemberSpec) error { gotMembers = specs; return nil },
		FactRows: func(fact string, rs []dw.FactRow) error { gotFact, gotRows = fact, rs; return nil },
		Document: func(d ir.Document) error { gotDocs = append(gotDocs, d); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	if !reflect.DeepEqual(gotMembers, members) {
		t.Fatalf("member batch diverges:\n got %+v\nwant %+v", gotMembers, members)
	}
	if gotFact != "Weather" || !reflect.DeepEqual(gotRows, rows) {
		t.Fatalf("fact batch diverges:\n got %s %+v\nwant Weather %+v", gotFact, gotRows, rows)
	}
	if !reflect.DeepEqual(gotDocs, []ir.Document{doc}) {
		t.Fatalf("documents diverge: %+v", gotDocs)
	}

	// Sequence gating: replaying after seq 2 applies only the tail.
	n, err = s2.Replay(2, ReplayHandlers{
		Members:  func([]dw.MemberSpec) error { t.Fatal("members re-applied"); return nil },
		FactRows: func(string, []dw.FactRow) error { t.Fatal("rows re-applied"); return nil },
		Document: func(ir.Document) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("gated replay applied %d records, want 1", n)
	}
	// Gating at the current head applies nothing.
	if n, err := s2.Replay(3, ReplayHandlers{}); err != nil || n != 0 {
		t.Fatalf("replay past head: n=%d err=%v", n, err)
	}
}

func TestSnapshotResetsWALOnlyWhenCovered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.LogDocument(ir.Document{URL: "u1", Text: "One sentence."}); err != nil {
		t.Fatal(err)
	}

	// Snapshot covering the whole log: WAL resets, sequence continues.
	state := buildTestState(t)
	state.WALSeq = s.Seq()
	info, err := s.WriteSnapshot(state)
	if err != nil {
		t.Fatal(err)
	}
	if !info.WALReset {
		t.Fatal("covering snapshot did not reset the WAL")
	}
	if data, _ := os.ReadFile(filepath.Join(dir, walName)); len(data) != 0 {
		t.Fatalf("WAL not empty after reset: %d bytes", len(data))
	}
	if err := s.LogDocument(ir.Document{URL: "u2", Text: "Two sentences. Here now."}); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != 2 {
		t.Fatalf("sequence restarted after WAL reset: %d", s.Seq())
	}

	// Snapshot exported before the latest record: WAL must survive.
	stale := buildTestState(t)
	stale.WALSeq = 1
	info, err = s.WriteSnapshot(stale)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALReset {
		t.Fatal("stale snapshot reset a WAL holding newer records")
	}
	n, err := s.Replay(1, ReplayHandlers{Document: func(ir.Document) error { return nil }})
	if err != nil || n != 1 {
		t.Fatalf("tail record lost: n=%d err=%v", n, err)
	}
}

// TestSeqFloorSurvivesWALReset pins the crash window after a covering
// snapshot: the WAL is empty, so the sequence floor must come from the
// snapshot (its filename carries the covered WALSeq) — otherwise a
// reopened store would reissue already-covered sequence numbers and the
// gate would skip fresh records.
func TestSeqFloorSurvivesWALReset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.LogDocument(ir.Document{URL: "u", Text: "Some text."}); err != nil {
			t.Fatal(err)
		}
	}
	state := buildTestState(t)
	state.WALSeq = s.Seq()
	if info, err := s.WriteSnapshot(state); err != nil || !info.WALReset {
		t.Fatalf("covering snapshot: %+v err=%v", info, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 3 {
		t.Fatalf("reopened seq floor = %d, want 3 (from the snapshot filename)", s2.Seq())
	}
	// A record appended now must be strictly above the snapshot's gate.
	if err := s2.LogDocument(ir.Document{URL: "u4", Text: "Fresh text."}); err != nil {
		t.Fatal(err)
	}
	n, err := s2.Replay(3, ReplayHandlers{Document: func(ir.Document) error { return nil }})
	if err != nil || n != 1 {
		t.Fatalf("fresh record gated away: n=%d err=%v", n, err)
	}
}
