package core

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The sharded equivalence oracle (ISSUE 8): a cluster of 1, 2 or 4
// shards must answer byte-identically to the single-node pipeline —
// factoid traces and analytic result tables — including after feeds
// split into random slices, and a replica that starts tailing mid-feed
// must converge to the leader's exported state.

// shardedFingerprint renders every factoid trace and analytic answer of
// the workload — the same byte-identity oracle answerFingerprint uses
// for the single-node pipeline.
func shardedFingerprint(t *testing.T, sp *ShardedPipeline) string {
	t.Helper()
	eng, err := sp.Engine()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, q := range sp.WeatherQuestions() {
		res, err := sp.QA.Answer(q)
		if err != nil {
			t.Fatalf("ask %q: %v", q, err)
		}
		b.WriteString(res.Trace().Format())
		b.WriteByte('\n')
	}
	for _, q := range AnalyticQuestions() {
		ans, err := eng.AskOLAP(context.Background(), q)
		if err != nil {
			t.Fatalf("askOLAP %q: %v", q, err)
		}
		b.WriteString(ans.PlanString())
		b.WriteByte('\n')
		b.WriteString(ans.Result.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// randomSlices cuts the workload into random contiguous feed batches —
// every topology feeds the same slices in the same order.
func randomSlices(questions []string, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	var slices [][]string
	for start := 0; start < len(questions); {
		n := 1 + rng.Intn(3)
		end := start + n
		if end > len(questions) {
			end = len(questions)
		}
		slices = append(slices, questions[start:end])
		start = end
	}
	return slices
}

func TestShardedEquivalence(t *testing.T) {
	cfg := recoveryConfig()

	// Single-node reference: integrate, feed in random slices, fingerprint.
	ref, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.integrateToStep4(); err != nil {
		t.Fatal(err)
	}
	slices := randomSlices(ref.WeatherQuestions(), 8)
	for _, s := range slices {
		if _, err := ref.Step5FeedWarehouse(s); err != nil {
			t.Fatal(err)
		}
	}
	want := answerFingerprint(t, ref)
	wantSales := ref.Warehouse.FactCount("LastMinuteSales")
	wantWeather := ref.Warehouse.FactCount("Weather")
	if wantWeather == 0 {
		t.Fatal("reference feed loaded nothing; the oracle would be vacuous")
	}

	for _, shards := range []int{1, 2, 4} {
		sp, err := NewShardedPipeline(cfg, shards)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if err := sp.Integrate(); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		for _, s := range slices {
			if _, err := sp.Feed(s); err != nil {
				t.Fatalf("%d shards: feeding: %v", shards, err)
			}
		}
		if got := sp.Cluster.FactCount("LastMinuteSales"); got != wantSales {
			t.Errorf("%d shards: %d sales rows, single-node has %d", shards, got, wantSales)
		}
		if got := sp.Cluster.FactCount("Weather"); got != wantWeather {
			t.Errorf("%d shards: %d weather rows, single-node has %d", shards, got, wantWeather)
		}
		if got := shardedFingerprint(t, sp); got != want {
			t.Errorf("%d shards: answers diverge from single-node\nwant:\n%s\ngot:\n%s", shards, firstDiff(want, got), firstDiff(got, want))
		}
		// Rows must actually partition: with >1 shard and several cities
		// no shard should hold everything (FNV spreads the city pool).
		if shards > 1 {
			full := 0
			for i := 0; i < shards; i++ {
				if sp.Cluster.Node(i).WH.FactCount("LastMinuteSales") == wantSales {
					full++
				}
			}
			if full > 0 {
				t.Errorf("%d shards: a single shard holds every sales row — nothing partitioned", shards)
			}
		}
	}
}

// firstDiff trims two long oracle strings to the first divergent region
// so failures stay readable.
func firstDiff(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 80
	if start < 0 {
		start = 0
	}
	end := i + 160
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}

// TestShardedScatterGatherOLAP pins the scatter/gather plan path against
// the cluster-wide reference: every generated query shape over the
// scaled scenario merges to the same table the single warehouse
// produces.
func TestShardedScatterGatherOLAP(t *testing.T) {
	cfg := recoveryConfig()
	ref, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewShardedPipeline(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := ScaledOLAPQuery()
	wantRes, err := ref.Warehouse.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := sp.Cluster.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if wantRes.Format() != gotRes.Format() {
		t.Errorf("scatter/gather diverges from single warehouse\nwant:\n%s\ngot:\n%s", wantRes.Format(), gotRes.Format())
	}
}

// TestShardedReplicaConvergence drives the full replication story: a
// durable leader boots and feeds, a replica opens from the shipped
// snapshots mid-feed, tails the WAL while the leader keeps feeding
// (including across a leader snapshot that resets the WAL — the
// ErrReplicaGap → reload arm), and converges to the leader's exported
// per-shard state exactly.
func TestShardedReplicaConvergence(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	const shards = 2

	leader, info, err := OpenShardedPipeline(cfg, dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	defer leader.Durable().Close()

	questions := leader.WeatherQuestions()
	if len(questions) < 4 {
		t.Fatalf("workload too small for a mid-feed replica: %d questions", len(questions))
	}
	mid := len(questions) / 2
	for _, q := range questions[:mid] {
		if _, err := leader.Feed([]string{q}); err != nil {
			t.Fatal(err)
		}
	}

	// Replica opens mid-feed: snapshots cover the baseline, the WAL tail
	// covers the first half of the feed.
	replica, err := OpenShardedFollower(cfg, dir, shards)
	if err != nil {
		t.Fatal(err)
	}

	// Leader keeps feeding; a snapshot halfway through resets the WAL
	// underneath the replica, forcing the gap → reload arm.
	for i, q := range questions[mid:] {
		if _, err := leader.Feed([]string{q}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			leaderEng, err := leader.Engine()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := leaderEng.SnapshotTo(); err != nil {
				t.Fatal(err)
			}
		}
	}

	if _, err := replica.Poll(); err != nil {
		t.Fatal(err)
	}

	// Converged: per-shard warehouse and index state identical.
	wantStates := leader.ExportShardStates()
	gotStates := replica.ExportShardStates()
	for i := range wantStates {
		if !reflect.DeepEqual(wantStates[i].DW, gotStates[i].DW) {
			t.Errorf("shard %d: replica warehouse state diverges from leader", i)
		}
		if !reflect.DeepEqual(wantStates[i].IR, gotStates[i].IR) {
			t.Errorf("shard %d: replica index state diverges from leader", i)
		}
	}

	// The replica answers like the leader and refuses feeds.
	if got, want := shardedFingerprint(t, replica), shardedFingerprint(t, leader); got != want {
		t.Error("replica answers diverge from leader")
	}
	repEng, err := replica.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := repEng.HarvestAll(context.Background(), questions[:1]); err == nil {
		t.Error("replica accepted a feed; it must be read-only")
	}

	// Replication stats: caught up means zero lag on every shard.
	for _, s := range replica.ReplicaStats() {
		if s.Lag != 0 {
			t.Errorf("shard %d: lag %d after convergence", s.Shard, s.Lag)
		}
		if s.Seq == 0 {
			t.Errorf("shard %d: applied sequence is 0 — the tail never advanced", s.Shard)
		}
	}

	// And the engine surfaces per-shard stats on both sides.
	leaderEng, err := leader.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if stats := leaderEng.Stats(); len(stats.Shards) != shards {
		t.Errorf("leader stats report %d shards, want %d", len(stats.Shards), shards)
	}
	if stats := repEng.Stats(); len(stats.Shards) != shards {
		t.Errorf("replica stats report %d shards, want %d", len(stats.Shards), shards)
	}
}

// TestShardedRestart is the durable round trip: a restarted sharded
// leader recovers every shard from snapshot + WAL and answers
// byte-identically without re-feeding.
func TestShardedRestart(t *testing.T) {
	cfg := recoveryConfig()
	dir := t.TempDir()
	const shards = 2

	p1, _, err := OpenShardedPipeline(cfg, dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	slices := randomSlices(p1.WeatherQuestions(), 3)
	for _, s := range slices {
		if _, err := p1.Feed(s); err != nil {
			t.Fatal(err)
		}
	}
	want := shardedFingerprint(t, p1)
	_, wantRows := p1.Cluster.Counts()
	if err := p1.Durable().Close(); err != nil {
		t.Fatal(err)
	}

	p2, info, err := OpenShardedPipeline(cfg, dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Durable().Close()
	if !info.Recovered {
		t.Fatal("restart did not recover from snapshots")
	}
	if _, rows := p2.Cluster.Counts(); rows != wantRows {
		t.Errorf("recovered %d fact rows, want %d", rows, wantRows)
	}
	if got := shardedFingerprint(t, p2); got != want {
		t.Error("recovered cluster answers diverge")
	}

	// Topology is pinned: reopening with a different shard count must
	// refuse the directory, not silently re-partition.
	if _, _, err := OpenShardedPipeline(cfg, dir, shards+1); err == nil {
		t.Error("open with a different shard count succeeded; fingerprint should refuse it")
	}
}
