// Package nl2olap translates natural-language analytical questions into
// compiled OLAP query plans — the missing direction of the paper's
// integration. The five-step model lets QA feed the warehouse (Step 5);
// this package lets decision makers *ask the warehouse questions*:
// "average temperature in Barcelona by month" or "total last-minute
// revenue per destination city in January" become validated dw.Query
// plans instead of falling through to the factoid pipeline.
//
// The translation is metadata-driven in the spirit of SODA (Blunschi et
// al.) and Sigma Worksheet: the mdm.Schema graph supplies facts, measures,
// roles and roll-up levels; the warehouse's dimension tables ground member
// mentions ("Barcelona" → City member, "January" → Date filter); and the
// Step 2/3 ontology lexicon resolves domain instances and their aliases
// ("El Prat", "BCN" → the Barcelona city member via locatedIn).
//
// A Translator first classifies a question: questions without an
// aggregation keyword and a resolvable measure (or countable fact) are
// factoid — Translate returns ErrFactoid and the caller routes them to the
// AliQAn modules. Analytic questions compile to a dw.Query that is
// validated against the warehouse before it is returned, so a successful
// translation is always executable. The serving engine (internal/engine)
// dispatches between the two paths and caches analytic answers in the
// same LRU the factoid answers use, flushed on every Step 5 feed.
package nl2olap

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"dwqa/internal/dw"
	"dwqa/internal/etl"
	"dwqa/internal/mdm"
	"dwqa/internal/nlp"
	"dwqa/internal/ontology"
	"dwqa/internal/sbparser"
)

// ErrFactoid reports that a question is not analytic: it carries no
// aggregation intent the warehouse could answer, so it belongs to the
// factoid QA path. Callers test with errors.Is.
var ErrFactoid = errors.New("nl2olap: not an analytic question")

// measureRef names one aggregatable measure of one fact.
type measureRef struct {
	fact    string
	measure string
}

// TimeSpec names the calendar dimension and its levels, so date mentions
// ("January of 2004") compile to filters at the right granularity. Member
// names must follow the scenario's ISO convention: Year "2004", Month
// "2004-01", Day "2004-01-31".
type TimeSpec struct {
	Dimension string
	Day       string // "" when the dimension has no day level
	Month     string
	Year      string
}

// Translator compiles analytical questions against one warehouse. It is
// safe for concurrent use once configured: Translate and Answer only read
// the vocabulary tables and take the warehouse's read locks, so any number
// of serving workers may translate while Step 5 feeds load. The Add*/Set*
// configuration methods are not concurrent with translation — configure
// first, then serve (the pipeline wires it exactly that way).
type Translator struct {
	schema *mdm.Schema
	wh     Warehouse
	onto   *ontology.Ontology // may be nil (the E-ONTO ablation)

	aggWords map[string]dw.Agg
	measures map[string]measureRef // normalised phrase → measure
	counts   map[string]string     // normalised phrase → countable fact
	rolePref []string              // tie-break order for ambiguous roles
	prepRole map[string]string     // preposition lemma → preferred role
	time     TimeSpec
}

// Warehouse is what the translator needs from its OLAP back end: the
// schema to derive vocabulary from, member probes for grounding, and
// validated execution. A single *dw.Warehouse satisfies it directly; a
// sharded cluster satisfies it by scatter/gather (internal/shard).
type Warehouse interface {
	Schema() *mdm.Schema
	Validate(q dw.Query) error
	Execute(q dw.Query) (*dw.Result, error)
	Members(dim, level string) []string
	MemberKey(dim, level, name string) (int, error)
}

// New builds a translator over a warehouse. The vocabulary is derived from
// the schema: every measure name, fact name (camel-case split, whole
// phrase and final word) and the built-in aggregation keywords. Domain
// synonyms ("revenue" → Price) are added with AddMeasureSynonym et al.
// The ontology may be nil; member grounding then uses only the dimension
// tables.
func New(wh Warehouse, onto *ontology.Ontology) (*Translator, error) {
	if wh == nil {
		return nil, fmt.Errorf("nl2olap: nil warehouse")
	}
	schema := wh.Schema()
	t := &Translator{
		schema:   schema,
		wh:       wh,
		onto:     onto,
		aggWords: defaultAggWords(),
		measures: map[string]measureRef{},
		counts:   map[string]string{},
		prepRole: map[string]string{},
		time:     DetectTime(schema),
	}
	ambiguous := map[string]bool{}
	for _, f := range schema.Facts {
		for _, m := range f.Measures {
			key := normPhrase(m.Name)
			if prev, ok := t.measures[key]; ok && prev.fact != f.Name {
				ambiguous[key] = true
				continue
			}
			t.measures[key] = measureRef{fact: f.Name, measure: m.Name}
		}
		phrase := normPhrase(camelSplit(f.Name))
		t.counts[phrase] = f.Name
		words := strings.Fields(phrase)
		if last := words[len(words)-1]; len(words) > 1 {
			if prev, ok := t.counts[last]; !ok || prev == f.Name {
				t.counts[last] = f.Name
			}
		}
	}
	for key := range ambiguous {
		delete(t.measures, key)
	}
	return t, nil
}

// Schema returns the metadata schema the translator compiles against —
// read-only; callers use it to map a plan's filter roles back to their
// dimensions (the serving cache's invalidation tags need that mapping).
func (t *Translator) Schema() *mdm.Schema {
	return t.schema
}

// DetectTime finds the calendar dimension of a schema: the first dimension
// carrying both a Month and a Year level (the scenario's Date dimension).
// The zero TimeSpec disables date grounding.
func DetectTime(schema *mdm.Schema) TimeSpec {
	for _, d := range schema.Dimensions {
		if d.Level("Month") != nil && d.Level("Year") != nil {
			ts := TimeSpec{Dimension: d.Name, Month: "Month", Year: "Year"}
			if d.Level("Day") != nil {
				ts.Day = "Day"
			}
			return ts
		}
	}
	return TimeSpec{}
}

// AddMeasureSynonym teaches the translator that a word or phrase names a
// fact's measure ("revenue" → LastMinuteSales.Price).
func (t *Translator) AddMeasureSynonym(phrase, fact, measure string) error {
	fc := t.schema.Fact(fact)
	if fc == nil {
		return fmt.Errorf("nl2olap: unknown fact %q", fact)
	}
	if fc.Measure(measure) == nil {
		return fmt.Errorf("nl2olap: fact %q has no measure %q", fact, measure)
	}
	key := normPhrase(phrase)
	if key == "" {
		return fmt.Errorf("nl2olap: empty measure synonym")
	}
	t.measures[key] = measureRef{fact: fact, measure: measure}
	return nil
}

// AddCountSynonym teaches the translator that a word or phrase names the
// rows of a fact ("tickets" → LastMinuteSales), the target of counting
// questions.
func (t *Translator) AddCountSynonym(phrase, fact string) error {
	if t.schema.Fact(fact) == nil {
		return fmt.Errorf("nl2olap: unknown fact %q", fact)
	}
	key := normPhrase(phrase)
	if key == "" {
		return fmt.Errorf("nl2olap: empty count synonym")
	}
	t.counts[key] = fact
	return nil
}

// SetRolePreference fixes the tie-break order when a level or member
// belongs to a dimension referenced under several roles (the scenario's
// Airport dimension plays Departure and Destination; an unqualified
// "by city" groups the preferred role).
func (t *Translator) SetRolePreference(roles ...string) {
	t.rolePref = append([]string(nil), roles...)
}

// SetPrepositionRole binds a preposition to a role: "from Madrid" filters
// the Departure role, "to Madrid" the Destination.
func (t *Translator) SetPrepositionRole(prep, role string) {
	t.prepRole[strings.ToLower(prep)] = role
}

// Translation is one compiled question: the validated plan plus the
// grounding trail (which word resolved to which metadata object), in
// discovery order, for traces and the golden corpus.
type Translation struct {
	Question string
	Query    dw.Query
	Notes    []string
	// DynamicFilters names the (role, level) pairs whose filter values
	// were enumerated from the warehouse's current member list rather
	// than written literally in the question (a bare "in January" with
	// no year selects every matching Month member that exists *now*).
	// A cached answer for such a plan depends on the level's whole
	// member population, not just the members it matched — the serving
	// cache tags it accordingly so feeds that add members to the level
	// evict it.
	DynamicFilters []dw.LevelSel
}

// Answer is an executed translation: the plan and its result table.
type Answer struct {
	Translation
	Result *dw.Result
}

// PlanString renders the compiled plan deterministically — the byte-level
// identity the metamorphic tests assert across paraphrases. Filters are
// sorted by (role, level) with sorted values, so surface order never
// leaks; group-by order is semantic (column order) and is preserved.
func (tr *Translation) PlanString() string {
	q := tr.Query
	var b strings.Builder
	b.WriteString(q.Fact)
	b.WriteString(" ")
	b.WriteString(string(q.Agg))
	b.WriteString("(")
	b.WriteString(q.Measure)
	b.WriteString(")")
	if len(q.GroupBy) > 0 {
		b.WriteString(" by ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.Role + "/" + g.Level)
		}
	}
	if len(q.Filters) > 0 {
		b.WriteString(" where ")
		for i, f := range q.Filters {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(f.Role + "/" + f.Level + " in {" + strings.Join(f.Values, ", ") + "}")
		}
	}
	return b.String()
}

// Translate classifies and compiles one question. Factoid questions
// return ErrFactoid; analytic questions either compile to a plan the
// warehouse has validated, or fail with a grounding error that names the
// word the metadata could not absorb.
func (t *Translator) Translate(question string) (*Translation, error) {
	q := strings.TrimSpace(question)
	if q == "" {
		return nil, ErrFactoid
	}
	sents := nlp.SplitSentences(q)
	if len(sents) == 0 || len(sents[0].Tokens) == 0 {
		return nil, ErrFactoid
	}
	toks := sents[0].Tokens
	used := make([]bool, len(toks))
	tr := &Translation{Question: q}

	// 1. Aggregation intent: no keyword, no analytic question.
	agg, ok := t.findAgg(toks, used, tr)
	if !ok {
		return nil, ErrFactoid
	}

	// 2. Measure or countable fact: the anchor that selects the fact
	// table. Without one the aggregation word is conversational ("how
	// many terms did La Guardia serve?") and the factoid path owns it.
	mref, countFact := t.findMeasure(toks, used, tr)
	var fact, measure string
	switch {
	case mref != nil:
		fact, measure = mref.fact, mref.measure
	case countFact != "":
		fact = countFact
		switch agg {
		case dw.Count, dw.Sum:
			// "total sales" / "number of tickets": counting rows.
			agg, measure = dw.Count, ""
		default:
			fc := t.schema.Fact(fact)
			if len(fc.Measures) != 1 {
				return nil, fmt.Errorf("nl2olap: %s over fact %q needs an explicit measure (it has %d)",
					agg, fact, len(fc.Measures))
			}
			measure = fc.Measures[0].Name
			tr.note("measure defaulted to %s.%s", fact, measure)
		}
	default:
		return nil, ErrFactoid
	}
	fc := t.schema.Fact(fact)

	// 3. Group-by selections: "by city", "per destination city",
	// "for each month and country".
	groupBy, err := t.findGroupBy(toks, used, fc, tr)
	if err != nil {
		return nil, err
	}

	// 4. Temporal constraints, via the same shallow date parser the QA
	// side uses, compiled to filters at the finest level mentioned.
	filters, err := t.dateFilters(toks, used, fc, tr)
	if err != nil {
		return nil, err
	}

	// 5. Member grounding: remaining content words resolved against the
	// dimension tables and the ontology lexicon.
	filters, err = t.groundMembers(toks, used, fc, filters, tr)
	if err != nil {
		return nil, err
	}

	tr.Query = dw.Query{
		Fact:    fact,
		Measure: measure,
		Agg:     agg,
		GroupBy: groupBy,
		Filters: canonicalFilters(filters),
	}
	if err := t.wh.Validate(tr.Query); err != nil {
		// Construction errors are translator bugs; surface them rather
		// than executing a plan the warehouse rejects.
		return nil, fmt.Errorf("nl2olap: compiled plan rejected: %w", err)
	}
	return tr, nil
}

// Timings reports the wall-clock time one analytic question spent
// compiling (Translate) and executing against the warehouse, returned
// by value from AnswerTimed (no allocation on the serving hot path).
// Compile is stamped even when Translate fails — classifying a factoid
// question (ErrFactoid) is real work on the serving path.
type Timings struct {
	Compile time.Duration
	Execute time.Duration
}

// Answer translates and executes in one step — the serving engine's
// analytic path. It takes no clock readings.
func (t *Translator) Answer(question string) (*Answer, error) {
	a, _, err := t.answerTimed(question, false)
	return a, err
}

// AnswerTimed is Answer with compile/execute timing returned by value.
func (t *Translator) AnswerTimed(question string) (*Answer, Timings, error) {
	return t.answerTimed(question, true)
}

func (t *Translator) answerTimed(question string, timed bool) (*Answer, Timings, error) {
	var tm Timings
	var at time.Time
	if timed {
		at = time.Now()
	}
	tr, err := t.Translate(question)
	if timed {
		tm.Compile = time.Since(at)
	}
	if err != nil {
		return nil, tm, err
	}
	if timed {
		at = time.Now()
	}
	res, err := t.wh.Execute(tr.Query)
	if timed {
		tm.Execute = time.Since(at)
	}
	if err != nil {
		return nil, tm, fmt.Errorf("nl2olap: executing plan: %w", err)
	}
	return &Answer{Translation: *tr, Result: res}, tm, nil
}

// note appends one grounding-trail line.
func (tr *Translation) note(format string, args ...any) {
	tr.Notes = append(tr.Notes, fmt.Sprintf(format, args...))
}

// defaultAggWords is the built-in aggregation keyword inventory.
func defaultAggWords() map[string]dw.Agg {
	return map[string]dw.Agg{
		"average": dw.Avg, "avg": dw.Avg, "mean": dw.Avg,
		"total": dw.Sum, "sum": dw.Sum, "overall": dw.Sum,
		"maximum": dw.Max, "max": dw.Max, "highest": dw.Max,
		"hottest": dw.Max, "warmest": dw.Max, "peak": dw.Max,
		"minimum": dw.Min, "min": dw.Min, "lowest": dw.Min,
		"coldest": dw.Min, "coolest": dw.Min, "cheapest": dw.Min,
		"count": dw.Count, "number": dw.Count,
	}
}

// findAgg locates the first aggregation keyword ("how many"/"how much"
// count as one). Returns false when the question carries none.
func (t *Translator) findAgg(toks []nlp.Token, used []bool, tr *Translation) (dw.Agg, bool) {
	for i := range toks {
		if used[i] {
			continue
		}
		lower := strings.ToLower(toks[i].Text)
		if lower == "how" && i+1 < len(toks) {
			next := strings.ToLower(toks[i+1].Text)
			// "how many tickets" counts rows; "how much revenue" sums the
			// measure (and still degrades to a count when only a countable
			// fact resolves — see the semantics step in Translate).
			if next == "many" || next == "much" {
				agg := dw.Count
				if next == "much" {
					agg = dw.Sum
				}
				used[i], used[i+1] = true, true
				tr.note("aggregation %q → %s", "how "+next, agg)
				return agg, true
			}
		}
		if agg, ok := t.aggWords[lower]; ok {
			used[i] = true
			// "number of", "count of": the "of" belongs to the keyword.
			if agg == dw.Count && i+1 < len(toks) && strings.EqualFold(toks[i+1].Text, "of") {
				used[i+1] = true
			}
			tr.note("aggregation %q → %s", lower, agg)
			return agg, true
		}
	}
	return "", false
}

// findMeasure scans left to right, longest phrase first, for a measure
// synonym; failing that, for a countable-fact synonym.
func (t *Translator) findMeasure(toks []nlp.Token, used []bool, tr *Translation) (*measureRef, string) {
	if key, span, ok := matchPhrase(toks, used, func(key string) bool { _, ok := t.measures[key]; return ok }); ok {
		m := t.measures[key]
		markUsed(used, span)
		tr.note("measure %q → %s.%s", key, m.fact, m.measure)
		return &m, ""
	}
	if key, span, ok := matchPhrase(toks, used, func(key string) bool { _, ok := t.counts[key]; return ok }); ok {
		fact := t.counts[key]
		markUsed(used, span)
		tr.note("count target %q → %s", key, fact)
		return nil, fact
	}
	return nil, ""
}

// maxPhraseLen bounds multi-word vocabulary and member lookups.
const maxPhraseLen = 4

// matchPhrase finds the leftmost longest unconsumed token span whose
// normalised join satisfies ok.
func matchPhrase(toks []nlp.Token, used []bool, ok func(string) bool) (string, [2]int, bool) {
	for i := range toks {
		if used[i] {
			continue
		}
		for l := maxPhraseLen; l >= 1; l-- {
			if i+l > len(toks) || anyUsed(used, i, i+l) {
				continue
			}
			key := normSpan(toks[i : i+l])
			if key != "" && ok(key) {
				return key, [2]int{i, i + l}, true
			}
		}
	}
	return "", [2]int{}, false
}

func anyUsed(used []bool, from, to int) bool {
	for i := from; i < to; i++ {
		if used[i] {
			return true
		}
	}
	return false
}

func markUsed(used []bool, span [2]int) {
	for i := span[0]; i < span[1]; i++ {
		used[i] = true
	}
}

// groupMarkerAt reports whether a group-by marker starts at i and how many
// tokens it spans: "by", "per", "for each", "grouped by", "broken down by".
func groupMarkerAt(toks []nlp.Token, i int) int {
	lower := func(j int) string {
		if j >= len(toks) {
			return ""
		}
		return strings.ToLower(toks[j].Text)
	}
	switch lower(i) {
	case "by", "per":
		return 1
	case "for":
		if lower(i+1) == "each" || lower(i+1) == "every" {
			return 2
		}
	case "grouped":
		if lower(i+1) == "by" {
			return 2
		}
	case "broken":
		if lower(i+1) == "down" && lower(i+2) == "by" {
			return 3
		}
	}
	return 0
}

// findGroupBy parses every group-by marker and resolves its selections to
// (role, level) pairs of the fact. Exact duplicates collapse (asking "by
// city per city" is redundant, not an error).
func (t *Translator) findGroupBy(toks []nlp.Token, used []bool, fc *mdm.FactClass, tr *Translation) ([]dw.LevelSel, error) {
	var out []dw.LevelSel
	seen := map[dw.LevelSel]bool{}
	add := func(sel dw.LevelSel, phrase string) {
		if !seen[sel] {
			seen[sel] = true
			out = append(out, sel)
			tr.note("group %q → %s/%s", phrase, sel.Role, sel.Level)
		}
	}
	for i := 0; i < len(toks); i++ {
		if used[i] {
			continue
		}
		span := groupMarkerAt(toks, i)
		if span == 0 {
			continue
		}
		j := i + span
		consumedAny := false
		for {
			sel, phrase, next, ok := t.parseSelection(toks, used, fc, j)
			if !ok {
				break
			}
			markUsed(used, [2]int{j, next})
			add(sel, phrase)
			consumedAny = true
			j = next
			// Coordinated selections: "by city and month". The connective
			// is consumed only when another selection actually follows.
			if j < len(toks) && !used[j] &&
				(strings.EqualFold(toks[j].Text, "and") || toks[j].Text == ",") {
				if _, _, _, more := t.parseSelection(toks, used, fc, j+1); more {
					used[j] = true
					j++
					continue
				}
			}
			break
		}
		if consumedAny {
			markUsed(used, [2]int{i, i + span})
		}
	}
	return out, nil
}

// parseSelection reads one group-by selection at position j: an optional
// determiner, an optional role qualifier, then a level word — or a bare
// role name, which selects the base level of its dimension ("per
// destination" groups by airport).
func (t *Translator) parseSelection(toks []nlp.Token, used []bool, fc *mdm.FactClass, j int) (dw.LevelSel, string, int, bool) {
	for j < len(toks) && !used[j] && (toks[j].Tag == nlp.TagDT || strings.EqualFold(toks[j].Text, "each")) {
		j++
	}
	if j >= len(toks) || used[j] {
		return dw.LevelSel{}, "", j, false
	}
	word := strings.ToLower(toks[j].Text)

	// Role qualifier + level: "destination city", "departure airport".
	if role := t.roleNamed(fc, word); role != nil && j+1 < len(toks) && !used[j+1] {
		levelWord := strings.ToLower(toks[j+1].Text)
		if lvl := levelNamed(t.schema.Dimension(role.Dimension), levelWord); lvl != "" {
			return dw.LevelSel{Role: role.Role, Level: lvl}, word + " " + levelWord, j + 2, true
		}
	}
	// Bare role: base level of its dimension.
	if role := t.roleNamed(fc, word); role != nil {
		base := t.schema.Dimension(role.Dimension).Base()
		return dw.LevelSel{Role: role.Role, Level: base.Name}, word, j + 1, true
	}
	// Bare level word, resolved across the fact's roles.
	if sel, ok := t.levelAcrossRoles(fc, word, ""); ok {
		return sel, word, j + 1, true
	}
	return dw.LevelSel{}, "", j, false
}

// roleNamed finds a fact role by (case-insensitive) name.
func (t *Translator) roleNamed(fc *mdm.FactClass, word string) *mdm.DimensionRef {
	for i := range fc.Dimensions {
		if strings.EqualFold(fc.Dimensions[i].Role, word) {
			return &fc.Dimensions[i]
		}
	}
	return nil
}

// levelNamed finds a dimension level by (case-insensitive) name.
func levelNamed(d *mdm.DimensionClass, word string) string {
	if d == nil {
		return ""
	}
	for _, l := range d.Levels {
		if strings.EqualFold(l.Name, word) {
			return l.Name
		}
	}
	return ""
}

// levelAcrossRoles resolves a bare level word against every role of the
// fact, breaking ties with the preferred-preposition role (when given)
// and then the configured role preference.
func (t *Translator) levelAcrossRoles(fc *mdm.FactClass, word, preferRole string) (dw.LevelSel, bool) {
	var cands []dw.LevelSel
	for _, ref := range fc.Dimensions {
		if lvl := levelNamed(t.schema.Dimension(ref.Dimension), word); lvl != "" {
			cands = append(cands, dw.LevelSel{Role: ref.Role, Level: lvl})
		}
	}
	return pickRole(cands, preferRole, t.rolePref)
}

// pickRole chooses among same-level candidates on different roles.
func pickRole(cands []dw.LevelSel, preferRole string, rolePref []string) (dw.LevelSel, bool) {
	if len(cands) == 0 {
		return dw.LevelSel{}, false
	}
	if len(cands) == 1 {
		return cands[0], true
	}
	if preferRole != "" {
		for _, c := range cands {
			if strings.EqualFold(c.Role, preferRole) {
				return c, true
			}
		}
	}
	for _, pref := range rolePref {
		for _, c := range cands {
			if strings.EqualFold(c.Role, pref) {
				return c, true
			}
		}
	}
	return cands[0], true
}

// dateFilters extracts the question's temporal constraints and compiles
// them to filters on the fact's calendar role. Every month-name and
// cardinal token is consumed whether or not it contributed — numbers
// never ground as members.
func (t *Translator) dateFilters(toks []nlp.Token, used []bool, fc *mdm.FactClass, tr *Translation) ([]dw.Filter, error) {
	refs := sbparser.ExtractDates(sbparser.Parse(nlp.Sentence{Tokens: toks}))
	for i, tok := range toks {
		lower := strings.ToLower(tok.Text)
		if _, ok := nlp.IsMonthName(lower); ok || tok.Tag == nlp.TagCD {
			used[i] = true
		}
	}
	if len(refs) == 0 || t.time.Dimension == "" {
		return nil, nil
	}
	var timeRole string
	for _, ref := range fc.Dimensions {
		if ref.Dimension == t.time.Dimension {
			timeRole = ref.Role
			break
		}
	}
	if timeRole == "" {
		return nil, fmt.Errorf("nl2olap: fact %q has no %s dimension for the date constraint",
			fc.Name, t.time.Dimension)
	}
	values := map[string][]string{} // level → member values
	for _, d := range refs {
		level, vals, dynamic := t.dateMembers(d)
		if level == "" {
			continue
		}
		if dynamic {
			tr.DynamicFilters = append(tr.DynamicFilters, dw.LevelSel{Role: timeRole, Level: level})
		}
		values[level] = append(values[level], vals...)
		tr.note("date %s → %s/%s in {%s}", dateRefString(d), timeRole, level, strings.Join(vals, ", "))
	}
	var out []dw.Filter
	for _, level := range []string{t.time.Day, t.time.Month, t.time.Year} {
		if level == "" {
			continue
		}
		if vals, ok := values[level]; ok {
			out = append(out, dw.Filter{Role: timeRole, Level: level, Values: vals})
		}
	}
	return out, nil
}

// dateMembers maps one (possibly partial) date reference to a level and
// the member names it selects. A bare month ("in January") enumerates the
// matching month members the warehouse actually holds, across years —
// that branch reports dynamic=true because its value set tracks the
// level's live member population.
func (t *Translator) dateMembers(d sbparser.DateRef) (level string, vals []string, dynamic bool) {
	switch {
	case d.Year != 0 && d.Month != 0 && d.Day != 0 && t.time.Day != "":
		return t.time.Day, []string{fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)}, false
	case d.Year != 0 && d.Month != 0:
		return t.time.Month, []string{fmt.Sprintf("%04d-%02d", d.Year, d.Month)}, false
	case d.Month != 0:
		suffix := fmt.Sprintf("-%02d", d.Month)
		for _, m := range t.wh.Members(t.time.Dimension, t.time.Month) {
			if strings.HasSuffix(m, suffix) {
				vals = append(vals, m)
			}
		}
		return t.time.Month, vals, true
	case d.Year != 0:
		return t.time.Year, []string{fmt.Sprintf("%04d", d.Year)}, false
	}
	return "", nil, false
}

func dateRefString(d sbparser.DateRef) string {
	return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)
}

// groundMembers resolves the remaining content words as dimension members
// (slice/dice filters). Mentions that resolve nowhere are an error when
// they are proper nouns or the complement of a preposition ("in gotham"):
// an analytic question naming an unknown entity — or carrying a
// constraint the metadata cannot compile — must not silently widen to
// the whole fact table.
func (t *Translator) groundMembers(toks []nlp.Token, used []bool, fc *mdm.FactClass, filters []dw.Filter, tr *Translation) ([]dw.Filter, error) {
	byKey := map[dw.LevelSel]int{} // (role, level) → index in filters
	for i, f := range filters {
		byKey[dw.LevelSel{Role: f.Role, Level: f.Level}] = i
	}
	for i := 0; i < len(toks); i++ {
		if used[i] || !startsMention(toks[i]) {
			continue
		}
		matched := false
		for l := maxPhraseLen; l >= 1; l-- {
			if i+l > len(toks) || anyUsed(used, i, i+l) {
				continue
			}
			surface := surfaceSpan(toks[i : i+l])
			sel, value, via, ok := t.groundOne(fc, surface, precedingPrep(toks, used, i))
			if !ok {
				continue
			}
			markUsed(used, [2]int{i, i + l})
			key := dw.LevelSel{Role: sel.Role, Level: sel.Level}
			if idx, exists := byKey[key]; exists {
				filters[idx].Values = append(filters[idx].Values, value)
			} else {
				byKey[key] = len(filters)
				filters = append(filters, dw.Filter{Role: sel.Role, Level: sel.Level, Values: []string{value}})
			}
			tr.note("member %q → %s/%s %q%s", surface, sel.Role, sel.Level, value, via)
			i += l - 1
			matched = true
			break
		}
		if !matched && !nlp.IsDayName(strings.ToLower(toks[i].Text)) &&
			(toks[i].Tag == nlp.TagNP || precedingPrep(toks, used, i) != "") {
			return nil, fmt.Errorf("nl2olap: cannot ground %q against the %s warehouse metadata",
				toks[i].Text, fc.Name)
		}
	}
	return filters, nil
}

// startsMention reports whether a token can begin a member mention:
// nominal or adjective-tagged content (proper nouns, unknown words), not
// function words, verbs or punctuation.
func startsMention(tok nlp.Token) bool {
	switch tok.Tag {
	case nlp.TagNP, nlp.TagNN, nlp.TagNNS, nlp.TagJJ:
		return !nlp.IsStopword(strings.ToLower(tok.Text))
	}
	return false
}

// precedingPrep returns the preposition immediately before token i (one
// consumed determiner may intervene: "from the Madrid airport").
func precedingPrep(toks []nlp.Token, used []bool, i int) string {
	for j := i - 1; j >= 0 && j >= i-2; j-- {
		if toks[j].Tag == nlp.TagDT {
			continue
		}
		if toks[j].Tag.IsPreposition() || toks[j].Tag == nlp.TagTO {
			return strings.ToLower(toks[j].Text)
		}
		return ""
	}
	return ""
}

// groundOne resolves one surface form to a (role, level, member) of the
// fact: first against the dimension tables (exact, then title-cased),
// then through the ontology lexicon (instances and their aliases, with
// locatedIn indirection for facts that lack the instance's own level).
// via describes the indirection for the grounding trail.
func (t *Translator) groundOne(fc *mdm.FactClass, surface, prep string) (dw.LevelSel, string, string, bool) {
	preferRole := ""
	if prep != "" {
		preferRole = t.prepRole[prep]
	}
	if sel, value, ok := t.memberLookup(fc, surface, preferRole); ok {
		return sel, value, "", true
	}
	if t.onto != nil {
		if concept, inst := t.onto.FindInstance(surface); inst != nil {
			// The instance's concept may itself be a level of the fact
			// ("El Prat" is an Airport member for the sales fact)...
			if sel, value, ok := t.memberLookup(fc, inst.Name, preferRole); ok {
				return sel, value, fmt.Sprintf(" (ontology %s)", concept), true
			}
			// ...or only reachable through its location ("El Prat" →
			// Barcelona for the Weather fact's City role).
			if city := inst.Properties["locatedIn"]; city != "" {
				if sel, value, ok := t.memberLookup(fc, city, preferRole); ok {
					return sel, value, fmt.Sprintf(" (ontology %s, locatedIn)", concept), true
				}
			}
		}
	}
	return dw.LevelSel{}, "", "", false
}

// memberLookup finds a member by name across every (role, level) of the
// fact, trying the surface form, its title-cased variant, and the ETL
// canonical form — the same etl.CanonicalCity the Step 5 feed path mints
// members with, so "BARCELONA" and "el prat" ground to exactly the
// members feeding created ("Barcelona", "El Prat") instead of depending
// on a second, subtly different casing rule. Levels are probed
// base-first, so "El Prat" grounds at Airport before City.
func (t *Translator) memberLookup(fc *mdm.FactClass, surface, preferRole string) (dw.LevelSel, string, bool) {
	names := []string{surface}
	if tc := titleCase(surface); tc != surface {
		names = append(names, tc)
	}
	if cc := etl.CanonicalCity(surface); cc != surface {
		dup := false
		for _, n := range names {
			if n == cc {
				dup = true
				break
			}
		}
		if !dup {
			names = append(names, cc)
		}
	}
	for _, name := range names {
		var cands []dw.LevelSel
		for _, ref := range fc.Dimensions {
			d := t.schema.Dimension(ref.Dimension)
			for _, lvl := range d.Levels {
				if _, err := t.wh.MemberKey(ref.Dimension, lvl.Name, name); err == nil {
					cands = append(cands, dw.LevelSel{Role: ref.Role, Level: lvl.Name})
					break // base-first: the finest level of this role wins
				}
			}
		}
		if sel, ok := pickRole(cands, preferRole, t.rolePref); ok {
			return sel, name, true
		}
	}
	return dw.LevelSel{}, "", false
}

// canonicalFilters sorts filters by (role, level) and their values
// alphabetically (deduplicated), so paraphrases compile to identical
// plans.
func canonicalFilters(filters []dw.Filter) []dw.Filter {
	for i := range filters {
		sort.Strings(filters[i].Values)
		filters[i].Values = dedupeSorted(filters[i].Values)
	}
	sort.Slice(filters, func(i, j int) bool {
		if filters[i].Role != filters[j].Role {
			return filters[i].Role < filters[j].Role
		}
		return filters[i].Level < filters[j].Level
	})
	return filters
}

func dedupeSorted(vals []string) []string {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// surfaceSpan joins token texts with single spaces.
func surfaceSpan(toks []nlp.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// normSpan normalises a token span for vocabulary lookup: lower-cased,
// hyphens split ("last-minute sales" matches the fact phrase).
func normSpan(toks []nlp.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return normPhrase(strings.Join(parts, " "))
}

// normPhrase is the shared vocabulary-key normalisation.
func normPhrase(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", " ")
	return strings.Join(strings.Fields(s), " ")
}

// camelSplit renders a CamelCase identifier as words ("LastMinuteSales" →
// "Last Minute Sales").
func camelSplit(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// titleCase capitalises each word ("new york" → "New York").
func titleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if len(f) > 0 {
			fields[i] = strings.ToUpper(f[:1]) + f[1:]
		}
	}
	return strings.Join(fields, " ")
}
