package main

import "testing"

// TestPrintPerfAllSections drives the report printer over a fully
// populated report so every section's formatting runs. The values are
// synthetic; the test asserts the printer tolerates a complete v9
// report without panicking (a malformed verb or a nil-deref on an
// optional section would fail here instead of at the end of a
// half-hour benchmark run).
func TestPrintPerfAllSections(t *testing.T) {
	rep := &perfReport{
		Schema: "dwqa-bench/v9",
		Measurements: []perfMeasurement{
			{Name: "IRSearchTopK", Rows: 239, Iterations: 100, NsPerOp: 11939, AllocsPerOp: 7, BytesPerOp: 1336},
			{Name: "AskCold", Rows: 21, Iterations: 500, NsPerOp: 2.1e6, AllocsPerOp: 4776, BytesPerOp: 727858},
		},
		OLAP: []perfComparison{
			{Rows: 1000, Compiled: 1000, Reference: 80000, Speedup: 80, AllocReduction: 0.99},
		},
		IRSparse: []irSparseComparison{
			{Passages: 100001, Queries: 84, Sparse: 280e3, Dense: 3e6, Speedup: 10.6, SparseAllocs: 7, DenseAllocs: 90},
		},
		QAServing: &qaServingComparison{
			WorkloadQuestions: 4000, UniqueQuestions: 40, Workers: 8,
			Sequential: 1e9, Engine: 1e6, Speedup: 1000, SequentialQPS: 4000, EngineQPS: 4e6,
		},
		QAServingMixed: &qaServingComparison{
			WorkloadQuestions: 4000, UniqueQuestions: 56, Workers: 8,
			Sequential: 1e9, Engine: 2e6, Speedup: 500, SequentialQPS: 4000, EngineQPS: 2e6,
		},
		NL2OLAP: &nl2olapPerf{Questions: 28, NsPerOp: 27000, QuestionsPerSec: 37000, AllocsPerOp: 400},
		AskCold: &askColdPerf{UniqueQuestions: 21, NsPerOp: 2.1e6, QuestionsPerSec: 9800, AllocsPerOp: 4776},
		AskColdObs: &askColdObservedPerf{
			UniqueQuestions: 21, ObservedNsPerOp: 1.84e6, PlainNsPerOp: 1.86e6,
			ObservedAllocs: 4776, PlainAllocs: 4776, OverheadFrac: -0.009,
		},
		ShardedCold: &shardedColdPerf{
			UniqueQuestions: 21,
			Arms: []shardedColdArm{
				{Shards: 1, NsPerOp: 2.2e6, QuestionsPerSec: 9500, MaxShardPassages: 239},
				{Shards: 2, NsPerOp: 2.2e6, QuestionsPerSec: 9500, MaxShardPassages: 130},
			},
			FederationOverheadFrac: 0.02,
		},
		Resilience: &servingResiliencePerf{
			GatedNsPerOp: 2.2e6, UngatedNsPerOp: 2.1e6, OverheadFrac: 0.04,
			ShedNsPerOp: 255, ShedAllocsPerOp: 1,
		},
		Harvest: &harvestComparison{Questions: 40, Sequential: 2e9, Engine: 5e8, Speedup: 4},
		CacheFeed: &cacheInvalidationPerf{
			PoolQuestions: 80, SelectiveNsPerOp: 3e7, FullFlushNsPerOp: 6e7,
			SelectiveHitRate: 0.9, FullFlushHitRate: 0.4, Speedup: 2,
		},
		StoreRestore: &storeRestorePerf{
			Passages: 100000, FactRows: 100000, Members: 500, SnapshotBytes: 2 << 20,
			Restore: 9e7, Refeed: 3e9, Reindex: 1e9, Speedup: 33, SpeedupMin: 11,
			WALRecords: 1000, WALReplay: 1e8, WALRecordsPerSec: 10000,
			PostingsCount: 5_000_000, PostingsBytes: 10 << 20, BytesPerPosting: 2.01,
		},
		Footprint1M: &memFootprintPerf{
			Passages: 1_000_000, PostingsCount: 5_000_000, PostingsBytes: 10 << 20,
			BytesPerPosting: 2.01, SnapshotBytes: 100 << 20, RestoreNsPerOp: 9e8,
			RSSBytes: 1 << 30, PeakRSSBytes: 2 << 30,
		},
	}
	printPerf(rep)
}
