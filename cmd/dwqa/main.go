// Command dwqa runs the full five-step DW↔QA integration on the Last
// Minute Sales scenario and prints the paper's Table 1 trace plus the BI
// analysis the scenario motivates.
//
// Usage:
//
//	dwqa [-seed N] [-no-ontology] [-no-irfilter] [-table-aware] [-q QUESTION]
package main

import (
	"flag"
	"fmt"
	"os"

	"dwqa"
)

func main() {
	seed := flag.Int64("seed", 42, "deterministic seed for scenario, corpus and workload")
	noOntology := flag.Bool("no-ontology", false, "ablate the shared ontology (skip Steps 2-3 enrichment)")
	noIRFilter := flag.Bool("no-irfilter", false, "ablate the IR filtering phase (QA scans every passage)")
	tableAware := flag.Bool("table-aware", false, "enable the future-work table pre-processing")
	question := flag.String("q", "What is the weather like in January of 2004 in El Prat?", "question to trace")
	flag.Parse()

	cfg := dwqa.DefaultConfig()
	cfg.Seed = *seed
	cfg.QA.UseOntology = !*noOntology
	cfg.QA.UseIRFilter = !*noIRFilter
	cfg.TableAware = *tableAware

	p, err := dwqa.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Running the five-step integration (paper §3)...")
	if err := p.RunAll(); err != nil {
		fatal(err)
	}
	fmt.Println(p.Summary())

	tr, err := p.Table1(*question)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- Table 1 trace ---")
	fmt.Println(tr.Format())

	rep, err := dwqa.AnalyzeSalesWeather(p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- BI analysis (the scenario's goal) ---")
	fmt.Println(rep.Format())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwqa:", err)
	os.Exit(1)
}
