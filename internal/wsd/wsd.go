// Package wsd implements the word sense disambiguation step of the AliQAn
// indexation phase, replacing the WSD algorithm of Ferrández et al. 2006
// (reference [4] of the paper). Nouns and verbs are assigned a WordNet
// synset by a Lesk-style method: the candidate sense whose gloss, synonyms
// and hypernym neighbourhood overlap most with the sentence context wins,
// with the WordNet first-sense ranking as prior and an optional domain
// boost for senses reachable from domain concepts (the ontology enrichment
// of Steps 2-3 is what creates those senses).
package wsd

import (
	"strings"

	"dwqa/internal/nlp"
	"dwqa/internal/wordnet"
)

// Assignment records the sense chosen for one token.
type Assignment struct {
	TokenIndex int
	SynsetID   string
	Score      float64
}

// Config tunes the disambiguator.
type Config struct {
	// DomainSynsets boosts candidate senses subsumed by any of these
	// synset IDs (e.g. the airport subtree after Step 3 enrichment).
	DomainSynsets []string
	// DomainBoost is the additive score for a domain-subsumed sense.
	DomainBoost float64
}

// Disambiguator assigns senses against one lexical database.
type Disambiguator struct {
	wn  *wordnet.WordNet
	cfg Config
}

// New returns a Disambiguator with the given configuration. A zero Config
// is valid (pure Lesk + first-sense prior).
func New(wn *wordnet.WordNet, cfg Config) *Disambiguator {
	if cfg.DomainBoost == 0 {
		cfg.DomainBoost = 2.0
	}
	return &Disambiguator{wn: wn, cfg: cfg}
}

// posFor maps a token tag to the WordNet POS to search.
func posFor(tag nlp.Tag) (wordnet.POS, bool) {
	switch {
	case tag.IsNoun():
		return wordnet.Noun, true
	case tag.IsVerb():
		return wordnet.Verb, true
	case tag == nlp.TagJJ:
		return wordnet.Adjective, true
	case tag == nlp.TagRB:
		return wordnet.Adverb, true
	}
	return "", false
}

// Disambiguate assigns a synset to every content token of the sentence
// that has at least one candidate sense. Multi-word entities are matched
// greedily first (longest span wins), so "El Prat" resolves as one lemma
// before "prat" alone is attempted.
func (d *Disambiguator) Disambiguate(sent nlp.Sentence) []Assignment {
	toks := sent.Tokens
	context := contextSet(toks)
	var out []Assignment
	i := 0
	for i < len(toks) {
		pos, ok := posFor(toks[i].Tag)
		if !ok {
			i++
			continue
		}
		// Greedy multi-word lookup: longest lemma span (up to 4 tokens).
		matched := false
		for span := min(4, len(toks)-i); span >= 2; span-- {
			lemma := spanLemma(toks[i : i+span])
			if senses := d.wn.Lookup(lemma, wordnet.Noun); len(senses) > 0 {
				best, score := d.pick(senses, context)
				out = append(out, Assignment{TokenIndex: i, SynsetID: best, Score: score})
				i += span
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		senses := d.wn.Lookup(toks[i].Lemma, pos)
		if len(senses) == 0 && pos == wordnet.Noun {
			// Proper nouns may only exist as surface forms ("El" alone is
			// nothing but "el prat" was handled above); fall through.
			senses = d.wn.Lookup(strings.ToLower(toks[i].Text), pos)
		}
		if len(senses) > 0 {
			best, score := d.pick(senses, context)
			out = append(out, Assignment{TokenIndex: i, SynsetID: best, Score: score})
		}
		i++
	}
	return out
}

// pick scores each candidate sense and returns the winner.
func (d *Disambiguator) pick(senses []*wordnet.Synset, context map[string]bool) (string, float64) {
	bestID, bestScore := "", -1.0
	for rank, s := range senses {
		score := d.senseScore(s, context)
		// First-sense prior: earlier senses win ties and near-ties.
		score += 0.5 / float64(rank+1)
		if score > bestScore {
			bestID, bestScore = s.ID, score
		}
	}
	return bestID, bestScore
}

// senseScore is the Lesk overlap of gloss + lemmas + hypernym lemmas with
// the sentence context, plus the domain boost when applicable.
func (d *Disambiguator) senseScore(s *wordnet.Synset, context map[string]bool) float64 {
	score := 0.0
	for _, w := range glossWords(s.Gloss) {
		if context[w] {
			score++
		}
	}
	for _, l := range s.Lemmas {
		for _, w := range strings.Fields(l) {
			if context[w] {
				score += 0.5
			}
		}
	}
	for _, hid := range s.Related(wordnet.Hypernym) {
		if h := d.wn.Synset(hid); h != nil {
			for _, l := range h.Lemmas {
				for _, w := range strings.Fields(l) {
					if context[w] {
						score += 0.5
					}
				}
			}
		}
	}
	for _, dom := range d.cfg.DomainSynsets {
		if d.wn.IsA(s.ID, dom) {
			score += d.cfg.DomainBoost
			break
		}
	}
	return score
}

// contextSet collects the lower-cased lemmas and surface words of the
// sentence for overlap scoring.
func contextSet(toks []nlp.Token) map[string]bool {
	ctx := make(map[string]bool, 2*len(toks))
	for _, t := range toks {
		if t.IsContentWord() && !nlp.IsStopword(t.Lemma) {
			ctx[t.Lemma] = true
			ctx[strings.ToLower(t.Text)] = true
		}
	}
	return ctx
}

// glossWords tokenises a gloss into lower-cased content words.
func glossWords(gloss string) []string {
	var out []string
	for _, f := range strings.Fields(strings.ToLower(gloss)) {
		f = strings.Trim(f, ".,;:()'\"")
		if f != "" && !nlp.IsStopword(f) {
			out = append(out, f)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// spanLemma joins token lemmas into a multi-word lemma candidate.
func spanLemma(toks []nlp.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = strings.ToLower(t.Text)
	}
	return strings.Join(parts, " ")
}
