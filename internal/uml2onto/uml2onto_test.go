package uml2onto

import (
	"testing"

	"dwqa/internal/mdm"
	"dwqa/internal/ontology"
)

func schema() *mdm.Schema {
	return mdm.NewSchema("LastMinuteSales").
		AddDimension(&mdm.DimensionClass{
			Name: "Airport",
			Levels: []*mdm.Level{
				{Name: "Airport", Descriptor: "Name", RollsUpTo: "City",
					Attributes: []mdm.Attribute{{Name: "IATA", Type: mdm.TypeString}}},
				{Name: "City", Descriptor: "Name", RollsUpTo: "State"},
				{Name: "State", Descriptor: "Name"},
			},
		}).
		AddDimension(&mdm.DimensionClass{
			Name: "Date",
			Levels: []*mdm.Level{
				{Name: "Day", Descriptor: "Date", RollsUpTo: "Month"},
				{Name: "Month", Descriptor: "Name"},
			},
		}).
		AddFact(&mdm.FactClass{
			Name: "Last Minute Sales",
			Measures: []mdm.Measure{
				{Name: "Price", Type: mdm.TypeFloat},
				{Name: "Miles", Type: mdm.TypeFloat},
			},
			Dimensions: []mdm.DimensionRef{
				{Role: "Destination", Dimension: "Airport"},
				{Role: "Date", Dimension: "Date"},
			},
		})
}

func TestTransformConcepts(t *testing.T) {
	o, err := Transform(schema())
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	// Figure 2 concepts: every level and the fact.
	for _, want := range []string{"Airport", "City", "State", "Day", "Month", "Last Minute Sales"} {
		if o.Concept(want) == nil {
			t.Errorf("missing concept %q", want)
		}
	}
	if got, want := o.Size(), 6; got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
}

func TestTransformRelations(t *testing.T) {
	o, err := Transform(schema())
	if err != nil {
		t.Fatal(err)
	}
	airport := o.Concept("Airport")
	foundLoc := false
	for _, r := range airport.Relations {
		if r.Name == RollUpRelation && r.Target == "City" {
			foundLoc = true
		}
	}
	if !foundLoc {
		t.Error("Airport should be locatedIn City")
	}
	fact := o.Concept("Last Minute Sales")
	foundDim := false
	for _, r := range fact.Relations {
		if r.Name == AnalyzedByRelation+":Destination" && r.Target == "Airport" {
			foundDim = true
		}
	}
	if !foundDim {
		t.Errorf("fact should be analyzedBy:Destination Airport, has %v", fact.Relations)
	}
}

func TestTransformAttributes(t *testing.T) {
	o, err := Transform(schema())
	if err != nil {
		t.Fatal(err)
	}
	fact := o.Concept("Last Minute Sales")
	measures := 0
	for _, a := range fact.Attributes {
		if a.Kind == ontology.KindMeasure {
			measures++
		}
	}
	if measures != 2 {
		t.Errorf("fact has %d measures, want 2 (Price, Miles)", measures)
	}
	airport := o.Concept("Airport")
	hasIATA, hasDescriptor := false, false
	for _, a := range airport.Attributes {
		if a.Name == "IATA" && a.Kind == ontology.KindAttribute {
			hasIATA = true
		}
		if a.Name == "Name" && a.Kind == ontology.KindDescriptor {
			hasDescriptor = true
		}
	}
	if !hasIATA || !hasDescriptor {
		t.Errorf("airport attributes incomplete: %v", airport.Attributes)
	}
}

func TestTransformRejectsInvalidSchema(t *testing.T) {
	bad := mdm.NewSchema("bad").AddFact(&mdm.FactClass{Name: "F"})
	if _, err := Transform(bad); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestTransformOutputValidates(t *testing.T) {
	o, err := Transform(schema())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Errorf("transformed ontology invalid: %v", err)
	}
}
