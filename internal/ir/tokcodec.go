package ir

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dwqa/internal/nlp"
)

// Per-document token-stream codec.
//
// A document's analysed sentences are stored as one framed byte block:
// per sentence a token count, per token (start delta, length, tag index,
// lemma index) varints against snapshot-wide tag/lemma intern tables.
// Token text is not stored — a token's surface form is exactly
// doc.Text[start:end), so decode slices it back out of the document.
//
// The codec lives in ir (not internal/store) because restore is lazy:
// Import keeps the wire blocks and decodes a document's sentences on
// first touch (sentsAt), so a restored index pays token materialisation
// only for documents a query actually reads. The store writes and ships
// the same blocks verbatim. The byte format is unchanged from snapshot
// schema v2, which decoded everything eagerly.

var (
	errNegativeCount = errors.New("negative posting count")
	errTruncatedList = errors.New("truncated posting list")
	errBadGap        = errors.New("zero or oversized id gap")
	errIDRange       = errors.New("posting id out of range")
	errBadTF         = errors.New("posting tf out of range")
	errTrailingBytes = errors.New("trailing bytes after posting list")
)

// encodeTokenBlock appends one document's token stream to dst, interning
// tags and lemmas into the shared tables (extended in first-occurrence
// order — the append-only order that keeps previously encoded blocks'
// indexes valid). Returns the extended dst and the token count.
func encodeTokenBlock(dst []byte, sents []nlp.Sentence, tagIdx map[string]int, tags *[]string, lemmaIdx map[string]int, lemmas *[]string) ([]byte, int) {
	tokens := 0
	prev := int64(0)
	for _, s := range sents {
		dst = binary.AppendUvarint(dst, uint64(len(s.Tokens)))
		tokens += len(s.Tokens)
		for _, t := range s.Tokens {
			ti, ok := tagIdx[string(t.Tag)]
			if !ok {
				ti = len(*tags)
				tagIdx[string(t.Tag)] = ti
				*tags = append(*tags, string(t.Tag))
			}
			li, ok := lemmaIdx[t.Lemma]
			if !ok {
				li = len(*lemmas)
				lemmaIdx[t.Lemma] = li
				*lemmas = append(*lemmas, t.Lemma)
			}
			dst = binary.AppendVarint(dst, int64(t.Start)-prev)
			dst = binary.AppendUvarint(dst, uint64(t.End-t.Start))
			dst = binary.AppendUvarint(dst, uint64(ti))
			dst = binary.AppendUvarint(dst, uint64(li))
			prev = int64(t.End)
		}
	}
	return dst, tokens
}

// uvTok decodes an unsigned varint with a fast path for the one-byte
// values that dominate token streams. Returns newPos -1 on truncation.
func uvTok(data []byte, pos int) (uint64, int) {
	if pos < len(data) {
		if b := data[pos]; b < 0x80 {
			return uint64(b), pos + 1
		}
	}
	v, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, -1
	}
	return v, pos + n
}

// vTok is uvTok for zigzag-signed varints.
func vTok(data []byte, pos int) (int64, int) {
	u, next := uvTok(data, pos)
	if next < 0 {
		return 0, -1
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, next
}

// walkTokenBlock drives both validation and decode: it streams the block
// once, calling emit for every token (emit is nil when only validating).
// All structural failure modes — truncation, empty sentences, token
// over/undercount, spans outside the document, intern indexes out of
// range, trailing bytes — surface as errors here, so a block that passed
// validation at Import decodes infallibly on first touch.
func walkTokenBlock(data []byte, textLen, nSents, nTokens, nTags, nLemmas int, emit func(sent, ti, start, end, tagIdx, lemmaIdx int)) error {
	pos := 0
	ti := 0
	prev := 0
	for s := 0; s < nSents; s++ {
		nToks, next := uvTok(data, pos)
		if next < 0 {
			return errors.New("truncated token block")
		}
		pos = next
		if nToks == 0 {
			return errors.New("empty sentence")
		}
		for t := uint64(0); t < nToks; t++ {
			if ti >= nTokens {
				return fmt.Errorf("more tokens than the declared %d", nTokens)
			}
			delta, next := vTok(data, pos)
			if next < 0 {
				return errors.New("truncated token block")
			}
			length, next2 := uvTok(data, next)
			if next2 < 0 {
				return errors.New("truncated token block")
			}
			tagIdx, next3 := uvTok(data, next2)
			if next3 < 0 {
				return errors.New("truncated token block")
			}
			lemmaIdx, next4 := uvTok(data, next3)
			if next4 < 0 {
				return errors.New("truncated token block")
			}
			pos = next4
			start := prev + int(delta)
			end := start + int(length)
			if start < 0 || end < start || end > textLen {
				return fmt.Errorf("token span [%d:%d) outside document (%d bytes)", start, end, textLen)
			}
			if tagIdx >= uint64(nTags) {
				return fmt.Errorf("tag index %d out of range (%d entries)", tagIdx, nTags)
			}
			if lemmaIdx >= uint64(nLemmas) {
				return fmt.Errorf("lemma index %d out of range (%d entries)", lemmaIdx, nLemmas)
			}
			if emit != nil {
				emit(s, ti, start, end, int(tagIdx), int(lemmaIdx))
			}
			ti++
			prev = end
		}
	}
	if ti != nTokens {
		return fmt.Errorf("declared %d tokens, stream holds %d", nTokens, ti)
	}
	if pos != len(data) {
		return fmt.Errorf("%d trailing bytes in token block", len(data)-pos)
	}
	return nil
}

// validateTokenBlock structurally checks a wire block without
// materialising tokens — the Import-time pass that makes lazy decode
// infallible.
func validateTokenBlock(data []byte, textLen, nSents, nTokens, nTags, nLemmas int) error {
	return walkTokenBlock(data, textLen, nSents, nTokens, nTags, nLemmas, nil)
}

// decodeTokenBlock materialises a validated block: tokens land in a
// single per-document arena (one allocation) with sentences as
// subslices, token text sliced straight out of the document. Panics on a
// malformed block — callers only reach here through Import, which
// validated the block already.
func decodeTokenBlock(data []byte, text string, nSents, nTokens int, tags, lemmas []string) []nlp.Sentence {
	arena := make([]nlp.Token, nTokens)
	counts := make([]int32, nSents)
	err := walkTokenBlock(data, len(text), nSents, nTokens, len(tags), len(lemmas), func(sent, ti, start, end, tagIdx, lemmaIdx int) {
		counts[sent]++
		arena[ti] = nlp.Token{
			Text:  text[start:end],
			Lemma: lemmas[lemmaIdx],
			Tag:   nlp.Tag(tags[tagIdx]),
			Start: start,
			End:   end,
		}
	})
	if err != nil {
		panic(fmt.Sprintf("ir: validated token block failed to decode: %v", err))
	}
	sents := make([]nlp.Sentence, nSents)
	ti := int32(0)
	for s, n := range counts {
		toks := arena[ti : ti+n : ti+n]
		sents[s] = nlp.Sentence{Tokens: toks, Start: toks[0].Start, End: toks[len(toks)-1].End}
		ti += n
	}
	return sents
}
