package qa

import (
	"sync"
	"testing"

	"dwqa/internal/ir"
	"dwqa/internal/wordnet"
)

// fuzzSystem lazily builds one shared System over a small weather corpus;
// fuzz workers only read it (Answer/Harvest are concurrency-safe).
var (
	fuzzOnce sync.Once
	fuzzSys  *System
)

func fuzzSystemInit(t *testing.T) *System {
	fuzzOnce.Do(func() {
		ix := ir.NewIndex()
		docs := []ir.Document{
			{URL: "http://weather.example/bcn", Text: "Barcelona Weather in January 2004.\n" +
				"Monday, January 31, 2004\nBarcelona Weather: Temperature 8º C around 46.4 F. Clear skies.\n" +
				"Tuesday, February 3, 2004\nBarcelona Weather: Temperature 6º C around 42.8 F."},
			{URL: "http://astro.example/sirius", Text: "Sirius is the brightest star in the night sky. " +
				"Sirius was recorded in 2004 by astronomers."},
		}
		if err := ix.AddAll(docs); err != nil {
			panic(err)
		}
		sys, err := NewSystem(wordnet.Seed(), nil, ix, DefaultConfig())
		if err != nil {
			panic(err)
		}
		sys.TunePatterns(WeatherPatterns()...)
		fuzzSys = sys
	})
	return fuzzSys
}

// FuzzAnalyze drives Module 1 (and, when analysis succeeds, the full
// Answer and Harvest paths) with arbitrary question text: no input may
// panic, and every produced analysis must uphold its structural
// invariants (a matched pattern, retrieval terms without empties, dates
// within calendar bounds).
func FuzzAnalyze(f *testing.F) {
	for _, s := range []string{
		"What is the weather like in January of 2004 in El Prat?",
		"What is the temperature in Barcelona in February of 2004?",
		"Which country did Iraq invade in 1990?",
		"What is Sirius?",
		"How hot is it in Barcelona?",
		"How many terms did La Guardia serve?",
		"When did the invasion happen?",
		"Where is El Prat?",
		"Who is the mayor of New York?",
		"weather",
		"?",
		"",
		"what what what",
		"What is the weather like in January of 2004 in \xff\xfe?",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, question string) {
		s := fuzzSystemInit(t)
		a, err := s.analyze(question)
		if err != nil {
			return // rejected questions are fine; panics are not
		}
		if a.Pattern == nil {
			t.Fatal("analysis without a matched pattern")
		}
		for _, term := range a.Terms {
			if term == "" {
				t.Fatal("empty retrieval term")
			}
		}
		for _, d := range a.Dates {
			if d.Month < 0 || d.Month > 12 || d.Day < 0 || d.Day > 31 {
				t.Fatalf("implausible question date %+v", d)
			}
		}
		_ = a.ExpectedAnswerType()
		_ = a.MainSBStrings()

		// The full search pipeline (Modules 2-3) and the Step 5 harvest
		// must also hold up, including trace rendering.
		res, err := s.Answer(question)
		if err != nil {
			t.Fatalf("analyze succeeded but Answer failed: %v", err)
		}
		_ = res.Trace().Format()
		if _, _, err := s.Harvest(question); err != nil {
			t.Fatalf("analyze succeeded but Harvest failed: %v", err)
		}
	})
}
