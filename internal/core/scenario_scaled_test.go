package core

import (
	"strings"
	"testing"

	"dwqa/internal/dw"
)

// TestBuildScaledWarehouseReachesTarget pins the scale search: a target
// above the unscaled generator's row count forces the demand multiplier
// loop, and the result must actually meet the floor. Determinism given
// the seed rides along (two builds, identical row counts).
func TestBuildScaledWarehouseReachesTarget(t *testing.T) {
	probe, err := BuildScaledWarehouse(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := probe.FactCount("LastMinuteSales")
	if base == 0 {
		t.Fatal("unscaled scenario generated no sales rows")
	}

	target := base*3 + 1
	wh, err := BuildScaledWarehouse(target, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := wh.FactCount("LastMinuteSales"); got < target {
		t.Fatalf("scaled warehouse has %d rows, want >= %d", got, target)
	}
	again, err := BuildScaledWarehouse(target, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := again.FactCount("LastMinuteSales"), wh.FactCount("LastMinuteSales"); got != want {
		t.Fatalf("same seed built %d rows then %d", want, got)
	}
}

// TestResultsAlmostEqual pins the benchmark comparator: exact matches
// and within-tolerance float drift pass; every structural or numeric
// mismatch is reported with the offending row.
func TestResultsAlmostEqual(t *testing.T) {
	base := func() *dw.Result {
		return &dw.Result{Rows: []dw.Row{
			{Groups: []string{"Spain", "January"}, Value: 1234.56, Count: 7},
			{Groups: []string{"USA", "January"}, Value: 99.5, Count: 2},
		}}
	}

	if err := ResultsAlmostEqual(base(), base()); err != nil {
		t.Fatalf("identical results reported unequal: %v", err)
	}
	drift := base()
	drift.Rows[0].Value += 1e-10 // inside the relative tolerance
	if err := ResultsAlmostEqual(base(), drift); err != nil {
		t.Fatalf("within-tolerance drift reported unequal: %v", err)
	}

	for name, mutate := range map[string]func(*dw.Result){
		"row count":   func(r *dw.Result) { r.Rows = r.Rows[:1] },
		"group arity": func(r *dw.Result) { r.Rows[1].Groups = r.Rows[1].Groups[:1] },
		"group name":  func(r *dw.Result) { r.Rows[1].Groups[0] = "Italy" },
		"count":       func(r *dw.Result) { r.Rows[0].Count++ },
		"value":       func(r *dw.Result) { r.Rows[0].Value += 0.01 },
	} {
		t.Run(strings.ReplaceAll(name, " ", "-"), func(t *testing.T) {
			mutated := base()
			mutate(mutated)
			if err := ResultsAlmostEqual(base(), mutated); err == nil {
				t.Fatalf("%s mismatch went undetected", name)
			}
		})
	}
}
