// Portal: an enterprise-knowledge-portal session in the style of the
// paper's related work (§2, Priebe & Pernul): structured OLAP queries and
// unstructured QA side by side, with the shared ontology carrying context
// between them — the analyst asks the warehouse in natural language
// (compiled to an OLAP plan by the nl2olap translator), then asks the web
// why a destination spiked, then drills back into the QA-fed fact.
//
//	go run ./examples/portal
package main

import (
	"fmt"
	"log"

	"dwqa"
	"dwqa/internal/dw"
)

func main() {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		log.Fatal(err)
	}

	// Pane 1 — the OLAP view, asked in natural language: the analytic
	// path classifies the question and compiles it to the same plan an
	// analyst would hand-write ("sales of certain products within the
	// four quarters", §2).
	const analytic = "How many tickets were sold by destination city and month?"
	ans, err := p.AskOLAP(analytic)
	if err != nil {
		log.Fatal(err)
	}
	sales := ans.Result
	fmt.Printf("OLAP pane: %s\nplan: %s\n", analytic, ans.PlanString())
	fmt.Print(sales.Format())

	// Find the hottest destination-month.
	best := sales.Rows[0]
	for _, r := range sales.Rows {
		if r.Value > best.Value {
			best = r
		}
	}
	city, month := best.Groups[0], best.Groups[1]
	fmt.Printf("\npeak: %s in %s (%d tickets)\n", city, month, int(best.Value))

	// Pane 2 — the QA view: the portal turns the OLAP context into a
	// natural-language question against the unstructured web (the
	// cross-system context passing §2 describes, but through the shared
	// ontology instead of a message bus).
	monthName := map[string]string{"01": "January", "02": "February", "03": "March"}[month[5:]]
	question := fmt.Sprintf("What is the temperature in %s of %s in %s?", monthName, month[:4], city)
	res, err := p.Ask(question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQA pane: %s\n", question)
	if res.Best != nil {
		fmt.Printf("  %s  <%s>\n", res.Best.Render(), res.Best.URL)
	}

	// Pane 3 — the drill-down the related work demonstrates ("drilling
	// down to obtain those documents published in July 1998"): slice the
	// fed Weather fact to that city and month.
	drill, err := p.Warehouse.Execute(dw.Query{
		Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{{Role: "Date", Level: "Day"}},
		Filters: []dw.Filter{
			{Role: "City", Level: "City", Values: []string{city}},
			{Role: "Date", Level: "Month", Values: []string{month}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndrill-down pane: %d daily weather records for %s %s in the warehouse\n",
		len(drill.Rows), city, month)
}
