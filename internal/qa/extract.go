package qa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dwqa/internal/ir"
	"dwqa/internal/nlp"
	"dwqa/internal/sbparser"
	"dwqa/internal/wordnet"
)

// Answer is an extracted answer candidate. For measure questions it is a
// structured (value – unit – date – location – web page) record — the
// tuple Step 5 loads into the warehouse.
type Answer struct {
	Category Category
	Text     string  // surface answer ("8ºC", "Kuwait", "Sirius")
	Value    float64 // numeric value when the category is numerical
	HasValue bool
	Unit     string // normalised unit ("C", "F"); "" when none found
	Date     sbparser.DateRef
	Location string
	URL      string // source web page
	Sentence string // supporting sentence text
	Score    float64
}

// Render prints the answer the way Table 1 does:
// "(8ºC – Monday, January 31, 2004 – Barcelona)".
func (a Answer) Render() string {
	parts := []string{a.Text}
	if !a.Date.IsZero() {
		parts = append(parts, formatDateRef(a.Date))
	}
	if a.Location != "" {
		parts = append(parts, a.Location)
	}
	return "(" + strings.Join(parts, " – ") + ")"
}

// Format renders a DateRef in the paper's style ("Monday, January 31,
// 2004"), degrading gracefully for partial dates.
func formatDateRef(d sbparser.DateRef) string {
	switch {
	case d.Year != 0 && d.Month != 0 && d.Day != 0:
		t := time.Date(d.Year, time.Month(d.Month), d.Day, 0, 0, 0, 0, time.UTC)
		return fmt.Sprintf("%s, %s %d, %d", t.Weekday(), t.Month(), d.Day, d.Year)
	case d.Year != 0 && d.Month != 0:
		return fmt.Sprintf("%s %d", time.Month(d.Month), d.Year)
	case d.Year != 0:
		return strconv.Itoa(d.Year)
	case d.Month != 0:
		return time.Month(d.Month).String()
	default:
		return ""
	}
}

// extract runs Module 3 over the selected passages and returns scored
// candidates, best first.
func (s *System) extract(a *Analysis, passages []ir.Passage) []Answer {
	var out []Answer
	for rank, p := range passages {
		rankBonus := 0.2 / float64(rank+1)
		switch {
		case len(a.ExpectedUnits) > 0 || a.Category == CatNumMeasure:
			out = append(out, s.extractMeasures(a, p, rankBonus)...)
		case a.Category.IsPlace(), a.Category == CatPerson,
			a.Category == CatGroup, a.Category == CatObject,
			a.Category == CatProfession, a.Category == CatEvent:
			out = append(out, s.extractTyped(a, p, rankBonus)...)
		case a.Category.IsTemporal():
			out = append(out, s.extractTemporal(a, p, rankBonus)...)
		case a.Category.IsNumerical():
			out = append(out, s.extractNumeric(a, p, rankBonus)...)
		default:
			out = append(out, s.extractDefinition(a, p, rankBonus)...)
		}
	}
	sortAnswers(out)
	return out
}

func sortAnswers(out []Answer) {
	// Stable deterministic order: score desc, then URL, text. The
	// comparator takes pointers — Answer is a large struct, and a harvest
	// question carries hundreds of candidates, so by-value comparisons
	// were a measurable slice of the cold path.
	sort.SliceStable(out, func(i, j int) bool { return less(&out[i], &out[j]) })
}

func less(a, b *Answer) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.URL != b.URL {
		return a.URL < b.URL
	}
	return a.Text < b.Text
}

// unitAfter inspects tokens following a number for a temperature-style
// unit: "º C", "ºC", bare "C"/"F", "degrees [celsius|fahrenheit]".
// It returns the normalised unit and how many tokens it consumed.
func unitAfter(toks []nlp.Token, i int) (string, int) {
	j := i + 1
	consumed := 0
	// Optional degree marker.
	if j < len(toks) && (toks[j].Text == "º" || toks[j].Text == "°") {
		j++
		consumed++
		if j < len(toks) {
			switch strings.ToUpper(toks[j].Text) {
			case "C":
				return "C", consumed + 1
			case "F":
				return "F", consumed + 1
			}
		}
		// A bare degree marker defaults to Celsius usage in our corpus.
		return "C", consumed
	}
	if j < len(toks) {
		switch strings.ToUpper(toks[j].Text) {
		case "C", "ºC", "°C":
			return "C", 1
		case "F", "ºF", "°F":
			return "F", 1
		}
		if toks[j].Lemma == "degree" {
			if j+1 < len(toks) {
				switch toks[j+1].Lemma {
				case "celsius", "centigrade":
					return "C", 2
				case "fahrenheit":
					return "F", 2
				case "kelvin":
					return "K", 2
				}
			}
			return "C", 1
		}
	}
	return "", 0
}

// unitBefore handles table-aware layouts where the unit precedes the
// value ("High (ºC) 8"): it scans a short backward window for a degree
// marker followed by the scale letter.
func unitBefore(toks []nlp.Token, i int) string {
	lo := i - 5
	if lo < 0 {
		lo = 0
	}
	for j := i - 1; j >= lo; j-- {
		if toks[j].Text == "º" || toks[j].Text == "°" {
			if j+1 < i {
				switch strings.ToUpper(toks[j+1].Text) {
				case "C":
					return "C"
				case "F":
					return "F"
				}
			}
			return "C"
		}
	}
	return ""
}

// highLowContext scans a backward window before a value token for column
// labels or cue words distinguishing daily highs from lows.
func highLowContext(toks []nlp.Token, i int) (isHigh, isLow bool) {
	lo := i - 6
	if lo < 0 {
		lo = 0
	}
	for _, t := range toks[lo:i] {
		switch t.Lemma {
		case "high", "maximum", "max", "temperature":
			isHigh = true
		case "low", "minimum", "min":
			isLow = true
		}
	}
	return
}

// extractMeasures implements the tuned temperature answer pattern: a
// number followed by a recognised scale, validated against the ontology
// axioms, associated with the nearest date and location.
func (s *System) extractMeasures(a *Analysis, p ir.Passage, rankBonus float64) []Answer {
	var out []Answer
	var lastDate sbparser.DateRef
	passageLoc := s.passageLocation(p)
	if passageLoc == "" {
		// Table pages mention their city only near the top: fall back to
		// the document's leading sentences (title and header).
		passageLoc = s.documentLocation(p.DocIndex)
	}
	for idx := range p.Sentences {
		info := s.sentInfo(p, idx)
		blocks := info.blocks
		sentDate := lastDate
		if len(info.dates) > 0 {
			sentDate = info.dates[0]
			lastDate = info.dates[0]
		}
		sentLoc := info.loc
		if sentLoc == "" {
			sentLoc = passageLoc
		}
		toks := p.Sentences[idx].Tokens
		for i, t := range toks {
			if t.Tag != nlp.TagCD {
				continue
			}
			val, err := strconv.ParseFloat(strings.ReplaceAll(t.Text, ",", "."), 64)
			if err != nil {
				continue
			}
			// Reattach a leading minus sign ("Temperature -4º C") unless
			// the minus separates two numbers ("2004-01", "5-7").
			if i > 0 && (toks[i-1].Text == "-" || toks[i-1].Text == "−") &&
				(i < 2 || toks[i-2].Tag != nlp.TagCD) {
				val = -val
			}
			unit, _ := unitAfter(toks, i)
			// An explicit degree marker ("8º C") marks the primary reading
			// of a weather line; the paper's Table 1 extracts that one,
			// not the converted Fahrenheit echo.
			marker := i+1 < len(toks) && (toks[i+1].Text == "º" || toks[i+1].Text == "°")
			if unit == "" {
				if unit = unitBefore(toks, i); unit != "" {
					marker = true
				}
			}
			if unit == "K" {
				continue // kelvin figures are astronomy noise, not weather
			}
			// Years and day-of-month numbers inside a date NP are not
			// temperatures.
			if val >= 1500 && val <= 2200 {
				continue
			}
			if insideDateNP(blocks, t) {
				continue
			}
			cand := Answer{
				Category: a.Category,
				Value:    val,
				HasValue: true,
				Unit:     unit,
				Date:     sentDate,
				Location: sentLoc,
				URL:      p.DocURL,
				Sentence: info.text,
				Score:    rankBonus,
			}
			// Scoring per the tuned answer pattern.
			if unit != "" {
				cand.Score += 2
				if marker {
					cand.Score += 0.5
				}
				if matchesExpectedUnit(a, unit) {
					cand.Score += 1
				}
			} else {
				cand.Score -= 1.5
			}
			if s.valueInRange(val, unit) {
				cand.Score += 1.5
			} else {
				cand.Score -= 3
			}
			if len(a.Dates) > 0 {
				switch {
				case !cand.Date.IsZero() && dateMatches(a.Dates, cand.Date):
					cand.Score += 3
				case !cand.Date.IsZero():
					// The candidate's date is known and contradicts the
					// question: decisive rejection (a February reading
					// never answers a January question).
					cand.Score -= 4
				default:
					cand.Score -= 2
				}
			}
			if len(a.Locations) > 0 {
				if cand.Location != "" && locationMatches(a.Locations, cand.Location) {
					cand.Score += 3
				} else {
					cand.Score -= 1
				}
			}
			isHigh, isLow := highLowContext(toks, i)
			if isHigh {
				cand.Score += 1
			}
			if isLow {
				cand.Score -= 1
			}
			cand.Text = renderTemp(val, unit)
			out = append(out, cand)
		}
	}
	return out
}

// insideDateNP reports whether the token sits inside an NP classified as a
// date (so "31" in "January 31, 2004" is not a temperature candidate).
func insideDateNP(blocks []sbparser.Block, tok nlp.Token) bool {
	var check func(b sbparser.Block) bool
	check = func(b sbparser.Block) bool {
		if b.Type == sbparser.NP && (b.Sub == sbparser.SubDate || b.Sub == sbparser.SubDay) {
			for _, t := range b.Tokens {
				if t.Start == tok.Start {
					return true
				}
			}
		}
		for _, c := range b.Children {
			if check(c) {
				return true
			}
		}
		return false
	}
	for _, b := range blocks {
		if check(b) {
			return true
		}
	}
	return false
}

func renderTemp(val float64, unit string) string {
	v := strconv.FormatFloat(val, 'f', -1, 64)
	switch unit {
	case "C":
		return v + "ºC"
	case "F":
		return v + "F"
	default:
		return v
	}
}

func matchesExpectedUnit(a *Analysis, unit string) bool {
	if len(a.ExpectedUnits) == 0 {
		return true
	}
	for _, u := range a.ExpectedUnits {
		u = strings.ToUpper(strings.TrimPrefix(strings.TrimPrefix(u, "º"), "°"))
		if u == unit || strings.EqualFold(u, unitName(unit)) {
			return true
		}
	}
	return false
}

func unitName(unit string) string {
	switch unit {
	case "C":
		return "celsius"
	case "F":
		return "fahrenheit"
	}
	return unit
}

// valueInRange validates a temperature against the ontology range axiom,
// falling back to a physical plausibility window without one.
func (s *System) valueInRange(val float64, unit string) bool {
	if s.dom != nil && s.cfg.UseOntology {
		u := unit
		if u == "" {
			u = "C"
		}
		ok, err := s.dom.InRange("Temperature", val, u)
		if err == nil {
			return ok
		}
	}
	c := val
	if unit == "F" {
		c = (val - 32) / 1.8
	}
	return c >= -90 && c <= 60
}

func dateMatches(queryDates []sbparser.DateRef, d sbparser.DateRef) bool {
	for _, q := range queryDates {
		if q.Covers(d) {
			return true
		}
	}
	return false
}

func locationMatches(queryLocs []string, loc string) bool {
	for _, q := range queryLocs {
		if strings.EqualFold(q, loc) {
			return true
		}
	}
	return false
}

// sentenceLocation finds the first city-denoting entity in a sentence
// using the (possibly enriched) lexicon, trying multi-word spans first.
func (s *System) sentenceLocation(sent nlp.Sentence) string {
	wn := s.lexicon()
	toks := sent.Tokens
	for i := 0; i < len(toks); i++ {
		if toks[i].Tag != nlp.TagNP {
			continue
		}
		for span := min(3, len(toks)-i); span >= 1; span-- {
			var parts []string
			ok := true
			for _, t := range toks[i : i+span] {
				if t.Tag != nlp.TagNP {
					ok = false
					break
				}
				parts = append(parts, strings.ToLower(t.Text))
			}
			if !ok {
				continue
			}
			name := strings.Join(parts, " ")
			for _, sense := range wn.Lookup(name, wordnet.Noun) {
				if wn.IsA(sense.ID, "n.city") {
					return titleCase(sense.CanonicalLemma())
				}
			}
		}
	}
	return ""
}

// sentInfo returns the memoized question-independent derivations for the
// i-th sentence of a passage window: (DocIndex, SentStart+i) identifies
// the sentence globally. The shallow parse, date extraction, text render
// and the WordNet hypernym walks for the city lookup dominated the cold
// path when recomputed per question; here each corpus sentence pays them
// once, whichever question touches it first.
func (s *System) sentInfo(p ir.Passage, i int) *sentInfo {
	key := [2]int{p.DocIndex, p.SentStart + i}
	s.sentMu.Lock()
	si, ok := s.sentMemo[key]
	if !ok {
		if s.sentMemo == nil {
			s.sentMemo = make(map[[2]int]*sentInfo)
		}
		si = &sentInfo{}
		s.sentMemo[key] = si
	}
	s.sentMu.Unlock()
	si.once.Do(func() {
		sent := p.Sentences[i]
		si.text = sent.Text()
		si.blocks = sbparser.Parse(sent)
		si.dates = sbparser.ExtractDates(si.blocks)
		si.lemmas = sent.ContentLemmas()
		si.loc = s.sentenceLocation(sent)
	})
	return si
}

// passageLocation returns the first city mentioned anywhere in a passage.
func (s *System) passageLocation(p ir.Passage) string {
	for i := range p.Sentences {
		if loc := s.sentInfo(p, i).loc; loc != "" {
			return loc
		}
	}
	return ""
}

// documentLocation returns the first city mentioned in the leading
// sentences of a document (its title and header region), cached per
// document index.
func (s *System) documentLocation(docIndex int) string {
	s.docLocMu.Lock()
	if loc, ok := s.docLoc[docIndex]; ok {
		s.docLocMu.Unlock()
		return loc
	}
	s.docLocMu.Unlock()

	loc := ""
	if doc, err := s.index.Document(docIndex); err == nil {
		head := doc.Text
		if len(head) > 400 {
			head = head[:400]
		}
		for _, sent := range nlp.SplitSentences(head) {
			if l := s.sentenceLocation(sent); l != "" {
				loc = l
				break
			}
		}
	}
	s.docLocMu.Lock()
	if s.docLoc == nil {
		s.docLoc = make(map[int]string)
	}
	s.docLoc[docIndex] = loc
	s.docLocMu.Unlock()
	return loc
}

// extractTyped implements the hyponym-constrained proper-noun answer
// pattern: "a proper noun is required in the answer, with a semantic
// preference to the hyponyms of 'country' in WordNet" (and analogously
// for city, person, group, or the focus head itself for object).
func (s *System) extractTyped(a *Analysis, p ir.Passage, rankBonus float64) []Answer {
	constraint := a.Category.placeConstraint()
	switch a.Category {
	case CatPerson:
		constraint = "person"
	case CatProfession:
		constraint = "occupation"
	case CatGroup:
		constraint = "group"
	case CatEvent:
		constraint = "event"
	case CatObject:
		if a.FocusHead != "" {
			constraint = a.FocusHead
		} else {
			constraint = "entity"
		}
	}
	questionTerms := a.termSet()
	wn := s.lexicon()
	var out []Answer
	for idx := range p.Sentences {
		info := s.sentInfo(p, idx)
		toks := p.Sentences[idx].Tokens
		overlap := termOverlap(info.lemmas, questionTerms)
		for i := 0; i < len(toks); i++ {
			if toks[i].Tag != nlp.TagNP {
				continue
			}
			for span := min(3, len(toks)-i); span >= 1; span-- {
				ok := true
				var parts []string
				for _, t := range toks[i : i+span] {
					if t.Tag != nlp.TagNP {
						ok = false
						break
					}
					parts = append(parts, strings.ToLower(t.Text))
				}
				if !ok {
					continue
				}
				name := strings.Join(parts, " ")
				if questionTerms[name] {
					continue // the question entity is not its own answer
				}
				if !wn.LemmaIsA(name, wordnet.Noun, constraint) {
					continue
				}
				cand := Answer{
					Category: a.Category,
					Text:     titleCase(name),
					URL:      p.DocURL,
					Sentence: info.text,
					Score:    rankBonus + 1 + float64(overlap),
				}
				out = append(out, cand)
				i += span - 1
				break
			}
		}
	}
	return out
}

func termOverlap(lemmas []string, questionTerms map[string]bool) int {
	n := 0
	for _, l := range lemmas {
		if questionTerms[l] {
			n++
		}
	}
	return n
}

// extractTemporal answers when-style questions with the dates of the
// best-overlapping sentences.
func (s *System) extractTemporal(a *Analysis, p ir.Passage, rankBonus float64) []Answer {
	questionTerms := a.termSet()
	var out []Answer
	for idx := range p.Sentences {
		info := s.sentInfo(p, idx)
		overlap := termOverlap(info.lemmas, questionTerms)
		if overlap == 0 {
			continue
		}
		for _, d := range info.dates {
			if a.Category == CatTempYear && d.Year == 0 {
				continue
			}
			text := formatDateRef(d)
			if a.Category == CatTempYear {
				text = strconv.Itoa(d.Year)
			}
			out = append(out, Answer{
				Category: a.Category, Text: text, Date: d,
				URL: p.DocURL, Sentence: info.text,
				Score: rankBonus + float64(overlap),
			})
		}
	}
	return out
}

// extractNumeric answers quantity questions with numbers co-occurring
// with the question terms.
func (s *System) extractNumeric(a *Analysis, p ir.Passage, rankBonus float64) []Answer {
	questionTerms := a.termSet()
	var out []Answer
	for idx := range p.Sentences {
		info := s.sentInfo(p, idx)
		overlap := termOverlap(info.lemmas, questionTerms)
		if overlap == 0 {
			continue
		}
		toks := p.Sentences[idx].Tokens
		for i, t := range toks {
			if t.Tag != nlp.TagCD {
				continue
			}
			val, err := strconv.ParseFloat(strings.ReplaceAll(t.Text, ",", "."), 64)
			if err != nil {
				continue
			}
			isPercent := i+1 < len(toks) && (toks[i+1].Text == "%" || toks[i+1].Lemma == "percent" || toks[i+1].Lemma == "percentage")
			if a.Category == CatNumPercent && !isPercent {
				continue
			}
			text := t.Text
			if isPercent {
				text += "%"
			}
			score := rankBonus + float64(overlap)
			// Year-like numbers are usually dates, not quantities: "La
			// Guardia served 3 terms between 1934 and 1945" must answer 3.
			if val >= 1500 && val <= 2200 && val == float64(int(val)) {
				score -= 0.5
			}
			out = append(out, Answer{
				Category: a.Category, Text: text, Value: val, HasValue: true,
				URL: p.DocURL, Sentence: info.text,
				Score: score,
			})
		}
	}
	return out
}

// extractDefinition answers definition questions with the predicate of a
// copular sentence about the entity ("Sirius is the brightest star...").
func (s *System) extractDefinition(a *Analysis, p ir.Passage, rankBonus float64) []Answer {
	questionTerms := a.termSet()
	var out []Answer
	for idx := range p.Sentences {
		info := s.sentInfo(p, idx)
		overlap := termOverlap(info.lemmas, questionTerms)
		if overlap == 0 {
			continue
		}
		toks := p.Sentences[idx].Tokens
		for i, t := range toks {
			if t.Lemma == "be" && t.Tag.IsVerb() && i+1 < len(toks) && i > 0 {
				var rest []string
				for _, rt := range toks[i+1:] {
					if rt.Tag == nlp.TagSENT {
						break
					}
					rest = append(rest, rt.Text)
				}
				if len(rest) < 2 {
					continue
				}
				out = append(out, Answer{
					Category: CatDefinition,
					Text:     strings.Join(rest, " "),
					URL:      p.DocURL, Sentence: info.text,
					Score: rankBonus + float64(overlap),
				})
				break
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
