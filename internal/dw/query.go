package dw

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Agg is an aggregation function applied to a measure.
type Agg string

// Supported aggregation functions.
const (
	Sum   Agg = "sum"
	Count Agg = "count"
	Avg   Agg = "avg"
	Min   Agg = "min"
	Max   Agg = "max"
)

// LevelSel selects the aggregation level for one role of the fact: "group
// the Destination role at the City level". Rolling up means selecting a
// coarser level; drilling down a finer one.
type LevelSel struct {
	Role  string
	Level string
}

// Filter keeps fact rows whose member (for Role, at Level) is in Values —
// the OLAP slice (single value) and dice (several values) operations.
type Filter struct {
	Role   string
	Level  string
	Values []string
}

// Query is an OLAP query over one fact table.
type Query struct {
	Fact    string
	Measure string
	Agg     Agg
	GroupBy []LevelSel
	Filters []Filter
}

// Row is one result row: the group member names (in GroupBy order), the
// aggregated value and the number of fact rows aggregated.
type Row struct {
	Groups []string
	Value  float64
	Count  int
}

// Result is a deterministic (sorted) result set.
type Result struct {
	Query Query
	Rows  []Row
}

// validateLocked checks a query against the schema and resolves the fact
// table and the dimension of every referenced role. Both the compiled
// engine and the reference engine share it. Callers must hold w.mu.
func (w *Warehouse) validateLocked(q Query) (*factData, map[string]string, error) {
	fd, ok := w.facts[q.Fact]
	if !ok {
		return nil, nil, fmt.Errorf("dw: unknown fact %q", q.Fact)
	}
	if q.Agg == Count {
		// Count needs no measure, but naming a nonexistent one is a query
		// bug that would otherwise be silently accepted.
		if q.Measure != "" && fd.class.Measure(q.Measure) == nil {
			return nil, nil, fmt.Errorf("dw: fact %q has no measure %q", q.Fact, q.Measure)
		}
	} else if fd.class.Measure(q.Measure) == nil {
		return nil, nil, fmt.Errorf("dw: fact %q has no measure %q", q.Fact, q.Measure)
	}
	switch q.Agg {
	case Sum, Count, Avg, Min, Max:
	default:
		return nil, nil, fmt.Errorf("dw: unknown aggregation %q", q.Agg)
	}
	roleDim := map[string]string{}
	for _, ref := range fd.class.Dimensions {
		roleDim[ref.Role] = ref.Dimension
	}
	// Grouping one role at two different levels is a legitimate drill
	// presentation; only an exact (role, level) repeat is a redundant
	// column and almost certainly a query bug.
	seenGroups := map[LevelSel]bool{}
	for _, g := range q.GroupBy {
		if seenGroups[g] {
			return nil, nil, fmt.Errorf("dw: duplicate group-by %s at level %s", g.Role, g.Level)
		}
		seenGroups[g] = true
		if err := w.checkRoleLevelLocked(roleDim, g.Role, g.Level, q.Fact); err != nil {
			return nil, nil, err
		}
	}
	for _, f := range q.Filters {
		if err := w.checkRoleLevelLocked(roleDim, f.Role, f.Level, q.Fact); err != nil {
			return nil, nil, err
		}
	}
	return fd, roleDim, nil
}

// Validate checks a query against the schema without executing it: the
// fact, measure, aggregation, every group-by and filter (role, level)
// pair and exact duplicate group-by columns are verified exactly as
// Execute would. Query front-ends (the NL→OLAP translator) use it to
// guarantee they never emit a plan Execute would reject.
func (w *Warehouse) Validate(q Query) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, _, err := w.validateLocked(q)
	return err
}

// Execute runs an OLAP query against the warehouse using the compiled
// columnar engine: roles, levels and filters are resolved once into a plan
// whose scan is pure array indexing over the fact columns, parallelised
// across row chunks (see plan.go).
func (w *Warehouse) Execute(q Query) (*Result, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	fd, roleDim, err := w.validateLocked(q)
	if err != nil {
		return nil, err
	}
	p := w.compilePlanLocked(q, fd, roleDim)
	if p.overflow {
		// The composite group-key space exceeds uint64; integer keys would
		// wrap and merge distinct groups. Pathological (the product of the
		// grouped level cardinalities must top 2^64) but not impossible,
		// so take the string-keyed reference scan instead of answering
		// wrong.
		return w.referenceScanLocked(q, fd, roleDim), nil
	}
	return p.materialize(p.run()), nil
}

// ExecuteReference runs the same query with the retained row-at-a-time
// engine: per-row roll-up walks, string group keys, map accumulators. It is
// the correctness oracle for the compiled engine (the equivalence tests
// assert byte-identical formatted output) and the baseline the scaling
// benchmarks measure against.
func (w *Warehouse) ExecuteReference(q Query) (*Result, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	fd, roleDim, err := w.validateLocked(q)
	if err != nil {
		return nil, err
	}
	return w.referenceScanLocked(q, fd, roleDim), nil
}

// referenceScanLocked is the row-at-a-time scan shared by
// ExecuteReference and Execute's key-space-overflow fallback. Callers must
// hold w.mu and have validated the query.
func (w *Warehouse) referenceScanLocked(q Query, fd *factData, roleDim map[string]string) *Result {
	cells := w.referenceCellsLocked(q, fd, roleDim)
	res := &Result{Query: q}
	for i := range cells {
		c := &cells[i]
		res.Rows = append(res.Rows, Row{Groups: c.Groups, Value: finalValue(q.Agg, c), Count: c.Count})
	}
	return res
}

// referenceCellsLocked is referenceScanLocked minus the final aggregation:
// the raw per-group cells, sorted by NUL-joined group names. It backs both
// the single-warehouse reference result and ExecuteCells' overflow path.
func (w *Warehouse) referenceCellsLocked(q Query, fd *factData, roleDim map[string]string) []CellRow {
	type compiledFilter struct {
		role, level string
		allowed     map[int]bool
	}
	var filters []compiledFilter
	for _, f := range q.Filters {
		allowed := make(map[int]bool, len(f.Values))
		lt := w.dims[roleDim[f.Role]].levels[f.Level]
		for _, v := range f.Values {
			key, ok := lt.byName[v]
			if !ok {
				// A filter value that matches no member simply matches no
				// rows; this is not an error (slicing on "Oz" is empty).
				continue
			}
			allowed[key] = true
		}
		filters = append(filters, compiledFilter{f.Role, f.Level, allowed})
	}

	type cell struct {
		groups []string
		sum    float64
		count  int
		min    float64
		max    float64
	}
	cells := map[string]*cell{}
	measure := fd.measureColumn(q.Measure)

rows:
	for r := 0; r < fd.rows; r++ {
		for _, f := range filters {
			key := w.rollUpKeyLocked(roleDim[f.role], int(fd.roleColumn(f.role)[r]), f.level)
			if key == NoParent || !f.allowed[key] {
				continue rows
			}
		}
		groups := make([]string, len(q.GroupBy))
		for i, g := range q.GroupBy {
			key := w.rollUpKeyLocked(roleDim[g.Role], int(fd.roleColumn(g.Role)[r]), g.Level)
			if key == NoParent {
				groups[i] = "(unknown)"
			} else {
				groups[i] = w.memberNameLocked(roleDim[g.Role], g.Level, key)
			}
		}
		ck := strings.Join(groups, "\x00")
		c, ok := cells[ck]
		if !ok {
			c = &cell{groups: groups, min: math.Inf(1), max: math.Inf(-1)}
			cells[ck] = c
		}
		var v float64
		if measure != nil {
			v = measure[r]
		}
		c.sum += v
		c.count++
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}

	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]CellRow, 0, len(keys))
	for _, k := range keys {
		c := cells[k]
		out = append(out, CellRow{Groups: c.groups, Sum: c.sum, Count: c.count, Min: c.min, Max: c.max})
	}
	return out
}

func (w *Warehouse) checkRoleLevelLocked(roleDim map[string]string, role, level, fact string) error {
	dim, ok := roleDim[role]
	if !ok {
		return fmt.Errorf("dw: fact %q has no role %q", fact, role)
	}
	if w.dims[dim].class.PathTo(level) == nil {
		return fmt.Errorf("dw: level %q is not on the roll-up path of dimension %q", level, dim)
	}
	return nil
}

// RollUp re-runs a query with one role moved to a coarser level.
func (w *Warehouse) RollUp(q Query, role, toLevel string) (*Result, error) {
	return w.Execute(retarget(q, role, toLevel))
}

// DrillDown re-runs a query with one role moved to a finer level. The
// mechanics are the same as RollUp; the direction is the caller's intent
// ("drilling down to obtain those documents published in July 1998").
func (w *Warehouse) DrillDown(q Query, role, toLevel string) (*Result, error) {
	return w.Execute(retarget(q, role, toLevel))
}

// Slice adds a single-value filter to a query and runs it.
func (w *Warehouse) Slice(q Query, role, level, value string) (*Result, error) {
	q.Filters = append(append([]Filter(nil), q.Filters...), Filter{role, level, []string{value}})
	return w.Execute(q)
}

// Dice adds a multi-value filter to a query and runs it.
func (w *Warehouse) Dice(q Query, role, level string, values []string) (*Result, error) {
	q.Filters = append(append([]Filter(nil), q.Filters...), Filter{role, level, values})
	return w.Execute(q)
}

func retarget(q Query, role, toLevel string) Query {
	// Rewriting every entry of the role can collapse a two-level drill
	// presentation onto one level; dedup so the result stays valid.
	gb := make([]LevelSel, 0, len(q.GroupBy))
	seen := map[LevelSel]bool{}
	replaced := false
	for _, g := range q.GroupBy {
		if g.Role == role {
			g.Level = toLevel
			replaced = true
		}
		if seen[g] {
			continue
		}
		seen[g] = true
		gb = append(gb, g)
	}
	if !replaced {
		gb = append(gb, LevelSel{role, toLevel})
	}
	q.GroupBy = gb
	return q
}

// Format renders the result as an aligned text table (used by the OLAP CLI
// and the experiment reports).
func (r *Result) Format() string {
	var b strings.Builder
	header := make([]string, 0, len(r.Query.GroupBy)+1)
	for _, g := range r.Query.GroupBy {
		header = append(header, g.Role+"/"+g.Level)
	}
	header = append(header, fmt.Sprintf("%s(%s)", r.Query.Agg, r.Query.Measure))
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	cellsOf := func(row Row) []string {
		cells := append([]string(nil), row.Groups...)
		return append(cells, fmt.Sprintf("%.2f", row.Value))
	}
	for _, row := range r.Rows {
		for i, c := range cellsOf(row) {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range r.Rows {
		writeRow(cellsOf(row))
	}
	return b.String()
}
