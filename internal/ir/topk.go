package ir

import "sort"

// topK is a bounded min-heap over (id, score) pairs that keeps the k best
// candidates seen, replacing the full sort of every scored id. Ordering is
// the ranking contract of Search: higher score first, ties broken by lower
// id — so the heap root is the *worst* kept candidate (lowest score,
// highest id among equals).
type topK struct {
	k      int
	ids    []int32
	scores []float64
}

func newTopK(k int) *topK {
	return &topK{k: k, ids: make([]int32, 0, k), scores: make([]float64, 0, k)}
}

// worse reports whether entry i ranks below entry j.
func (h *topK) worse(i, j int) bool {
	if h.scores[i] != h.scores[j] {
		return h.scores[i] < h.scores[j]
	}
	return h.ids[i] > h.ids[j]
}

func (h *topK) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
}

func (h *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.ids)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.worse(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

// offer considers a candidate, keeping it only if it ranks within the k
// best seen so far.
func (h *topK) offer(id int32, score float64) {
	if len(h.ids) < h.k {
		h.ids = append(h.ids, id)
		h.scores = append(h.scores, score)
		h.siftUp(len(h.ids) - 1)
		return
	}
	// Better than the current worst? The root loses its seat.
	if score < h.scores[0] || (score == h.scores[0] && id > h.ids[0]) {
		return
	}
	h.ids[0], h.scores[0] = id, score
	h.siftDown(0)
}

// ranked returns the kept ids best-first (score descending, id ascending).
func (h *topK) ranked() []int32 {
	order := make([]int, len(h.ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return h.worse(order[b], order[a]) })
	out := make([]int32, len(order))
	for i, idx := range order {
		out[i] = h.ids[idx]
	}
	return out
}

// selectTopK scans a dense score accumulator (index = id, zero = unscored)
// and returns the ids of the k best scores, ranked. k is clamped to the
// candidate count so a "return everything" request cannot reserve O(k)
// memory up front.
func selectTopK(scores []float64, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	h := newTopK(k)
	for id, s := range scores {
		if s > 0 {
			h.offer(int32(id), s)
		}
	}
	return h.ranked()
}
