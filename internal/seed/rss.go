package seed

import (
	"bytes"
	"os"
	"strconv"
)

// ProcessRSS returns the process's current resident set size in bytes,
// and ProcessPeakRSS its lifetime peak — read from /proc/self/status
// (VmRSS / VmHWM). Both return 0 where procfs is unavailable; callers
// treat 0 as "unknown", never as a measurement. RSS is the footprint
// number the memory benchmarks record: unlike heap stats it includes
// runtime overhead, stacks and the allocator's retained-but-free spans,
// so it is what an operator actually provisions for.
func ProcessRSS() uint64 { return procStatusKB("VmRSS:") << 10 }

// ProcessPeakRSS returns the peak resident set size in bytes (VmHWM).
func ProcessPeakRSS() uint64 { return procStatusKB("VmHWM:") << 10 }

// procStatusKB extracts one "<key>   <n> kB" line from /proc/self/status.
func procStatusKB(key string) uint64 {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(buf, []byte{'\n'}) {
		rest, ok := bytes.CutPrefix(line, []byte(key))
		if !ok {
			continue
		}
		rest = bytes.TrimSuffix(bytes.TrimSpace(rest), []byte(" kB"))
		n, err := strconv.ParseUint(string(bytes.TrimSpace(rest)), 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	return 0
}
