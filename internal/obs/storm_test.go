package obs

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegistryStorm hammers one registry from concurrent writers shaped
// like the serving stack's traffic — ask-style span finishes, feed-style
// counter bursts, snapshot-style gauge swings — while scrapers render
// the exposition, all under -race. Invariants checked during and after:
// counters are monotone across samples, and every histogram's count
// equals the sum of its buckets once writers stop.
func TestRegistryStorm(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	tr.SetSlowQuery(time.Nanosecond, func(string, ...any) {}) // exercise the sampled slow path too

	hits := reg.Counter("dwqa_cache_hits_total", "")
	shed := reg.Counter("dwqa_shed_total", "")
	walSeq := reg.Gauge("dwqa_wal_seq", "")
	queueWait := reg.Histogram("dwqa_gate_queue_wait_seconds", "", nil)
	reg.GaugeFunc("dwqa_inflight", "", func() float64 { return 1 })

	const (
		writers = 8
		iters   = 2_000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Ask-style writers: spans + counters + histogram observes.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var sp Span
				sp.Observe(StageCacheLookup, time.Duration(seed+i)*time.Microsecond)
				sp.Observe(StageNLPAnalyse, time.Millisecond)
				sp.Observe(StageIRSearch, time.Duration(i%7)*time.Millisecond)
				sp.Observe(StageQAExtract, time.Duration(i)*time.Nanosecond)
				tr.Finish(&sp, time.Duration(i)*time.Microsecond, "storm", "ok")
				hits.Inc()
				queueWait.Observe(time.Duration(i % 5000 * int(time.Microsecond)))
			}
		}(w)
	}
	// Feed-style writer: counter bursts + gauge swings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			shed.Add(3)
			walSeq.Set(int64(i))
		}
	}()
	// Scrapers: render the exposition concurrently and check counter
	// monotonicity across samples.
	var lastHits, lastShed uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := reg.WriteTo(io.Discard); err != nil {
				t.Errorf("WriteTo: %v", err)
				return
			}
			h, s := hits.Value(), shed.Value()
			if h < lastHits || s < lastShed {
				t.Errorf("counter went backwards: hits %d→%d, shed %d→%d", lastHits, h, lastShed, s)
				return
			}
			lastHits, lastShed = h, s
		}
	}()

	// Wait for the writers, then release the scraper.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for hits.Value() < uint64(writers*iters) {
			time.Sleep(time.Millisecond)
		}
	}()
	<-writersDone
	stop.Store(true)
	<-done

	if got := hits.Value(); got != writers*iters {
		t.Fatalf("hits = %d, want %d", got, writers*iters)
	}
	if got := shed.Value(); got != 3*iters {
		t.Fatalf("shed = %d, want %d", got, 3*iters)
	}

	// Histogram invariant: count == sum of buckets, for the direct
	// histogram and for every stage histogram the tracer fed.
	checkHistogram := func(name string, h *Histogram) {
		t.Helper()
		var sum uint64
		for _, b := range h.BucketCounts() {
			sum += b
		}
		if h.Count() != sum {
			t.Fatalf("%s: count %d != bucket sum %d", name, h.Count(), sum)
		}
	}
	checkHistogram("queue_wait", queueWait)
	for st := Stage(0); st < NumStages; st++ {
		checkHistogram(st.String(), tr.StageHistogram(st))
	}
	if got := tr.StageHistogram(StageIRSearch).Count(); got != writers*iters {
		t.Fatalf("ir_search observations = %d, want %d", got, writers*iters)
	}
	if got := tr.StageHistogram(StageWALAppend).Count(); got != 0 {
		t.Fatalf("unstamped stage observed %d times", got)
	}

	// The final exposition renders the settled totals.
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dwqa_cache_hits_total 16000") {
		t.Fatalf("exposition missing settled counter:\n%s", sb.String())
	}
}
