package dw

import (
	"sort"
	"strings"
)

// Scatter/gather execution: a sharded warehouse partitions fact rows
// across N member-identical warehouses, runs the same plan on each, and
// re-aggregates the per-shard partials. The unit shipped between shards
// is the CellRow — one group's raw aggregates before the final Agg is
// applied — because sums, counts, minima and maxima compose across
// partitions while averages do not. MergeCells folds the partials in
// shard order and finalises exactly like the single-warehouse engines
// (name-sorted rows, Agg applied last), so the gathered Result is
// answer-identical to executing the query on one warehouse holding
// every row.

// CellRow is one group's raw aggregate state: the partial a shard ships
// to the scatter/gather coordinator. Count is always ≥ 1 (untouched
// groups are never emitted).
type CellRow struct {
	Groups []string
	Sum    float64
	Count  int
	Min    float64
	Max    float64
}

// merge folds another partial of the same group in (same semantics as
// planCell.merge).
func (c *CellRow) merge(o CellRow) {
	c.Sum += o.Sum
	c.Count += o.Count
	if o.Min < c.Min {
		c.Min = o.Min
	}
	if o.Max > c.Max {
		c.Max = o.Max
	}
}

// ExecuteCells runs a query like Execute but stops before the final
// aggregation: it returns the per-group raw aggregates, sorted by group
// names and coalesced (one cell per distinct name tuple) — the shard
// half of scatter/gather. Execute is exactly ExecuteCells + the
// finalisation MergeCells performs over a single partial.
func (w *Warehouse) ExecuteCells(q Query) ([]CellRow, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	fd, roleDim, err := w.validateLocked(q)
	if err != nil {
		return nil, err
	}
	p := w.compilePlanLocked(q, fd, roleDim)
	if p.overflow {
		return w.referenceCellsLocked(q, fd, roleDim), nil
	}
	return p.materializeCells(p.run()), nil
}

// MergeCells gathers per-shard partials into the final Result: cells
// with identical group names are folded in shard order (so the float
// association order is deterministic for a fixed shard layout), rows
// are sorted by their NUL-joined names — the order every execution
// engine in this package produces — and the query's Agg is applied
// last, which is what makes Avg correct across partitions.
func MergeCells(q Query, parts [][]CellRow) *Result {
	merged := map[string]*CellRow{}
	for _, cells := range parts {
		for _, c := range cells {
			if c.Count == 0 {
				continue
			}
			ck := strings.Join(c.Groups, "\x00")
			if m, ok := merged[ck]; ok {
				m.merge(c)
			} else {
				cc := c
				merged[ck] = &cc
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res := &Result{Query: q}
	for _, k := range keys {
		c := merged[k]
		res.Rows = append(res.Rows, Row{Groups: c.Groups, Value: finalValue(q.Agg, c), Count: c.Count})
	}
	return res
}

// finalValue applies the query aggregation to a completed cell.
func finalValue(agg Agg, c *CellRow) float64 {
	switch agg {
	case Sum:
		return c.Sum
	case Count:
		return float64(c.Count)
	case Avg:
		return c.Sum / float64(c.Count)
	case Min:
		return c.Min
	case Max:
		return c.Max
	}
	return 0
}
