// Command seeder streams large corpora into a durable dwqa data
// directory: generated scaled-corpus pages (the benchmark grid) or a
// JSONL corpus file, committed in bounded batches through the same WAL
// paths the serving engine feeds use, with checkpoint/resume — a killed
// run restarted with the same flags picks up where it left off and
// converges to the state an uninterrupted run would have produced.
//
// Examples:
//
//	seeder -data ./data -passages 1000000            # ingest ≥1M passages
//	seeder -data ./data -jsonl corpus.jsonl          # ingest a JSONL corpus
//	seeder -data ./data -passages 1000000 -batch 128 # bigger commit batches
//
// Long runs retain a large, growing live heap (the index), so the
// default GOGC=100 re-marks the whole live set every heap doubling and
// ingest throughput decays with corpus size (roughly 620 pages/s early
// falling to ~200 pages/s near 1M passages on one core). -gcpercent
// raises the GC target (e.g. -gcpercent 300) to trade peak RSS for a
// flatter rate curve; the per-batch progress line reports live heap and
// RSS so the trade is visible while it runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dwqa/internal/seed"
)

func main() {
	log.SetFlags(0)
	var (
		dataDir  = flag.String("data", "", "durable data directory (required)")
		passages = flag.Int("passages", 0, "target passage count (generated mode)")
		maxPages = flag.Int("pages", 0, "cap on pages ingested this run (0 = no cap)")
		batch    = flag.Int("batch", seed.DefaultBatchPages, "pages per commit batch")
		snapshot = flag.Int("snapshot-every", seed.DefaultSnapshotEvery, "batches between snapshots (<0 = final only)")
		seedVal  = flag.Int64("seed", 42, "generated-corpus seed")
		jsonl    = flag.String("jsonl", "", "ingest this JSONL corpus instead of the generated grid")
		progress = flag.Int("progress-every", 16, "batches between progress lines")
		gcpct    = flag.Int("gcpercent", 0, "GC target percentage for the run (0 = runtime default); raising it trades RSS for steadier throughput on large corpora")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "seeder: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := seed.Config{
		DataDir:       *dataDir,
		Passages:      *passages,
		MaxPages:      *maxPages,
		BatchPages:    *batch,
		SnapshotEvery: *snapshot,
		Seed:          *seedVal,
		JSONL:         *jsonl,
		ProgressEvery: *progress,
		GCPercent:     *gcpct,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	sum, err := seed.Run(cfg)
	if err != nil {
		log.Fatalf("seeder: %v", err)
	}
	resumed := "fresh"
	if sum.Resumed {
		resumed = fmt.Sprintf("resumed at page %d", sum.StartPages)
	}
	fmt.Printf("seeder: %s; %d pages ingested (%d docs, %d rows, %d deduped); index %d docs / %d passages; wal seq %d; %v\n",
		resumed, sum.PagesSeen, sum.DocsAdded, sum.Loaded, sum.Skipped,
		sum.Documents, sum.Passages, sum.WALSeq, sum.Elapsed.Round(1e6))
	// Machine-readable trailer for scripts driving ingestion runs.
	if buf, err := json.Marshal(sum); err == nil {
		fmt.Printf("seeder-summary %s\n", buf)
	}
}
