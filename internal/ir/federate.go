package ir

import "math"

// Federated retrieval support: a sharded deployment splits the corpus
// across N indexes, but ranking must stay byte-identical to one big
// index. Scores depend on corpus statistics (total passages, per-term
// document frequency), so each shard exposes its local statistics
// (TermStats) for the coordinator to sum, and scores its own postings
// with the globally-derived idf weights (SearchWeighted). Passage
// windows never span documents, so the global statistics are exact sums
// of the per-shard ones and the per-passage score is bitwise identical
// to what the unsharded Search would compute.

// TermStats returns the index's passage count and, per query term, the
// passage-level document frequency (0 for unknown terms) — the inputs a
// federated coordinator sums across shards to derive global idf weights.
func (ix *Index) TermStats(terms []string) (nPass int, df []int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	df = make([]int, len(terms))
	for i, term := range terms {
		if id, ok := ix.terms[term]; ok {
			df[i] = ix.postings[id].count()
		}
	}
	return len(ix.passages), df
}

// GlobalIDF derives the idf weight vector for query terms from summed
// corpus statistics, using the exact expression Search uses locally
// (log(1 + N/df)), so a federated score is bitwise identical to the
// single-index one. Terms absent from the whole corpus get weight 0.
func GlobalIDF(nPass int, df []int) []float64 {
	idf := make([]float64, len(df))
	for i, d := range df {
		if d > 0 {
			idf[i] = math.Log(1 + float64(nPass)/float64(d))
		}
	}
	return idf
}

// SearchWeighted ranks this index's passages like Search but with
// caller-supplied per-term idf weights (the global statistics of a
// sharded corpus). Terms with weight 0 — or absent from this shard —
// contribute nothing, mirroring Search's skip of empty posting lists.
// Results carry the documents' global ordinals, which is what the
// coordinator's cross-shard merge tie-breaks on.
func (ix *Index) SearchWeighted(terms []string, idf []float64, k int) []Passage {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.passages) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	acc := getAcc(len(ix.passages))
	defer putAcc(acc)
	for i, term := range terms {
		if i >= len(idf) || idf[i] == 0 {
			continue
		}
		id, ok := ix.terms[term]
		if !ok {
			continue
		}
		for c := ix.postings[id].cursor(); ; {
			pid, tf, ok := c.next()
			if !ok {
				break
			}
			acc.add(pid, (1+math.Log(float64(tf)))*idf[i])
		}
	}
	ids := acc.rank(k)
	out := make([]Passage, 0, len(ids))
	for _, id := range ids {
		out = append(out, ix.materializeLocked(int(id), acc.scores[id]))
	}
	return out
}
