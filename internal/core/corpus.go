package core

import (
	"fmt"
	"strings"

	"dwqa/internal/ir"
	"dwqa/internal/webcorpus"
)

// scaledCityPool is the deterministic roster of synthetic city names the
// scaled corpus draws from: 200 single-token proper nouns, so each city
// contributes exactly one selective query term and falls back to the
// webcorpus default climate.
var scaledCityPool = func() []string {
	prefixes := []string{
		"Alder", "Birch", "Cedar", "Dun", "Elm", "Fern", "Glen", "Haver",
		"Iron", "Juniper", "Kings", "Lark", "Maple", "North", "Oak", "Pine",
		"Quarry", "Rowan", "Stone", "Thorn",
	}
	suffixes := []string{
		"ford", "vale", "burgh", "bridge", "field", "haven", "mere", "port",
		"stead", "wick",
	}
	out := make([]string, 0, len(prefixes)*len(suffixes))
	for _, s := range suffixes {
		for _, p := range prefixes {
			out = append(out, p+s)
		}
	}
	return out
}()

// ScaledCorpus is a generated web corpus indexed for passage retrieval at
// a target scale — the IR analogue of BuildScaledWarehouse's output. The
// page grid enumerates (year, city, month) so that any prefix of the
// enumeration keeps the month axis fully diverse (every city gets a whole
// year of pages before the next year starts) and the city axis as diverse
// as the page budget allows — the properties that make the cold-path
// query workload selective at every scale.
type ScaledCorpus struct {
	Index  *ir.Index
	Cities []string // cities with at least one page, in enumeration order
	Years  []int    // years with at least one page
	Pages  int
}

// scaledCorpusBaseYear anchors the scaled corpus timeline.
const scaledCorpusBaseYear = 1998

// ScaledPage returns page i of the scaled corpus's deterministic
// (year, city, month) page grid — the same enumeration order
// BuildScaledCorpus walks, exposed positionally so a streaming ingester
// (cmd/seeder) can generate any window of the corpus without holding
// the rest: resuming from a checkpoint is just restarting the counter.
func ScaledPage(i int, seed int64) webcorpus.Page {
	perYear := len(scaledCityPool) * 12
	year := scaledCorpusBaseYear + i/perYear
	city := scaledCityPool[(i%perYear)/12]
	month := i%12 + 1
	return webcorpus.ProsePage(webcorpus.WeatherSeries(city, year, month, seed))
}

// BuildScaledCorpus returns an indexed corpus of at least targetPassages
// passages, mirroring BuildScaledWarehouse: deterministic given the seed,
// grown incrementally until the target is met. Pages are Figure 4 prose
// weather pages (one city-month each) over synthetic cities, so corpus
// statistics — every passage mentions "weather"/"temperature", one in
// twelve mentions a given month, only a city's own pages mention the city
// — match the evaluation corpus shape at scale.
func BuildScaledCorpus(targetPassages int, seed int64) (*ScaledCorpus, error) {
	if targetPassages < 1 {
		targetPassages = 1
	}
	ix := ir.NewIndex()
	sc := &ScaledCorpus{Index: ix}
	cities := map[string]bool{}
	// 50 years × 200 cities × 12 months ≈ 1.8M passages: far above any
	// benchmark target, so hitting the cap means the generator is broken.
	for yi := 0; yi < 50; yi++ {
		year := scaledCorpusBaseYear + yi
		sc.Years = append(sc.Years, year)
		for _, city := range scaledCityPool {
			for month := 1; month <= 12; month++ {
				page := webcorpus.ProsePage(webcorpus.WeatherSeries(city, year, month, seed))
				err := ix.Add(ir.Document{URL: page.URL, Text: webcorpus.ExtractText(page.HTML)})
				if err != nil {
					return nil, fmt.Errorf("core: scaled corpus page %q: %w", page.URL, err)
				}
				sc.Pages++
				if !cities[city] {
					cities[city] = true
					sc.Cities = append(sc.Cities, city)
				}
				if ix.PassageCount() >= targetPassages {
					return sc, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("core: could not reach %d passages", targetPassages)
}

// Queries returns the cold-path retrieval workload of the scaled corpus:
// one query per city, the main-SB terms of "What is the weather like in
// <City> in January?" after question analysis drops the focus noun — the
// selective [city, month] shape the QA side actually sends to IR-n (the
// ubiquitous focus term "weather" never reaches retrieval; see
// qa.Analysis.MainSBs).
func (sc *ScaledCorpus) Queries() [][]string {
	out := make([][]string, 0, len(sc.Cities))
	for _, city := range sc.Cities {
		// Derive the terms through the same analysis pipeline that
		// indexed the documents, so query lemmas match index lemmas.
		out = append(out, ir.QueryTerms(city+" in January"))
	}
	return out
}

// VerifyScaledIR asserts the sparse scorer and the retained dense
// reference rank every workload query byte-identically at top-k — the
// equivalence gate both benchmark harnesses run before timing anything.
func VerifyScaledIR(sc *ScaledCorpus, k int) error {
	for _, terms := range sc.Queries() {
		sparse := sc.Index.Search(terms, k)
		dense := sc.Index.SearchReference(terms, k)
		if len(sparse) == 0 {
			return fmt.Errorf("core: query %v returned no passages", terms)
		}
		if len(sparse) != len(dense) {
			return fmt.Errorf("core: query %v: sparse returned %d passages, dense %d",
				terms, len(sparse), len(dense))
		}
		for i := range sparse {
			s, d := sparse[i], dense[i]
			if s.DocURL != d.DocURL || s.SentStart != d.SentStart ||
				s.SentEnd != d.SentEnd || s.Score != d.Score || s.Text != d.Text {
				return fmt.Errorf("core: query %v rank %d diverges: sparse %s[%d:%d] %.17g, dense %s[%d:%d] %.17g",
					terms, i, s.DocURL, s.SentStart, s.SentEnd, s.Score,
					d.DocURL, d.SentStart, d.SentEnd, d.Score)
			}
		}
	}
	return nil
}

// RunIRSearchSparse runs n sparse passage searches cycling through the
// workload queries — the timed loop body of the IR scaling benchmarks in
// both harnesses (bench_test.go and cmd/benchreport).
func RunIRSearchSparse(ix *ir.Index, queries [][]string, k, n int) error {
	for i := 0; i < n; i++ {
		if len(ix.Search(queries[i%len(queries)], k)) == 0 {
			return fmt.Errorf("sparse search returned no results")
		}
	}
	return nil
}

// RunIRSearchDense is RunIRSearchSparse for the dense reference scorer.
func RunIRSearchDense(ix *ir.Index, queries [][]string, k, n int) error {
	for i := 0; i < n; i++ {
		if len(ix.SearchReference(queries[i%len(queries)], k)) == 0 {
			return fmt.Errorf("dense search returned no results")
		}
	}
	return nil
}

// ColdQuestionWorkload derives an all-unique factoid question workload
// from the pipeline's scenario questions — the cache-defeating traffic
// shape of BenchmarkAskCold (diverse traffic from many users is
// cache-miss traffic; the cold path is what it exercises).
func ColdQuestionWorkload(p interface{ WeatherQuestions() []string }) []string {
	unique := p.WeatherQuestions()
	out := make([]string, 0, len(unique))
	seen := map[string]bool{}
	for _, q := range unique {
		key := strings.ToLower(strings.TrimSpace(q))
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, q)
	}
	return out
}
