// Command dwqa runs the full five-step DW↔QA integration on the Last
// Minute Sales scenario. Without a subcommand it prints the paper's
// Table 1 trace, the mixed factoid+analytic workload (natural-language
// questions compiled to OLAP plans) and the BI analysis the scenario
// motivates; the serve subcommand keeps the integrated system running
// behind an HTTP JSON API.
//
// Usage:
//
//	dwqa [-seed N] [-no-ontology] [-no-irfilter] [-table-aware] [-q QUESTION]
//	dwqa serve [-addr :8080] [-workers 8] [-cache 1024] [-no-feed]
//	           [-data-dir DIR] [-snapshot-every DUR] [-shards N]
//	           [-follow] [-poll DUR] [-quiet] [-slow-query DUR]
//	           [-pprof ADDR] [shared flags]
//
// With -data-dir the server is durable: on boot it recovers the
// warehouse, passage index and ontology from the newest snapshot plus the
// write-ahead log (restart-in-seconds instead of a cold re-feed), every
// feed is journaled, and on SIGTERM/SIGINT it drains in-flight requests
// and publishes a final snapshot before exiting. -snapshot-every adds
// periodic background snapshots that never block /ask.
//
// With -shards N the warehouse fact columns and the passage index
// partition across N shards by city hash (answers stay byte-identical
// to single-node serving); with -data-dir each shard persists its own
// snapshot/WAL store under the directory. -follow opens the same
// directory as a read replica instead: it serves from the leader's
// shipped snapshots, tails the per-shard WAL every -poll, and refuses
// feeds; /healthz reports per-shard sequence and lag on both sides.
//
// The serve API:
//
//	POST /ask        {"question": "..."}      one answer (factoid or OLAP)
//	POST /ask/batch  {"questions": [...]}     batched answers, input order
//	POST /ask/olap   {"question": "..."}      the analytic path: plan + table
//	POST /harvest    {"questions": [...]}     Step 5 feed (empty = default workload)
//	GET  /trace?q=…                           the paper's Table 1 trace
//	GET  /healthz                             serving statistics
//	GET  /metrics                             Prometheus text exposition
//
// Observability: every request is access-logged (method, path, status,
// outcome class, latency) unless -quiet; -slow-query DUR logs a
// per-stage latency breakdown (NLP analyse, IR search, OLAP
// compile/execute, QA extract, cache lookup, …) for requests over the
// threshold, sampled to at most one line per second; -pprof ADDR serves
// net/http/pprof on a separate listener, never the serving address.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dwqa"
)

// sharedFlags registers the pipeline flags common to both modes.
type sharedFlags struct {
	seed       *int64
	noOntology *bool
	noIRFilter *bool
	tableAware *bool
}

func registerShared(fs *flag.FlagSet) sharedFlags {
	return sharedFlags{
		seed:       fs.Int64("seed", 42, "deterministic seed for scenario, corpus and workload"),
		noOntology: fs.Bool("no-ontology", false, "ablate the shared ontology (skip Steps 2-3 enrichment)"),
		noIRFilter: fs.Bool("no-irfilter", false, "ablate the IR filtering phase (QA scans every passage)"),
		tableAware: fs.Bool("table-aware", false, "enable the future-work table pre-processing"),
	}
}

func (sf sharedFlags) config() dwqa.Config {
	cfg := dwqa.DefaultConfig()
	cfg.Seed = *sf.seed
	cfg.QA.UseOntology = !*sf.noOntology
	cfg.QA.UseIRFilter = !*sf.noIRFilter
	cfg.TableAware = *sf.tableAware
	return cfg
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	runTrace(os.Args[1:])
}

// runTrace is the classic one-shot mode: integrate, trace, analyse.
func runTrace(args []string) {
	fs := flag.NewFlagSet("dwqa", flag.ExitOnError)
	sf := registerShared(fs)
	question := fs.String("q", "What is the weather like in January of 2004 in El Prat?", "question to trace")
	_ = fs.Parse(args)

	p, err := dwqa.New(sf.config())
	if err != nil {
		fatal(err)
	}
	fmt.Println("Running the five-step integration (paper §3)...")
	if err := p.RunAll(); err != nil {
		fatal(err)
	}
	fmt.Println(p.Summary())

	tr, err := p.Table1(*question)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- Table 1 trace ---")
	fmt.Println(tr.Format())

	// The mixed workload the integration enables: the same Ask surface
	// answers factoid questions from the web and analytic questions from
	// the warehouse (compiled OLAP plans).
	fmt.Println("--- Analytic questions (NL → compiled OLAP plans) ---")
	for _, q := range []string{
		"What is the average temperature in Barcelona by month?",
		"Total last-minute revenue per destination city in January",
		"How many tickets were sold to Barcelona in January of 2004?",
	} {
		ans, err := p.AskOLAP(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Q: %s\nplan: %s\n%s\n", q, ans.PlanString(), ans.Result.Format())
	}

	rep, err := dwqa.AnalyzeSalesWeather(p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- BI analysis (the scenario's goal) ---")
	fmt.Println(rep.Format())
}

// runServe integrates (or recovers) once, then serves the QA side over
// HTTP until SIGINT/SIGTERM, draining in-flight requests on the way out.
func runServe(args []string) {
	fs := flag.NewFlagSet("dwqa serve", flag.ExitOnError)
	sf := registerShared(fs)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent questions per batch (0 = engine default)")
	cache := fs.Int("cache", 0, "answer-cache entries (0 = engine default, negative disables)")
	noFeed := fs.Bool("no-feed", false, "skip the initial Step 5 feed (serve over the unfed warehouse)")
	dataDir := fs.String("data-dir", "", "durable data directory (snapshots + write-ahead log); empty serves in-memory")
	snapEvery := fs.Duration("snapshot-every", 0, "background snapshot interval with -data-dir (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "in-flight request drain budget at shutdown")
	maxInflight := fs.Int("max-inflight", dwqa.DefaultMaxInflight, "concurrently admitted requests (negative disables admission control)")
	maxQueue := fs.Int("max-queue", dwqa.DefaultMaxQueue, "requests allowed to wait for a slot before shedding with 429 (negative disables queueing)")
	askTimeout := fs.Duration("ask-timeout", dwqa.DefaultAskTimeout, "per-request deadline for /ask paths (negative disables)")
	harvestTimeout := fs.Duration("harvest-timeout", dwqa.DefaultHarvestTimeout, "per-request deadline for /harvest (negative disables)")
	shards := fs.Int("shards", 1, "partition the warehouse and index across N shards (scatter/gather serving)")
	follow := fs.Bool("follow", false, "serve as a read replica over -data-dir: ship the leader's snapshots, tail its WAL, refuse feeds")
	poll := fs.Duration("poll", 2*time.Second, "replica WAL poll interval with -follow")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections")
	quiet := fs.Bool("quiet", false, "suppress the per-request access log (recovered panics are still logged)")
	slowQuery := fs.Duration("slow-query", 0, "log a per-stage breakdown for requests slower than this (0 disables; sampled to one line per second)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	_ = fs.Parse(args)

	cfg := sf.config()
	cfg.Engine.Workers = *workers
	cfg.Engine.CacheSize = *cache
	cfg.Engine.MaxInflight = *maxInflight
	cfg.Engine.MaxQueue = *maxQueue
	cfg.Engine.AskTimeout = *askTimeout
	cfg.Engine.HarvestTimeout = *harvestTimeout

	opts := serveOptions{
		addr:              *addr,
		drain:             *drain,
		readHeaderTimeout: *readHeaderTimeout,
		readTimeout:       *readTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
		quiet:             *quiet,
		slowQuery:         *slowQuery,
		pprofAddr:         *pprofAddr,
	}
	// A cluster directory already knows its shard count — detect it so
	// reopening or following never requires restating -shards, and an
	// explicit -shards that disagrees fails here with a clear message
	// instead of a fingerprint mismatch deep in bootstrap.
	shardsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})
	shardedDir := false
	if *dataDir != "" {
		detected, err := dwqa.DetectShards(*dataDir)
		if err != nil {
			fatal(err)
		}
		if detected > 0 {
			shardedDir = true
			if shardsSet && *shards != detected {
				fatal(fmt.Errorf("-shards %d disagrees with %s, which was created with %d shards", *shards, *dataDir, detected))
			}
			if !shardsSet {
				*shards = detected
				fmt.Printf("dwqa serve: detected %d-shard cluster in %s\n", detected, *dataDir)
			}
		}
	}
	if *follow || *shards != 1 || shardedDir {
		runServeSharded(cfg, opts, *shards, *follow, *poll, *dataDir, *snapEvery, *noFeed)
		return
	}

	var p *dwqa.Pipeline
	durable := *dataDir != ""
	if durable {
		opened, info, err := dwqa.Open(cfg, *dataDir)
		if err != nil {
			fatal(err)
		}
		p = opened
		if info.Recovered {
			members, rows := p.StateCounts()
			fmt.Printf("dwqa serve: recovered %s (%d members, %d fact rows, %d WAL records replayed)\n",
				info.SnapshotPath, members, rows, info.WALReplayed)
		} else {
			fmt.Println("dwqa serve: fresh data dir, integrated and published the initial snapshot")
		}
		// The feed runs on recovered boots too: a crash mid-harvest leaves
		// a partial warehouse, and re-feeding converges on the complete
		// one — the restored dedup state skips every record that
		// survived, so a fully-fed recovery costs one no-op pass.
		if !*noFeed {
			fmt.Println("dwqa serve: running the Step 5 feed (journaled; recovered records are skipped)...")
			if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
				fatal(err)
			}
		}
	} else {
		fresh, err := dwqa.New(cfg)
		if err != nil {
			fatal(err)
		}
		p = fresh
		fmt.Println("dwqa serve: running the five-step integration (paper §3)...")
		if *noFeed {
			if err := p.Step1DeriveOntology(); err != nil {
				fatal(err)
			}
			if err := p.Step2FeedOntology(); err != nil {
				fatal(err)
			}
			if err := p.Step3MergeUpperOntology(); err != nil {
				fatal(err)
			}
			if err := p.Step4TuneQA(); err != nil {
				fatal(err)
			}
		} else if err := p.RunAll(); err != nil {
			fatal(err)
		}
	}
	fmt.Print(p.Summary())

	eng, err := p.Engine()
	if err != nil {
		fatal(err)
	}
	stopSnapshots := func() {}
	if durable && *snapEvery > 0 {
		stopSnapshots = eng.SnapshotEvery(*snapEvery, func(err error) {
			fmt.Fprintln(os.Stderr, "dwqa serve: background snapshot:", err)
		})
		defer stopSnapshots() // idempotent; safety net for the error path
	}

	opts.serve(eng, func() {
		if durable {
			// The background snapshotter must be fully stopped (waiting
			// out any in-flight tick) before the final snapshot and the
			// store close behind it.
			stopSnapshots()
			info, err := eng.SnapshotTo()
			if err != nil {
				fatal(fmt.Errorf("final snapshot: %w", err))
			}
			fmt.Printf("dwqa serve: final snapshot %s (%d bytes, WAL seq %d)\n",
				info.Path, info.Bytes, info.WALSeq)
			if err := p.Store().Close(); err != nil {
				fatal(err)
			}
		}
	})
}

// runServeSharded serves a sharded cluster: the scatter/gather writer
// (-shards N, optionally durable under -data-dir) or a read replica
// (-follow) over a leader's cluster directory.
func runServeSharded(cfg dwqa.Config, opts serveOptions, shards int, follow bool, poll time.Duration, dataDir string, snapEvery time.Duration, noFeed bool) {
	if shards < 1 {
		fatal(fmt.Errorf("-shards must be at least 1, got %d", shards))
	}
	if follow && dataDir == "" {
		fatal(fmt.Errorf("-follow requires -data-dir (the leader's cluster directory)"))
	}

	var sp *dwqa.Sharded
	stopTail := func() {}
	durable := !follow && dataDir != ""
	switch {
	case follow:
		replica, err := dwqa.OpenFollower(cfg, dataDir, shards)
		if err != nil {
			fatal(err)
		}
		sp = replica
		stopTail = sp.StartTailing(poll, func(err error) {
			fmt.Fprintln(os.Stderr, "dwqa serve: replica tail:", err)
		})
		fmt.Printf("dwqa serve: following %s (%d shards, polling every %s, read-only)\n", dataDir, shards, poll)
	case durable:
		leader, info, err := dwqa.OpenSharded(cfg, dataDir, shards)
		if err != nil {
			fatal(err)
		}
		sp = leader
		if info.Recovered {
			fmt.Printf("dwqa serve: recovered %d shards from %s (%d WAL records replayed)\n",
				shards, dataDir, info.WALReplayed)
		} else {
			fmt.Println("dwqa serve: fresh cluster directory, integrated and published the initial snapshots")
		}
		if !noFeed {
			fmt.Println("dwqa serve: running the Step 5 feed (journaled; recovered records are skipped)...")
			if _, err := sp.Feed(sp.WeatherQuestions()); err != nil {
				fatal(err)
			}
		}
	default:
		fresh, err := dwqa.NewSharded(cfg, shards)
		if err != nil {
			fatal(err)
		}
		sp = fresh
		fmt.Printf("dwqa serve: running the five-step integration over %d shards...\n", shards)
		if err := sp.Integrate(); err != nil {
			fatal(err)
		}
		if !noFeed {
			if _, err := sp.Feed(sp.WeatherQuestions()); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Print(sp.Summary())

	eng, err := sp.Engine()
	if err != nil {
		fatal(err)
	}
	stopSnapshots := func() {}
	if durable && snapEvery > 0 {
		stopSnapshots = eng.SnapshotEvery(snapEvery, func(err error) {
			fmt.Fprintln(os.Stderr, "dwqa serve: background snapshot:", err)
		})
		defer stopSnapshots() // idempotent; safety net for the error path
	}

	opts.serve(eng, func() {
		stopTail() // a replica's tail loop must stop before the cluster is abandoned
		if durable {
			stopSnapshots()
			info, err := eng.SnapshotTo()
			if err != nil {
				fatal(fmt.Errorf("final snapshot: %w", err))
			}
			fmt.Printf("dwqa serve: final snapshots under %s (%d bytes, WAL seq %d)\n",
				info.Path, info.Bytes, info.WALSeq)
			if err := sp.Durable().Close(); err != nil {
				fatal(err)
			}
		}
	})
}

// serveOptions carries the transport-level serving knobs shared by the
// single-node and sharded serve paths.
type serveOptions struct {
	addr              string
	drain             time.Duration
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	quiet             bool          // -quiet: no per-request access log
	slowQuery         time.Duration // -slow-query: per-stage breakdown threshold
	pprofAddr         string        // -pprof: net/http/pprof listener ("" = off)
}

// serve listens until SIGINT/SIGTERM, drains in-flight requests, then
// runs shutdown (final snapshots, store closes, replica tail stops).
// Transport-level timeouts guard the listener: without them a slow or
// stalled client holds a connection (and its kernel buffers) forever;
// the engine's own deadlines only start once a request is fully read.
func (o serveOptions) serve(eng *dwqa.Engine, shutdown func()) {
	if o.slowQuery > 0 {
		eng.SetSlowQueryLog(o.slowQuery, log.Printf)
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           dwqa.NewServerWith(eng, dwqa.ServerOptions{Quiet: o.quiet}),
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}
	if o.pprofAddr != "" {
		// The profiler gets its own mux and listener so profiling is
		// never exposed on the serving address.
		go func() {
			pprofMux := http.NewServeMux()
			pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
			pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("dwqa serve: pprof on %s\n", o.pprofAddr)
			if err := http.ListenAndServe(o.pprofAddr, pprofMux); err != nil {
				fmt.Fprintln(os.Stderr, "dwqa serve: pprof:", err)
			}
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	st := eng.Stats()
	fmt.Printf("dwqa serve: listening on %s (%d workers, %d passages indexed)\n",
		o.addr, eng.Workers(), st.Passages)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		fmt.Println("dwqa serve: shutting down, draining in-flight requests...")
		drainCtx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dwqa serve: drain:", err)
		}
		if shutdown != nil {
			shutdown()
		}
		fmt.Println("dwqa serve: bye")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwqa:", err)
	os.Exit(1)
}
