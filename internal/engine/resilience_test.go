package engine_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dwqa/internal/core"
	"dwqa/internal/engine"
	"dwqa/internal/qa"
	"dwqa/internal/store"
)

// Resilience behaviour of the serving layer (DESIGN.md §8): panic
// isolation, admission control, deadlines, degraded read-only mode and
// the snapshot publish retry.

// newEngine builds an engine over a fed pipeline with explicit limits.
func newEngine(t *testing.T, cfg engine.Config) (*core.Pipeline, *engine.Engine) {
	t.Helper()
	p := newPipeline(t)
	eng, err := engine.New(cfg, p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	return p, eng
}

// TestAskPanicIsolation: a panicking extraction fails only the slots that
// asked the poisoned question; the rest of the batch answers normally and
// the process survives.
func TestAskPanicIsolation(t *testing.T) {
	p, eng := newEngine(t, engine.Config{AskTimeout: -1})
	real := p.QA.Answer
	eng.SetAnswerFnForTest(func(q string) (*qa.Result, error) {
		if strings.Contains(q, "BOOM") {
			panic("injected extractor panic")
		}
		return real(q)
	})

	good := "What is the weather like in January of 2004 in El Prat?"
	results := eng.AskAll(context.Background(), []string{good, "BOOM please", good})
	if err := results[1].Err; !errors.Is(err, engine.ErrPanic) {
		t.Fatalf("poisoned slot Err = %v, want ErrPanic", err)
	}
	if results[1].Result != nil {
		t.Error("poisoned slot must not carry a result")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Result == nil {
			t.Errorf("slot %d = (%v, %v); the panic must not poison the batch", i, results[i].Result, results[i].Err)
		}
	}
	if st := eng.Stats(); st.PanicTotal != 1 {
		t.Errorf("PanicTotal = %d, want 1", st.PanicTotal)
	}
	// The engine still serves after the panic.
	if r := eng.Ask(context.Background(), good); r.Err != nil {
		t.Fatalf("ask after panic: %v", r.Err)
	}
}

// TestHarvestPanicIsolation: same for the harvest path — and the batch
// still commits the questions that extracted cleanly.
func TestHarvestPanicIsolation(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	harvest := p.WeatherQuestions()[:3]
	realHarvest, _ := p.NewHarvester()
	eng.SetHarvestFnForTest(func(q string) ([]qa.Answer, *qa.Result, error) {
		if q == harvest[1] {
			panic("injected harvester panic")
		}
		return realHarvest.Harvest(q)
	})

	items, total, err := eng.HarvestAll(context.Background(), harvest)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(items[1].Err, engine.ErrPanic) {
		t.Fatalf("poisoned slot Err = %v, want ErrPanic", items[1].Err)
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Error("panic must not poison the neighbouring questions")
	}
	if total.Loaded == 0 {
		t.Error("clean questions should still have been committed")
	}
	if eng.Generation() != 1 {
		t.Errorf("generation = %d, want 1 (the partial batch committed)", eng.Generation())
	}
}

// blockingAnswer answers by waiting for release, so the test controls how
// long a slot stays occupied.
func blockingAnswer(started chan<- struct{}, release <-chan struct{}) func(string) (*qa.Result, error) {
	return func(string) (*qa.Result, error) {
		started <- struct{}{}
		<-release
		return &qa.Result{}, nil
	}
}

// TestAskShedding: with one inflight slot and no queue, a second request
// is shed immediately with ErrShed and counted.
func TestAskShedding(t *testing.T) {
	_, eng := newEngine(t, engine.Config{MaxInflight: 1, MaxQueue: -1, AskTimeout: -1, CacheSize: -1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	eng.SetAnswerFnForTest(blockingAnswer(started, release))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.Ask(context.Background(), "occupier")
	}()
	<-started // the slot is held

	r := eng.Ask(context.Background(), "shed me")
	if !errors.Is(r.Err, engine.ErrShed) {
		t.Fatalf("Err = %v, want ErrShed", r.Err)
	}
	st := eng.Stats()
	if st.ShedTotal != 1 {
		t.Errorf("ShedTotal = %d, want 1", st.ShedTotal)
	}
	if st.Inflight != 1 {
		t.Errorf("Inflight = %d, want 1", st.Inflight)
	}

	close(release)
	wg.Wait()
	// The slot freed: the engine admits again.
	if r := eng.Ask(context.Background(), "after"); r.Err != nil {
		t.Fatalf("ask after release: %v", r.Err)
	}
	if st := eng.Stats(); st.Inflight != 0 {
		t.Errorf("Inflight after drain = %d, want 0", st.Inflight)
	}
}

// TestAskQueueTimeout: a queued request gives up with DeadlineExceeded
// when its deadline expires before a slot frees.
func TestAskQueueTimeout(t *testing.T) {
	_, eng := newEngine(t, engine.Config{MaxInflight: 1, MaxQueue: 4, AskTimeout: -1, CacheSize: -1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	eng.SetAnswerFnForTest(blockingAnswer(started, release))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.Ask(context.Background(), "occupier")
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r := eng.Ask(ctx, "queued past deadline")
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", r.Err)
	}
	if st := eng.Stats(); st.TimeoutTotal == 0 {
		t.Error("TimeoutTotal should count the expired wait")
	}
	close(release)
	wg.Wait()
}

// TestAskAllDeadlinePartial: a batch that outruns its deadline returns
// the answers finished in time and marks the rest per item — never an
// all-or-nothing failure.
func TestAskAllDeadlinePartial(t *testing.T) {
	_, eng := newEngine(t, engine.Config{Workers: 1, AskTimeout: -1, CacheSize: -1})
	var mu sync.Mutex
	answered := 0
	eng.SetAnswerFnForTest(func(q string) (*qa.Result, error) {
		time.Sleep(30 * time.Millisecond)
		mu.Lock()
		answered++
		mu.Unlock()
		return &qa.Result{}, nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Millisecond)
	defer cancel()
	results := eng.AskAll(ctx, []string{"q one", "q two", "q three", "q four"})

	var done, expired int
	for _, r := range results {
		switch {
		case r.Err == nil:
			done++
		case errors.Is(r.Err, context.DeadlineExceeded):
			expired++
		default:
			t.Errorf("unexpected error %v", r.Err)
		}
	}
	if done == 0 {
		t.Error("no slot finished before the deadline; want a partial batch")
	}
	if expired == 0 {
		t.Error("no slot was marked expired; the deadline did not bite")
	}
	if done+expired != 4 {
		t.Errorf("done %d + expired %d != 4", done, expired)
	}
	if st := eng.Stats(); st.TimeoutTotal == 0 {
		t.Error("TimeoutTotal should count the expired batch")
	}
}

// TestDefaultAskTimeoutApplied: with no caller deadline the configured
// AskTimeout kicks in.
func TestDefaultAskTimeoutApplied(t *testing.T) {
	_, eng := newEngine(t, engine.Config{Workers: 1, AskTimeout: 30 * time.Millisecond, CacheSize: -1})
	eng.SetAnswerFnForTest(func(string) (*qa.Result, error) {
		time.Sleep(20 * time.Millisecond)
		return &qa.Result{}, nil
	})
	results := eng.AskAll(context.Background(), []string{"a", "b", "c", "d"})
	expired := 0
	for _, r := range results {
		if errors.Is(r.Err, context.DeadlineExceeded) {
			expired++
		}
	}
	if expired == 0 {
		t.Error("the default AskTimeout never expired a slot")
	}
}

// TestDegradedModeOnWALFailure is the deterministic core of the chaos
// suite: a WAL append failure during a feed flips the engine into
// degraded read-only mode — asks keep serving, further feeds are refused
// with ErrDegraded, /healthz-level stats say "degraded" — and
// ClearDegraded re-enables feeds once the disk is healthy.
func TestDegradedModeOnWALFailure(t *testing.T) {
	ffs := store.NewFaultFS(store.OS())
	p, _, err := core.OpenPipelineFS(core.DefaultConfig(), t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Store().Close() })
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	harvest := p.WeatherQuestions()[:2]

	// Every fsync fails from here: the first journal append of the feed
	// is refused and the batch commit fails.
	faults := make([]store.Fault, 64)
	for i := range faults {
		faults[i] = store.Fault{Op: store.OpSync, Nth: i + 1}
	}
	ffs.Arm(faults...)
	_, _, err = eng.HarvestAll(context.Background(), harvest)
	if !errors.Is(err, engine.ErrDegraded) {
		t.Fatalf("feed over a dead WAL = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, store.ErrWAL) {
		t.Fatalf("err = %v, should still expose the WAL cause", err)
	}
	ffs.Disarm()

	// Latched: the next feed is refused before touching anything.
	if _, _, err := eng.HarvestAll(context.Background(), harvest); !errors.Is(err, engine.ErrDegraded) {
		t.Fatalf("second feed = %v, want ErrDegraded (latched)", err)
	}
	// Asks keep serving.
	if r := eng.Ask(context.Background(), "What is the weather like in January of 2004 in El Prat?"); r.Err != nil {
		t.Fatalf("ask while degraded: %v", r.Err)
	}
	st := eng.Stats()
	if st.State != "degraded" || st.DegradedReason == "" {
		t.Errorf("stats state = %q (reason %q), want degraded with a reason", st.State, st.DegradedReason)
	}
	if st.WALErrors == 0 {
		t.Error("WALErrors should count the refused append")
	}

	// Operator intervention: disk is healthy again, feeds resume and the
	// re-feed converges (dedup skips nothing here — the failed batch
	// never committed).
	if !eng.ClearDegraded() {
		t.Fatal("ClearDegraded should report it was degraded")
	}
	items, total, err := eng.HarvestAll(context.Background(), harvest)
	if err != nil {
		t.Fatalf("feed after recovery: %v", err)
	}
	if total.Loaded == 0 {
		t.Errorf("recovered feed loaded nothing: %+v", items)
	}
	if st := eng.Stats(); st.State != "ready" {
		t.Errorf("state after ClearDegraded = %q, want ready", st.State)
	}
}

// TestSnapshotRetryRidesOutTransientFault: a snapshot publish that fails
// once succeeds on the engine's backoff retry; a persistently failing
// disk still surfaces the error.
func TestSnapshotRetryRidesOutTransientFault(t *testing.T) {
	defer engine.SetSnapshotRetryForTest(3, time.Millisecond)()
	ffs := store.NewFaultFS(store.OS())
	p, _, err := core.OpenPipelineFS(core.DefaultConfig(), t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Store().Close() })
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}

	// One refused rename: attempt 1 fails, attempt 2 publishes.
	ffs.Arm(store.Fault{Op: store.OpRename, Nth: 1})
	info, err := eng.SnapshotTo()
	if err != nil {
		t.Fatalf("snapshot with one transient fault: %v", err)
	}
	if info.Path == "" {
		t.Fatal("no snapshot path")
	}
	if ffs.Fired() != 1 {
		t.Errorf("fired = %d, want 1", ffs.Fired())
	}
	ffs.Disarm()

	// Every rename refused: the retry budget runs out loudly.
	ffs.Arm(
		store.Fault{Op: store.OpRename, Nth: 1},
		store.Fault{Op: store.OpRename, Nth: 2},
		store.Fault{Op: store.OpRename, Nth: 3},
	)
	if _, err := eng.SnapshotTo(); err == nil {
		t.Fatal("snapshot on a dead disk should fail after retries")
	} else if !errors.Is(err, store.ErrInjected) {
		t.Errorf("err = %v, should wrap the injected fault", err)
	}
}
