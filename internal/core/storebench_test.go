package core

import (
	"strings"
	"testing"
)

// TestPrepareStoreBenchmark pins the benchmark harness itself at a small
// scale: the three arms must build, pass their internal equivalence
// gates (restore == refeed == reindex == exported state) and run.
func TestPrepareStoreBenchmark(t *testing.T) {
	sb, err := PrepareStoreBenchmark(300, 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Passages < 300 || sb.Rows < 300 || sb.MemberCount == 0 {
		t.Fatalf("undersized bench state: %d passages, %d rows, %d members", sb.Passages, sb.Rows, sb.MemberCount)
	}
	if len(sb.SnapBytes) == 0 || len(sb.Docs) == 0 || len(sb.Members) == 0 || len(sb.FactOrder) == 0 {
		t.Fatal("bench inputs missing")
	}
	if err := RunSnapshotRestore(sb, 1); err != nil {
		t.Fatal(err)
	}
	if err := RunStoreRefeed(sb, 1); err != nil {
		t.Fatal(err)
	}
	if err := RunStoreReindex(sb, 1); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareWALReplayBenchmark pins the WAL replay harness: the encoded
// batches must replay into a warehouse with the original counts, and the
// runner must notice a tampered log.
func TestPrepareWALReplayBenchmark(t *testing.T) {
	runner, records, err := PrepareWALReplayBenchmark(t.TempDir(), 500, 42, 100)
	if err != nil {
		t.Fatal(err)
	}
	if records < 3 {
		t.Fatalf("expected several WAL records, got %d", records)
	}
	if err := runner(2); err != nil {
		t.Fatal(err)
	}
}

// TestMemberSpecsFromSnapshotOrdering pins the parents-before-children
// invariant the reindex arm relies on.
func TestMemberSpecsFromSnapshotOrdering(t *testing.T) {
	wh, err := BuildScaledWarehouse(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := memberSpecsFromSnapshot(wh.Export())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Parent != "" {
			// The parent lives one level up; it must have been emitted
			// already (any level, same dimension).
			if !seen[s.Dim+"|"+s.Parent] {
				t.Fatalf("spec %s.%s/%s references parent %q before it was emitted", s.Dim, s.Level, s.Name, s.Parent)
			}
		}
		seen[s.Dim+"|"+s.Name] = true
	}
	// And a corrupted snapshot is rejected, not mis-ordered.
	snap := wh.Export()
	snap.Dims[0].Levels[0].Level = "Nope"
	if _, err := memberSpecsFromSnapshot(snap); err == nil || !strings.Contains(err.Error(), "Nope") {
		t.Fatalf("unknown level accepted: %v", err)
	}
}
