package wsd

import (
	"testing"

	"dwqa/internal/nlp"
	"dwqa/internal/wordnet"
)

func sentenceOf(t *testing.T, text string) nlp.Sentence {
	t.Helper()
	sents := nlp.SplitSentences(text)
	if len(sents) == 0 {
		t.Fatalf("no sentences in %q", text)
	}
	return sents[0]
}

func assignmentFor(as []Assignment, toks []nlp.Token, word string) (Assignment, bool) {
	for _, a := range as {
		if toks[a.TokenIndex].Text == word {
			return a, true
		}
	}
	return Assignment{}, false
}

func TestDisambiguateBasic(t *testing.T) {
	wn := wordnet.Seed()
	d := New(wn, Config{})
	sent := sentenceOf(t, "The temperature in Barcelona was mild.")
	as := d.Disambiguate(sent)
	a, ok := assignmentFor(as, sent.Tokens, "temperature")
	if !ok {
		t.Fatal("temperature got no sense")
	}
	if a.SynsetID != "n.temperature" {
		t.Errorf("temperature sense = %s", a.SynsetID)
	}
	a, ok = assignmentFor(as, sent.Tokens, "Barcelona")
	if !ok || a.SynsetID != "n.barcelona" {
		t.Errorf("barcelona sense = %+v, ok=%v", a, ok)
	}
}

func TestMultiWordEntity(t *testing.T) {
	wn := wordnet.Seed()
	d := New(wn, Config{})
	sent := sentenceOf(t, "El Prat played a concert in Madrid.")
	as := d.Disambiguate(sent)
	a, ok := assignmentFor(as, sent.Tokens, "El")
	if !ok {
		t.Fatal("multi-word El Prat not matched")
	}
	if a.SynsetID != "n.el_prat_band" {
		t.Errorf("el prat sense = %s, want n.el_prat_band (the only seed sense)", a.SynsetID)
	}
}

func TestDomainBoostFlipsSense(t *testing.T) {
	// Enrich: add "el prat" as an airport synset too, then check that the
	// domain boost makes the airport sense win for a travel context.
	wn := wordnet.Seed()
	if _, err := wn.AddSynset("n.el_prat_airport", wordnet.Noun, wordnet.BaseArtifact,
		"the airport serving Barcelona", "el prat", "barcelona-el prat airport"); err != nil {
		t.Fatal(err)
	}
	if err := wn.Relate("n.el_prat_airport", wordnet.InstanceHypernym, "n.airport"); err != nil {
		t.Fatal(err)
	}

	neutral := New(wn, Config{})
	sent := sentenceOf(t, "El Prat is popular.")
	as := neutral.Disambiguate(sent)
	a, ok := assignmentFor(as, sent.Tokens, "El")
	if !ok {
		t.Fatal("no assignment")
	}
	baseline := a.SynsetID

	boosted := New(wn, Config{DomainSynsets: []string{"n.airport"}, DomainBoost: 5})
	as = boosted.Disambiguate(sent)
	a, ok = assignmentFor(as, sent.Tokens, "El")
	if !ok {
		t.Fatal("no boosted assignment")
	}
	if a.SynsetID != "n.el_prat_airport" {
		t.Errorf("boosted sense = %s, want airport (baseline was %s)", a.SynsetID, baseline)
	}
}

func TestLeskContextOverlap(t *testing.T) {
	// "new york" is both a state and a city in the seed. A context
	// mentioning "city" should pick the city sense; "state" the state.
	wn := wordnet.Seed()
	d := New(wn, Config{})

	sent := sentenceOf(t, "New York is the largest city in America.")
	as := d.Disambiguate(sent)
	a, ok := assignmentFor(as, sent.Tokens, "New")
	if !ok {
		t.Fatal("new york not matched")
	}
	if a.SynsetID != "n.new_york_city" {
		t.Errorf("city context sense = %s, want n.new_york_city", a.SynsetID)
	}
}

func TestVerbsGetSenses(t *testing.T) {
	wn := wordnet.Seed()
	d := New(wn, Config{})
	sent := sentenceOf(t, "Iraq invaded Kuwait.")
	as := d.Disambiguate(sent)
	a, ok := assignmentFor(as, sent.Tokens, "invaded")
	if !ok || a.SynsetID != "v.invade" {
		t.Errorf("invaded sense = %+v, ok=%v", a, ok)
	}
}

func TestUnknownWordsSkipped(t *testing.T) {
	wn := wordnet.Seed()
	d := New(wn, Config{})
	sent := sentenceOf(t, "The quorblat zzzed.")
	for _, a := range d.Disambiguate(sent) {
		if sent.Tokens[a.TokenIndex].Text == "quorblat" {
			t.Error("unknown word got a sense")
		}
	}
}

func TestEmptySentence(t *testing.T) {
	wn := wordnet.Seed()
	d := New(wn, Config{})
	if got := d.Disambiguate(nlp.Sentence{}); len(got) != 0 {
		t.Errorf("empty sentence produced %v", got)
	}
}

func BenchmarkDisambiguate(b *testing.B) {
	wn := wordnet.Seed()
	d := New(wn, Config{})
	sents := nlp.SplitSentences("The temperature in Barcelona reached 8 degrees in January.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Disambiguate(sents[0])
	}
}
