package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dwqa/internal/ir"
)

// Federated retrieval over the sharded passage index. Ranking stays
// byte-identical to one big index: every shard reports its local corpus
// statistics (TermStats), the coordinator sums them into global idf
// weights (GlobalIDF), each shard scores its own postings with those
// weights (SearchWeighted), and the partial top-k lists merge on
// (score desc, global document ordinal asc, window start asc) — the
// same total order the single index's (score desc, passage id asc)
// contract induces, because passage ids ascend by (ingest order,
// window start) and ordinals record ingest order globally.

// AddDocument routes a document by key, assigns it the next cluster
// ordinal and indexes it on its shard. The single ingest writer
// serialises through the cluster lock, so ordinals are dense and in
// ingest order — the property the federated tie-break relies on.
func (c *Cluster) AddDocument(doc ir.Document, key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.hashShard(key)
	node := c.Node(s)
	doc.Ord = c.nextOrd
	if err := node.IX.Add(doc); err != nil {
		return err
	}
	c.ordDoc[doc.Ord] = [2]int{s, node.IX.DocCount() - 1}
	c.nextOrd++
	return nil
}

// HasURL reports whether any shard has indexed this URL.
func (c *Cluster) HasURL(url string) bool {
	for i := 0; i < c.n; i++ {
		if c.Node(i).IX.HasURL(url) {
			return true
		}
	}
	return false
}

// NoteDocument records a replayed document's placement — the WAL replay
// and tail paths index documents directly on a shard's node (their Ord
// was assigned at original ingest and persisted) and then register the
// (ordinal → shard, local index) mapping here.
func (c *Cluster) NoteDocument(ord int64, shard, localIndex int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ordDoc[ord] = [2]int{shard, localIndex}
	if ord >= c.nextOrd {
		c.nextOrd = ord + 1
	}
}

// ReindexShard rebuilds shard i's ordinal entries from its index — the
// follower's post-reload step and the leader's post-recovery step. Any
// stale entries pointing at shard i are dropped first.
func (c *Cluster) ReindexShard(i int) error {
	node := c.Node(i)
	c.mu.Lock()
	defer c.mu.Unlock()
	for ord, loc := range c.ordDoc {
		if loc[0] == i {
			delete(c.ordDoc, ord)
		}
	}
	for local := 0; local < node.IX.DocCount(); local++ {
		doc, err := node.IX.Document(local)
		if err != nil {
			return err
		}
		c.ordDoc[doc.Ord] = [2]int{i, local}
		if doc.Ord >= c.nextOrd {
			c.nextOrd = doc.Ord + 1
		}
	}
	return nil
}

// DocCount sums indexed documents across shards.
func (c *Cluster) DocCount() int {
	total := 0
	for i := 0; i < c.n; i++ {
		total += c.Node(i).IX.DocCount()
	}
	return total
}

// PassageCount sums passage windows across shards.
func (c *Cluster) PassageCount() int {
	total := 0
	for i := 0; i < c.n; i++ {
		total += c.Node(i).IX.PassageCount()
	}
	return total
}

// Document resolves a global ordinal to its document — the retrieval
// contract consumers (qa's location extraction) hold after Search
// rewrote DocIndex to the ordinal.
func (c *Cluster) Document(i int) (ir.Document, error) {
	c.mu.RLock()
	loc, ok := c.ordDoc[int64(i)]
	c.mu.RUnlock()
	if !ok {
		return ir.Document{}, fmt.Errorf("shard: document ordinal %d unknown", i)
	}
	return c.Node(loc[0]).IX.Document(loc[1])
}

// Search runs the two-round federated search: gather per-shard term
// statistics, derive global idf, scatter the weighted search, merge.
// Returned passages carry the global ordinal in DocIndex (and DocOrd),
// so downstream consumers address documents through Cluster.Document
// exactly as they would a single index.
func (c *Cluster) Search(terms []string, k int) []ir.Passage {
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	type stats struct {
		nPass int
		df    []int
	}
	local := make([]stats, c.n)
	nodes := make([]*Node, c.n)
	fanout := c.fanout.Load()
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var start time.Time
			if fanout != nil {
				start = time.Now()
			}
			// Pin the node for both rounds so a follower swap between
			// them cannot mix one state's statistics with another's
			// postings.
			nodes[i] = c.Node(i)
			local[i].nPass, local[i].df = nodes[i].IX.TermStats(terms)
			if fanout != nil {
				fanout.Observe(time.Since(start))
			}
		}(i)
	}
	wg.Wait()

	nPass := 0
	df := make([]int, len(terms))
	for i := 0; i < c.n; i++ {
		nPass += local[i].nPass
		for t, d := range local[i].df {
			df[t] += d
		}
	}
	idf := ir.GlobalIDF(nPass, df)

	parts := make([][]ir.Passage, c.n)
	for i := 0; i < c.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var start time.Time
			if fanout != nil {
				start = time.Now()
			}
			parts[i] = nodes[i].IX.SearchWeighted(terms, idf, k)
			if fanout != nil {
				fanout.Observe(time.Since(start))
			}
		}(i)
	}
	wg.Wait()
	return mergeTopK(parts, k)
}

// mergeTopK merges per-shard ranked lists into the global top-k under
// the single-index order: score descending, ties by ascending document
// ordinal then window start. Each shard's list already holds its local
// top-k, and the global top-k is a subset of their union.
func mergeTopK(parts [][]ir.Passage, k int) []ir.Passage {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	all := make([]ir.Passage, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].DocOrd != all[j].DocOrd {
			return all[i].DocOrd < all[j].DocOrd
		}
		return all[i].SentStart < all[j].SentStart
	})
	if len(all) > k {
		all = all[:k]
	}
	rewriteOrdinals(all)
	return all
}

// AllPassages materializes every shard's passages in global ingest
// order — (ordinal, window start) ascending reproduces the single
// index's passage-id order.
func (c *Cluster) AllPassages() []ir.Passage {
	var all []ir.Passage
	for i := 0; i < c.n; i++ {
		all = append(all, c.Node(i).IX.AllPassages()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].DocOrd != all[j].DocOrd {
			return all[i].DocOrd < all[j].DocOrd
		}
		return all[i].SentStart < all[j].SentStart
	})
	rewriteOrdinals(all)
	return all
}

// rewriteOrdinals replaces each passage's shard-local document index
// with its global ordinal, the address Cluster.Document resolves. On a
// 1-shard cluster this is the identity: local index == ordinal.
func rewriteOrdinals(ps []ir.Passage) {
	for i := range ps {
		ps[i].DocIndex = int(ps[i].DocOrd)
	}
}
