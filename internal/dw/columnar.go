package dw

import (
	"fmt"

	"dwqa/internal/mdm"
)

// factData stores one fact table in columnar form: one int32 surrogate-key
// column per role and one float64 column per measure, instead of a map per
// row. The layout keeps the OLAP scan cache-friendly and lets the query
// engine index columns directly by row number. Provenance (rare: only
// QA-fed rows carry it) lives in a sparse sidecar keyed by row number.
type factData struct {
	class *mdm.FactClass

	roles      []string       // role order, mirrors class.Dimensions
	roleIdx    map[string]int // role name → column index
	measureIdx map[string]int // measure name → column index

	coords     [][]int32   // [role column][row] base-level surrogate keys
	measures   [][]float64 // [measure column][row] measure values (0 when absent)
	provenance map[int]string
	rows       int
}

func newFactData(class *mdm.FactClass) *factData {
	fd := &factData{
		class:      class,
		roles:      make([]string, len(class.Dimensions)),
		roleIdx:    make(map[string]int, len(class.Dimensions)),
		measureIdx: make(map[string]int, len(class.Measures)),
		coords:     make([][]int32, len(class.Dimensions)),
		measures:   make([][]float64, len(class.Measures)),
	}
	for i, ref := range class.Dimensions {
		fd.roles[i] = ref.Role
		fd.roleIdx[ref.Role] = i
	}
	for i, m := range class.Measures {
		fd.measureIdx[m.Name] = i
	}
	return fd
}

// appendRow appends one fact row. keys must be in role-column order and
// vals in measure-column order.
func (fd *factData) appendRow(keys []int32, vals []float64, prov string) {
	for i := range fd.coords {
		fd.coords[i] = append(fd.coords[i], keys[i])
	}
	for i := range fd.measures {
		fd.measures[i] = append(fd.measures[i], vals[i])
	}
	if prov != "" {
		if fd.provenance == nil {
			fd.provenance = make(map[int]string)
		}
		fd.provenance[fd.rows] = prov
	}
	fd.rows++
}

// measureColumn returns the column of a measure, or nil when the fact has
// no such measure.
func (fd *factData) measureColumn(name string) []float64 {
	i, ok := fd.measureIdx[name]
	if !ok {
		return nil
	}
	return fd.measures[i]
}

// roleColumn returns the coordinate column of a role, or nil.
func (fd *factData) roleColumn(role string) []int32 {
	i, ok := fd.roleIdx[role]
	if !ok {
		return nil
	}
	return fd.coords[i]
}

// FactProvenance returns the lineage string attached to a fact row ("" for
// rows loaded without provenance).
func (w *Warehouse) FactProvenance(fact string, row int) (string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	fd, ok := w.facts[fact]
	if !ok {
		return "", fmt.Errorf("dw: unknown fact %q", fact)
	}
	if row < 0 || row >= fd.rows {
		return "", fmt.Errorf("dw: fact %q row %d out of range", fact, row)
	}
	return fd.provenance[row], nil
}
