package ir

import "testing"

// TestSparseAccEpochWrap exercises the uint32 epoch wrap: stamps from
// 2^32 queries ago must be cleared instead of aliasing as live.
func TestSparseAccEpochWrap(t *testing.T) {
	a := &sparseAcc{stamp: make([]uint32, 4), scores: make([]float64, 4)}
	a.epoch = ^uint32(0) - 1

	a.begin() // epoch = max uint32
	a.add(2, 2.5)
	if len(a.touched) != 1 || a.scores[2] != 2.5 {
		t.Fatalf("pre-wrap add: touched=%v scores=%v", a.touched, a.scores)
	}

	a.begin() // wraps: stamps cleared, epoch restarts at 1
	if a.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", a.epoch)
	}
	for i, s := range a.stamp {
		if s != 0 {
			t.Fatalf("stamp[%d] = %d after wrap, want 0", i, s)
		}
	}
	// The slot touched before the wrap must register as fresh.
	a.add(2, 1.0)
	if len(a.touched) != 1 || a.scores[2] != 1.0 {
		t.Fatalf("post-wrap add not fresh: touched=%v score=%v", a.touched, a.scores[2])
	}
	if got := a.rank(5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("rank after wrap = %v, want [2]", got)
	}
}

func TestTermCount(t *testing.T) {
	if got := NewIndex().TermCount(); got != 0 {
		t.Errorf("empty index TermCount = %d", got)
	}
	ix := newTestIndex(t)
	if got := ix.TermCount(); got == 0 {
		t.Error("populated index has no terms")
	}
	// Interning is stable: re-adding vocabulary does not mint new ids.
	before := ix.TermCount()
	if err := ix.Add(testDocs()[0]); err != nil {
		t.Fatal(err)
	}
	if got := ix.TermCount(); got != before {
		t.Errorf("TermCount grew from %d to %d on repeated vocabulary", before, got)
	}
}
