package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Analyze tokenises and tags text, filling in lemma, tag and offsets for
// every token. It is the entry point equivalent to running the paper's
// Maco+/TreeTagger step. Each token is lower-cased exactly once into an
// interned form shared by the tagger and the lemmatiser (previously both
// lowered independently, doubling the dominant index-time allocation).
func Analyze(text string) []Token {
	toks := Tokenize(text)
	lowers := make([]string, len(toks))
	for i := range toks {
		lowers[i] = Intern(strings.ToLower(toks[i].Text))
	}
	tagTokens(toks, lowers)
	for i := range toks {
		toks[i].Lemma = lemmatizeLower(lowers[i], toks[i].Tag)
	}
	return toks
}

// tagTokens assigns a part-of-speech tag to every token in place.
// lowers[i] is the lower-cased form of toks[i].Text.
func tagTokens(toks []Token, lowers []string) {
	for i := range toks {
		toks[i].Tag = tagOne(toks, i, lowers[i])
	}
	// Contextual repair passes.
	for i := range toks {
		// A determiner is never followed directly by a verb reading for an
		// ambiguous word: "the record" → record/NN.
		if i > 0 && toks[i-1].Tag == TagDT && toks[i].Tag.IsVerb() &&
			toks[i].Tag != TagVBN && toks[i].Tag != TagVBG {
			toks[i].Tag = TagNN
		}
		// "to" followed by a verb stays TO; followed by an NP it acts as a
		// preposition for chunking purposes.
		if toks[i].Tag == TagTO && i+1 < len(toks) && !toks[i+1].Tag.IsVerb() {
			toks[i].Tag = TagIN
		}
	}
}

func tagOne(toks []Token, i int, lower string) Tag {
	text := toks[i].Text

	// The degree markers are tagged NN, matching the paper's Table 1
	// passage analysis ("8 CD 8 º NN º C NP c").
	if text == "º" || text == "°" {
		return TagNN
	}

	// Punctuation and symbols.
	r, _ := utf8.DecodeRuneInString(text)
	if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
		switch text {
		case ".", "?", "!":
			return TagSENT
		case ",", ":", ";", "(", ")", "\"", "'", "-", "–", "—", "/":
			return TagPunc
		default:
			return TagSYM // º, %, $, €...
		}
	}

	// Numbers and ordinals.
	if unicode.IsDigit(r) {
		return TagCD
	}
	switch lower {
	case "one", "two", "three", "four", "five", "six", "seven", "eight",
		"nine", "ten", "eleven", "twelve", "twenty", "thirty", "hundred",
		"thousand", "million":
		return TagCD
	}

	// Month and weekday names are proper nouns in the paper's traces.
	if _, ok := monthNames[lower]; ok {
		return TagNP
	}
	if dayNames[lower] {
		return TagNP
	}

	// Closed-class and frequent-word lexicon.
	if tag, ok := lexicon[lower]; ok {
		// Capitalised lexicon entries mid-sentence are usually part of a
		// proper name ("Barcelona Weather", "Clear skies" in the paper's
		// passage analysis): prefer NP when capitalised and not
		// sentence-initial and the lexicon tag is an open class.
		if isCapitalized(text) && !sentenceInitial(toks, i) && isOpenClass(tag) {
			return TagNP
		}
		return tag
	}

	// Single capital letters are unit/proper symbols: "C", "F".
	if len(text) == 1 && unicode.IsUpper(r) {
		return TagNP
	}

	// Capitalised unknown words are proper nouns. Sentence-initial words
	// get the benefit of the doubt only when they look name-like (no
	// lexicon entry and no recognisable suffix).
	if isCapitalized(text) {
		if !sentenceInitial(toks, i) {
			return TagNP
		}
		if suffixTag(lower) == TagNN {
			return TagNP
		}
	}

	return suffixTag(lower)
}

// suffixTag guesses the tag of an unknown lower-cased word from its suffix.
func suffixTag(lower string) Tag {
	switch {
	case strings.HasSuffix(lower, "ly"):
		return TagRB
	case strings.HasSuffix(lower, "ing") && len(lower) > 4:
		return TagVBG
	case strings.HasSuffix(lower, "ed") && len(lower) > 3:
		return TagVBD
	case strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ful"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "able"),
		strings.HasSuffix(lower, "ible"), strings.HasSuffix(lower, "ical"),
		strings.HasSuffix(lower, "less"), strings.HasSuffix(lower, "est"):
		return TagJJ
	case strings.HasSuffix(lower, "tion"), strings.HasSuffix(lower, "sion"),
		strings.HasSuffix(lower, "ment"), strings.HasSuffix(lower, "ness"),
		strings.HasSuffix(lower, "ity"), strings.HasSuffix(lower, "ism"),
		strings.HasSuffix(lower, "ure"), strings.HasSuffix(lower, "ance"),
		strings.HasSuffix(lower, "ence"):
		return TagNN
	case strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") &&
		!strings.HasSuffix(lower, "us") && !strings.HasSuffix(lower, "is") &&
		len(lower) > 3:
		return TagNNS
	default:
		return TagNN
	}
}

func isCapitalized(text string) bool {
	r, _ := utf8.DecodeRuneInString(text)
	return unicode.IsUpper(r)
}

func isOpenClass(t Tag) bool {
	switch t {
	case TagNN, TagNNS, TagJJ, TagRB, TagVB, TagVBZ, TagVBP, TagVBD, TagVBG, TagVBN:
		return true
	}
	return false
}

// sentenceInitial reports whether token i starts a sentence (is first, or
// preceded by sentence punctuation).
func sentenceInitial(toks []Token, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch toks[j].Text {
		case ".", "?", "!", ":", "\n":
			return true
		}
		// Any word token before us means we are not sentence-initial.
		r, _ := utf8.DecodeRuneInString(toks[j].Text)
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	return true
}
