package etl

import (
	"strings"
	"testing"
	"testing/quick"

	"dwqa/internal/dw"
	"dwqa/internal/mdm"
	"dwqa/internal/ontology"
	"dwqa/internal/qa"
	"dwqa/internal/sbparser"
)

func weatherSchema() *mdm.Schema {
	city := &mdm.DimensionClass{
		Name: "City",
		Levels: []*mdm.Level{
			{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
			{Name: "Country", Descriptor: "Name"},
		},
	}
	date := &mdm.DimensionClass{
		Name: "Date",
		Levels: []*mdm.Level{
			{Name: "Day", Descriptor: "Date", RollsUpTo: "Month"},
			{Name: "Month", Descriptor: "Name", RollsUpTo: "Year"},
			{Name: "Year", Descriptor: "Name"},
		},
	}
	weather := &mdm.FactClass{
		Name:     "Weather",
		Measures: []mdm.Measure{{Name: "TempC", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "City", Dimension: "City"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	return mdm.NewSchema("w").AddDimension(city).AddDimension(date).AddFact(weather)
}

func axiomOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	o := ontology.New("ax")
	for _, a := range []ontology.Axiom{
		{Concept: "Temperature", Kind: ontology.AxiomValueFormat, Units: []string{"ºC", "F"}},
		{Concept: "Temperature", Kind: ontology.AxiomValueRange, Unit: "C", Min: -90, Max: 60},
		{Concept: "Temperature", Kind: ontology.AxiomUnitConversion, FromUnit: "C", ToUnit: "F", Scale: 1.8, Offset: 32},
	} {
		if err := o.AddAxiom(a); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func newLoader(t *testing.T) (*Loader, *dw.Warehouse) {
	t.Helper()
	wh, err := dw.New(weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(axiomOntology(t), wh, "Weather", "City", "Date")
	if err != nil {
		t.Fatal(err)
	}
	return l, wh
}

func answer(val float64, unit, city string, y, m, d int) qa.Answer {
	return qa.Answer{
		Value: val, HasValue: true, Unit: unit, Location: city,
		Date: sbparser.DateRef{Year: y, Month: m, Day: d},
		URL:  "http://example.com/p", Score: 5,
	}
}

func TestNewLoaderValidation(t *testing.T) {
	wh, _ := dw.New(weatherSchema())
	if _, err := NewLoader(nil, nil, "Weather", "City", "Date"); err == nil {
		t.Error("nil warehouse accepted")
	}
	if _, err := NewLoader(nil, wh, "Ghost", "City", "Date"); err == nil {
		t.Error("unknown fact accepted")
	}
	if _, err := NewLoader(nil, wh, "Weather", "Ghost", "Date"); err == nil {
		t.Error("unknown city dim accepted")
	}
	if _, err := NewLoader(nil, wh, "Weather", "City", "Ghost"); err == nil {
		t.Error("unknown date dim accepted")
	}
	if _, err := NewLoader(nil, wh, "Weather", "City", "Date"); err != nil {
		t.Errorf("nil ontology should be allowed: %v", err)
	}
}

func TestNormalizeCelsius(t *testing.T) {
	l, _ := newLoader(t)
	rec, reason := l.Normalize(answer(8, "C", "Barcelona", 2004, 1, 31))
	if reason != "" {
		t.Fatalf("rejected: %s", reason)
	}
	if rec.TempC != 8 || rec.City != "Barcelona" || rec.DayKey() != "2004-01-31" {
		t.Errorf("record = %+v", rec)
	}
}

func TestNormalizeFahrenheitConversion(t *testing.T) {
	l, _ := newLoader(t)
	rec, reason := l.Normalize(answer(46.4, "F", "Barcelona", 2004, 1, 31))
	if reason != "" {
		t.Fatalf("rejected: %s", reason)
	}
	if rec.TempC < 7.999 || rec.TempC > 8.001 {
		t.Errorf("46.4F → %vC, want 8", rec.TempC)
	}
}

func TestNormalizeRejections(t *testing.T) {
	l, _ := newLoader(t)
	cases := []struct {
		ans    qa.Answer
		reason string
	}{
		{qa.Answer{Location: "X", Date: sbparser.DateRef{Year: 2004, Month: 1, Day: 1}}, "no numeric value"},
		{answer(8, "C", "", 2004, 1, 31), "no location"},
		{answer(8, "C", "Barcelona", 2004, 1, 0), "incomplete date"},
		{answer(8, "C", "Barcelona", 0, 1, 3), "incomplete date"},
		{answer(8, "K", "Barcelona", 2004, 1, 31), "unknown unit"},
		{answer(900, "C", "Barcelona", 2004, 1, 31), "out of range"},
		{answer(2000, "F", "Barcelona", 2004, 1, 31), "out of range"},
	}
	for _, c := range cases {
		_, reason := l.Normalize(c.ans)
		if !strings.Contains(reason, c.reason) {
			t.Errorf("Normalize(%+v) reason = %q, want %q", c.ans, reason, c.reason)
		}
	}
}

func TestNormalizeUnitlessAssumedCelsius(t *testing.T) {
	// The §4.2 robustness fallback: table pages yield unitless values.
	l, _ := newLoader(t)
	rec, reason := l.Normalize(answer(8, "", "Madrid", 2004, 1, 3))
	if reason != "" || rec.TempC != 8 {
		t.Errorf("unitless normalize = %+v, %q", rec, reason)
	}
}

func TestLoadCreatesHierarchyAndFacts(t *testing.T) {
	l, wh := newLoader(t)
	answers := []qa.Answer{
		answer(8, "C", "Barcelona", 2004, 1, 31),
		answer(7, "C", "Barcelona", 2004, 1, 30),
		answer(44.6, "F", "Madrid", 2004, 1, 30),
		answer(999, "C", "Madrid", 2004, 1, 29), // rejected
	}
	rep, err := l.Load(answers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 3 || rep.Normalized != 3 || len(rep.Rejections) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if wh.FactCount("Weather") != 3 {
		t.Errorf("weather rows = %d, want 3", wh.FactCount("Weather"))
	}
	// The date hierarchy was created with roll-up links.
	if parent, _ := wh.ParentName("Date", "Day", "2004-01-31"); parent != "2004-01" {
		t.Errorf("day parent = %q", parent)
	}
	if parent, _ := wh.ParentName("Date", "Month", "2004-01"); parent != "2004" {
		t.Errorf("month parent = %q", parent)
	}
	// The loaded values are queryable by month.
	res, err := wh.Execute(dw.Query{
		Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{{Role: "City", Level: "City"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range res.Rows {
		got[r.Groups[0]] = r.Value
	}
	if got["Barcelona"] != 7.5 {
		t.Errorf("avg Barcelona = %v, want 7.5", got["Barcelona"])
	}
	if got["Madrid"] < 6.999 || got["Madrid"] > 7.001 {
		t.Errorf("avg Madrid = %v, want 7", got["Madrid"])
	}
	if !strings.Contains(rep.String(), "3 loaded") {
		t.Errorf("report string = %s", rep.String())
	}
	reasons := rep.RejectionReasons()
	if len(reasons) != 1 || !strings.Contains(reasons[0], "out of range") {
		t.Errorf("rejection reasons = %v", reasons)
	}
}

func TestLoadIdempotentMembers(t *testing.T) {
	l, wh := newLoader(t)
	for i := 0; i < 3; i++ {
		if _, err := l.Load([]qa.Answer{answer(8, "C", "Barcelona", 2004, 1, 31)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := wh.MemberCount("Date", "Day"); n != 1 {
		t.Errorf("day members = %d, want 1", n)
	}
	if n := wh.MemberCount("City", "City"); n != 1 {
		t.Errorf("city members = %d, want 1", n)
	}
	if n := wh.FactCount("Weather"); n != 1 {
		t.Errorf("facts = %d, want 1 (duplicate loads are skipped)", n)
	}
}

func TestLoadSkipsDuplicatesInReport(t *testing.T) {
	l, wh := newLoader(t)
	rep, err := l.Load([]qa.Answer{
		answer(8, "C", "Barcelona", 2004, 1, 31),
		answer(8, "C", "Barcelona", 2004, 1, 31), // exact duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || rep.Skipped != 1 {
		t.Errorf("report = %+v, want 1 loaded + 1 skipped", rep)
	}
	if wh.FactCount("Weather") != 1 {
		t.Errorf("facts = %d, want 1", wh.FactCount("Weather"))
	}
	// A different source page for the same day IS a new record (the
	// paper keeps all provenance so the user can compare sources).
	ans := answer(9, "C", "Barcelona", 2004, 1, 31)
	ans.URL = "http://other.example/page"
	rep, err = l.Load([]qa.Answer{ans})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 {
		t.Errorf("different source should load: %+v", rep)
	}
	if wh.FactCount("Weather") != 2 {
		t.Errorf("facts = %d, want 2", wh.FactCount("Weather"))
	}
}

// Property: normalisation never produces an out-of-range Celsius record.
func TestNormalizeRangeProperty(t *testing.T) {
	l, _ := newLoader(t)
	f := func(val float64, useF bool) bool {
		if val != val || math_IsInf(val) {
			return true
		}
		unit := "C"
		if useF {
			unit = "F"
		}
		rec, reason := l.Normalize(answer(val, unit, "X", 2004, 1, 1))
		if reason != "" {
			return true // rejected is fine
		}
		return rec.TempC >= -90 && rec.TempC <= 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func math_IsInf(v float64) bool { return v > 1e300 || v < -1e300 }

func TestLoaderWithoutOntologyFallbacks(t *testing.T) {
	wh, _ := dw.New(weatherSchema())
	l, err := NewLoader(nil, wh, "Weather", "City", "Date")
	if err != nil {
		t.Fatal(err)
	}
	rec, reason := l.Normalize(answer(46.4, "F", "X", 2004, 1, 1))
	if reason != "" || rec.TempC < 7.99 || rec.TempC > 8.01 {
		t.Errorf("fallback F→C = %+v %q", rec, reason)
	}
	if _, reason := l.Normalize(answer(500, "C", "X", 2004, 1, 1)); !strings.Contains(reason, "out of range") {
		t.Errorf("fallback range check missed: %q", reason)
	}
}
