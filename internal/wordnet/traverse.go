package wordnet

// This file implements graph traversal over the hypernym hierarchy:
// ancestor paths, subsumption tests, transitive hyponym closures (the
// "semantic preference to the hyponyms of country" mechanism of AliQAn's
// question analysis) and similarity measures used by the WSD substrate.

// hypernymsOf returns the direct hypernyms of a synset, treating
// instance-of like is-a for traversal purposes.
func (w *WordNet) hypernymsOf(id string) []string {
	s := w.Synset(id)
	if s == nil {
		return nil
	}
	out := append([]string(nil), s.Related(Hypernym)...)
	out = append(out, s.Related(InstanceHypernym)...)
	return out
}

// HypernymPaths returns every path from the synset up to a root, each path
// starting at id and ending at the root. Cycles (which AddSynset/Relate do
// not prevent structurally) are broken by visited tracking.
func (w *WordNet) HypernymPaths(id string) [][]string {
	if w.Synset(id) == nil {
		return nil
	}
	var paths [][]string
	var walk func(cur string, path []string, seen map[string]bool)
	walk = func(cur string, path []string, seen map[string]bool) {
		path = append(path, cur)
		parents := w.hypernymsOf(cur)
		next := parents[:0:0]
		for _, p := range parents {
			if !seen[p] {
				next = append(next, p)
			}
		}
		if len(next) == 0 {
			paths = append(paths, append([]string(nil), path...))
			return
		}
		for _, p := range next {
			seen[p] = true
			walk(p, path, seen)
			delete(seen, p)
		}
	}
	walk(id, nil, map[string]bool{id: true})
	return paths
}

// Depth returns the length of the shortest hypernym path from the synset
// to a root (root = 0). Unknown synsets return -1.
func (w *WordNet) Depth(id string) int {
	paths := w.HypernymPaths(id)
	if len(paths) == 0 {
		return -1
	}
	best := -1
	for _, p := range paths {
		if best == -1 || len(p)-1 < best {
			best = len(p) - 1
		}
	}
	return best
}

// Ancestors returns the set of all (transitive) hypernyms of the synset,
// excluding itself.
func (w *WordNet) Ancestors(id string) map[string]bool {
	out := make(map[string]bool)
	var walk func(cur string)
	walk = func(cur string) {
		for _, p := range w.hypernymsOf(cur) {
			if !out[p] {
				out[p] = true
				walk(p)
			}
		}
	}
	walk(id)
	return out
}

// IsA reports whether synset id is (transitively) a kind/instance of the
// synset ancestor. A synset IsA itself.
func (w *WordNet) IsA(id, ancestor string) bool {
	if id == ancestor {
		return w.Synset(id) != nil
	}
	return w.Ancestors(id)[ancestor]
}

// LemmaIsA reports whether any sense of lemma (as pos) is subsumed by any
// sense of ancestorLemma. This is the subsumption test question analysis
// uses: "a proper noun ... with a semantic preference to the hyponyms of
// 'country'".
func (w *WordNet) LemmaIsA(lemma string, pos POS, ancestorLemma string) bool {
	ancestors := w.Lookup(ancestorLemma, pos)
	if len(ancestors) == 0 {
		return false
	}
	for _, s := range w.Lookup(lemma, pos) {
		for _, a := range ancestors {
			if w.IsA(s.ID, a.ID) {
				return true
			}
		}
	}
	return false
}

// HyponymClosure returns all transitive hyponyms (including instances) of
// the synset, excluding itself.
func (w *WordNet) HyponymClosure(id string) []string {
	seen := map[string]bool{}
	var order []string
	var walk func(cur string)
	walk = func(cur string) {
		s := w.Synset(cur)
		if s == nil {
			return
		}
		kids := append([]string(nil), s.Related(Hyponym)...)
		kids = append(kids, s.Related(InstanceHyponym)...)
		for _, k := range kids {
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
				walk(k)
			}
		}
	}
	walk(id)
	return order
}

// LCS returns the lowest common subsumer of two synsets (the deepest
// shared ancestor) and its depth, or ("", -1) when the synsets share no
// ancestor.
func (w *WordNet) LCS(a, b string) (string, int) {
	if w.Synset(a) == nil || w.Synset(b) == nil {
		return "", -1
	}
	ancA := w.Ancestors(a)
	ancA[a] = true
	ancB := w.Ancestors(b)
	ancB[b] = true
	best, bestDepth := "", -1
	for id := range ancA {
		if !ancB[id] {
			continue
		}
		if d := w.Depth(id); d > bestDepth {
			best, bestDepth = id, d
		}
	}
	return best, bestDepth
}

// PathSimilarity returns 1/(1+shortestPathLength) between two synsets via
// their LCS, in (0,1]; 0 when unrelated.
func (w *WordNet) PathSimilarity(a, b string) float64 {
	lcs, _ := w.LCS(a, b)
	if lcs == "" {
		return 0
	}
	da := w.minDistanceTo(a, lcs)
	db := w.minDistanceTo(b, lcs)
	if da < 0 || db < 0 {
		return 0
	}
	return 1.0 / float64(1+da+db)
}

// WuPalmer returns the Wu-Palmer similarity 2*depth(lcs) /
// (depth(a)+depth(b)); 0 when unrelated.
func (w *WordNet) WuPalmer(a, b string) float64 {
	lcs, dl := w.LCS(a, b)
	if lcs == "" {
		return 0
	}
	da, db := w.Depth(a), w.Depth(b)
	if da+db == 0 {
		return 1
	}
	return 2 * float64(dl) / float64(da+db)
}

// minDistanceTo returns the minimum number of hypernym edges from id up to
// ancestor, or -1 when unreachable.
func (w *WordNet) minDistanceTo(id, ancestor string) int {
	type item struct {
		id   string
		dist int
	}
	queue := []item{{id, 0}}
	seen := map[string]bool{id: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.id == ancestor {
			return cur.dist
		}
		for _, p := range w.hypernymsOf(cur.id) {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, item{p, cur.dist + 1})
			}
		}
	}
	return -1
}
