package qa

import (
	"strings"

	"dwqa/internal/nlp"
	"dwqa/internal/sbparser"
	"dwqa/internal/wordnet"
)

// QuestionPattern is a syntactic-semantic question pattern: it matches the
// wh-word, the verbal head and the focus noun of a question (the latter
// through WordNet synonymy/hyponymy) and fixes the expected answer type.
// The paper's example: the CLEF question "Which country did Iraq invade in
// 1990?" is matched by the pattern "[WHICH] [synonym of COUNTRY] [...]".
type QuestionPattern struct {
	// Name renders in traces, e.g. "[WHAT] [to be] [synonym of weather | temperature] …".
	Name string
	// Wh lists acceptable wh-word lemmas ("what", "which", ...); empty
	// accepts any (or none, for keyword-style questions).
	Wh []string
	// VerbLemmas lists acceptable verbal-head lemmas; empty accepts any.
	VerbLemmas []string
	// FocusLemmas constrains the focus noun: the head of the focus NP must
	// equal, be a synonym of, or be a hyponym of one of these lemmas.
	// Empty accepts any focus.
	FocusLemmas []string
	// Category is the expected answer type; when empty it is derived from
	// the focus head by ClassifyFocus.
	Category Category
	// DropFocus excludes the focus SB from the main SBs passed to the
	// passage retrieval module — the paper: "the SB country is not used in
	// Module 2 because it is not usual to find a country description in
	// the form of 'the country of Kuwait'".
	DropFocus bool
	// UnitConcept names the ontology concept whose value-format axioms
	// describe the answer's unit system (Step 4: "Temperature").
	UnitConcept string
	// Priority orders pattern matching; higher wins. Tuned (Step 4)
	// patterns outrank the defaults.
	Priority int
}

// matchFocus reports whether the focus head satisfies the pattern under
// the lexical database (nil-safe).
func (p *QuestionPattern) matchFocus(wn *wordnet.WordNet, focusHead string) bool {
	if len(p.FocusLemmas) == 0 {
		return true
	}
	if focusHead == "" {
		return false
	}
	for _, want := range p.FocusLemmas {
		if focusHead == want {
			return true
		}
		if wn == nil {
			continue
		}
		// Synonym: they share a synset.
		for _, s := range wn.Lookup(focusHead, wordnet.Noun) {
			if s.HasLemma(want) {
				return true
			}
		}
		// Hyponym: focus is-a want.
		if wn.LemmaIsA(focusHead, wordnet.Noun, want) {
			return true
		}
	}
	return false
}

// matchWh reports whether the wh-word satisfies the pattern.
func (p *QuestionPattern) matchWh(wh string) bool {
	if len(p.Wh) == 0 {
		return true
	}
	for _, w := range p.Wh {
		if strings.EqualFold(w, wh) {
			return true
		}
	}
	return false
}

// matchVerb reports whether the verbal head satisfies the pattern.
func (p *QuestionPattern) matchVerb(verbLemmas []string) bool {
	if len(p.VerbLemmas) == 0 {
		return true
	}
	for _, want := range p.VerbLemmas {
		for _, have := range verbLemmas {
			if want == have {
				return true
			}
		}
	}
	return false
}

// DefaultPatterns returns the base pattern set of the untuned system. It
// covers the taxonomy generically; it does not know about weather —
// Step 4 of the integration adds those patterns (see WeatherPatterns).
func DefaultPatterns() []QuestionPattern {
	return []QuestionPattern{
		{
			Name:      "[WHO] [...]",
			Wh:        []string{"who", "whom"},
			Category:  CatPerson,
			DropFocus: false,
			Priority:  10,
		},
		{
			Name:      "[WHEN] [...]",
			Wh:        []string{"when"},
			Category:  CatTempDate,
			DropFocus: false,
			Priority:  10,
		},
		{
			Name:      "[WHERE] [...]",
			Wh:        []string{"where"},
			Category:  CatPlace,
			DropFocus: false,
			Priority:  10,
		},
		{
			// "How many/much ..." — numerical quantity.
			Name:     "[HOW] [many|much] [...]",
			Wh:       []string{"how"},
			Category: CatNumQuantity,
			Priority: 10,
		},
		{
			// "[WHICH|WHAT] [synonym of X] ..." — the generic typed-focus
			// pattern; the category derives from the focus head via the
			// taxonomy, and the focus SB is dropped from retrieval.
			Name:      "[WHICH|WHAT] [synonym of FOCUS] [...]",
			Wh:        []string{"which", "what"},
			DropFocus: true,
			Priority:  5,
		},
		{
			// Fallback: anything else is treated as a definition request.
			Name:     "[*] (definition)",
			Category: CatDefinition,
			Priority: 0,
		},
	}
}

// WeatherPatterns returns the Step 4 tuning: the new question patterns for
// the weather queries of the Last Minute Sales scenario. The expected
// answer type is "a number lexical type followed by the unit-measure (ºC
// or F)", realised through the Temperature concept's value-format axioms;
// the weather/temperature focus SB is dropped from retrieval "because it
// is not usual that the noun phrases 'weather' and 'temperature' appear
// next to the temperature figures in a document".
func WeatherPatterns() []QuestionPattern {
	return []QuestionPattern{
		{
			Name:        "[WHAT] [to be] [synonym of weather | temperature] …",
			Wh:          []string{"what"},
			VerbLemmas:  []string{"be"},
			FocusLemmas: []string{"weather", "temperature"},
			Category:    CatNumMeasure,
			DropFocus:   true,
			UnitConcept: "Temperature",
			Priority:    20,
		},
		{
			// "How hot/cold is it in X?" variant.
			Name:        "[HOW] [hot|cold|warm] …",
			Wh:          []string{"how"},
			FocusLemmas: nil,
			Category:    CatNumMeasure,
			DropFocus:   false,
			UnitConcept: "Temperature",
			Priority:    15,
		},
	}
}

// questionFacts holds the surface features pattern matching consumes.
type questionFacts struct {
	wh         string           // lemma of the leading wh-word ("" when none)
	verbLemmas []string         // lemmas of the first verbal chunk
	focus      *sbparser.Block  // first NP after the wh-word / verbal head
	focusHead  string           // lemma of the focus head noun
	blocks     []sbparser.Block // all blocks of the question
	howAdj     string           // adjective following "how" ("hot", "many")
}

// extractFacts derives the matching features from an analysed question.
func extractFacts(toks []nlp.Token, blocks []sbparser.Block) questionFacts {
	f := questionFacts{blocks: blocks}
	for i, t := range toks {
		if t.Tag == nlp.TagWP || t.Tag == nlp.TagWRB {
			f.wh = t.Lemma
			if i+1 < len(toks) && (toks[i+1].Tag == nlp.TagJJ || toks[i+1].Lemma == "many" || toks[i+1].Lemma == "much") {
				f.howAdj = toks[i+1].Lemma
			}
			break
		}
	}
	for i := range blocks {
		if blocks[i].Type == sbparser.VBC {
			for _, t := range blocks[i].Tokens {
				f.verbLemmas = append(f.verbLemmas, t.Lemma)
			}
			break
		}
	}
	// Focus: the first NP in the question (before or after the verb, not
	// inside a PP): "which country ..." and "what is the weather ..." both
	// yield the right block.
	for i := range blocks {
		if blocks[i].Type == sbparser.NP {
			f.focus = &blocks[i]
			f.focusHead = blocks[i].HeadNoun().Lemma
			break
		}
	}
	return f
}

// hotColdLemmas accepted by the "how hot" pattern.
var hotColdLemmas = map[string]bool{"hot": true, "cold": true, "warm": true, "cool": true}

// match applies one pattern to the question facts.
func (p *QuestionPattern) match(wn *wordnet.WordNet, f questionFacts) bool {
	if !p.matchWh(f.wh) {
		return false
	}
	if !p.matchVerb(f.verbLemmas) {
		return false
	}
	if strings.HasPrefix(p.Name, "[HOW] [hot") && !hotColdLemmas[f.howAdj] {
		return false
	}
	if strings.HasPrefix(p.Name, "[HOW] [many") && f.howAdj != "many" && f.howAdj != "much" {
		return false
	}
	return p.matchFocus(wn, f.focusHead)
}
