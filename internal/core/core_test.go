package core

import (
	"fmt"
	"strings"
	"testing"

	"dwqa/internal/bi"
	"dwqa/internal/dw"
	"dwqa/internal/qa"
)

// newPipeline builds the default pipeline (no steps run).
func newPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	return p
}

// runAll builds and runs the full five-step pipeline once per test that
// needs it.
func runAll(t *testing.T) *Pipeline {
	t.Helper()
	p := newPipeline(t)
	if err := p.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return p
}

func TestFigure1SchemaValid(t *testing.T) {
	s := Figure1Schema()
	if err := s.Validate(); err != nil {
		t.Fatalf("Figure 1 schema invalid: %v", err)
	}
	f := s.Fact("LastMinuteSales")
	if f == nil || f.Measure("Price") == nil || f.Measure("Miles") == nil {
		t.Error("Last Minute Sales fact incomplete")
	}
	if f.Ref("Departure") == nil || f.Ref("Destination") == nil {
		t.Error("Airport must play both Departure and Destination roles")
	}
	if got := strings.Join(s.Dimension("Airport").PathTo("Country"), ">"); got != "Airport>City>Country" {
		t.Errorf("airport hierarchy = %s", got)
	}
	desc := s.Describe()
	for _, want := range []string{"Fact LastMinuteSales", "measure Price", "Dimension Airport"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}

func TestScenarioPopulation(t *testing.T) {
	p := newPipeline(t)
	if p.Warehouse.FactCount("LastMinuteSales") < 500 {
		t.Errorf("sales rows = %d, want a real history", p.Warehouse.FactCount("LastMinuteSales"))
	}
	if p.Warehouse.FactCount("Weather") != 0 {
		t.Error("weather fact must start empty (Step 5 fills it)")
	}
	if n := p.Warehouse.MemberCount("Airport", "Airport"); n != len(ScenarioAirports) {
		t.Errorf("airport members = %d, want %d", n, len(ScenarioAirports))
	}
	// The sales history is deterministic.
	p2 := newPipeline(t)
	if p.Warehouse.FactCount("LastMinuteSales") != p2.Warehouse.FactCount("LastMinuteSales") {
		t.Error("scenario population not deterministic")
	}
}

func TestStepOrderEnforced(t *testing.T) {
	p := newPipeline(t)
	if err := p.Step2FeedOntology(); err == nil {
		t.Error("step 2 before step 1 accepted")
	}
	if err := p.Step3MergeUpperOntology(); err == nil {
		t.Error("step 3 before step 2 accepted")
	}
	if err := p.Step4TuneQA(); err == nil {
		t.Error("step 4 before step 3 accepted")
	}
	if _, err := p.Step5FeedWarehouse(nil); err == nil {
		t.Error("step 5 before step 4 accepted")
	}
	if _, err := p.Ask("What is the temperature in Barcelona?"); err == nil {
		t.Error("Ask before step 4 accepted")
	}
}

func TestStep1Ontology(t *testing.T) {
	p := newPipeline(t)
	if err := p.Step1DeriveOntology(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Airport", "City", "Country", "Day", "Month", "Year", "Customer", "LastMinuteSales", "Weather"} {
		if p.Ontology.Concept(want) == nil {
			t.Errorf("ontology missing concept %q", want)
		}
	}
}

func TestStep2Instances(t *testing.T) {
	p := newPipeline(t)
	if err := p.Step1DeriveOntology(); err != nil {
		t.Fatal(err)
	}
	if err := p.Step2FeedOntology(); err != nil {
		t.Fatal(err)
	}
	concept, inst := p.Ontology.FindInstance("El Prat")
	if concept != "Airport" || inst == nil {
		t.Fatalf("El Prat not fed: %q %v", concept, inst)
	}
	if inst.Properties["locatedIn"] != "Barcelona" {
		t.Errorf("El Prat locatedIn = %q", inst.Properties["locatedIn"])
	}
	// The JFK alias arrives from the DW's Alias attribute.
	concept, inst = p.Ontology.FindInstance("Kennedy International Airport")
	if concept != "Airport" || inst == nil || inst.Name != "JFK" {
		t.Errorf("JFK alias not fed: %q %v", concept, inst)
	}
	if _, inst := p.Ontology.FindInstance("Barcelona"); inst == nil {
		t.Error("cities not fed")
	}
}

func TestStep3Merge(t *testing.T) {
	p := newPipeline(t)
	if err := p.Step1DeriveOntology(); err != nil {
		t.Fatal(err)
	}
	if err := p.Step2FeedOntology(); err != nil {
		t.Fatal(err)
	}
	if err := p.Step3MergeUpperOntology(); err != nil {
		t.Fatal(err)
	}
	if p.MergeReport == nil || len(p.MergeReport.Mapping) == 0 {
		t.Fatal("no merge report")
	}
	if !p.Lexicon.HasLemma("el prat") {
		t.Error("lexicon not enriched")
	}
}

func TestFullPipelineTable1(t *testing.T) {
	p := runAll(t)
	tr, err := p.Table1("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.QuestionPattern, "weather | temperature") {
		t.Errorf("pattern = %s", tr.QuestionPattern)
	}
	if tr.ExpectedAnswerType != "Number + [ºC | F]" {
		t.Errorf("expected answer type = %s", tr.ExpectedAnswerType)
	}
	if !strings.Contains(strings.Join(tr.MainSBs, " "), "Barcelona") {
		t.Errorf("main SBs missing the ontology expansion: %v", tr.MainSBs)
	}
	if !strings.Contains(tr.ExtractedAnswer, "ºC") || !strings.Contains(tr.ExtractedAnswer, "Barcelona") {
		t.Errorf("extracted answer = %s", tr.ExtractedAnswer)
	}
	out := tr.Format()
	if !strings.Contains(out, "Extracted answer") {
		t.Error("trace format incomplete")
	}
}

func TestStep5FeedsWarehouse(t *testing.T) {
	p := runAll(t)
	if p.LoadReport == nil || p.LoadReport.Loaded == 0 {
		t.Fatal("step 5 loaded nothing")
	}
	// Roughly: 6 corpus cities × 3 months × ~30 days, bounded by what the
	// passage budget reaches and table-page losses.
	if p.Warehouse.FactCount("Weather") < 200 {
		t.Errorf("weather rows = %d, want a substantial feed", p.Warehouse.FactCount("Weather"))
	}
	// Loaded values must match the corpus gold for prose-covered months.
	res, err := p.Warehouse.Execute(dw.Query{
		Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{{Role: "City", Level: "City"}, {Role: "Date", Level: "Day"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checked, correct := 0, 0
	for _, row := range res.Rows {
		city, day := row.Groups[0], row.Groups[1]
		var y, m, d int
		if _, err := fmt.Sscanf(day, "%d-%d-%d", &y, &m, &d); err != nil {
			t.Fatalf("bad day key %q: %v", day, err)
		}
		gold, ok := p.Corpus.GoldHigh(city, y, m, d)
		if !ok {
			continue
		}
		checked++
		if row.Value > gold-0.05 && row.Value < gold+0.05 {
			correct++
		}
	}
	if checked == 0 {
		t.Fatal("no loaded record matched the gold index")
	}
	if ratio := float64(correct) / float64(checked); ratio < 0.8 {
		t.Errorf("feed accuracy = %.2f (%d/%d), want >= 0.8", ratio, correct, checked)
	}
}

func TestBIAnalysisFindsCorrelation(t *testing.T) {
	p := runAll(t)
	rep, err := bi.Analyze(p.Warehouse, bi.DefaultJoinSpec(), bi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The demand model sells more tickets to warmer destinations: the
	// analysis over QA-fed weather must recover a clear positive
	// correlation (the paper's motivating result).
	if rep.Correlation < 0.3 {
		t.Errorf("correlation = %.3f, want clearly positive", rep.Correlation)
	}
	if rep.BestBin == nil {
		t.Fatal("no best temperature range identified")
	}
	if len(rep.Recommendations) == 0 {
		t.Error("no recommendations derived")
	}
	out := rep.Format()
	if !strings.Contains(out, "Pearson") || !strings.Contains(out, "ºC") {
		t.Errorf("report format incomplete:\n%s", out)
	}
}

func TestOntologyAblationPipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QA.UseOntology = false
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Without the merge, the lexicon must not know the airports.
	if p.Lexicon.LemmaIsA("el prat", "n", "airport") {
		t.Error("ablated pipeline enriched the lexicon")
	}
	res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil && res.Best.Location == "Barcelona" {
		t.Error("ablated pipeline should not resolve El Prat to Barcelona")
	}
}

func TestWeatherQuestionsWorkload(t *testing.T) {
	p := newPipeline(t)
	qs := p.WeatherQuestions()
	if len(qs) != len(ScenarioAirports)*len(p.Config.Months) {
		t.Errorf("workload = %d questions", len(qs))
	}
	for _, q := range qs {
		if !strings.HasPrefix(q, "What is the weather like in ") {
			t.Errorf("bad question %q", q)
		}
	}
}

func TestSummary(t *testing.T) {
	p := runAll(t)
	s := p.Summary()
	for _, want := range []string{"warehouse:", "corpus:", "ontology:", "merge:", "etl:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCLEFThroughPipeline(t *testing.T) {
	p := runAll(t)
	res, err := p.Ask("Which country did Iraq invade in 1990?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Text != "Kuwait" {
		t.Errorf("CLEF answer = %+v", res.Best)
	}
}

func TestMilesBetween(t *testing.T) {
	if milesBetween("Barcelona", "Madrid") != milesBetween("Madrid", "Barcelona") {
		t.Error("distance not symmetric")
	}
	if milesBetween("Barcelona", "Barcelona") != 0 {
		t.Error("self distance not zero")
	}
	if milesBetween("Nowhere", "Elsewhere") != 1000 {
		t.Error("unknown route fallback broken")
	}
}

func TestTemperatureAxioms(t *testing.T) {
	axs := TemperatureAxioms()
	if len(axs) != 3 {
		t.Fatalf("axioms = %d, want 3 (format, range, conversion)", len(axs))
	}
}

var sink *qa.Result

func BenchmarkFullPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := NewPipeline(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := p.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAskThroughPipeline(b *testing.B) {
	p, err := NewPipeline(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
		if err != nil {
			b.Fatal(err)
		}
		sink = res
	}
}
