// Package ir implements the passage retrieval substrate of the
// reproduction, modelled on the IR-n system (reference [9] of the paper)
// that AliQAn uses to filter the quantity of text the QA process analyses.
//
// IR-n's defining property is reproduced: documents are split into
// passages formed by a fixed number of consecutive sentences (the paper's
// footnote 6: "the IR-n system ... returns the most relevant passage
// formed by eight consecutive sentences"), windows overlap, and passages
// are ranked by query-term weights. A document-level retrieval mode serves
// as the classical-IR baseline for the QA-vs-IR experiment: it returns
// whole documents, which is exactly the shortcoming the paper attributes
// to IR systems.
package ir

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dwqa/internal/nlp"
)

// DefaultPassageSize is the number of consecutive sentences per passage.
const DefaultPassageSize = 8

// Document is an indexable unit of text with provenance.
type Document struct {
	URL  string
	Text string
}

// Passage is a retrieval result: a window of consecutive sentences from
// one document.
type Passage struct {
	DocURL    string
	DocIndex  int
	SentStart int // first sentence index in the document
	SentEnd   int // one past the last sentence index
	Text      string
	Score     float64
	Sentences []nlp.Sentence // analysed sentences of the window
}

// DocResult is a document-level retrieval result (the IR baseline mode).
type DocResult struct {
	URL      string
	DocIndex int
	Score    float64
	Text     string
}

// posting records one passage containing a term.
type posting struct {
	passage int
	tf      int
}

// passageEntry is the stored form of a passage.
type passageEntry struct {
	doc        int
	sentStart  int
	sentEnd    int
	sentOffset int // index into the document's sentence slice
}

// Index is an inverted passage index. Safe for concurrent searches after
// construction; adding documents takes the write lock.
type Index struct {
	passageSize int
	stride      int

	mu        sync.RWMutex
	docs      []Document
	docSents  [][]nlp.Sentence
	passages  []passageEntry
	postings  map[string][]posting // lemma → passages containing it
	docDF     map[string]int       // lemma → number of documents containing it
	docTF     []map[string]int     // per-document term frequencies
	docLength []int
}

// Option configures an Index.
type Option func(*Index)

// WithPassageSize sets the sentence-window size (minimum 1).
func WithPassageSize(n int) Option {
	return func(ix *Index) {
		if n >= 1 {
			ix.passageSize = n
		}
	}
}

// WithStride sets the window stride; smaller strides mean more overlap.
func WithStride(n int) Option {
	return func(ix *Index) {
		if n >= 1 {
			ix.stride = n
		}
	}
}

// NewIndex returns an empty index with the given options. The default
// window is 8 sentences with a half-window stride.
func NewIndex(opts ...Option) *Index {
	ix := &Index{
		passageSize: DefaultPassageSize,
		postings:    make(map[string][]posting),
		docDF:       make(map[string]int),
	}
	for _, o := range opts {
		o(ix)
	}
	if ix.stride == 0 {
		ix.stride = ix.passageSize / 2
		if ix.stride == 0 {
			ix.stride = 1
		}
	}
	// A stride beyond the window would leave sentences uncovered.
	if ix.stride > ix.passageSize {
		ix.stride = ix.passageSize
	}
	return ix
}

// Add indexes a document: sentence split, lemmatisation, stopword removal,
// passage windowing. Empty documents are rejected.
func (ix *Index) Add(doc Document) error {
	if strings.TrimSpace(doc.Text) == "" {
		return fmt.Errorf("ir: empty document %q", doc.URL)
	}
	sents := nlp.SplitSentences(doc.Text)
	if len(sents) == 0 {
		return fmt.Errorf("ir: no sentences in document %q", doc.URL)
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()

	docIdx := len(ix.docs)
	ix.docs = append(ix.docs, doc)
	ix.docSents = append(ix.docSents, sents)

	// Document-level stats for the IR baseline.
	dtf := map[string]int{}
	length := 0
	for _, s := range sents {
		for _, lemma := range s.ContentLemmas() {
			dtf[lemma]++
			length++
		}
	}
	ix.docTF = append(ix.docTF, dtf)
	ix.docLength = append(ix.docLength, length)
	for lemma := range dtf {
		ix.docDF[lemma]++
	}

	// Passage windows.
	for start := 0; start < len(sents); start += ix.stride {
		end := start + ix.passageSize
		if end > len(sents) {
			end = len(sents)
		}
		pid := len(ix.passages)
		ix.passages = append(ix.passages, passageEntry{
			doc: docIdx, sentStart: start, sentEnd: end, sentOffset: start,
		})
		ptf := map[string]int{}
		for _, s := range sents[start:end] {
			for _, lemma := range s.ContentLemmas() {
				ptf[lemma]++
			}
		}
		for lemma, tf := range ptf {
			ix.postings[lemma] = append(ix.postings[lemma], posting{pid, tf})
		}
		if end == len(sents) {
			break
		}
	}
	return nil
}

// AddAll indexes a batch of documents, collecting per-document errors.
func (ix *Index) AddAll(docs []Document) error {
	var errs []string
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("ir: %d documents failed: %s", len(errs), strings.Join(errs, "; "))
	}
	return nil
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// PassageCount returns the number of indexed passages.
func (ix *Index) PassageCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.passages)
}

// DF returns the number of documents containing the lemma.
func (ix *Index) DF(lemma string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docDF[lemma]
}

// QueryTerms analyses free text into content lemmas for retrieval —
// stop-words are discarded, matching the paper's description of the IR
// side ("IR usually receives just a set of keywords ... discarding
// stop-words").
func QueryTerms(text string) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range nlp.Analyze(text) {
		if t.IsContentWord() && !nlp.IsStopword(t.Lemma) && !seen[t.Lemma] {
			seen[t.Lemma] = true
			out = append(out, t.Lemma)
		}
	}
	return out
}

// Search returns the top-k passages for the query terms, ranked by the
// IR-n style weight sum((1+log tf) * idf). Deterministic: ties break by
// document then passage position. Scores accumulate in a dense slice
// indexed by passage id and the ranking uses a bounded top-k heap:
// O(passages) to allocate and sweep the accumulator plus O(postings +
// matches·log k) to score and rank — the linear term trades for zero
// per-candidate map overhead and is the right trade while queries match
// a large fraction of the index (revisit if selective queries over very
// large indexes become the workload).
func (ix *Index) Search(terms []string, k int) []Passage {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.passages) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	scores := make([]float64, len(ix.passages))
	nPass := float64(len(ix.passages))
	seen := map[string]bool{}
	for _, term := range terms {
		term = strings.ToLower(term)
		if seen[term] {
			continue
		}
		seen[term] = true
		posts := ix.postings[term]
		if len(posts) == 0 {
			continue
		}
		idf := math.Log(1 + nPass/float64(len(posts)))
		for _, p := range posts {
			scores[p.passage] += (1 + math.Log(float64(p.tf))) * idf
		}
	}
	ids := selectTopK(scores, k)
	out := make([]Passage, 0, len(ids))
	for _, id := range ids {
		out = append(out, ix.materializeLocked(int(id), scores[id]))
	}
	return out
}

// materializeLocked builds the Passage value for a passage ID.
func (ix *Index) materializeLocked(id int, score float64) Passage {
	pe := ix.passages[id]
	sents := ix.docSents[pe.doc][pe.sentStart:pe.sentEnd]
	doc := ix.docs[pe.doc]
	start := sents[0].Start
	end := sents[len(sents)-1].End
	return Passage{
		DocURL:    doc.URL,
		DocIndex:  pe.doc,
		SentStart: pe.sentStart,
		SentEnd:   pe.sentEnd,
		Text:      doc.Text[start:end],
		Score:     score,
		Sentences: sents,
	}
}

// SearchDocuments is the classical-IR baseline: rank whole documents by
// tf-idf and return them in full. The caller (a user, per the paper) "has
// to further search for the requested information" inside them.
func (ix *Index) SearchDocuments(terms []string, k int) []DocResult {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	nDocs := float64(len(ix.docs))
	scores := make([]float64, len(ix.docs))
	seen := map[string]bool{}
	for _, term := range terms {
		term = strings.ToLower(term)
		if seen[term] {
			continue
		}
		seen[term] = true
		df := ix.docDF[term]
		if df == 0 {
			continue
		}
		idf := math.Log(1 + nDocs/float64(df))
		for d, dtf := range ix.docTF {
			if tf := dtf[term]; tf > 0 {
				scores[d] += (1 + math.Log(float64(tf))) * idf
			}
		}
	}
	ids := selectTopK(scores, k)
	out := make([]DocResult, 0, len(ids))
	for _, id := range ids {
		out = append(out, DocResult{
			URL: ix.docs[id].URL, DocIndex: int(id),
			Score: scores[id], Text: ix.docs[id].Text,
		})
	}
	return out
}

// AllPassages materializes every passage (score zero) — used by the
// QA-without-IR-filter ablation, which must analyse the whole collection.
func (ix *Index) AllPassages() []Passage {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Passage, 0, len(ix.passages))
	for id := range ix.passages {
		out = append(out, ix.materializeLocked(id, 0))
	}
	return out
}

// Document returns the indexed document at the given index.
func (ix *Index) Document(i int) (Document, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if i < 0 || i >= len(ix.docs) {
		return Document{}, fmt.Errorf("ir: document index %d out of range", i)
	}
	return ix.docs[i], nil
}
