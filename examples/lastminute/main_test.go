package main

import "testing"

// TestMainSmoke runs the paper's narrated end-to-end example: the five
// integration steps plus the closing analysis queries. The example is
// the repo's front door, so it must keep executing as the API evolves.
func TestMainSmoke(t *testing.T) {
	main()
}
