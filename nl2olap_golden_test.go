package dwqa_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dwqa"
	"dwqa/internal/dw"
)

// goldenAnalytic is the analytic question→plan corpus: every question
// must route to the OLAP path, and its result rows must be byte-identical
// to the hand-written dw.Query equivalent. The rendered plans and tables
// are pinned in testdata/nl2olap.golden (regenerate with -update).
var goldenAnalytic = []struct {
	question string
	hand     dw.Query
}{
	{
		"What is the average temperature in Barcelona by month?",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Month"}},
			Filters: []dw.Filter{{Role: "City", Level: "City", Values: []string{"Barcelona"}}}},
	},
	{
		"Total last-minute revenue per destination city in January",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "City"}},
			Filters: []dw.Filter{{Role: "Date", Level: "Month", Values: []string{"2004-01"}}}},
	},
	{
		"How many tickets were sold to Barcelona in January of 2004?",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			Filters: []dw.Filter{
				{Role: "Date", Level: "Month", Values: []string{"2004-01"}},
				{Role: "Destination", Level: "City", Values: []string{"Barcelona"}}}},
	},
	{
		"What is the maximum temperature in El Prat in February of 2004?",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Max,
			Filters: []dw.Filter{
				{Role: "City", Level: "City", Values: []string{"Barcelona"}},
				{Role: "Date", Level: "Month", Values: []string{"2004-02"}}}},
	},
	{
		"Average price by destination country and month",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "Country"}, {Role: "Date", Level: "Month"}}},
	},
	{
		"How many sales from Madrid to New York in 2004?",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			Filters: []dw.Filter{
				{Role: "Date", Level: "Year", Values: []string{"2004"}},
				{Role: "Departure", Level: "City", Values: []string{"Madrid"}},
				{Role: "Destination", Level: "City", Values: []string{"New York"}}}},
	},
	{
		"Number of flights per departure airport",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			GroupBy: []dw.LevelSel{{Role: "Departure", Level: "Airport"}}},
	},
	{
		"Total miles flown from Barajas by month",
		dw.Query{Fact: "LastMinuteSales", Measure: "Miles", Agg: dw.Sum,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Month"}},
			Filters: []dw.Filter{{Role: "Departure", Level: "Airport", Values: []string{"Barajas"}}}},
	},
	{
		"Average fare for each customer segment",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "Customer", Level: "Segment"}}},
	},
	{
		"count of weather observations by city",
		dw.Query{Fact: "Weather", Agg: dw.Count,
			GroupBy: []dw.LevelSel{{Role: "City", Level: "City"}}},
	},
	{
		"How much revenue per city in February of 2004?",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "City"}},
			Filters: []dw.Filter{{Role: "Date", Level: "Month", Values: []string{"2004-02"}}}},
	},
	{
		"Average temperature in Bilbao on January 15 of 2004",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
			Filters: []dw.Filter{
				{Role: "City", Level: "City", Values: []string{"Bilbao"}},
				{Role: "Date", Level: "Day", Values: []string{"2004-01-15"}}}},
	},
	{
		"Total revenue per destination",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "Airport"}}},
	},
	{
		"Average price to BCN by month",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Month"}},
			Filters: []dw.Filter{{Role: "Destination", Level: "Airport", Values: []string{"El Prat"}}}},
	},
	{
		"Minimum temperature in Seville in March of 2004",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Min,
			Filters: []dw.Filter{
				{Role: "City", Level: "City", Values: []string{"Seville"}},
				{Role: "Date", Level: "Month", Values: []string{"2004-03"}}}},
	},
	{
		"What is the lowest price from Barcelona to Madrid?",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Min,
			Filters: []dw.Filter{
				{Role: "Departure", Level: "City", Values: []string{"Barcelona"}},
				{Role: "Destination", Level: "City", Values: []string{"Madrid"}}}},
	},
	{
		"Maximum miles per destination country",
		dw.Query{Fact: "LastMinuteSales", Measure: "Miles", Agg: dw.Max,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "Country"}}},
	},
	{
		"Total revenue by year",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Year"}}},
	},
	{
		"How many trips to New York by month?",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Month"}},
			Filters: []dw.Filter{{Role: "Destination", Level: "City", Values: []string{"New York"}}}},
	},
	{
		"Average temperature per city in January",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "City", Level: "City"}},
			Filters: []dw.Filter{{Role: "Date", Level: "Month", Values: []string{"2004-01"}}}},
	},
	{
		"Total revenue in 2004 by customer segment",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
			GroupBy: []dw.LevelSel{{Role: "Customer", Level: "Segment"}},
			Filters: []dw.Filter{{Role: "Date", Level: "Year", Values: []string{"2004"}}}},
	},
	{
		"Count of sales per departure city",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			GroupBy: []dw.LevelSel{{Role: "Departure", Level: "City"}}},
	},
	{
		"Average miles by month",
		dw.Query{Fact: "LastMinuteSales", Measure: "Miles", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Month"}}},
	},
	{
		"What is the total revenue from Seville in February of 2004?",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
			Filters: []dw.Filter{
				{Role: "Departure", Level: "City", Values: []string{"Seville"}},
				{Role: "Date", Level: "Month", Values: []string{"2004-02"}}}},
	},
	{
		"Highest temperature by city and month",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Max,
			GroupBy: []dw.LevelSel{{Role: "City", Level: "City"}, {Role: "Date", Level: "Month"}}},
	},
	{
		"How many bookings per destination city in March of 2004?",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "City"}},
			Filters: []dw.Filter{{Role: "Date", Level: "Month", Values: []string{"2004-03"}}}},
	},
	{
		"Average cost per destination country in January",
		dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Avg,
			GroupBy: []dw.LevelSel{{Role: "Destination", Level: "Country"}},
			Filters: []dw.Filter{{Role: "Date", Level: "Month", Values: []string{"2004-01"}}}},
	},
	{
		"Number of sales by month and destination country",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			GroupBy: []dw.LevelSel{{Role: "Date", Level: "Month"}, {Role: "Destination", Level: "Country"}}},
	},
	// Case-folded grounding (etl.CanonicalCity): a shouted city name must
	// compile to the same plan as its canonical spelling.
	{
		"How many tickets were sold to BARCELONA in January of 2004?",
		dw.Query{Fact: "LastMinuteSales", Agg: dw.Count,
			Filters: []dw.Filter{
				{Role: "Date", Level: "Month", Values: []string{"2004-01"}},
				{Role: "Destination", Level: "City", Values: []string{"Barcelona"}}}},
	},
	// ... and a lowercased multi-word alias must resolve through the same
	// canonicaliser ("el prat" → "El Prat" → Barcelona's city member).
	{
		"What is the maximum temperature in el prat in February of 2004?",
		dw.Query{Fact: "Weather", Measure: "TempC", Agg: dw.Max,
			Filters: []dw.Filter{
				{Role: "City", Level: "City", Values: []string{"Barcelona"}},
				{Role: "Date", Level: "Month", Values: []string{"2004-02"}}}},
	},
}

// TestNL2OLAPGolden runs the five-step integration (so the Weather fact
// is fed), routes every corpus question through the serving engine, and
// checks three properties per question:
//
//  1. it routes to the OLAP path (r.OLAP set, no factoid answer);
//  2. its result rows are byte-identical to the hand-written dw.Query;
//  3. plan + table match testdata/nl2olap.golden byte for byte.
//
// Regenerate deliberately with:
//
//	go test -run TestNL2OLAPGolden -update .
func TestNL2OLAPGolden(t *testing.T) {
	if len(goldenAnalytic) < 25 {
		t.Fatalf("corpus has %d questions, the battery requires ≥25", len(goldenAnalytic))
	}
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	for _, c := range goldenAnalytic {
		r := eng.Ask(context.Background(), c.question)
		if r.Err != nil {
			t.Errorf("Ask(%q): %v", c.question, r.Err)
			continue
		}
		if r.OLAP == nil {
			t.Errorf("Ask(%q) did not route to the OLAP path", c.question)
			continue
		}
		want, err := p.Warehouse.Execute(c.hand)
		if err != nil {
			t.Fatalf("hand-written query for %q: %v", c.question, err)
		}
		if got := r.OLAP.Result.Format(); got != want.Format() {
			t.Errorf("%q: translated result diverges from the hand-written query:\n--- got ---\n%s--- want ---\n%s",
				c.question, got, want.Format())
		}
		fmt.Fprintf(&b, "Q: %s\nplan: %s\n%s\n", c.question, r.OLAP.PlanString(), r.OLAP.Result.Format())
	}
	got := b.String()

	golden := filepath.Join("testdata", "nl2olap.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("NL→OLAP corpus diverged from %s.\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
