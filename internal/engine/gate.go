package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"dwqa/internal/obs"
)

// Admission control for the serving layer (DESIGN.md §8): a bounded
// in-flight gate in front of every request-shaped entry point (AskAll,
// AskOLAP, HarvestAll and the HTTP handlers over them).
//
// The gate is a classic semaphore-plus-short-queue: up to maxInflight
// requests run at once; up to maxQueue more may wait for a slot, but
// only as long as their deadline allows; anything beyond that is shed
// immediately with ErrShed. Shedding at the door is what keeps latency
// bounded under overload — a request that would only time out in the
// queue is cheaper for everyone as an instant 429 the client can back
// off from and retry.

// Default admission sizing. MaxInflight is deliberately larger than the
// worker pool (requests also spend time in coalescing, cache hits and
// encoding), and the queue absorbs short arrival bursts without letting
// a sustained overload build unbounded latency.
const (
	DefaultMaxInflight = 64
	DefaultMaxQueue    = 128
)

// ErrShed reports that the engine was saturated — MaxInflight requests
// running and MaxQueue more already waiting — and this request was
// rejected without being processed. The HTTP layer maps it to
// 429 Too Many Requests with a Retry-After hint.
var ErrShed = errors.New("engine: overloaded, request shed")

// gate is the admission semaphore. A nil slots channel means admission
// control is disabled (every acquire succeeds immediately).
type gate struct {
	slots    chan struct{}
	maxQueue int64

	queued   atomic.Int64
	inflight atomic.Int64
	// shed counts rejected requests. The engine replaces it with its
	// metrics registry's cell (New); a standalone gate gets a private
	// zero-value counter. queueWait, when set, observes how long
	// saturated requests waited for a slot — only the slow (queued)
	// path reads the clock, the uncontended fast path never does.
	shed      *obs.Counter
	queueWait *obs.Histogram
}

// newGate builds a gate admitting maxInflight concurrent requests with a
// wait queue of maxQueue. maxInflight < 0 disables admission control;
// maxQueue < 0 means no queue (immediate shed once saturated).
func newGate(maxInflight, maxQueue int) *gate {
	g := &gate{shed: &obs.Counter{}}
	if maxInflight < 0 {
		return g
	}
	if maxInflight == 0 {
		maxInflight = DefaultMaxInflight
	}
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	g.slots = make(chan struct{}, maxInflight)
	g.maxQueue = int64(maxQueue)
	return g
}

// acquire admits the request or rejects it: ErrShed when the gate and
// its queue are full, ctx.Err() when the deadline expires while queued.
// Every successful acquire must be paired with a release.
func (g *gate) acquire(ctx context.Context) error {
	if g.slots == nil {
		g.inflight.Add(1)
		return nil
	}
	// Fast path: a slot is free right now.
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	default:
	}
	// Saturated: wait in the bounded queue, deadline-aware. The queue
	// length is enforced optimistically with an atomic counter — a brief
	// overshoot under a stampede sheds slightly late, never admits extra.
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Inc()
		return ErrShed
	}
	defer g.queued.Add(-1)
	var waitStart time.Time
	if g.queueWait != nil {
		waitStart = time.Now()
	}
	select {
	case g.slots <- struct{}{}:
		if g.queueWait != nil {
			g.queueWait.Observe(time.Since(waitStart))
		}
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the request's slot.
func (g *gate) release() {
	g.inflight.Add(-1)
	if g.slots != nil {
		<-g.slots
	}
}

// Inflight returns the number of currently admitted requests.
func (g *gate) Inflight() int64 { return g.inflight.Load() }

// Queued returns the number of requests currently waiting for a slot.
func (g *gate) Queued() int64 { return g.queued.Load() }

// Capacity returns the admission limit (0 when admission control is
// disabled).
func (g *gate) Capacity() int { return cap(g.slots) }

// Shed returns how many requests have been rejected with ErrShed.
func (g *gate) Shed() uint64 { return g.shed.Value() }
