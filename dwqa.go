// Package dwqa is the public facade of the reproduction of "The benefits
// of the interaction between Data Warehouses and Question Answering"
// (Ferrández & Peral, EDBT 2010).
//
// The paper proposes the first model integrating a data warehouse (DW)
// with a question answering (QA) system through a shared ontology, in
// five semi-automatic steps:
//
//  1. derive a domain ontology from the DW's UML multidimensional model,
//  2. feed it with the DW contents (instances),
//  3. merge it into the QA system's upper ontology (WordNet),
//  4. tune the QA system to the new query types,
//  5. let the QA system feed the DW with answers extracted from the web.
//
// The facade exposes the integration pipeline and the result types needed
// to use it; the substrates (warehouse engine, WordNet, IR-n passage
// retrieval, the AliQAn QA system, the synthetic web corpus) live in
// internal packages and are documented in DESIGN.md.
//
// Quick start:
//
//	p, err := dwqa.New(dwqa.DefaultConfig())
//	if err != nil { ... }
//	if err := p.RunAll(); err != nil { ... }          // the five steps
//	res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
//	tab, err := p.AskOLAP("Average temperature in Barcelona by month")
//	report, err := dwqa.AnalyzeSalesWeather(p)        // the BI payoff
//
// The integration runs in both directions: Step 5 lets QA feed the
// warehouse, and the analytic path (AskOLAP, or any Ask* call — questions
// are classified automatically) lets users query the warehouse in natural
// language through compiled OLAP plans.
package dwqa

import (
	"net/http"

	"dwqa/internal/bi"
	"dwqa/internal/core"
	"dwqa/internal/engine"
	"dwqa/internal/nl2olap"
	"dwqa/internal/qa"
	"dwqa/internal/shard"
	"dwqa/internal/store"
)

// Config parameterises a pipeline: seed, covered period, QA ablation
// switches and extraction options. See the field docs in internal/core.
type Config = core.Config

// Pipeline is the five-step integration. Construct with New, run the
// steps (or RunAll), then Ask questions and analyse the enriched DW.
type Pipeline = core.Pipeline

// QAConfig holds the QA-side switches (UseOntology, UseIRFilter,
// TopPassages, MinScore).
type QAConfig = qa.Config

// Result is the outcome of one question: analysis, passages, candidates
// and the accepted answer.
type Result = qa.Result

// Answer is an extracted answer: for measure questions, the structured
// (value – unit – date – location – web page) record of the paper.
type Answer = qa.Answer

// Trace reproduces the paper's Table 1 for one question.
type Trace = qa.Trace

// BIReport is the sales×weather analysis over the enriched warehouse.
type BIReport = bi.Report

// Engine is the concurrent QA serving layer over a pipeline: worker-pool
// batch execution (AskAll, HarvestAll) with deterministic result
// ordering, request coalescing and an LRU answer cache invalidated on
// every warehouse feed. Obtain one with Pipeline.Engine() (after Step 4);
// batch questions with Pipeline.AskAll.
type Engine = engine.Engine

// EngineConfig sizes the serving layer (worker count, answer-cache
// capacity); set it on Config.Engine before New.
type EngineConfig = engine.Config

// AskResult is one slot of a batched AskAll call: the result (or error)
// for the question at the same input position. Analytic questions carry
// their OLAP answer in the OLAP field instead of a factoid Result.
type AskResult = engine.AskResult

// Translator compiles natural-language analytical questions ("average
// temperature in Barcelona by month") into validated OLAP query plans
// over the warehouse, using the schema metadata and the Step 2/3 ontology
// lexicon. Obtain the scenario's with Pipeline.Translator(); Ask/AskAll
// dispatch through it automatically.
type Translator = nl2olap.Translator

// OLAPAnswer is one executed analytic question: the compiled, validated
// plan plus its result table.
type OLAPAnswer = nl2olap.Answer

// ErrFactoid reports that a question offered to the analytic path belongs
// to the factoid QA modules instead (test with errors.Is).
var ErrFactoid = nl2olap.ErrFactoid

// HarvestResult is one question's outcome of a batched Step 5 harvest.
type HarvestResult = engine.HarvestResult

// Serving resilience defaults (engine package, DESIGN.md §8): the
// admission-gate sizing and per-request deadlines `dwqa serve` applies
// unless overridden by flag.
const (
	DefaultMaxInflight    = engine.DefaultMaxInflight
	DefaultMaxQueue       = engine.DefaultMaxQueue
	DefaultAskTimeout     = engine.DefaultAskTimeout
	DefaultHarvestTimeout = engine.DefaultHarvestTimeout
)

// ErrShed reports a request rejected by the admission gate (HTTP 429);
// ErrDegraded a feed refused because the engine latched degraded
// read-only mode after a WAL failure (HTTP 503). Test with errors.Is.
var (
	ErrShed     = engine.ErrShed
	ErrDegraded = engine.ErrDegraded
)

// New builds a pipeline over the Last Minute Sales scenario: the Figure 1
// schema, a populated warehouse, the synthetic web corpus and the passage
// index. No integration step has run yet.
func New(cfg Config) (*Pipeline, error) { return core.NewPipeline(cfg) }

// RecoveryInfo summarises what Open recovered from a data directory:
// which snapshot won, how many write-ahead-log records were replayed on
// top of it, and whether a torn log tail was repaired.
type RecoveryInfo = store.RecoveryInfo

// Open boots a durable pipeline from a data directory (see DESIGN.md §7):
// with a usable snapshot present the warehouse, passage index and merged
// ontology are restored by bulk load and the WAL tail replayed — no
// re-indexing, no re-harvesting; otherwise the scenario is integrated
// fresh (steps 1-4) and published as the initial snapshot. Either way the
// returned pipeline journals every subsequent feed, and its Engine
// supports SnapshotTo/SnapshotEvery. Close the pipeline's Store when
// done, ideally after a final snapshot.
func Open(cfg Config, dataDir string) (*Pipeline, *RecoveryInfo, error) {
	return core.OpenPipeline(cfg, dataDir)
}

// DefaultConfig is the paper's evaluated configuration (ontology on, IR
// filter on, seed 42, January-March 2004).
func DefaultConfig() Config { return core.DefaultConfig() }

// Sharded is the N-shard deployment of the pipeline (DESIGN.md §10):
// fact columns and the passage index partition by city hash, dimensions
// replicate, and scatter/gather serving answers byte-identically to a
// single node.
type Sharded = core.ShardedPipeline

// NewSharded builds the scenario over n shards in memory; call
// Integrate() before serving.
func NewSharded(cfg Config, shards int) (*Sharded, error) {
	return core.NewShardedPipeline(cfg, shards)
}

// OpenSharded boots a durable sharded writer from a cluster directory
// (one snapshot/WAL store per shard under it), recovering each shard or
// building the baseline fresh — the sharded Open.
func OpenSharded(cfg Config, dataDir string, shards int) (*Sharded, *RecoveryInfo, error) {
	return core.OpenShardedPipeline(cfg, dataDir, shards)
}

// OpenFollower opens a leader's cluster directory as a read replica: it
// serves from the shipped snapshots and tails the per-shard WAL
// (Sharded.StartTailing) while the leader keeps feeding. The replica's
// engine refuses feeds and reports per-shard replication lag in /healthz.
func OpenFollower(cfg Config, dataDir string, shards int) (*Sharded, error) {
	return core.OpenShardedFollower(cfg, dataDir, shards)
}

// DetectShards reports how many shards a cluster directory was created
// with (0 for a fresh path or a single-node store layout), so callers
// can reopen or follow a cluster without restating the shard count.
func DetectShards(dataDir string) (int, error) {
	return shard.DetectShards(store.OS(), dataDir)
}

// AnalyzeSalesWeather runs the scenario's BI analysis on a pipeline whose
// Step 5 has fed the Weather fact: it returns the temperature ranges that
// increase last-minute sales and the pricing recommendations.
func AnalyzeSalesWeather(p *Pipeline) (*BIReport, error) {
	return bi.Analyze(p.Warehouse, bi.DefaultJoinSpec(), bi.Options{})
}

// NewServer returns the HTTP JSON API (POST /ask, /ask/batch, /harvest;
// GET /trace, /healthz, /metrics) over a pipeline's serving engine —
// what `dwqa serve` listens with. NewServer serves quietly;
// NewServerWith takes logging options (access log, custom Logf).
func NewServer(e *Engine) http.Handler { return engine.NewServer(e) }

// ServerOptions configures the HTTP façade's access logging.
type ServerOptions = engine.ServerOptions

// NewServerWith is NewServer with explicit logging options.
func NewServerWith(e *Engine, opts ServerOptions) http.Handler {
	return engine.NewServerWith(e, opts)
}
