package bi

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dwqa/internal/dw"
	"dwqa/internal/mdm"
)

// testWarehouse builds a minimal sales+weather warehouse with a controlled
// relationship: tickets per day = round(temp), so correlation must be ~1.
func testWarehouse(t *testing.T) *dw.Warehouse {
	t.Helper()
	airport := &mdm.DimensionClass{
		Name: "Airport",
		Levels: []*mdm.Level{
			{Name: "Airport", Descriptor: "Name", RollsUpTo: "City"},
			{Name: "City", Descriptor: "Name"},
		},
	}
	city := &mdm.DimensionClass{
		Name:   "City",
		Levels: []*mdm.Level{{Name: "City", Descriptor: "Name"}},
	}
	date := &mdm.DimensionClass{
		Name:   "Date",
		Levels: []*mdm.Level{{Name: "Day", Descriptor: "Date"}},
	}
	sales := &mdm.FactClass{
		Name:     "LastMinuteSales",
		Measures: []mdm.Measure{{Name: "Price", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "Destination", Dimension: "Airport"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	weather := &mdm.FactClass{
		Name:     "Weather",
		Measures: []mdm.Measure{{Name: "TempC", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "City", Dimension: "City"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	schema := mdm.NewSchema("t").AddDimension(airport).AddDimension(city).
		AddDimension(date).AddFact(sales).AddFact(weather)
	wh, err := dw.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd := func(dim, level, name, parent string) {
		t.Helper()
		if _, err := wh.AddMember(dim, level, name, nil, parent); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("Airport", "City", "Barcelona", "")
	mustAdd("Airport", "Airport", "El Prat", "Barcelona")
	mustAdd("City", "City", "Barcelona", "")
	temps := []float64{2, 5, 8, 11, 14, 17, 20}
	for i, temp := range temps {
		day := dayKey(i)
		mustAdd("Date", "Day", day, "")
		if err := wh.AddFact("Weather",
			map[string]string{"City": "Barcelona", "Date": day},
			map[string]float64{"TempC": temp}); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < int(temp); k++ {
			if err := wh.AddFact("LastMinuteSales",
				map[string]string{"Destination": "El Prat", "Date": day},
				map[string]float64{"Price": 100 + temp}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return wh
}

func dayKey(i int) string {
	return "2004-01-" + string(rune('0'+(i+10)/10)) + string(rune('0'+(i+10)%10))
}

func dspec() JoinSpec { return DefaultJoinSpec() }

func TestJoin(t *testing.T) {
	wh := testWarehouse(t)
	points, err := Join(wh, dspec())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d, want 7", len(points))
	}
	for _, p := range points {
		if p.City != "Barcelona" {
			t.Errorf("city = %s", p.City)
		}
		if float64(p.Tickets) != p.TempC {
			t.Errorf("day %s: tickets %d != temp %v (constructed equality)", p.Day, p.Tickets, p.TempC)
		}
	}
}

func TestJoinSkipsUnmatched(t *testing.T) {
	wh := testWarehouse(t)
	// Sales on a day without weather must not join.
	if _, err := wh.AddMember("Date", "Day", "2004-02-01", nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := wh.AddFact("LastMinuteSales",
		map[string]string{"Destination": "El Prat", "Date": "2004-02-01"},
		map[string]float64{"Price": 100}); err != nil {
		t.Fatal(err)
	}
	points, err := Join(wh, dspec())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Errorf("points = %d, want 7 (unmatched day excluded)", len(points))
	}
}

func TestJoinErrors(t *testing.T) {
	wh := testWarehouse(t)
	bad := dspec()
	bad.SalesFact = "Ghost"
	if _, err := Join(wh, bad); err == nil {
		t.Error("unknown sales fact accepted")
	}
	bad = dspec()
	bad.WeatherFact = "Ghost"
	if _, err := Join(wh, bad); err == nil {
		t.Error("unknown weather fact accepted")
	}
}

func TestPearson(t *testing.T) {
	if r := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect positive = %v", r)
	}
	if r := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(r+1) > 1e-9 {
		t.Errorf("perfect negative = %v", r)
	}
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("degenerate x = %v", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Errorf("empty = %v", r)
	}
	if r := Pearson([]float64{1}, []float64{1, 2}); r != 0 {
		t.Errorf("length mismatch = %v", r)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPearsonProperties(t *testing.T) {
	f := func(pairs []struct{ X, Y float64 }) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			if p.X != p.X || p.Y != p.Y || math.Abs(p.X) > 1e150 || math.Abs(p.Y) > 1e150 {
				return true
			}
			xs[i], ys[i] = p.X, p.Y
		}
		r := Pearson(xs, ys)
		if r < -1.0000001 || r > 1.0000001 {
			return false
		}
		return math.Abs(r-Pearson(ys, xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinByTemperature(t *testing.T) {
	points := []Point{
		{TempC: 2, Tickets: 2, Revenue: 200},
		{TempC: 4, Tickets: 4, Revenue: 400},
		{TempC: 11, Tickets: 11, Revenue: 1100},
		{TempC: -3, Tickets: 1, Revenue: 100},
	}
	bins := BinByTemperature(points, 5)
	if len(bins) != 3 {
		t.Fatalf("bins = %+v", bins)
	}
	if bins[0].Lo != -5 || bins[0].Hi != 0 {
		t.Errorf("first bin = [%v,%v)", bins[0].Lo, bins[0].Hi)
	}
	if bins[1].Tickets != 6 || bins[1].Days != 2 || bins[1].TicketsPerDay != 3 {
		t.Errorf("mid bin = %+v", bins[1])
	}
	if bins[1].AvgTicketPrice != 100 {
		t.Errorf("avg price = %v", bins[1].AvgTicketPrice)
	}
	if BinByTemperature(nil, 5) != nil {
		t.Error("empty points should bin to nil")
	}
	if BinByTemperature(points, 0) != nil {
		t.Error("zero width should bin to nil")
	}
}

func TestAnalyze(t *testing.T) {
	wh := testWarehouse(t)
	rep, err := Analyze(wh, dspec(), Options{BinWidth: 5, MinDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Correlation < 0.99 {
		t.Errorf("correlation = %v, constructed to be ~1", rep.Correlation)
	}
	if rep.BestBin == nil || rep.BestBin.Lo != 20 {
		t.Errorf("best bin = %+v, want the warmest", rep.BestBin)
	}
	if len(rep.Recommendations) == 0 {
		t.Error("no recommendations")
	}
	out := rep.Format()
	for _, want := range []string{"Pearson", "tickets/day", "=>"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyJoin(t *testing.T) {
	wh := testWarehouse(t)
	spec := dspec()
	spec.WeatherCity = "City" // valid but weather fact emptied below
	// Build a fresh warehouse without weather rows.
	empty := testWarehouse(t)
	_ = empty
	// Simplest: query a warehouse whose weather fact has no rows by using
	// a different city member name on the sales side — here instead drop
	// to the error branch by filtering everything out with a bogus spec.
	spec2 := dspec()
	spec2.DestRole = "Destination"
	// Build warehouse with no weather facts at all.
	wh2, err := dw.New(wh.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(wh2, spec2, Options{}); err == nil {
		t.Error("analysis over an unfed warehouse should fail loudly")
	}
}
