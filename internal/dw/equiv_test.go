package dw

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dwqa/internal/mdm"
)

// equivWarehouse builds a warehouse with enough rows to exercise the
// chunked parallel scan (several planChunkSize chunks), members with broken
// parent chains (the "(unknown)" path), and integer measure values so
// sums are exact in float64 regardless of association order.
func equivWarehouse(t testing.TB, rows int) *Warehouse {
	t.Helper()
	w, err := New(testSchema())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	populate(t, w)
	// An airport with no parent city: rolls up to "(unknown)".
	if _, err := w.AddMember("Airport", "Airport", "Area 51", nil, ""); err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	days := []string{"2004-01-30", "2004-01-31", "2004-02-01"}
	airports := []string{"El Prat", "Barajas", "JFK", "La Guardia", "Area 51"}
	for i := 0; i < rows; i++ {
		err := w.AddFact("LastMinuteSales", map[string]string{
			"Departure":   airports[rng.Intn(len(airports))],
			"Destination": airports[rng.Intn(len(airports))],
			"Date":        days[rng.Intn(len(days))],
		}, map[string]float64{
			"Price": float64(rng.Intn(900) + 50),
			"Miles": float64(rng.Intn(6000)),
		})
		if err != nil {
			t.Fatalf("AddFact: %v", err)
		}
	}
	return w
}

// equivQueries covers roll-up, drill-down, slice, dice, multi-role
// group-bys and every aggregation function.
func equivQueries() []Query {
	base := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum}
	var qs []Query
	for _, agg := range []Agg{Sum, Count, Avg, Min, Max} {
		for _, level := range []string{"Airport", "City", "Country"} {
			q := base
			q.Agg = agg
			q.GroupBy = []LevelSel{{Role: "Destination", Level: level}}
			qs = append(qs, q)
		}
	}
	// Grand total, no group-by.
	qs = append(qs, base)
	// Count without a measure.
	qs = append(qs, Query{Fact: "LastMinuteSales", Agg: Count,
		GroupBy: []LevelSel{{Role: "Destination", Level: "Country"}}})
	// One role grouped at two different levels (a drill presentation).
	qs = append(qs, Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{
			{Role: "Destination", Level: "Country"},
			{Role: "Destination", Level: "City"},
		}})
	// Multi-role group-by at mixed levels.
	qs = append(qs, Query{Fact: "LastMinuteSales", Measure: "Miles", Agg: Avg,
		GroupBy: []LevelSel{
			{Role: "Departure", Level: "Country"},
			{Role: "Destination", Level: "City"},
			{Role: "Date", Level: "Month"},
		}})
	// Slice (single value) and dice (several values) at several levels.
	qs = append(qs, Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Date", Level: "Month"}},
		Filters: []Filter{{Role: "Destination", Level: "City", Values: []string{"Barcelona"}}}})
	qs = append(qs, Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "Country"}, {Role: "Date", Level: "Year"}},
		Filters: []Filter{
			{Role: "Destination", Level: "Airport", Values: []string{"JFK", "La Guardia", "El Prat"}},
			{Role: "Departure", Level: "Country", Values: []string{"Spain", "USA"}},
		}})
	// Filter values that match no member: matches no rows, not an error.
	qs = append(qs, Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}},
		Filters: []Filter{{Role: "Destination", Level: "City", Values: []string{"Oz"}}}})
	return qs
}

// TestCompiledMatchesReference asserts the compiled columnar engine and the
// retained row-at-a-time engine render byte-identical results for every
// query shape, on both a small (single-chunk) and a large (parallel
// multi-chunk) fact table.
func TestCompiledMatchesReference(t *testing.T) {
	for _, rows := range []int{0, 300, 3*planChunkSize + 17} {
		w := equivWarehouse(t, rows)
		for i, q := range equivQueries() {
			got, err := w.Execute(q)
			if err != nil {
				t.Fatalf("rows=%d query %d: Execute: %v", rows, i, err)
			}
			want, err := w.ExecuteReference(q)
			if err != nil {
				t.Fatalf("rows=%d query %d: ExecuteReference: %v", rows, i, err)
			}
			if got.Format() != want.Format() {
				t.Errorf("rows=%d query %d (%+v): engines diverge\ncompiled:\n%s\nreference:\n%s",
					rows, i, q, got.Format(), want.Format())
			}
		}
	}
}

// TestCompiledMatchesReferenceOLAPOps checks the RollUp/DrillDown/Slice/
// Dice helpers end to end against the reference engine.
func TestCompiledMatchesReferenceOLAPOps(t *testing.T) {
	w := equivWarehouse(t, 500)
	base := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}}}
	check := func(name string, got *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := w.ExecuteReference(got.Query)
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		if got.Format() != want.Format() {
			t.Errorf("%s diverges\ncompiled:\n%s\nreference:\n%s", name, got.Format(), want.Format())
		}
	}
	r, err := w.RollUp(base, "Destination", "Country")
	check("RollUp", r, err)
	// Rolling up a role grouped at two levels collapses the duplicate
	// instead of tripping the duplicate-column validation.
	drill := base
	drill.GroupBy = []LevelSel{
		{Role: "Destination", Level: "Country"},
		{Role: "Destination", Level: "City"},
	}
	r, err = w.RollUp(drill, "Destination", "Country")
	check("RollUp(two-level drill)", r, err)
	if len(r.Query.GroupBy) != 1 {
		t.Errorf("RollUp left %d group-by columns, want 1 after dedup", len(r.Query.GroupBy))
	}
	r, err = w.DrillDown(base, "Destination", "Airport")
	check("DrillDown", r, err)
	r, err = w.Slice(base, "Date", "Month", "2004-01")
	check("Slice", r, err)
	r, err = w.Dice(base, "Departure", "City", []string{"Madrid", "New York"})
	check("Dice", r, err)
}

// TestRollupMemoInvalidation ensures a member write after a query (which
// memoises the roll-up lookup arrays) is visible to the next query.
func TestRollupMemoInvalidation(t *testing.T) {
	w := equivWarehouse(t, 200)
	q := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "City"}}}
	if _, err := w.Execute(q); err != nil {
		t.Fatal(err)
	}
	// Re-parent the orphan airport: "(unknown)" rows must move to Roswell.
	if _, err := w.AddMember("Airport", "City", "Roswell", nil, "USA"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMember("Airport", "Airport", "Area 51", nil, "Roswell"); err != nil {
		t.Fatal(err)
	}
	got, err := w.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.ExecuteReference(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format() != want.Format() {
		t.Errorf("post-invalidation divergence\ncompiled:\n%s\nreference:\n%s", got.Format(), want.Format())
	}
	var sawRoswell bool
	for _, r := range got.Rows {
		if r.Groups[0] == "(unknown)" {
			t.Errorf("stale roll-up: still grouping under (unknown) after re-parenting")
		}
		if r.Groups[0] == "Roswell" {
			sawRoswell = true
		}
	}
	if !sawRoswell {
		t.Error("re-parented member did not appear in the result")
	}
}

// TestUnknownNameCollision pits the broken-chain sentinel against a member
// literally named "(unknown)": the reference engine (keyed by name
// strings) merges the two groups, and the compiled engine must coalesce to
// match.
func TestUnknownNameCollision(t *testing.T) {
	w := equivWarehouse(t, 300) // contains orphan "Area 51" → sentinel rows
	if _, err := w.AddMember("Airport", "City", "(unknown)", nil, "Spain"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMember("Airport", "Airport", "Nowhere Field", nil, "(unknown)"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFact("LastMinuteSales",
		map[string]string{"Departure": "El Prat", "Destination": "Nowhere Field", "Date": "2004-01-30"},
		map[string]float64{"Price": 200}); err != nil {
		t.Fatal(err)
	}
	for _, agg := range []Agg{Sum, Count, Avg, Min, Max} {
		q := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: agg,
			GroupBy: []LevelSel{{Role: "Destination", Level: "City"}}}
		got, err := w.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := w.ExecuteReference(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Format() != want.Format() {
			t.Errorf("%s: sentinel/literal \"(unknown)\" diverge\ncompiled:\n%s\nreference:\n%s",
				agg, got.Format(), want.Format())
		}
	}
}

// TestGroupKeyOverflowFallsBack builds a schema whose grouped cardinality
// product exceeds uint64 (four dimensions × 65536 members → 65537^4 keys)
// and checks Execute detects the wrap and answers via the reference scan
// instead of merging distinct groups.
func TestGroupKeyOverflowFallsBack(t *testing.T) {
	var dims []*mdm.DimensionClass
	var refs []mdm.DimensionRef
	for d := 0; d < 4; d++ {
		name := fmt.Sprintf("D%d", d)
		dims = append(dims, &mdm.DimensionClass{
			Name:   name,
			Levels: []*mdm.Level{{Name: "Base", Descriptor: "Name"}},
		})
		refs = append(refs, mdm.DimensionRef{Role: "R" + name, Dimension: name})
	}
	schema := mdm.NewSchema("wide").
		AddFact(&mdm.FactClass{Name: "F", Measures: []mdm.Measure{{Name: "V", Type: mdm.TypeFloat}}, Dimensions: refs})
	for _, d := range dims {
		schema.AddDimension(d)
	}
	w, err := New(schema)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		dim := fmt.Sprintf("D%d", d)
		for m := 0; m < 1<<16; m++ {
			if _, err := w.AddMember(dim, "Base", fmt.Sprintf("m%05x", m), nil, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.AddFact("F", map[string]string{
		"RD0": "m00001", "RD1": "m00002", "RD2": "m00003", "RD3": "m00004",
	}, map[string]float64{"V": 7}); err != nil {
		t.Fatal(err)
	}
	q := Query{Fact: "F", Measure: "V", Agg: Sum, GroupBy: []LevelSel{
		{Role: "RD0", Level: "Base"}, {Role: "RD1", Level: "Base"},
		{Role: "RD2", Level: "Base"}, {Role: "RD3", Level: "Base"},
	}}
	got, err := w.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.ExecuteReference(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format() != want.Format() {
		t.Errorf("overflow fallback diverges\ncompiled:\n%s\nreference:\n%s", got.Format(), want.Format())
	}
	if len(got.Rows) != 1 || got.Rows[0].Value != 7 {
		t.Errorf("unexpected result: %+v", got.Rows)
	}
}

func TestValidationRejectsDuplicateGroupBy(t *testing.T) {
	w := newPopulated(t)
	q := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{
			{Role: "Destination", Level: "City"},
			{Role: "Destination", Level: "City"},
		}}
	if _, err := w.Execute(q); err == nil {
		t.Error("Execute accepted a duplicate group-by column")
	}
	if _, err := w.ExecuteReference(q); err == nil {
		t.Error("ExecuteReference accepted a duplicate group-by column")
	}
	// The same role at two different levels is a valid drill presentation.
	q.GroupBy[1].Level = "Country"
	if _, err := w.Execute(q); err != nil {
		t.Errorf("Execute rejected grouping one role at two levels: %v", err)
	}
}

func TestValidationRejectsCountOnGhostMeasure(t *testing.T) {
	w := newPopulated(t)
	q := Query{Fact: "LastMinuteSales", Measure: "Ghost", Agg: Count}
	if _, err := w.Execute(q); err == nil {
		t.Error("Execute accepted count over a nonexistent measure")
	}
	if _, err := w.ExecuteReference(q); err == nil {
		t.Error("ExecuteReference accepted count over a nonexistent measure")
	}
	// Count with no measure named stays legal.
	if _, err := w.Execute(Query{Fact: "LastMinuteSales", Agg: Count}); err != nil {
		t.Errorf("Execute rejected a bare count: %v", err)
	}
}

// TestConcurrentExecuteAddFactAddMember hammers queries against concurrent
// fact and member writes (the latter invalidate the roll-up memo). Run
// under -race this covers the engine's locking.
func TestConcurrentExecuteAddFactAddMember(t *testing.T) {
	w := equivWarehouse(t, 2*planChunkSize)
	q := Query{Fact: "LastMinuteSales", Measure: "Price", Agg: Sum,
		GroupBy: []LevelSel{{Role: "Destination", Level: "Country"}}}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := w.Execute(q); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			err := w.AddFact("LastMinuteSales",
				map[string]string{"Departure": "El Prat", "Destination": "JFK", "Date": "2004-01-31"},
				map[string]float64{"Price": 100})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := w.AddMember("Airport", "Airport", fmt.Sprintf("Strip-%d", i), nil, "Madrid"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent op failed: %v", err)
	}
}

func TestFactProvenanceAccessor(t *testing.T) {
	w := newPopulated(t)
	err := w.AddFactProvenance("LastMinuteSales",
		map[string]string{"Departure": "El Prat", "Destination": "JFK", "Date": "2004-01-30"},
		map[string]float64{"Price": 99}, "http://example.com/source")
	if err != nil {
		t.Fatal(err)
	}
	last := w.FactCount("LastMinuteSales") - 1
	prov, err := w.FactProvenance("LastMinuteSales", last)
	if err != nil || prov != "http://example.com/source" {
		t.Errorf("FactProvenance = %q, %v", prov, err)
	}
	if prov, _ := w.FactProvenance("LastMinuteSales", 0); prov != "" {
		t.Errorf("row without provenance returned %q", prov)
	}
	if _, err := w.FactProvenance("Ghost", 0); err == nil {
		t.Error("unknown fact accepted")
	}
	if _, err := w.FactProvenance("LastMinuteSales", last+1); err == nil {
		t.Error("out-of-range row accepted")
	}
}
