package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dwqa/internal/obs"
	"dwqa/internal/store"
)

// The durability side of the serving engine: snapshotting the live stack
// through internal/store without stalling the ask path.
//
// Consistency discipline: every warehouse feed commits under commitMu
// (see HarvestAll), and SnapshotTo exports the full state under the same
// mutex — so a snapshot never observes half a feed, and its WALSeq stamp
// (read under the lock) is exactly the log position the exported state
// corresponds to. Ask/AskAll never take commitMu: queries proceed under
// the structures' own read locks while a snapshot exports, so background
// snapshotting does not block serving. The only path a snapshot can stall
// is a concurrent feed commit, and only for the in-memory export — the
// disk write happens after commitMu is released.

// SnapshotSource exports the full persistent state of the stack the
// engine serves. core.Pipeline implements it.
type SnapshotSource interface {
	// ExportState copies the warehouse, index and ontology state. The
	// engine calls it with feeds quiesced (under commitMu) and stamps the
	// returned State with the current WAL sequence.
	ExportState() (*store.State, error)
	// StateCounts returns the warehouse sizing (dimension members, fact
	// rows) for the serving stats.
	StateCounts() (members, factRows int)
}

// Snapshotter generalises the engine's persistence beyond the single
// (SnapshotSource, *store.Store) pair: a sharded cluster persists N
// per-shard stores and must export every shard's state under the same
// feed quiescence, then write N snapshot files outside it. The split
// into capture and publish mirrors SnapshotTo's own discipline: the
// in-memory export happens under commitMu (feeds quiesced, asks never
// blocked), the disk writes after it is released.
type Snapshotter interface {
	// ExportForSnapshot captures the full state — called with the
	// engine's feed commits quiesced — and returns a publish closure
	// that writes it out, called unlocked. For a multi-store
	// implementation the returned SnapshotInfo aggregates (path = the
	// root directory, bytes summed, WALSeq = the highest shard's).
	ExportForSnapshot() (publish func() (store.SnapshotInfo, error), err error)
	// Seq returns the highest WAL sequence across the stores.
	Seq() uint64
	// WALErrors returns the total journal appends refused by the stores.
	WALErrors() uint64
	// StateCounts returns the served warehouse sizing (members, fact
	// rows) for the stats, like SnapshotSource.StateCounts.
	StateCounts() (members, factRows int)
}

// SetDurability wires the persistence layer into the engine: src exports
// state for SnapshotTo, st is the store snapshots go to, and recovery
// (may be nil) is surfaced through Stats so operators can see what boot
// replayed.
func (e *Engine) SetDurability(src SnapshotSource, st *store.Store, recovery *store.RecoveryInfo) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.snapSource = src
	e.store = st
	e.recovery = recovery
}

// SetSnapshotter wires a generalised persistence implementation (see
// Snapshotter) in place of the SnapshotSource/store pair. recovery (may
// be nil) is surfaced through Stats like SetDurability's.
func (e *Engine) SetSnapshotter(s Snapshotter, recovery *store.RecoveryInfo) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.snapshotter = s
	e.recovery = recovery
}

// getSnapshotter returns the wired Snapshotter (nil when the engine
// uses the plain SnapshotSource/store pair or is not durable).
func (e *Engine) getSnapshotter() Snapshotter {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotter
}

// durability returns the wired persistence handles.
func (e *Engine) durability() (SnapshotSource, *store.Store, *store.RecoveryInfo) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapSource, e.store, e.recovery
}

// Snapshot publish retry policy: the write is all-or-nothing (temp file
// + rename), so a failed attempt leaves nothing behind and retrying is
// always safe. Transient disk conditions (a slow fsync, a momentary
// ENOSPC) get snapshotRetries attempts with exponential backoff and
// full jitter; a persistently failing disk still surfaces the error to
// the caller (and SnapshotEvery's onErr) after the last attempt.
// Variables, not constants, so the fault-injection tests can tighten
// the schedule.
var (
	snapshotRetries = 3
	snapshotBackoff = 25 * time.Millisecond
)

// SnapshotTo exports the engine's full state and publishes it as a
// snapshot, pruning old ones and resetting the WAL when the snapshot
// covers it. Feeds are quiesced only for the in-memory export; the disk
// write runs unlocked and Ask is never blocked at all. Publish failures
// are retried with backoff (see above); the state is exported once and
// every attempt writes the same bytes.
func (e *Engine) SnapshotTo() (store.SnapshotInfo, error) {
	var publish func() (store.SnapshotInfo, error)
	if snap := e.getSnapshotter(); snap != nil {
		e.commitMu.Lock()
		p, err := snap.ExportForSnapshot()
		e.commitMu.Unlock()
		if err != nil {
			return store.SnapshotInfo{}, fmt.Errorf("engine: exporting state: %w", err)
		}
		publish = p
	} else {
		src, st, _ := e.durability()
		if src == nil || st == nil {
			return store.SnapshotInfo{}, fmt.Errorf("engine: no durability configured (SetDurability)")
		}
		e.commitMu.Lock()
		state, err := src.ExportState()
		if err == nil {
			state.WALSeq = st.Seq()
		}
		e.commitMu.Unlock()
		if err != nil {
			return store.SnapshotInfo{}, fmt.Errorf("engine: exporting state: %w", err)
		}
		publish = func() (store.SnapshotInfo, error) { return st.WriteSnapshot(state) }
	}
	var info store.SnapshotInfo
	var err error
	publishStart := e.met.now()
	backoff := snapshotBackoff
	for attempt := 1; ; attempt++ {
		info, err = publish()
		if err == nil {
			break
		}
		if attempt >= snapshotRetries {
			return store.SnapshotInfo{}, fmt.Errorf("engine: snapshot publish failed after %d attempts: %w", attempt, err)
		}
		// Full jitter: sleep a uniform slice of the doubling window so
		// concurrent retriers (multiple engines on one disk) decorrelate.
		time.Sleep(time.Duration(rand.Int63n(int64(backoff)) + 1))
		backoff *= 2
	}
	// The publish duration (retries and their backoff included — that is
	// what the operator waits for) and the snapshot size land in the
	// registry alongside the request stages.
	if e.met.timing {
		e.met.tracer.StageHistogram(obs.StageSnapshotPublish).Observe(time.Since(publishStart))
	}
	e.met.snapshotBytes.Set(info.Bytes)
	e.lastSnapshot.Store(time.Now().UnixNano())
	return info, nil
}

// SnapshotEvery snapshots in the background at the given interval until
// the returned stop function is called (stop is idempotent and waits for
// an in-flight snapshot to finish). Errors go to onErr (may be nil).
func (e *Engine) SnapshotEvery(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := e.SnapshotTo(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
