package engine_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dwqa/internal/engine"
)

// newServer builds a fed pipeline and its HTTP API.
func newServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	p := newPipeline(t)
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)
	return srv, eng
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var payload struct {
		Status     string `json:"status"`
		Workers    int    `json:"workers"`
		Passages   int    `json:"passages"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Status != "ok" || payload.Workers <= 0 || payload.Passages == 0 {
		t.Errorf("healthz payload = %+v", payload)
	}
	if payload.Generation != 1 {
		t.Errorf("generation = %d, want 1 (one Step 5 feed)", payload.Generation)
	}
}

func TestServerAsk(t *testing.T) {
	srv, _ := newServer(t)
	resp, body := postJSON(t, srv.URL+"/ask",
		`{"question": "What is the weather like in January of 2004 in El Prat?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Answer *struct {
			Location string  `json:"location"`
			Unit     string  `json:"unit"`
			Value    float64 `json:"value"`
		} `json:"answer"`
		Candidates int `json:"candidates"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if payload.Answer == nil || payload.Answer.Location != "Barcelona" || payload.Answer.Unit != "C" {
		t.Errorf("answer = %+v", payload.Answer)
	}
	if payload.Candidates == 0 {
		t.Error("no candidates reported")
	}
}

func TestServerAskBadRequests(t *testing.T) {
	srv, _ := newServer(t)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"missing question", `{}`, http.StatusBadRequest},
		{"malformed json", `{"question": `, http.StatusBadRequest},
		{"unknown field", `{"quesiton": "typo"}`, http.StatusBadRequest},
	} {
		resp, _ := postJSON(t, srv.URL+"/ask", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/ask")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ask status = %d, want 405", resp.StatusCode)
	}
}

func TestServerAskBatch(t *testing.T) {
	srv, _ := newServer(t)
	q := "What is the weather like in January of 2004 in El Prat?"
	body := `{"questions": [` +
		`"` + q + `", ` +
		`"How hot is it in Barcelona in February of 2004?", ` +
		`"   ", ` +
		`"` + q + `"]}`
	resp, raw := postJSON(t, srv.URL+"/ask/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var payload struct {
		Results []struct {
			Question string `json:"question"`
			Answer   *struct {
				Location string `json:"location"`
			} `json:"answer"`
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if len(payload.Results) != 4 {
		t.Fatalf("%d results, want 4", len(payload.Results))
	}
	// Order is preserved: slot i answers question i.
	if payload.Results[0].Question != q || payload.Results[3].Question != q {
		t.Error("result order does not match input order")
	}
	if payload.Results[0].Answer == nil || payload.Results[0].Answer.Location != "Barcelona" {
		t.Errorf("slot 0 answer = %+v", payload.Results[0].Answer)
	}
	if payload.Results[1].Answer == nil || payload.Results[1].Answer.Location != "Barcelona" {
		t.Errorf("slot 1 answer = %+v", payload.Results[1].Answer)
	}
	if payload.Results[2].Error == "" {
		t.Error("blank question should carry a per-item error")
	}
	if !payload.Results[3].Cached {
		t.Error("duplicate question should be coalesced (cached=true)")
	}
}

func TestServerTrace(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := string(raw)
	for _, want := range []string{"Query", "Question pattern", "Extracted answer", "Barcelona"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestServerHarvest(t *testing.T) {
	srv, eng := newServer(t)
	gen := eng.Generation()
	// Empty body selects the default workload; everything is a duplicate
	// of the feed newServer already ran.
	resp, raw := postJSON(t, srv.URL+"/harvest", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var payload struct {
		Loaded     int    `json:"loaded"`
		Skipped    int    `json:"skipped"`
		Generation uint64 `json:"generation"`
		Results    []struct {
			Question string `json:"question"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if payload.Loaded != 0 || payload.Skipped == 0 {
		t.Errorf("repeat feed loaded %d, skipped %d; want 0 loaded, >0 skipped",
			payload.Loaded, payload.Skipped)
	}
	if payload.Generation != gen+1 {
		t.Errorf("generation = %d, want %d", payload.Generation, gen+1)
	}
	if len(payload.Results) == 0 {
		t.Error("no per-question results")
	}
}

// TestServerAskRoutesAnalytic: POST /ask classifies and serves analytic
// questions with the OLAP payload instead of a factoid answer.
func TestServerAskRoutesAnalytic(t *testing.T) {
	srv, _ := newServer(t)
	resp, body := postJSON(t, srv.URL+"/ask",
		`{"question": "What is the average temperature in Barcelona by month?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Answer *struct{} `json:"answer"`
		OLAP   *struct {
			Category string `json:"category"`
			Plan     string `json:"plan"`
			Rows     []struct {
				Groups []string `json:"groups"`
				Value  float64  `json:"value"`
				Count  int      `json:"count"`
			} `json:"rows"`
			Table string `json:"table"`
		} `json:"olap"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if payload.OLAP == nil {
		t.Fatalf("no olap payload: %s", body)
	}
	if payload.Answer != nil {
		t.Error("analytic answer must not carry a factoid answer")
	}
	if payload.OLAP.Category != "analytic" {
		t.Errorf("category = %q, want analytic", payload.OLAP.Category)
	}
	if payload.OLAP.Plan != "Weather avg(TempC) by Date/Month where City/City in {Barcelona}" {
		t.Errorf("plan = %q", payload.OLAP.Plan)
	}
	if len(payload.OLAP.Rows) != 3 { // January, February, March
		t.Errorf("rows = %d, want 3 months", len(payload.OLAP.Rows))
	}
	if payload.OLAP.Table == "" {
		t.Error("no rendered table")
	}
}

// TestServerAskOLAP covers the analytic-only endpoint: success, factoid
// rejection and grounding failures.
func TestServerAskOLAP(t *testing.T) {
	srv, _ := newServer(t)

	resp, body := postJSON(t, srv.URL+"/ask/olap",
		`{"question": "Total last-minute revenue per destination city in January"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Plan string `json:"plan"`
		Rows []struct {
			Groups []string `json:"groups"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if payload.Plan == "" || len(payload.Rows) == 0 {
		t.Errorf("olap payload = %s", body)
	}

	for _, tc := range []struct {
		name, body string
		wantStatus int
	}{
		{"factoid question", `{"question": "What is the weather like in January of 2004 in El Prat?"}`, http.StatusUnprocessableEntity},
		{"ungroundable entity", `{"question": "average temperature in Gotham by month"}`, http.StatusUnprocessableEntity},
		{"missing question", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, srv.URL+"/ask/olap", tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
		}
	}
}
