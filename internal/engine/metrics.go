package engine

import (
	"strconv"
	"time"

	"dwqa/internal/obs"
)

// engineMetrics bundles the engine's metrics registry, the per-stage
// request tracer and the counter handles the serving paths increment.
// The counters are the single source of truth: Stats()/healthz and the
// /metrics exposition both read them, so the two views can never drift.
//
// timing gates every clock reading on the ask/harvest hot paths
// (Config.NoObserve turns it off); counters stay live either way, so an
// unobserved engine still reports correct totals — it just stops
// measuring durations.
type engineMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	timing bool

	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheEvicted  *obs.Counter
	shedTotal     *obs.Counter
	timeoutTotal  *obs.Counter
	panicTotal    *obs.Counter
	queueWait     *obs.Histogram
	walFsync      *obs.Histogram
	snapshotBytes *obs.Gauge
}

func newEngineMetrics(noObserve bool) *engineMetrics {
	reg := obs.NewRegistry()
	return &engineMetrics{
		reg:    reg,
		tracer: obs.NewTracer(reg),
		timing: !noObserve,
		cacheHits: reg.Counter("dwqa_cache_hits_total",
			"Answer-cache hits."),
		cacheMisses: reg.Counter("dwqa_cache_misses_total",
			"Answer-cache misses."),
		cacheEvicted: reg.Counter("dwqa_cache_evicted_total",
			"Answer-cache entries evicted by selective feed invalidation."),
		shedTotal: reg.Counter("dwqa_shed_total",
			"Requests rejected by the admission gate."),
		timeoutTotal: reg.Counter("dwqa_timeouts_total",
			"Requests whose deadline expired."),
		panicTotal: reg.Counter("dwqa_panics_total",
			"Panics recovered at the worker or request boundary."),
		queueWait: reg.Histogram("dwqa_gate_queue_wait_seconds",
			"Time saturated requests waited for an admission slot.", obs.DefBuckets),
		walFsync: reg.Histogram("dwqa_wal_fsync_seconds",
			"WAL fsync latency.", obs.IOBuckets),
		snapshotBytes: reg.Gauge("dwqa_snapshot_bytes",
			"Size of the last published snapshot."),
	}
}

// now reads the wall clock only when stage timing is on; the zero time
// it returns otherwise is never looked at (stamp/finish no-op too).
func (m *engineMetrics) now() time.Time {
	if !m.timing {
		return time.Time{}
	}
	return time.Now()
}

// stamp records one stage's duration since start into the span.
func (m *engineMetrics) stamp(sp *obs.Span, st obs.Stage, start time.Time) {
	if !m.timing {
		return
	}
	sp.Observe(st, time.Since(start))
}

// finish folds the span into the stage histograms and, when armed,
// the sampled slow-query log.
func (m *engineMetrics) finish(sp *obs.Span, start time.Time, label, outcome string) {
	if !m.timing {
		return
	}
	m.tracer.Finish(sp, time.Since(start), label, outcome)
}

// registerEngineFuncs registers the gauges and counter funcs that read
// live engine state at scrape time. Called once from New, after the
// engine's fields are wired; the durability funcs read through the
// engine's own accessors so they track SetDurability/SetSnapshotter
// calls made later.
func (m *engineMetrics) registerEngineFuncs(e *Engine) {
	reg := m.reg
	reg.GaugeFunc("dwqa_cache_entries",
		"Live answer-cache entries.",
		func() float64 { return float64(e.cache.len()) })
	reg.GaugeFunc("dwqa_inflight",
		"Currently admitted requests.",
		func() float64 { return float64(e.gate.Inflight()) })
	reg.GaugeFunc("dwqa_queued",
		"Requests waiting for an admission slot.",
		func() float64 { return float64(e.gate.Queued()) })
	reg.CounterFunc("dwqa_generation_total",
		"Committed warehouse feeds.",
		func() float64 { return float64(e.generation.Load()) })
	reg.GaugeFunc("dwqa_degraded",
		"1 while the engine is latched degraded read-only.",
		func() float64 {
			if degraded, _ := e.Degraded(); degraded {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dwqa_documents",
		"Indexed documents served.",
		func() float64 {
			if e.index == nil {
				return 0
			}
			return float64(e.index.DocCount())
		})
	reg.GaugeFunc("dwqa_passages",
		"Passage windows served.",
		func() float64 {
			if e.index == nil {
				return 0
			}
			return float64(e.index.PassageCount())
		})
	reg.GaugeFunc("dwqa_wal_seq",
		"Highest WAL sequence across the wired stores (0 when not durable).",
		func() float64 {
			if snap := e.getSnapshotter(); snap != nil {
				return float64(snap.Seq())
			}
			if _, st, _ := e.durability(); st != nil {
				return float64(st.Seq())
			}
			return 0
		})
	reg.CounterFunc("dwqa_wal_errors_total",
		"Journal appends refused by the store.",
		func() float64 {
			if snap := e.getSnapshotter(); snap != nil {
				return float64(snap.WALErrors())
			}
			if _, st, _ := e.durability(); st != nil {
				return float64(st.WALErrors())
			}
			return 0
		})
}

// Metrics returns the engine's metrics registry — the source behind
// GET /metrics. Layers below the engine (store, shard, seeder) register
// or receive their instruments from it so one scrape covers the stack.
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// StageHistogram returns the latency histogram behind one pipeline
// stage, or nil when Config.NoObserve disabled stage timing. Callers
// wiring lower layers (WAL append, shard fan-out) pass the result down
// and skip their clock readings on nil.
func (e *Engine) StageHistogram(st obs.Stage) *obs.Histogram {
	if !e.met.timing {
		return nil
	}
	return e.met.tracer.StageHistogram(st)
}

// WALFsyncHistogram returns the dwqa_wal_fsync_seconds histogram for
// store wiring, nil when Config.NoObserve disabled timing.
func (e *Engine) WALFsyncHistogram() *obs.Histogram {
	if !e.met.timing {
		return nil
	}
	return e.met.walFsync
}

// SetSlowQueryLog arms (threshold > 0) or disarms the sampled
// slow-query log: a request slower than threshold logs its per-stage
// span breakdown through logf, at most one line per second. With
// Config.NoObserve the spans are never stamped, so arming it is a
// no-op in effect.
func (e *Engine) SetSlowQueryLog(threshold time.Duration, logf func(format string, args ...any)) {
	e.met.tracer.SetSlowQuery(threshold, logf)
}

// registerShardGauges registers per-shard replica position gauges
// (dwqa_shard_replica_seq/lag{shard="N"}) reading the installed
// ShardStat reporter at scrape time. Re-registration with a different
// shard count extends the set; gauges for shards the current reporter
// no longer covers read 0.
func (e *Engine) registerShardGauges(n int) {
	for i := 0; i < n; i++ {
		shard := i
		label := obs.L("shard", strconv.Itoa(shard))
		e.met.reg.GaugeFunc("dwqa_shard_replica_seq",
			"Highest WAL sequence observed for the shard.",
			func() float64 {
				if st, ok := e.shardStat(shard); ok {
					return float64(st.Seq)
				}
				return 0
			}, label)
		e.met.reg.GaugeFunc("dwqa_shard_replica_lag",
			"WAL records observed on the leader but not yet applied.",
			func() float64 {
				if st, ok := e.shardStat(shard); ok {
					return float64(st.Lag)
				}
				return 0
			}, label)
	}
}

// shardStat reads one shard's current replication position.
func (e *Engine) shardStat(i int) (ShardStat, bool) {
	fn := e.shardStats.Load()
	if fn == nil {
		return ShardStat{}, false
	}
	stats := (*fn)()
	if i >= len(stats) {
		return ShardStat{}, false
	}
	return stats[i], true
}
