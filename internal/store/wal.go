package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/obs"
)

// WAL record layout (append-only, one record per committed feed batch):
//
//	seq     uvarint   strictly increasing across the store's lifetime
//	type    byte      recMembers | recFactRows | recDocument
//	len     uvarint   payload length in bytes
//	payload bytes
//	crc32c  4 bytes LE   checksum of seq+type+len+payload
//
// A crash can tear only the final record (appends are sequential); replay
// verifies each record and truncates the log at the first bad one, so a
// torn tail never poisons recovery and the next append continues from the
// repaired end.

const (
	recMembers  byte = 1
	recFactRows byte = 2
	recDocument byte = 3
	// recBatch is one combined warehouse transaction (dw.AddBatch): a
	// member batch plus the fact rows that depend on it, committed — and
	// therefore replayed — as a unit, so a crash can never resurrect the
	// members without their rows.
	recBatch byte = 4
	// recDocuments is a batch of indexed documents (ir.Index.AddBatch):
	// one record, one fsync, however many pages the streaming seeder
	// committed together.
	recDocuments byte = 5
)

// walRecord is one decoded record.
type walRecord struct {
	seq     uint64
	kind    byte
	payload []byte
}

// wal is the append side of the log. Store serialises access.
type wal struct {
	path  string
	f     File
	seq   uint64         // last appended (or scanned) sequence number
	fsync *obs.Histogram // optional fsync latency, set via Store.SetMetrics
}

// openWAL opens (creating if needed) the log through the store's
// filesystem, validates every record, truncates a torn or corrupt tail,
// and positions for append. It returns the number of bytes dropped by
// the repair (0 for a clean log).
func openWAL(fsys FS, path string) (*wal, int64, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening WAL: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: reading WAL: %w", err)
	}
	valid, lastSeq, _ := scanWAL(data, 0)
	dropped := int64(len(data)) - int64(valid)
	if dropped > 0 {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: repairing WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: seeking WAL: %w", err)
	}
	return &wal{path: path, f: f, seq: lastSeq}, dropped, nil
}

// scanWAL walks the records in data, returning the byte length of the
// valid prefix, the last valid sequence number (or prevSeq when none) and
// the decoded records. Validation is structural: checksum and strictly
// increasing sequence numbers; anything else ends the valid prefix.
func scanWAL(data []byte, prevSeq uint64) (validLen int, lastSeq uint64, records []walRecord) {
	lastSeq = prevSeq
	off := 0
	for off < len(data) {
		r := &reader{buf: data, off: off}
		seq := r.uvarint()
		if r.err != nil {
			break
		}
		if r.off >= len(data) {
			break
		}
		kind := data[r.off]
		r.off++
		n := r.count(1)
		if r.err != nil || r.off+n+4 > len(data) {
			break
		}
		payload := data[r.off : r.off+n]
		r.off += n
		want := uint32(data[r.off]) | uint32(data[r.off+1])<<8 | uint32(data[r.off+2])<<16 | uint32(data[r.off+3])<<24
		if crc32.Checksum(data[off:r.off], crcTable) != want {
			break
		}
		r.off += 4
		if seq <= lastSeq {
			// Sequence regression: the log was overwritten or corrupted in
			// a way the checksum cannot see; stop trusting it here.
			break
		}
		records = append(records, walRecord{seq: seq, kind: kind, payload: payload})
		lastSeq = seq
		off = r.off
		validLen = off
	}
	return validLen, lastSeq, records
}

// append encodes and appends one record, fsyncing before return — a feed
// is only acked once its log record is on stable storage. A failed write
// or sync rolls the file back to the pre-append offset (and the sequence
// counter back with it): a record the caller was told failed must not
// survive to be replayed, and the garbage of a short write must not
// strand later acked records behind an unreadable prefix.
func (w *wal) append(kind byte, payload []byte) error {
	if w.f == nil {
		return fmt.Errorf("store: WAL closed after an earlier append failure")
	}
	start, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("store: positioning WAL: %w", err)
	}
	w.seq++
	rec := &writer{buf: make([]byte, 0, len(payload)+16)}
	rec.uvarint(w.seq)
	rec.buf = append(rec.buf, kind)
	rec.uvarint(uint64(len(payload)))
	rec.buf = append(rec.buf, payload...)
	rec.buf = appendCRC(rec.buf)
	rollback := func(cause error) error {
		w.seq--
		if err := w.f.Truncate(start); err != nil {
			// The file could not be rolled back either; poison the handle
			// so no further append lands after unknown bytes. Recovery's
			// tail truncation handles the partial record on next boot.
			w.f.Close()
			w.f = nil
			return fmt.Errorf("store: %w (and rolling back the partial record failed: %v — WAL closed)", cause, err)
		}
		if _, err := w.f.Seek(start, io.SeekStart); err != nil {
			w.f.Close()
			w.f = nil
			return fmt.Errorf("store: %w (and reseeking after rollback failed: %v — WAL closed)", cause, err)
		}
		return fmt.Errorf("store: %w", cause)
	}
	if _, err := w.f.Write(rec.buf); err != nil {
		return rollback(fmt.Errorf("appending WAL record %d: %w", w.seq, err))
	}
	var fsyncStart time.Time
	if w.fsync != nil {
		fsyncStart = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return rollback(fmt.Errorf("syncing WAL record %d: %w", w.seq, err))
	}
	if w.fsync != nil {
		w.fsync.Observe(time.Since(fsyncStart))
	}
	return nil
}

// reset truncates the log to zero bytes (after a snapshot has made every
// record redundant). The sequence counter is NOT reset: sequence numbers
// stay monotonic for the store's whole lifetime, which is what makes
// replay gating safe.
func (w *wal) reset() error {
	if w.f == nil {
		return fmt.Errorf("store: WAL closed after an earlier append failure")
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// --- record payload encodings ---

func encodeMemberSpecs(specs []dw.MemberSpec) []byte {
	w := &writer{}
	w.uvarint(uint64(len(specs)))
	for _, s := range specs {
		w.str(s.Dim)
		w.str(s.Level)
		w.str(s.Name)
		w.str(s.Parent)
		encodeStringMap(w, s.Attrs)
	}
	return w.buf
}

func decodeMemberSpecs(payload []byte) ([]dw.MemberSpec, error) {
	r := &reader{buf: payload}
	n := r.count(4)
	specs := make([]dw.MemberSpec, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		specs = append(specs, dw.MemberSpec{
			Dim:    r.str(),
			Level:  r.str(),
			Name:   r.str(),
			Parent: r.str(),
			Attrs:  decodeStringMap(r),
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	return specs, nil
}

func encodeFactRows(fact string, rows []dw.FactRow) []byte {
	w := &writer{}
	w.str(fact)
	w.uvarint(uint64(len(rows)))
	for _, row := range rows {
		encodeStringMap(w, row.Coords)
		keys := make([]string, 0, len(row.Measures))
		for k := range row.Measures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.str(k)
			w.f64(row.Measures[k])
		}
		w.str(row.Provenance)
	}
	return w.buf
}

func decodeFactRows(payload []byte) (string, []dw.FactRow, error) {
	r := &reader{buf: payload}
	fact := r.str()
	n := r.count(4)
	rows := make([]dw.FactRow, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		row := dw.FactRow{Coords: decodeStringMap(r)}
		nm := r.count(9)
		if nm > 0 {
			row.Measures = make(map[string]float64, nm)
			for j := 0; j < nm && r.err == nil; j++ {
				k := r.str()
				row.Measures[k] = r.f64()
			}
		}
		row.Provenance = r.str()
		rows = append(rows, row)
	}
	if r.err != nil {
		return "", nil, r.err
	}
	return fact, rows, nil
}

// encodeBatch frames one combined warehouse transaction: the member-spec
// payload, length-prefixed so the decoder knows where the fact-row
// payload begins (both sub-payloads are the existing encodings).
func encodeBatch(specs []dw.MemberSpec, fact string, rows []dw.FactRow) []byte {
	specsPayload := encodeMemberSpecs(specs)
	w := &writer{buf: make([]byte, 0, len(specsPayload)+16)}
	w.uvarint(uint64(len(specsPayload)))
	w.buf = append(w.buf, specsPayload...)
	w.buf = append(w.buf, encodeFactRows(fact, rows)...)
	return w.buf
}

func decodeBatch(payload []byte) ([]dw.MemberSpec, string, []dw.FactRow, error) {
	r := &reader{buf: payload}
	n := r.count(1)
	if r.err != nil || r.off+n > len(payload) {
		return nil, "", nil, fmt.Errorf("store: batch record: bad member-spec framing")
	}
	specs, err := decodeMemberSpecs(payload[r.off : r.off+n])
	if err != nil {
		return nil, "", nil, err
	}
	fact, rows, err := decodeFactRows(payload[r.off+n:])
	if err != nil {
		return nil, "", nil, err
	}
	return specs, fact, rows, nil
}

// Document records carry the global ordinal (ir.Document.Ord) as a
// trailing extension: the batch record appends one varint per document
// after the (URL, text) pairs, the single-document record appends one
// varint after the text. Decoders read the extension only when bytes
// remain, so records written before the ordinal existed decode with
// every ordinal zero — exactly the value unsharded deployments use.
func encodeDocuments(docs []ir.Document) []byte {
	w := &writer{}
	w.uvarint(uint64(len(docs)))
	for _, d := range docs {
		w.str(d.URL)
		w.str(d.Text)
	}
	for _, d := range docs {
		w.varint(d.Ord)
	}
	return w.buf
}

func decodeDocuments(payload []byte) ([]ir.Document, error) {
	r := &reader{buf: payload}
	n := r.count(2)
	docs := make([]ir.Document, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		docs = append(docs, ir.Document{URL: r.str(), Text: r.str()})
	}
	if r.err == nil && r.remaining() > 0 {
		for i := range docs {
			docs[i].Ord = r.varint()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return docs, nil
}

func encodeDocument(doc ir.Document) []byte {
	w := &writer{}
	w.str(doc.URL)
	w.str(doc.Text)
	w.varint(doc.Ord)
	return w.buf
}

func decodeDocument(payload []byte) (ir.Document, error) {
	r := &reader{buf: payload}
	doc := ir.Document{URL: r.str(), Text: r.str()}
	if r.err == nil && r.remaining() > 0 {
		doc.Ord = r.varint()
	}
	if r.err != nil {
		return ir.Document{}, r.err
	}
	return doc, nil
}
