package engine

import (
	"container/list"
	"strings"
	"sync"

	"dwqa/internal/nl2olap"
	"dwqa/internal/qa"
)

// NormalizeQuestion canonicalises a question for cache keying and request
// coalescing: interior whitespace collapses to single spaces and trailing
// sentence punctuation is dropped, so "What is  the weather…?" and "What
// is the weather…" share one entry. Letter case is preserved on purpose —
// the analysis pipeline is case-sensitive (capitalisation drives
// proper-noun tagging, so "El Prat" and "el prat" genuinely analyse
// differently and must not share an answer).
func NormalizeQuestion(q string) string {
	s := strings.Join(strings.Fields(q), " ")
	return strings.TrimRight(s, "?!. ")
}

// cachedAnswer is one cache value: exactly one of the two paths is set —
// the factoid result or the analytic (OLAP) answer. Both are shared with
// every caller, so cached values are read-only by contract.
type cachedAnswer struct {
	qa   *qa.Result
	olap *nl2olap.Answer
}

// answerCache is a mutex-guarded LRU of question results — factoid and
// analytic alike, so a warehouse feed invalidates both kinds at once. The
// engine flushes the cache whenever Step 5 feeds the warehouse (see
// Engine.InvalidateCache).
type answerCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key → element holding *cacheEntry
	// epoch counts flushes. put carries the epoch observed before the
	// answer was computed; a flush in between makes the insert a no-op,
	// so a result computed against the pre-feed warehouse can never be
	// re-inserted after the feed invalidated the cache.
	epoch uint64

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	res cachedAnswer
}

// newAnswerCache builds an LRU holding up to capacity entries. A capacity
// of zero or less disables caching (every get misses, puts are dropped).
func newAnswerCache(capacity int) *answerCache {
	return &answerCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result for key (if any) plus the current epoch,
// which the caller passes back to put so flushes in between drop the
// insert.
func (c *answerCache) get(key string) (cachedAnswer, bool, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return cachedAnswer{}, false, c.epoch
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true, c.epoch
}

// put inserts a result computed while the cache was at the given epoch.
// If a flush happened since (a warehouse feed invalidated everything),
// the insert is dropped — the result may describe pre-feed state.
func (c *answerCache) put(key string, res cachedAnswer, epoch uint64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// flush empties the cache and starts a new epoch (hit/miss counters
// survive, they describe the engine's lifetime).
func (c *answerCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.epoch++
}

func (c *answerCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *answerCache) counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
