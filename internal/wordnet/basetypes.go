package wordnet

// BaseType is a WordNet "unique beginner" (base type). The paper: WordNet
// "provides a main level of ontological concepts to describe all the words
// contained in the knowledge base: 25 for nouns and 15 for verbs". The QA
// answer-type taxonomy is built on these plus the EuroWordNet top concepts.
type BaseType string

// The 25 noun unique beginners.
const (
	BaseAct           BaseType = "noun.act"
	BaseAnimal        BaseType = "noun.animal"
	BaseArtifact      BaseType = "noun.artifact"
	BaseAttribute     BaseType = "noun.attribute"
	BaseBody          BaseType = "noun.body"
	BaseCognition     BaseType = "noun.cognition"
	BaseCommunication BaseType = "noun.communication"
	BaseEvent         BaseType = "noun.event"
	BaseFeeling       BaseType = "noun.feeling"
	BaseFood          BaseType = "noun.food"
	BaseGroup         BaseType = "noun.group"
	BaseLocation      BaseType = "noun.location"
	BaseMotive        BaseType = "noun.motive"
	BaseObject        BaseType = "noun.object"
	BasePerson        BaseType = "noun.person"
	BasePhenomenon    BaseType = "noun.phenomenon"
	BasePlant         BaseType = "noun.plant"
	BasePossession    BaseType = "noun.possession"
	BaseProcess       BaseType = "noun.process"
	BaseQuantity      BaseType = "noun.quantity"
	BaseRelation      BaseType = "noun.relation"
	BaseShape         BaseType = "noun.shape"
	BaseState         BaseType = "noun.state"
	BaseSubstance     BaseType = "noun.substance"
	BaseTime          BaseType = "noun.time"
)

// The 15 verb unique beginners.
const (
	BaseVerbBody        BaseType = "verb.body"
	BaseVerbChange      BaseType = "verb.change"
	BaseVerbCognition   BaseType = "verb.cognition"
	BaseVerbCommunicate BaseType = "verb.communication"
	BaseVerbCompetition BaseType = "verb.competition"
	BaseVerbConsumption BaseType = "verb.consumption"
	BaseVerbContact     BaseType = "verb.contact"
	BaseVerbCreation    BaseType = "verb.creation"
	BaseVerbEmotion     BaseType = "verb.emotion"
	BaseVerbMotion      BaseType = "verb.motion"
	BaseVerbPerception  BaseType = "verb.perception"
	BaseVerbPossession  BaseType = "verb.possession"
	BaseVerbSocial      BaseType = "verb.social"
	BaseVerbStative     BaseType = "verb.stative"
	BaseVerbWeather     BaseType = "verb.weather"
)

// BaseNone marks synsets without a unique beginner (adjectives, adverbs).
const BaseNone BaseType = ""

// NounBaseTypes lists all 25 noun unique beginners.
var NounBaseTypes = []BaseType{
	BaseAct, BaseAnimal, BaseArtifact, BaseAttribute, BaseBody,
	BaseCognition, BaseCommunication, BaseEvent, BaseFeeling, BaseFood,
	BaseGroup, BaseLocation, BaseMotive, BaseObject, BasePerson,
	BasePhenomenon, BasePlant, BasePossession, BaseProcess, BaseQuantity,
	BaseRelation, BaseShape, BaseState, BaseSubstance, BaseTime,
}

// VerbBaseTypes lists all 15 verb unique beginners.
var VerbBaseTypes = []BaseType{
	BaseVerbBody, BaseVerbChange, BaseVerbCognition, BaseVerbCommunicate,
	BaseVerbCompetition, BaseVerbConsumption, BaseVerbContact,
	BaseVerbCreation, BaseVerbEmotion, BaseVerbMotion, BaseVerbPerception,
	BaseVerbPossession, BaseVerbSocial, BaseVerbStative, BaseVerbWeather,
}
