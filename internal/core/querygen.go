package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dwqa/internal/dw"
)

// This file implements the paper's second future-work item (§5): "how an
// initial query in the DW system can generate different queries in the QA
// system". Given the OLAP query an analyst runs, the generator derives the
// natural-language questions whose answers would contextualise its result
// cells: one weather question per (destination city, month) the query
// touches, phrased like the paper's examples, with airports preferred over
// city names when the shared ontology knows one (the QA side resolves them
// back through Step 2-3 knowledge).

// GeneratedQuery pairs a natural-language question with the query cell it
// contextualises.
type GeneratedQuery struct {
	Question string
	City     string
	Month    string // Date-dimension month member, "2004-01"
}

// QuestionsFromQuery inspects an OLAP query against the sales fact and
// generates the QA questions that would fetch the missing unstructured
// context for each result cell. The query must group by a City-level
// selector of an airport-based role and (optionally) a Date-level
// selector; month coverage defaults to the pipeline's configured months.
func (p *Pipeline) QuestionsFromQuery(q dw.Query) ([]GeneratedQuery, error) {
	res, err := p.Warehouse.Execute(q)
	if err != nil {
		return nil, fmt.Errorf("core: querygen: %w", err)
	}
	cityIdx, monthIdx := -1, -1
	for i, g := range q.GroupBy {
		switch g.Level {
		case "City":
			cityIdx = i
		case "Month":
			monthIdx = i
		case "Day":
			if monthIdx == -1 {
				monthIdx = i // a Day member also identifies its month
			}
		}
	}
	if cityIdx == -1 {
		return nil, fmt.Errorf("core: querygen: the query must group by a City level to contextualise")
	}

	type cell struct{ city, month string }
	seen := map[cell]bool{}
	var cells []cell
	for _, row := range res.Rows {
		c := cell{city: row.Groups[cityIdx]}
		if monthIdx >= 0 {
			c.month = row.Groups[monthIdx][:7] // "2004-01-31" and "2004-01" both start with the month
		}
		if c.month == "" {
			for _, m := range p.Config.Months {
				mc := c
				mc.month = fmt.Sprintf("%04d-%02d", p.Config.Year, m)
				if !seen[mc] {
					seen[mc] = true
					cells = append(cells, mc)
				}
			}
			continue
		}
		if !seen[c] {
			seen[c] = true
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].city != cells[j].city {
			return cells[i].city < cells[j].city
		}
		return cells[i].month < cells[j].month
	})

	out := make([]GeneratedQuery, 0, len(cells))
	for _, c := range cells {
		var year, month int
		if _, err := fmt.Sscanf(c.month, "%d-%d", &year, &month); err != nil {
			return nil, fmt.Errorf("core: querygen: bad month member %q", c.month)
		}
		place := c.city
		// Prefer an airport name the ontology can resolve back — the
		// generated question exercises the full Step 2-3 machinery.
		if p.Ontology != nil {
			if a := p.airportInCity(c.city); a != "" {
				place = a
			}
		}
		out = append(out, GeneratedQuery{
			Question: fmt.Sprintf("What is the weather like in %s of %d in %s?",
				time.Month(month), year, place),
			City:  c.city,
			Month: c.month,
		})
	}
	return out, nil
}

// airportInCity finds an Airport instance of the shared ontology located
// in the city, preferring the alphabetically first for determinism.
func (p *Pipeline) airportInCity(city string) string {
	concept := p.Ontology.Concept("Airport")
	if concept == nil {
		return ""
	}
	var names []string
	for _, inst := range concept.Instances {
		if strings.EqualFold(inst.Properties["locatedIn"], city) {
			names = append(names, inst.Name)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[0]
}

// ContextualizeQuery is the closed loop the future work sketches: generate
// the QA questions for an OLAP query, harvest and load their answers
// (Step 5), and return how many records each question contributed. After
// it runs, re-executing the original query joins against fresh context.
func (p *Pipeline) ContextualizeQuery(q dw.Query) ([]StepResult, error) {
	if err := p.require(4); err != nil {
		return nil, err
	}
	gqs, err := p.QuestionsFromQuery(q)
	if err != nil {
		return nil, err
	}
	questions := make([]string, len(gqs))
	for i, g := range gqs {
		questions[i] = g.Question
	}
	return p.Step5FeedWarehouse(questions)
}
