// Command qacli answers ad-hoc questions against the scenario's web
// corpus through the tuned AliQAn reproduction.
//
// Usage:
//
//	qacli [-harvest] [-candidates N] "QUESTION" ["QUESTION"...]
package main

import (
	"flag"
	"fmt"
	"os"

	"dwqa"
)

func main() {
	harvest := flag.Bool("harvest", false, "print every well-formed record (Step 5 mode) instead of the best answer")
	candidates := flag.Int("candidates", 0, "also print the top N raw candidates")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: qacli [-harvest] [-candidates N] \"question\" ...")
		os.Exit(2)
	}

	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if err := p.RunAll(); err != nil {
		fatal(err)
	}

	for _, q := range flag.Args() {
		fmt.Printf("Q: %s\n", q)
		if *harvest {
			answers, _, err := p.QA.Harvest(q)
			if err != nil {
				fatal(err)
			}
			for _, a := range answers {
				fmt.Printf("   %s  <%s>\n", a.Render(), a.URL)
			}
			fmt.Printf("   (%d records)\n", len(answers))
			continue
		}
		res, err := p.Ask(q)
		if err != nil {
			fatal(err)
		}
		if res.Best == nil {
			fmt.Println("A: (no answer above threshold)")
		} else {
			fmt.Printf("A: %s\n   source: %s (score %.2f)\n", res.Best.Render(), res.Best.URL, res.Best.Score)
		}
		for i, c := range res.Candidates {
			if i >= *candidates {
				break
			}
			fmt.Printf("   cand[%d] %-30s score=%.2f %s\n", i, c.Render(), c.Score, c.URL)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qacli:", err)
	os.Exit(1)
}
