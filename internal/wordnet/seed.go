package wordnet

// This file holds the seed lexicon: the subset of WordNet the reproduction
// ships with. It intentionally contains the paper's ambiguity landscape:
//
//   - "john wayne" exists only as an actor (a person),
//   - "la guardia" exists only as a politician (a person),
//   - "kennedy international airport" exists as an instance of airport,
//     but the alias "jfk" does not (Step 3 adds it as a synonym),
//   - "el prat" exists only as a Spanish musical group,
//   - months, weekdays, cities, countries, weather vocabulary and the
//     measurement units ºC/ºF are present,
//   - "sirius" under "star" supports the paper's CLEF extraction example.
//
// Step 2/3 of the integration model then enrich this lexicon with the DW's
// airports and other instances, which is what the E-ONTO experiment
// ablates.

type seedEntry struct {
	id     string
	pos    POS
	base   BaseType
	parent string // hypernym (or instance-hypernym when inst is true)
	inst   bool
	gloss  string
	lemmas []string
}

func ls(lemmas ...string) []string { return lemmas }

var seedEntries = []seedEntry{
	// ---- top of the noun hierarchy -------------------------------------
	{"n.entity", Noun, BaseObject, "", false, "that which is perceived or known or inferred to have its own distinct existence", ls("entity")},
	{"n.physical_entity", Noun, BaseObject, "n.entity", false, "an entity that has physical existence", ls("physical entity")},
	{"n.abstraction", Noun, BaseCognition, "n.entity", false, "a general concept formed by extracting common features from specific examples", ls("abstraction", "abstract entity")},
	{"n.object", Noun, BaseObject, "n.physical_entity", false, "a tangible and visible entity", ls("object", "physical object")},
	{"n.whole", Noun, BaseObject, "n.object", false, "an assemblage of parts that is regarded as a single entity", ls("whole", "unit")},

	// ---- artifacts ------------------------------------------------------
	{"n.artifact", Noun, BaseArtifact, "n.whole", false, "a man-made object taken as a whole", ls("artifact", "artefact")},
	{"n.facility", Noun, BaseArtifact, "n.artifact", false, "a building or place that provides a particular service", ls("facility", "installation")},
	{"n.airfield", Noun, BaseArtifact, "n.facility", false, "a place where planes take off and land", ls("airfield", "landing field", "flying field")},
	{"n.airport", Noun, BaseArtifact, "n.airfield", false, "an airfield equipped with control tower and hangars as well as accommodations for passengers and cargo", ls("airport", "airdrome", "aerodrome")},
	{"n.kennedy_airport", Noun, BaseArtifact, "n.airport", true, "a large airport on Long Island to the east of New York City", ls("kennedy international airport", "kennedy international")},
	{"n.station", Noun, BaseArtifact, "n.facility", false, "a facility equipped with special equipment and personnel for a particular purpose", ls("station")},
	{"n.structure", Noun, BaseArtifact, "n.artifact", false, "a thing constructed; a complex entity constructed of many parts", ls("structure", "construction")},
	{"n.building", Noun, BaseArtifact, "n.structure", false, "a structure that has a roof and walls", ls("building", "edifice")},
	{"n.vehicle", Noun, BaseArtifact, "n.artifact", false, "a conveyance that transports people or objects", ls("vehicle")},
	{"n.aircraft", Noun, BaseArtifact, "n.vehicle", false, "a vehicle that can fly", ls("aircraft")},
	{"n.airplane", Noun, BaseArtifact, "n.aircraft", false, "an aircraft that has a fixed wing and is powered by propellers or jets", ls("airplane", "aeroplane", "plane")},
	{"n.document", Noun, BaseCommunication, "n.artifact", false, "writing that provides information", ls("document")},
	{"n.ticket", Noun, BaseArtifact, "n.document", false, "a commercial document showing that the holder is entitled to something", ls("ticket")},
	{"n.report", Noun, BaseCommunication, "n.document", false, "a written document describing the findings of some individual or group", ls("report", "study", "written report")},
	{"n.web_page", Noun, BaseCommunication, "n.document", false, "a document connected to the World Wide Web", ls("web page", "webpage", "website")},
	{"n.email", Noun, BaseCommunication, "n.document", false, "a message sent electronically", ls("email", "e-mail", "electronic mail")},

	// ---- natural objects ------------------------------------------------
	{"n.natural_object", Noun, BaseObject, "n.whole", false, "an object occurring naturally; not made by man", ls("natural object")},
	{"n.celestial_body", Noun, BaseObject, "n.natural_object", false, "natural objects visible in the sky", ls("celestial body", "heavenly body")},
	{"n.star", Noun, BaseObject, "n.celestial_body", false, "a celestial body of hot gases that radiates energy", ls("star")},
	{"n.sirius", Noun, BaseObject, "n.star", true, "the brightest star in the sky; in Canis Major", ls("sirius", "dog star", "canicula")},
	{"n.sun", Noun, BaseObject, "n.star", true, "the star that is the source of light and heat for the planets in the solar system", ls("sun")},
	{"n.sky", Noun, BaseObject, "n.natural_object", false, "the atmosphere and outer space as viewed from the earth", ls("sky")},

	// ---- living things and persons ---------------------------------------
	{"n.living_thing", Noun, BaseObject, "n.object", false, "a living (or once living) entity", ls("living thing", "animate thing")},
	{"n.organism", Noun, BaseObject, "n.living_thing", false, "a living thing that has the ability to act or function independently", ls("organism", "being")},
	{"n.person", Noun, BasePerson, "n.organism", false, "a human being", ls("person", "individual", "someone", "somebody", "human")},
	{"n.worker", Noun, BasePerson, "n.person", false, "a person who works at a specific occupation", ls("worker")},
	{"n.professional", Noun, BasePerson, "n.worker", false, "a person engaged in one of the learned professions", ls("professional", "professional person")},
	{"n.performer", Noun, BasePerson, "n.professional", false, "an entertainer who performs a dramatic or musical work for an audience", ls("performer", "entertainer")},
	{"n.actor", Noun, BasePerson, "n.performer", false, "a theatrical performer", ls("actor", "histrion", "player")},
	{"n.john_wayne_person", Noun, BasePerson, "n.actor", true, "United States film actor who played tough heroes (1907-1979)", ls("john wayne", "duke wayne")},
	{"n.musician", Noun, BasePerson, "n.performer", false, "artist who composes or conducts music as a profession", ls("musician")},
	{"n.politician", Noun, BasePerson, "n.professional", false, "a leader engaged in civil administration", ls("politician", "politico")},
	{"n.la_guardia_person", Noun, BasePerson, "n.politician", true, "United States politician who was mayor of New York (1882-1947)", ls("la guardia", "fiorello la guardia")},
	{"n.traveler", Noun, BasePerson, "n.person", false, "a person who changes location", ls("traveler", "traveller")},
	{"n.passenger", Noun, BasePerson, "n.traveler", false, "a traveler riding in a vehicle who is not operating it", ls("passenger", "rider")},
	{"n.consumer", Noun, BasePerson, "n.person", false, "a person who uses goods or services", ls("consumer")},
	{"n.customer", Noun, BasePerson, "n.consumer", false, "someone who pays for goods or services", ls("customer", "client", "buyer")},
	{"n.manager", Noun, BasePerson, "n.worker", false, "someone who controls resources and expenditures", ls("manager", "director")},
	{"n.analyst", Noun, BasePerson, "n.professional", false, "someone who is skilled at analyzing data", ls("analyst")},

	// ---- locations -------------------------------------------------------
	{"n.location", Noun, BaseLocation, "n.object", false, "a point or extent in space", ls("location")},
	{"n.region", Noun, BaseLocation, "n.location", false, "a large indefinite location on the surface of the Earth", ls("region")},
	{"n.district", Noun, BaseLocation, "n.region", false, "a region marked off for administrative or other purposes", ls("district", "territory")},
	{"n.administrative_district", Noun, BaseLocation, "n.district", false, "a district defined for administrative purposes", ls("administrative district", "administrative division")},
	{"n.country", Noun, BaseLocation, "n.administrative_district", false, "the territory occupied by a nation", ls("country", "state", "land")},
	{"n.state_province", Noun, BaseLocation, "n.administrative_district", false, "the territory occupied by one of the constituent administrative districts of a nation", ls("state", "province")},
	{"n.municipality", Noun, BaseLocation, "n.administrative_district", false, "an urban district having corporate status", ls("municipality")},
	{"n.city", Noun, BaseLocation, "n.municipality", false, "a large and densely populated urban area", ls("city", "metropolis", "urban center")},
	{"n.capital_city", Noun, BaseLocation, "n.city", false, "a seat of government", ls("capital")},
	{"n.town", Noun, BaseLocation, "n.municipality", false, "an urban area with a fixed boundary that is smaller than a city", ls("town")},

	// Countries.
	{"n.spain", Noun, BaseLocation, "n.country", true, "a parliamentary monarchy in southwestern Europe", ls("spain", "kingdom of spain")},
	{"n.france", Noun, BaseLocation, "n.country", true, "a republic in western Europe", ls("france", "french republic")},
	{"n.iraq", Noun, BaseLocation, "n.country", true, "a republic in the Middle East in western Asia", ls("iraq", "republic of iraq")},
	{"n.kuwait", Noun, BaseLocation, "n.country", true, "an Arab kingdom in Asia on the northwestern coast of the Persian Gulf", ls("kuwait", "state of kuwait")},
	{"n.united_states", Noun, BaseLocation, "n.country", true, "North American republic", ls("united states", "united states of america", "usa", "america", "us")},
	{"n.germany", Noun, BaseLocation, "n.country", true, "a republic in central Europe", ls("germany", "federal republic of germany")},
	{"n.italy", Noun, BaseLocation, "n.country", true, "a republic in southern Europe", ls("italy", "italian republic")},
	{"n.united_kingdom", Noun, BaseLocation, "n.country", true, "a monarchy in northwestern Europe", ls("united kingdom", "uk", "great britain", "britain")},
	{"n.switzerland", Noun, BaseLocation, "n.country", true, "a landlocked federal republic in central Europe", ls("switzerland", "swiss confederation")},

	// States / provinces.
	{"n.california", Noun, BaseLocation, "n.state_province", true, "a state in the western United States on the Pacific", ls("california", "golden state", "ca")},
	{"n.new_york_state", Noun, BaseLocation, "n.state_province", true, "a Mid-Atlantic state; one of the original 13 colonies", ls("new york", "new york state", "ny")},
	{"n.catalonia", Noun, BaseLocation, "n.state_province", true, "a region of northeastern Spain", ls("catalonia", "cataluna")},

	// Cities.
	{"n.barcelona", Noun, BaseLocation, "n.city", true, "a city in northeastern Spain on the Mediterranean; 2nd largest Spanish city", ls("barcelona")},
	{"n.madrid", Noun, BaseLocation, "n.capital_city", true, "the capital and largest city of Spain", ls("madrid", "capital of spain")},
	{"n.valencia", Noun, BaseLocation, "n.city", true, "a city in eastern Spain on the Mediterranean", ls("valencia")},
	{"n.seville", Noun, BaseLocation, "n.city", true, "a city in southwestern Spain", ls("seville", "sevilla")},
	{"n.bilbao", Noun, BaseLocation, "n.city", true, "a city in northern Spain", ls("bilbao")},
	{"n.alicante", Noun, BaseLocation, "n.city", true, "a port city on the Mediterranean coast of Spain", ls("alicante")},
	{"n.new_york_city", Noun, BaseLocation, "n.city", true, "the largest city in the United States", ls("new york", "new york city", "greater new york")},
	{"n.costa_mesa", Noun, BaseLocation, "n.city", true, "a city in southern California", ls("costa mesa")},
	{"n.paris", Noun, BaseLocation, "n.capital_city", true, "the capital and largest city of France", ls("paris", "city of light", "capital of france")},
	{"n.london", Noun, BaseLocation, "n.capital_city", true, "the capital and largest city of England", ls("london", "greater london")},
	{"n.rome", Noun, BaseLocation, "n.capital_city", true, "capital and largest city of Italy", ls("rome", "roma", "eternal city")},
	{"n.lausanne", Noun, BaseLocation, "n.city", true, "a city in western Switzerland on Lake Geneva", ls("lausanne")},

	// ---- processes and weather phenomena ---------------------------------
	{"n.process", Noun, BaseProcess, "n.physical_entity", false, "a sustained phenomenon or one marked by gradual changes", ls("process", "physical process")},
	{"n.phenomenon", Noun, BasePhenomenon, "n.process", false, "any state or process known through the senses", ls("phenomenon")},
	{"n.natural_phenomenon", Noun, BasePhenomenon, "n.phenomenon", false, "all phenomena that are not artificial", ls("natural phenomenon")},
	{"n.physical_phenomenon", Noun, BasePhenomenon, "n.natural_phenomenon", false, "a natural phenomenon involving the physical properties of matter and energy", ls("physical phenomenon")},
	{"n.atmospheric_phenomenon", Noun, BasePhenomenon, "n.physical_phenomenon", false, "a physical phenomenon associated with the atmosphere", ls("atmospheric phenomenon")},
	{"n.weather", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "the atmospheric conditions that comprise the state of the atmosphere in terms of temperature and wind and clouds and precipitation", ls("weather", "weather condition", "atmospheric condition", "conditions")},
	{"n.precipitation", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "the falling to earth of any form of water", ls("precipitation", "downfall")},
	{"n.rain", Noun, BasePhenomenon, "n.precipitation", false, "water falling in drops from vapor condensed in the atmosphere", ls("rain", "rainfall")},
	{"n.snow", Noun, BasePhenomenon, "n.precipitation", false, "precipitation falling from clouds in the form of ice crystals", ls("snow", "snowfall")},
	{"n.wind", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "air moving from an area of high pressure to an area of low pressure", ls("wind", "air current", "current of air")},
	{"n.storm", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "a violent weather condition", ls("storm", "violent storm")},
	{"n.fog", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "droplets of water vapor suspended in the air near the ground", ls("fog", "fogginess", "mist")},
	{"n.climate", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "the weather in some location averaged over a long period of time", ls("climate", "clime")},

	// ---- attributes and measures ------------------------------------------
	{"n.attribute", Noun, BaseAttribute, "n.abstraction", false, "an abstraction belonging to or characteristic of an entity", ls("attribute")},
	{"n.property", Noun, BaseAttribute, "n.attribute", false, "a basic or essential attribute shared by all members of a class", ls("property")},
	{"n.temperature", Noun, BaseAttribute, "n.property", false, "the degree of hotness or coldness of a body or environment", ls("temperature")},
	{"n.low_temperature", Noun, BaseAttribute, "n.temperature", false, "the absence of heat", ls("low temperature", "cold", "frigidity")},
	{"n.high_temperature", Noun, BaseAttribute, "n.temperature", false, "the presence of heat", ls("high temperature", "hotness", "heat")},
	{"n.measure", Noun, BaseQuantity, "n.abstraction", false, "how much there is or how many there are of something that you can quantify", ls("measure", "quantity", "amount")},
	{"n.unit_of_measurement", Noun, BaseQuantity, "n.measure", false, "any division of quantity accepted as a standard of measurement or exchange", ls("unit of measurement", "unit")},
	{"n.temperature_unit", Noun, BaseQuantity, "n.unit_of_measurement", false, "a unit of measurement for temperature", ls("temperature unit")},
	{"n.degree_celsius", Noun, BaseQuantity, "n.temperature_unit", false, "a degree on the centigrade scale of temperature", ls("degree celsius", "celsius", "centigrade", "c", "ºc")},
	{"n.degree_fahrenheit", Noun, BaseQuantity, "n.temperature_unit", false, "a degree on the Fahrenheit scale of temperature", ls("degree fahrenheit", "fahrenheit", "f", "ºf")},
	{"n.degree", Noun, BaseQuantity, "n.unit_of_measurement", false, "a unit of measurement for angles or temperature", ls("degree")},
	{"n.linear_unit", Noun, BaseQuantity, "n.unit_of_measurement", false, "a unit of measurement of length", ls("linear unit", "linear measure")},
	{"n.mile", Noun, BaseQuantity, "n.linear_unit", false, "a unit of length equal to 1760 yards", ls("mile", "statute mile")},
	{"n.monetary_unit", Noun, BaseQuantity, "n.unit_of_measurement", false, "a unit of money", ls("monetary unit")},
	{"n.euro", Noun, BaseQuantity, "n.monetary_unit", true, "the basic monetary unit of most members of the European Union", ls("euro")},
	{"n.dollar", Noun, BaseQuantity, "n.monetary_unit", true, "the basic monetary unit of the United States", ls("dollar")},
	{"n.number", Noun, BaseQuantity, "n.measure", false, "a concept of quantity involving zero and units", ls("number", "figure")},
	{"n.percentage", Noun, BaseQuantity, "n.number", false, "a proportion in relation to a whole expressed per hundred", ls("percentage", "percent", "pct")},
	{"n.age", Noun, BaseAttribute, "n.property", false, "how long something has existed", ls("age")},

	// ---- time --------------------------------------------------------------
	{"n.time_period", Noun, BaseTime, "n.measure", false, "an amount of time", ls("time period", "period", "period of time")},
	{"n.year", Noun, BaseTime, "n.time_period", false, "a period of time containing 365 (or 366) days", ls("year", "twelvemonth")},
	{"n.season", Noun, BaseTime, "n.time_period", false, "one of the natural periods into which the year is divided", ls("season", "time of year")},
	{"n.quarter", Noun, BaseTime, "n.time_period", false, "a fourth part of a year", ls("quarter", "trimester")},
	{"n.month", Noun, BaseTime, "n.time_period", false, "one of the twelve divisions of the calendar year", ls("month", "calendar month")},
	{"n.week", Noun, BaseTime, "n.time_period", false, "a period of seven consecutive days", ls("week", "calendar week")},
	{"n.day", Noun, BaseTime, "n.time_period", false, "time for Earth to make a complete rotation on its axis", ls("day", "twenty-four hours")},
	{"n.date", Noun, BaseTime, "n.day", false, "the specified day of the month", ls("date", "calendar date")},
	{"n.today", Noun, BaseTime, "n.day", false, "the day that includes the present moment", ls("today")},

	// Months.
	{"n.january", Noun, BaseTime, "n.month", false, "the first month of the year", ls("january", "jan")},
	{"n.february", Noun, BaseTime, "n.month", false, "the second month of the year", ls("february", "feb")},
	{"n.march", Noun, BaseTime, "n.month", false, "the third month of the year", ls("march", "mar")},
	{"n.april", Noun, BaseTime, "n.month", false, "the fourth month of the year", ls("april", "apr")},
	{"n.may", Noun, BaseTime, "n.month", false, "the fifth month of the year", ls("may")},
	{"n.june", Noun, BaseTime, "n.month", false, "the sixth month of the year", ls("june", "jun")},
	{"n.july", Noun, BaseTime, "n.month", false, "the seventh month of the year", ls("july", "jul")},
	{"n.august", Noun, BaseTime, "n.month", false, "the eighth month of the year", ls("august", "aug")},
	{"n.september", Noun, BaseTime, "n.month", false, "the ninth month of the year", ls("september", "sep", "sept")},
	{"n.october", Noun, BaseTime, "n.month", false, "the tenth month of the year", ls("october", "oct")},
	{"n.november", Noun, BaseTime, "n.month", false, "the eleventh month of the year", ls("november", "nov")},
	{"n.december", Noun, BaseTime, "n.month", false, "the last month of the year", ls("december", "dec")},

	// Weekdays.
	{"n.monday", Noun, BaseTime, "n.day", false, "the second day of the week; the first working day", ls("monday", "mon")},
	{"n.tuesday", Noun, BaseTime, "n.day", false, "the third day of the week", ls("tuesday", "tue")},
	{"n.wednesday", Noun, BaseTime, "n.day", false, "the fourth day of the week", ls("wednesday", "wed")},
	{"n.thursday", Noun, BaseTime, "n.day", false, "the fifth day of the week", ls("thursday", "thu")},
	{"n.friday", Noun, BaseTime, "n.day", false, "the sixth day of the week", ls("friday", "fri")},
	{"n.saturday", Noun, BaseTime, "n.day", false, "the seventh and last day of the week", ls("saturday", "sat")},
	{"n.sunday", Noun, BaseTime, "n.day", false, "first day of the week", ls("sunday", "sun")},

	// ---- groups and organizations -------------------------------------------
	{"n.group", Noun, BaseGroup, "n.abstraction", false, "any number of entities (members) considered as a unit", ls("group", "grouping")},
	{"n.social_group", Noun, BaseGroup, "n.group", false, "people sharing some social relation", ls("social group")},
	{"n.organization", Noun, BaseGroup, "n.social_group", false, "a group of people who work together", ls("organization", "organisation")},
	{"n.company", Noun, BaseGroup, "n.organization", false, "an institution created to conduct business", ls("company", "firm", "business")},
	{"n.airline", Noun, BaseGroup, "n.company", false, "a commercial enterprise that provides scheduled flights for passengers", ls("airline", "airline business", "airway")},
	{"n.musical_group", Noun, BaseGroup, "n.social_group", false, "an organization of musicians who perform together", ls("musical group", "musical organization", "band")},
	{"n.el_prat_band", Noun, BaseGroup, "n.musical_group", true, "a Spanish musical group", ls("el prat")},
	{"n.department", Noun, BaseGroup, "n.organization", false, "a specialized division of a large organization", ls("department", "section")},

	// ---- communication --------------------------------------------------------
	{"n.communication", Noun, BaseCommunication, "n.abstraction", false, "something that is communicated by or to or between people or groups", ls("communication")},
	{"n.name", Noun, BaseCommunication, "n.communication", false, "a language unit by which a person or thing is known", ls("name")},
	{"n.abbreviation", Noun, BaseCommunication, "n.name", false, "a shortened form of a word or phrase", ls("abbreviation", "acronym")},
	{"n.question", Noun, BaseCommunication, "n.communication", false, "a sentence of inquiry that asks for a reply", ls("question", "query", "interrogation")},
	{"n.answer", Noun, BaseCommunication, "n.communication", false, "a statement that solves a problem or explains how to solve the problem", ls("answer", "reply", "response")},
	{"n.definition", Noun, BaseCommunication, "n.communication", false, "a concise explanation of the meaning of a word or phrase", ls("definition")},

	// ---- acts and events --------------------------------------------------------
	{"n.act", Noun, BaseAct, "n.abstraction", false, "something that people do or cause to happen", ls("act", "deed", "human action")},
	{"n.activity", Noun, BaseAct, "n.act", false, "any specific behavior", ls("activity")},
	{"n.transaction", Noun, BaseAct, "n.activity", false, "the act of transacting within or between groups", ls("transaction", "dealing", "dealings")},
	{"n.sale", Noun, BaseAct, "n.transaction", false, "the general activity of selling", ls("sale")},
	{"n.purchase", Noun, BaseAct, "n.transaction", false, "the acquisition of something for payment", ls("purchase")},
	{"n.travel", Noun, BaseAct, "n.activity", false, "the act of going from one place to another", ls("travel", "traveling", "travelling")},
	{"n.air_travel", Noun, BaseAct, "n.travel", false, "travel via aircraft", ls("air travel", "aviation", "air")},
	{"n.flight", Noun, BaseAct, "n.air_travel", false, "a scheduled trip by plane between designated airports", ls("flight")},
	{"n.promotion", Noun, BaseCommunication, "n.communication", false, "a message issued in behalf of some product or cause", ls("promotion", "publicity", "promotional material")},
	{"n.occupation", Noun, BaseAct, "n.activity", false, "the principal activity in your life that you do to earn money", ls("occupation", "profession", "job", "line of work")},
	{"n.analysis", Noun, BaseAct, "n.activity", false, "an investigation of the component parts of a whole", ls("analysis")},
	{"n.event", Noun, BaseEvent, "n.abstraction", false, "something that happens at a given place and time", ls("event")},

	// ---- possessions -------------------------------------------------------------
	{"n.possession", Noun, BasePossession, "n.abstraction", false, "anything owned or possessed", ls("possession")},
	{"n.cost", Noun, BasePossession, "n.possession", false, "the total spent for goods or services", ls("cost", "expense")},
	{"n.price", Noun, BasePossession, "n.cost", false, "the amount of money needed to purchase something", ls("price", "terms", "damage")},
	{"n.money", Noun, BasePossession, "n.possession", false, "the most common medium of exchange", ls("money")},
	{"n.currency", Noun, BasePossession, "n.money", false, "the metal or paper medium of exchange that is presently used", ls("currency")},
	{"n.benefit", Noun, BasePossession, "n.possession", false, "financial assistance in time of need; something that aids", ls("benefit", "profit", "gain")},

	// ---- relations and cognition ----------------------------------------------------
	{"n.relation", Noun, BaseRelation, "n.abstraction", false, "an abstraction belonging to or characteristic of two entities together", ls("relation")},
	{"n.rate", Noun, BaseRelation, "n.relation", false, "a magnitude or frequency relative to a time unit", ls("rate", "charge per unit")},
	{"n.cognition", Noun, BaseCognition, "n.abstraction", false, "the psychological result of perception and learning and reasoning", ls("cognition", "knowledge")},
	{"n.information", Noun, BaseCognition, "n.cognition", false, "knowledge acquired through study or experience", ls("information", "info")},
	{"n.data", Noun, BaseCognition, "n.information", false, "a collection of facts from which conclusions may be drawn", ls("data", "datum")},
	{"n.state_condition", Noun, BaseState, "n.attribute", false, "the way something is with respect to its main attributes", ls("condition", "status")},

	// ---- verbs ----------------------------------------------------------------------
	{"v.be", Verb, BaseVerbStative, "", false, "have the quality of being", ls("be", "exist")},
	{"v.have", Verb, BaseVerbPossession, "", false, "have or possess", ls("have", "possess", "own")},
	{"v.buy", Verb, BaseVerbPossession, "", false, "obtain by purchase", ls("buy", "purchase")},
	{"v.sell", Verb, BaseVerbPossession, "", false, "exchange or deliver for money", ls("sell")},
	{"v.feed", Verb, BaseVerbPossession, "", false, "provide as food or supply", ls("feed", "provide", "supply")},
	{"v.invade", Verb, BaseVerbCompetition, "", false, "march aggressively into another's territory", ls("invade", "occupy")},
	{"v.travel", Verb, BaseVerbMotion, "", false, "change location; move", ls("travel", "go", "move", "locomote")},
	{"v.fly", Verb, BaseVerbMotion, "v.travel", false, "travel through the air", ls("fly", "wing")},
	{"v.arrive", Verb, BaseVerbMotion, "v.travel", false, "reach a destination", ls("arrive", "get", "come")},
	{"v.depart", Verb, BaseVerbMotion, "v.travel", false, "leave; go away from a place", ls("depart", "leave", "take off")},
	{"v.rain", Verb, BaseVerbWeather, "", false, "precipitate as rain", ls("rain", "rain down")},
	{"v.snow", Verb, BaseVerbWeather, "", false, "fall as snow", ls("snow")},
	{"v.shine", Verb, BaseVerbWeather, "", false, "emit light", ls("shine", "beam")},
	{"v.increase", Verb, BaseVerbChange, "", false, "become bigger or greater in amount", ls("increase", "rise", "grow")},
	{"v.decrease", Verb, BaseVerbChange, "", false, "decrease in size, extent, or range", ls("decrease", "diminish", "fall", "drop")},
	{"v.reach", Verb, BaseVerbContact, "", false, "reach a point in time, or a certain state or level", ls("reach", "attain", "hit")},
	{"v.measure", Verb, BaseVerbCognition, "", false, "determine the measurements of something", ls("measure", "mensurate")},
	{"v.analyze", Verb, BaseVerbCognition, "", false, "consider in detail in order to discover essential features", ls("analyze", "analyse", "study", "examine")},
	{"v.know", Verb, BaseVerbCognition, "", false, "be cognizant or aware of a fact", ls("know", "cognize")},
	{"v.say", Verb, BaseVerbCommunicate, "", false, "express in words", ls("say", "state", "tell")},
	{"v.ask", Verb, BaseVerbCommunicate, "", false, "make a request or inquiry", ls("ask", "inquire", "enquire")},
	{"v.make", Verb, BaseVerbCreation, "", false, "make or cause to be or to become", ls("make", "create")},
	{"v.see", Verb, BaseVerbPerception, "", false, "perceive by sight", ls("see", "perceive")},
	{"v.record", Verb, BaseVerbCommunicate, "", false, "make a record of; set down in permanent form", ls("record", "register")},

	// ---- adjectives -------------------------------------------------------------------
	{"a.hot", Adjective, BaseNone, "", false, "used of physical heat; having a high temperature", ls("hot")},
	{"a.cold", Adjective, BaseNone, "", false, "having a low temperature", ls("cold")},
	{"a.warm", Adjective, BaseNone, "", false, "having a moderately high temperature", ls("warm")},
	{"a.cool", Adjective, BaseNone, "", false, "neither warm nor very cold", ls("cool")},
	{"a.mild", Adjective, BaseNone, "", false, "mild weather lacking extremes of temperature", ls("mild", "balmy", "temperate")},
	{"a.clear", Adjective, BaseNone, "", false, "free from clouds or mist or haze", ls("clear")},
	{"a.sunny", Adjective, BaseNone, "", false, "bright with sunlight", ls("sunny", "cheery")},
	{"a.cloudy", Adjective, BaseNone, "", false, "full of or covered with clouds", ls("cloudy", "overcast")},
	{"a.rainy", Adjective, BaseNone, "", false, "marked by rain", ls("rainy", "showery", "wet")},
	{"a.bright", Adjective, BaseNone, "", false, "emitting or reflecting light readily or in large amounts", ls("bright", "brilliant")},
	{"a.cheap", Adjective, BaseNone, "", false, "relatively low in price", ls("cheap", "inexpensive")},
	{"a.expensive", Adjective, BaseNone, "", false, "high in price", ls("expensive", "costly", "dear")},
	{"a.visible", Adjective, BaseNone, "", false, "capable of being seen", ls("visible", "seeable")},
	{"a.economic", Adjective, BaseNone, "", false, "of or relating to an economy", ls("economic", "economical")},

	// ---- adverbs ----------------------------------------------------------------------
	{"r.approximately", Adverb, BaseNone, "", false, "imprecise but fairly close to correct", ls("approximately", "about", "around", "roughly", "some")},
	{"r.daily", Adverb, BaseNone, "", false, "every day; without missing a day", ls("daily", "every day")},

	// ---- broader geography ---------------------------------------------------------
	{"n.continent", Noun, BaseLocation, "n.region", false, "one of the large landmasses of the earth", ls("continent")},
	{"n.europe", Noun, BaseLocation, "n.continent", true, "the second smallest continent", ls("europe")},
	{"n.asia", Noun, BaseLocation, "n.continent", true, "the largest continent", ls("asia")},
	{"n.america_continent", Noun, BaseLocation, "n.continent", true, "the landmasses of the western hemisphere", ls("americas")},
	{"n.island", Noun, BaseLocation, "n.region", false, "a land mass that is surrounded by water", ls("island")},
	{"n.mountain", Noun, BaseObject, "n.natural_object", false, "a land mass that projects well above its surroundings", ls("mountain", "mount")},
	{"n.river", Noun, BaseObject, "n.natural_object", false, "a large natural stream of water", ls("river")},
	{"n.sea", Noun, BaseObject, "n.natural_object", false, "a division of an ocean", ls("sea")},
	{"n.ocean", Noun, BaseObject, "n.natural_object", false, "a large body of salt water", ls("ocean")},
	{"n.coast", Noun, BaseLocation, "n.region", false, "the shore of a sea or ocean", ls("coast", "seashore", "seacoast")},
	{"n.mediterranean", Noun, BaseObject, "n.sea", true, "the largest inland sea, between Europe and Africa", ls("mediterranean", "mediterranean sea")},

	// ---- travel infrastructure ------------------------------------------------------
	{"n.hotel", Noun, BaseArtifact, "n.building", false, "a building where travelers can pay for lodging", ls("hotel")},
	{"n.terminal", Noun, BaseArtifact, "n.station", false, "a facility where passengers assemble", ls("terminal", "terminus")},
	{"n.gate", Noun, BaseArtifact, "n.structure", false, "passageway through which passengers embark", ls("gate")},
	{"n.runway", Noun, BaseArtifact, "n.structure", false, "a strip of level paved surface where planes take off and land", ls("runway")},
	{"n.bridge", Noun, BaseArtifact, "n.structure", false, "a structure that allows people or vehicles to cross an obstacle", ls("bridge", "span")},
	{"n.luggage", Noun, BaseArtifact, "n.artifact", false, "cases used to carry belongings when traveling", ls("luggage", "baggage")},
	{"n.passport", Noun, BaseCommunication, "n.document", false, "a document issued by a country to a citizen", ls("passport")},
	{"n.crew", Noun, BaseGroup, "n.social_group", false, "the men and women who man a vehicle", ls("crew")},

	// ---- economy ----------------------------------------------------------------------
	{"n.economy", Noun, BaseGroup, "n.group", false, "the system of production and distribution and consumption", ls("economy", "economic system")},
	{"n.market", Noun, BaseGroup, "n.group", false, "the world of commercial activity", ls("market", "marketplace")},
	{"n.inflation", Noun, BaseProcess, "n.process", false, "a general and progressive increase in prices", ls("inflation", "rising prices")},
	{"n.recession", Noun, BaseProcess, "n.process", false, "the state of the economy declining", ls("recession")},
	{"n.crisis", Noun, BaseState, "n.state_condition", false, "an unstable situation of extreme danger or difficulty", ls("crisis")},
	{"n.tax", Noun, BasePossession, "n.cost", false, "charge against a citizen's person or property", ls("tax", "taxation")},
	{"n.revenue", Noun, BasePossession, "n.possession", false, "the entire amount of income", ls("revenue", "gross", "receipts")},
	{"n.discount", Noun, BasePossession, "n.cost", false, "a reduction in price", ls("discount", "price reduction", "deduction")},
	{"n.fare", Noun, BasePossession, "n.price", false, "the sum charged for riding in a public conveyance", ls("fare", "transportation fee")},
	{"n.stock", Noun, BasePossession, "n.possession", false, "capital raised by a corporation", ls("stock")},

	// ---- time extras --------------------------------------------------------------------
	{"n.decade", Noun, BaseTime, "n.time_period", false, "a period of 10 years", ls("decade", "decennary")},
	{"n.century", Noun, BaseTime, "n.time_period", false, "a period of 100 years", ls("century")},
	{"n.hour", Noun, BaseTime, "n.time_period", false, "a period of time equal to 60 minutes", ls("hour", "60 minutes")},
	{"n.minute", Noun, BaseTime, "n.time_period", false, "a unit of time equal to 60 seconds", ls("minute", "min")},
	{"n.weekend", Noun, BaseTime, "n.time_period", false, "a time period usually extending from Friday night through Sunday", ls("weekend")},
	{"n.holiday", Noun, BaseTime, "n.day", false, "a day on which work is suspended", ls("holiday")},
	{"n.summer", Noun, BaseTime, "n.season", false, "the warmest season of the year", ls("summer", "summertime")},
	{"n.winter", Noun, BaseTime, "n.season", false, "the coldest season of the year", ls("winter", "wintertime")},
	{"n.spring", Noun, BaseTime, "n.season", false, "the season of growth", ls("spring", "springtime")},
	{"n.autumn", Noun, BaseTime, "n.season", false, "the season when the leaves fall", ls("autumn", "fall")},

	// ---- weather extras ------------------------------------------------------------------
	{"n.humidity", Noun, BaseState, "n.state_condition", false, "wetness in the atmosphere", ls("humidity", "humidness")},
	{"n.pressure", Noun, BasePhenomenon, "n.physical_phenomenon", false, "the force applied to a unit area of surface", ls("pressure", "atmospheric pressure")},
	{"n.sunshine", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "the rays of the sun", ls("sunshine", "sunlight")},
	{"n.thunderstorm", Noun, BasePhenomenon, "n.storm", false, "a storm resulting from strong rising air currents", ls("thunderstorm", "electrical storm")},
	{"n.hail", Noun, BasePhenomenon, "n.precipitation", false, "precipitation of ice pellets", ls("hail")},
	{"n.drizzle", Noun, BasePhenomenon, "n.rain", false, "very light rain", ls("drizzle", "mizzle")},
	{"n.cloud", Noun, BasePhenomenon, "n.atmospheric_phenomenon", false, "a visible mass of water droplets suspended in the air", ls("cloud")},
	{"n.forecast", Noun, BaseCommunication, "n.communication", false, "a prediction about how something will develop", ls("forecast", "prognosis")},

	// ---- more persons ----------------------------------------------------------------------
	{"n.mayor", Noun, BasePerson, "n.politician", false, "the head of a city government", ls("mayor", "city manager")},
	{"n.president", Noun, BasePerson, "n.politician", false, "the chief executive of a republic", ls("president")},
	{"n.king", Noun, BasePerson, "n.person", false, "a male sovereign", ls("king", "male monarch")},
	{"n.pilot", Noun, BasePerson, "n.professional", false, "someone who is licensed to operate an aircraft", ls("pilot", "airplane pilot")},
	{"n.writer", Noun, BasePerson, "n.professional", false, "a person who writes books or articles", ls("writer", "author")},
	{"n.scientist", Noun, BasePerson, "n.professional", false, "a person with advanced knowledge of a science", ls("scientist")},
	{"n.astronomer", Noun, BasePerson, "n.scientist", false, "a scientist who studies celestial bodies", ls("astronomer", "stargazer")},
	{"n.critic", Noun, BasePerson, "n.professional", false, "someone who judges the merits of works of art", ls("critic")},
	{"n.fan", Noun, BasePerson, "n.person", false, "an enthusiastic devotee", ls("fan", "devotee")},

	// ---- arts and conflict (distractor-page vocabulary) --------------------------------------
	{"n.music", Noun, BaseCommunication, "n.communication", false, "an artistic form of auditory communication", ls("music")},
	{"n.album", Noun, BaseArtifact, "n.artifact", false, "one or more recordings issued together", ls("album", "record album")},
	{"n.song", Noun, BaseCommunication, "n.music", false, "a short musical composition with words", ls("song", "vocal")},
	{"n.concert", Noun, BaseEvent, "n.event", false, "a performance of music by players or singers", ls("concert")},
	{"n.film", Noun, BaseCommunication, "n.communication", false, "a form of entertainment that enacts a story", ls("film", "movie", "picture")},
	{"n.western", Noun, BaseCommunication, "n.film", false, "a film about life in the western United States", ls("western")},
	{"n.award", Noun, BasePossession, "n.possession", false, "a tangible symbol signifying approval or distinction", ls("award", "prize")},
	{"n.war", Noun, BaseAct, "n.act", false, "the waging of armed conflict against an enemy", ls("war", "warfare")},
	{"n.invasion", Noun, BaseAct, "n.act", false, "the act of invading with armed forces", ls("invasion")},
	{"n.coalition", Noun, BaseGroup, "n.organization", false, "an organization formed by merging several groups", ls("coalition", "alliance")},
	{"n.conflict", Noun, BaseAct, "n.war", false, "an open clash between two opposing groups", ls("conflict", "struggle")},
	{"n.interview", Noun, BaseCommunication, "n.communication", false, "the questioning of a person", ls("interview")},
	{"n.term_of_office", Noun, BaseTime, "n.time_period", false, "the period during which someone holds an office", ls("term", "term of office")},

	// ---- more verbs ----------------------------------------------------------------------------
	{"v.play", Verb, BaseVerbCompetition, "", false, "participate in games or perform music", ls("play")},
	{"v.win", Verb, BaseVerbCompetition, "", false, "be the winner in a contest", ls("win")},
	{"v.serve", Verb, BaseVerbSocial, "", false, "do duty or hold office", ls("serve")},
	{"v.found", Verb, BaseVerbCreation, "", false, "set up or lay the groundwork for", ls("found", "establish")},
	{"v.star", Verb, BaseVerbSocial, "", false, "be the star in a performance", ls("star")},
	{"v.publish", Verb, BaseVerbCommunicate, "", false, "prepare and issue for public distribution", ls("publish", "print")},
	{"v.mention", Verb, BaseVerbCommunicate, "", false, "make reference to", ls("mention", "note", "remark")},
	{"v.join", Verb, BaseVerbSocial, "", false, "become part of or member of", ls("join")},
	{"v.open", Verb, BaseVerbContact, "", false, "cause to open or become open", ls("open")},
	{"v.visit", Verb, BaseVerbSocial, "", false, "go to see a place", ls("visit")},
	{"v.adjust", Verb, BaseVerbChange, "", false, "alter or regulate so as to achieve accuracy", ls("adjust", "set", "correct")},
	{"v.maximize", Verb, BaseVerbChange, "", false, "make as big or large as possible", ls("maximize", "maximise")},
	{"v.start", Verb, BaseVerbChange, "", false, "set in motion, cause to begin", ls("start", "begin", "initiate")},
	{"v.pay", Verb, BaseVerbPossession, "", false, "give money in exchange for goods or services", ls("pay")},
	{"v.cost", Verb, BaseVerbStative, "", false, "be priced at", ls("cost", "be priced at")},
	{"v.land", Verb, BaseVerbMotion, "v.arrive", false, "bring a plane down to the ground", ls("land", "set down")},
	{"v.board", Verb, BaseVerbMotion, "", false, "get on a means of transportation", ls("board", "get on")},
}

// antonymPairs are symmetric antonym edges added after the synsets exist.
var antonymPairs = [][2]string{
	{"a.hot", "a.cold"},
	{"a.warm", "a.cool"},
	{"a.cheap", "a.expensive"},
	{"n.low_temperature", "n.high_temperature"},
	{"v.increase", "v.decrease"},
	{"v.buy", "v.sell"},
}

// partHolonymPairs record part-of edges (part, whole).
var partHolonymPairs = [][2]string{
	{"n.barcelona", "n.spain"},
	{"n.madrid", "n.spain"},
	{"n.valencia", "n.spain"},
	{"n.seville", "n.spain"},
	{"n.bilbao", "n.spain"},
	{"n.alicante", "n.spain"},
	{"n.catalonia", "n.spain"},
	{"n.barcelona", "n.catalonia"},
	{"n.paris", "n.france"},
	{"n.london", "n.united_kingdom"},
	{"n.rome", "n.italy"},
	{"n.lausanne", "n.switzerland"},
	{"n.new_york_city", "n.new_york_state"},
	{"n.new_york_state", "n.united_states"},
	{"n.california", "n.united_states"},
	{"n.costa_mesa", "n.california"},
	{"n.kennedy_airport", "n.new_york_city"},
}

// Seed returns a lexical database populated with the seed lexicon. It
// panics only on programming errors in the seed tables (checked by tests).
func Seed() *WordNet {
	w := New()
	for _, e := range seedEntries {
		if _, err := w.AddSynset(e.id, e.pos, e.base, e.gloss, e.lemmas...); err != nil {
			panic("wordnet: bad seed entry " + e.id + ": " + err.Error())
		}
	}
	for _, e := range seedEntries {
		if e.parent == "" {
			continue
		}
		rel := Hypernym
		if e.inst {
			rel = InstanceHypernym
		}
		if err := w.Relate(e.id, rel, e.parent); err != nil {
			panic("wordnet: bad seed relation " + e.id + "→" + e.parent + ": " + err.Error())
		}
	}
	for _, p := range antonymPairs {
		if err := w.Relate(p[0], Antonym, p[1]); err != nil {
			panic("wordnet: bad antonym pair: " + err.Error())
		}
	}
	for _, p := range partHolonymPairs {
		if err := w.Relate(p[0], PartHolonym, p[1]); err != nil {
			panic("wordnet: bad holonym pair: " + err.Error())
		}
	}
	return w
}
