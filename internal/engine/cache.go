package engine

import (
	"container/list"
	"strings"
	"sync"

	"dwqa/internal/nl2olap"
	"dwqa/internal/obs"
	"dwqa/internal/qa"
)

// NormalizeQuestion canonicalises a question for cache keying and request
// coalescing: interior whitespace collapses to single spaces and trailing
// sentence punctuation is dropped, so "What is  the weather…?" and "What
// is the weather…" share one entry. Letter case is preserved on purpose —
// the analysis pipeline is case-sensitive (capitalisation drives
// proper-noun tagging, so "El Prat" and "el prat" genuinely analyse
// differently and must not share an answer).
func NormalizeQuestion(q string) string {
	s := strings.Join(strings.Fields(q), " ")
	return strings.TrimRight(s, "?!. ")
}

// cachedAnswer is one cache value: exactly one of the two paths is set —
// the factoid result or the analytic (OLAP) answer. Both are shared with
// every caller, so cached values are read-only by contract.
type cachedAnswer struct {
	qa   *qa.Result
	olap *nl2olap.Answer
}

// answerCache is a mutex-guarded LRU of question results — factoid and
// analytic alike. Entries carry dependency tags naming the warehouse
// state they were computed from; a Step 5 feed evicts only the entries
// whose tags intersect what the feed touched (invalidate), while index
// or corpus mutations still flush everything (flush). Factoid entries
// carry no tags — they depend on the IR index, which feeds never mutate
// — so they survive warehouse feeds.
type answerCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key → element holding *cacheEntry
	// byTag indexes live entries by dependency tag so a feed evicts
	// intersecting entries in time proportional to what it touched,
	// not to the cache size.
	byTag map[string]map[*list.Element]struct{}
	// epoch counts invalidations (selective or full). put carries the
	// epoch observed before the answer was computed; an invalidation in
	// between makes the insert a no-op, so a result computed against the
	// pre-feed warehouse can never be re-inserted after the feed.
	epoch uint64

	// Traffic counters. The engine replaces these with its metrics
	// registry's cells (New), so Stats and /metrics read the same
	// numbers; a standalone cache gets private zero-value counters.
	hits    *obs.Counter
	misses  *obs.Counter
	evicted *obs.Counter // entries removed by selective invalidation
}

type cacheEntry struct {
	key  string
	res  cachedAnswer
	tags []string
}

// newAnswerCache builds an LRU holding up to capacity entries. A capacity
// of zero or less disables caching (every get misses, puts are dropped).
func newAnswerCache(capacity int) *answerCache {
	return &answerCache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		byTag:   make(map[string]map[*list.Element]struct{}),
		hits:    &obs.Counter{},
		misses:  &obs.Counter{},
		evicted: &obs.Counter{},
	}
}

// enabled reports whether the cache stores anything at all.
func (c *answerCache) enabled() bool { return c.cap > 0 }

// get returns the cached result for key (if any) plus the current epoch,
// which the caller passes back to put so invalidations in between drop
// the insert. A disabled cache reports a miss without counting it — the
// hit/miss counters describe a cache that exists.
func (c *answerCache) get(key string) (cachedAnswer, bool, uint64) {
	if c.cap <= 0 {
		return cachedAnswer{}, false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return cachedAnswer{}, false, c.epoch
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true, c.epoch
}

// put inserts a result computed while the cache was at the given epoch,
// tagged with the warehouse dependencies the answer was derived from
// (nil tags = depends on nothing a feed can touch). If an invalidation
// happened since, the insert is dropped — the result may describe
// pre-feed state.
func (c *answerCache) put(key string, res cachedAnswer, epoch uint64, tags []string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.untagLocked(el, ent)
		ent.res = res
		ent.tags = tags
		c.tagLocked(el, ent)
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res, tags: tags})
	c.items[key] = el
	c.tagLocked(el, el.Value.(*cacheEntry))
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
	}
}

// invalidate starts a new epoch and evicts every entry carrying at least
// one of the given tags. Entries with disjoint tags (and untagged
// entries) survive. The epoch bump means in-flight answers computed
// before the feed cannot be inserted afterwards, even if their tags
// would not have intersected — conservative, but it keeps the "no entry
// may outlive the state it was computed from" invariant simple.
func (c *answerCache) invalidate(tags []string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	var doomed []*list.Element
	seen := map[*list.Element]struct{}{}
	for _, tag := range tags {
		for el := range c.byTag[tag] {
			if _, dup := seen[el]; !dup {
				seen[el] = struct{}{}
				doomed = append(doomed, el)
			}
		}
	}
	for _, el := range doomed {
		c.removeLocked(el)
	}
	c.evicted.Add(uint64(len(doomed)))
}

// flush empties the cache and starts a new epoch (hit/miss counters
// survive, they describe the engine's lifetime).
func (c *answerCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.byTag = make(map[string]map[*list.Element]struct{})
	c.epoch++
}

// removeLocked drops one element from the list, the key map and the tag
// index. Caller holds c.mu.
func (c *answerCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.untagLocked(el, ent)
}

func (c *answerCache) tagLocked(el *list.Element, ent *cacheEntry) {
	for _, tag := range ent.tags {
		set := c.byTag[tag]
		if set == nil {
			set = make(map[*list.Element]struct{})
			c.byTag[tag] = set
		}
		set[el] = struct{}{}
	}
}

func (c *answerCache) untagLocked(el *list.Element, ent *cacheEntry) {
	for _, tag := range ent.tags {
		if set := c.byTag[tag]; set != nil {
			delete(set, el)
			if len(set) == 0 {
				delete(c.byTag, tag)
			}
		}
	}
}

func (c *answerCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *answerCache) counters() (hits, misses, evicted uint64) {
	return c.hits.Value(), c.misses.Value(), c.evicted.Value()
}
