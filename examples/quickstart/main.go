// Quickstart: run the five-step DW↔QA integration and ask the paper's
// question.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dwqa"
)

func main() {
	// Build the Last Minute Sales scenario: warehouse, web corpus, index.
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's five semi-automatic steps.
	if err := p.RunAll(); err != nil {
		log.Fatal(err)
	}

	// Ask the paper's Table 1 question.
	res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no answer")
	}
	fmt.Println("answer:", res.Best.Render())
	fmt.Println("source:", res.Best.URL)

	// The integration's payoff: the enriched warehouse answers the
	// business question the schema alone could not.
	rep, err := dwqa.AnalyzeSalesWeather(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sales×temperature correlation: %.2f\n", rep.Correlation)
	for _, r := range rep.Recommendations {
		fmt.Println("recommendation:", r)
	}
}
