package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dwqa/internal/core"
	"dwqa/internal/ir"
	"dwqa/internal/webcorpus"
)

// perfMeasurement is one benchmark data point of BENCH_PERF.json.
type perfMeasurement struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// perfComparison pairs the compiled engine against the reference engine at
// one scale and records the ratios future PRs track.
type perfComparison struct {
	Rows           int     `json:"rows"`
	Compiled       float64 `json:"compiled_ns_per_op"`
	Reference      float64 `json:"reference_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	AllocReduction float64 `json:"alloc_reduction"`
}

// perfReport is the schema of BENCH_PERF.json.
type perfReport struct {
	Schema       string            `json:"schema"`
	Measurements []perfMeasurement `json:"measurements"`
	OLAP         []perfComparison  `json:"olap_compiled_vs_reference"`
}

func measure(name string, rows int, fn func(b *testing.B)) (perfMeasurement, error) {
	r := testing.Benchmark(fn)
	// b.Fatal inside testing.Benchmark does not propagate — it yields a
	// zero result. Refuse to record it as a plausible-looking data point.
	if r.N <= 0 || r.T <= 0 {
		return perfMeasurement{}, fmt.Errorf("benchmark %s failed (zero result — see output above)", name)
	}
	return perfMeasurement{
		Name:        name,
		Rows:        rows,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// runPerf benchmarks the OLAP engines at 1k/10k/100k generated fact rows
// and the IR-n top-k search, and writes BENCH_PERF.json to outDir.
func runPerf(outDir string, seed int64) (*perfReport, error) {
	// Create the artefact directory up front so a bad -out fails before
	// minutes of benchmarking, not after.
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	rep := &perfReport{Schema: "dwqa-bench/v1"}
	for _, target := range []int{1_000, 10_000, 100_000} {
		wh, q, err := core.PrepareScaledBenchmark(target, seed)
		if err != nil {
			return nil, err
		}
		rows := wh.FactCount("LastMinuteSales")
		compiled, err := measure(fmt.Sprintf("OLAPExecute%dk/compiled", target/1000), rows, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunCompiledOLAP(wh, q, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return nil, err
		}
		reference, err := measure(fmt.Sprintf("OLAPExecute%dk/reference", target/1000), rows, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunReferenceOLAP(wh, q, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return nil, err
		}
		rep.Measurements = append(rep.Measurements, compiled, reference)
		cmp := perfComparison{
			Rows:      rows,
			Compiled:  compiled.NsPerOp,
			Reference: reference.NsPerOp,
		}
		if compiled.NsPerOp > 0 {
			cmp.Speedup = reference.NsPerOp / compiled.NsPerOp
		}
		if reference.AllocsPerOp > 0 {
			cmp.AllocReduction = 1 - float64(compiled.AllocsPerOp)/float64(reference.AllocsPerOp)
		}
		rep.OLAP = append(rep.OLAP, cmp)
	}

	ccfg := webcorpus.DefaultConfig()
	ccfg.Year, ccfg.Months, ccfg.Seed = 2004, []int{1, 2, 3}, seed
	ix := ir.NewIndex()
	if err := ix.AddAll(webcorpus.Build(ccfg).Documents(false)); err != nil {
		return nil, err
	}
	terms := ir.QueryTerms("What is the weather like in Barcelona in January?")
	irBench, err := measure("IRSearchTopK", ix.PassageCount(), func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunIRSearchTopK(ix, terms, 10, b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return nil, err
	}
	rep.Measurements = append(rep.Measurements, irBench)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(outDir, "BENCH_PERF.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

func printPerf(rep *perfReport) {
	fmt.Println("== PERF: compiled OLAP engine vs row-at-a-time reference ==")
	for _, c := range rep.OLAP {
		fmt.Printf("%8d rows  compiled %12.0f ns/op  reference %12.0f ns/op  speedup %6.1fx  allocs -%0.f%%\n",
			c.Rows, c.Compiled, c.Reference, c.Speedup, c.AllocReduction*100)
	}
	for _, m := range rep.Measurements {
		if m.Name == "IRSearchTopK" {
			fmt.Printf("IR top-k search over %d passages: %.0f ns/op, %d allocs/op\n",
				m.Rows, m.NsPerOp, m.AllocsPerOp)
		}
	}
}
