package nlp

// stopwords is the stop list applied by the IR side of the system. The
// paper contrasts QA and IR precisely on this point: "IR systems ...
// usually discard what is known as stop-words", so the list lives here and
// the IR substrate applies it, while the QA question analysis keeps every
// token.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"at": true, "by": true, "for": true, "with": true, "from": true,
	"to": true, "into": true, "about": true, "as": true, "is": true,
	"be": true, "are": true, "was": true, "were": true, "been": true,
	"am": true, "do": true, "does": true, "did": true, "have": true,
	"has": true, "had": true, "and": true, "or": true, "but": true,
	"not": true, "no": true, "nor": true, "so": true, "if": true,
	"it": true, "its": true, "this": true, "that": true, "these": true,
	"those": true, "he": true, "she": true, "they": true, "them": true,
	"his": true, "her": true, "their": true, "we": true, "us": true,
	"our": true, "you": true, "your": true, "i": true, "me": true,
	"my": true, "what": true, "which": true, "who": true, "whom": true,
	"whose": true, "when": true, "where": true, "why": true, "how": true,
	"all": true, "each": true, "every": true, "some": true, "any": true,
	"there": true, "here": true, "than": true, "then": true, "too": true,
	"very": true, "can": true, "will": true, "would": true, "could": true,
	"should": true, "may": true, "might": true, "must": true, "shall": true,
	"like": true, "also": true, "just": true, "only": true, "such": true,
}

// IsStopword reports whether the lower-cased lemma is on the IR stop list.
func IsStopword(lemma string) bool { return stopwords[lemma] }
