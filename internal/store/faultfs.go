package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"
)

// FaultFS wraps an FS with a deterministic fault schedule, so the
// durability layer can be exercised against the failures a real disk
// exhibits — failed fsync, short write, refused rename, slow I/O, a full
// disk — at exact, reproducible points in the operation stream. Every
// operation of each class is counted across the FaultFS's lifetime;
// a Fault fires when its class counter reaches its Nth occurrence.
//
// A FaultFS starts disarmed: operations pass straight through until Arm
// is called, so a pipeline can boot cleanly over it and only then face
// the schedule (the chaos tests do exactly that).

// ErrInjected is the error injected by a Fault whose Err field is nil.
// Test assertions match it with errors.Is.
var ErrInjected = errors.New("injected fault")

// FaultOp classifies filesystem operations for fault scheduling.
type FaultOp uint8

const (
	// OpOpen covers OpenFile and CreateTemp.
	OpOpen FaultOp = iota
	// OpWrite covers File.Write (supports short writes).
	OpWrite
	// OpSync covers File.Sync and SyncDir (the fsync failure mode).
	OpSync
	// OpRename covers Rename (snapshot publish).
	OpRename
	// OpRemove covers Remove (snapshot pruning).
	OpRemove
	// OpRead covers ReadFile (snapshot/WAL loads).
	OpRead
	// OpTruncate covers File.Truncate (WAL rollback and reset).
	OpTruncate
	numFaultOps
)

// String names the operation class for error messages.
func (op FaultOp) String() string {
	switch op {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpRead:
		return "read"
	case OpTruncate:
		return "truncate"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Fault schedules one misbehaviour: when the Nth operation of class Op
// runs, sleep Delay (a slow disk), then — unless the fault is delay-only
// — fail with Err. A Fault with Short > 0 on OpWrite writes only Short
// bytes before failing, the torn-write shape a crash or full disk leaves.
type Fault struct {
	Op    FaultOp
	Nth   int           // 1-based occurrence of Op that triggers the fault
	Err   error         // error to inject; nil with Delay > 0 = slow op only
	Short int           // OpWrite: bytes actually written before the error
	Delay time.Duration // sleep before the operation proceeds or fails
}

// delayOnly reports whether the fault slows the op without failing it.
func (f Fault) delayOnly() bool { return f.Err == nil && f.Delay > 0 && f.Short == 0 }

// FaultFS implements FS over an inner FS with an armed fault schedule.
// Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	armed  bool
	counts [numFaultOps]int
	faults []Fault
	fired  int
}

// NewFaultFS wraps inner (disarmed — call Arm to install a schedule).
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// Arm installs a fault schedule and starts counting operations from zero.
// Arming replaces any previous schedule.
func (ffs *FaultFS) Arm(faults ...Fault) {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	ffs.armed = true
	ffs.faults = append([]Fault(nil), faults...)
	ffs.counts = [numFaultOps]int{}
	ffs.fired = 0
}

// Disarm stops injecting faults; operations pass through untouched.
func (ffs *FaultFS) Disarm() {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	ffs.armed = false
}

// Fired returns how many faults have triggered since the last Arm.
func (ffs *FaultFS) Fired() int {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	return ffs.fired
}

// OpCount returns how many operations of a class have run since Arm.
func (ffs *FaultFS) OpCount(op FaultOp) int {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	return ffs.counts[op]
}

// RandomSchedule derives a deterministic fault schedule from a seed:
// across the next horizon operations of each mutating class (write,
// sync, rename), each occurrence fails independently with probability p.
// The same seed always yields the same schedule, which is what makes a
// failing chaos run replayable.
func RandomSchedule(seed int64, horizon int, p float64) []Fault {
	rng := rand.New(rand.NewSource(seed))
	var faults []Fault
	for _, op := range []FaultOp{OpWrite, OpSync, OpRename} {
		for n := 1; n <= horizon; n++ {
			if rng.Float64() >= p {
				continue
			}
			f := Fault{Op: op, Nth: n}
			// A third of write faults are short writes; a sprinkle of
			// delay makes schedules exercise the slow-disk path too.
			if op == OpWrite && rng.Intn(3) == 0 {
				f.Short = rng.Intn(8)
			}
			if rng.Intn(4) == 0 {
				f.Delay = time.Duration(rng.Intn(3)) * time.Millisecond
			}
			faults = append(faults, f)
		}
	}
	return faults
}

// check counts one operation and returns the fault scheduled for it, if
// any (delay is slept here; the caller applies the failure).
func (ffs *FaultFS) check(op FaultOp) (Fault, bool) {
	ffs.mu.Lock()
	if !ffs.armed {
		ffs.mu.Unlock()
		return Fault{}, false
	}
	ffs.counts[op]++
	n := ffs.counts[op]
	for _, f := range ffs.faults {
		if f.Op == op && f.Nth == n {
			ffs.fired++
			ffs.mu.Unlock()
			if f.Delay > 0 {
				time.Sleep(f.Delay)
			}
			return f, !f.delayOnly()
		}
	}
	ffs.mu.Unlock()
	return Fault{}, false
}

// injected renders the scheduled error for a fault.
func injected(f Fault) error {
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("%w: %s #%d", ErrInjected, f.Op, f.Nth)
}

func (ffs *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	return ffs.inner.MkdirAll(dir, perm)
}

func (ffs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if f, fail := ffs.check(OpOpen); fail {
		return nil, injected(f)
	}
	inner, err := ffs.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: ffs, inner: inner}, nil
}

func (ffs *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if f, fail := ffs.check(OpOpen); fail {
		return nil, injected(f)
	}
	inner, err := ffs.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: ffs, inner: inner}, nil
}

func (ffs *FaultFS) ReadFile(path string) ([]byte, error) {
	if f, fail := ffs.check(OpRead); fail {
		return nil, injected(f)
	}
	return ffs.inner.ReadFile(path)
}

func (ffs *FaultFS) Rename(oldpath, newpath string) error {
	if f, fail := ffs.check(OpRename); fail {
		return injected(f)
	}
	return ffs.inner.Rename(oldpath, newpath)
}

func (ffs *FaultFS) Remove(path string) error {
	if f, fail := ffs.check(OpRemove); fail {
		return injected(f)
	}
	return ffs.inner.Remove(path)
}

func (ffs *FaultFS) Glob(pattern string) ([]string, error) {
	return ffs.inner.Glob(pattern)
}

func (ffs *FaultFS) SyncDir(dir string) error {
	if f, fail := ffs.check(OpSync); fail {
		return injected(f)
	}
	return ffs.inner.SyncDir(dir)
}

// faultFile routes a file handle's mutating calls through its FaultFS's
// schedule.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	if fl, fail := f.fs.check(OpWrite); fail {
		// A short write puts the first Short bytes on disk and then
		// fails — the torn shape a crash mid-write or a full disk leaves
		// behind, which the WAL's rollback and tail repair must absorb.
		n := fl.Short
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if wrote, err := f.inner.Write(p[:n]); err != nil {
				return wrote, err
			}
		}
		return n, injected(fl)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Truncate(size int64) error {
	if fl, fail := f.fs.check(OpTruncate); fail {
		return injected(fl)
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Sync() error {
	if fl, fail := f.fs.check(OpSync); fail {
		return injected(fl)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Name() string { return f.inner.Name() }
