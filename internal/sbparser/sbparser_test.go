package sbparser

import (
	"strings"
	"testing"

	"dwqa/internal/nlp"
)

func parseOne(t *testing.T, text string) []Block {
	t.Helper()
	sents := nlp.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("expected 1 sentence from %q, got %d", text, len(sents))
	}
	return Parse(sents[0])
}

// findNP returns the first NP (directly or inside a PP) whose text
// contains the fragment.
func findNP(blocks []Block, fragment string) *Block {
	var found *Block
	var walk func(b *Block)
	walk = func(b *Block) {
		if found != nil {
			return
		}
		if b.Type == NP && strings.Contains(b.Text(), fragment) {
			found = b
			return
		}
		for i := range b.Children {
			walk(&b.Children[i])
		}
	}
	for i := range blocks {
		walk(&blocks[i])
	}
	return found
}

func TestParsePaperQuery(t *testing.T) {
	// Table 1: "What is the weather like in January of 2004 in El Prat?"
	blocks := parseOne(t, "What is the weather like in January of 2004 in El Prat?")

	weather := findNP(blocks, "weather")
	if weather == nil {
		t.Fatal("no NP for 'the weather'")
	}
	if weather.Sub != SubCommon {
		t.Errorf("'the weather' subtype = %q, want comun", weather.Sub)
	}
	if weather.Role != RoleCompl {
		t.Errorf("'the weather' role = %q, want compl (after VBC)", weather.Role)
	}

	january := findNP(blocks, "January")
	if january == nil {
		t.Fatal("no NP for January")
	}
	if january.Sub != SubDate {
		t.Errorf("January subtype = %q, want date", january.Sub)
	}

	prat := findNP(blocks, "Prat")
	if prat == nil {
		t.Fatal("no NP for El Prat")
	}
	if prat.Sub != SubProperNoun {
		t.Errorf("El Prat subtype = %q, want properNoun", prat.Sub)
	}

	// There must be a VBC for "is".
	hasVBC := false
	for _, b := range blocks {
		if b.Type == VBC {
			hasVBC = true
		}
	}
	if !hasVBC {
		t.Error("no VBC block for 'is'")
	}
}

func TestParsePaperPassage(t *testing.T) {
	// Table 1 passage: "Monday, January 31, 2004 / Barcelona Weather:
	// Temperature 8º C around 46.4 F Clear skies today".
	text := "Monday, January 31, 2004 Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today"
	sents := nlp.SplitSentences(text)
	var blocks []Block
	for _, s := range sents {
		blocks = append(blocks, Parse(s)...)
	}

	if b := findNP(blocks, "Monday"); b == nil {
		t.Error("Monday not in any NP")
	}
	jan := findNP(blocks, "January")
	if jan == nil || jan.Sub != SubDate {
		t.Errorf("January 31, 2004 should be a date NP, got %+v", jan)
	}
	bw := findNP(blocks, "Barcelona")
	if bw == nil || bw.Sub != SubProperNoun {
		t.Errorf("Barcelona Weather should be properNoun, got %+v", bw)
	}
	deg := findNP(blocks, "8")
	if deg == nil {
		t.Fatal("temperature figure 8 º C not chunked")
	}
	if !strings.Contains(deg.Text(), "º") || !strings.Contains(deg.Text(), "C") {
		t.Errorf("temperature NP should include unit: %q", deg.Text())
	}
}

func TestRolesSubjectAndCompl(t *testing.T) {
	blocks := parseOne(t, "The company sold tickets.")
	subj := findNP(blocks, "company")
	if subj == nil || subj.Role != RoleSubject {
		t.Errorf("'the company' should be subject, got %+v", subj)
	}
	obj := findNP(blocks, "tickets")
	if obj == nil || obj.Role != RoleCompl {
		t.Errorf("'tickets' should be compl, got %+v", obj)
	}
}

func TestVerblessSentenceSubjects(t *testing.T) {
	blocks := parseOne(t, "Barcelona Weather: Temperature 8º C")
	bw := findNP(blocks, "Barcelona")
	if bw == nil || bw.Role != RoleSubject {
		t.Errorf("verbless sentence NP should be subject, got %+v", bw)
	}
}

func TestCLEFQuestionBlocks(t *testing.T) {
	// "Which country did Iraq invade in 1990?" → SBs [Iraq][to invade][in 1990].
	blocks := parseOne(t, "Which country did Iraq invade in 1990?")
	iraq := findNP(blocks, "Iraq")
	if iraq == nil || iraq.Sub != SubProperNoun {
		t.Errorf("Iraq should be properNoun NP, got %+v", iraq)
	}
	var pp1990 *Block
	for i := range blocks {
		if blocks[i].Type == PP && strings.Contains(blocks[i].Text(), "1990") {
			pp1990 = &blocks[i]
		}
	}
	if pp1990 == nil {
		t.Fatal("no PP for 'in 1990'")
	}
	inner := pp1990.InnerNP()
	if inner == nil || inner.Sub != SubNumeral && inner.Sub != SubDate {
		t.Errorf("inner NP of 'in 1990' = %+v", inner)
	}
}

func TestHeadNoun(t *testing.T) {
	blocks := parseOne(t, "The last minute sales increased.")
	np := findNP(blocks, "sales")
	if np == nil {
		t.Fatal("no NP found")
	}
	if got := np.HeadNoun().Lemma; got != "sale" {
		t.Errorf("HeadNoun lemma = %q, want sale", got)
	}
}

func TestRenderFormat(t *testing.T) {
	blocks := parseOne(t, "What is the weather like in January of 2004 in El Prat?")
	out := Render(blocks)
	for _, want := range []string{
		"<@VBC> is VBZ be <@/VBC>",
		"<@NP,compl,comun,,> the DT the weather NN weather <@/NP,compl,comun,,>",
		"<@PP> in IN in",
		"January NP january",
		"El NP el Prat NP prat",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestExtractDatesCombinesAcrossBlocks(t *testing.T) {
	blocks := parseOne(t, "What is the weather like in January of 2004 in El Prat?")
	dates := ExtractDates(blocks)
	if len(dates) != 1 {
		t.Fatalf("ExtractDates = %v, want one date", dates)
	}
	if dates[0].Year != 2004 || dates[0].Month != 1 || dates[0].Day != 0 {
		t.Errorf("date = %+v, want 2004-01", dates[0])
	}
}

func TestExtractDatesFullDate(t *testing.T) {
	blocks := parseOne(t, "Monday, January 31, 2004 was cold.")
	dates := ExtractDates(blocks)
	if len(dates) != 1 {
		t.Fatalf("ExtractDates = %v", dates)
	}
	d := dates[0]
	if d.Year != 2004 || d.Month != 1 || d.Day != 31 {
		t.Errorf("date = %+v, want 2004-01-31", d)
	}
}

func TestExtractDatesOrdinal(t *testing.T) {
	blocks := parseOne(t, "What is the weather like in John Wayne on the 12th of May, 1997?")
	dates := ExtractDates(blocks)
	if len(dates) == 0 {
		t.Fatal("no dates extracted")
	}
	d := dates[0]
	if d.Month != 5 || d.Day != 12 || d.Year != 1997 {
		t.Errorf("date = %+v, want 1997-05-12", d)
	}
}

func TestDateRefCovers(t *testing.T) {
	monthQuery := DateRef{Year: 2004, Month: 1}
	day := DateRef{Year: 2004, Month: 1, Day: 31}
	if !monthQuery.Covers(day) {
		t.Error("month query should cover a day within it")
	}
	if monthQuery.Covers(DateRef{Year: 2004, Month: 2, Day: 1}) {
		t.Error("month query must not cover another month")
	}
	if (DateRef{}).IsZero() != true {
		t.Error("zero DateRef should be zero")
	}
	if day.Covers(DateRef{Year: 2004, Month: 1}) {
		t.Error("specific day must not cover a whole month")
	}
}

func TestNoBlocksForPunctuationOnly(t *testing.T) {
	sents := nlp.SplitSentences("?!")
	for _, s := range sents {
		for _, b := range Parse(s) {
			if b.Type == NP && len(b.Tokens) == 0 {
				t.Error("empty NP produced")
			}
		}
	}
}

func TestParseTextMultiSentence(t *testing.T) {
	per := ParseText("The weather was mild. Temperatures reached 21 degrees.")
	if len(per) != 2 {
		t.Fatalf("ParseText returned %d sentence parses, want 2", len(per))
	}
	if findNP(per[0], "weather") == nil {
		t.Error("first sentence missing weather NP")
	}
	if findNP(per[1], "21") == nil {
		t.Error("second sentence missing numeric NP")
	}
}

func BenchmarkParse(b *testing.B) {
	sents := nlp.SplitSentences("What is the weather like in January of 2004 in El Prat?")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(sents[0])
	}
}
