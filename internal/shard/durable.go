package shard

import (
	"fmt"
	"path/filepath"

	"dwqa/internal/ontology"
	"dwqa/internal/store"
)

// Leader-side durability: a sharded cluster persists one store per
// shard (root/shard-000, shard-001, …), each with its own WAL and
// snapshot chain. A shard's journals attach to its own store, so every
// shard's WAL records exactly what that shard applied — which is what
// lets a replica rebuild any single shard independently.

// ShardDir returns shard i's data directory under the cluster root.
func ShardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// DetectShards reports how many shards a cluster directory was created
// with by counting its contiguous shard-NNN subdirectories, so CLIs can
// reopen or follow a cluster without the operator restating -shards.
// A root with no shard directories (fresh path, or a single-node store
// layout) reports 0. A gap in the numbering is an error: it means the
// directory was hand-edited and any shard count would silently drop
// part of the data.
func DetectShards(fsys store.FS, root string) (int, error) {
	matches, err := fsys.Glob(filepath.Join(root, "shard-[0-9][0-9][0-9]"))
	if err != nil {
		return 0, err
	}
	found := make(map[int]bool, len(matches))
	for _, m := range matches {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(m), "shard-%03d", &i); err == nil {
			found[i] = true
		}
	}
	n := 0
	for found[n] {
		n++
	}
	if n != len(found) {
		return 0, fmt.Errorf("shard: %s holds a non-contiguous shard layout (%d shard dirs, contiguous run stops at %d)", root, len(found), n)
	}
	return n, nil
}

// Durable wires a cluster to its per-shard stores and implements the
// engine's Snapshotter: state export for all shards happens under the
// engine's feed quiescence, the disk writes after it.
type Durable struct {
	c           *Cluster
	root        string
	stores      []*store.Store
	onto        *ontology.Ontology
	fingerprint string
}

// NewDurable binds the cluster to its opened per-shard stores. onto is
// the (replicated) domain ontology embedded in every shard's snapshot,
// so any single shard's snapshot can bootstrap a full serving stack;
// fingerprint is the cluster-level config fingerprint (per-shard
// fingerprints derive from it via ShardFingerprint).
func NewDurable(c *Cluster, root string, stores []*store.Store, onto *ontology.Ontology, fingerprint string) (*Durable, error) {
	if len(stores) != c.Shards() {
		return nil, fmt.Errorf("shard: %d stores for %d shards", len(stores), c.Shards())
	}
	return &Durable{c: c, root: root, stores: stores, onto: onto, fingerprint: fingerprint}, nil
}

// ShardFingerprint stamps the cluster fingerprint with a shard's
// position, so a shard's snapshot refuses to load into the wrong slot
// or a different topology.
func ShardFingerprint(fingerprint string, i, n int) string {
	return fmt.Sprintf("%s shard=%d/%d", fingerprint, i, n)
}

// Stores returns the per-shard stores in shard order.
func (d *Durable) Stores() []*store.Store { return d.stores }

// AttachJournals wires each shard's warehouse and index journal to its
// store. Must be called only after any boot replay has finished, or
// replayed records would be re-logged.
func (d *Durable) AttachJournals() {
	for i, st := range d.stores {
		node := d.c.Node(i)
		node.WH.SetJournal(st)
		node.IX.SetJournal(st)
	}
}

// ExportForSnapshot captures every shard's state — the engine calls
// this with feed commits quiesced, so each shard's export and its WAL
// sequence stamp are mutually consistent — and returns a publish
// closure that writes all N snapshots unlocked. The aggregate info
// reports the cluster root, summed bytes and the highest shard
// sequence.
func (d *Durable) ExportForSnapshot() (func() (store.SnapshotInfo, error), error) {
	states := make([]*store.State, d.c.Shards())
	for i := range d.stores {
		node := d.c.Node(i)
		states[i] = &store.State{
			WALSeq:      d.stores[i].Seq(),
			Fingerprint: ShardFingerprint(d.fingerprint, i, d.c.Shards()),
			DW:          node.WH.Export(),
			IR:          node.IX.Export(),
			Onto:        d.onto.Export(),
		}
	}
	publish := func() (store.SnapshotInfo, error) {
		agg := store.SnapshotInfo{Path: d.root, WALReset: true}
		for i, st := range d.stores {
			info, err := st.WriteSnapshot(states[i])
			if err != nil {
				return store.SnapshotInfo{}, fmt.Errorf("shard %d: %w", i, err)
			}
			agg.Bytes += info.Bytes
			if info.WALSeq > agg.WALSeq {
				agg.WALSeq = info.WALSeq
			}
			agg.WALReset = agg.WALReset && info.WALReset
		}
		return agg, nil
	}
	return publish, nil
}

// Seq returns the highest WAL sequence across shards.
func (d *Durable) Seq() uint64 {
	var max uint64
	for _, st := range d.stores {
		if s := st.Seq(); s > max {
			max = s
		}
	}
	return max
}

// WALErrors sums refused journal appends across shards.
func (d *Durable) WALErrors() uint64 {
	var total uint64
	for _, st := range d.stores {
		total += st.WALErrors()
	}
	return total
}

// StateCounts reports the cluster's warehouse sizing for serving stats.
func (d *Durable) StateCounts() (members, factRows int) { return d.c.Counts() }

// ShardSeqs returns each shard's current WAL sequence in shard order —
// the leader's per-shard stats (lag is zero by definition on the
// writer).
func (d *Durable) ShardSeqs() []uint64 {
	seqs := make([]uint64, len(d.stores))
	for i, st := range d.stores {
		seqs[i] = st.Seq()
	}
	return seqs
}

// Close closes every shard store, keeping the first error.
func (d *Durable) Close() error {
	var first error
	for _, st := range d.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
