package engine_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dwqa/internal/engine"
	"dwqa/internal/qa"
)

// newServer builds a fed pipeline and its HTTP API.
func newServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	p := newPipeline(t)
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)
	return srv, eng
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var payload struct {
		Status     string `json:"status"`
		State      string `json:"state"`
		Workers    int    `json:"workers"`
		Passages   int    `json:"passages"`
		Generation uint64 `json:"generation"`
		Inflight   *int64 `json:"inflight"`
		Shed       *int64 `json:"shed_total"`
		Timeouts   *int64 `json:"timeout_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Status != "ok" || payload.Workers <= 0 || payload.Passages == 0 {
		t.Errorf("healthz payload = %+v", payload)
	}
	if payload.Generation != 1 {
		t.Errorf("generation = %d, want 1 (one Step 5 feed)", payload.Generation)
	}
	if payload.State != "ready" {
		t.Errorf("state = %q, want ready", payload.State)
	}
	// The resilience counters are always present (not omitempty): an
	// operator must be able to tell "zero sheds" from "no gate".
	if payload.Inflight == nil || payload.Shed == nil || payload.Timeouts == nil {
		t.Errorf("missing resilience counters in %+v", payload)
	}
	if payload.Shed != nil && *payload.Shed != 0 {
		t.Errorf("shed_total = %d on an idle server", *payload.Shed)
	}
}

// TestServerSheds: a saturated engine answers 429 with a Retry-After
// hint, and /healthz counts the shed.
func TestServerSheds(t *testing.T) {
	p := newPipeline(t)
	eng, err := engine.New(engine.Config{MaxInflight: 1, MaxQueue: -1, AskTimeout: -1, CacheSize: -1},
		p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	eng.SetAnswerFnForTest(func(string) (*qa.Result, error) {
		started <- struct{}{}
		<-release
		return &qa.Result{}, nil
	})
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/ask", "application/json",
			strings.NewReader(`{"question": "occupier"}`))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started // slot held

	resp, body := postJSON(t, srv.URL+"/ask", `{"question": "shed me"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var st struct {
		Shed uint64 `json:"shed_total"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shed != 1 {
		t.Errorf("shed_total = %d, want 1", st.Shed)
	}
}

// TestServerRetryAfterScalesWithQueueDepth pins the 429 backoff hint to
// the load it is derived from: a shed against a bare saturated slot
// hints one ask-deadline, a shed behind a full queue hints one deadline
// per drain wave of the work ahead — the header must grow with queue
// depth, not sit on a constant.
func TestServerRetryAfterScalesWithQueueDepth(t *testing.T) {
	p := newPipeline(t)
	const askTimeout = 10 * time.Second // >> test runtime: no queued request expires mid-probe

	// shedHint saturates an engine (1 slot busy, `queueDepth` requests
	// waiting) and returns the Retry-After value of a shed request.
	shedHint := func(maxQueue, queueDepth, wantSecs int) int {
		t.Helper()
		eng, err := engine.New(engine.Config{MaxInflight: 1, MaxQueue: maxQueue, AskTimeout: askTimeout, CacheSize: -1},
			p.QA, nil, nil, p.Index)
		if err != nil {
			t.Fatal(err)
		}
		started := make(chan struct{}, 8)
		release := make(chan struct{})
		eng.SetAnswerFnForTest(func(string) (*qa.Result, error) {
			started <- struct{}{}
			<-release
			return &qa.Result{}, nil
		})
		srv := httptest.NewServer(engine.NewServer(eng))
		t.Cleanup(srv.Close)

		done := make(chan error, 1+queueDepth)
		post := func(q string) {
			resp, err := http.Post(srv.URL+"/ask", "application/json",
				strings.NewReader(`{"question": "`+q+`"}`))
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}
		go post("occupier")
		<-started // the one slot is held
		for i := 0; i < queueDepth; i++ {
			go post("queued")
		}
		// The queued posts race the probe; wait until the hint reflects
		// the full backlog before shedding against it.
		deadline := time.Now().Add(5 * time.Second)
		for eng.RetryAfterSeconds() != wantSecs {
			if time.Now().After(deadline) {
				t.Fatalf("hint never reached %ds (at %ds) — queue did not fill", wantSecs, eng.RetryAfterSeconds())
			}
			time.Sleep(time.Millisecond)
		}

		resp, body := postJSON(t, srv.URL+"/ask", `{"question": "shed me"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
		}
		close(release)
		for i := 0; i < 1+queueDepth; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		return secs
	}

	// One slot busy, no queue: the work ahead drains in one wave.
	shallow := shedHint(-1, 0, int(askTimeout/time.Second))
	// One slot busy, three queued: four waves of one-slot drains ahead.
	deep := shedHint(3, 3, 4*int(askTimeout/time.Second))
	if shallow != int(askTimeout/time.Second) {
		t.Errorf("bare saturation hints %ds, want %ds (one ask deadline)", shallow, int(askTimeout/time.Second))
	}
	if deep != 4*shallow {
		t.Errorf("full queue hints %ds, want %ds — Retry-After must scale with queue depth", deep, 4*shallow)
	}
}

// TestServerDeadline504: a batch outrunning its deadline answers 504 and
// still carries the per-item results — finished answers plus expired
// slots marked with the deadline error.
func TestServerDeadline504(t *testing.T) {
	p := newPipeline(t)
	eng, err := engine.New(engine.Config{Workers: 1, AskTimeout: 40 * time.Millisecond, CacheSize: -1},
		p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetAnswerFnForTest(func(string) (*qa.Result, error) {
		time.Sleep(25 * time.Millisecond)
		return &qa.Result{}, nil
	})
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)

	resp, raw := postJSON(t, srv.URL+"/ask/batch",
		`{"questions": ["one?", "two?", "three?", "four?"]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, raw)
	}
	var payload struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if len(payload.Results) != 4 {
		t.Fatalf("%d results, want 4 (partial batch must keep its shape)", len(payload.Results))
	}
	var done, expired int
	for _, r := range payload.Results {
		if r.Error == "" {
			done++
		} else if strings.Contains(r.Error, "deadline") {
			expired++
		}
	}
	if done == 0 || expired == 0 {
		t.Errorf("done=%d expired=%d; want a partial batch with both", done, expired)
	}
}

// TestServerPanic500: a panicking question answers 500 on that request
// only; the server keeps serving.
func TestServerPanic500(t *testing.T) {
	p := newPipeline(t)
	eng, err := engine.New(engine.Config{AskTimeout: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	real := p.QA.Answer
	eng.SetAnswerFnForTest(func(q string) (*qa.Result, error) {
		if strings.Contains(q, "BOOM") {
			panic("injected")
		}
		return real(q)
	})
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)

	resp, body := postJSON(t, srv.URL+"/ask", `{"question": "BOOM"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%s)", resp.StatusCode, body)
	}
	// The next request is unaffected.
	resp, body = postJSON(t, srv.URL+"/ask",
		`{"question": "What is the weather like in January of 2004 in El Prat?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic = %d (%s)", resp.StatusCode, body)
	}
}

// TestServerDegraded503: a degraded engine refuses feeds with 503 and
// reports itself on /healthz, while /ask keeps answering 200.
func TestServerDegraded503(t *testing.T) {
	srv, eng := newServer(t)
	eng.EnterDegradedForTest("injected: WAL append failed")

	resp, body := postJSON(t, srv.URL+"/harvest", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("harvest while degraded = %d, want 503 (%s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, srv.URL+"/ask",
		`{"question": "What is the weather like in January of 2004 in El Prat?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask while degraded = %d, want 200 (%s)", resp.StatusCode, body)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var st struct {
		Status string `json:"status"`
		State  string `json:"state"`
		Reason string `json:"degraded_reason"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "degraded" || st.State != "degraded" || st.Reason == "" {
		t.Errorf("healthz while degraded = %+v", st)
	}
}

// TestServerReadOnlyReplica403: a read replica refuses feeds with 403
// (a deliberate, healthy refusal — not 503, which would make a load
// balancer pull the replica) while /ask keeps answering 200.
func TestServerReadOnlyReplica403(t *testing.T) {
	p := newPipeline(t)
	eng, err := engine.New(engine.Config{AskTimeout: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetReadOnlyReplica()
	srv := httptest.NewServer(engine.NewServer(eng))
	t.Cleanup(srv.Close)

	resp, body := postJSON(t, srv.URL+"/harvest", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("harvest on replica = %d, want 403 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "read-only replica") {
		t.Errorf("replica refusal body = %q, want it to say read-only replica", body)
	}
	resp, body = postJSON(t, srv.URL+"/ask",
		`{"question": "What is the weather like in January of 2004 in El Prat?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask on replica = %d, want 200 (%s)", resp.StatusCode, body)
	}
}

// TestServerBodyLimits: an oversized body is 413, an oversized batch 422.
func TestServerBodyLimits(t *testing.T) {
	srv, _ := newServer(t)

	// >1 MiB of padding in an otherwise valid request.
	huge := `{"question": "` + strings.Repeat("x", 1<<20+64) + `"}`
	resp, _ := postJSON(t, srv.URL+"/ask", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", resp.StatusCode)
	}

	// 10_001 tiny questions: fits the byte budget, breaks the count one.
	var sb strings.Builder
	sb.WriteString(`{"questions": [`)
	for i := 0; i < 10_001; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`"q"`)
	}
	sb.WriteString(`]}`)
	resp, _ = postJSON(t, srv.URL+"/ask/batch", sb.String())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("oversized batch = %d, want 422", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/harvest", sb.String())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("oversized harvest batch = %d, want 422", resp.StatusCode)
	}
}

func TestServerAsk(t *testing.T) {
	srv, _ := newServer(t)
	resp, body := postJSON(t, srv.URL+"/ask",
		`{"question": "What is the weather like in January of 2004 in El Prat?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Answer *struct {
			Location string  `json:"location"`
			Unit     string  `json:"unit"`
			Value    float64 `json:"value"`
		} `json:"answer"`
		Candidates int `json:"candidates"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if payload.Answer == nil || payload.Answer.Location != "Barcelona" || payload.Answer.Unit != "C" {
		t.Errorf("answer = %+v", payload.Answer)
	}
	if payload.Candidates == 0 {
		t.Error("no candidates reported")
	}
}

func TestServerAskBadRequests(t *testing.T) {
	srv, _ := newServer(t)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"missing question", `{}`, http.StatusBadRequest},
		{"malformed json", `{"question": `, http.StatusBadRequest},
		{"unknown field", `{"quesiton": "typo"}`, http.StatusBadRequest},
	} {
		resp, _ := postJSON(t, srv.URL+"/ask", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/ask")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ask status = %d, want 405", resp.StatusCode)
	}
}

func TestServerAskBatch(t *testing.T) {
	srv, _ := newServer(t)
	q := "What is the weather like in January of 2004 in El Prat?"
	body := `{"questions": [` +
		`"` + q + `", ` +
		`"How hot is it in Barcelona in February of 2004?", ` +
		`"   ", ` +
		`"` + q + `"]}`
	resp, raw := postJSON(t, srv.URL+"/ask/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var payload struct {
		Results []struct {
			Question string `json:"question"`
			Answer   *struct {
				Location string `json:"location"`
			} `json:"answer"`
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if len(payload.Results) != 4 {
		t.Fatalf("%d results, want 4", len(payload.Results))
	}
	// Order is preserved: slot i answers question i.
	if payload.Results[0].Question != q || payload.Results[3].Question != q {
		t.Error("result order does not match input order")
	}
	if payload.Results[0].Answer == nil || payload.Results[0].Answer.Location != "Barcelona" {
		t.Errorf("slot 0 answer = %+v", payload.Results[0].Answer)
	}
	if payload.Results[1].Answer == nil || payload.Results[1].Answer.Location != "Barcelona" {
		t.Errorf("slot 1 answer = %+v", payload.Results[1].Answer)
	}
	if payload.Results[2].Error == "" {
		t.Error("blank question should carry a per-item error")
	}
	if !payload.Results[3].Cached {
		t.Error("duplicate question should be coalesced (cached=true)")
	}
}

func TestServerTrace(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := string(raw)
	for _, want := range []string{"Query", "Question pattern", "Extracted answer", "Barcelona"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestServerHarvest(t *testing.T) {
	srv, eng := newServer(t)
	gen := eng.Generation()
	// Empty body selects the default workload; everything is a duplicate
	// of the feed newServer already ran.
	resp, raw := postJSON(t, srv.URL+"/harvest", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var payload struct {
		Loaded     int    `json:"loaded"`
		Skipped    int    `json:"skipped"`
		Generation uint64 `json:"generation"`
		Results    []struct {
			Question string `json:"question"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if payload.Loaded != 0 || payload.Skipped == 0 {
		t.Errorf("repeat feed loaded %d, skipped %d; want 0 loaded, >0 skipped",
			payload.Loaded, payload.Skipped)
	}
	if payload.Generation != gen+1 {
		t.Errorf("generation = %d, want %d", payload.Generation, gen+1)
	}
	if len(payload.Results) == 0 {
		t.Error("no per-question results")
	}
}

// TestServerAskRoutesAnalytic: POST /ask classifies and serves analytic
// questions with the OLAP payload instead of a factoid answer.
func TestServerAskRoutesAnalytic(t *testing.T) {
	srv, _ := newServer(t)
	resp, body := postJSON(t, srv.URL+"/ask",
		`{"question": "What is the average temperature in Barcelona by month?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Answer *struct{} `json:"answer"`
		OLAP   *struct {
			Category string `json:"category"`
			Plan     string `json:"plan"`
			Rows     []struct {
				Groups []string `json:"groups"`
				Value  float64  `json:"value"`
				Count  int      `json:"count"`
			} `json:"rows"`
			Table string `json:"table"`
		} `json:"olap"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if payload.OLAP == nil {
		t.Fatalf("no olap payload: %s", body)
	}
	if payload.Answer != nil {
		t.Error("analytic answer must not carry a factoid answer")
	}
	if payload.OLAP.Category != "analytic" {
		t.Errorf("category = %q, want analytic", payload.OLAP.Category)
	}
	if payload.OLAP.Plan != "Weather avg(TempC) by Date/Month where City/City in {Barcelona}" {
		t.Errorf("plan = %q", payload.OLAP.Plan)
	}
	if len(payload.OLAP.Rows) != 3 { // January, February, March
		t.Errorf("rows = %d, want 3 months", len(payload.OLAP.Rows))
	}
	if payload.OLAP.Table == "" {
		t.Error("no rendered table")
	}
}

// TestServerAskOLAP covers the analytic-only endpoint: success, factoid
// rejection and grounding failures.
func TestServerAskOLAP(t *testing.T) {
	srv, _ := newServer(t)

	resp, body := postJSON(t, srv.URL+"/ask/olap",
		`{"question": "Total last-minute revenue per destination city in January"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Plan string `json:"plan"`
		Rows []struct {
			Groups []string `json:"groups"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if payload.Plan == "" || len(payload.Rows) == 0 {
		t.Errorf("olap payload = %s", body)
	}

	for _, tc := range []struct {
		name, body string
		wantStatus int
	}{
		{"factoid question", `{"question": "What is the weather like in January of 2004 in El Prat?"}`, http.StatusUnprocessableEntity},
		{"ungroundable entity", `{"question": "average temperature in Gotham by month"}`, http.StatusUnprocessableEntity},
		{"missing question", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, srv.URL+"/ask/olap", tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
		}
	}
}
