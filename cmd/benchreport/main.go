// Command benchreport regenerates every experiment table of the
// reproduction (the data behind EXPERIMENTS.md). Each experiment maps to a
// table or figure of the paper, or to one of its quantified qualitative
// claims — see the per-experiment index in DESIGN.md.
//
// Usage:
//
//	benchreport              # run everything, plain text
//	benchreport -exp F5      # one experiment
//	benchreport -markdown    # markdown tables (EXPERIMENTS.md format)
//	benchreport -json        # machine-readable JSON tables
//	benchreport -bench       # scaling benchmarks → BENCH_PERF.json
//	benchreport -check       # fail on >20% hot-path regression vs BENCH_PERF.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dwqa/internal/eval"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment: F1 F2 F3 T1 F4 F5 QAIR ONTO IRFILTER PSIZE FEED")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON tables")
	bench := flag.Bool("bench", false, "run the OLAP/IR scaling benchmarks and write BENCH_PERF.json")
	check := flag.Bool("check", false, "re-measure the tracked hot paths and fail on >20% ns/op or allocs/op regression vs the baseline")
	baseline := flag.String("baseline", "BENCH_PERF.json", "baseline artefact -check compares against")
	outDir := flag.String("out", ".", "directory for BENCH_*.json artefacts")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	if *check {
		if *bench || *exp != "" || *markdown || *jsonOut {
			fmt.Fprintln(os.Stderr, "benchreport: -check cannot be combined with -bench, -exp, -markdown or -json")
			os.Exit(2)
		}
		if err := runCheck(*baseline, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *bench {
		if *exp != "" || *markdown || *jsonOut {
			fmt.Fprintln(os.Stderr, "benchreport: -bench cannot be combined with -exp, -markdown or -json")
			os.Exit(2)
		}
		rep, err := runPerf(*outDir, *seed)
		if err != nil {
			fatal(err)
		}
		printPerf(rep)
		return
	}

	s := &eval.Suite{Seed: *seed}
	runs := map[string]func() (*eval.Table, error){
		"F1": s.Figure1, "F2": s.Figure2, "F3": s.Figure3, "T1": s.Table1,
		"F4": s.Figure4, "F5": s.Figure5, "QAIR": s.QAvsIR,
		"ONTO": s.OntologyAblation, "IRFILTER": s.IRFilter, "PSIZE": s.PassageSize, "FEED": s.Feed,
	}

	var tables []*eval.Table
	if *exp != "" {
		run, ok := runs[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchreport: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		tbl, err := run()
		if err != nil {
			fatal(err)
		}
		tables = append(tables, tbl)
	} else {
		all, err := s.RunAll()
		if err != nil {
			fatal(err)
		}
		tables = all
	}
	if *jsonOut {
		s, err := eval.TablesJSON(tables)
		if err != nil {
			fatal(err)
		}
		fmt.Println(s)
		return
	}
	for _, t := range tables {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
