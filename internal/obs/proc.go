package obs

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Process-level gauges: live heap, in-use heap spans and resident set
// size. One sampler feeds them all, memoised briefly so a progress line
// or scrape that reads several gauges pays for one runtime.ReadMemStats
// (a stop-the-world-ish call that gets expensive on multi-GiB heaps),
// not one per gauge.

// ProcessRSS returns the process's current resident set size in bytes,
// and ProcessPeakRSS its lifetime peak — read from /proc/self/status
// (VmRSS / VmHWM). Both return 0 where procfs is unavailable; callers
// treat 0 as "unknown", never as a measurement. RSS is the footprint
// number the memory benchmarks record: unlike heap stats it includes
// runtime overhead, stacks and the allocator's retained-but-free spans,
// so it is what an operator actually provisions for.
func ProcessRSS() uint64 { return procStatusKB("VmRSS:") << 10 }

// ProcessPeakRSS returns the peak resident set size in bytes (VmHWM).
func ProcessPeakRSS() uint64 { return procStatusKB("VmHWM:") << 10 }

// procStatusKB extracts one "<key>   <n> kB" line from /proc/self/status.
func procStatusKB(key string) uint64 {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(buf, []byte{'\n'}) {
		rest, ok := bytes.CutPrefix(line, []byte(key))
		if !ok {
			continue
		}
		rest = bytes.TrimSuffix(bytes.TrimSpace(rest), []byte(" kB"))
		n, err := strconv.ParseUint(string(bytes.TrimSpace(rest)), 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	return 0
}

// procSampleTTL memoises a memory-stats sample: readers within the
// window share it. Variable for tests.
var procSampleTTL = 50 * time.Millisecond

type procSample struct {
	at        time.Time
	heapAlloc uint64
	heapInuse uint64
	rss       uint64
}

type procSampler struct {
	mu   sync.Mutex
	last procSample
}

func (s *procSampler) sample() procSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.last.at.IsZero() && time.Since(s.last.at) < procSampleTTL {
		return s.last
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.last = procSample{
		at:        time.Now(),
		heapAlloc: ms.HeapAlloc,
		heapInuse: ms.HeapInuse,
		rss:       ProcessRSS(),
	}
	return s.last
}

// ProcessGauges are the registered process-memory gauges; read them with
// Value() (each read may trigger one shared sample).
type ProcessGauges struct {
	HeapAlloc *FuncGauge // dwqa_heap_alloc_bytes — live heap objects
	HeapInuse *FuncGauge // dwqa_heap_inuse_bytes — in-use heap spans
	RSS       *FuncGauge // dwqa_rss_bytes — resident set size
}

// RegisterProcessGauges registers the heap/RSS gauges on reg and returns
// their handles. Idempotent per registry.
func RegisterProcessGauges(reg *Registry) *ProcessGauges {
	s := &procSampler{}
	return &ProcessGauges{
		HeapAlloc: reg.GaugeFunc("dwqa_heap_alloc_bytes",
			"Live heap bytes (runtime.MemStats.HeapAlloc).",
			func() float64 { return float64(s.sample().heapAlloc) }),
		HeapInuse: reg.GaugeFunc("dwqa_heap_inuse_bytes",
			"In-use heap span bytes (runtime.MemStats.HeapInuse).",
			func() float64 { return float64(s.sample().heapInuse) }),
		RSS: reg.GaugeFunc("dwqa_rss_bytes",
			"Resident set size from /proc/self/status (0 where procfs is unavailable).",
			func() float64 { return float64(s.sample().rss) }),
	}
}
