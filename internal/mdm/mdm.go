// Package mdm implements the multidimensional model used to design the
// data warehouse, following the UML profile of Luján-Mora, Trujillo & Song
// (reference [10] of the paper): facts described by measures, analysed
// through dimensions whose levels are organised in roll-up hierarchies,
// each level carrying an OID, a Descriptor and dimension attributes.
//
// The paper's Figure 1 (the Last Minute Sales excerpt) is an instance of
// this metamodel; Step 1 of the integration derives the domain ontology
// from it (see package uml2onto).
package mdm

import (
	"fmt"
	"sort"
)

// ValueType is the datatype of a measure or attribute.
type ValueType string

// Supported value types.
const (
	TypeFloat  ValueType = "Float"
	TypeInt    ValueType = "Int"
	TypeString ValueType = "String"
	TypeDate   ValueType = "Date"
)

// Measure is a fact attribute that can be aggregated (stereotype FA in the
// UML profile), e.g. Price or Miles.
type Measure struct {
	Name string
	Type ValueType
}

// Attribute is a non-identifier attribute of a dimension level
// (stereotype DA), e.g. the population of a City.
type Attribute struct {
	Name string
	Type ValueType
}

// Level is one aggregation level of a dimension hierarchy (stereotype
// Base), e.g. Airport, City, State, Country. RollsUpTo names the next
// coarser level ("" for the hierarchy top).
type Level struct {
	Name       string
	Descriptor string // descriptor attribute name (stereotype D)
	Attributes []Attribute
	RollsUpTo  string
}

// DimensionClass is a dimension (stereotype Dimension) with its hierarchy
// of levels ordered base-first.
type DimensionClass struct {
	Name   string
	Levels []*Level
}

// Base returns the finest-grained level of the dimension (the first one).
func (d *DimensionClass) Base() *Level {
	if len(d.Levels) == 0 {
		return nil
	}
	return d.Levels[0]
}

// Level returns the level with the given name, or nil.
func (d *DimensionClass) Level(name string) *Level {
	for _, l := range d.Levels {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// PathTo returns the chain of level names from the base level up to (and
// including) the named level, or nil when the level does not exist on the
// roll-up path.
func (d *DimensionClass) PathTo(level string) []string {
	base := d.Base()
	if base == nil {
		return nil
	}
	var path []string
	cur := base
	for cur != nil {
		path = append(path, cur.Name)
		if cur.Name == level {
			return path
		}
		if cur.RollsUpTo == "" {
			return nil
		}
		cur = d.Level(cur.RollsUpTo)
	}
	return nil
}

// DimensionRef binds a fact to a dimension under a role name. A fact may
// reference the same dimension twice under different roles — the paper's
// Airport dimension plays both the Departure and Destination roles.
type DimensionRef struct {
	Role      string
	Dimension string
}

// FactClass is a fact (stereotype Fact) with measures and dimension
// references, e.g. Last Minute Sales.
type FactClass struct {
	Name       string
	Measures   []Measure
	Dimensions []DimensionRef
}

// Measure returns the measure with the given name, or nil.
func (f *FactClass) Measure(name string) *Measure {
	for i := range f.Measures {
		if f.Measures[i].Name == name {
			return &f.Measures[i]
		}
	}
	return nil
}

// Ref returns the dimension reference with the given role, or nil.
func (f *FactClass) Ref(role string) *DimensionRef {
	for i := range f.Dimensions {
		if f.Dimensions[i].Role == role {
			return &f.Dimensions[i]
		}
	}
	return nil
}

// Schema is a complete multidimensional model: a set of facts and the
// dimensions they are analysed by.
type Schema struct {
	Name       string
	Facts      []*FactClass
	Dimensions []*DimensionClass
}

// NewSchema returns an empty schema.
func NewSchema(name string) *Schema { return &Schema{Name: name} }

// AddDimension appends a dimension; levels must be ordered base-first and
// each level's RollsUpTo must point at a later level in the slice (checked
// by Validate).
func (s *Schema) AddDimension(d *DimensionClass) *Schema {
	s.Dimensions = append(s.Dimensions, d)
	return s
}

// AddFact appends a fact class.
func (s *Schema) AddFact(f *FactClass) *Schema {
	s.Facts = append(s.Facts, f)
	return s
}

// Dimension returns the dimension with the given name, or nil.
func (s *Schema) Dimension(name string) *DimensionClass {
	for _, d := range s.Dimensions {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Fact returns the fact with the given name, or nil.
func (s *Schema) Fact(name string) *FactClass {
	for _, f := range s.Facts {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Validate checks the structural invariants of the model: unique names,
// non-empty hierarchies, acyclic roll-up chains reaching the top, and fact
// references to existing dimensions with unique roles.
func (s *Schema) Validate() error {
	dimNames := map[string]bool{}
	for _, d := range s.Dimensions {
		if d.Name == "" {
			return fmt.Errorf("mdm %s: dimension with empty name", s.Name)
		}
		if dimNames[d.Name] {
			return fmt.Errorf("mdm %s: duplicate dimension %q", s.Name, d.Name)
		}
		dimNames[d.Name] = true
		if len(d.Levels) == 0 {
			return fmt.Errorf("mdm %s: dimension %q has no levels", s.Name, d.Name)
		}
		levelNames := map[string]bool{}
		for _, l := range d.Levels {
			if l.Name == "" {
				return fmt.Errorf("mdm %s: dimension %q has a level with empty name", s.Name, d.Name)
			}
			if levelNames[l.Name] {
				return fmt.Errorf("mdm %s: dimension %q has duplicate level %q", s.Name, d.Name, l.Name)
			}
			levelNames[l.Name] = true
			if l.Descriptor == "" {
				return fmt.Errorf("mdm %s: level %q of %q lacks a descriptor", s.Name, l.Name, d.Name)
			}
		}
		// The roll-up chain from the base must visit levels without cycles
		// and terminate at a top level.
		seen := map[string]bool{}
		cur := d.Base()
		for {
			if seen[cur.Name] {
				return fmt.Errorf("mdm %s: roll-up cycle in dimension %q at %q", s.Name, d.Name, cur.Name)
			}
			seen[cur.Name] = true
			if cur.RollsUpTo == "" {
				break
			}
			next := d.Level(cur.RollsUpTo)
			if next == nil {
				return fmt.Errorf("mdm %s: level %q of %q rolls up to unknown %q", s.Name, cur.Name, d.Name, cur.RollsUpTo)
			}
			cur = next
		}
		// Every level must be reachable from the base.
		for _, l := range d.Levels {
			if !seen[l.Name] {
				return fmt.Errorf("mdm %s: level %q of %q unreachable from base", s.Name, l.Name, d.Name)
			}
		}
	}
	factNames := map[string]bool{}
	for _, f := range s.Facts {
		if f.Name == "" {
			return fmt.Errorf("mdm %s: fact with empty name", s.Name)
		}
		if factNames[f.Name] {
			return fmt.Errorf("mdm %s: duplicate fact %q", s.Name, f.Name)
		}
		factNames[f.Name] = true
		if len(f.Measures) == 0 {
			return fmt.Errorf("mdm %s: fact %q has no measures", s.Name, f.Name)
		}
		if len(f.Dimensions) == 0 {
			return fmt.Errorf("mdm %s: fact %q has no dimensions", s.Name, f.Name)
		}
		roles := map[string]bool{}
		for _, ref := range f.Dimensions {
			if roles[ref.Role] {
				return fmt.Errorf("mdm %s: fact %q has duplicate role %q", s.Name, f.Name, ref.Role)
			}
			roles[ref.Role] = true
			if !dimNames[ref.Dimension] {
				return fmt.Errorf("mdm %s: fact %q references unknown dimension %q", s.Name, f.Name, ref.Dimension)
			}
		}
	}
	return nil
}

// Describe renders a deterministic text summary of the schema (used to
// regenerate the paper's Figure 1 as text).
func (s *Schema) Describe() string {
	out := "Schema: " + s.Name + "\n"
	facts := append([]*FactClass(nil), s.Facts...)
	sort.Slice(facts, func(i, j int) bool { return facts[i].Name < facts[j].Name })
	for _, f := range facts {
		out += "  Fact " + f.Name + "\n"
		for _, m := range f.Measures {
			out += fmt.Sprintf("    measure %s: %s\n", m.Name, m.Type)
		}
		for _, ref := range f.Dimensions {
			out += fmt.Sprintf("    dimension %s: %s\n", ref.Role, ref.Dimension)
		}
	}
	dims := append([]*DimensionClass(nil), s.Dimensions...)
	sort.Slice(dims, func(i, j int) bool { return dims[i].Name < dims[j].Name })
	for _, d := range dims {
		out += "  Dimension " + d.Name + ": "
		for i, l := range d.Levels {
			if i > 0 {
				out += " -> "
			}
			out += l.Name
		}
		out += "\n"
	}
	return out
}
