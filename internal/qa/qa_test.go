package qa

import (
	"strings"
	"testing"

	"dwqa/internal/ir"
	"dwqa/internal/merge"
	"dwqa/internal/ontology"
	"dwqa/internal/webcorpus"
	"dwqa/internal/wordnet"
)

// scenarioOntology builds the enriched domain ontology of the Last Minute
// Sales scenario (Steps 1-2 applied, with the Step 4 axioms).
func scenarioOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	o := ontology.New("LastMinuteSales")
	for _, c := range []string{"Airport", "City", "State", "Customer", "Last Minute Sales", "Temperature"} {
		o.AddConcept(c)
	}
	o.AddRelation("Airport", ontology.Relation{Name: "locatedIn", Target: "City"})
	air := func(name, city string, aliases ...string) {
		o.AddInstance("Airport", ontology.Instance{
			Name: name, Aliases: aliases,
			Properties: map[string]string{"locatedIn": city},
		})
	}
	air("El Prat", "Barcelona", "Barcelona-El Prat")
	air("JFK", "New York", "Kennedy International Airport")
	air("John Wayne", "Costa Mesa")
	air("La Guardia", "New York")
	air("Barajas", "Madrid")
	for _, c := range []string{"Barcelona", "Madrid", "New York", "Costa Mesa", "Seville", "Bilbao"} {
		o.AddInstance("City", ontology.Instance{Name: c})
	}
	for _, a := range []ontology.Axiom{
		{Concept: "Temperature", Kind: ontology.AxiomValueFormat, Units: []string{"ºC", "F"}},
		{Concept: "Temperature", Kind: ontology.AxiomValueRange, Unit: "C", Min: -90, Max: 60},
		{Concept: "Temperature", Kind: ontology.AxiomUnitConversion, FromUnit: "C", ToUnit: "F", Scale: 1.8, Offset: 32},
	} {
		if err := o.AddAxiom(a); err != nil {
			t.Fatalf("AddAxiom: %v", err)
		}
	}
	return o
}

// buildSystem assembles a full QA system over the default corpus.
// tuned applies Step 3 (merge) and Step 4 (weather patterns).
func buildSystem(t *testing.T, cfg Config, tuned bool) (*System, *webcorpus.Corpus) {
	t.Helper()
	wn := wordnet.Seed()
	dom := scenarioOntology(t)
	if tuned {
		if _, err := merge.Merge(dom, wn); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	corpus := webcorpus.Build(webcorpus.DefaultConfig())
	index := ir.NewIndex()
	if err := index.AddAll(corpus.Documents(false)); err != nil {
		t.Fatalf("index: %v", err)
	}
	sys, err := NewSystem(wn, dom, index, cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if tuned {
		sys.TunePatterns(WeatherPatterns()...)
	}
	return sys, corpus
}

func TestTaxonomyComplete(t *testing.T) {
	if len(AllCategories) != 20 {
		t.Fatalf("taxonomy has %d categories, want the paper's 20", len(AllCategories))
	}
	seen := map[Category]bool{}
	for _, c := range AllCategories {
		if seen[c] {
			t.Errorf("duplicate category %s", c)
		}
		seen[c] = true
	}
}

func TestClassifyFocus(t *testing.T) {
	wn := wordnet.Seed()
	cases := []struct {
		lemma string
		want  Category
	}{
		{"country", CatPlaceCountry},
		{"city", CatPlaceCity},
		{"capital", CatPlaceCapital},
		{"person", CatPerson},
		{"actor", CatPerson},  // hyponym of person
		{"airline", CatGroup}, // hyponym of group (company)
		{"temperature", CatNumMeasure},
		{"price", CatNumEconomic},
		{"year", CatTempYear},
		{"month", CatTempMonth},
		{"date", CatTempDate},
		{"percentage", CatNumPercent},
		{"star", CatObject},
		{"", CatObject},
		{"zzzz", CatObject},
	}
	for _, c := range cases {
		if got := ClassifyFocus(wn, c.lemma); got != c.want {
			t.Errorf("ClassifyFocus(%q) = %s, want %s", c.lemma, got, c.want)
		}
	}
}

func TestAnalysisPaperQuery(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	a, err := sys.analyze("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !strings.Contains(a.Pattern.Name, "weather | temperature") {
		t.Errorf("pattern = %s, want the Step 4 weather pattern", a.Pattern.Name)
	}
	if a.Category != CatNumMeasure {
		t.Errorf("category = %s, want numerical measure", a.Category)
	}
	// Table 1: "Expected answer type: Number + [ºC | F]".
	if got := a.ExpectedAnswerType(); got != "Number + [ºC | F]" {
		t.Errorf("expected answer type = %q", got)
	}
	// Main SBs must include the date and location but not the focus.
	joined := strings.Join(a.MainSBStrings(), " ")
	for _, want := range []string{"January", "2004", "El Prat", "Barcelona"} {
		if !strings.Contains(joined, want) {
			t.Errorf("main SBs %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "weather") {
		t.Errorf("focus SB leaked into main SBs: %q", joined)
	}
	// Entity resolution: El Prat → Barcelona.
	if len(a.Locations) == 0 || a.Locations[0] != "Barcelona" {
		t.Errorf("locations = %v, want [Barcelona]", a.Locations)
	}
	if len(a.Dates) != 1 || a.Dates[0].Year != 2004 || a.Dates[0].Month != 1 {
		t.Errorf("dates = %v, want 2004-01", a.Dates)
	}
}

func TestAnalysisWithoutOntology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseOntology = false
	sys, _ := buildSystem(t, cfg, false)
	sys.TunePatterns(WeatherPatterns()...) // patterns tuned, ontology off
	a, err := sys.analyze("What is the temperature in January of 2004 in El Prat?")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, loc := range a.Locations {
		if loc == "Barcelona" {
			t.Error("without the ontology El Prat must not resolve to Barcelona")
		}
	}
	if len(a.Expansions) != 0 {
		t.Errorf("expansions without ontology: %v", a.Expansions)
	}
}

func TestAnswerPaperQuery(t *testing.T) {
	sys, corpus := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no answer accepted")
	}
	b := res.Best
	if !b.HasValue || b.Unit != "C" {
		t.Errorf("best answer = %+v, want a Celsius value", b)
	}
	if b.Location != "Barcelona" {
		t.Errorf("location = %q, want Barcelona", b.Location)
	}
	if b.Date.Year != 2004 || b.Date.Month != 1 {
		t.Errorf("date = %+v, want January 2004", b.Date)
	}
	gold, ok := corpus.GoldHigh("Barcelona", b.Date.Year, b.Date.Month, b.Date.Day)
	if !ok {
		t.Fatalf("no gold for extracted date %+v", b.Date)
	}
	if b.Value != gold {
		t.Errorf("value = %v, gold = %v", b.Value, gold)
	}
	if !strings.Contains(b.URL, "barcelona") {
		t.Errorf("answer URL = %s, want the Barcelona weather page", b.URL)
	}
}

func TestAnswerSpecificDay(t *testing.T) {
	sys, corpus := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What is the temperature on the 14th of January, 2004 in Barcelona?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	b := res.Best
	if b.Date.Day != 14 || b.Date.Month != 1 || b.Date.Year != 2004 {
		t.Fatalf("date = %+v, want 2004-01-14", b.Date)
	}
	gold, _ := corpus.GoldHigh("Barcelona", 2004, 1, 14)
	if b.Value != gold {
		t.Errorf("value = %v, gold = %v", b.Value, gold)
	}
}

func TestAnswerViaJFKSynonym(t *testing.T) {
	// "JFK" resolves through the ontology to New York: the paper's
	// synonym-enrichment payoff. February 2004 is covered by a prose page
	// (the January page for New York is a table page — that harder case
	// is what experiment F5 measures).
	sys, corpus := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What is the temperature in February of 2004 in JFK?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	if res.Best.Location != "New York" {
		t.Errorf("location = %q, want New York", res.Best.Location)
	}
	if res.Best.Date.Month != 2 {
		t.Fatalf("answer from month %d, want February", res.Best.Date.Month)
	}
	gold, ok := corpus.GoldHigh("New York", 2004, 2, res.Best.Date.Day)
	if !ok || res.Best.Value != gold {
		t.Errorf("value = %v, gold = %v (ok=%v)", res.Best.Value, gold, ok)
	}
}

func TestAnswerCLEFCountry(t *testing.T) {
	// The paper's CLEF example: "Which country did Iraq invade in 1990?"
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("Which country did Iraq invade in 1990?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Analysis.Category != CatPlaceCountry {
		t.Errorf("category = %s, want place country", res.Analysis.Category)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	if res.Best.Text != "Kuwait" {
		t.Errorf("answer = %q, want Kuwait", res.Best.Text)
	}
}

func TestAnswerSiriusObject(t *testing.T) {
	// The paper's Module 3 example: "What is the brightest star visible in
	// the universe?" → "Sirius".
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What is the brightest star visible in the universe?")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no answer")
	}
	if !strings.EqualFold(res.Best.Text, "Sirius") {
		t.Errorf("answer = %q, want Sirius", res.Best.Text)
	}
}

func TestOntologyAblationDegrades(t *testing.T) {
	// With the ontology, the El Prat question lands on Barcelona; without
	// it, the system cannot resolve the airport and must not produce a
	// confident Barcelona answer.
	on, corpus := buildSystem(t, DefaultConfig(), true)
	cfgOff := DefaultConfig()
	cfgOff.UseOntology = false
	off, _ := buildSystem(t, cfgOff, false)
	off.TunePatterns(WeatherPatterns()...)

	q := "What is the temperature in January of 2004 in El Prat?"
	resOn, err := on.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := off.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Best == nil {
		t.Fatal("tuned system found no answer")
	}
	gold, _ := corpus.GoldHigh("Barcelona", 2004, 1, resOn.Best.Date.Day)
	if resOn.Best.Location != "Barcelona" || resOn.Best.Value != gold {
		t.Errorf("tuned system wrong: %+v", resOn.Best)
	}
	if resOff.Best != nil && resOff.Best.Location == "Barcelona" {
		gold, ok := corpus.GoldHigh("Barcelona", 2004, 1, resOff.Best.Date.Day)
		if ok && resOff.Best.Value == gold {
			t.Error("ablated system should not match the tuned system on the El Prat question")
		}
	}
}

func TestHarvestMonth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TopPassages = 30
	sys, corpus := buildSystem(t, cfg, true)
	answers, _, err := sys.Harvest("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatalf("Harvest: %v", err)
	}
	// The harvest is the Step 5 database: one record per day of January.
	days := map[int]bool{}
	correct, withDay := 0, 0
	for _, ans := range answers {
		if ans.Location != "Barcelona" || ans.Date.Day == 0 {
			continue
		}
		withDay++
		days[ans.Date.Day] = true
		gold, ok := corpus.GoldHigh("Barcelona", 2004, 1, ans.Date.Day)
		v := ans.Value
		if ans.Unit == "F" {
			v = (v - 32) / 1.8
		}
		if ok && v > gold-0.05 && v < gold+0.05 {
			correct++
		}
	}
	if len(days) < 25 {
		t.Errorf("harvest covered %d days of January, want >= 25", len(days))
	}
	if withDay == 0 || float64(correct)/float64(withDay) < 0.9 {
		t.Errorf("harvest precision %d/%d below 0.9", correct, withDay)
	}
}

func TestTraceTable1Fields(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	res, err := sys.Answer("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace()
	if tr.Query == "" || tr.QueryAnalysis == "" || tr.PassageText == "" ||
		tr.PassageAnalysis == "" || tr.ExtractedAnswer == "" {
		t.Fatalf("incomplete trace: %+v", tr)
	}
	// Golden fragments of the paper's Table 1.
	for field, want := range map[string]string{
		"query analysis":  "weather NN weather",
		"pattern":         "[WHAT] [to be] [synonym of weather | temperature]",
		"expected type":   "Number + [ºC | F]",
		"answer location": "Barcelona",
	} {
		var hay string
		switch field {
		case "query analysis":
			hay = tr.QueryAnalysis
		case "pattern":
			hay = tr.QuestionPattern
		case "expected type":
			hay = tr.ExpectedAnswerType
		case "answer location":
			hay = tr.ExtractedAnswer
		}
		if !strings.Contains(hay, want) {
			t.Errorf("trace %s = %q, missing %q", field, hay, want)
		}
	}
	out := tr.Format()
	if !strings.Contains(out, "Query") || !strings.Contains(out, "Extracted answer") {
		t.Errorf("trace format incomplete:\n%s", out)
	}
}

func TestAnswerErrors(t *testing.T) {
	sys, _ := buildSystem(t, DefaultConfig(), true)
	if _, err := sys.Answer(""); err == nil {
		t.Error("empty question accepted")
	}
	if _, err := sys.Answer("   "); err == nil {
		t.Error("blank question accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	wn := wordnet.Seed()
	ix := ir.NewIndex()
	if _, err := NewSystem(nil, nil, ix, DefaultConfig()); err == nil {
		t.Error("nil lexicon accepted")
	}
	if _, err := NewSystem(wn, nil, nil, DefaultConfig()); err == nil {
		t.Error("nil index accepted")
	}
	sys, err := NewSystem(wn, nil, ix, Config{})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Config().TopPassages <= 0 {
		t.Error("TopPassages default not applied")
	}
}

func TestAnswerRender(t *testing.T) {
	a := Answer{Text: "8ºC", Date: dateRef(2004, 1, 31), Location: "Barcelona"}
	want := "(8ºC – Saturday, January 31, 2004 – Barcelona)"
	if got := a.Render(); got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	plain := Answer{Text: "Kuwait"}
	if got := plain.Render(); got != "(Kuwait)" {
		t.Errorf("Render = %q", got)
	}
}

func dateRef(y, m, d int) (out struct {
	Year  int
	Month int
	Day   int
}) {
	out.Year, out.Month, out.Day = y, m, d
	return
}

func BenchmarkAnswerPaperQuery(b *testing.B) {
	sys, _ := buildSystem(&testing.T{}, DefaultConfig(), true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Answer("What is the weather like in January of 2004 in El Prat?"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAnalysisTermSet pins the hoisted question-term set: analyze
// publishes it in lockstep with Terms, and hand-built analyses fall back
// to deriving one.
func TestAnalysisTermSet(t *testing.T) {
	s, _ := buildSystem(t, DefaultConfig(), true)
	a, err := s.analyze("What is the weather like in January of 2004 in Barcelona?")
	if err != nil {
		t.Fatal(err)
	}
	if a.TermSet == nil {
		t.Fatal("analyze left TermSet nil")
	}
	if len(a.TermSet) != len(a.Terms) {
		t.Fatalf("TermSet has %d entries, Terms has %d", len(a.TermSet), len(a.Terms))
	}
	for _, term := range a.Terms {
		if !a.TermSet[term] {
			t.Errorf("TermSet missing term %q", term)
		}
	}

	// Fallback for analyses built by hand (no precomputed set).
	hand := &Analysis{Terms: []string{"alpha", "beta"}}
	set := hand.termSet()
	if !set["alpha"] || !set["beta"] || len(set) != 2 {
		t.Errorf("fallback termSet = %v", set)
	}
	// A precomputed set is returned as-is.
	hand.TermSet = map[string]bool{"gamma": true}
	if !hand.termSet()["gamma"] {
		t.Error("precomputed TermSet not returned")
	}
}
