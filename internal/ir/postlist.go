package ir

import "encoding/binary"

// Compressed posting lists.
//
// A term's postings are ascending (id, tf) pairs — ids strictly increase
// because documents and passages are appended in order and each appears
// at most once per list. That makes the list delta-compressible: store
// the gap to the previous id and the tf as unsigned varints (~2 bytes
// per posting in dense lists vs 8 bytes for the fixed-width struct).
//
// Lists are hybrid: an encoded prefix plus a small raw tail. Add appends
// to the tail; when the tail reaches encodeThreshold entries it is
// flushed into the encoded prefix. Flushing is a pure function of the
// posting sequence — the bytes do not depend on when flushes happened —
// so Export can canonicalise any list (however it was built) into one
// deterministic wire form, and a restored index re-exports byte-identical
// snapshots.
//
// Iteration is a stack-value cursor (postingCursor), not a materialised
// slice: the search hot path decodes postings in place with zero
// per-query allocation, preserving the exact (id, tf) sequence the raw
// lists held — scores are a fold over that sequence, so rankings stay
// byte-identical to the dense reference oracle.

// encodeThreshold is the raw-tail length that triggers a flush into the
// encoded prefix. Lists shorter than this stay raw (rare terms), keeping
// Add cheap; longer lists hold at most this many uncompressed postings.
const encodeThreshold = 16

// postingList is the in-memory hybrid form of one term's postings.
type postingList struct {
	enc    []byte    // delta/varint encoded prefix
	encN   int32     // postings in enc
	lastID int32     // last id in enc; -1 when encN == 0
	raw    []Posting // uncompressed tail, ascending, ids > lastID
}

// count returns the number of postings in the list.
func (pl *postingList) count() int { return int(pl.encN) + len(pl.raw) }

// bytes returns the memory held by posting storage: encoded bytes plus
// the raw tail at its struct width.
func (pl *postingList) bytes() int { return len(pl.enc) + 8*len(pl.raw) }

// add appends a posting (id must exceed every id already present) and
// flushes the raw tail into the encoded prefix once it reaches the
// threshold.
func (pl *postingList) add(id, tf int32) {
	pl.raw = append(pl.raw, Posting{ID: id, TF: tf})
	if len(pl.raw) >= encodeThreshold {
		pl.flush()
	}
}

// flush encodes the raw tail onto the prefix. The encoding is positional
// — each posting's bytes depend only on its predecessor in the full
// sequence — so incremental flushes and a one-shot encode of the whole
// list produce identical bytes.
func (pl *postingList) flush() {
	prev := pl.prevID()
	for _, p := range pl.raw {
		pl.enc = appendPosting(pl.enc, prev, p)
		prev = p.ID
	}
	pl.encN += int32(len(pl.raw))
	pl.lastID = prev
	pl.raw = pl.raw[:0]
}

// prevID returns the delta base for the next encoded posting.
func (pl *postingList) prevID() int32 {
	if pl.encN == 0 {
		return -1
	}
	return pl.lastID
}

// appendPosting encodes one posting as (gap, tf) uvarints. prev is -1
// before the first posting, so the first gap is id+1; gaps are always
// ≥ 1 and tfs ≥ 1, making zero bytes impossible in a valid stream.
func appendPosting(dst []byte, prev int32, p Posting) []byte {
	dst = binary.AppendUvarint(dst, uint64(uint32(p.ID-prev)))
	return binary.AppendUvarint(dst, uint64(uint32(p.TF)))
}

// postingCursor streams a postingList's (id, tf) pairs in order. It is a
// plain value — callers keep it on the stack, so iterating a list
// allocates nothing. The zero cursor is empty.
type postingCursor struct {
	enc  []byte
	pos  int
	rem  int32 // encoded postings not yet yielded
	prev int32 // delta base (-1 before the first encoded posting)
	raw  []Posting
	ri   int
}

// cursor returns a cursor over the list's full posting sequence.
func (pl *postingList) cursor() postingCursor {
	return postingCursor{enc: pl.enc, rem: pl.encN, prev: -1, raw: pl.raw}
}

// next yields the next posting. ok is false when the list is exhausted.
func (c *postingCursor) next() (id, tf int32, ok bool) {
	if c.rem > 0 {
		c.rem--
		gap, tfu := c.readPair()
		c.prev += int32(gap)
		return c.prev, int32(tfu), true
	}
	if c.ri < len(c.raw) {
		p := c.raw[c.ri]
		c.ri++
		return p.ID, p.TF, true
	}
	return 0, 0, false
}

// readPair decodes the next (gap, tf) varint pair, with an inlined fast
// path for the one-byte values that dominate dense lists. The cursor is
// only ever built over streams the list itself encoded (or Import
// validated), so truncation cannot occur; rem guards the loop.
func (c *postingCursor) readPair() (gap, tf uint64) {
	if c.pos+1 < len(c.enc) {
		b0, b1 := c.enc[c.pos], c.enc[c.pos+1]
		if b0 < 0x80 && b1 < 0x80 {
			c.pos += 2
			return uint64(b0), uint64(b1)
		}
	}
	gap, n := binary.Uvarint(c.enc[c.pos:])
	c.pos += n
	tf, n = binary.Uvarint(c.enc[c.pos:])
	c.pos += n
	return gap, tf
}

// PostingList is the canonical wire form of one term's postings: the
// full sequence delta/varint-encoded, no raw tail. It is what Export
// produces, Import consumes, and the durability snapshot stores verbatim
// — restore installs the bytes without re-encoding (snapshot.go,
// internal/store).
type PostingList struct {
	N   int32  // posting count
	Enc []byte // (gap, tf) uvarint pairs; gap is delta from previous id (base -1)
}

// CompressPostings encodes a raw ascending posting slice into wire form.
// Used by tests and by the store's legacy-snapshot reader (fixed-width
// v2 postings are converted once at load).
func CompressPostings(posts []Posting) PostingList {
	if len(posts) == 0 {
		return PostingList{}
	}
	enc := make([]byte, 0, 3*len(posts))
	prev := int32(-1)
	for _, p := range posts {
		enc = appendPosting(enc, prev, p)
		prev = p.ID
	}
	return PostingList{N: int32(len(posts)), Enc: enc}
}

// DecodePostings materialises a wire-form list back into a raw slice —
// the inverse of CompressPostings, for tests and tooling. Malformed
// input yields a short result; use checkWirePostings to validate.
func (pl PostingList) DecodePostings() []Posting {
	out := make([]Posting, 0, pl.N)
	c := postingCursor{enc: pl.Enc, rem: pl.N, prev: -1}
	for {
		id, tf, ok := c.next()
		if !ok {
			return out
		}
		out = append(out, Posting{ID: id, TF: tf})
	}
}

// export canonicalises the list into wire form: the encoded prefix
// verbatim plus the tail encoded behind it. Because encoding is
// positional, the result equals CompressPostings over the full sequence.
func (pl *postingList) export() PostingList {
	n := pl.count()
	if n == 0 {
		return PostingList{}
	}
	enc := make([]byte, len(pl.enc), len(pl.enc)+3*len(pl.raw))
	copy(enc, pl.enc)
	prev := pl.prevID()
	for _, p := range pl.raw {
		enc = appendPosting(enc, prev, p)
		prev = p.ID
	}
	return PostingList{N: int32(n), Enc: enc}
}

// checkWirePostings validates a wire list: exact posting count, strictly
// ascending ids inside [0, limit), tfs ≥ 1, no trailing bytes. Returns
// the last id for adoption.
func checkWirePostings(w PostingList, limit int) (lastID int32, err error) {
	if w.N < 0 {
		return 0, errNegativeCount
	}
	prev := int32(-1)
	pos := 0
	for i := int32(0); i < w.N; i++ {
		gap, n := binary.Uvarint(w.Enc[pos:])
		if n <= 0 {
			return 0, errTruncatedList
		}
		pos += n
		tf, n := binary.Uvarint(w.Enc[pos:])
		if n <= 0 {
			return 0, errTruncatedList
		}
		pos += n
		if gap == 0 || gap > uint64(uint32(1)<<31-1) {
			return 0, errBadGap
		}
		id := int64(prev) + int64(gap)
		if id >= int64(limit) {
			return 0, errIDRange
		}
		if tf < 1 || tf > uint64(uint32(1)<<31-1) {
			return 0, errBadTF
		}
		prev = int32(id)
	}
	if pos != len(w.Enc) {
		return 0, errTrailingBytes
	}
	return prev, nil
}

// postingsBytesLocked sums posting storage across both stores. Caller
// holds at least the read lock.
func (ix *Index) postingsBytesLocked() (bytes, count int) {
	for i := range ix.postings {
		bytes += ix.postings[i].bytes()
		count += ix.postings[i].count()
	}
	for i := range ix.docPostings {
		bytes += ix.docPostings[i].bytes()
		count += ix.docPostings[i].count()
	}
	return bytes, count
}

// PostingsBytes reports the bytes held by posting storage and the total
// posting count across the passage and document stores — the compression
// ratio metric BENCH_PERF.json tracks (fixed-width storage would hold
// exactly 8 bytes per posting).
func (ix *Index) PostingsBytes() (bytes, count int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.postingsBytesLocked()
}
