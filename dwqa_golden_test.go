package dwqa_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dwqa"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestTable1Golden runs the five-step integration end to end and compares
// the full Table 1 trace for the paper's own query ("What is the weather
// like in January of 2004 in El Prat?") byte-for-byte against the
// checked-in golden file. Any drift in tokenisation, tagging, chunking,
// pattern matching, retrieval ranking or extraction shows up here as a
// readable diff. Regenerate deliberately with:
//
//	go test -run TestTable1Golden -update .
func TestTable1Golden(t *testing.T) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	tr, err := p.Table1("")
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	got := tr.Format()

	golden := filepath.Join("testdata", "table1.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("Table 1 trace diverged from %s.\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
