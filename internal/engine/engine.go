// Package engine is the concurrent QA serving layer of the reproduction:
// the piece that turns the five-step DW↔QA pipeline from a one-question-
// at-a-time library call into a service able to absorb user traffic (see
// DESIGN.md §6).
//
// An Engine wraps the two tuned qa.Systems of a pipeline — the
// interactive system and the wide-passage harvester — plus the Step 5
// loader, and adds:
//
//   - a worker-pool batch executor (AskAll, HarvestAll) running up to
//     Config.Workers questions in parallel with deterministic result
//     ordering (results[i] always answers questions[i]);
//   - request coalescing: identical questions inside one batch are
//     analysed once and fanned out, the serving analogue of the
//     singleflight pattern;
//   - an LRU answer cache keyed on the normalised question text, with
//     tag-based selective invalidation: entries record the warehouse
//     members and facts their answer depends on, and a Step 5 feed
//     evicts only the intersecting entries (cache.go, tags.go);
//   - a parallelised Step 5: answers are extracted concurrently per
//     question and committed to the Weather fact in batch instead of
//     row-at-a-time;
//   - analytic dispatch: with a translator installed (SetTranslator),
//     every asked question is classified and analytic ones ("average
//     temperature in Barcelona by month") are compiled to OLAP plans
//     and executed against the warehouse instead of the factoid modules,
//     their answers cached in the same feed-invalidated LRU.
//
// The HTTP façade over an Engine lives in server.go; cmd/dwqa's "serve"
// subcommand wires both to a pipeline.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dwqa/internal/etl"
	"dwqa/internal/nl2olap"
	"dwqa/internal/obs"
	"dwqa/internal/qa"
	"dwqa/internal/store"
)

// Default sizing of the serving layer.
const (
	DefaultWorkers   = 8
	DefaultCacheSize = 1024
)

// Default per-request deadlines, applied when the caller's context has
// none. Interactive asks get a tight budget; harvests run a full
// retrieve-extract-load cycle per question and get a generous one.
const (
	DefaultAskTimeout     = 2 * time.Second
	DefaultHarvestTimeout = 30 * time.Second
)

// Config sizes an Engine.
type Config struct {
	// Workers is the number of questions processed in parallel per batch.
	// Zero or less selects DefaultWorkers.
	Workers int
	// CacheSize is the LRU answer-cache capacity in entries. Zero selects
	// DefaultCacheSize; a negative value disables caching.
	CacheSize int
	// MaxInflight bounds concurrently admitted requests (ask and harvest
	// batches each count as one). Zero selects DefaultMaxInflight; a
	// negative value disables admission control.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for an inflight slot
	// before new arrivals are shed with ErrShed. Zero selects
	// DefaultMaxQueue; a negative value disables queueing (immediate
	// shed once MaxInflight requests are running).
	MaxQueue int
	// AskTimeout is the deadline applied to Ask/AskAll/AskOLAP/Trace
	// requests whose context carries none. Zero selects
	// DefaultAskTimeout; a negative value disables the default deadline.
	AskTimeout time.Duration
	// HarvestTimeout is the same for HarvestAll. Zero selects
	// DefaultHarvestTimeout; negative disables.
	HarvestTimeout time.Duration
	// FullFlushOnFeed restores the pre-selective behaviour: every
	// committed feed flushes the whole answer cache instead of evicting
	// only the entries whose dependency tags the feed touched. Kept as
	// an opt-back knob and as the oracle/baseline the equivalence tests
	// and benchmarks compare selective invalidation against.
	FullFlushOnFeed bool
	// NoObserve disables per-request stage timing: no span is stamped
	// and no clock is read on the ask/harvest paths. Counters and
	// gauges stay live (Stats and /metrics keep reporting totals); the
	// per-stage latency histograms simply receive no observations. This
	// is the baseline arm of the observability overhead benchmark.
	NoObserve bool
}

// ErrPanic reports that a question's processing panicked. The panic was
// recovered at the worker boundary and confined to the slots that asked
// that question; the process and the rest of the batch are unaffected.
// The HTTP layer maps it to 500 on the affected request only.
var ErrPanic = errors.New("engine: internal error")

// Engine is the serving layer over one pipeline's QA side. It is safe for
// concurrent use: AskAll, Ask, HarvestAll and the HTTP handlers may all
// run at once (the underlying qa.System, ir.Index and etl.Loader are
// concurrency-safe, and the cache serialises itself).
type Engine struct {
	ask       *qa.System
	harvester *qa.System
	loader    *etl.Loader
	index     CorpusStats
	cache     *answerCache
	workers   int
	fullFlush bool // Config.FullFlushOnFeed

	// Resilience plumbing (gate.go, degrade.go): admission control,
	// per-request deadlines, and the degraded read-only latch.
	gate            *gate
	askTimeout      time.Duration
	harvestTimeout  time.Duration
	degraded        atomic.Pointer[degradedState]
	readOnlyReplica atomic.Bool

	// met owns the metrics registry, the stage tracer and the serving
	// counters (metrics.go). Every counter the Stats payload reports
	// lives there, so /healthz and /metrics read one source.
	met *engineMetrics

	// answerFn/harvestFn are the per-question work functions; they default
	// to the wrapped qa.Systems' entry points (timed when stage timing is
	// on — the Timings return is by value, so the hot path allocates
	// nothing for it) and exist as seams so tests can inject panicking or
	// stateful implementations (export_test.go).
	answerFn  func(question string) (*qa.Result, qa.Timings, error)
	harvestFn func(question string) ([]qa.Answer, *qa.Result, qa.Timings, error)

	// generation counts warehouse feeds; it bumps every time HarvestAll
	// commits, so clients can detect that answers may reflect a fresher
	// warehouse. Cache invalidation is separate and selective: a commit
	// evicts only the entries whose tags it touched (cache.go).
	generation atomic.Uint64

	mu             sync.Mutex
	defaultHarvest []string

	// commitMu serialises warehouse feed commits against snapshot
	// exports (persist.go). Ask paths never take it.
	commitMu sync.Mutex

	// Durability wiring (persist.go): where snapshots come from and go
	// to, what boot recovery replayed, and when the last snapshot was
	// published (unix nanos; 0 = never).
	snapSource   SnapshotSource
	store        *store.Store
	snapshotter  Snapshotter // generalised persistence (SetSnapshotter)
	recovery     *store.RecoveryInfo
	lastSnapshot atomic.Int64

	// trans, when set, classifies every asked question: analytic
	// questions compile to OLAP plans against the warehouse instead of
	// running the factoid modules (DESIGN.md §6). Stored atomically so
	// serving workers read it lock-free.
	trans atomic.Pointer[nl2olap.Translator]

	// shardStats, when set, reports per-shard replication positions for
	// /healthz (a sharded leader reports per-shard WAL sequences; a
	// follower adds its lag behind each). Stored atomically so Stats
	// never races SetShardStats.
	shardStats atomic.Pointer[func() []ShardStat]
}

// ShardStat is one shard's replication position in the /healthz payload.
// On a leader Lag is always zero; on a follower it is the number of WAL
// records the shard has observed on the leader but not yet applied
// (negative values never occur).
type ShardStat struct {
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
	Lag   int64  `json:"lag"`
}

// SetShardStats installs the per-shard replication reporter surfaced
// through Stats and /healthz, and registers one replica seq/lag gauge
// pair per shard on the metrics registry (the gauges read the reporter
// at scrape time, so a later reconfigure is picked up live).
func (e *Engine) SetShardStats(fn func() []ShardStat) {
	if fn == nil {
		e.shardStats.Store(nil)
		return
	}
	e.shardStats.Store(&fn)
	e.registerShardGauges(len(fn()))
}

// CorpusStats reports the size of the served corpus for the /healthz
// statistics. A single *ir.Index satisfies it; a sharded cluster reports
// the totals across its shards.
type CorpusStats interface {
	DocCount() int
	PassageCount() int
}

// New assembles an engine. ask is required; harvester defaults to ask when
// nil (harvesting then runs with the interactive passage budget); loader
// may be nil, in which case HarvestAll extracts but refuses to load; index
// is optional and only feeds the /healthz statistics.
func New(cfg Config, ask, harvester *qa.System, loader *etl.Loader, index CorpusStats) (*Engine, error) {
	if ask == nil {
		return nil, fmt.Errorf("engine: nil QA system")
	}
	if harvester == nil {
		harvester = ask
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	askTimeout := cfg.AskTimeout
	if askTimeout == 0 {
		askTimeout = DefaultAskTimeout
	}
	harvestTimeout := cfg.HarvestTimeout
	if harvestTimeout == 0 {
		harvestTimeout = DefaultHarvestTimeout
	}
	met := newEngineMetrics(cfg.NoObserve)
	// The cache and gate count on the registry's counters directly, so
	// Stats and /metrics read the same cells.
	cache := newAnswerCache(cacheSize)
	cache.hits, cache.misses, cache.evicted = met.cacheHits, met.cacheMisses, met.cacheEvicted
	g := newGate(cfg.MaxInflight, cfg.MaxQueue)
	g.shed = met.shedTotal
	if met.timing {
		g.queueWait = met.queueWait
	}
	e := &Engine{
		ask:            ask,
		harvester:      harvester,
		loader:         loader,
		index:          index,
		cache:          cache,
		workers:        workers,
		fullFlush:      cfg.FullFlushOnFeed,
		gate:           g,
		askTimeout:     askTimeout,
		harvestTimeout: harvestTimeout,
		met:            met,
	}
	if met.timing {
		e.answerFn = ask.AnswerTimed
		e.harvestFn = harvester.HarvestTimed
	} else {
		// NoObserve: the untimed entry points take no clock readings.
		e.answerFn = func(q string) (*qa.Result, qa.Timings, error) {
			r, err := ask.Answer(q)
			return r, qa.Timings{}, err
		}
		e.harvestFn = func(q string) ([]qa.Answer, *qa.Result, qa.Timings, error) {
			a, r, err := harvester.Harvest(q)
			return a, r, qa.Timings{}, err
		}
	}
	met.registerEngineFuncs(e)
	return e, nil
}

// withDeadline applies the engine's default deadline d when ctx carries
// none (d <= 0 leaves ctx untouched).
func withDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// SetDefaultHarvest installs the harvest workload used when HarvestAll or
// the /harvest endpoint receive no questions (the pipeline installs its
// WeatherQuestions here).
func (e *Engine) SetDefaultHarvest(questions []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defaultHarvest = append([]string(nil), questions...)
}

// DefaultHarvest returns a copy of the installed default workload.
func (e *Engine) DefaultHarvest() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.defaultHarvest...)
}

// SetTranslator installs the NL→OLAP translator that turns Ask/AskAll
// into a mixed-workload endpoint: each question is classified and
// analytic ones are dispatched to the compiled OLAP engine. Analytic
// answers share the factoid LRU, so Step 5 feeds invalidate them too.
func (e *Engine) SetTranslator(t *nl2olap.Translator) { e.trans.Store(t) }

// Translator returns the installed NL→OLAP translator (nil when the
// engine serves the factoid path only).
func (e *Engine) Translator() *nl2olap.Translator { return e.trans.Load() }

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

// Generation returns the number of warehouse feeds this engine has
// committed.
func (e *Engine) Generation() uint64 { return e.generation.Load() }

// InvalidateCache flushes the whole answer cache. Callers that mutate
// the warehouse, index or corpus through paths the engine cannot see
// must call it themselves: index mutations shift the global idf weights
// every factoid and retrieval score depends on, so nothing finer than a
// full flush is safe there. HarvestAll's own feeds no longer need it —
// they evict selectively by dependency tag.
func (e *Engine) InvalidateCache() { e.cache.flush() }

// AskResult is one slot of an AskAll batch. For factoid questions Result
// and Err mirror exactly what a sequential qa.System.Answer call for
// Question would have returned; for analytic questions OLAP carries the
// compiled plan and its result table instead (Result stays nil). Cached
// reports whether the answer came from the LRU (or from another identical
// question in the same batch).
type AskResult struct {
	Question string
	Result   *qa.Result
	OLAP     *nl2olap.Answer
	Err      error
	Cached   bool
}

// Ask answers a single question through the cache.
func (e *Engine) Ask(ctx context.Context, question string) AskResult {
	return e.AskAll(ctx, []string{question})[0]
}

// AskAll answers a batch of questions on the worker pool. Results are in
// input order: out[i] corresponds to questions[i], and for every
// distinct surface form it is byte-identical to what a sequential loop
// of Answer calls would produce. Questions that normalise identically
// (see NormalizeQuestion) are computed once per batch and share the
// first surface form's result — semantically the same answer, though
// its trace echoes the first form's text. Previously answered questions
// are served from the LRU until the next warehouse feed invalidates it.
// Per-question failures (e.g. no pattern matches) land in the
// corresponding slot's Err — one bad question never poisons the batch.
//
// The batch is one admission unit: a saturated engine rejects it whole
// (every slot's Err is ErrShed). The context deadline — the caller's, or
// Config.AskTimeout when the caller set none — is checked between
// questions: answers computed before expiry are returned, the remaining
// slots carry context.DeadlineExceeded, so a timed-out batch is partial,
// never silently empty. A panicking extraction is confined to its own
// slot(s); the rest of the batch completes normally.
func (e *Engine) AskAll(ctx context.Context, questions []string) []AskResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]AskResult, len(questions))
	for i, q := range questions {
		out[i].Question = q
	}
	if len(questions) == 0 {
		return out
	}
	ctx, cancel := withDeadline(ctx, e.askTimeout)
	defer cancel()
	if err := e.gate.acquire(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			e.met.timeoutTotal.Inc()
		}
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	defer e.gate.release()

	// Coalesce identical questions: one task answers every index that
	// asked it.
	type task struct {
		key     string
		text    string // first surface form seen for the key
		indices []int
	}
	byKey := map[string]int{}
	var tasks []task
	for i, q := range questions {
		key := NormalizeQuestion(q)
		if ti, ok := byKey[key]; ok {
			tasks[ti].indices = append(tasks[ti].indices, i)
			continue
		}
		byKey[key] = len(tasks)
		tasks = append(tasks, task{key: key, text: q, indices: []int{i}})
	}

	e.forEach(len(tasks), func(ti int) {
		t := &tasks[ti]
		// Span and outcome for the stage tracer: the deferred finish
		// below runs after the panic net, so every exit path — cached,
		// computed, errored, panicked — lands in the histograms with its
		// outcome, and a slow task logs its breakdown when armed.
		var sp obs.Span
		taskStart := e.met.now()
		outcome := "ok"
		// Panic isolation: a module blowing up on one question fails that
		// question's slots, not the process and not the batch.
		defer func() {
			if r := recover(); r != nil {
				e.met.panicTotal.Inc()
				outcome = "panic"
				err := fmt.Errorf("%w answering %q: panic: %v", ErrPanic, t.text, r)
				for _, i := range t.indices {
					out[i] = AskResult{Question: out[i].Question, Err: err}
				}
			}
			e.met.finish(&sp, taskStart, t.text, outcome)
		}()
		// Deadline check per task: answer modules are CPU-bound and not
		// individually cancellable, so expiry is observed between
		// questions — in-flight answers finish, queued ones are marked.
		if err := ctx.Err(); err != nil {
			outcome = "timeout"
			for _, i := range t.indices {
				out[i].Err = err
			}
			return
		}
		lookupStart := e.met.now()
		cached, ok, epoch := e.cache.get(t.key)
		e.met.stamp(&sp, obs.StageCacheLookup, lookupStart)
		if ok {
			for _, i := range t.indices {
				out[i].Result = cached.qa
				out[i].OLAP = cached.olap
				out[i].Cached = true
			}
			return
		}
		// Dispatch: analytic questions compile to OLAP plans; factoid
		// questions (ErrFactoid) fall through to the three modules. An
		// analytic question the metadata cannot ground is an error —
		// never a silently wrong factoid answer.
		if trans := e.trans.Load(); trans != nil {
			var ans *nl2olap.Answer
			var err error
			if e.met.timing {
				var otm nl2olap.Timings
				ans, otm, err = trans.AnswerTimed(t.text)
				sp.Observe(obs.StageOLAPCompile, otm.Compile)
				sp.Observe(obs.StageOLAPExecute, otm.Execute)
			} else {
				ans, err = trans.Answer(t.text)
			}
			switch {
			case err == nil:
				// Tagged with the warehouse members/facts the plan reads,
				// so feeds evict it only when they touch those.
				e.cache.put(t.key, cachedAnswer{olap: ans}, epoch, olapEntryTags(trans.Schema(), ans))
				for n, i := range t.indices {
					out[i].OLAP = ans
					out[i].Cached = n > 0
				}
				return
			case !errors.Is(err, nl2olap.ErrFactoid):
				outcome = "error"
				for _, i := range t.indices {
					out[i].Err = err
				}
				return
			}
		}
		res, qtm, err := e.answerFn(t.text)
		if e.met.timing {
			sp.Observe(obs.StageNLPAnalyse, qtm.Analyse)
			sp.Observe(obs.StageIRSearch, qtm.Search)
			sp.Observe(obs.StageQAExtract, qtm.Extract)
		}
		if err == nil {
			// epoch-checked: a feed committed mid-computation drops the
			// insert instead of resurrecting a pre-feed answer. Factoid
			// answers carry no tags — they read the IR index, which feeds
			// never mutate — so they survive selective invalidation.
			e.cache.put(t.key, cachedAnswer{qa: res}, epoch, nil)
		} else {
			outcome = "error"
		}
		for n, i := range t.indices {
			out[i].Result = res
			out[i].Err = err
			// The first index did the work; the rest were coalesced.
			out[i].Cached = n > 0
		}
	})
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		e.met.timeoutTotal.Inc()
	}
	return out
}

// AskOLAP answers one question that must be analytic, through the same
// classification, cache and dispatch as Ask. Factoid questions are
// rejected by the translator's cheap classification (an error wrapping
// nl2olap.ErrFactoid) before the expensive factoid modules ever run, so
// the rejection path costs microseconds and never pollutes the cache.
func (e *Engine) AskOLAP(ctx context.Context, question string) (*nl2olap.Answer, error) {
	trans := e.trans.Load()
	if trans == nil {
		return nil, fmt.Errorf("engine: no NL→OLAP translator configured")
	}
	if _, err := trans.Translate(question); err != nil {
		if errors.Is(err, nl2olap.ErrFactoid) {
			return nil, fmt.Errorf("engine: %w (ask the factoid path)", err)
		}
		return nil, err
	}
	r := e.Ask(ctx, question) // classified analytic: serve via the cache
	if r.Err != nil {
		return nil, r.Err
	}
	if r.OLAP == nil {
		// Unreachable while classification is deterministic; kept so a
		// future translator change cannot hand back a factoid result.
		return nil, fmt.Errorf("engine: %w (answered by the factoid path)", nl2olap.ErrFactoid)
	}
	return r.OLAP, nil
}

// Trace answers a question and renders the paper's Table 1 trace for it.
// Analytic questions have no factoid trace; they are reported as such.
func (e *Engine) Trace(ctx context.Context, question string) (qa.Trace, error) {
	r := e.Ask(ctx, question)
	if r.Err != nil {
		return qa.Trace{}, r.Err
	}
	if r.OLAP != nil {
		return qa.Trace{}, fmt.Errorf("engine: %q is analytic (plan: %s); use the OLAP path", question, r.OLAP.PlanString())
	}
	return r.Result.Trace(), nil
}

// HarvestResult is one question's slot of a HarvestAll batch.
type HarvestResult struct {
	Question string
	Answers  []qa.Answer // extracted well-formed records
	Loaded   int         // fact rows this question contributed
	Skipped  int         // duplicates of already-loaded records
	Err      error
}

// HarvestAll runs the Step 5 harvest for a batch of questions: extraction
// runs concurrently on the worker pool, then every question's answers are
// committed to the warehouse in one batch load, in question order — so
// loaded/skipped counts match a sequential harvest-and-load loop exactly.
// An empty batch falls back to the engine's default harvest workload.
// After a commit the feed generation bumps and the answer cache evicts
// the entries whose dependency tags the feed touched (everything, with
// Config.FullFlushOnFeed). Extraction failures are per-question (Err in
// the slot); the batch still loads the questions that succeeded.
//
// Resilience semantics: a degraded engine refuses the feed outright with
// ErrDegraded. The deadline (the caller's, or Config.HarvestTimeout) is
// checked between extractions, and a batch that runs out of time is NOT
// committed — the per-item results (partial: finished extractions plus
// deadline-marked slots) come back with the context error, and nothing
// reached the warehouse, so the client can simply retry the whole batch.
// A feed whose commit fails at the WAL flips the engine into degraded
// read-only mode (degrade.go). A panicking extraction fails only its
// own slot.
func (e *Engine) HarvestAll(ctx context.Context, questions []string) ([]HarvestResult, *etl.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if degraded, reason := e.Degraded(); degraded {
		return nil, nil, fmt.Errorf("%w (cause: %s)", ErrDegraded, reason)
	}
	ctx, cancel := withDeadline(ctx, e.harvestTimeout)
	defer cancel()
	if err := e.gate.acquire(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			e.met.timeoutTotal.Inc()
		}
		return nil, nil, err
	}
	defer e.gate.release()

	if len(questions) == 0 {
		questions = e.DefaultHarvest()
	}
	items := make([]HarvestResult, len(questions))
	e.forEach(len(questions), func(i int) {
		items[i].Question = questions[i]
		var sp obs.Span
		taskStart := e.met.now()
		outcome := "ok"
		defer func() {
			if r := recover(); r != nil {
				e.met.panicTotal.Inc()
				outcome = "panic"
				items[i].Answers = nil
				items[i].Err = fmt.Errorf("%w harvesting %q: panic: %v", ErrPanic, questions[i], r)
			}
			e.met.finish(&sp, taskStart, questions[i], outcome)
		}()
		if err := ctx.Err(); err != nil {
			outcome = "timeout"
			items[i].Err = err
			return
		}
		answers, _, qtm, err := e.harvestFn(questions[i])
		if e.met.timing {
			sp.Observe(obs.StageNLPAnalyse, qtm.Analyse)
			sp.Observe(obs.StageIRSearch, qtm.Search)
			sp.Observe(obs.StageQAExtract, qtm.Extract)
		}
		items[i].Answers = answers
		items[i].Err = err
		if err != nil {
			outcome = "error"
		}
	})
	if err := ctx.Err(); err != nil {
		// Out of time: report what was extracted but commit nothing — a
		// client that saw a 504 must be able to retry without wondering
		// whether half its batch already landed.
		e.met.timeoutTotal.Inc()
		return items, nil, err
	}

	if e.loader == nil {
		if e.readOnlyReplica.Load() {
			return items, nil, ErrReadOnlyReplica
		}
		return items, nil, fmt.Errorf("engine: no loader configured, cannot feed the warehouse")
	}
	batches := make([][]qa.Answer, len(items))
	for i := range items {
		if items[i].Err == nil {
			batches[i] = items[i].Answers
		}
	}
	// The commit is the only engine path that mutates the warehouse;
	// commitMu keeps it atomic with respect to snapshot exports
	// (persist.go) without touching the ask paths.
	e.commitMu.Lock()
	reports, total, touched, err := e.loader.LoadAll(batches)
	e.commitMu.Unlock()
	if err != nil {
		if errors.Is(err, store.ErrWAL) {
			// The store refused to ack a journal append: memory and log
			// can no longer be trusted to agree after a crash. Latch
			// read-only; asks keep serving, further feeds get 503.
			e.enterDegraded(err.Error())
			err = fmt.Errorf("%w (cause: %w)", ErrDegraded, err)
		}
		return items, nil, err
	}
	for i := range items {
		items[i].Loaded = reports[i].Loaded
		items[i].Skipped = reports[i].Skipped
	}
	// The generation counts committed feeds (observability); the cache
	// reacts only to what the feed actually touched. A feed whose every
	// record deduplicated away changed nothing a cached answer could
	// depend on, so nothing is evicted and the epoch stands.
	e.generation.Add(1)
	if e.fullFlush {
		e.cache.flush()
	} else if tags := feedTags(touched); len(tags) > 0 {
		e.cache.invalidate(tags)
	}
	return items, total, nil
}

// Stats is the /healthz payload: engine sizing, cache effectiveness, the
// warehouse-feed generation, the served corpus and warehouse sizes, and
// — when a durable store is wired — the recovery and snapshot
// observability fields the ops side watches after a restart.
type Stats struct {
	Workers int `json:"workers"`
	// CacheEnabled distinguishes a disabled cache (capacity <= 0) from a
	// cold one: a disabled cache reports zero hits AND zero misses, so
	// the ops side never reads a perpetual 0% hit rate off a cache that
	// does not exist.
	CacheEnabled bool   `json:"cache_enabled"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	// CacheEvicted counts entries removed by selective feed invalidation
	// (full flushes reset the table wholesale and are not counted here).
	CacheEvicted uint64 `json:"cache_evicted"`
	Generation   uint64 `json:"generation"`
	Documents    int    `json:"documents"`
	Passages     int    `json:"passages"`

	// Resilience observability (gate.go, degrade.go): the serving state
	// ("ready" or "degraded"), current admitted requests, and the
	// lifetime shed / deadline-expiry / recovered-panic counts.
	State          string `json:"state"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Inflight       int64  `json:"inflight"`
	ShedTotal      uint64 `json:"shed_total"`
	TimeoutTotal   uint64 `json:"timeout_total"`
	PanicTotal     uint64 `json:"panic_total"`

	// Warehouse sizing (present when a SnapshotSource is wired).
	Members  int `json:"members,omitempty"`
	FactRows int `json:"fact_rows,omitempty"`

	// Durability observability (present when a store is wired).
	Durable      bool   `json:"durable,omitempty"`
	WALSeq       uint64 `json:"wal_seq,omitempty"`
	WALErrors    uint64 `json:"wal_errors,omitempty"`    // journal appends refused by the store
	WALReplayed  int    `json:"wal_replayed,omitempty"`  // records replayed at boot
	Recovered    bool   `json:"recovered,omitempty"`     // boot loaded a snapshot
	LastSnapshot string `json:"last_snapshot,omitempty"` // RFC 3339; "" = none this run

	// Shards reports per-shard replication positions (present in sharded
	// deployments; see SetShardStats). On a follower each entry carries
	// the apply lag behind the leader's WAL.
	Shards []ShardStat `json:"shards,omitempty"`
}

// Stats snapshots the engine's serving statistics.
func (e *Engine) Stats() Stats {
	hits, misses, evicted := e.cache.counters()
	st := Stats{
		Workers:      e.workers,
		CacheEnabled: e.cache.enabled(),
		CacheEntries: e.cache.len(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEvicted: evicted,
		Generation:   e.generation.Load(),
		State:        "ready",
		Inflight:     e.gate.Inflight(),
		ShedTotal:    e.gate.Shed(),
		TimeoutTotal: e.met.timeoutTotal.Value(),
		PanicTotal:   e.met.panicTotal.Value(),
	}
	if degraded, reason := e.Degraded(); degraded {
		st.State = "degraded"
		st.DegradedReason = reason
	}
	if e.index != nil {
		st.Documents = e.index.DocCount()
		st.Passages = e.index.PassageCount()
	}
	src, durable, recovery := e.durability()
	if src != nil {
		st.Members, st.FactRows = src.StateCounts()
	}
	if durable != nil {
		st.Durable = true
		st.WALSeq = durable.Seq()
		st.WALErrors = durable.WALErrors()
	}
	if snap := e.getSnapshotter(); snap != nil {
		st.Members, st.FactRows = snap.StateCounts()
		st.Durable = true
		st.WALSeq = snap.Seq()
		st.WALErrors = snap.WALErrors()
	}
	if recovery != nil {
		st.Recovered = recovery.Recovered
		st.WALReplayed = recovery.WALReplayed
	}
	if ns := e.lastSnapshot.Load(); ns != 0 {
		st.LastSnapshot = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	if fn := e.shardStats.Load(); fn != nil {
		st.Shards = (*fn)()
	}
	return st
}

// RetryAfterSeconds derives the Retry-After hint for shed (429)
// responses from the current load instead of a fixed constant: a shed
// request can expect a slot once the work ahead of it — everything
// admitted plus everything queued — has drained, and the gate drains at
// most MaxInflight requests per ask deadline. The result is clamped to
// [1s, 60s]: never "retry immediately" while saturated, never a backoff
// longer than any client should blindly honour.
func (e *Engine) RetryAfterSeconds() int {
	capacity := e.gate.Capacity()
	if capacity <= 0 {
		return 1 // admission control disabled; shedding cannot persist
	}
	ahead := e.gate.Inflight() + e.gate.Queued()
	waves := (ahead + int64(capacity) - 1) / int64(capacity)
	per := e.askTimeout
	if per <= 0 {
		per = DefaultAskTimeout
	}
	secs := int64(time.Duration(waves) * per / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return int(secs)
}

// forEach runs fn(0..n-1) on the worker pool and waits for completion.
func (e *Engine) forEach(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}
