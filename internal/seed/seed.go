// Package seed is the streaming ingestion layer of the reproduction:
// it feeds arbitrary-size corpora (millions of passages) into a durable
// pipeline — IR index and warehouse together — in bounded batches, with
// checkpoint/resume so a killed run restarts where it left off instead
// of from zero.
//
// The design is a cursor over a deterministic page stream:
//
//   - pages arrive either from the generated scaled-corpus grid
//     (core.ScaledPage — the benchmark corpus, produced positionally so
//     no window of it is ever materialised beyond one batch) or from a
//     JSONL file read line by line;
//   - each batch commits through the same durable paths serving feeds
//     use — ir.Index.AddBatch (one WAL record per batch of documents)
//     and etl.Loader.LoadRecords (one combined members+rows WAL record)
//     — so a crash at any point leaves a state WAL replay reconstructs;
//   - after every committed batch a checkpoint (JSON: source
//     fingerprint, pages consumed, the store's WAL sequence number) is
//     atomically renamed into place. On resume the checkpoint is
//     trusted only if its WAL sequence is covered by what recovery
//     actually replayed; otherwise the cursor restarts from zero and
//     idempotency (ir.Index.HasURL for documents, the loader's
//     provenance dedup for rows) re-skips everything already ingested.
//
// The combination makes kill-and-resume converge to the byte-identical
// warehouse, index and ontology state of an uninterrupted run — the
// invariant TestSeederKillResume pins.
package seed

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync/atomic"
	"time"

	"dwqa/internal/core"
	"dwqa/internal/etl"
	"dwqa/internal/ir"
	"dwqa/internal/obs"
	"dwqa/internal/store"
	"dwqa/internal/webcorpus"
)

// CheckpointFile is the name of the resume checkpoint inside the data
// directory, next to the store's WAL and snapshots.
const CheckpointFile = "seeder.ckpt"

// Defaults for the batching knobs.
const (
	DefaultBatchPages    = 64
	DefaultSnapshotEvery = 50 // batches between durable snapshots
)

// Page is one unit of the ingestion stream: a document for the index
// plus the warehouse records asserted by it.
type Page struct {
	URL     string
	Text    string
	Records []etl.WeatherRecord
}

// Config parameterises one seeder run.
type Config struct {
	// DataDir is the durable store directory (created if missing).
	DataDir string
	// Passages is the target passage count for generated mode: the run
	// stops at the first batch boundary where the index holds at least
	// this many passages. Ignored in JSONL mode (the file's end stops
	// the run).
	Passages int
	// MaxPages, when > 0, caps the pages consumed this run.
	MaxPages int
	// BatchPages is the commit granularity (pages per batch). Zero
	// selects DefaultBatchPages. Checkpoints land on batch boundaries,
	// so resume re-processes at most one batch.
	BatchPages int
	// SnapshotEvery is the number of committed batches between durable
	// snapshots (bounding WAL replay after a kill). Zero selects
	// DefaultSnapshotEvery; negative disables periodic snapshots (one
	// is still written at the end).
	SnapshotEvery int
	// Seed drives the generated corpus grid. Must match across resumed
	// runs of one data directory (the checkpoint fingerprint enforces
	// it).
	Seed int64
	// JSONL, when set, streams pages from this file instead of the
	// generated grid. Each line: {"url":..., "text":...,
	// "records":[{"city":...,"year":...,"month":...,"day":...,
	// "temp_c":...}]}.
	JSONL string
	// Logf, when set, receives progress lines (one per ProgressEvery
	// batches) and lifecycle messages.
	Logf func(format string, args ...any)
	// ProgressEvery is the number of batches between progress lines
	// (zero = 16).
	ProgressEvery int
	// GCPercent, when > 0, sets the runtime's GC target percentage for
	// the run (debug.SetGCPercent). Long seeding runs retain a large,
	// growing live heap (the index itself), so the default GOGC=100
	// re-marks the whole live set every time the heap doubles —
	// throughput decays as the corpus grows (~620 pages/s early to
	// ~200 pages/s near 1M passages on one core). Raising this trades
	// peak RSS for fewer, later GC cycles and a flatter rate curve.
	GCPercent int
	// FS overrides the filesystem (fault-injection tests). Nil = OS.
	FS store.FS
	// Core configures the pipeline the data directory boots with; the
	// zero value uses the scenario defaults. Must match across resumes
	// (the store's own fingerprint check enforces it).
	Core core.Config
	// CrashAfterBatches, when > 0, aborts the run with ErrCrashed
	// immediately after committing that many batches this run — after
	// the WAL writes, before the batch's checkpoint lands. It simulates
	// the worst-case kill window for the resume tests.
	CrashAfterBatches int
	// Metrics, when set, is the registry the run's instruments land on
	// (heap/RSS gauges, dwqa_seeder_pages_total, throughput and
	// checkpoint-age gauges) so an embedding process can expose them.
	// Nil gives the run a private registry; the progress line reads the
	// gauges either way.
	Metrics *obs.Registry
}

// ErrCrashed is returned by the CrashAfterBatches test hook.
var ErrCrashed = errors.New("seed: simulated crash")

// Summary reports what one run did. The JSON form is the machine-
// readable trailer cmd/seeder prints ("seeder-summary {...}") for
// scripts driving ingestion runs; Elapsed marshals as nanoseconds.
type Summary struct {
	Resumed    bool          `json:"resumed"`     // a valid checkpoint advanced the cursor
	StartPages int           `json:"start_pages"` // cursor position the run started from
	PagesSeen  int           `json:"pages_seen"`  // pages consumed this run
	DocsAdded  int           `json:"docs_added"`  // documents actually indexed (HasURL skipped the rest)
	Loaded     int           `json:"loaded"`      // fact rows committed this run
	Skipped    int           `json:"skipped"`     // records deduplicated away
	Passages   int           `json:"passages"`    // index passage count at exit
	Documents  int           `json:"documents"`   // index document count at exit
	WALSeq     uint64        `json:"wal_seq"`     // store sequence at exit
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// checkpoint is the resume cursor, written atomically after every
// committed batch.
type checkpoint struct {
	// Fingerprint ties the cursor to one page stream: a checkpoint
	// written against a different source, seed or batch size must not
	// advance this run's cursor (batch size matters because the stop
	// condition is evaluated on batch boundaries — resuming with the
	// same geometry keeps those boundaries, and therefore the final
	// state, identical to an uninterrupted run).
	Fingerprint string `json:"fingerprint"`
	// Pages is the number of stream pages fully committed.
	Pages int `json:"pages"`
	// WALSeq is the store sequence after the batch commit. A resume
	// trusts the checkpoint only if recovery replayed at least this far
	// — a truncated WAL (crash mid-append, corruption) invalidates the
	// cursor and the run falls back to scanning from zero, which
	// idempotency makes merely slower, never wrong.
	WALSeq uint64 `json:"wal_seq"`
}

// Run executes one seeder pass: boot (or recover) the durable pipeline,
// resume the cursor, stream batches until the target is met, snapshot,
// close.
func Run(cfg Config) (*Summary, error) {
	start := time.Now()
	fsys := cfg.FS
	if fsys == nil {
		fsys = store.OS()
	}
	if cfg.BatchPages <= 0 {
		cfg.BatchPages = DefaultBatchPages
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 16
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.JSONL == "" && cfg.Passages <= 0 && cfg.MaxPages <= 0 {
		return nil, fmt.Errorf("seed: generated mode needs a passage target or a page cap")
	}
	if cfg.GCPercent > 0 {
		prev := debug.SetGCPercent(cfg.GCPercent)
		defer debug.SetGCPercent(prev)
		logf("gc target %d%% (was %d%%)", cfg.GCPercent, prev)
	}

	// The run's instruments. The heap/RSS gauges share one memoised
	// sampler, so the progress line reads them instead of re-sampling
	// runtime.MemStats and /proc itself; the counters and the
	// checkpoint-age gauge give an embedding process (Config.Metrics)
	// a live view of ingestion health.
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	proc := obs.RegisterProcessGauges(reg)
	pagesTotal := reg.Counter("dwqa_seeder_pages_total",
		"Pages committed by the seeder.")
	var rateBits atomic.Uint64 // float64 bits: pages/s over the last progress window
	reg.GaugeFunc("dwqa_seeder_pages_per_second",
		"Ingest throughput over the last progress window.",
		func() float64 { return math.Float64frombits(rateBits.Load()) })
	var lastCkpt atomic.Int64 // unix nanos of the last checkpoint write; 0 = none yet
	reg.GaugeFunc("dwqa_seeder_checkpoint_age_seconds",
		"Seconds since the last committed checkpoint (-1 before the first).",
		func() float64 {
			at := lastCkpt.Load()
			if at == 0 {
				return -1
			}
			return time.Since(time.Unix(0, at)).Seconds()
		})

	p, info, err := core.OpenPipelineFS(cfg.Core, cfg.DataDir, fsys)
	if err != nil {
		return nil, err
	}
	st := p.Store()
	defer st.Close()
	if info.Recovered {
		logf("recovered %s (replayed %d WAL records, seq %d)", info.SnapshotPath, info.WALReplayed, st.Seq())
	} else {
		logf("fresh data directory %s", cfg.DataDir)
	}

	sum := &Summary{}
	cursor := 0
	fp := cfg.sourceFingerprint()
	if cp, err := readCheckpoint(fsys, cfg.DataDir); err == nil && cp != nil {
		switch {
		case cp.Fingerprint != fp:
			logf("checkpoint is for a different stream (%q); restarting scan", cp.Fingerprint)
		case cp.WALSeq > st.Seq():
			logf("checkpoint seq %d ahead of recovered WAL seq %d; restarting scan", cp.WALSeq, st.Seq())
		default:
			cursor = cp.Pages
			sum.Resumed = true
			logf("resuming at page %d (checkpoint seq %d)", cursor, cp.WALSeq)
		}
	}
	sum.StartPages = cursor

	src, err := cfg.newSource(cursor)
	if err != nil {
		return nil, err
	}
	defer src.close()

	batchesDone := 0
	window := time.Now()
	windowPages := 0
	for {
		if done := cfg.met(p, sum); done {
			break
		}
		pages, err := src.nextBatch(cfg.remaining(sum, cfg.BatchPages))
		if err != nil {
			return nil, err
		}
		if len(pages) == 0 {
			break // JSONL exhausted
		}
		docs := make([]ir.Document, 0, len(pages))
		var recs []etl.WeatherRecord
		for _, pg := range pages {
			// HasURL makes re-processed pages (a resume over the tail the
			// checkpoint had not covered) no-ops on the index; the loader's
			// provenance dedup does the same for the records, so the two
			// halves stay consistent even when a crash landed between
			// their WAL records.
			if !p.Index.HasURL(pg.URL) {
				docs = append(docs, ir.Document{URL: pg.URL, Text: pg.Text})
			}
			recs = append(recs, pg.Records...)
		}
		if len(docs) > 0 {
			if err := p.Index.AddBatch(docs); err != nil {
				return nil, fmt.Errorf("seed: indexing batch at page %d: %w", cursor, err)
			}
			sum.DocsAdded += len(docs)
		}
		rep, _, err := p.Loader.LoadRecords(recs)
		if err != nil {
			return nil, fmt.Errorf("seed: loading batch at page %d: %w", cursor, err)
		}
		sum.Loaded += rep.Loaded
		sum.Skipped += rep.Skipped
		cursor += len(pages)
		sum.PagesSeen += len(pages)
		windowPages += len(pages)
		batchesDone++
		pagesTotal.Add(uint64(len(pages)))

		if cfg.CrashAfterBatches > 0 && batchesDone >= cfg.CrashAfterBatches {
			// Simulated kill: the WAL holds the batch, the checkpoint does
			// not — the resume path's worst case.
			return sum, ErrCrashed
		}
		if err := writeCheckpoint(fsys, cfg.DataDir, checkpoint{Fingerprint: fp, Pages: cursor, WALSeq: st.Seq()}); err != nil {
			return nil, fmt.Errorf("seed: checkpoint: %w", err)
		}
		lastCkpt.Store(time.Now().UnixNano())
		if cfg.SnapshotEvery > 0 && batchesDone%cfg.SnapshotEvery == 0 {
			if err := snapshot(p, st); err != nil {
				return nil, err
			}
		}
		if batchesDone%cfg.ProgressEvery == 0 {
			elapsed := time.Since(window)
			rate := float64(windowPages) / elapsed.Seconds()
			rateBits.Store(math.Float64bits(rate))
			// Memory numbers come from the registered gauges (one shared
			// memoised sample), not a fresh MemStats/procfs read.
			logf("page %d: %d passages, %d rows loaded (%d deduped), %.0f pages/s, heap %d MiB live / %d MiB inuse, rss %d MiB, wal seq %d",
				cursor, p.Index.PassageCount(), sum.Loaded, sum.Skipped, rate,
				uint64(proc.HeapAlloc.Value())>>20, uint64(proc.HeapInuse.Value())>>20,
				uint64(proc.RSS.Value())>>20, st.Seq())
			window, windowPages = time.Now(), 0
		}
	}

	if err := snapshot(p, st); err != nil {
		return nil, err
	}
	sum.Passages = p.Index.PassageCount()
	sum.Documents = p.Index.DocCount()
	sum.WALSeq = st.Seq()
	sum.Elapsed = time.Since(start)
	logf("done: %d pages this run (%d docs indexed, %d rows, %d deduped), %d passages total, %v",
		sum.PagesSeen, sum.DocsAdded, sum.Loaded, sum.Skipped, sum.Passages, sum.Elapsed.Round(time.Millisecond))
	return sum, nil
}

// met evaluates the stop conditions that are deterministic in the page
// sequence (checked on batch boundaries only, so interrupted and
// uninterrupted runs agree on where to stop).
func (cfg Config) met(p *core.Pipeline, sum *Summary) bool {
	if cfg.JSONL == "" && cfg.Passages > 0 && p.Index.PassageCount() >= cfg.Passages {
		return true
	}
	return cfg.MaxPages > 0 && sum.PagesSeen >= cfg.MaxPages
}

// remaining bounds the next batch by the MaxPages budget.
func (cfg Config) remaining(sum *Summary, batch int) int {
	if cfg.MaxPages > 0 && cfg.MaxPages-sum.PagesSeen < batch {
		return cfg.MaxPages - sum.PagesSeen
	}
	return batch
}

// sourceFingerprint identifies the page stream a checkpoint cursor is
// valid against. For JSONL it must distrust an edited file, not just a
// renamed one: a line rewritten in place changes neither the base name
// nor (necessarily) the size, yet shifts every page after it — resuming
// the old cursor over the new stream would silently skip or duplicate
// pages. Folding the file size and a full content hash in makes any
// in-place edit restart the scan, which idempotency turns into a safe
// (merely slower) full re-skip.
func (cfg Config) sourceFingerprint() string {
	if cfg.JSONL != "" {
		size, sum, err := hashFile(cfg.JSONL)
		if err != nil {
			// Unreadable source: poison the fingerprint so no stored
			// checkpoint matches; newSource reports the real error.
			return fmt.Sprintf("jsonl file=%s unreadable=%v", filepath.Base(cfg.JSONL), err)
		}
		return fmt.Sprintf("jsonl file=%s size=%d sha256=%s batch=%d",
			filepath.Base(cfg.JSONL), size, sum, cfg.BatchPages)
	}
	return fmt.Sprintf("scaled seed=%d batch=%d", cfg.Seed, cfg.BatchPages)
}

// hashFile streams the file through SHA-256 without materialising it —
// JSONL corpora can be far larger than memory.
func hashFile(path string) (int64, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	h := sha256.New()
	size, err := io.Copy(h, f)
	if err != nil {
		return 0, "", err
	}
	return size, hex.EncodeToString(h.Sum(nil)), nil
}

// snapshot publishes the current state (bounding future recovery work).
// The seeder is the directory's only writer, so no commit quiesce is
// needed.
func snapshot(p *core.Pipeline, st *store.Store) error {
	state, err := p.ExportState()
	if err != nil {
		return fmt.Errorf("seed: exporting state: %w", err)
	}
	state.WALSeq = st.Seq()
	if _, err := st.WriteSnapshot(state); err != nil {
		return fmt.Errorf("seed: snapshot: %w", err)
	}
	return nil
}

// readCheckpoint loads the cursor; a missing or unreadable file means
// "no checkpoint" (nil, nil) — corruption falls back to a full rescan,
// never an error.
func readCheckpoint(fsys store.FS, dir string) (*checkpoint, error) {
	buf, err := fsys.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		return nil, nil
	}
	var cp checkpoint
	if err := json.Unmarshal(buf, &cp); err != nil || cp.Pages < 0 {
		return nil, nil
	}
	return &cp, nil
}

// writeCheckpoint publishes the cursor atomically: temp file, fsync,
// rename, directory sync — the same protocol the store's snapshots use,
// so a kill mid-write leaves the previous checkpoint intact.
func writeCheckpoint(fsys store.FS, dir string, cp checkpoint) error {
	buf, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	f, err := fsys.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	name := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fsys.Remove(name)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(name)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(name)
		return err
	}
	if err := fsys.Rename(name, filepath.Join(dir, CheckpointFile)); err != nil {
		fsys.Remove(name)
		return err
	}
	return fsys.SyncDir(dir)
}

// source streams pages starting at an absolute cursor position.
type source interface {
	// nextBatch returns up to n pages (fewer only at end of stream).
	nextBatch(n int) ([]Page, error)
	close()
}

func (cfg Config) newSource(cursor int) (source, error) {
	if cfg.JSONL != "" {
		return newJSONLSource(cfg.JSONL, cursor)
	}
	return &gridSource{next: cursor, seed: cfg.Seed}, nil
}

// gridSource generates the scaled-corpus page grid positionally — the
// streaming view of core.BuildScaledCorpus's enumeration. Resume is a
// counter restart; nothing before the cursor is regenerated.
type gridSource struct {
	next int
	seed int64
}

func (g *gridSource) nextBatch(n int) ([]Page, error) {
	out := make([]Page, 0, n)
	for i := 0; i < n; i++ {
		pg := core.ScaledPage(g.next, g.seed)
		g.next++
		out = append(out, Page{
			URL:     pg.URL,
			Text:    webcorpus.ExtractText(pg.HTML),
			Records: goldRecords(pg),
		})
	}
	return out, nil
}

func (g *gridSource) close() {}

// goldRecords converts a generated page's gold facts into loader
// records with the page as provenance.
func goldRecords(pg webcorpus.Page) []etl.WeatherRecord {
	recs := make([]etl.WeatherRecord, 0, len(pg.Gold))
	for _, gold := range pg.Gold {
		recs = append(recs, etl.WeatherRecord{
			City: gold.City, Year: gold.Year, Month: gold.Month, Day: gold.Day,
			TempC: gold.TempC, SourceURL: pg.URL,
		})
	}
	return recs
}

// jsonlPage is the wire form of one JSONL corpus line.
type jsonlPage struct {
	URL     string `json:"url"`
	Text    string `json:"text"`
	Records []struct {
		City  string  `json:"city"`
		Year  int     `json:"year"`
		Month int     `json:"month"`
		Day   int     `json:"day"`
		TempC float64 `json:"temp_c"`
	} `json:"records"`
}

// jsonlSource streams a line-delimited corpus file with bounded memory:
// one batch of lines is decoded at a time. Resume skips cursor lines
// without decoding them.
type jsonlSource struct {
	f    *os.File
	sc   *bufio.Scanner
	line int
}

func newJSONLSource(path string, cursor int) (*jsonlSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seed: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20) // pages can be large
	s := &jsonlSource{f: f, sc: sc}
	for s.line < cursor {
		if !sc.Scan() {
			break // shorter file than the checkpoint claims; EOF next
		}
		s.line++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("seed: skipping to line %d: %w", cursor, err)
	}
	return s, nil
}

func (s *jsonlSource) nextBatch(n int) ([]Page, error) {
	out := make([]Page, 0, n)
	for len(out) < n && s.sc.Scan() {
		s.line++
		raw := s.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jp jsonlPage
		if err := json.Unmarshal(raw, &jp); err != nil {
			return nil, fmt.Errorf("seed: %s line %d: %w", s.f.Name(), s.line, err)
		}
		pg := Page{URL: jp.URL, Text: jp.Text}
		for _, r := range jp.Records {
			pg.Records = append(pg.Records, etl.WeatherRecord{
				City: r.City, Year: r.Year, Month: r.Month, Day: r.Day,
				TempC: r.TempC, SourceURL: jp.URL,
			})
		}
		out = append(out, pg)
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("seed: reading %s: %w", s.f.Name(), err)
	}
	return out, nil
}

func (s *jsonlSource) close() { s.f.Close() }
