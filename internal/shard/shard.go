// Package shard partitions the warehouse/index stack across N shards by
// city-dimension hash and serves scatter/gather queries over them with
// answers byte-identical to a single-node deployment (DESIGN.md §10).
//
// Partitioning discipline: dimensions are replicated — every AddMember
// goes to all shards in the same order, so member keys are identical
// everywhere and any shard can validate or describe a query. Fact rows
// are partitioned — each row hashes by the city its routing role rolls
// up to (FNV-1a of the member name, mod N), so a city's rows, whatever
// fact they belong to, land on one shard. Documents are partitioned the
// same way by a caller-supplied routing key, with a cluster-wide ordinal
// (ir.Document.Ord) assigned at ingest so federated ranking can break
// ties exactly as one big index would.
//
// Reads scatter to all shards and merge deterministically: OLAP plans
// through dw.ExecuteCells/MergeCells, IR searches through the
// global-statistics protocol in ir/federate.go. Single-writer
// discipline: one process feeds the cluster; replicas (follower.go)
// open shipped snapshots and tail the WAL read-only.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/mdm"
	"dwqa/internal/obs"
)

// Node is one shard's stack: its slice of the fact columns and of the
// passage index. Followers swap whole Nodes atomically on snapshot
// reload, so everything derived from one shard's state hangs off the
// struct a single pointer load returns.
type Node struct {
	WH *dw.Warehouse
	IX *ir.Index
}

// Route names, per fact, the role whose coordinate places a row: the
// row hashes by the member its Role coordinate rolls up to at Level.
// The paper's schema routes Weather by City@City (the coordinate is the
// city) and LastMinuteSales by Destination@City (the destination
// airport's city), so a city's weather and its inbound sales co-locate.
type Route struct {
	Role  string
	Level string
}

// Cluster is the scatter/gather coordinator over N shards. It satisfies
// the warehouse surface the rest of the stack consumes (etl.Warehouse,
// nl2olap.Warehouse, the scenario population) and the retrieval surface
// (qa.Retriever, engine.CorpusStats), so a Pipeline-shaped stack runs
// over it unchanged.
type Cluster struct {
	schema *mdm.Schema
	routes map[string]Route
	n      int
	irOpts []ir.Option

	// nodes are atomic so a follower's tail loop can swap a shard's
	// whole state under readers when it falls behind a snapshot.
	nodes []atomic.Pointer[Node]

	// mu guards the ordinal map and counter. ordDoc resolves a global
	// document ordinal to (shard, local index) — the read path's
	// Document(ord) and the leader's ingest both go through it.
	mu      sync.RWMutex
	ordDoc  map[int64][2]int
	nextOrd int64

	// fanout, when set, observes each shard's wall-clock contribution to
	// every scatter round (both Search rounds and Execute) — the
	// straggler detector. Swapped atomically so scatter goroutines never
	// lock to read it; nil means no observation and no clock readings.
	fanout atomic.Pointer[obs.Histogram]
}

// SetFanoutHistogram attaches (or, with nil, detaches) the per-shard
// scatter latency histogram. Safe to call while queries are in flight.
func (c *Cluster) SetFanoutHistogram(h *obs.Histogram) {
	c.fanout.Store(h)
}

// NewCluster builds an n-shard cluster over the schema. Every shard gets
// its own warehouse and index; irOpts configure each shard's index
// identically (passage size and stride must match the single-node
// deployment for answers to be comparable).
func NewCluster(schema *mdm.Schema, n int, routes map[string]Route, irOpts ...ir.Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", n)
	}
	for fact, r := range routes {
		fc := schema.Fact(fact)
		if fc == nil {
			return nil, fmt.Errorf("shard: route for unknown fact %q", fact)
		}
		ref := fc.Ref(r.Role)
		if ref == nil {
			return nil, fmt.Errorf("shard: fact %q has no role %q", fact, r.Role)
		}
		dim := schema.Dimension(ref.Dimension)
		if dim == nil || dim.PathTo(r.Level) == nil {
			return nil, fmt.Errorf("shard: dimension %q has no roll-up path to level %q", ref.Dimension, r.Level)
		}
	}
	c := &Cluster{
		schema: schema,
		routes: routes,
		n:      n,
		irOpts: irOpts,
		nodes:  make([]atomic.Pointer[Node], n),
		ordDoc: make(map[int64][2]int),
	}
	for i := 0; i < n; i++ {
		wh, err := dw.New(schema)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.nodes[i].Store(&Node{WH: wh, IX: ir.NewIndex(irOpts...)})
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.n }

// Node returns shard i's current stack. Callers must not hold the
// returned pointer across feed boundaries on a follower — reloads swap
// it.
func (c *Cluster) Node(i int) *Node { return c.nodes[i].Load() }

// SetNode swaps shard i's stack — the follower's snapshot-reload path.
// The caller must rebuild the shard's ordinal entries (ReindexShard)
// after the swap.
func (c *Cluster) SetNode(i int, n *Node) { c.nodes[i].Store(n) }

// Schema returns the shared multidimensional schema.
func (c *Cluster) Schema() *mdm.Schema { return c.schema }

// hashShard places a routing key: FNV-1a 64 of the member name, mod N.
// Stable across runs and processes, so a leader and its replicas (and a
// re-seeded equivalence run) agree on placement.
func (c *Cluster) hashShard(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(c.n))
}

// RouteKey resolves the routing member for one fact row: the coordinate
// of the routing role rolled up to the route level. overlay, when
// non-nil, is a pending batch's member specs — rows arriving with the
// members that ground them (AddBatch) must resolve parents that are not
// committed anywhere yet.
func (c *Cluster) RouteKey(fact string, coords map[string]string, overlay []dw.MemberSpec) (string, error) {
	r, ok := c.routes[fact]
	if !ok {
		// Unrouted fact: derive a deterministic key from the full
		// coordinate tuple so placement is still stable.
		keys := make([]string, 0, len(coords))
		for role, name := range coords {
			keys = append(keys, role+"="+name)
		}
		sort.Strings(keys)
		return fact + "\x00" + strings.Join(keys, "\x00"), nil
	}
	ref := c.schema.Fact(fact).Ref(r.Role)
	path := c.schema.Dimension(ref.Dimension).PathTo(r.Level)
	name, ok := coords[r.Role]
	if !ok || name == "" {
		return "", fmt.Errorf("shard: fact %q row missing routing coordinate %q", fact, r.Role)
	}
	// Walk the roll-up chain from the base level to the route level,
	// consulting the pending overlay before the committed dimension.
	for _, level := range path[:len(path)-1] {
		parent := overlayParent(overlay, ref.Dimension, level, name)
		if parent == "" {
			p, err := c.Node(0).WH.ParentName(ref.Dimension, level, name)
			if err != nil {
				return "", fmt.Errorf("shard: routing %q row: %w", fact, err)
			}
			parent = p
		}
		if parent == "" {
			return "", fmt.Errorf("shard: routing %q row: member %q at %s/%s has no parent", fact, name, ref.Dimension, level)
		}
		name = parent
	}
	return name, nil
}

// overlayParent looks up a member's parent in a pending batch's specs.
func overlayParent(specs []dw.MemberSpec, dim, level, name string) string {
	for i := range specs {
		if specs[i].Dim == dim && specs[i].Level == level && specs[i].Name == name {
			return specs[i].Parent
		}
	}
	return ""
}

// --- Dimension writes: replicated to every shard in identical order ---

// AddMember inserts a dimension member on every shard. Shards apply
// members in the same sequence, so keys are identical everywhere; the
// returned key is shard 0's (== every shard's).
func (c *Cluster) AddMember(dim, level, name string, attrs map[string]string, parentName string) (int, error) {
	key := -1
	for i := 0; i < c.n; i++ {
		k, err := c.Node(i).WH.AddMember(dim, level, name, attrs, parentName)
		if err != nil {
			return -1, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			key = k
		}
	}
	return key, nil
}

// AddMembers inserts a member batch on every shard.
func (c *Cluster) AddMembers(specs []dw.MemberSpec) error {
	for i := 0; i < c.n; i++ {
		if err := c.Node(i).WH.AddMembers(specs); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// --- Fact writes: partitioned by routing key ---

// AddFact appends one fact row to the shard its routing key hashes to.
func (c *Cluster) AddFact(fact string, coords map[string]string, measures map[string]float64) error {
	return c.AddFactProvenance(fact, coords, measures, "")
}

// AddFactProvenance is AddFact with a lineage tag.
func (c *Cluster) AddFactProvenance(fact string, coords map[string]string, measures map[string]float64, provenance string) error {
	key, err := c.RouteKey(fact, coords, nil)
	if err != nil {
		return err
	}
	return c.Node(c.hashShard(key)).WH.AddFactProvenance(fact, coords, measures, provenance)
}

// AddFactRows partitions a row batch by routing key and applies each
// shard's slice as one atomic sub-batch. Atomicity is per shard: rows
// are validated shard-locally before any are stored, but a failure on
// shard k leaves shards < k committed — the single writer must treat
// that as fatal, exactly as a half-applied WAL would be.
func (c *Cluster) AddFactRows(fact string, rows []dw.FactRow) error {
	groups, err := c.groupRows(fact, rows, nil)
	if err != nil {
		return err
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := c.Node(i).WH.AddFactRows(fact, g); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// AddBatch applies one ETL commit unit: member specs replicate to every
// shard, fact rows route by city with the uncommitted specs as parent
// overlay. Each shard sees (its members, its rows) as one atomic
// warehouse batch and one WAL record.
func (c *Cluster) AddBatch(specs []dw.MemberSpec, fact string, rows []dw.FactRow) error {
	groups, err := c.groupRows(fact, rows, specs)
	if err != nil {
		return err
	}
	for i := 0; i < c.n; i++ {
		if err := c.Node(i).WH.AddBatch(specs, fact, groups[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// groupRows partitions rows by routing key, preserving order within
// each shard's slice.
func (c *Cluster) groupRows(fact string, rows []dw.FactRow, overlay []dw.MemberSpec) ([][]dw.FactRow, error) {
	groups := make([][]dw.FactRow, c.n)
	for _, row := range rows {
		key, err := c.RouteKey(fact, row.Coords, overlay)
		if err != nil {
			return nil, err
		}
		s := c.hashShard(key)
		groups[s] = append(groups[s], row)
	}
	return groups, nil
}

// --- Reads: dimension metadata from shard 0, facts scatter/gathered ---

// Validate checks a query against shard 0 (dimensions are replicated,
// so any shard's answer is the cluster's).
func (c *Cluster) Validate(q dw.Query) error { return c.Node(0).WH.Validate(q) }

// Execute scatters the plan to every shard (dw.ExecuteCells), then
// folds the partial cells into one result (dw.MergeCells). The merge is
// deterministic — cells fold in shard order, groups sort exactly as the
// single-node plan sorts them — and the aggregate is applied only after
// the fold, so Avg/Count over partitioned rows match a single warehouse.
func (c *Cluster) Execute(q dw.Query) (*dw.Result, error) {
	parts := make([][]dw.CellRow, c.n)
	errs := make([]error, c.n)
	fanout := c.fanout.Load()
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var start time.Time
			if fanout != nil {
				start = time.Now()
			}
			parts[i], errs[i] = c.Node(i).WH.ExecuteCells(q)
			if fanout != nil {
				fanout.Observe(time.Since(start))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return dw.MergeCells(q, parts), nil
}

// Members returns the sorted member names at a level (replicated; shard
// 0 answers).
func (c *Cluster) Members(dim, level string) []string { return c.Node(0).WH.Members(dim, level) }

// MemberKey resolves a member name to its dense key (identical on every
// shard).
func (c *Cluster) MemberKey(dim, level, name string) (int, error) {
	return c.Node(0).WH.MemberKey(dim, level, name)
}

// Member returns a member by key.
func (c *Cluster) Member(dim, level string, key int) (dw.Member, error) {
	return c.Node(0).WH.Member(dim, level, key)
}

// ParentName returns a member's parent name.
func (c *Cluster) ParentName(dim, level, name string) (string, error) {
	return c.Node(0).WH.ParentName(dim, level, name)
}

// MemberCount returns the member count at a level.
func (c *Cluster) MemberCount(dim, level string) int { return c.Node(0).WH.MemberCount(dim, level) }

// FactCount sums a fact's row count across shards.
func (c *Cluster) FactCount(fact string) int {
	total := 0
	for i := 0; i < c.n; i++ {
		total += c.Node(i).WH.FactCount(fact)
	}
	return total
}

// Counts returns (dimension members, total fact rows) for serving
// stats: members from shard 0 (replicated), rows summed.
func (c *Cluster) Counts() (members, factRows int) {
	members, factRows = c.Node(0).WH.Counts()
	for i := 1; i < c.n; i++ {
		_, rows := c.Node(i).WH.Counts()
		factRows += rows
	}
	return members, factRows
}

// ScanFact walks every shard's rows in shard order with a cluster-wide
// running row number — the ETL dedup-restore path. Row numbers are
// scan-positional, not stable identifiers, matching ScanFact's contract.
func (c *Cluster) ScanFact(fact string, roles []string, fn func(row int, names []string, provenance string) error) error {
	next := 0
	for i := 0; i < c.n; i++ {
		err := c.Node(i).WH.ScanFact(fact, roles, func(_ int, names []string, provenance string) error {
			err := fn(next, names, provenance)
			next++
			return err
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
