// Package webcorpus provides the synthetic web substrate of the
// reproduction. The paper evaluates against live web pages (e.g.
// barcelona-tourist-guide.com); this package replaces them with a
// deterministic generator whose gold truth is known by construction:
//
//   - prose weather pages in the exact layout of the paper's Figure 4
//     ("Monday, January 31, 2004 / Barcelona Weather: Temperature 8º C
//     around 46.4 F Clear skies today"),
//   - HTML-table weather pages in the layout of Figure 5, whose naive
//     text linearisation loses the measure↔unit association (the paper's
//     reported failure mode),
//   - distractor pages carrying the ambiguity landscape (the actor John
//     Wayne, the musical group El Prat, 1998 financial-crisis news),
//   - an HTML→text extractor plus the table-aware variant the paper
//     proposes as future work.
package webcorpus

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// WeatherDay is one day of generated ground truth.
type WeatherDay struct {
	City      string
	Year      int
	Month     int // 1-12
	Day       int // 1-31
	HighC     int // daily high, integer Celsius as weather pages print
	LowC      int
	Condition string
}

// Date returns the civil date of the record.
func (d WeatherDay) Date() time.Time {
	return time.Date(d.Year, time.Month(d.Month), d.Day, 0, 0, 0, 0, time.UTC)
}

// Weekday returns the English weekday name ("Monday").
func (d WeatherDay) Weekday() string { return d.Date().Weekday().String() }

// MonthName returns the English month name ("January").
func (d WeatherDay) MonthName() string { return d.Date().Month().String() }

// FahrenheitHigh returns the high converted to Fahrenheit.
func (d WeatherDay) FahrenheitHigh() float64 {
	return float64(d.HighC)*1.8 + 32
}

// cityClimate holds the seasonal model parameters per city: annual mean,
// seasonal amplitude and noise level (ºC).
type cityClimate struct {
	mean  float64
	amp   float64
	noise float64
}

// climates covers the cities of the Last Minute Sales scenario. Unknown
// cities fall back to a temperate default.
var climates = map[string]cityClimate{
	"Barcelona":  {15.5, 8.0, 2.0},
	"Madrid":     {14.5, 10.5, 2.5},
	"Valencia":   {17.0, 7.5, 2.0},
	"Seville":    {18.5, 9.0, 2.5},
	"Bilbao":     {13.5, 6.0, 2.5},
	"Alicante":   {18.0, 7.0, 1.8},
	"New York":   {12.0, 12.0, 3.0},
	"Costa Mesa": {17.5, 4.5, 1.5},
	"Paris":      {11.5, 8.5, 2.5},
	"London":     {10.5, 7.0, 2.5},
	"Rome":       {15.5, 9.0, 2.0},
	"Lausanne":   {9.5, 9.5, 2.5},
}

var conditions = []string{
	"Clear skies", "Light rain", "Partly cloudy", "Sunny spells",
	"Overcast", "Morning fog", "Scattered showers", "Strong wind",
}

// daysIn returns the number of days of a month.
func daysIn(year, month int) int {
	return time.Date(year, time.Month(month)+1, 0, 0, 0, 0, 0, time.UTC).Day()
}

// WeatherSeries generates the deterministic daily weather of a city for
// one month. The same (city, year, month, seed) always yields the same
// series; this is the gold truth every experiment scores against.
func WeatherSeries(city string, year, month int, seed int64) []WeatherDay {
	cl, ok := climates[city]
	if !ok {
		cl = cityClimate{13.0, 8.0, 2.5}
	}
	// Blend the identifying inputs into the seed so each (city, month)
	// series differs but stays reproducible.
	h := seed
	for _, r := range city {
		h = h*31 + int64(r)
	}
	h = h*31 + int64(year)*12 + int64(month)
	rng := rand.New(rand.NewSource(h))

	n := daysIn(year, month)
	out := make([]WeatherDay, 0, n)
	for day := 1; day <= n; day++ {
		doy := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC).YearDay()
		// Seasonal sinusoid peaking around late July (day 205).
		seasonal := cl.amp * math.Cos(2*math.Pi*float64(doy-205)/365.25)
		high := cl.mean + seasonal + rng.NormFloat64()*cl.noise
		spread := 5 + rng.Float64()*4
		cond := conditions[rng.Intn(len(conditions))]
		out = append(out, WeatherDay{
			City: city, Year: year, Month: month, Day: day,
			HighC:     int(math.Round(high)),
			LowC:      int(math.Round(high - spread)),
			Condition: cond,
		})
	}
	return out
}

// Gold is a ground-truth fact a page asserts: the daily high temperature
// of a city on a date — the (temperature – date – city) triple the paper's
// Step 5 database stores.
type Gold struct {
	City  string
	Year  int
	Month int
	Day   int
	TempC float64
}

// Page is one synthetic web page with its gold facts.
type Page struct {
	URL   string
	Title string
	HTML  string
	Gold  []Gold
}

// slug converts a city name to its URL form.
func slug(city string) string {
	out := make([]rune, 0, len(city))
	for _, r := range city {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == ' ':
			out = append(out, '-')
		}
	}
	return string(out)
}

func goldFor(days []WeatherDay) []Gold {
	gs := make([]Gold, len(days))
	for i, d := range days {
		gs[i] = Gold{City: d.City, Year: d.Year, Month: d.Month, Day: d.Day, TempC: float64(d.HighC)}
	}
	return gs
}

// ProsePage renders the Figure 4 layout: one dated line followed by a
// "City Weather: Temperature NNº C around NN.N F Condition today" line per
// day. Temperatures and dates are "clearly identified" (the paper's best
// case for extraction).
func ProsePage(days []WeatherDay) Page {
	if len(days) == 0 {
		return Page{}
	}
	city := days[0].City
	var body string
	for _, d := range days {
		body += fmt.Sprintf("<p>%s, %s %d, %d<br>\n%s Weather: Temperature %dº C around %.1f F %s today</p>\n",
			d.Weekday(), d.MonthName(), d.Day, d.Year, city, d.HighC, d.FahrenheitHigh(), d.Condition)
	}
	title := fmt.Sprintf("%s Weather in %s %d - Tourist Guide", city, days[0].MonthName(), days[0].Year)
	html := fmt.Sprintf("<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n%s</body></html>", title, title, body)
	url := fmt.Sprintf("http://www.%s-tourist-guide.example/en/weather/weather-%s-%d.html",
		slug(city), slug(days[0].MonthName()), days[0].Year)
	return Page{URL: url, Title: title, HTML: html, Gold: goldFor(days)}
}

// LayoutHighFirst reports the column order a city's climate-table site
// uses. Real sites disagree on whether the maximum or the minimum comes
// first; the choice is a deterministic function of the city so the corpus
// exhibits both layouts.
func LayoutHighFirst(city string) bool {
	sum := 0
	for _, r := range city {
		sum += int(r)
	}
	return sum%2 == 0
}

// TablePage renders the Figure 5 layout: an HTML table whose units and
// column meanings live only in the header row, with a per-site column
// order, so that naive linearisation detaches measures from units and
// columns ("the task of associating the measure with its corresponding
// measure unit gets more difficult").
func TablePage(days []WeatherDay) Page {
	if len(days) == 0 {
		return Page{}
	}
	city := days[0].City
	highFirst := LayoutHighFirst(city)
	c1, c2 := "Low (ºC)", "High (ºC)"
	if highFirst {
		c1, c2 = c2, c1
	}
	body := fmt.Sprintf("<table>\n<tr><th>Date</th><th>%s</th><th>%s</th><th>Conditions</th></tr>\n", c1, c2)
	for _, d := range days {
		v1, v2 := d.LowC, d.HighC
		if highFirst {
			v1, v2 = v2, v1
		}
		body += fmt.Sprintf("<tr><td>%s %d, %d</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
			d.MonthName(), d.Day, d.Year, v1, v2, d.Condition)
	}
	body += "</table>\n"
	title := fmt.Sprintf("%s climate table %s %d", city, days[0].MonthName(), days[0].Year)
	html := fmt.Sprintf("<html><head><title>%s</title></head><body>\n<h1>%s weather</h1>\n<p>Historical weather for %s.</p>\n%s</body></html>",
		title, city, city, body)
	url := fmt.Sprintf("http://climate-data.example/%s/%d-%02d?layout=table", slug(city), days[0].Year, days[0].Month)
	return Page{URL: url, Title: title, HTML: html, Gold: goldFor(days)}
}
