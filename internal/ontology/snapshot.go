package ontology

import (
	"fmt"
	"sort"
)

// This file is the ontology part of the durability subsystem
// (internal/store): export and import of the full concept graph — the
// merged domain ontology of Steps 1-3 plus the Step 4 axioms — so a
// recovered pipeline reasons over exactly the knowledge it had before the
// crash.

// InstanceSnapshot is the exported form of one instance: properties
// flattened into sorted key/value pairs so the same state always exports
// identically.
type InstanceSnapshot struct {
	Name     string
	Aliases  []string
	PropKeys []string
	PropVals []string
}

// ConceptSnapshot is the exported form of one concept.
type ConceptSnapshot struct {
	Name       string
	Parents    []string
	Attributes []Attribute
	Relations  []Relation
	Instances  []InstanceSnapshot // sorted by normalised name
	Axioms     []Axiom
}

// Snapshot is a point-in-time copy of an ontology, with concepts sorted
// by normalised name. Produced by Export, consumed by FromSnapshot;
// internal/store gives it a binary encoding.
type Snapshot struct {
	Name     string
	Concepts []ConceptSnapshot
}

// Export copies the ontology under the read lock, in deterministic order.
func (o *Ontology) Export() *Snapshot {
	o.mu.RLock()
	defer o.mu.RUnlock()
	keys := make([]string, 0, len(o.concepts))
	for k := range o.concepts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := &Snapshot{Name: o.Name, Concepts: make([]ConceptSnapshot, 0, len(keys))}
	for _, k := range keys {
		c := o.concepts[k]
		cs := ConceptSnapshot{
			Name:       c.Name,
			Parents:    append([]string(nil), c.Parents...),
			Attributes: append([]Attribute(nil), c.Attributes...),
			Relations:  append([]Relation(nil), c.Relations...),
		}
		for _, a := range c.Axioms {
			cp := a
			cp.Units = append([]string(nil), a.Units...)
			cs.Axioms = append(cs.Axioms, cp)
		}
		ikeys := make([]string, 0, len(c.Instances))
		for ik := range c.Instances {
			ikeys = append(ikeys, ik)
		}
		sort.Strings(ikeys)
		for _, ik := range ikeys {
			inst := c.Instances[ik]
			is := InstanceSnapshot{
				Name:    inst.Name,
				Aliases: append([]string(nil), inst.Aliases...),
			}
			pkeys := make([]string, 0, len(inst.Properties))
			for pk := range inst.Properties {
				pkeys = append(pkeys, pk)
			}
			sort.Strings(pkeys)
			for _, pk := range pkeys {
				is.PropKeys = append(is.PropKeys, pk)
				is.PropVals = append(is.PropVals, inst.Properties[pk])
			}
			cs.Instances = append(cs.Instances, is)
		}
		snap.Concepts = append(snap.Concepts, cs)
	}
	return snap
}

// FromSnapshot rebuilds an ontology from a snapshot and validates its
// structural invariants, so a corrupt or hand-edited snapshot fails
// loudly instead of half-loading.
func FromSnapshot(snap *Snapshot) (*Ontology, error) {
	o := New(snap.Name)
	seen := make(map[string]bool, len(snap.Concepts))
	for _, cs := range snap.Concepts {
		if cs.Name == "" {
			return nil, fmt.Errorf("ontology: snapshot concept with empty name")
		}
		if seen[Normalize(cs.Name)] {
			return nil, fmt.Errorf("ontology: snapshot declares concept %q twice", cs.Name)
		}
		seen[Normalize(cs.Name)] = true
		c := o.AddConcept(cs.Name)
		c.Parents = append([]string(nil), cs.Parents...)
		c.Attributes = append([]Attribute(nil), cs.Attributes...)
		c.Relations = append([]Relation(nil), cs.Relations...)
		for _, a := range cs.Axioms {
			cp := a
			cp.Units = append([]string(nil), a.Units...)
			c.Axioms = append(c.Axioms, cp)
		}
		for _, is := range cs.Instances {
			if len(is.PropKeys) != len(is.PropVals) {
				return nil, fmt.Errorf("ontology: snapshot instance %q has %d property keys but %d values",
					is.Name, len(is.PropKeys), len(is.PropVals))
			}
			inst := Instance{Name: is.Name, Aliases: is.Aliases, Properties: map[string]string{}}
			for i, pk := range is.PropKeys {
				inst.Properties[pk] = is.PropVals[i]
			}
			o.AddInstance(cs.Name, inst)
		}
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("ontology: snapshot: %w", err)
	}
	return o, nil
}
