package shard

import (
	"errors"
	"fmt"
	"sync"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/store"
)

// Read replicas: a follower opens the leader's newest per-shard
// snapshots, then tails each shard's WAL by sequence number, applying
// records the snapshot does not cover (store replay gates on
// seq > snapshot.WALSeq). The follower never writes to the leader's
// directory — torn WAL tails are observed and ignored, never repaired —
// and serves Ask traffic read-only while the single writer takes feeds.
//
// Catch-up protocol, per shard and per poll:
//
//  1. Tail the WAL from the applied sequence. Every record applies in
//     order to the live node — the same handlers boot replay uses.
//  2. If the log's first record is beyond applied+1, the leader
//     published a snapshot covering the gap and reset the log
//     (ErrReplicaGap): reload the newest snapshot, swap the shard's
//     node atomically under readers, and tail again from its WALSeq.
//  3. If the log is silent but a newer snapshot appeared (leader
//     snapshotted with no fresh feeds), reload it the same way.
//
// Staleness contract: a follower is eventually consistent with bounded
// lag — at most one poll interval plus the leader's in-flight feed;
// Stats reports per-shard (applied seq, lag vs the leader head observed
// this poll) so operators can see convergence.

// Follower tails one leader data directory into a cluster.
type Follower struct {
	c    *Cluster
	fs   store.FS
	root string

	mu      sync.Mutex
	applied []uint64 // per-shard WAL sequence applied to the live node
	head    []uint64 // per-shard leader head observed at the last poll
}

// FollowerStat is one shard's replication position.
type FollowerStat struct {
	Shard int
	Seq   uint64 // applied WAL sequence
	Lag   int64  // leader head observed at last poll minus applied
}

// NewFollower prepares a follower over the leader's root directory.
// Call Bootstrap before serving, then Poll on an interval.
func NewFollower(c *Cluster, fsys store.FS, root string) *Follower {
	if fsys == nil {
		fsys = store.OS()
	}
	return &Follower{
		c:       c,
		fs:      fsys,
		root:    root,
		applied: make([]uint64, c.Shards()),
		head:    make([]uint64, c.Shards()),
	}
}

// Bootstrap loads every shard's newest snapshot into the cluster and
// records the applied sequences. A shard directory with no snapshot
// yet loads as empty at sequence 0 — the WAL tail brings it up from
// nothing, exactly like leader boot replay. Returns each shard's
// snapshot state (nil entries for empty shards) so the caller can
// bootstrap schema-independent state (the ontology) from one of them.
func (f *Follower) Bootstrap() ([]*store.State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	states := make([]*store.State, f.c.Shards())
	for i := 0; i < f.c.Shards(); i++ {
		state, _, err := store.ReadSnapshot(f.fs, ShardDir(f.root, i))
		if err != nil {
			return nil, fmt.Errorf("follower shard %d: %w", i, err)
		}
		states[i] = state
		if state == nil {
			continue
		}
		if err := f.installLocked(i, state); err != nil {
			return nil, fmt.Errorf("follower shard %d: %w", i, err)
		}
	}
	return states, nil
}

// installLocked builds a fresh node from a snapshot state and swaps it
// in. Caller holds f.mu.
func (f *Follower) installLocked(i int, state *store.State) error {
	wh, err := dw.New(f.c.Schema())
	if err != nil {
		return err
	}
	if err := wh.Import(state.DW); err != nil {
		return fmt.Errorf("warehouse import: %w", err)
	}
	ix := ir.NewIndex(f.c.irOpts...)
	if err := ix.Import(state.IR); err != nil {
		return fmt.Errorf("index import: %w", err)
	}
	f.c.SetNode(i, &Node{WH: wh, IX: ix})
	if err := f.c.ReindexShard(i); err != nil {
		return err
	}
	f.applied[i] = state.WALSeq
	if state.WALSeq > f.head[i] {
		f.head[i] = state.WALSeq
	}
	return nil
}

// handlers returns the WAL apply handlers for shard i's current node.
// Rebuilt per use: a snapshot reload swaps the node.
func (f *Follower) handlers(i int) store.ReplayHandlers {
	node := f.c.Node(i)
	return store.ReplayHandlers{
		Members:  node.WH.AddMembers,
		FactRows: node.WH.AddFactRows,
		Document: func(doc ir.Document) error {
			if err := node.IX.Add(doc); err != nil {
				return err
			}
			f.c.NoteDocument(doc.Ord, i, node.IX.DocCount()-1)
			return nil
		},
	}
}

// Poll advances every shard: tail new WAL records onto the live nodes,
// reloading from a newer snapshot when the log was reset underneath us.
// Returns the number of records applied across shards; the caller
// flushes derived caches (the engine's answer cache) when it is > 0.
func (f *Follower) Poll() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for i := 0; i < f.c.Shards(); i++ {
		n, err := f.pollShardLocked(i)
		total += n
		if err != nil {
			return total, fmt.Errorf("follower shard %d: %w", i, err)
		}
	}
	return total, nil
}

// pollShardLocked runs the catch-up protocol for one shard.
func (f *Follower) pollShardLocked(i int) (int, error) {
	dir := ShardDir(f.root, i)
	applied, newSeq, err := store.TailWAL(f.fs, dir, f.applied[i], f.handlers(i))
	if errors.Is(err, store.ErrReplicaGap) {
		n, rerr := f.reloadLocked(i)
		return n, rerr
	}
	if err != nil {
		return applied, err
	}
	f.applied[i] = newSeq
	if newSeq > f.head[i] {
		f.head[i] = newSeq
	}
	// A silent log can still hide progress: the leader may have
	// published a snapshot past our position and reset the WAL.
	if snapSeq, ok := store.SnapshotSeq(f.fs, dir); ok && snapSeq > f.applied[i] {
		n, rerr := f.reloadLocked(i)
		return applied + n, rerr
	}
	return applied, nil
}

// reloadLocked performs the full-reload arm of the protocol: newest
// snapshot in, node swapped, WAL tailed from the snapshot's sequence.
func (f *Follower) reloadLocked(i int) (int, error) {
	dir := ShardDir(f.root, i)
	state, _, err := store.ReadSnapshot(f.fs, dir)
	if err != nil {
		return 0, err
	}
	if state == nil {
		// A gap with no snapshot to bridge it: the leader's directory
		// lost history. Surface it — the replica cannot converge.
		return 0, fmt.Errorf("WAL gap beyond seq %d but no snapshot to reload", f.applied[i])
	}
	if err := f.installLocked(i, state); err != nil {
		return 0, err
	}
	applied, newSeq, err := store.TailWAL(f.fs, dir, f.applied[i], f.handlers(i))
	if err != nil {
		return applied, err
	}
	f.applied[i] = newSeq
	if newSeq > f.head[i] {
		f.head[i] = newSeq
	}
	return applied, nil
}

// Stats reports each shard's applied sequence and observed lag.
func (f *Follower) Stats() []FollowerStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FollowerStat, f.c.Shards())
	for i := range out {
		out[i] = FollowerStat{Shard: i, Seq: f.applied[i], Lag: int64(f.head[i]) - int64(f.applied[i])}
	}
	return out
}
