// Package store is the durability subsystem of the reproduction: it
// persists the engine stack's state — the columnar warehouse, the
// interned passage index and the merged ontology — across restarts, so
// everything Step 5 ever harvested survives the process (DESIGN.md §7).
//
// Two cooperating mechanisms:
//
//   - Snapshots: point-in-time copies of the full State, written
//     atomically (temp file + rename), checksummed and versioned
//     (snapshot.go). The newest valid snapshot wins; a corrupt one is
//     skipped in favour of its predecessor.
//   - Write-ahead log: every committed feed batch (dw member/fact-row
//     batches, indexed IR documents) is appended as a checksummed record
//     with a strictly increasing sequence number (wal.go). The store
//     implements dw.Journal and ir.Journal, so attaching it to a
//     warehouse and an index journals every commit automatically.
//
// Recovery = load newest valid snapshot + Replay the WAL tail: records
// with seq ≤ the snapshot's WALSeq are skipped (they are already inside
// the snapshot), which makes re-applying the log idempotent by
// construction — a crash between "snapshot published" and "WAL reset"
// double-applies nothing. A torn or corrupt record ends the log: replay
// truncates there and the system resumes from the repaired tail.
package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/obs"
)

// ErrWAL marks a write-ahead-log append failure: the feed batch that
// triggered it was NOT committed (the warehouse logs before it applies),
// but the log can no longer be trusted to ack further feeds. The serving
// engine tests for it with errors.Is and flips into degraded read-only
// mode rather than silently serving non-durable writes.
var ErrWAL = errors.New("store: WAL append failed")

const (
	walName        = "wal.log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".dwqa"
	// snapshotsKept is how many published snapshots survive pruning: the
	// newest plus one fallback should the newest turn out unreadable.
	snapshotsKept = 2
)

// Store manages one data directory: published snapshots plus the live
// WAL. Safe for concurrent use; appends and snapshot writes serialise on
// an internal mutex, reads of Seq are cheap.
type Store struct {
	dir string
	fs  FS

	walErrors atomic.Uint64 // failed WAL appends over the store's lifetime

	mu          sync.Mutex
	wal         *wal
	walRepaired int64 // bytes dropped repairing a torn tail at Open
	closed      bool
	met         Metrics
}

// Metrics are the optional latency histograms the store observes on its
// write path. Nil histograms are skipped without a clock reading, so an
// unmetered store behaves exactly as before.
type Metrics struct {
	// Append times one whole WAL append — encode, write and fsync — as
	// seen by the committing feed batch.
	Append *obs.Histogram
	// Fsync times the fsync alone, the usual dominator of Append.
	Fsync *obs.Histogram
}

// SetMetrics attaches the write-path histograms. Safe to call while
// appends are in flight; the next append observes them.
func (s *Store) SetMetrics(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
	s.wal.fsync = m.Fsync
}

// Open opens (creating if needed) a data directory on the real
// filesystem, repairs the WAL tail if the last run tore it, and removes
// leftover temp files from interrupted snapshot writes.
func Open(dir string) (*Store, error) { return OpenFS(dir, OS()) }

// OpenFS is Open over an explicit filesystem — the seam the
// fault-injection tests use to schedule disk failures against the
// production write paths.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if fsys == nil {
		fsys = OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if tmps, err := fsys.Glob(filepath.Join(dir, ".tmp-snap-*")); err == nil {
		for _, t := range tmps {
			_ = fsys.Remove(t)
		}
	}
	w, dropped, err := openWAL(fsys, filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: fsys, wal: w, walRepaired: dropped}
	// The WAL's scan only knows sequence numbers that are still in the
	// log; a log reset by a snapshot restarts empty, so pick up the
	// sequence floor from the published snapshots. The floor comes from
	// the filenames (WriteSnapshot names each file by the WALSeq it
	// covers) — decoding a multi-megabyte snapshot just to read its
	// header would double every boot's restore cost.
	for _, p := range s.snapshotPaths() {
		if seq, ok := snapshotSeqFromPath(p); ok {
			if seq > w.seq {
				w.seq = seq
			}
			break // paths are sorted newest first
		}
	}
	return s, nil
}

// snapshotSeqFromPath parses the WAL sequence a snapshot file name
// declares (snap-<seq>.dwqa).
func snapshotSeqFromPath(path string) (uint64, bool) {
	name := filepath.Base(path)
	name = strings.TrimPrefix(name, snapshotPrefix)
	name = strings.TrimSuffix(name, snapshotSuffix)
	seq, err := strconv.ParseUint(name, 10, 64)
	return seq, err == nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Seq returns the sequence number of the last WAL record (0 when none
// was ever written).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.seq
}

// WALRepaired returns the number of torn-tail bytes Open dropped (0 for
// a clean shutdown).
func (s *Store) WALRepaired() int64 { return s.walRepaired }

// WALErrors returns how many WAL appends have failed over the store's
// lifetime — the /healthz wal_errors counter.
func (s *Store) WALErrors() uint64 { return s.walErrors.Load() }

// Close releases the WAL file handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.wal.close()
}

// --- journal (the write path) ---

// LogMembers implements dw.Journal: one WAL record per committed member
// batch.
func (s *Store) LogMembers(specs []dw.MemberSpec) error {
	return s.appendRecord(recMembers, encodeMemberSpecs(specs))
}

// LogFactRows implements dw.Journal: one WAL record per validated fact
// batch.
func (s *Store) LogFactRows(fact string, rows []dw.FactRow) error {
	return s.appendRecord(recFactRows, encodeFactRows(fact, rows))
}

// LogBatch implements dw.Journal: one WAL record per combined
// member+fact-row transaction (dw.AddBatch), so replay re-applies the
// members and their rows as the unit they were committed as.
func (s *Store) LogBatch(specs []dw.MemberSpec, fact string, rows []dw.FactRow) error {
	return s.appendRecord(recBatch, encodeBatch(specs, fact, rows))
}

// LogDocument implements ir.Journal: one WAL record per indexed document.
func (s *Store) LogDocument(doc ir.Document) error {
	return s.appendRecord(recDocument, encodeDocument(doc))
}

// LogDocuments implements ir.Journal: one WAL record (one fsync) per
// indexed document batch — the record that makes streaming ingestion
// feasible, where fsync-per-document would dominate the load.
func (s *Store) LogDocuments(docs []ir.Document) error {
	return s.appendRecord(recDocuments, encodeDocuments(docs))
}

func (s *Store) appendRecord(kind byte, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	var start time.Time
	if s.met.Append != nil {
		start = time.Now()
	}
	err := s.wal.append(kind, payload)
	if s.met.Append != nil {
		s.met.Append.Observe(time.Since(start))
	}
	if err != nil {
		s.walErrors.Add(1)
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	return nil
}

// --- snapshots ---

// SnapshotInfo describes one published snapshot.
type SnapshotInfo struct {
	Path     string
	Bytes    int64
	WALSeq   uint64
	WALReset bool // the WAL was emptied because the snapshot covers it all
}

// WriteSnapshot publishes a snapshot of state atomically and prunes old
// snapshots. If no WAL record was appended since state was exported
// (state.WALSeq still current), the WAL is reset — every record is inside
// the snapshot. Otherwise the WAL is left alone: recovery's sequence
// gating skips the covered prefix anyway, so correctness never depends on
// the reset.
func (s *Store) WriteSnapshot(state *State) (SnapshotInfo, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SnapshotInfo{}, fmt.Errorf("store: closed")
	}
	s.mu.Unlock()
	data := EncodeState(state)
	path := filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", snapshotPrefix, state.WALSeq, snapshotSuffix))
	if err := writeSnapshotFile(s.fs, path, data); err != nil {
		return SnapshotInfo{}, err
	}
	info := SnapshotInfo{Path: path, Bytes: int64(len(data)), WALSeq: state.WALSeq}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed && s.wal.seq == state.WALSeq {
		if err := s.wal.reset(); err != nil {
			return info, err
		}
		info.WALReset = true
	}
	s.pruneLocked()
	return info, nil
}

// snapshotPaths returns the published snapshot files, newest first.
func (s *Store) snapshotPaths() []string {
	paths, _ := s.fs.Glob(filepath.Join(s.dir, snapshotPrefix+"*"+snapshotSuffix))
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	return paths
}

func (s *Store) pruneLocked() {
	paths := s.snapshotPaths()
	for _, p := range paths[min(len(paths), snapshotsKept):] {
		_ = s.fs.Remove(p)
	}
}

// LoadSnapshot returns the newest valid snapshot, or (nil, "", nil) when
// the directory holds none. Corrupt snapshots are skipped in favour of
// older ones — but only when the WAL still covers every record between
// the fallback and the newest snapshot's sequence, because publishing a
// snapshot may have reset the log. A fallback that would silently drop
// acked feed batches is a loud error instead, as is a directory whose
// snapshots are all unreadable — recovery must never quietly lose data
// or start empty on a damaged directory.
func (s *Store) LoadSnapshot() (*State, string, error) {
	path, state, err := s.loadNewestSnapshot()
	return state, path, err
}

func (s *Store) loadNewestSnapshot() (string, *State, error) {
	paths := s.snapshotPaths()
	if len(paths) == 0 {
		return "", nil, nil
	}
	var failures []string
	for _, p := range paths {
		data, err := s.fs.ReadFile(p)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", filepath.Base(p), err))
			continue
		}
		state, err := DecodeState(data)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", filepath.Base(p), err))
			continue
		}
		if len(failures) > 0 {
			// A newer snapshot was skipped: records up to its sequence
			// were acked, and publishing it may have reset the WAL. Only
			// fall back when the log still holds the whole gap.
			if newestSeq, ok := snapshotSeqFromPath(paths[0]); ok && newestSeq > state.WALSeq {
				if err := s.walCovers(state.WALSeq, newestSeq); err != nil {
					return "", nil, fmt.Errorf(
						"store: newest snapshot is unreadable (%s) and falling back to %s would lose acked feed batches %d..%d: %w",
						strings.Join(failures, "; "), filepath.Base(p), state.WALSeq+1, newestSeq, err)
				}
			}
		}
		return p, state, nil
	}
	return "", nil, fmt.Errorf("store: no readable snapshot in %s: %s", s.dir, strings.Join(failures, "; "))
}

// walCovers reports whether the log still holds every record in
// (afterSeq, throughSeq] — sequence numbers are assigned consecutively
// and the log only ever empties wholesale, so the retained records form
// one contiguous range.
func (s *Store) walCovers(afterSeq, throughSeq uint64) error {
	data, err := s.fs.ReadFile(s.wal.path)
	if err != nil {
		return fmt.Errorf("reading WAL: %w", err)
	}
	_, _, records := scanWAL(data, 0)
	if len(records) == 0 {
		return fmt.Errorf("the WAL is empty (reset by the unreadable snapshot)")
	}
	first, last := records[0].seq, records[len(records)-1].seq
	if first > afterSeq+1 || last < throughSeq {
		return fmt.Errorf("the WAL holds records %d..%d", first, last)
	}
	return nil
}

// --- replay (the recovery path) ---

// ReplayHandlers applies decoded WAL records to live structures during
// recovery. Each handler mirrors the call that produced the record.
type ReplayHandlers struct {
	Members  func(specs []dw.MemberSpec) error
	FactRows func(fact string, rows []dw.FactRow) error
	Document func(doc ir.Document) error
}

// Replay applies every WAL record with seq > afterSeq, in order, and
// returns how many were applied. Structural corruption (bad checksum,
// torn tail, sequence regression) ends the log: the file is truncated at
// the last good record and replay finishes cleanly — those bytes were
// never acked as durable beyond them. A handler error, by contrast,
// aborts recovery loudly: the log is intact but the state refuses it,
// which a fresh boot must surface, not paper over.
//
// Journals must be attached to the warehouse and index only after Replay,
// or every replayed batch would be logged again.
func (s *Store) Replay(afterSeq uint64, h ReplayHandlers) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.fs.ReadFile(s.wal.path)
	if err != nil {
		return 0, fmt.Errorf("store: reading WAL: %w", err)
	}
	valid, lastSeq, records := scanWAL(data, 0)
	if valid < len(data) && s.wal.f != nil {
		if err := s.wal.f.Truncate(int64(valid)); err != nil {
			return 0, fmt.Errorf("store: truncating corrupt WAL tail: %w", err)
		}
		if _, err := s.wal.f.Seek(int64(valid), 0); err != nil {
			return 0, fmt.Errorf("store: seeking WAL: %w", err)
		}
	}
	if lastSeq > s.wal.seq {
		s.wal.seq = lastSeq
	}
	applied := 0
	for _, rec := range records {
		if rec.seq <= afterSeq {
			continue // already inside the snapshot — idempotent skip
		}
		if err := applyRecord(rec, h); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// applyRecord decodes one WAL record and dispatches it through the
// handlers — shared by leader recovery (Replay) and the read-only
// follower tail (TailWAL).
func applyRecord(rec walRecord, h ReplayHandlers) error {
	switch rec.kind {
	case recMembers:
		specs, err := decodeMemberSpecs(rec.payload)
		if err != nil {
			return fmt.Errorf("store: WAL record %d: %w", rec.seq, err)
		}
		if h.Members == nil {
			return fmt.Errorf("store: WAL record %d: no member handler", rec.seq)
		}
		if err := h.Members(specs); err != nil {
			return fmt.Errorf("store: replaying member batch (record %d): %w", rec.seq, err)
		}
	case recFactRows:
		fact, rows, err := decodeFactRows(rec.payload)
		if err != nil {
			return fmt.Errorf("store: WAL record %d: %w", rec.seq, err)
		}
		if h.FactRows == nil {
			return fmt.Errorf("store: WAL record %d: no fact-row handler", rec.seq)
		}
		if err := h.FactRows(fact, rows); err != nil {
			return fmt.Errorf("store: replaying fact batch (record %d): %w", rec.seq, err)
		}
	case recBatch:
		specs, fact, rows, err := decodeBatch(rec.payload)
		if err != nil {
			return fmt.Errorf("store: WAL record %d: %w", rec.seq, err)
		}
		// Replay through the members/fact-rows handlers in commit
		// order. Replay is single-threaded and a handler error aborts
		// recovery loudly, so the transaction's atomicity cannot be
		// half-observed by a live reader.
		if len(specs) > 0 {
			if h.Members == nil {
				return fmt.Errorf("store: WAL record %d: no member handler", rec.seq)
			}
			if err := h.Members(specs); err != nil {
				return fmt.Errorf("store: replaying batch members (record %d): %w", rec.seq, err)
			}
		}
		if len(rows) > 0 {
			if h.FactRows == nil {
				return fmt.Errorf("store: WAL record %d: no fact-row handler", rec.seq)
			}
			if err := h.FactRows(fact, rows); err != nil {
				return fmt.Errorf("store: replaying batch rows (record %d): %w", rec.seq, err)
			}
		}
	case recDocument:
		doc, err := decodeDocument(rec.payload)
		if err != nil {
			return fmt.Errorf("store: WAL record %d: %w", rec.seq, err)
		}
		if h.Document == nil {
			return fmt.Errorf("store: WAL record %d: no document handler", rec.seq)
		}
		if err := h.Document(doc); err != nil {
			return fmt.Errorf("store: replaying document (record %d): %w", rec.seq, err)
		}
	case recDocuments:
		docs, err := decodeDocuments(rec.payload)
		if err != nil {
			return fmt.Errorf("store: WAL record %d: %w", rec.seq, err)
		}
		if h.Document == nil {
			return fmt.Errorf("store: WAL record %d: no document handler", rec.seq)
		}
		for _, doc := range docs {
			if err := h.Document(doc); err != nil {
				return fmt.Errorf("store: replaying document batch (record %d): %w", rec.seq, err)
			}
		}
	default:
		return fmt.Errorf("store: WAL record %d has unknown type %d", rec.seq, rec.kind)
	}
	return nil
}

// RecoveryInfo summarises one recovery for logs and the serving stats.
type RecoveryInfo struct {
	Recovered    bool   // a snapshot was found and loaded
	SnapshotPath string // which snapshot won
	SnapshotSeq  uint64 // the WAL sequence the snapshot covered
	WALReplayed  int    // records applied on top of it
	WALRepaired  int64  // torn-tail bytes dropped at Open
}
