package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunCheckBaselineErrors(t *testing.T) {
	if err := runCheck(filepath.Join(t.TempDir(), "absent.json"), 42); err == nil {
		t.Fatal("missing baseline must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCheck(bad, 42); err == nil {
		t.Fatal("unparsable baseline must error")
	}
}

// TestMeasureRejectsZeroResult pins measure's refusal to record a
// failed benchmark as a plausible zero data point.
func TestMeasureRejectsZeroResult(t *testing.T) {
	if _, err := measure("broken", 0, func(b *testing.B) { b.Skip("injected") }); err == nil {
		t.Fatal("zero benchmark result must be rejected")
	}
}
