package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Per-request stage tracing. A Span is a fixed-size accumulator a
// request stamps as it crosses the pipeline stages (NLP analysis, IR
// retrieval, OLAP compile/execute, QA extraction, cache lookup, shard
// fan-out, WAL append, snapshot publish); it lives on the caller's
// stack, so tracing allocates nothing. Tracer.Finish folds the stamped
// durations into the per-stage latency histograms and, when a
// slow-query threshold is armed, logs a sampled per-stage breakdown for
// requests over it.

// Stage identifies one pipeline stage of the serving stack.
type Stage uint8

const (
	StageCacheLookup Stage = iota
	StageNLPAnalyse
	StageIRSearch
	StageQAExtract
	StageOLAPCompile
	StageOLAPExecute
	StageShardFanout
	StageWALAppend
	StageSnapshotPublish
	// NumStages bounds the Span arrays; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	"cache_lookup",
	"nlp_analyse",
	"ir_search",
	"qa_extract",
	"olap_compile",
	"olap_execute",
	"shard_fanout",
	"wal_append",
	"snapshot_publish",
}

// String returns the stage's metric label ("ir_search", "wal_append").
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Span accumulates per-stage durations for one request. The zero value
// is ready to use; declare it on the stack and pass its address.
type Span struct {
	d   [NumStages]time.Duration
	set uint16 // bitmask of stamped stages
}

// Observe stamps one stage's duration (accumulating when a stage runs
// more than once in a request).
func (sp *Span) Observe(st Stage, d time.Duration) {
	sp.d[st] += d
	sp.set |= 1 << st
}

// Duration returns a stage's accumulated duration and whether it was
// stamped.
func (sp *Span) Duration(st Stage) (time.Duration, bool) {
	return sp.d[st], sp.set&(1<<st) != 0
}

// breakdown renders the stamped stages as "stage=dur stage=dur", in
// stage order. Slow path only — it allocates.
func (sp *Span) breakdown() string {
	var sb strings.Builder
	for st := Stage(0); st < NumStages; st++ {
		if sp.set&(1<<st) == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(stageNames[st])
		sb.WriteByte('=')
		sb.WriteString(sp.d[st].String())
	}
	return sb.String()
}

// slowConfig is the armed slow-query log (swapped atomically so Finish
// never locks).
type slowConfig struct {
	threshold time.Duration
	logf      func(format string, args ...any)
}

// Tracer owns the per-stage latency histograms
// (dwqa_stage_duration_seconds{stage="..."}) and the sampled slow-query
// log. One Tracer serves all requests of an engine.
type Tracer struct {
	hist [NumStages]*Histogram

	slow     atomic.Pointer[slowConfig]
	lastSlow atomic.Int64 // unix nanos of the last slow-query line
}

// slowLogMinGap rate-limits the slow-query log: at most one breakdown
// line per gap, so a latency storm cannot turn the log into the
// bottleneck. Variable for tests.
var slowLogMinGap = int64(time.Second)

// NewTracer registers the per-stage duration histograms on reg and
// returns the tracer over them.
func NewTracer(reg *Registry) *Tracer {
	t := &Tracer{}
	for st := Stage(0); st < NumStages; st++ {
		t.hist[st] = reg.Histogram(
			"dwqa_stage_duration_seconds",
			"Time spent in each pipeline stage.",
			DefBuckets, L("stage", stageNames[st]))
	}
	return t
}

// StageHistogram returns the histogram behind one stage, for layers
// (store, shard, persistence) that record a stage directly rather than
// through a request span.
func (t *Tracer) StageHistogram(st Stage) *Histogram { return t.hist[st] }

// SetSlowQuery arms (threshold > 0) or disarms (threshold <= 0) the
// slow-query log: a finished request slower than threshold logs its
// per-stage breakdown through logf, sampled to at most one line per
// second.
func (t *Tracer) SetSlowQuery(threshold time.Duration, logf func(format string, args ...any)) {
	if threshold <= 0 || logf == nil {
		t.slow.Store(nil)
		return
	}
	t.slow.Store(&slowConfig{threshold: threshold, logf: logf})
}

// SlowQueryArmed reports whether a slow-query threshold is set.
func (t *Tracer) SlowQueryArmed() bool { return t.slow.Load() != nil }

// Finish folds a request's span into the stage histograms and emits the
// sampled slow-query line when the request's total runtime crosses the
// armed threshold. label is the request's human identity (the question
// text); outcome classifies how it ended ("ok", "error", ...).
func (t *Tracer) Finish(sp *Span, total time.Duration, label, outcome string) {
	for st := Stage(0); st < NumStages; st++ {
		if sp.set&(1<<st) != 0 {
			t.hist[st].Observe(sp.d[st])
		}
	}
	cfg := t.slow.Load()
	if cfg == nil || total < cfg.threshold {
		return
	}
	// Sampled: one line per gap, claimed by CAS so concurrent slow
	// requests elect exactly one logger.
	now := time.Now().UnixNano()
	last := t.lastSlow.Load()
	if now-last < slowLogMinGap || !t.lastSlow.CompareAndSwap(last, now) {
		return
	}
	cfg.logf("slow query: total=%s outcome=%s %s: %q", total, outcome, sp.breakdown(), label)
}
