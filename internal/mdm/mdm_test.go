package mdm

import (
	"strings"
	"testing"
)

func validSchema() *Schema {
	return NewSchema("s").
		AddDimension(&DimensionClass{
			Name: "Airport",
			Levels: []*Level{
				{Name: "Airport", Descriptor: "Name", RollsUpTo: "City",
					Attributes: []Attribute{{Name: "IATA", Type: TypeString}}},
				{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
				{Name: "Country", Descriptor: "Name"},
			},
		}).
		AddFact(&FactClass{
			Name:     "Sales",
			Measures: []Measure{{Name: "Price", Type: TypeFloat}},
			Dimensions: []DimensionRef{
				{Role: "Departure", Dimension: "Airport"},
				{Role: "Destination", Dimension: "Airport"},
			},
		})
}

func TestValidateOK(t *testing.T) {
	if err := validSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Schema)
		want   string
	}{
		{"empty dim name", func(s *Schema) { s.Dimensions[0].Name = "" }, "empty name"},
		{"dup dimension", func(s *Schema) { s.AddDimension(&DimensionClass{Name: "Airport", Levels: s.Dimensions[0].Levels}) }, "duplicate dimension"},
		{"no levels", func(s *Schema) { s.Dimensions[0].Levels = nil }, "no levels"},
		{"dup level", func(s *Schema) {
			s.Dimensions[0].Levels = append(s.Dimensions[0].Levels, &Level{Name: "City", Descriptor: "Name"})
		}, "duplicate level"},
		{"no descriptor", func(s *Schema) { s.Dimensions[0].Levels[0].Descriptor = "" }, "lacks a descriptor"},
		{"bad rollup", func(s *Schema) { s.Dimensions[0].Levels[1].RollsUpTo = "Planet" }, "unknown"},
		{"rollup cycle", func(s *Schema) { s.Dimensions[0].Levels[2].RollsUpTo = "Airport" }, "cycle"},
		{"unreachable level", func(s *Schema) {
			s.Dimensions[0].Levels = append(s.Dimensions[0].Levels, &Level{Name: "Region", Descriptor: "Name"})
		}, "unreachable"},
		{"fact no measures", func(s *Schema) { s.Facts[0].Measures = nil }, "no measures"},
		{"fact no dims", func(s *Schema) { s.Facts[0].Dimensions = nil }, "no dimensions"},
		{"dup role", func(s *Schema) { s.Facts[0].Dimensions[1].Role = "Departure" }, "duplicate role"},
		{"unknown dim ref", func(s *Schema) { s.Facts[0].Dimensions[0].Dimension = "Ghost" }, "unknown dimension"},
		{"dup fact", func(s *Schema) { s.AddFact(s.Facts[0]) }, "duplicate fact"},
	}
	for _, c := range cases {
		s := validSchema()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: invalid schema accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestPathTo(t *testing.T) {
	d := validSchema().Dimension("Airport")
	if got := strings.Join(d.PathTo("Country"), ">"); got != "Airport>City>Country" {
		t.Errorf("PathTo(Country) = %s", got)
	}
	if got := strings.Join(d.PathTo("Airport"), ">"); got != "Airport" {
		t.Errorf("PathTo(Airport) = %s", got)
	}
	if d.PathTo("Planet") != nil {
		t.Error("PathTo(unknown) should be nil")
	}
}

func TestAccessors(t *testing.T) {
	s := validSchema()
	if s.Dimension("Airport") == nil || s.Dimension("Ghost") != nil {
		t.Error("Dimension accessor broken")
	}
	if s.Fact("Sales") == nil || s.Fact("Ghost") != nil {
		t.Error("Fact accessor broken")
	}
	f := s.Fact("Sales")
	if f.Measure("Price") == nil || f.Measure("Ghost") != nil {
		t.Error("Measure accessor broken")
	}
	if f.Ref("Departure") == nil || f.Ref("Ghost") != nil {
		t.Error("Ref accessor broken")
	}
	d := s.Dimension("Airport")
	if d.Base().Name != "Airport" {
		t.Error("Base should be the first level")
	}
	if d.Level("City") == nil || d.Level("Ghost") != nil {
		t.Error("Level accessor broken")
	}
	empty := &DimensionClass{Name: "E"}
	if empty.Base() != nil {
		t.Error("Base of empty dimension should be nil")
	}
}

func TestDescribe(t *testing.T) {
	out := validSchema().Describe()
	for _, want := range []string{"Fact Sales", "measure Price: Float", "dimension Destination: Airport", "Airport -> City -> Country"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q in:\n%s", want, out)
		}
	}
}
