package seed

import "testing"

func TestProcessRSSWrappers(t *testing.T) {
	// Thin re-exports of internal/obs; pin that they stay wired to the
	// same sampler (peak can never be below current).
	rss, peak := ProcessRSS(), ProcessPeakRSS()
	if rss > 0 && peak < rss {
		t.Fatalf("peak RSS %d < current RSS %d", peak, rss)
	}
}
