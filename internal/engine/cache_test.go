package engine

import (
	"fmt"
	"testing"

	"dwqa/internal/qa"
)

func TestNormalizeQuestion(t *testing.T) {
	cases := []struct{ in, want string }{
		{"What is  the \t weather?", "What is the weather"},
		{"What is the weather", "What is the weather"},
		{"  padded   question ?  ", "padded question"},
		{"Really?!", "Really"},
		// Case is preserved: the analysis pipeline is case-sensitive.
		{"Weather in El Prat?", "Weather in El Prat"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NormalizeQuestion(c.in); got != c.want {
			t.Errorf("NormalizeQuestion(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func res(i int) cachedAnswer {
	return cachedAnswer{qa: &qa.Result{Candidates: []qa.Answer{{Score: float64(i)}}}}
}

func TestAnswerCacheLRU(t *testing.T) {
	c := newAnswerCache(2)
	c.put("a", res(1), 0)
	c.put("b", res(2), 0)
	if _, ok, _ := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.put("c", res(3), 0)
	if _, ok, _ := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok, _ := c.get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if _, ok, _ := c.get("c"); !ok {
		t.Fatal("c should be cached")
	}
	if n := c.len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	hits, misses := c.counters()
	if hits != 3 || misses != 1 {
		t.Errorf("counters = (%d hits, %d misses), want (3, 1)", hits, misses)
	}
}

func TestAnswerCachePutExistingMovesToFront(t *testing.T) {
	c := newAnswerCache(2)
	c.put("a", res(1), 0)
	c.put("b", res(2), 0)
	c.put("a", res(10), 0) // refresh value and recency
	c.put("c", res(3), 0)  // evicts b, not a
	if got, ok, _ := c.get("a"); !ok || got.qa.Candidates[0].Score != 10 {
		t.Fatalf("a = %+v (ok=%v), want refreshed entry", got, ok)
	}
	if _, ok, _ := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestAnswerCacheFlush(t *testing.T) {
	c := newAnswerCache(8)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("q%d", i), res(i), 0)
	}
	c.flush()
	if n := c.len(); n != 0 {
		t.Fatalf("len after flush = %d, want 0", n)
	}
	if _, ok, _ := c.get("q0"); ok {
		t.Fatal("entries must not survive a flush")
	}
}

// TestAnswerCacheStalePutDropped pins the feed-invalidation race fix: a
// result computed before a flush (an older epoch) must not be inserted
// after it.
func TestAnswerCacheStalePutDropped(t *testing.T) {
	c := newAnswerCache(8)
	_, _, epoch := c.get("q") // miss; observe the pre-feed epoch
	c.flush()                 // a warehouse feed commits meanwhile
	c.put("q", res(1), epoch) // late insert of the pre-feed answer
	if _, ok, _ := c.get("q"); ok {
		t.Fatal("stale pre-flush result must not enter the cache")
	}
	// A put at the current epoch works again.
	_, _, epoch = c.get("q")
	c.put("q", res(2), epoch)
	if _, ok, _ := c.get("q"); !ok {
		t.Fatal("current-epoch put should be stored")
	}
}

func TestAnswerCacheDisabled(t *testing.T) {
	c := newAnswerCache(-1)
	c.put("a", res(1), 0)
	if _, ok, _ := c.get("a"); ok {
		t.Fatal("disabled cache must never hit")
	}
	if n := c.len(); n != 0 {
		t.Fatalf("len = %d, want 0", n)
	}
}
