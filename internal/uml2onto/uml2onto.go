// Package uml2onto implements Step 1 of the paper's integration model: the
// domain ontology is obtained from the UML multidimensional model of the
// DW by the ad-hoc method the paper selects ("a direct transformation
// between the class diagram and the ontology ... it is easy to implement
// and computationally more efficient" than the XMI/XSLT route): classes
// are converted into ontological concepts and the relations are converted
// into relations between the concepts.
package uml2onto

import (
	"fmt"

	"dwqa/internal/mdm"
	"dwqa/internal/ontology"
)

// RollUpRelation is the relation name recorded for level roll-ups
// (Airport rolls up to City: Airport --locatedIn--> City, since dimension
// hierarchies express containment for the geographic dimensions the
// scenario uses).
const RollUpRelation = "locatedIn"

// AnalyzedByRelation links a fact concept to the dimensions it is analysed
// by, one edge per role.
const AnalyzedByRelation = "analyzedBy"

// Transform derives the domain ontology from a validated multidimensional
// schema (the paper's Figure 1 → Figure 2 step).
func Transform(schema *mdm.Schema) (*ontology.Ontology, error) {
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("uml2onto: %w", err)
	}
	o := ontology.New(schema.Name)

	for _, d := range schema.Dimensions {
		for _, level := range d.Levels {
			c := o.AddConcept(level.Name)
			_ = c
			o.AddAttribute(level.Name, ontology.Attribute{
				Name: level.Descriptor, Kind: ontology.KindDescriptor, Type: string(mdm.TypeString),
			})
			for _, a := range level.Attributes {
				o.AddAttribute(level.Name, ontology.Attribute{
					Name: a.Name, Kind: ontology.KindAttribute, Type: string(a.Type),
				})
			}
			if level.RollsUpTo != "" {
				o.AddRelation(level.Name, ontology.Relation{Name: RollUpRelation, Target: level.RollsUpTo})
			}
		}
	}

	for _, f := range schema.Facts {
		o.AddConcept(f.Name)
		for _, m := range f.Measures {
			o.AddAttribute(f.Name, ontology.Attribute{
				Name: m.Name, Kind: ontology.KindMeasure, Type: string(m.Type),
			})
		}
		for _, ref := range f.Dimensions {
			base := schema.Dimension(ref.Dimension).Base()
			o.AddRelation(f.Name, ontology.Relation{
				Name:   AnalyzedByRelation + ":" + ref.Role,
				Target: base.Name,
			})
		}
	}

	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("uml2onto: produced invalid ontology: %w", err)
	}
	return o, nil
}
