// Weatherfeed: the Step 5 feeding loop in isolation — harvest structured
// (temperature – date – city – web page) records from the web corpus,
// show the provenance the paper stores for robustness, and query the fed
// Weather fact through the OLAP engine.
//
//	go run ./examples/weatherfeed
package main

import (
	"fmt"
	"log"

	"dwqa"
	"dwqa/internal/dw"
)

func main() {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		log.Fatal(err)
	}

	// Harvest one question by hand to inspect the records Step 5 loads.
	question := "What is the weather like in January of 2004 in El Prat?"
	answers, _, err := p.QA.Harvest(question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q harvested %d records; first five with provenance:\n", question, len(answers))
	for i, a := range answers {
		if i >= 5 {
			break
		}
		// Every record carries its source web page — the paper: "the web
		// page is also added to the generated database ... robust against
		// errors".
		fmt.Printf("  %-55s %s\n", a.Render(), a.URL)
	}

	// The full feed already ran inside RunAll; query the result by month.
	res, err := p.Warehouse.Execute(dw.Query{
		Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{
			{Role: "City", Level: "City"},
			{Role: "Date", Level: "Month"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAverage fed temperature by city and month (OLAP roll-up to Month):")
	fmt.Print(res.Format())

	// Drill down for one city — the OLAP operation the multidimensional
	// hierarchy exists for.
	drill, err := p.Warehouse.Slice(dw.Query{
		Fact: "Weather", Measure: "TempC", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{{Role: "Date", Level: "Day"}},
	}, "City", "City", "Barcelona")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBarcelona drill-down to Day: %d days fed\n", len(drill.Rows))
}
