package dwqa_test

import (
	"strings"
	"testing"

	"dwqa"
)

// TestFacadeEndToEnd exercises the public API exactly as README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if res.Best == nil || res.Best.Location != "Barcelona" {
		t.Fatalf("best = %+v", res.Best)
	}
	rep, err := dwqa.AnalyzeSalesWeather(p)
	if err != nil {
		t.Fatalf("AnalyzeSalesWeather: %v", err)
	}
	if rep.Correlation <= 0 {
		t.Errorf("correlation = %v", rep.Correlation)
	}
	tr, err := p.Table1("")
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if !strings.Contains(tr.ExtractedAnswer, "Barcelona") {
		t.Errorf("trace answer = %s", tr.ExtractedAnswer)
	}
}

func TestFacadeAblatedConfig(t *testing.T) {
	cfg := dwqa.DefaultConfig()
	cfg.QA.UseOntology = false
	p, err := dwqa.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil && res.Best.Location == "Barcelona" {
		t.Error("ablated configuration must not resolve the airport")
	}
}
