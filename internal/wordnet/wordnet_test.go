package wordnet

import (
	"testing"
	"testing/quick"
)

func TestSeedBuilds(t *testing.T) {
	w := Seed()
	if w.Size() < 150 {
		t.Errorf("seed lexicon unexpectedly small: %d synsets", w.Size())
	}
}

func TestAddSynsetErrors(t *testing.T) {
	w := New()
	if _, err := w.AddSynset("x", Noun, BaseObject, "gloss"); err == nil {
		t.Error("AddSynset with no lemmas should fail")
	}
	if _, err := w.AddSynset("x", Noun, BaseObject, "gloss", "thing"); err != nil {
		t.Fatalf("AddSynset: %v", err)
	}
	if _, err := w.AddSynset("x", Noun, BaseObject, "gloss", "thing"); err == nil {
		t.Error("duplicate synset ID should fail")
	}
	if _, err := w.AddSynset("y", Noun, BaseObject, "gloss", "", " "); err == nil {
		t.Error("AddSynset with only empty lemmas should fail")
	}
}

func TestLookup(t *testing.T) {
	w := Seed()
	ss := w.Lookup("airport", Noun)
	if len(ss) != 1 || ss[0].ID != "n.airport" {
		t.Fatalf("Lookup(airport) = %v", ss)
	}
	// Multi-word lemma, case-insensitive, whitespace-normalised.
	ss = w.Lookup("Kennedy  International Airport", Noun)
	if len(ss) != 1 || ss[0].ID != "n.kennedy_airport" {
		t.Fatalf("Lookup(kennedy international airport) = %v", ss)
	}
	// "new york" is ambiguous between state and city.
	ss = w.Lookup("new york", Noun)
	if len(ss) != 2 {
		t.Fatalf("Lookup(new york) = %v, want 2 senses", ss)
	}
	if w.FirstSense("nonexistentword", Noun) != nil {
		t.Error("FirstSense of unknown lemma should be nil")
	}
}

func TestIsA(t *testing.T) {
	w := Seed()
	cases := []struct {
		id, ancestor string
		want         bool
	}{
		{"n.airport", "n.artifact", true},
		{"n.airport", "n.entity", true},
		{"n.kennedy_airport", "n.airport", true},
		{"n.kennedy_airport", "n.facility", true},
		{"n.barcelona", "n.city", true},
		{"n.barcelona", "n.location", true},
		{"n.kuwait", "n.country", true},
		{"n.airport", "n.person", false},
		{"n.john_wayne_person", "n.person", true},
		{"n.john_wayne_person", "n.airport", false},
		{"n.el_prat_band", "n.group", true},
		{"n.sirius", "n.star", true},
		{"n.degree_celsius", "n.temperature_unit", true},
		{"n.airport", "n.airport", true}, // reflexive
	}
	for _, c := range cases {
		if got := w.IsA(c.id, c.ancestor); got != c.want {
			t.Errorf("IsA(%s, %s) = %v, want %v", c.id, c.ancestor, got, c.want)
		}
	}
}

func TestLemmaIsA(t *testing.T) {
	w := Seed()
	// The paper's CLEF example: hyponyms of "country" — Kuwait qualifies.
	if !w.LemmaIsA("kuwait", Noun, "country") {
		t.Error("kuwait should be a hyponym of country")
	}
	if w.LemmaIsA("john wayne", Noun, "country") {
		t.Error("john wayne is not a country")
	}
	// Before Step 3 enrichment, "el prat" is only a musical group.
	if w.LemmaIsA("el prat", Noun, "airport") {
		t.Error("seed lexicon must not know el prat as an airport")
	}
	if !w.LemmaIsA("el prat", Noun, "group") {
		t.Error("el prat should be a musical group in the seed")
	}
}

func TestAddLemmaEnrichment(t *testing.T) {
	// The paper's example: "JFK" does not exist, but "Kennedy International
	// Airport" does, so JFK is added as a synonym.
	w := Seed()
	if w.HasLemma("jfk") {
		t.Fatal("seed must not contain jfk")
	}
	if err := w.AddLemma("n.kennedy_airport", "JFK"); err != nil {
		t.Fatalf("AddLemma: %v", err)
	}
	if !w.LemmaIsA("jfk", Noun, "airport") {
		t.Error("after enrichment jfk should be an airport")
	}
	// Idempotent.
	if err := w.AddLemma("n.kennedy_airport", "jfk"); err != nil {
		t.Fatalf("AddLemma (repeat): %v", err)
	}
	if n := len(w.Lookup("jfk", Noun)); n != 1 {
		t.Errorf("duplicate AddLemma created %d senses", n)
	}
	if err := w.AddLemma("n.nope", "x"); err == nil {
		t.Error("AddLemma on unknown synset should fail")
	}
	if err := w.AddLemma("n.kennedy_airport", "  "); err == nil {
		t.Error("AddLemma with empty lemma should fail")
	}
}

func TestHypernymPathsAndDepth(t *testing.T) {
	w := Seed()
	paths := w.HypernymPaths("n.airport")
	if len(paths) == 0 {
		t.Fatal("no hypernym paths for airport")
	}
	p := paths[0]
	if p[0] != "n.airport" || p[len(p)-1] != "n.entity" {
		t.Errorf("path should run airport→entity, got %v", p)
	}
	if d := w.Depth("n.entity"); d != 0 {
		t.Errorf("Depth(entity) = %d, want 0", d)
	}
	if d := w.Depth("n.airport"); d <= 2 {
		t.Errorf("Depth(airport) = %d, want > 2", d)
	}
	if d := w.Depth("nope"); d != -1 {
		t.Errorf("Depth(unknown) = %d, want -1", d)
	}
}

func TestHyponymClosure(t *testing.T) {
	w := Seed()
	clo := w.HyponymClosure("n.city")
	found := map[string]bool{}
	for _, id := range clo {
		found[id] = true
	}
	for _, want := range []string{"n.barcelona", "n.madrid", "n.capital_city", "n.paris"} {
		if !found[want] {
			t.Errorf("HyponymClosure(city) missing %s", want)
		}
	}
	if found["n.airport"] {
		t.Error("airport must not be a hyponym of city")
	}
}

func TestLCSAndSimilarity(t *testing.T) {
	w := Seed()
	lcs, _ := w.LCS("n.barcelona", "n.madrid")
	// Both are cities (madrid via capital_city), so the LCS is city.
	if lcs != "n.city" {
		t.Errorf("LCS(barcelona, madrid) = %s, want n.city", lcs)
	}
	simClose := w.WuPalmer("n.barcelona", "n.madrid")
	simFar := w.WuPalmer("n.barcelona", "n.sirius")
	if simClose <= simFar {
		t.Errorf("WuPalmer should rank barcelona~madrid (%f) above barcelona~sirius (%f)", simClose, simFar)
	}
	if s := w.PathSimilarity("n.airport", "n.airport"); s != 1 {
		t.Errorf("PathSimilarity(self) = %f, want 1", s)
	}
	if s := w.PathSimilarity("n.airport", "nope"); s != 0 {
		t.Errorf("PathSimilarity with unknown = %f, want 0", s)
	}
}

func TestRelationsInverse(t *testing.T) {
	w := Seed()
	// Hypernym edges must have hyponym inverses.
	air := w.Synset("n.airport")
	foundParent := false
	for _, h := range air.Related(Hypernym) {
		if h == "n.airfield" {
			foundParent = true
		}
	}
	if !foundParent {
		t.Fatal("airport should have hypernym airfield")
	}
	airfield := w.Synset("n.airfield")
	foundChild := false
	for _, h := range airfield.Related(Hyponym) {
		if h == "n.airport" {
			foundChild = true
		}
	}
	if !foundChild {
		t.Error("airfield should list airport as hyponym")
	}
	// Antonyms are symmetric.
	hot := w.Synset("a.hot")
	if len(hot.Related(Antonym)) == 0 || hot.Related(Antonym)[0] != "a.cold" {
		t.Error("hot should have antonym cold")
	}
	cold := w.Synset("a.cold")
	if len(cold.Related(Antonym)) == 0 || cold.Related(Antonym)[0] != "a.hot" {
		t.Error("cold should have antonym hot")
	}
	// Holonym/meronym inverses.
	bcn := w.Synset("n.barcelona")
	if got := bcn.Related(PartHolonym); len(got) == 0 {
		t.Error("barcelona should be part of something")
	}
	spain := w.Synset("n.spain")
	foundBCN := false
	for _, m := range spain.Related(PartMeronym) {
		if m == "n.barcelona" {
			foundBCN = true
		}
	}
	if !foundBCN {
		t.Error("spain should have meronym barcelona")
	}
}

func TestRelateErrors(t *testing.T) {
	w := Seed()
	if err := w.Relate("n.nope", Hypernym, "n.entity"); err == nil {
		t.Error("Relate with unknown source should fail")
	}
	if err := w.Relate("n.entity", Hypernym, "n.nope"); err == nil {
		t.Error("Relate with unknown target should fail")
	}
	// Duplicate edges are silently ignored.
	before := len(w.Synset("n.airport").Related(Hypernym))
	if err := w.Relate("n.airport", Hypernym, "n.airfield"); err != nil {
		t.Fatalf("Relate duplicate: %v", err)
	}
	if after := len(w.Synset("n.airport").Related(Hypernym)); after != before {
		t.Errorf("duplicate edge added: %d → %d", before, after)
	}
}

// Every synset in the seed must reach a root through hypernyms (nouns) and
// carry a valid base type for its POS.
func TestSeedIntegrity(t *testing.T) {
	w := Seed()
	nounBases := map[BaseType]bool{}
	for _, b := range NounBaseTypes {
		nounBases[b] = true
	}
	verbBases := map[BaseType]bool{}
	for _, b := range VerbBaseTypes {
		verbBases[b] = true
	}
	for _, id := range w.Synsets() {
		s := w.Synset(id)
		switch s.POS {
		case Noun:
			if !nounBases[s.Base] {
				t.Errorf("%s: noun with bad base type %q", id, s.Base)
			}
			if d := w.Depth(id); d < 0 {
				t.Errorf("%s: unreachable from root", id)
			}
		case Verb:
			if !verbBases[s.Base] {
				t.Errorf("%s: verb with bad base type %q", id, s.Base)
			}
		}
		if s.Gloss == "" {
			t.Errorf("%s: missing gloss", id)
		}
		if len(s.Lemmas) == 0 {
			t.Errorf("%s: no lemmas", id)
		}
	}
	if got, want := len(NounBaseTypes), 25; got != want {
		t.Errorf("%d noun base types, want %d", got, want)
	}
	if got, want := len(VerbBaseTypes), 15; got != want {
		t.Errorf("%d verb base types, want %d", got, want)
	}
}

// Property: every lemma of every synset is findable through Lookup.
func TestIndexConsistency(t *testing.T) {
	w := Seed()
	for _, id := range w.Synsets() {
		s := w.Synset(id)
		for _, lemma := range s.Lemmas {
			found := false
			for _, hit := range w.Lookup(lemma, s.POS) {
				if hit.ID == id {
					found = true
				}
			}
			if !found {
				t.Errorf("lemma %q of %s not in index", lemma, id)
			}
		}
	}
}

// Property: NormalizeLemma is idempotent.
func TestNormalizeLemmaIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeLemma(s)
		return NormalizeLemma(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: IsA is transitive along sampled seed chains.
func TestIsATransitivity(t *testing.T) {
	w := Seed()
	chains := [][3]string{
		{"n.kennedy_airport", "n.airport", "n.artifact"},
		{"n.barcelona", "n.city", "n.location"},
		{"n.sirius", "n.star", "n.object"},
		{"n.paris", "n.capital_city", "n.municipality"},
	}
	for _, c := range chains {
		if !w.IsA(c[0], c[1]) || !w.IsA(c[1], c[2]) {
			t.Fatalf("chain %v broken at a link", c)
		}
		if !w.IsA(c[0], c[2]) {
			t.Errorf("IsA not transitive over %v", c)
		}
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	w := Seed()
	done := make(chan bool)
	go func() {
		for i := 0; i < 200; i++ {
			w.Lookup("airport", Noun)
			w.IsA("n.barcelona", "n.city")
		}
		done <- true
	}()
	for i := 0; i < 200; i++ {
		_ = w.AddLemma("n.airport", "aeropuerto")
	}
	<-done
}

func BenchmarkLookup(b *testing.B) {
	w := Seed()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Lookup("airport", Noun)
	}
}

func BenchmarkIsA(b *testing.B) {
	w := Seed()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.IsA("n.kennedy_airport", "n.entity")
	}
}
