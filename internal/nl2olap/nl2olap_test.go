package nl2olap_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"dwqa/internal/core"
	"dwqa/internal/dw"
	"dwqa/internal/nl2olap"
)

// The fixture is the scenario warehouse with the Step 1-2 ontology (the
// state member grounding needs); built once, read by every test — the
// translator is concurrency-safe once configured.
var (
	fixOnce  sync.Once
	fixTrans *nl2olap.Translator
	fixWh    *dw.Warehouse
)

func fixture(t testing.TB) (*nl2olap.Translator, *dw.Warehouse) {
	t.Helper()
	fixOnce.Do(func() {
		p, err := core.NewPipeline(core.DefaultConfig())
		if err != nil {
			panic(err)
		}
		if err := p.Step1DeriveOntology(); err != nil {
			panic(err)
		}
		if err := p.Step2FeedOntology(); err != nil {
			panic(err)
		}
		tr, err := core.NewScenarioTranslator(p.Warehouse, p.Ontology)
		if err != nil {
			panic(err)
		}
		fixTrans, fixWh = tr, p.Warehouse
	})
	return fixTrans, fixWh
}

// TestTranslatePlans pins the compiled plan for the workload shapes the
// ISSUE motivates: measure selection, ontology grounding, role
// preferences, date granularity and group-by parsing.
func TestTranslatePlans(t *testing.T) {
	tr, _ := fixture(t)
	cases := []struct{ question, plan string }{
		{
			"What is the average temperature in Barcelona by month?",
			"Weather avg(TempC) by Date/Month where City/City in {Barcelona}",
		},
		{
			"Total last-minute revenue per destination city in January",
			"LastMinuteSales sum(Price) by Destination/City where Date/Month in {2004-01}",
		},
		{
			"How many tickets were sold to Barcelona in January of 2004?",
			"LastMinuteSales count() where Date/Month in {2004-01} and Destination/City in {Barcelona}",
		},
		{
			// "El Prat" has no level on the Weather fact; the ontology
			// lexicon resolves it through locatedIn to the city member.
			"What is the maximum temperature in El Prat in February of 2004?",
			"Weather max(TempC) where City/City in {Barcelona} and Date/Month in {2004-02}",
		},
		{
			"Average price by destination country and month",
			"LastMinuteSales avg(Price) by Destination/Country, Date/Month",
		},
		{
			// Prepositions re-target roles: from = Departure, to = Destination.
			"How many sales from Madrid to New York in 2004?",
			"LastMinuteSales count() where Date/Year in {2004} and Departure/City in {Madrid} and Destination/City in {New York}",
		},
		{
			"Number of flights per departure airport",
			"LastMinuteSales count() by Departure/Airport",
		},
		{
			"Total miles flown from Barajas by month",
			"LastMinuteSales sum(Miles) by Date/Month where Departure/Airport in {Barajas}",
		},
		{
			"Average fare for each customer segment",
			"LastMinuteSales avg(Price) by Customer/Segment",
		},
		{
			"count of weather observations by city",
			"Weather count() by City/City",
		},
		{
			"How much revenue per city in February of 2004?",
			"LastMinuteSales sum(Price) by Destination/City where Date/Month in {2004-02}",
		},
		{
			// A full date compiles at Day granularity.
			"Average temperature in Bilbao on January 15 of 2004",
			"Weather avg(TempC) where City/City in {Bilbao} and Date/Day in {2004-01-15}",
		},
		{
			// A bare role groups at its dimension's base level.
			"Total revenue per destination",
			"LastMinuteSales sum(Price) by Destination/Airport",
		},
		{
			// Aliases ground through the ontology lexicon.
			"Average price to BCN by month",
			"LastMinuteSales avg(Price) by Date/Month where Destination/Airport in {El Prat}",
		},
	}
	for _, c := range cases {
		got, err := tr.Translate(c.question)
		if err != nil {
			t.Errorf("Translate(%q): %v", c.question, err)
			continue
		}
		if got.PlanString() != c.plan {
			t.Errorf("Translate(%q)\n  plan = %s\n  want = %s", c.question, got.PlanString(), c.plan)
		}
	}
}

// TestClassifyFactoid: questions without aggregation intent (or whose
// aggregation word is conversational) must fall to the factoid path.
func TestClassifyFactoid(t *testing.T) {
	tr, _ := fixture(t)
	for _, q := range []string{
		"What is the weather like in January of 2004 in El Prat?",
		"Who is the mayor of New York?",
		"What is Sirius?",
		"Where is El Prat?",
		"How many terms did La Guardia serve?", // count word, no warehouse anchor
		"How hot is it in Barcelona?",
		"",
		"   ",
		"?",
	} {
		_, err := tr.Translate(q)
		if !errors.Is(err, nl2olap.ErrFactoid) {
			t.Errorf("Translate(%q) = %v, want ErrFactoid", q, err)
		}
	}
}

// TestUngroundableEntityErrors: an analytic question naming an entity the
// metadata cannot absorb must error, not silently widen to the full fact.
func TestUngroundableEntityErrors(t *testing.T) {
	tr, _ := fixture(t)
	for _, q := range []string{
		"average temperature in Gotham by month",
		"Total revenue to Atlantis in January",
		// Lowercase entities tag as common nouns, but a preposition
		// complement that grounds nowhere is still an uncompiled
		// constraint — keyword-style questions must not silently widen.
		"average temperature in gotham by month",
		"total revenue to atlantis in January",
		"average temperature in the morning by month",
	} {
		_, err := tr.Translate(q)
		if err == nil || errors.Is(err, nl2olap.ErrFactoid) {
			t.Errorf("Translate(%q) = %v, want a grounding error", q, err)
		}
	}
}

// TestAmbiguousMeasureErrors: Avg/Min/Max over a multi-measure fact needs
// an explicit measure.
func TestAmbiguousMeasureErrors(t *testing.T) {
	tr, _ := fixture(t)
	_, err := tr.Translate("average sales by month")
	if err == nil || errors.Is(err, nl2olap.ErrFactoid) {
		t.Fatalf("Translate = %v, want an explicit-measure error", err)
	}
	if !strings.Contains(err.Error(), "measure") {
		t.Errorf("error %q should name the missing measure", err)
	}
}

// TestTranslationsValidate: every successful translation must pass the
// warehouse's own query validation (the fuzz target's core property,
// asserted here on the curated corpus too).
func TestTranslationsValidate(t *testing.T) {
	tr, wh := fixture(t)
	for _, q := range []string{
		"What is the average temperature in Barcelona by month?",
		"Total last-minute revenue per destination city in January",
		"Number of flights per departure airport",
		"Total revenue", // no grouping, no filters: the grand total
	} {
		res, err := tr.Translate(q)
		if err != nil {
			t.Fatalf("Translate(%q): %v", q, err)
		}
		if err := wh.Validate(res.Query); err != nil {
			t.Errorf("Translate(%q) produced an invalid plan: %v", q, err)
		}
		if _, err := wh.Execute(res.Query); err != nil {
			t.Errorf("Execute(%q): %v", q, err)
		}
	}
}

// TestAnswerMatchesHandWrittenQuery: the translated plan's result table is
// byte-identical to a hand-written dw.Query for the same intent.
func TestAnswerMatchesHandWrittenQuery(t *testing.T) {
	tr, wh := fixture(t)
	ans, err := tr.Answer("Average price by destination country and month")
	if err != nil {
		t.Fatal(err)
	}
	want, err := wh.Execute(dw.Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{
			{Role: "Destination", Level: "Country"},
			{Role: "Date", Level: "Month"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Result.Format(); got != want.Format() {
		t.Errorf("translated result diverges from the hand-written query:\n--- got ---\n%s--- want ---\n%s", got, want.Format())
	}
	if len(ans.Result.Rows) == 0 {
		t.Error("no result rows")
	}
}

// TestMetamorphicParaphrases: surface variants of one analytic intent —
// whitespace, punctuation, case of function words, marker synonyms,
// constituent order — compile to identical plans.
func TestMetamorphicParaphrases(t *testing.T) {
	tr, _ := fixture(t)
	groups := [][]string{
		{
			"What is the average temperature in Barcelona by month?",
			"average temperature in Barcelona by month",
			"Average  temperature   in Barcelona by month!!!",
			"What is the average temperature, in Barcelona, by month?",
			"average temperature in Barcelona per month",
			"average temperature in Barcelona for each month",
			"average temperature in Barcelona grouped by month",
		},
		{
			"Total last-minute revenue per destination city in January",
			"total last-minute revenue per destination city in January",
			"In January, total last-minute revenue per destination city",
			"Total last-minute revenue in January per destination city",
			"Total   last-minute   revenue per destination city in January...",
		},
		{
			"How many tickets were sold to Barcelona in January of 2004?",
			"How many tickets were sold in January of 2004 to Barcelona?",
			"how many tickets were sold to Barcelona in January of 2004",
		},
		{
			"Average price by destination country and month",
			"Average price by destination country, month",
			"Average price by destination country and by month",
			"Average price grouped by destination country and month",
		},
	}
	for gi, group := range groups {
		base, err := tr.Translate(group[0])
		if err != nil {
			t.Fatalf("group %d: Translate(%q): %v", gi, group[0], err)
		}
		for _, variant := range group[1:] {
			got, err := tr.Translate(variant)
			if err != nil {
				t.Errorf("group %d: Translate(%q): %v", gi, variant, err)
				continue
			}
			if got.PlanString() != base.PlanString() {
				t.Errorf("group %d: paraphrase %q diverges:\n  got  = %s\n  base = %s",
					gi, variant, got.PlanString(), base.PlanString())
			}
		}
	}
}

// TestTranslateDeterministic: the same question always compiles to the
// same plan (no map-iteration order leaks into group-bys or filters).
func TestTranslateDeterministic(t *testing.T) {
	tr, _ := fixture(t)
	const q = "How many sales from Madrid to New York in 2004 by month and destination city?"
	base, err := tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := tr.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.PlanString() != base.PlanString() {
			t.Fatalf("iteration %d: plan %q != %q", i, got.PlanString(), base.PlanString())
		}
	}
}

// TestNoOntologyDegradation: without the Step 2/3 lexicon, plain member
// names still ground through the dimension tables but airport aliases
// stop resolving on facts that lack the airport level.
func TestNoOntologyDegradation(t *testing.T) {
	_, wh := fixture(t)
	tr, err := core.NewScenarioTranslator(wh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate("Average temperature in Barcelona by month"); err != nil {
		t.Errorf("plain member name should still ground: %v", err)
	}
	// El Prat is an Airport member, so the sales fact grounds it directly…
	if _, err := tr.Translate("Average price to El Prat by month"); err != nil {
		t.Errorf("airport member on the sales fact should ground: %v", err)
	}
	// …but the Weather fact has no Airport level and no lexicon to pivot
	// through, so the question must fail loudly.
	if _, err := tr.Translate("Average temperature in El Prat by month"); err == nil {
		t.Error("ontology-free El Prat on Weather should not ground")
	}
}

// TestMonthWithoutYearEnumeratesMembers: "in January" selects every
// January month member the warehouse holds.
func TestMonthWithoutYearEnumeratesMembers(t *testing.T) {
	tr, _ := fixture(t)
	res, err := tr.Translate("Total revenue in January by destination city")
	if err != nil {
		t.Fatal(err)
	}
	var dateFilter *dw.Filter
	for i := range res.Query.Filters {
		if res.Query.Filters[i].Role == "Date" {
			dateFilter = &res.Query.Filters[i]
		}
	}
	if dateFilter == nil {
		t.Fatal("no Date filter compiled")
	}
	if len(dateFilter.Values) != 1 || dateFilter.Values[0] != "2004-01" {
		t.Errorf("Date filter values = %v, want [2004-01]", dateFilter.Values)
	}
}

// TestDetectTime covers the schema introspection helper.
func TestDetectTime(t *testing.T) {
	ts := nl2olap.DetectTime(core.Figure1Schema())
	want := nl2olap.TimeSpec{Dimension: "Date", Day: "Day", Month: "Month", Year: "Year"}
	if ts != want {
		t.Errorf("DetectTime = %+v, want %+v", ts, want)
	}
}

// TestVocabularyValidation: synonym registration rejects metadata that
// does not exist.
func TestVocabularyValidation(t *testing.T) {
	_, wh := fixture(t)
	tr, err := nl2olap.New(wh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AddMeasureSynonym("revenue", "NoSuchFact", "Price"); err == nil {
		t.Error("unknown fact should be rejected")
	}
	if err := tr.AddMeasureSynonym("revenue", "LastMinuteSales", "NoSuchMeasure"); err == nil {
		t.Error("unknown measure should be rejected")
	}
	if err := tr.AddCountSynonym("things", "NoSuchFact"); err == nil {
		t.Error("unknown count fact should be rejected")
	}
	if err := tr.AddMeasureSynonym("  ", "LastMinuteSales", "Price"); err == nil {
		t.Error("empty synonym should be rejected")
	}
}

func TestNewRequiresWarehouse(t *testing.T) {
	if _, err := nl2olap.New(nil, nil); err == nil {
		t.Error("nil warehouse should be rejected")
	}
}
