// Command dwqa runs the full five-step DW↔QA integration on the Last
// Minute Sales scenario. Without a subcommand it prints the paper's
// Table 1 trace, the mixed factoid+analytic workload (natural-language
// questions compiled to OLAP plans) and the BI analysis the scenario
// motivates; the serve subcommand keeps the integrated system running
// behind an HTTP JSON API.
//
// Usage:
//
//	dwqa [-seed N] [-no-ontology] [-no-irfilter] [-table-aware] [-q QUESTION]
//	dwqa serve [-addr :8080] [-workers 8] [-cache 1024] [-no-feed] [shared flags]
//
// The serve API:
//
//	POST /ask        {"question": "..."}      one answer (factoid or OLAP)
//	POST /ask/batch  {"questions": [...]}     batched answers, input order
//	POST /ask/olap   {"question": "..."}      the analytic path: plan + table
//	POST /harvest    {"questions": [...]}     Step 5 feed (empty = default workload)
//	GET  /trace?q=…                           the paper's Table 1 trace
//	GET  /healthz                             serving statistics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"dwqa"
)

// sharedFlags registers the pipeline flags common to both modes.
type sharedFlags struct {
	seed       *int64
	noOntology *bool
	noIRFilter *bool
	tableAware *bool
}

func registerShared(fs *flag.FlagSet) sharedFlags {
	return sharedFlags{
		seed:       fs.Int64("seed", 42, "deterministic seed for scenario, corpus and workload"),
		noOntology: fs.Bool("no-ontology", false, "ablate the shared ontology (skip Steps 2-3 enrichment)"),
		noIRFilter: fs.Bool("no-irfilter", false, "ablate the IR filtering phase (QA scans every passage)"),
		tableAware: fs.Bool("table-aware", false, "enable the future-work table pre-processing"),
	}
}

func (sf sharedFlags) config() dwqa.Config {
	cfg := dwqa.DefaultConfig()
	cfg.Seed = *sf.seed
	cfg.QA.UseOntology = !*sf.noOntology
	cfg.QA.UseIRFilter = !*sf.noIRFilter
	cfg.TableAware = *sf.tableAware
	return cfg
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	runTrace(os.Args[1:])
}

// runTrace is the classic one-shot mode: integrate, trace, analyse.
func runTrace(args []string) {
	fs := flag.NewFlagSet("dwqa", flag.ExitOnError)
	sf := registerShared(fs)
	question := fs.String("q", "What is the weather like in January of 2004 in El Prat?", "question to trace")
	_ = fs.Parse(args)

	p, err := dwqa.New(sf.config())
	if err != nil {
		fatal(err)
	}
	fmt.Println("Running the five-step integration (paper §3)...")
	if err := p.RunAll(); err != nil {
		fatal(err)
	}
	fmt.Println(p.Summary())

	tr, err := p.Table1(*question)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- Table 1 trace ---")
	fmt.Println(tr.Format())

	// The mixed workload the integration enables: the same Ask surface
	// answers factoid questions from the web and analytic questions from
	// the warehouse (compiled OLAP plans).
	fmt.Println("--- Analytic questions (NL → compiled OLAP plans) ---")
	for _, q := range []string{
		"What is the average temperature in Barcelona by month?",
		"Total last-minute revenue per destination city in January",
		"How many tickets were sold to Barcelona in January of 2004?",
	} {
		ans, err := p.AskOLAP(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Q: %s\nplan: %s\n%s\n", q, ans.PlanString(), ans.Result.Format())
	}

	rep, err := dwqa.AnalyzeSalesWeather(p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- BI analysis (the scenario's goal) ---")
	fmt.Println(rep.Format())
}

// runServe integrates once, then serves the QA side over HTTP.
func runServe(args []string) {
	fs := flag.NewFlagSet("dwqa serve", flag.ExitOnError)
	sf := registerShared(fs)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent questions per batch (0 = engine default)")
	cache := fs.Int("cache", 0, "answer-cache entries (0 = engine default, negative disables)")
	noFeed := fs.Bool("no-feed", false, "skip the initial Step 5 feed (serve over the unfed warehouse)")
	_ = fs.Parse(args)

	cfg := sf.config()
	cfg.Engine.Workers = *workers
	cfg.Engine.CacheSize = *cache

	p, err := dwqa.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println("dwqa serve: running the five-step integration (paper §3)...")
	if *noFeed {
		if err := p.Step1DeriveOntology(); err != nil {
			fatal(err)
		}
		if err := p.Step2FeedOntology(); err != nil {
			fatal(err)
		}
		if err := p.Step3MergeUpperOntology(); err != nil {
			fatal(err)
		}
		if err := p.Step4TuneQA(); err != nil {
			fatal(err)
		}
	} else if err := p.RunAll(); err != nil {
		fatal(err)
	}
	fmt.Print(p.Summary())

	eng, err := p.Engine()
	if err != nil {
		fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("dwqa serve: listening on %s (%d workers, %d passages indexed)\n",
		*addr, eng.Workers(), st.Passages)
	if err := http.ListenAndServe(*addr, dwqa.NewServer(eng)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwqa:", err)
	os.Exit(1)
}
