package engine

import (
	"errors"
)

// Degraded read-only mode (DESIGN.md §8): when a warehouse feed fails at
// the WAL — the store refused to ack the append, so memory and log would
// diverge on the next crash — the engine flips into an explicit degraded
// state rather than limping on with durability silently broken.
//
// Degraded is one-way for the process lifetime by default: asks keep
// serving (reads only touch state whose durability is unaffected), feeds
// are refused with ErrDegraded (503 over HTTP), and /healthz reports
// state "degraded" with the triggering error so operators and load
// balancers can see it. Recovery is a restart: boot replays the WAL up
// to the last acked record, re-feeds converge via the loader's dedup.
// ClearDegraded exists for operators who have verified the disk is
// healthy again and accept the re-feed.

// ErrDegraded reports that the engine is in degraded read-only mode:
// a previous feed failed to reach the WAL, so further feeds are refused
// until the operator intervenes. The HTTP layer maps it to 503.
var ErrDegraded = errors.New("engine: degraded (read-only): feeds disabled after a WAL failure")

// ErrReadOnlyReplica reports that this engine serves a read replica:
// feeds are refused by design, not by failure — clients must write to
// the leader. Unlike ErrDegraded this is permanent and healthy, so the
// HTTP layer maps it to 403 rather than 503 (a load balancer must not
// pull a replica out of rotation for refusing a write).
var ErrReadOnlyReplica = errors.New("engine: read-only replica: feeds must go to the leader")

// SetReadOnlyReplica marks the engine as a read replica: HarvestAll
// refuses with ErrReadOnlyReplica instead of the generic no-loader
// error. Called once during follower wiring, before serving starts.
func (e *Engine) SetReadOnlyReplica() {
	e.readOnlyReplica.Store(true)
}

// degradedState carries the reason the engine degraded.
type degradedState struct {
	reason string
}

// enterDegraded flips the engine into degraded read-only mode (idempotent;
// the first reason wins so /healthz shows the original trigger).
func (e *Engine) enterDegraded(reason string) {
	e.degraded.CompareAndSwap(nil, &degradedState{reason: reason})
}

// Degraded reports whether the engine is in degraded read-only mode and,
// when it is, the triggering error text.
func (e *Engine) Degraded() (bool, string) {
	if st := e.degraded.Load(); st != nil {
		return true, st.reason
	}
	return false, ""
}

// ClearDegraded re-enables feeds after an operator has verified the
// store is healthy (e.g. disk space recovered and a snapshot succeeded).
// It reports whether the engine was degraded.
func (e *Engine) ClearDegraded() bool {
	return e.degraded.Swap(nil) != nil
}
