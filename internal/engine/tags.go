package engine

import (
	"dwqa/internal/etl"
	"dwqa/internal/mdm"
	"dwqa/internal/nl2olap"
)

// Dependency tags tie cached answers to the warehouse state they were
// computed from, so a Step 5 feed can evict exactly the answers it may
// have changed instead of flushing the cache. Three tag kinds:
//
//	m:<dim>/<level>/<member> — the answer read this member's rows
//	d:<dim>/<level>          — the answer depends on the level's whole
//	                           member population (a dynamic filter like
//	                           a year-less "in January" enumerated it)
//	f:<fact>                 — the answer reads the whole fact table
//	                           (unfiltered, or a filter the schema
//	                           cannot map to a dimension)
//
// An entry is evicted when ANY of its tags appears in the feed's touch
// set. The contract is one-sided: tagging too coarsely costs spurious
// evictions (correct, slower); tagging too narrowly would serve stale
// answers (wrong). Every fallback below therefore widens.

// olapEntryTags derives the dependency tags for one compiled analytic
// answer. Filter values map to member tags via the plan's role →
// dimension binding; dynamically-enumerated filters add their level
// tag; anything the schema cannot map collapses to the whole-fact tag.
func olapEntryTags(schema *mdm.Schema, ans *nl2olap.Answer) []string {
	q := ans.Query
	wholeFact := []string{"f:" + q.Fact}
	if schema == nil || len(q.Filters) == 0 {
		return wholeFact
	}
	fc := schema.Fact(q.Fact)
	if fc == nil {
		return wholeFact
	}
	var tags []string
	for _, f := range q.Filters {
		ref := fc.Ref(f.Role)
		if ref == nil {
			return wholeFact
		}
		for _, v := range f.Values {
			tags = append(tags, "m:"+ref.Dimension+"/"+f.Level+"/"+v)
		}
	}
	for _, dyn := range ans.DynamicFilters {
		ref := fc.Ref(dyn.Role)
		if ref == nil {
			return wholeFact
		}
		tags = append(tags, "d:"+ref.Dimension+"/"+dyn.Level)
	}
	return tags
}

// feedTags turns a committed load's write footprint into the tag set to
// invalidate: each touched member (ancestors included — etl built the
// closure), the population tag of every touched level (new members
// change what dynamic filters enumerate even before any rows land), and
// each fact that gained rows.
func feedTags(touched *etl.Touched) []string {
	if touched.Empty() {
		return nil
	}
	var tags []string
	seen := map[string]bool{}
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			tags = append(tags, t)
		}
	}
	for _, m := range touched.Members {
		add("m:" + m.Dim + "/" + m.Level + "/" + m.Name)
		add("d:" + m.Dim + "/" + m.Level)
	}
	for _, f := range touched.Facts {
		add("f:" + f)
	}
	return tags
}
