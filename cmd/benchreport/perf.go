package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dwqa/internal/core"
	"dwqa/internal/engine"
	"dwqa/internal/etl"
	"dwqa/internal/ir"
	"dwqa/internal/nl2olap"
	seedpkg "dwqa/internal/seed"
	"dwqa/internal/webcorpus"
)

// perfMeasurement is one benchmark data point of BENCH_PERF.json.
type perfMeasurement struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// perfComparison pairs the compiled engine against the reference engine at
// one scale and records the ratios future PRs track.
type perfComparison struct {
	Rows           int     `json:"rows"`
	Compiled       float64 `json:"compiled_ns_per_op"`
	Reference      float64 `json:"reference_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	AllocReduction float64 `json:"alloc_reduction"`
}

// qaServingComparison pairs the serving engine against the sequential
// one-Ask-at-a-time loop over the same workload.
type qaServingComparison struct {
	WorkloadQuestions int     `json:"workload_questions"`
	UniqueQuestions   int     `json:"unique_questions"`
	Workers           int     `json:"workers"`
	Sequential        float64 `json:"sequential_ns_per_op"`
	Engine            float64 `json:"engine_ns_per_op"`
	Speedup           float64 `json:"speedup"`
	SequentialQPS     float64 `json:"sequential_questions_per_sec"`
	EngineQPS         float64 `json:"engine_questions_per_sec"`
}

// harvestComparison pairs the engine's concurrent harvest + batch load
// against the sequential harvest-and-load loop for the full Step 5 feed.
type harvestComparison struct {
	Questions  int     `json:"questions"`
	Sequential float64 `json:"sequential_ns_per_op"`
	Engine     float64 `json:"engine_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// nl2olapPerf records the NL→OLAP translator hot path: questions
// classified and compiled to validated plans per second.
type nl2olapPerf struct {
	Questions       int     `json:"questions"`
	NsPerOp         float64 `json:"ns_per_op"` // one op = the whole workload
	QuestionsPerSec float64 `json:"questions_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// irSparseComparison pairs the sparse passage scorer against the retained
// dense reference at one corpus scale, over the per-city cold-path query
// workload (rankings verified byte-identical before timing).
type irSparseComparison struct {
	Passages     int     `json:"passages"`
	Queries      int     `json:"queries"`
	Sparse       float64 `json:"sparse_ns_per_op"`
	Dense        float64 `json:"dense_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	SparseAllocs int64   `json:"sparse_allocs_per_op"`
	DenseAllocs  int64   `json:"dense_allocs_per_op"`
	SparseBytes  int64   `json:"sparse_bytes_per_op"`
	DenseBytes   int64   `json:"dense_bytes_per_op"`
}

// askColdPerf records the cold serving path: a cache-disabled engine over
// an all-unique question workload (one op = the whole workload), the
// throughput floor diverse cache-missing traffic sees.
type askColdPerf struct {
	UniqueQuestions int     `json:"unique_questions"`
	NsPerOp         float64 `json:"ns_per_op"`
	QuestionsPerSec float64 `json:"questions_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// askColdObservedPerf records what default observability costs on the
// cold path: the same cache-disabled all-unique workload, observed arm
// (stage timing + an armed slow-query log whose threshold never fires)
// versus a Config.NoObserve engine. The arms are interleaved and the
// per-arm minimum taken, like the resilience comparison. The budget the
// metrics layer is held to: ≤5% ns/op overhead and +0 allocs/op.
type askColdObservedPerf struct {
	UniqueQuestions int     `json:"unique_questions"`
	ObservedNsPerOp float64 `json:"observed_ns_per_op"`
	PlainNsPerOp    float64 `json:"plain_ns_per_op"`
	ObservedAllocs  int64   `json:"observed_allocs_per_op"`
	PlainAllocs     int64   `json:"plain_allocs_per_op"`
	OverheadFrac    float64 `json:"observe_overhead_frac"`
}

// servingResiliencePerf records what the serving-layer resilience
// plumbing costs: the cold workload with the limits on (default admission
// gate + request deadline) versus off (library mode), and the shed fast
// path — how cheaply a saturated engine turns work away. The overhead
// fraction is the ≤5% cold-path budget PERF.md holds the gate to.
type servingResiliencePerf struct {
	GatedNsPerOp    float64 `json:"gated_cold_ns_per_op"`
	UngatedNsPerOp  float64 `json:"ungated_cold_ns_per_op"`
	OverheadFrac    float64 `json:"admission_overhead_frac"`
	ShedNsPerOp     float64 `json:"shed_ns_per_op"`
	ShedAllocsPerOp int64   `json:"shed_allocs_per_op"`
}

// storeRestorePerf records the durability subsystem's headline property:
// restoring the full engine state from a snapshot (bulk column/posting
// load) versus the snapshotless cold boot (regenerate + re-extract +
// re-index + re-load) and versus the conservative reindex baseline that
// already holds extracted text and resolved batches.
type storeRestorePerf struct {
	Passages      int     `json:"passages"`
	FactRows      int     `json:"fact_rows"`
	Members       int     `json:"members"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	Restore       float64 `json:"restore_ns_per_op"`
	Refeed        float64 `json:"refeed_ns_per_op"`  // cold boot from sources
	Reindex       float64 `json:"reindex_ns_per_op"` // text+batches in hand
	Speedup       float64 `json:"speedup_vs_refeed"`
	SpeedupMin    float64 `json:"speedup_vs_reindex"`

	WALRecords       int     `json:"wal_records"`
	WALReplay        float64 `json:"wal_replay_ns_per_op"`
	WALRecordsPerSec float64 `json:"wal_records_per_sec"`

	// Posting-storage footprint at this tier: compressed bytes held by
	// the index's posting lists vs the 8-bytes-per-posting fixed-width
	// layout the format replaced.
	PostingsCount   int     `json:"postings"`
	PostingsBytes   int     `json:"postings_bytes"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
}

// memFootprintPerf is the gated large-corpus tier (DWQA_BENCH_1M=1):
// index memory and restore cost at 1M passages. RSS is sampled after a
// GC with the encoded snapshot and one restored state live — the
// resident footprint an operator provisions for, not just heap objects.
type memFootprintPerf struct {
	Passages        int     `json:"passages"`
	PostingsCount   int     `json:"postings"`
	PostingsBytes   int     `json:"postings_bytes"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
	SnapshotBytes   int     `json:"snapshot_bytes"`
	RestoreNsPerOp  float64 `json:"restore_ns_per_op"`
	RSSBytes        uint64  `json:"rss_bytes"`
	PeakRSSBytes    uint64  `json:"peak_rss_bytes"`
}

// cacheInvalidationPerf compares the serving cache's feed-time
// strategies under mixed feed/ask traffic: selective tag-based
// invalidation (evict only entries whose dimension members or facts the
// feed touched; the default) against the legacy flush-everything
// baseline (engine.Config.FullFlushOnFeed). One op asks the full mixed
// pool once and then feeds one harvest question. Hit rates are computed
// over each arm's whole benchmark traffic.
type cacheInvalidationPerf struct {
	PoolQuestions    int     `json:"pool_questions"`
	SelectiveNsPerOp float64 `json:"selective_ns_per_op"`
	FullFlushNsPerOp float64 `json:"full_flush_ns_per_op"`
	SelectiveHitRate float64 `json:"selective_hit_rate"`
	FullFlushHitRate float64 `json:"full_flush_hit_rate"`
	Speedup          float64 `json:"speedup"`
}

// shardedColdArm is the cold-path cost of one shard count: the whole
// cache-disabled workload scatter/gathered across the cluster, plus how
// the passage index actually partitioned (the per-machine share in a
// one-shard-per-machine deployment).
type shardedColdArm struct {
	Shards           int     `json:"shards"`
	NsPerOp          float64 `json:"ns_per_op"`
	QuestionsPerSec  float64 `json:"questions_per_sec"`
	MaxShardPassages int     `json:"max_shard_passages"`
}

// shardedColdPerf records scatter/gather serving across 1/2/4 shards on
// the cold path. On a single box the workload is CPU-work-bound, so the
// scaling signal is twofold: the federation overhead of the shards=1 arm
// against the single-node engine (must stay small), and a flat ns/op
// curve across shard counts (scatter/gather conserves total work while
// the per-shard postings share — each machine's scan in a distributed
// deployment — shrinks ~1/N).
type shardedColdPerf struct {
	UniqueQuestions        int              `json:"unique_questions"`
	Arms                   []shardedColdArm `json:"arms"`
	FederationOverheadFrac float64          `json:"federation_overhead_frac"`
}

// perfReport is the schema of BENCH_PERF.json.
type perfReport struct {
	Schema         string                 `json:"schema"`
	Measurements   []perfMeasurement      `json:"measurements"`
	OLAP           []perfComparison       `json:"olap_compiled_vs_reference"`
	IRSparse       []irSparseComparison   `json:"ir_search_sparse_vs_dense,omitempty"`
	QAServing      *qaServingComparison   `json:"qa_serving_engine_vs_sequential,omitempty"`
	QAServingMixed *qaServingComparison   `json:"qa_serving_mixed_vs_sequential,omitempty"`
	NL2OLAP        *nl2olapPerf           `json:"nl2olap_translate,omitempty"`
	AskCold        *askColdPerf           `json:"ask_cold_path,omitempty"`
	AskColdObs     *askColdObservedPerf   `json:"ask_cold_observed,omitempty"`
	ShardedCold    *shardedColdPerf       `json:"sharded_cold_path,omitempty"`
	Resilience     *servingResiliencePerf `json:"serving_resilience,omitempty"`
	Harvest        *harvestComparison     `json:"harvest_batch_vs_sequential,omitempty"`
	StoreRestore   *storeRestorePerf      `json:"store_snapshot_restore,omitempty"`
	CacheFeed      *cacheInvalidationPerf `json:"cache_feed_invalidation,omitempty"`
	Footprint1M    *memFootprintPerf      `json:"mem_footprint_1m,omitempty"`
}

func measure(name string, rows int, fn func(b *testing.B)) (perfMeasurement, error) {
	r := testing.Benchmark(fn)
	// b.Fatal inside testing.Benchmark does not propagate — it yields a
	// zero result. Refuse to record it as a plausible-looking data point.
	if r.N <= 0 || r.T <= 0 {
		return perfMeasurement{}, fmt.Errorf("benchmark %s failed (zero result — see output above)", name)
	}
	return perfMeasurement{
		Name:        name,
		Rows:        rows,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// runPerf benchmarks the OLAP engines at 1k/10k/100k generated fact rows
// and the IR-n top-k search, and writes BENCH_PERF.json to outDir.
func runPerf(outDir string, seed int64) (*perfReport, error) {
	// Create the artefact directory up front so a bad -out fails before
	// minutes of benchmarking, not after.
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	rep := &perfReport{Schema: "dwqa-bench/v9"}
	for _, target := range []int{1_000, 10_000, 100_000} {
		wh, q, err := core.PrepareScaledBenchmark(target, seed)
		if err != nil {
			return nil, err
		}
		rows := wh.FactCount("LastMinuteSales")
		compiled, err := measure(fmt.Sprintf("OLAPExecute%dk/compiled", target/1000), rows, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunCompiledOLAP(wh, q, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return nil, err
		}
		reference, err := measure(fmt.Sprintf("OLAPExecute%dk/reference", target/1000), rows, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunReferenceOLAP(wh, q, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return nil, err
		}
		rep.Measurements = append(rep.Measurements, compiled, reference)
		cmp := perfComparison{
			Rows:      rows,
			Compiled:  compiled.NsPerOp,
			Reference: reference.NsPerOp,
		}
		if compiled.NsPerOp > 0 {
			cmp.Speedup = reference.NsPerOp / compiled.NsPerOp
		}
		if reference.AllocsPerOp > 0 {
			cmp.AllocReduction = 1 - float64(compiled.AllocsPerOp)/float64(reference.AllocsPerOp)
		}
		rep.OLAP = append(rep.OLAP, cmp)
	}

	ccfg := webcorpus.DefaultConfig()
	ccfg.Year, ccfg.Months, ccfg.Seed = 2004, []int{1, 2, 3}, seed
	ix := ir.NewIndex()
	if err := ix.AddAll(webcorpus.Build(ccfg).Documents(false)); err != nil {
		return nil, err
	}
	terms := ir.QueryTerms("What is the weather like in Barcelona in January?")
	irBench, err := measure("IRSearchTopK", ix.PassageCount(), func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunIRSearchTopK(ix, terms, 10, b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return nil, err
	}
	rep.Measurements = append(rep.Measurements, irBench)

	if err := runIRScalingPerf(rep, seed); err != nil {
		return nil, err
	}

	if err := runQAServingPerf(rep, seed); err != nil {
		return nil, err
	}

	if err := runShardedColdPerf(rep, seed); err != nil {
		return nil, err
	}

	if err := runStorePerf(rep, seed); err != nil {
		return nil, err
	}

	if err := runCacheInvalidationPerf(rep, seed); err != nil {
		return nil, err
	}

	if os.Getenv("DWQA_BENCH_1M") != "" {
		if err := runFootprint1M(rep, seed); err != nil {
			return nil, err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(outDir, "BENCH_PERF.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// runIRScalingPerf benchmarks the sparse passage scorer against the
// retained dense reference over generated corpora of 1k/10k/100k
// passages, cycling the per-city cold-path query workload. Rankings are
// verified byte-identical at every scale before anything is timed.
func runIRScalingPerf(rep *perfReport, seed int64) error {
	for _, target := range []int{1_000, 10_000, 100_000} {
		sc, err := core.BuildScaledCorpus(target, seed)
		if err != nil {
			return err
		}
		if err := core.VerifyScaledIR(sc, 10); err != nil {
			return err
		}
		queries := sc.Queries()
		passages := sc.Index.PassageCount()
		sparse, err := measure(fmt.Sprintf("IRSearch%dk/sparse", target/1000), passages, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunIRSearchSparse(sc.Index, queries, 10, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return err
		}
		dense, err := measure(fmt.Sprintf("IRSearch%dk/dense", target/1000), passages, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunIRSearchDense(sc.Index, queries, 10, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return err
		}
		rep.Measurements = append(rep.Measurements, sparse, dense)
		cmp := irSparseComparison{
			Passages:     passages,
			Queries:      len(queries),
			Sparse:       sparse.NsPerOp,
			Dense:        dense.NsPerOp,
			SparseAllocs: sparse.AllocsPerOp,
			DenseAllocs:  dense.AllocsPerOp,
			SparseBytes:  sparse.BytesPerOp,
			DenseBytes:   dense.BytesPerOp,
		}
		if sparse.NsPerOp > 0 {
			cmp.Speedup = dense.NsPerOp / sparse.NsPerOp
		}
		rep.IRSparse = append(rep.IRSparse, cmp)
	}
	return nil
}

// runShardedColdPerf benchmarks the scatter/gather deployment on the
// cold path: the cache-disabled all-unique workload over 1/2/4-shard
// clusters. Every arm's answers are verified byte-identical to the
// previous arm's before anything is timed — the equivalence contract the
// sharded test suite pins, re-checked on the benchmark build.
func runShardedColdPerf(rep *perfReport, seed int64) error {
	sc := &shardedColdPerf{}
	var refAnswers []string
	for _, shards := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Engine.CacheSize = -1
		sp, err := core.NewShardedPipeline(cfg, shards)
		if err != nil {
			return err
		}
		if err := sp.Integrate(); err != nil {
			return err
		}
		questions := core.ColdQuestionWorkload(sp)
		sc.UniqueQuestions = len(questions)
		eng, err := sp.Engine()
		if err != nil {
			return err
		}
		answers := make([]string, len(questions))
		for i, r := range eng.AskAll(context.Background(), questions) {
			if r.Err != nil {
				return fmt.Errorf("benchreport: %d shards, slot %d (%q): %v", shards, i, questions[i], r.Err)
			}
			if r.Cached {
				return fmt.Errorf("benchreport: %d shards, slot %d: cache-disabled engine served a cached answer", shards, i)
			}
			answers[i] = r.Result.Trace().Format()
		}
		if refAnswers == nil {
			refAnswers = answers
		} else {
			for i := range answers {
				if answers[i] != refAnswers[i] {
					return fmt.Errorf("benchreport: %d shards, slot %d (%q): answer diverges across shard counts", shards, i, questions[i])
				}
			}
		}
		m, err := measure(fmt.Sprintf("AskColdSharded/shards=%d", shards), len(questions), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.AskAll(context.Background(), questions) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
		if err != nil {
			return err
		}
		rep.Measurements = append(rep.Measurements, m)
		maxPassages := 0
		for i := 0; i < shards; i++ {
			if p := sp.Cluster.Node(i).IX.PassageCount(); p > maxPassages {
				maxPassages = p
			}
		}
		arm := shardedColdArm{Shards: shards, NsPerOp: m.NsPerOp, MaxShardPassages: maxPassages}
		if m.NsPerOp > 0 {
			arm.QuestionsPerSec = float64(len(questions)) / (m.NsPerOp / 1e9)
		}
		sc.Arms = append(sc.Arms, arm)
	}
	if ac := rep.AskCold; ac != nil && ac.NsPerOp > 0 && len(sc.Arms) > 0 {
		sc.FederationOverheadFrac = sc.Arms[0].NsPerOp/ac.NsPerOp - 1
	}
	rep.ShardedCold = sc
	return nil
}

// runQAServingPerf benchmarks the QA serving side: AskThroughput
// (sequential Ask loop vs the engine's AskAll over a traffic-shaped
// workload with repeats) and HarvestBatch (sequential Step 5 loop vs the
// engine's concurrent harvest + batch load). Batch answers are verified
// identical to the sequential loop before any timing.
func runQAServingPerf(rep *perfReport, seed int64) error {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return err
	}
	if err := p.RunAll(); err != nil {
		return err
	}
	eng, err := p.Engine()
	if err != nil {
		return err
	}
	unique := p.WeatherQuestions()
	const repeat = 8
	var workload []string
	for r := 0; r < repeat; r++ {
		workload = append(workload, unique...)
	}

	// Correctness gate: the batch must be byte-identical to the
	// sequential Ask order.
	batch := eng.AskAll(context.Background(), workload)
	for i, q := range workload {
		res, err := p.Ask(q)
		if err != nil || batch[i].Err != nil {
			return fmt.Errorf("benchreport: slot %d: sequential err %v, batch err %v", i, err, batch[i].Err)
		}
		if res.Trace().Format() != batch[i].Result.Trace().Format() {
			return fmt.Errorf("benchreport: slot %d (%q): batch result diverges from sequential Ask", i, q)
		}
	}

	seq, err := measure("AskThroughput/sequential", len(workload), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range workload {
				if _, err := p.Ask(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	engd, err := measure("AskThroughput/engine8", len(workload), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.AskAll(context.Background(), workload) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, seq, engd)
	qs := &qaServingComparison{
		WorkloadQuestions: len(workload),
		UniqueQuestions:   len(unique),
		Workers:           eng.Workers(),
		Sequential:        seq.NsPerOp,
		Engine:            engd.NsPerOp,
	}
	if engd.NsPerOp > 0 {
		qs.Speedup = seq.NsPerOp / engd.NsPerOp
	}
	if seq.NsPerOp > 0 {
		qs.SequentialQPS = float64(len(workload)) / (seq.NsPerOp / 1e9)
	}
	if engd.NsPerOp > 0 {
		qs.EngineQPS = float64(len(workload)) / (engd.NsPerOp / 1e9)
	}
	rep.QAServing = qs

	// Cold path: a cache-disabled engine over the all-unique workload —
	// what diverse (cache-missing) traffic pays per question.
	coldQuestions := core.ColdQuestionWorkload(p)
	coldEng, err := engine.New(engine.Config{CacheSize: -1, MaxInflight: -1, AskTimeout: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		return err
	}
	for i, r := range coldEng.AskAll(context.Background(), coldQuestions) {
		if r.Err != nil {
			return fmt.Errorf("benchreport: cold slot %d (%q): %v", i, coldQuestions[i], r.Err)
		}
		if r.Cached {
			return fmt.Errorf("benchreport: cold slot %d (%q): cache-disabled engine served a cached answer", i, coldQuestions[i])
		}
	}
	cold, err := measure("AskCold", len(coldQuestions), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range coldEng.AskAll(context.Background(), coldQuestions) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, cold)
	ac := &askColdPerf{
		UniqueQuestions: len(coldQuestions),
		NsPerOp:         cold.NsPerOp,
		AllocsPerOp:     cold.AllocsPerOp,
	}
	if cold.NsPerOp > 0 {
		ac.QuestionsPerSec = float64(len(coldQuestions)) / (cold.NsPerOp / 1e9)
	}
	rep.AskCold = ac

	// Resilience plumbing overhead: the same cold workload through an
	// engine with the serving limits on (default gate + deadline) versus
	// the library-mode engine above. The arms are interleaved and the
	// per-arm minimum taken, so slow-window drift on a shared box cannot
	// masquerade as admission overhead (the plumbing itself is ~1µs per
	// batch — far below one run's noise).
	gatedEng, err := engine.New(engine.Config{CacheSize: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		return err
	}
	coldWorkload := func(eng *engine.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.AskAll(context.Background(), coldQuestions) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		}
	}
	gated, err := measure("AskColdGated", len(coldQuestions), coldWorkload(gatedEng))
	if err != nil {
		return err
	}
	ungatedBest := cold.NsPerOp
	for i := 0; i < 2; i++ {
		u, err := measure("AskCold", len(coldQuestions), coldWorkload(coldEng))
		if err != nil {
			return err
		}
		if u.NsPerOp < ungatedBest {
			ungatedBest = u.NsPerOp
		}
		g, err := measure("AskColdGated", len(coldQuestions), coldWorkload(gatedEng))
		if err != nil {
			return err
		}
		if g.NsPerOp < gated.NsPerOp {
			gated = g
		}
	}
	rep.Measurements = append(rep.Measurements, gated)

	// The shed fast path: a single-slot, no-queue engine whose slot is
	// held by one long batch; every probe must be rejected immediately.
	// The occupying questions must be unique — request coalescing would
	// collapse a repeated workload into one computation — and the single
	// worker keeps the slot held for the whole measurement; the
	// cancellable context aborts the occupier as soon as it is done.
	shedEng, err := engine.New(engine.Config{
		CacheSize: -1, MaxInflight: 1, MaxQueue: -1, AskTimeout: -1, Workers: 1,
	}, p.QA, nil, nil, p.Index)
	if err != nil {
		return err
	}
	occupation := make([]string, 0, 60_000)
	for i := 0; len(occupation) < cap(occupation); i++ {
		for _, q := range coldQuestions {
			occupation = append(occupation, fmt.Sprintf("%s (storm %d)", q, i))
		}
	}
	occCtx, occCancel := context.WithCancel(context.Background())
	occDone := make(chan struct{})
	go func() {
		shedEng.AskAll(occCtx, occupation)
		close(occDone)
	}()
	for shedEng.Stats().Inflight == 0 {
		time.Sleep(time.Millisecond)
	}
	notShed := 0
	shed, err := measure("AskShed", 1, func(b *testing.B) {
		b.ReportAllocs()
		notShed = 0
		for i := 0; i < b.N; i++ {
			if r := shedEng.Ask(context.Background(), "overload probe"); !errors.Is(r.Err, engine.ErrShed) {
				notShed++
			}
		}
	})
	occCancel()
	<-occDone
	if err != nil {
		return err
	}
	if notShed > 0 {
		return fmt.Errorf("benchreport: %d shed probes were admitted — the occupier did not hold the slot", notShed)
	}
	rep.Measurements = append(rep.Measurements, shed)
	res := &servingResiliencePerf{
		GatedNsPerOp:    gated.NsPerOp,
		UngatedNsPerOp:  ungatedBest,
		ShedNsPerOp:     shed.NsPerOp,
		ShedAllocsPerOp: shed.AllocsPerOp,
	}
	if ungatedBest > 0 {
		res.OverheadFrac = gated.NsPerOp/ungatedBest - 1
	}
	rep.Resilience = res

	// Observability overhead: the cold workload through the default
	// observed engine (stage timing live, slow-query log armed with a
	// threshold no question can reach) versus a Config.NoObserve engine
	// with the clocks compiled out of the seams. Interleaved arms,
	// per-arm minimum, same rationale as the resilience comparison. The
	// alloc figures carry the headline claim: the record path allocates
	// nothing, so the arms must match exactly.
	plainEng, err := engine.New(engine.Config{CacheSize: -1, MaxInflight: -1, AskTimeout: -1, NoObserve: true}, p.QA, nil, nil, p.Index)
	if err != nil {
		return err
	}
	coldEng.SetSlowQueryLog(time.Hour, func(string, ...any) {})
	observed, err := measure("AskColdObserved", len(coldQuestions), coldWorkload(coldEng))
	if err != nil {
		return err
	}
	plain, err := measure("AskColdPlain", len(coldQuestions), coldWorkload(plainEng))
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		o, err := measure("AskColdObserved", len(coldQuestions), coldWorkload(coldEng))
		if err != nil {
			return err
		}
		if o.NsPerOp < observed.NsPerOp {
			observed.NsPerOp = o.NsPerOp
		}
		if o.AllocsPerOp < observed.AllocsPerOp {
			observed.AllocsPerOp = o.AllocsPerOp
		}
		pl, err := measure("AskColdPlain", len(coldQuestions), coldWorkload(plainEng))
		if err != nil {
			return err
		}
		if pl.NsPerOp < plain.NsPerOp {
			plain.NsPerOp = pl.NsPerOp
		}
		if pl.AllocsPerOp < plain.AllocsPerOp {
			plain.AllocsPerOp = pl.AllocsPerOp
		}
	}
	rep.Measurements = append(rep.Measurements, observed, plain)
	aco := &askColdObservedPerf{
		UniqueQuestions: len(coldQuestions),
		ObservedNsPerOp: observed.NsPerOp,
		PlainNsPerOp:    plain.NsPerOp,
		ObservedAllocs:  observed.AllocsPerOp,
		PlainAllocs:     plain.AllocsPerOp,
	}
	if plain.NsPerOp > 0 {
		aco.OverheadFrac = observed.NsPerOp/plain.NsPerOp - 1
	}
	rep.AskColdObs = aco

	if err := runAnalyticPerf(rep, p); err != nil {
		return err
	}

	// Harvest: fresh loaders per iteration so dedup state never carries.
	harvester, err := p.NewHarvester()
	if err != nil {
		return err
	}
	newLoader := func() (*etl.Loader, error) {
		return etl.NewLoader(p.Ontology, p.Warehouse, "Weather", "City", "Date")
	}
	hseq, err := measure("HarvestBatch/sequential", len(unique), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loader, err := newLoader()
			if err != nil {
				b.Fatal(err)
			}
			for _, q := range unique {
				answers, _, err := harvester.Harvest(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := loader.Load(answers); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	heng, err := measure("HarvestBatch/engine8", len(unique), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loader, err := newLoader()
			if err != nil {
				b.Fatal(err)
			}
			e, err := engine.New(engine.Config{MaxInflight: -1, AskTimeout: -1, HarvestTimeout: -1}, p.QA, harvester, loader, p.Index)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := e.HarvestAll(context.Background(), unique); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, hseq, heng)
	hc := &harvestComparison{
		Questions:  len(unique),
		Sequential: hseq.NsPerOp,
		Engine:     heng.NsPerOp,
	}
	if heng.NsPerOp > 0 {
		hc.Speedup = hseq.NsPerOp / heng.NsPerOp
	}
	rep.Harvest = hc
	return nil
}

// runAnalyticPerf benchmarks the analytic question path over a fed
// pipeline: NL2OLAPTranslate (the translator hot path, one op = the whole
// analytic workload) and AskThroughputMixed (sequential classify-and-
// dispatch loop vs the engine's AskAll over an interleaved factoid+
// analytic workload). The engine's mixed batch is verified against the
// sequential dispatch before any timing.
func runAnalyticPerf(rep *perfReport, p *core.Pipeline) error {
	trans, err := p.Translator()
	if err != nil {
		return err
	}
	eng, err := p.Engine()
	if err != nil {
		return err
	}
	analytic := core.AnalyticQuestions()

	tm, err := measure("NL2OLAPTranslate", len(analytic), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range analytic {
				if _, err := trans.Translate(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, tm)
	np := &nl2olapPerf{Questions: len(analytic), NsPerOp: tm.NsPerOp, AllocsPerOp: tm.AllocsPerOp}
	if tm.NsPerOp > 0 {
		np.QuestionsPerSec = float64(len(analytic)) / (tm.NsPerOp / 1e9)
	}
	rep.NL2OLAP = np

	// The mixed workload: the factoid traffic shape plus the analytic
	// questions, interleaved with repeats.
	unique := p.WeatherQuestions()
	var workload []string
	for r := 0; r < 4; r++ {
		workload = append(workload, unique...)
		workload = append(workload, analytic...)
	}
	sequential := func(q string) error {
		_, err := trans.Answer(q)
		if err == nil {
			return nil
		}
		if !errors.Is(err, nl2olap.ErrFactoid) {
			return err
		}
		_, err = p.Ask(q)
		return err
	}

	// Correctness gate: every batch slot answers on the right path.
	for i, r := range eng.AskAll(context.Background(), workload) {
		if r.Err != nil {
			return fmt.Errorf("benchreport: mixed slot %d (%q): %v", i, workload[i], r.Err)
		}
		if r.Result == nil && r.OLAP == nil {
			return fmt.Errorf("benchreport: mixed slot %d (%q): empty answer", i, workload[i])
		}
	}

	seq, err := measure("AskThroughputMixed/sequential", len(workload), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range workload {
				if err := sequential(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	engd, err := measure("AskThroughputMixed/engine8", len(workload), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.AskAll(context.Background(), workload) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, seq, engd)
	mixed := &qaServingComparison{
		WorkloadQuestions: len(workload),
		UniqueQuestions:   len(unique) + len(analytic),
		Workers:           eng.Workers(),
		Sequential:        seq.NsPerOp,
		Engine:            engd.NsPerOp,
	}
	if engd.NsPerOp > 0 {
		mixed.Speedup = seq.NsPerOp / engd.NsPerOp
		mixed.EngineQPS = float64(len(workload)) / (engd.NsPerOp / 1e9)
	}
	if seq.NsPerOp > 0 {
		mixed.SequentialQPS = float64(len(workload)) / (seq.NsPerOp / 1e9)
	}
	rep.QAServingMixed = mixed
	return nil
}

// runCacheInvalidationPerf measures what the tag-based cache
// invalidation buys under mixed feed/ask traffic. Each arm gets its own
// pipeline (feeds mutate the warehouse) differing only in
// engine.Config.FullFlushOnFeed; one op = AskAll over the full mixed
// factoid+analytic pool, then one single-question harvest feed. Under
// full flush every feed zeroes the cache, so the whole next pool
// recomputes; under selective invalidation factoid entries survive
// outright and analytic entries die only when the feed touched their
// plan's dimension members.
func runCacheInvalidationPerf(rep *perfReport, seed int64) error {
	type armResult struct {
		m       perfMeasurement
		hitRate float64
	}
	arm := func(name string, fullFlush bool) (armResult, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Engine.FullFlushOnFeed = fullFlush
		p, err := core.NewPipeline(cfg)
		if err != nil {
			return armResult{}, err
		}
		for _, step := range []func() error{
			p.Step1DeriveOntology, p.Step2FeedOntology,
			p.Step3MergeUpperOntology, p.Step4TuneQA,
		} {
			if err := step(); err != nil {
				return armResult{}, err
			}
		}
		eng, err := p.Engine()
		if err != nil {
			return armResult{}, err
		}
		pool := append(p.WeatherQuestions(), core.AnalyticQuestions()...)
		harvest := eng.DefaultHarvest()
		feeds := 0
		m, err := measure("CacheFeedInvalidation/"+name, len(pool), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.AskAll(context.Background(), pool) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				batch := harvest[feeds%len(harvest) : feeds%len(harvest)+1]
				if _, _, err := eng.HarvestAll(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
				feeds++
			}
		})
		if err != nil {
			return armResult{}, err
		}
		st := eng.Stats()
		res := armResult{m: m}
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			res.hitRate = float64(st.CacheHits) / float64(total)
		}
		return res, nil
	}

	sel, err := arm("selective", false)
	if err != nil {
		return err
	}
	flush, err := arm("full-flush", true)
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, sel.m, flush.m)
	ci := &cacheInvalidationPerf{
		PoolQuestions:    sel.m.Rows,
		SelectiveNsPerOp: sel.m.NsPerOp,
		FullFlushNsPerOp: flush.m.NsPerOp,
		SelectiveHitRate: sel.hitRate,
		FullFlushHitRate: flush.hitRate,
	}
	if sel.m.NsPerOp > 0 {
		ci.Speedup = flush.m.NsPerOp / sel.m.NsPerOp
	}
	rep.CacheFeed = ci
	return nil
}

// runStorePerf benchmarks the durability subsystem at the 100k scale:
// snapshot restore vs the two rebuild baselines (all three verified to
// reproduce the same state before timing), plus WAL replay throughput.
func runStorePerf(rep *perfReport, seed int64) error {
	sb, err := core.PrepareStoreBenchmark(100_000, 100_000, seed)
	if err != nil {
		return err
	}
	restore, err := measure("SnapshotRestore100k/restore", sb.Passages, func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunSnapshotRestore(sb, b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return err
	}
	refeed, err := measure("SnapshotRestore100k/refeed", sb.Passages, func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunStoreRefeed(sb, b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return err
	}
	reindex, err := measure("SnapshotRestore100k/reindex", sb.Passages, func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunStoreReindex(sb, b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, restore, refeed, reindex)
	sr := &storeRestorePerf{
		Passages:      sb.Passages,
		FactRows:      sb.Rows,
		Members:       sb.MemberCount,
		SnapshotBytes: len(sb.SnapBytes),
		Restore:       restore.NsPerOp,
		Refeed:        refeed.NsPerOp,
		Reindex:       reindex.NsPerOp,
	}
	if restore.NsPerOp > 0 {
		sr.Speedup = refeed.NsPerOp / restore.NsPerOp
		sr.SpeedupMin = reindex.NsPerOp / restore.NsPerOp
	}
	sr.PostingsCount = sb.PostingsCount
	sr.PostingsBytes = sb.PostingsBytes
	if sb.PostingsCount > 0 {
		sr.BytesPerPosting = float64(sb.PostingsBytes) / float64(sb.PostingsCount)
	}

	walDir, err := os.MkdirTemp("", "dwqa-walbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	runner, records, err := core.PrepareWALReplayBenchmark(walDir, 100_000, seed, 1000)
	if err != nil {
		return err
	}
	// rows carries the replayed fact-row count like every other
	// measurement; the record count lives in store_snapshot_restore.
	replay, err := measure("WALReplay100k", sb.Rows, func(b *testing.B) {
		b.ReportAllocs()
		if err := runner(b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, replay)
	sr.WALRecords = records
	sr.WALReplay = replay.NsPerOp
	if replay.NsPerOp > 0 {
		sr.WALRecordsPerSec = float64(records) / (replay.NsPerOp / 1e9)
	}
	rep.StoreRestore = sr
	return nil
}

// runFootprint1M is the gated large-corpus tier: index memory and
// restore cost at 1M passages (set DWQA_BENCH_1M=1 to enable — building
// the corpus takes minutes on one core, far beyond the default run's
// budget). The restore arm is verified state-identical inside
// PrepareFootprintBenchmark before anything is timed.
func runFootprint1M(rep *perfReport, seed int64) error {
	fb, err := core.PrepareFootprintBenchmark(1_000_000, seed)
	if err != nil {
		return err
	}
	restore, err := measure("SnapshotRestore1M/restore", fb.Passages, func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunSnapshotRestore(fb, b.N); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		return err
	}
	rep.Measurements = append(rep.Measurements, restore)
	fp := &memFootprintPerf{
		Passages:       fb.Passages,
		PostingsCount:  fb.PostingsCount,
		PostingsBytes:  fb.PostingsBytes,
		SnapshotBytes:  len(fb.SnapBytes),
		RestoreNsPerOp: restore.NsPerOp,
	}
	if fb.PostingsCount > 0 {
		fp.BytesPerPosting = float64(fb.PostingsBytes) / float64(fb.PostingsCount)
	}
	// Sample residency with the snapshot bytes and one restored state
	// live, after a GC so retained-but-dead builder garbage does not
	// count. Peak RSS additionally covers the build's transient high-water
	// mark. Zero means procfs is unavailable, never "no memory".
	wh, ix, onto, err := core.RestoreState(fb.SnapBytes)
	if err != nil {
		return err
	}
	runtime.GC()
	fp.RSSBytes = seedpkg.ProcessRSS()
	fp.PeakRSSBytes = seedpkg.ProcessPeakRSS()
	runtime.KeepAlive(wh)
	runtime.KeepAlive(ix)
	runtime.KeepAlive(onto)
	rep.Footprint1M = fp
	return nil
}

// checkTolerance is the regression budget of -check: a tracked metric
// may grow at most this factor over the committed baseline.
const checkTolerance = 1.20

// runCheck re-measures the tracked hot paths — ask_cold_path,
// ask_cold_observed, ir_search_sparse_vs_dense and
// store_snapshot_restore — and fails when any ns/op or allocs/op figure
// regresses more than 20% against the committed BENCH_PERF.json.
// Allocation counts are near-deterministic, so their budget catches
// real regressions at any threshold; timing is compared on the same 20%
// budget and is only meaningful on hardware comparable to what produced
// the baseline. The observability stage additionally enforces a strict
// same-process A/B budget: observed ≤ plain×1.05 ns/op, +0 allocs/op.
func runCheck(baselinePath string, seed int64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}

	var failures []string
	compare := func(metric string, baseV, cur float64) {
		if baseV <= 0 {
			fmt.Printf("  skip %-48s (no baseline)\n", metric)
			return
		}
		delta := cur/baseV - 1
		status := "ok  "
		if cur > baseV*checkTolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f → %.0f (%+.0f%%, budget +20%%)", metric, baseV, cur, delta*100))
		}
		fmt.Printf("  %s %-48s %14.0f → %14.0f  (%+.1f%%)\n", status, metric, baseV, cur, delta*100)
	}
	baseMeasurement := func(name string) *perfMeasurement {
		for i := range base.Measurements {
			if base.Measurements[i].Name == name {
				return &base.Measurements[i]
			}
		}
		return nil
	}

	// ask_cold_path: the cache-disabled engine over the all-unique
	// workload. Best of three runs, so one noisy window cannot fail the
	// gate on its own.
	fmt.Println("== CHECK: ask_cold_path ==")
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return err
	}
	if err := p.RunAll(); err != nil {
		return err
	}
	coldQuestions := core.ColdQuestionWorkload(p)
	coldEng, err := engine.New(engine.Config{CacheSize: -1, MaxInflight: -1, AskTimeout: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		return err
	}
	var cold perfMeasurement
	for i := 0; i < 3; i++ {
		m, err := measure("AskCold", len(coldQuestions), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range coldEng.AskAll(context.Background(), coldQuestions) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
		if err != nil {
			return err
		}
		if i == 0 || m.NsPerOp < cold.NsPerOp {
			cold.NsPerOp = m.NsPerOp
		}
		if i == 0 || m.AllocsPerOp < cold.AllocsPerOp {
			cold.AllocsPerOp = m.AllocsPerOp
		}
	}
	if ac := base.AskCold; ac != nil {
		compare("ask_cold_path ns/op", ac.NsPerOp, cold.NsPerOp)
		compare("ask_cold_path allocs/op", float64(ac.AllocsPerOp), float64(cold.AllocsPerOp))
	}

	// ask_cold_observed: the observability overhead budget, enforced as
	// a live A/B rather than against the committed baseline alone. The
	// observed arm reuses coldEng (default stage timing) with the
	// slow-query log armed at a threshold no question reaches; the plain
	// arm is built with Config.NoObserve, compiling the clocks out of
	// the seams. Interleaved, best of three per arm. Because both arms
	// run in the same process on the same machine the budget can be
	// strict — observed ns/op within 5% of plain, and exactly zero extra
	// allocations — where cross-machine baseline comparisons need 20%.
	fmt.Println("== CHECK: ask_cold_observed ==")
	plainEng, err := engine.New(engine.Config{CacheSize: -1, MaxInflight: -1, AskTimeout: -1, NoObserve: true}, p.QA, nil, nil, p.Index)
	if err != nil {
		return err
	}
	coldEng.SetSlowQueryLog(time.Hour, func(string, ...any) {})
	coldArm := func(eng *engine.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.AskAll(context.Background(), coldQuestions) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		}
	}
	var observed, plain perfMeasurement
	for i := 0; i < 3; i++ {
		o, err := measure("AskColdObserved", len(coldQuestions), coldArm(coldEng))
		if err != nil {
			return err
		}
		if i == 0 || o.NsPerOp < observed.NsPerOp {
			observed.NsPerOp = o.NsPerOp
		}
		if i == 0 || o.AllocsPerOp < observed.AllocsPerOp {
			observed.AllocsPerOp = o.AllocsPerOp
		}
		pl, err := measure("AskColdPlain", len(coldQuestions), coldArm(plainEng))
		if err != nil {
			return err
		}
		if i == 0 || pl.NsPerOp < plain.NsPerOp {
			plain.NsPerOp = pl.NsPerOp
		}
		if i == 0 || pl.AllocsPerOp < plain.AllocsPerOp {
			plain.AllocsPerOp = pl.AllocsPerOp
		}
	}
	obsOver := 0.0
	if plain.NsPerOp > 0 {
		obsOver = observed.NsPerOp/plain.NsPerOp - 1
	}
	fmt.Printf("  observed %.0f ns/op (%d allocs)  plain %.0f ns/op (%d allocs)  overhead %+.1f%%\n",
		observed.NsPerOp, observed.AllocsPerOp, plain.NsPerOp, plain.AllocsPerOp, obsOver*100)
	if observed.NsPerOp > plain.NsPerOp*1.05 {
		failures = append(failures, fmt.Sprintf("ask_cold_observed ns/op: %.0f vs plain %.0f (%+.1f%%, budget +5%%)",
			observed.NsPerOp, plain.NsPerOp, obsOver*100))
	}
	if observed.AllocsPerOp > plain.AllocsPerOp {
		failures = append(failures, fmt.Sprintf("ask_cold_observed allocs/op: %d vs plain %d (budget +0)",
			observed.AllocsPerOp, plain.AllocsPerOp))
	}
	if aco := base.AskColdObs; aco != nil {
		compare("ask_cold_observed ns/op", aco.ObservedNsPerOp, observed.NsPerOp)
		compare("ask_cold_observed allocs/op", float64(aco.ObservedAllocs), float64(observed.AllocsPerOp))
	} else {
		fmt.Println("  skip baseline comparison (no ask_cold_observed in baseline)")
	}

	// ir_search_sparse_vs_dense: the scaling arms, matched by passage
	// count so a corpus-size change cannot silently shift the comparison.
	fmt.Println("== CHECK: ir_search_sparse_vs_dense ==")
	irRep := &perfReport{}
	if err := runIRScalingPerf(irRep, seed); err != nil {
		return err
	}
	for _, cur := range irRep.IRSparse {
		var b *irSparseComparison
		for i := range base.IRSparse {
			if base.IRSparse[i].Passages == cur.Passages {
				b = &base.IRSparse[i]
				break
			}
		}
		if b == nil {
			fmt.Printf("  skip %d passages (no matching baseline arm)\n", cur.Passages)
			continue
		}
		compare(fmt.Sprintf("ir_search sparse ns/op @%d", cur.Passages), b.Sparse, cur.Sparse)
		compare(fmt.Sprintf("ir_search sparse allocs/op @%d", cur.Passages), float64(b.SparseAllocs), float64(cur.SparseAllocs))
	}

	// store_snapshot_restore: the restore arm only (the rebuild baselines
	// are context, not the tracked hot path). Best of three like the cold
	// path: restore time at 100k is dominated by allocation + validation
	// against whatever heap the earlier check stages left behind, so a
	// single window can land in a GC-heavy phase and blow the budget on
	// unchanged code. A GC first puts every run on the same footing.
	fmt.Println("== CHECK: store_snapshot_restore ==")
	sb, err := core.PrepareStoreBenchmark(100_000, 100_000, seed)
	if err != nil {
		return err
	}
	runtime.GC()
	var restore perfMeasurement
	for i := 0; i < 3; i++ {
		m, err := measure("SnapshotRestore100k/restore", sb.Passages, func(b *testing.B) {
			b.ReportAllocs()
			if err := core.RunSnapshotRestore(sb, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			return err
		}
		if i == 0 || m.NsPerOp < restore.NsPerOp {
			restore.NsPerOp = m.NsPerOp
		}
		if i == 0 || m.AllocsPerOp < restore.AllocsPerOp {
			restore.AllocsPerOp = m.AllocsPerOp
		}
	}
	if sr := base.StoreRestore; sr != nil {
		compare("store_snapshot_restore ns/op", sr.Restore, restore.NsPerOp)
	}
	if bm := baseMeasurement("SnapshotRestore100k/restore"); bm != nil {
		compare("store_snapshot_restore allocs/op", float64(bm.AllocsPerOp), float64(restore.AllocsPerOp))
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d tracked metric(s) regressed past the 20%% budget:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Println("check passed: no tracked metric regressed past the 20% budget")
	return nil
}

func printPerf(rep *perfReport) {
	fmt.Println("== PERF: compiled OLAP engine vs row-at-a-time reference ==")
	for _, c := range rep.OLAP {
		fmt.Printf("%8d rows  compiled %12.0f ns/op  reference %12.0f ns/op  speedup %6.1fx  allocs -%0.f%%\n",
			c.Rows, c.Compiled, c.Reference, c.Speedup, c.AllocReduction*100)
	}
	for _, m := range rep.Measurements {
		if m.Name == "IRSearchTopK" {
			fmt.Printf("IR top-k search over %d passages: %.0f ns/op, %d allocs/op\n",
				m.Rows, m.NsPerOp, m.AllocsPerOp)
		}
	}
	if len(rep.IRSparse) > 0 {
		fmt.Println("== PERF: sparse IR scorer vs dense reference (cold-path queries) ==")
		for _, c := range rep.IRSparse {
			fmt.Printf("%8d passages  sparse %10.0f ns/op (%d allocs)  dense %10.0f ns/op (%d allocs)  speedup %5.1fx\n",
				c.Passages, c.Sparse, c.SparseAllocs, c.Dense, c.DenseAllocs, c.Speedup)
		}
	}
	if qs := rep.QAServing; qs != nil {
		fmt.Println("== PERF: QA serving engine vs sequential Ask loop ==")
		fmt.Printf("%d-question workload (%d unique, %d workers): sequential %.0f q/s, engine %.0f q/s, speedup %.1fx\n",
			qs.WorkloadQuestions, qs.UniqueQuestions, qs.Workers,
			qs.SequentialQPS, qs.EngineQPS, qs.Speedup)
	}
	if ac := rep.AskCold; ac != nil {
		fmt.Printf("Cold path (cache-disabled engine, %d unique questions): %.0f q/s, %d allocs/workload\n",
			ac.UniqueQuestions, ac.QuestionsPerSec, ac.AllocsPerOp)
	}
	if aco := rep.AskColdObs; aco != nil {
		fmt.Printf("Observability overhead on the cold path: observed %.0f ns/op (%d allocs) vs plain %.0f ns/op (%d allocs), %+.1f%%\n",
			aco.ObservedNsPerOp, aco.ObservedAllocs, aco.PlainNsPerOp, aco.PlainAllocs, aco.OverheadFrac*100)
	}
	if sc := rep.ShardedCold; sc != nil {
		fmt.Println("== PERF: scatter/gather cold path across shard counts ==")
		for _, a := range sc.Arms {
			fmt.Printf("%d shard(s): %.0f q/s, largest shard holds %d passages\n",
				a.Shards, a.QuestionsPerSec, a.MaxShardPassages)
		}
		fmt.Printf("federation overhead (1-shard cluster vs single node): %+.1f%%\n",
			sc.FederationOverheadFrac*100)
	}
	if res := rep.Resilience; res != nil {
		fmt.Printf("Resilience: admission gate + deadline cost %+.1f%% on the cold path; shed path %.0f ns/op (%d allocs)\n",
			res.OverheadFrac*100, res.ShedNsPerOp, res.ShedAllocsPerOp)
	}
	if np := rep.NL2OLAP; np != nil {
		fmt.Printf("NL→OLAP translation (%d questions): %.0f q/s, %d allocs/workload\n",
			np.Questions, np.QuestionsPerSec, np.AllocsPerOp)
	}
	if qs := rep.QAServingMixed; qs != nil {
		fmt.Println("== PERF: mixed factoid+analytic serving vs sequential dispatch ==")
		fmt.Printf("%d-question workload (%d unique, %d workers): sequential %.0f q/s, engine %.0f q/s, speedup %.1fx\n",
			qs.WorkloadQuestions, qs.UniqueQuestions, qs.Workers,
			qs.SequentialQPS, qs.EngineQPS, qs.Speedup)
	}
	if hc := rep.Harvest; hc != nil {
		fmt.Printf("Step 5 feed (%d questions): sequential %.0f ms, batch engine %.0f ms, speedup %.2fx\n",
			hc.Questions, hc.Sequential/1e6, hc.Engine/1e6, hc.Speedup)
	}
	if ci := rep.CacheFeed; ci != nil {
		fmt.Println("== PERF: selective cache invalidation vs full flush on feed ==")
		fmt.Printf("%d-question pool + 1 feed/op: selective %.0f ms/op (%.0f%% hits), full flush %.0f ms/op (%.0f%% hits), speedup %.2fx\n",
			ci.PoolQuestions, ci.SelectiveNsPerOp/1e6, ci.SelectiveHitRate*100,
			ci.FullFlushNsPerOp/1e6, ci.FullFlushHitRate*100, ci.Speedup)
	}
	if sr := rep.StoreRestore; sr != nil {
		fmt.Println("== PERF: snapshot restore vs rebuild (durability) ==")
		fmt.Printf("%d passages / %d fact rows (%d byte snapshot): restore %.0f ms, cold refeed %.0f ms (%.1fx), reindex-only %.0f ms (%.1fx)\n",
			sr.Passages, sr.FactRows, sr.SnapshotBytes,
			sr.Restore/1e6, sr.Refeed/1e6, sr.Speedup, sr.Reindex/1e6, sr.SpeedupMin)
		fmt.Printf("WAL replay: %d records in %.0f ms (%.0f records/sec)\n",
			sr.WALRecords, sr.WALReplay/1e6, sr.WALRecordsPerSec)
		if sr.PostingsCount > 0 {
			fmt.Printf("posting storage: %d postings in %d bytes (%.2f B/posting vs 8.00 fixed-width, %.1fx smaller)\n",
				sr.PostingsCount, sr.PostingsBytes, sr.BytesPerPosting, 8/sr.BytesPerPosting)
		}
	}
	if fp := rep.Footprint1M; fp != nil {
		fmt.Println("== PERF: memory footprint at 1M passages (gated tier) ==")
		fmt.Printf("%d passages: %d postings in %d MiB (%.2f B/posting), snapshot %d MiB, restore %.0f ms, rss %d MiB (peak %d MiB)\n",
			fp.Passages, fp.PostingsCount, fp.PostingsBytes>>20, fp.BytesPerPosting,
			fp.SnapshotBytes>>20, fp.RestoreNsPerOp/1e6, fp.RSSBytes>>20, fp.PeakRSSBytes>>20)
	}
}
