package ir

import "math"

// This file retains the dense scoring engines Search and SearchDocuments
// used before the sparse accumulators: a fresh []float64 accumulator of
// length len(index) per query, swept in full by selectTopK. They are the
// correctness oracle the equivalence suite ranks against (byte-identical
// output is asserted for every query shape, mirroring how
// dw.ExecuteReference anchors the compiled OLAP engine) and the baseline
// the IR scaling benchmarks measure — their per-query cost is O(index)
// by construction, which is exactly the behaviour the sparse engine
// removes. Term lookup shares the interned dictionary, and the weight
// expression is written identically so float accumulation matches the
// sparse engine bit for bit.

// SearchReference is the dense O(index)-per-query oracle for Search.
// Same contract: normalised terms in, ranking score desc then id asc.
func (ix *Index) SearchReference(terms []string, k int) []Passage {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.passages) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	scores := make([]float64, len(ix.passages))
	nPass := float64(len(ix.passages))
	for _, term := range terms {
		id, ok := ix.terms[term]
		if !ok {
			continue
		}
		pl := &ix.postings[id]
		n := pl.count()
		if n == 0 {
			continue
		}
		idf := math.Log(1 + nPass/float64(n))
		for c := pl.cursor(); ; {
			pid, tf, ok := c.next()
			if !ok {
				break
			}
			scores[pid] += (1 + math.Log(float64(tf))) * idf
		}
	}
	ids := selectTopK(scores, k)
	out := make([]Passage, 0, len(ids))
	for _, id := range ids {
		out = append(out, ix.materializeLocked(int(id), scores[id]))
	}
	return out
}

// SearchDocumentsReference is the dense oracle for SearchDocuments.
func (ix *Index) SearchDocumentsReference(terms []string, k int) []DocResult {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	scores := make([]float64, len(ix.docs))
	nDocs := float64(len(ix.docs))
	for _, term := range terms {
		id, ok := ix.terms[term]
		if !ok {
			continue
		}
		pl := &ix.docPostings[id]
		n := pl.count()
		if n == 0 {
			continue
		}
		idf := math.Log(1 + nDocs/float64(n))
		for c := pl.cursor(); ; {
			did, tf, ok := c.next()
			if !ok {
				break
			}
			scores[did] += (1 + math.Log(float64(tf))) * idf
		}
	}
	ids := selectTopK(scores, k)
	out := make([]DocResult, 0, len(ids))
	for _, id := range ids {
		out = append(out, DocResult{
			URL: ix.docs[id].URL, DocIndex: int(id),
			Score: scores[id], Text: ix.docs[id].Text,
		})
	}
	return out
}
