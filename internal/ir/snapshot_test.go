package ir

import (
	"fmt"
	"reflect"
	"testing"
)

// snapTestDocs is a small corpus with enough structure to exercise
// multi-sentence windows, overlapping passages and shared terms.
func snapTestDocs() []Document {
	docs := []Document{
		{URL: "http://w/bcn", Text: "The weather in Barcelona is mild. January temperatures reach 13 degrees. " +
			"Rain is rare in winter. The beach stays open. Tourists enjoy the sun. " +
			"February brings wind. March warms up quickly. April is pleasant. May is warm."},
		{URL: "http://w/mad", Text: "Madrid winters are cold. January temperatures drop to 2 degrees. " +
			"Snow falls on the sierra. The museums stay busy."},
		{URL: "http://w/nyc", Text: "New York shivers in January. Temperatures average zero degrees. " +
			"The wind funnels down the avenues."},
	}
	return docs
}

func TestIndexSnapshotRoundTrip(t *testing.T) {
	src := NewIndex(WithPassageSize(3), WithStride(1))
	if err := src.AddAll(snapTestDocs()); err != nil {
		t.Fatal(err)
	}

	snap := src.Export()
	dst := NewIndex() // default geometry: Import must override it from the snapshot
	if err := dst.Import(snap); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(dst.Export(), snap) {
		t.Fatal("re-export after import diverges from the original snapshot")
	}
	if dst.DocCount() != src.DocCount() || dst.PassageCount() != src.PassageCount() || dst.TermCount() != src.TermCount() {
		t.Fatalf("counts diverge: %d/%d/%d vs %d/%d/%d",
			dst.DocCount(), dst.PassageCount(), dst.TermCount(),
			src.DocCount(), src.PassageCount(), src.TermCount())
	}

	// Every search over the imported index is byte-identical to the
	// original — passages, documents, sparse and dense engines alike.
	queries := [][]string{
		QueryTerms("temperature in January"),
		QueryTerms("Barcelona weather"),
		QueryTerms("wind in New York"),
		QueryTerms("nothing matches this ever"),
	}
	for _, terms := range queries {
		if got, want := dst.Search(terms, 5), src.Search(terms, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("Search(%v) diverges after import:\n got %+v\nwant %+v", terms, got, want)
		}
		if got, want := dst.SearchReference(terms, 5), src.SearchReference(terms, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("SearchReference(%v) diverges after import", terms)
		}
		if got, want := dst.SearchDocuments(terms, 3), src.SearchDocuments(terms, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("SearchDocuments(%v) diverges after import", terms)
		}
	}

	// The append-only term-id invariant survives restore: adding the same
	// new document to both indexes interns identical ids and both keep
	// answering identically.
	extra := Document{URL: "http://w/sev", Text: "Seville bakes in summer. July temperatures pass 40 degrees. The river cools the evenings."}
	if err := src.Add(extra); err != nil {
		t.Fatal(err)
	}
	if err := dst.Add(extra); err != nil {
		t.Fatal(err)
	}
	if dst.TermCount() != src.TermCount() {
		t.Fatalf("term dictionaries diverge after post-import Add: %d vs %d", dst.TermCount(), src.TermCount())
	}
	terms := QueryTerms("Seville temperature in July")
	if got, want := dst.Search(terms, 5), src.Search(terms, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("Search after post-import Add diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestIndexImportRejectsCorruptSnapshots(t *testing.T) {
	src := NewIndex(WithPassageSize(3), WithStride(1))
	if err := src.AddAll(snapTestDocs()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"bad geometry", func(s *Snapshot) { s.Stride = s.PassageSize + 1 }},
		{"sents/docs mismatch", func(s *Snapshot) { s.DocSents = s.DocSents[:1] }},
		{"blocks/docs mismatch", func(s *Snapshot) { s.DocTokens = s.DocTokens[:1] }},
		{"postings/terms mismatch", func(s *Snapshot) { s.Postings = s.Postings[:1] }},
		{"passage doc out of range", func(s *Snapshot) { s.Passages[0].Doc = 99 }},
		{"passage window out of range", func(s *Snapshot) { s.Passages[0].SentEnd = 99 }},
		{"duplicate term", func(s *Snapshot) { s.Terms[1] = s.Terms[0] }},
		{"posting out of range", func(s *Snapshot) { s.Postings[0] = CompressPostings([]Posting{{ID: 9999, TF: 1}}) }},
		{"posting count overclaims", func(s *Snapshot) { s.Postings[0].N++ }},
		{"posting trailing bytes", func(s *Snapshot) { s.Postings[0].Enc = append(s.Postings[0].Enc, 1, 1) }},
		{"zero posting gap", func(s *Snapshot) {
			s.Postings[0] = PostingList{N: 2, Enc: append(appendPosting(nil, -1, Posting{ID: 0, TF: 1}), 0, 1)}
		}},
		{"zero tf", func(s *Snapshot) { s.Postings[0] = PostingList{N: 1, Enc: []byte{1, 0}} }},
		{"token block truncated", func(s *Snapshot) { s.DocTokens[0] = s.DocTokens[0][:len(s.DocTokens[0])-1] }},
		{"token count overclaims", func(s *Snapshot) { s.DocToks[0]++ }},
		{"tag index out of range", func(s *Snapshot) { s.TokTags = s.TokTags[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := src.Export()
			tc.mutate(snap)
			dst := NewIndex()
			if err := dst.Import(snap); err == nil {
				t.Fatal("corrupt snapshot imported without error")
			}
			if dst.DocCount() != 0 || dst.TermCount() != 0 {
				t.Fatalf("failed import left state behind: %d docs, %d terms", dst.DocCount(), dst.TermCount())
			}
		})
	}
	// Import refuses a non-empty target.
	dst := NewIndex()
	if err := dst.Add(Document{URL: "u", Text: "Some text here."}); err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(src.Export()); err == nil {
		t.Fatal("import into a non-empty index accepted")
	}
}

// docJournal records journalled documents.
type docJournal struct {
	docs []Document
	fail bool
}

func (j *docJournal) LogDocument(doc Document) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.docs = append(j.docs, doc)
	return nil
}

func (j *docJournal) LogDocuments(docs []Document) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.docs = append(j.docs, docs...)
	return nil
}

func TestIndexJournalHook(t *testing.T) {
	ix := NewIndex()
	j := &docJournal{}
	ix.SetJournal(j)
	docs := snapTestDocs()
	if err := ix.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j.docs, docs) {
		t.Fatalf("journalled docs diverge: %d vs %d", len(j.docs), len(docs))
	}
	// Rejected documents never reach the journal.
	if err := ix.Add(Document{URL: "empty", Text: "   "}); err == nil {
		t.Fatal("empty document accepted")
	}
	if len(j.docs) != len(docs) {
		t.Fatal("rejected document was journalled")
	}
	// Journal failure surfaces.
	j.fail = true
	if err := ix.Add(Document{URL: "x", Text: "More text arrives."}); err == nil {
		t.Fatal("journal failure swallowed")
	}
}
