package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"dwqa/internal/core"
	"dwqa/internal/engine"
	"dwqa/internal/nl2olap"
)

// analyticQuestions is the OLAP side of the mixed serving workload (the
// same set the mixed benchmarks use).
func analyticQuestions() []string { return core.AnalyticQuestions() }

// mixedWorkload interleaves factoid and analytic questions plus failure
// slots of both kinds, the traffic shape the ISSUE's serving scenario
// describes.
func mixedWorkload(p *core.Pipeline) []string {
	var out []string
	factoid := p.WeatherQuestions()
	analytic := analyticQuestions()
	n := len(factoid)
	if len(analytic) > n {
		n = len(analytic)
	}
	for i := 0; i < n; i++ {
		out = append(out, factoid[i%len(factoid)], analytic[i%len(analytic)])
	}
	out = append(out,
		"   ",                                    // analysis error slot
		"average temperature in Gotham by month", // analytic grounding error slot
	)
	return out
}

// renderAsk flattens one AskAll slot for byte-level comparison across the
// factoid and analytic paths.
func renderAsk(r engine.AskResult) string {
	if r.Err != nil {
		return "error: " + r.Err.Error()
	}
	if r.OLAP != nil {
		return "olap: " + r.OLAP.PlanString() + "\n" + r.OLAP.Result.Format()
	}
	return r.Result.Trace().Format()
}

// sequentialMixedOracle answers the workload one question at a time with
// the translator and the QA system directly — no engine, no cache — which
// is the behaviour every AskAll slot must reproduce.
func sequentialMixedOracle(t *testing.T, p *core.Pipeline, questions []string) []string {
	t.Helper()
	trans, err := p.Translator()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(questions))
	for i, q := range questions {
		ans, err := trans.Answer(q)
		switch {
		case err == nil:
			want[i] = "olap: " + ans.PlanString() + "\n" + ans.Result.Format()
		case !errors.Is(err, nl2olap.ErrFactoid):
			want[i] = "error: " + err.Error()
		default:
			res, err := p.Ask(q)
			if err != nil {
				want[i] = "error: " + err.Error()
			} else {
				want[i] = res.Trace().Format()
			}
		}
	}
	return want
}

// TestMixedBatchMatchesSequential extends the engine-vs-sequential
// equivalence to mixed factoid+analytic batches: every slot — answer,
// OLAP table or error — is byte-identical to the sequential dispatch, and
// a second pass serves both kinds from the cache.
func TestMixedBatchMatchesSequential(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	questions := mixedWorkload(p)
	want := sequentialMixedOracle(t, p, questions)

	results, err := p.AskAll(questions)
	if err != nil {
		t.Fatal(err)
	}
	sawOLAP, sawFactoid := false, false
	for i, r := range results {
		if got := renderAsk(r); got != want[i] {
			t.Errorf("slot %d (%q):\n  batch      = %q\n  sequential = %q", i, questions[i], got, want[i])
		}
		if r.OLAP != nil {
			sawOLAP = true
			if r.Result != nil {
				t.Errorf("slot %d carries both an OLAP and a factoid result", i)
			}
		}
		if r.Result != nil {
			sawFactoid = true
		}
	}
	if !sawOLAP || !sawFactoid {
		t.Fatalf("workload did not exercise both paths (olap=%v factoid=%v)", sawOLAP, sawFactoid)
	}

	again, err := p.AskAll(questions)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		if got := renderAsk(r); got != want[i] {
			t.Errorf("cached slot %d diverged from sequential result", i)
		}
		if r.Err == nil && !r.Cached {
			t.Errorf("slot %d (%q) should have been served from the cache", i, r.Question)
		}
	}
}

// TestAnalyticAnswersInvalidatedByFeed pins the cache-flush contract for
// the analytic path: an OLAP answer computed over the unfed warehouse
// must not survive a Step 5 feed.
func TestAnalyticAnswersInvalidatedByFeed(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	const q = "count of weather observations by city"

	before := eng.Ask(context.Background(), q)
	if before.Err != nil {
		t.Fatal(before.Err)
	}
	if before.OLAP == nil {
		t.Fatal("question did not route to the OLAP path")
	}
	if len(before.OLAP.Result.Rows) != 0 {
		t.Fatalf("unfed Weather fact has %d rows", len(before.OLAP.Result.Rows))
	}

	if _, _, err := eng.HarvestAll(context.Background(), nil); err != nil { // default workload feed
		t.Fatal(err)
	}

	after := eng.Ask(context.Background(), q)
	if after.Err != nil {
		t.Fatal(after.Err)
	}
	if after.Cached {
		t.Fatal("analytic answer served from the cache across a feed")
	}
	total := 0
	for _, r := range after.OLAP.Result.Rows {
		total += r.Count
	}
	if len(after.OLAP.Result.Rows) == 0 || total == 0 {
		t.Fatalf("post-feed count result = %+v, want harvested rows", after.OLAP.Result.Rows)
	}
}

// TestAskOLAPEndpointSemantics covers the analytic-only entry point.
func TestAskOLAPEndpointSemantics(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.AskOLAP("Average price by destination country and month")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Result.Rows) == 0 {
		t.Error("no result rows")
	}
	// Factoid questions are rejected by classification alone: the
	// expensive factoid pipeline never runs and nothing enters the cache.
	entriesBefore := eng.Stats().CacheEntries
	if _, err := eng.AskOLAP(context.Background(), "What is the weather like in January of 2004 in El Prat?"); !errors.Is(err, nl2olap.ErrFactoid) {
		t.Errorf("factoid question through AskOLAP = %v, want ErrFactoid", err)
	}
	if got := eng.Stats().CacheEntries; got != entriesBefore {
		t.Errorf("rejected AskOLAP polluted the cache (%d → %d entries)", entriesBefore, got)
	}
	// An engine without a translator refuses rather than misroutes.
	bare, err := engine.New(engine.Config{}, p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.AskOLAP(context.Background(), "Total revenue"); err == nil {
		t.Error("translator-less engine should refuse AskOLAP")
	}
	// Trace reports analytic questions instead of panicking on them.
	if _, err := eng.Trace(context.Background(), "Total revenue by month"); err == nil {
		t.Error("Trace of an analytic question should explain the OLAP routing")
	}
}

// TestConcurrentMixedAskWhileFeeding is the mixed-workload serving
// scenario under the race detector: factoid and analytic batches running
// on the engine while Step 5 feeds commit, then a post-storm equivalence
// check against the sequential oracle (cache-flush correctness: nothing
// stale survives the feeds).
func TestConcurrentMixedAskWhileFeeding(t *testing.T) {
	p := newPipeline(t)
	questions := mixedWorkload(p)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				results, err := p.AskAll(questions)
				if err != nil {
					errs <- fmt.Errorf("AskAll: %w", err)
					return
				}
				for s, r := range results {
					// Failure slots aside, every answer must be one of the
					// two paths, never both.
					if r.Result != nil && r.OLAP != nil {
						errs <- fmt.Errorf("slot %d has both result kinds", s)
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
				errs <- fmt.Errorf("Step5: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the storm the caches hold only post-feed state: a fresh batch
	// must equal the sequential oracle over the final warehouse.
	want := sequentialMixedOracle(t, p, questions)
	results, err := p.AskAll(questions)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if got := renderAsk(r); got != want[i] {
			t.Errorf("post-feed slot %d (%q):\n  batch      = %q\n  sequential = %q", i, questions[i], got, want[i])
		}
	}
}
