// Package qa implements the AliQAn question answering system of the
// paper's evaluation: a two-phase architecture (indexation via the nlp,
// sbparser, wsd and ir substrates; search via three sequential modules:
// question analysis, selection of relevant passages, extraction of the
// answer), with the 20-category answer-type taxonomy built on WordNet
// base types and EuroWordNet top concepts, syntactic-semantic question
// patterns, and the Step 4 tuning hooks that the integration model uses
// to teach it new query types.
package qa

import (
	"dwqa/internal/wordnet"
)

// Category is an expected answer type. The inventory is the paper's:
// "AliQAn's taxonomy consists of the following categories: person,
// profession, group, object, place city, place country, place capital,
// place, abbreviation, event, numerical economic, numerical age,
// numerical measure, numerical period, numerical percentage, numerical
// quantity, temporal year, temporal month, temporal date and definition."
type Category string

// The 20 answer-type categories.
const (
	CatPerson       Category = "person"
	CatProfession   Category = "profession"
	CatGroup        Category = "group"
	CatObject       Category = "object"
	CatPlaceCity    Category = "place city"
	CatPlaceCountry Category = "place country"
	CatPlaceCapital Category = "place capital"
	CatPlace        Category = "place"
	CatAbbreviation Category = "abbreviation"
	CatEvent        Category = "event"
	CatNumEconomic  Category = "numerical economic"
	CatNumAge       Category = "numerical age"
	CatNumMeasure   Category = "numerical measure"
	CatNumPeriod    Category = "numerical period"
	CatNumPercent   Category = "numerical percentage"
	CatNumQuantity  Category = "numerical quantity"
	CatTempYear     Category = "temporal year"
	CatTempMonth    Category = "temporal month"
	CatTempDate     Category = "temporal date"
	CatDefinition   Category = "definition"
)

// CatAnalytic is the integration's own addition to the paper's taxonomy:
// questions that aggregate warehouse measures ("average temperature in
// Barcelona by month") and are answered by the compiled OLAP engine
// rather than the three factoid modules. Question analysis never assigns
// it from text alone — the nl2olap translator classifies a question as
// analytic before the factoid pipeline runs — so it is deliberately not
// part of AllCategories; it labels analytic results in traces and the
// serving API.
const CatAnalytic Category = "analytic"

// AllCategories lists the taxonomy in the paper's order.
var AllCategories = []Category{
	CatPerson, CatProfession, CatGroup, CatObject, CatPlaceCity,
	CatPlaceCountry, CatPlaceCapital, CatPlace, CatAbbreviation, CatEvent,
	CatNumEconomic, CatNumAge, CatNumMeasure, CatNumPeriod, CatNumPercent,
	CatNumQuantity, CatTempYear, CatTempMonth, CatTempDate, CatDefinition,
}

// classifierRule maps a subsuming lemma to a category; rules are ordered
// most specific first, mirroring the taxonomy's structure over WordNet.
type classifierRule struct {
	lemma string
	cat   Category
}

var classifierRules = []classifierRule{
	{"capital", CatPlaceCapital},
	{"city", CatPlaceCity},
	{"country", CatPlaceCountry},
	{"location", CatPlace},
	{"occupation", CatProfession},
	{"person", CatPerson},
	{"group", CatGroup},
	{"abbreviation", CatAbbreviation},
	{"price", CatNumEconomic},
	{"money", CatNumEconomic},
	{"age", CatNumAge},
	{"percentage", CatNumPercent},
	{"temperature", CatNumMeasure},
	{"measure", CatNumMeasure},
	{"year", CatTempYear},
	{"month", CatTempMonth},
	{"date", CatTempDate},
	{"time period", CatNumPeriod},
	{"number", CatNumQuantity},
	{"event", CatEvent},
}

// ClassifyFocus maps the head lemma of a question's focus noun to a
// taxonomy category using WordNet subsumption — the paper: "the answer
// type is classified into a taxonomy based on WordNet Based-Types and
// EuroWordNet Top-Concepts". Unmappable focuses default to object.
func ClassifyFocus(wn *wordnet.WordNet, focusLemma string) Category {
	if focusLemma == "" {
		return CatObject
	}
	for _, r := range classifierRules {
		if focusLemma == r.lemma {
			return r.cat
		}
	}
	for _, r := range classifierRules {
		if wn.LemmaIsA(focusLemma, wordnet.Noun, r.lemma) {
			return r.cat
		}
	}
	return CatObject
}

// IsNumerical reports whether the category expects a number in the answer.
func (c Category) IsNumerical() bool {
	switch c {
	case CatNumEconomic, CatNumAge, CatNumMeasure, CatNumPeriod,
		CatNumPercent, CatNumQuantity:
		return true
	}
	return false
}

// IsTemporal reports whether the category expects a date or time.
func (c Category) IsTemporal() bool {
	switch c {
	case CatTempYear, CatTempMonth, CatTempDate:
		return true
	}
	return false
}

// IsPlace reports whether the category expects a location.
func (c Category) IsPlace() bool {
	switch c {
	case CatPlace, CatPlaceCity, CatPlaceCountry, CatPlaceCapital:
		return true
	}
	return false
}

// placeConstraint returns the WordNet lemma a place answer must be
// subsumed by.
func (c Category) placeConstraint() string {
	switch c {
	case CatPlaceCity:
		return "city"
	case CatPlaceCountry:
		return "country"
	case CatPlaceCapital:
		return "capital"
	default:
		return "location"
	}
}
