package ontology

import (
	"reflect"
	"testing"
)

// buildSnapshotFixture assembles an ontology touching every exported
// surface: hierarchy, attributes, relations, instances with aliases and
// properties, axioms of all three kinds.
func buildSnapshotFixture(t *testing.T) *Ontology {
	t.Helper()
	o := New("fixture")
	o.Subclass("Airport", "Location")
	o.Subclass("City", "Location")
	o.AddAttribute("Airport", Attribute{Name: "Name", Kind: KindDescriptor, Type: "String"})
	o.AddAttribute("Airport", Attribute{Name: "IATA", Kind: KindAttribute, Type: "String"})
	o.AddRelation("Airport", Relation{Name: "locatedIn", Target: "City"})
	o.AddInstance("Airport", Instance{
		Name: "El Prat", Aliases: []string{"BCN", "Barcelona-El Prat"},
		Properties: map[string]string{"locatedIn": "Barcelona"},
	})
	o.AddInstance("City", Instance{Name: "Barcelona"})
	for _, a := range []Axiom{
		{Concept: "Temperature", Kind: AxiomValueFormat, Units: []string{"ºC", "F"}},
		{Concept: "Temperature", Kind: AxiomValueRange, Unit: "C", Min: -90, Max: 60},
		{Concept: "Temperature", Kind: AxiomUnitConversion, FromUnit: "C", ToUnit: "F", Scale: 1.8, Offset: 32},
	} {
		if err := o.AddAxiom(a); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestOntologySnapshotRoundTrip(t *testing.T) {
	src := buildSnapshotFixture(t)
	snap := src.Export()
	dst, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Export(), snap) {
		t.Fatal("re-export after FromSnapshot diverges")
	}
	// Semantic checks: lookups, hierarchy and axioms all survive.
	if concept, inst := dst.FindInstance("BCN"); concept != "Airport" || inst == nil || inst.Name != "El Prat" {
		t.Fatalf("alias lookup lost: %q %+v", concept, inst)
	}
	if !dst.IsA("Airport", "Location") {
		t.Fatal("subclass edge lost")
	}
	if f, err := dst.Convert("Temperature", 0, "C", "F"); err != nil || f != 32 {
		t.Fatalf("conversion axiom lost: %v %v", f, err)
	}
	if ok, _ := dst.InRange("Temperature", 100, "C"); ok {
		t.Fatal("range axiom lost")
	}
	// Export determinism: same state, same snapshot.
	if !reflect.DeepEqual(src.Export(), snap) {
		t.Fatal("Export is not deterministic")
	}
}

func TestFromSnapshotRejectsCorruptSnapshots(t *testing.T) {
	src := buildSnapshotFixture(t)
	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"empty concept name", func(s *Snapshot) { s.Concepts[0].Name = "" }},
		{"duplicate concept", func(s *Snapshot) { s.Concepts[1].Name = s.Concepts[0].Name }},
		{"unknown parent", func(s *Snapshot) { s.Concepts[0].Parents = []string{"Nowhere"} }},
		{"unknown relation target", func(s *Snapshot) {
			s.Concepts[0].Relations = []Relation{{Name: "x", Target: "Nowhere"}}
		}},
		{"property keys/vals mismatch", func(s *Snapshot) {
			for i := range s.Concepts {
				if len(s.Concepts[i].Instances) > 0 && len(s.Concepts[i].Instances[0].PropKeys) > 0 {
					s.Concepts[i].Instances[0].PropVals = nil
					return
				}
			}
			panic("fixture has no instance with properties")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := src.Export()
			tc.mutate(snap)
			if _, err := FromSnapshot(snap); err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
		})
	}
}

func TestAddAxiomIdempotent(t *testing.T) {
	o := New("axioms")
	a := Axiom{Concept: "Temperature", Kind: AxiomValueRange, Unit: "C", Min: -90, Max: 60}
	for i := 0; i < 3; i++ {
		if err := o.AddAxiom(a); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(o.AxiomsFor("Temperature", AxiomValueRange)); n != 1 {
		t.Fatalf("re-adding an identical axiom duplicated it: %d copies", n)
	}
	// A genuinely different axiom still lands.
	b := a
	b.Max = 70
	if err := o.AddAxiom(b); err != nil {
		t.Fatal(err)
	}
	if n := len(o.AxiomsFor("Temperature", AxiomValueRange)); n != 2 {
		t.Fatalf("distinct axiom rejected: %d copies", n)
	}
}
