package seed

import "dwqa/internal/store"

// Test hooks: the checkpoint codec is unexported (callers go through
// Run), but its failure-atomicity contract — a failed write never
// clobbers the previous checkpoint — is pinned directly with an
// injected-fault filesystem.
func WriteCheckpointForTest(fsys store.FS, dir string, fingerprint string, pages int, walSeq uint64) error {
	return writeCheckpoint(fsys, dir, checkpoint{Fingerprint: fingerprint, Pages: pages, WALSeq: walSeq})
}

func ReadCheckpointForTest(fsys store.FS, dir string) (fingerprint string, pages int, walSeq uint64, ok bool, err error) {
	cp, err := readCheckpoint(fsys, dir)
	if err != nil || cp == nil {
		return "", 0, 0, false, err
	}
	return cp.Fingerprint, cp.Pages, cp.WALSeq, true, nil
}
