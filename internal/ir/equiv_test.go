package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// equivVocab is a vocabulary of content words the random corpora draw
// from; small enough that terms collide across documents and tf > 1
// occurs, exercising the (1 + log tf) branch.
var equivVocab = []string{
	"storm", "harbor", "melon", "bridge", "engine", "forest", "signal",
	"market", "garden", "window", "anchor", "valley", "copper", "stone",
	"river", "temperature", "barcelona", "january", "weather", "album",
}

// randomSentence builds one sentence of random vocabulary words.
func randomSentence(rng *rand.Rand) string {
	n := 3 + rng.Intn(8)
	words := make([]string, n)
	for i := range words {
		words[i] = equivVocab[rng.Intn(len(equivVocab))]
	}
	return strings.Join(words, " ") + "."
}

// randomIndex builds a random corpus: 1-6 documents of 1-8 sentences,
// random window size and stride.
func randomIndex(t *testing.T, rng *rand.Rand) *Index {
	t.Helper()
	ix := NewIndex(WithPassageSize(1+rng.Intn(4)), WithStride(1+rng.Intn(3)))
	nDocs := 1 + rng.Intn(6)
	for d := 0; d < nDocs; d++ {
		var b strings.Builder
		for s, nS := 0, 1+rng.Intn(8); s < nS; s++ {
			b.WriteString(randomSentence(rng))
			b.WriteString(" ")
		}
		if err := ix.Add(Document{URL: fmt.Sprintf("http://e.example/%d", d), Text: b.String()}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return ix
}

// randomQuery draws a query of vocabulary terms, sometimes with
// duplicates and unknown terms mixed in.
func randomQuery(rng *rand.Rand) []string {
	n := 1 + rng.Intn(4)
	terms := make([]string, 0, n+2)
	for i := 0; i < n; i++ {
		terms = append(terms, equivVocab[rng.Intn(len(equivVocab))])
	}
	if rng.Intn(3) == 0 {
		terms = append(terms, terms[0]) // duplicate: weighs twice in both engines
	}
	if rng.Intn(3) == 0 {
		terms = append(terms, "zzzunknownterm")
	}
	return terms
}

// TestSparseDenseEquivalence is the sparse/dense oracle property test
// (mirroring internal/dw/equiv_test.go): random corpora and random
// queries must rank byte-identically — scores included, since both
// engines accumulate in the same order — under the pooled sparse scorer
// and the retained dense reference, for passage and document retrieval
// alike.
func TestSparseDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		ix := randomIndex(t, rng)
		for q := 0; q < 12; q++ {
			terms := randomQuery(rng)
			k := 1 + rng.Intn(ix.PassageCount()+3) // sometimes k > matches
			assertSameRanking(t, ix, terms, k)
		}
		// The shapes the tentpole calls out explicitly.
		assertSameRanking(t, ix, []string{"the", "of", "in"}, 5)       // all-stopword
		assertSameRanking(t, ix, []string{"zzzunknownterm"}, 5)        // no-match
		assertSameRanking(t, ix, QueryTerms("storm harbor market"), 3) // normalised path
	}
}

func assertSameRanking(t *testing.T, ix *Index, terms []string, k int) {
	t.Helper()
	sparse := ix.Search(terms, k)
	dense := ix.SearchReference(terms, k)
	if !reflect.DeepEqual(sparse, dense) {
		t.Fatalf("passage ranking diverges for terms %v k=%d:\nsparse: %s\ndense:  %s",
			terms, k, rankingString(sparse), rankingString(dense))
	}
	sdocs := ix.SearchDocuments(terms, k)
	ddocs := ix.SearchDocumentsReference(terms, k)
	if !reflect.DeepEqual(sdocs, ddocs) {
		t.Fatalf("document ranking diverges for terms %v k=%d:\nsparse: %+v\ndense:  %+v",
			terms, k, sdocs, ddocs)
	}
}

func rankingString(ps []Passage) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "(%s[%d:%d] %.17g) ", p.DocURL, p.SentStart, p.SentEnd, p.Score)
	}
	return b.String()
}

// TestSparseDenseEquivalenceAcrossGrowth pins equivalence while the index
// grows (pooled accumulators must track the moving passage count).
func TestSparseDenseEquivalenceAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ix := NewIndex(WithPassageSize(2), WithStride(1))
	for d := 0; d < 12; d++ {
		text := randomSentence(rng) + " " + randomSentence(rng) + " " + randomSentence(rng)
		if err := ix.Add(Document{URL: fmt.Sprintf("http://g.example/%d", d), Text: text}); err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, ix, []string{"storm", "harbor", "temperature"}, 4)
	}
}

// TestReferenceEdgeCases pins the dense oracle's guard branches to the
// sparse engine's: nil terms, k <= 0, empty index, no-match terms.
func TestReferenceEdgeCases(t *testing.T) {
	ix := newTestIndex(t)
	if got := ix.SearchReference(nil, 5); got != nil {
		t.Error("nil terms should return nil")
	}
	if got := ix.SearchReference([]string{"temperature"}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.SearchReference([]string{"zzzunknown"}, 5); len(got) != 0 {
		t.Error("unknown term should match nothing")
	}
	if got := ix.SearchDocumentsReference(nil, 5); got != nil {
		t.Error("docs: nil terms should return nil")
	}
	if got := ix.SearchDocumentsReference([]string{"temperature"}, -1); got != nil {
		t.Error("docs: k<0 should return nil")
	}
	if got := ix.SearchDocuments([]string{"temperature"}, 0); got != nil {
		t.Error("sparse docs: k=0 should return nil")
	}
	if got := ix.SearchDocuments([]string{"zzzunknown"}, 5); len(got) != 0 {
		t.Error("sparse docs: unknown term should match nothing")
	}
	empty := NewIndex()
	if got := empty.SearchReference([]string{"x"}, 5); got != nil {
		t.Error("empty index should return nil")
	}
	if got := empty.SearchDocumentsReference([]string{"x"}, 5); got != nil {
		t.Error("empty index docs should return nil")
	}
	if got := empty.SearchDocuments([]string{"x"}, 5); got != nil {
		t.Error("empty index sparse docs should return nil")
	}
}
