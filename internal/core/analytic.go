package core

import (
	"context"

	"dwqa/internal/nl2olap"
	"dwqa/internal/ontology"
)

// This file wires the analytic question path (DESIGN.md §6) into the Last
// Minute Sales scenario: the NL→OLAP translator over the Figure 1 schema
// with the business vocabulary decision makers actually use ("revenue",
// "tickets", "temperature"), and the pipeline facade that serves it.

// NewScenarioTranslator builds the analytic-question translator for a
// Figure 1 warehouse: the schema-derived vocabulary plus the scenario's
// business synonyms, the Destination-first role preference and the
// from/to preposition bindings. The ontology may be nil (the E-ONTO
// ablation); airport aliases then stop resolving, but plain member names
// still ground through the dimension tables. wh is any warehouse-shaped
// query surface — a single *dw.Warehouse or a shard.Cluster.
func NewScenarioTranslator(wh nl2olap.Warehouse, onto *ontology.Ontology) (*nl2olap.Translator, error) {
	t, err := nl2olap.New(wh, onto)
	if err != nil {
		return nil, err
	}
	for phrase, ref := range map[string][2]string{
		"revenue":      {"LastMinuteSales", "Price"},
		"price":        {"LastMinuteSales", "Price"},
		"prices":       {"LastMinuteSales", "Price"},
		"fare":         {"LastMinuteSales", "Price"},
		"fares":        {"LastMinuteSales", "Price"},
		"cost":         {"LastMinuteSales", "Price"},
		"miles":        {"LastMinuteSales", "Miles"},
		"mileage":      {"LastMinuteSales", "Miles"},
		"distance":     {"LastMinuteSales", "Miles"},
		"temperature":  {"Weather", "TempC"},
		"temperatures": {"Weather", "TempC"},
		"temp":         {"Weather", "TempC"},
	} {
		if err := t.AddMeasureSynonym(phrase, ref[0], ref[1]); err != nil {
			return nil, err
		}
	}
	for phrase, fact := range map[string]string{
		"ticket": "LastMinuteSales", "tickets": "LastMinuteSales",
		"sale": "LastMinuteSales", "sales": "LastMinuteSales",
		"booking": "LastMinuteSales", "bookings": "LastMinuteSales",
		"flight": "LastMinuteSales", "flights": "LastMinuteSales",
		"trip": "LastMinuteSales", "trips": "LastMinuteSales",
		"weather":      "Weather",
		"observation":  "Weather",
		"observations": "Weather",
		"reading":      "Weather",
		"readings":     "Weather",
	} {
		if err := t.AddCountSynonym(phrase, fact); err != nil {
			return nil, err
		}
	}
	// An unqualified "by city" means the destination for the sales fact
	// (the BI analyses all slice by destination); "from X" re-targets the
	// departure role.
	t.SetRolePreference("Destination", "City", "Date", "Customer")
	t.SetPrepositionRole("from", "Departure")
	t.SetPrepositionRole("to", "Destination")
	t.SetPrepositionRole("into", "Destination")
	return t, nil
}

// AnalyticQuestions is the canonical analytic workload of the scenario:
// the question shapes the translator compiles, used by the mixed serving
// benchmarks (bench_test.go and cmd/benchreport share it so
// BENCH_PERF.json measures the same workload CI benchmarks).
func AnalyticQuestions() []string {
	return []string{
		"What is the average temperature in Barcelona by month?",
		"Total last-minute revenue per destination city in January",
		"How many tickets were sold to Barcelona in January of 2004?",
		"Average price by destination country and month",
		"Number of flights per departure airport",
		"count of weather observations by city",
	}
}

// Translator returns the pipeline's NL→OLAP translator, building it on
// first use. Grounding quality follows the pipeline state: after Step 2
// the ontology lexicon resolves airport aliases; before it, only plain
// member names ground. A translator built before Step 1 is rebuilt once
// the ontology exists, so an early call never freezes alias grounding
// off. The serving engine obtains it through Engine(), which wires it
// into the Ask path.
func (p *Pipeline) Translator() (*nl2olap.Translator, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.translatorLocked()
}

func (p *Pipeline) translatorLocked() (*nl2olap.Translator, error) {
	onto := p.qaOntology()
	if p.trans != nil && p.transOnto == onto {
		return p.trans, nil
	}
	t, err := NewScenarioTranslator(p.Warehouse, onto)
	if err != nil {
		return nil, err
	}
	p.trans, p.transOnto = t, onto
	return t, nil
}

// AskOLAP answers one analytic question through the serving engine
// (requires Step 4): classification, translation, execution and the
// shared answer cache. Factoid questions return nl2olap.ErrFactoid — use
// Ask (or AskAll, which dispatches per question) for those.
func (p *Pipeline) AskOLAP(question string) (*nl2olap.Answer, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.AskOLAP(context.Background(), question)
}
