// Package core implements the paper's primary contribution: the five-step
// semi-automatic model integrating a data warehouse with a question
// answering system through a shared ontology. It also ships the Last
// Minute Sales scenario (the paper's Figures 1 and 2) as the runnable
// evaluation environment.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/mdm"
	"dwqa/internal/webcorpus"
)

// sortedKeys returns a map's keys in sorted order. Member creation
// must iterate deterministically: member ids follow insertion order and
// the durable snapshots encode them, so map-order iteration would make
// byte-level state convergence across processes impossible.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Airport describes one airport of the scenario.
type Airport struct {
	Name    string
	IATA    string
	Alias   string // alternative name known to the outside world
	City    string
	Country string
}

// ScenarioAirports is the airport roster of the Last Minute Sales
// scenario, carrying the paper's ambiguous entities.
var ScenarioAirports = []Airport{
	{Name: "El Prat", IATA: "BCN", Alias: "Barcelona-El Prat", City: "Barcelona", Country: "Spain"},
	{Name: "Barajas", IATA: "MAD", Alias: "Madrid-Barajas", City: "Madrid", Country: "Spain"},
	{Name: "JFK", IATA: "JFK", Alias: "Kennedy International Airport", City: "New York", Country: "USA"},
	{Name: "La Guardia", IATA: "LGA", Alias: "LaGuardia Airport", City: "New York", Country: "USA"},
	{Name: "John Wayne", IATA: "SNA", Alias: "Orange County Airport", City: "Costa Mesa", Country: "USA"},
	{Name: "San Pablo", IATA: "SVQ", Alias: "Seville Airport", City: "Seville", Country: "Spain"},
	{Name: "Sondica", IATA: "BIO", Alias: "Bilbao Airport", City: "Bilbao", Country: "Spain"},
}

// Figure1Schema builds the multidimensional model of the paper's Figure 1:
// the Last Minute Sales fact (measures Price and Miles) analysed by the
// Airport dimension (in the Departure and Destination roles), Customer and
// Date; plus the Weather fact the integration feeds in Step 5.
func Figure1Schema() *mdm.Schema {
	airport := &mdm.DimensionClass{
		Name: "Airport",
		Levels: []*mdm.Level{
			{Name: "Airport", Descriptor: "Name", RollsUpTo: "City",
				Attributes: []mdm.Attribute{{Name: "IATA", Type: mdm.TypeString}, {Name: "Alias", Type: mdm.TypeString}}},
			{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
			{Name: "Country", Descriptor: "Name"},
		},
	}
	city := &mdm.DimensionClass{
		Name: "City",
		Levels: []*mdm.Level{
			{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
			{Name: "Country", Descriptor: "Name"},
		},
	}
	date := &mdm.DimensionClass{
		Name: "Date",
		Levels: []*mdm.Level{
			{Name: "Day", Descriptor: "Date", RollsUpTo: "Month"},
			{Name: "Month", Descriptor: "Name", RollsUpTo: "Year"},
			{Name: "Year", Descriptor: "Name"},
		},
	}
	customer := &mdm.DimensionClass{
		Name: "Customer",
		Levels: []*mdm.Level{
			{Name: "Customer", Descriptor: "Name", RollsUpTo: "Segment",
				Attributes: []mdm.Attribute{{Name: "Rate", Type: mdm.TypeFloat}}},
			{Name: "Segment", Descriptor: "Name"},
		},
	}
	sales := &mdm.FactClass{
		Name: "LastMinuteSales",
		Measures: []mdm.Measure{
			{Name: "Price", Type: mdm.TypeFloat},
			{Name: "Miles", Type: mdm.TypeFloat},
		},
		Dimensions: []mdm.DimensionRef{
			{Role: "Departure", Dimension: "Airport"},
			{Role: "Destination", Dimension: "Airport"},
			{Role: "Date", Dimension: "Date"},
			{Role: "Customer", Dimension: "Customer"},
		},
	}
	// The Weather fact is the landing zone of Step 5: it stays empty until
	// the QA system feeds it.
	weather := &mdm.FactClass{
		Name:     "Weather",
		Measures: []mdm.Measure{{Name: "TempC", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "City", Dimension: "City"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	return mdm.NewSchema("LastMinuteSales").
		AddDimension(airport).AddDimension(city).AddDimension(date).AddDimension(customer).
		AddFact(sales).AddFact(weather)
}

// routeMiles approximates flight distances between scenario cities.
var routeMiles = map[[2]string]float64{
	{"Barcelona", "Madrid"}: 314, {"Barcelona", "New York"}: 3833,
	{"Barcelona", "Costa Mesa"}: 6073, {"Barcelona", "Seville"}: 514,
	{"Barcelona", "Bilbao"}: 291, {"Madrid", "New York"}: 3589,
	{"Madrid", "Costa Mesa"}: 5828, {"Madrid", "Seville"}: 244,
	{"Madrid", "Bilbao"}: 190, {"New York", "Costa Mesa"}: 2448,
	{"New York", "Seville"}: 3571, {"New York", "Bilbao"}: 3444,
	{"Costa Mesa", "Seville"}: 5810, {"Costa Mesa", "Bilbao"}: 5656,
	{"Seville", "Bilbao"}: 432,
}

func milesBetween(a, b string) float64 {
	if a == b {
		return 0
	}
	if m, ok := routeMiles[[2]string{a, b}]; ok {
		return m
	}
	if m, ok := routeMiles[[2]string{b, a}]; ok {
		return m
	}
	return 1000
}

// PopulateScenario fills the warehouse with the scenario dimensions and a
// deterministic synthetic sales history whose latent driver is the same
// weather series the web corpus publishes: the number of last-minute
// tickets sold to a destination grows with the destination's daily high.
// That latent relationship is what the enriched warehouse must make
// discoverable (the paper's motivating analysis: "the range of
// temperatures that lead to increase the last minute sales to that
// city").
func PopulateScenario(wh ScenarioTarget, year int, months []int, seed int64) error {
	return PopulateScenarioScaled(wh, year, months, seed, 1)
}

// ScenarioTarget is the write surface the scenario population drives —
// a single *dw.Warehouse or a shard.Cluster, which replicates members
// to every shard and routes fact rows by city hash. Both apply the same
// calls in the same order, so member keys (and therefore exported
// dimension state) are identical across topologies.
type ScenarioTarget interface {
	AddMember(dim, level, name string, attrs map[string]string, parentName string) (int, error)
	AddFact(fact string, coords map[string]string, measures map[string]float64) error
}

// PopulateScenarioScaled is PopulateScenario with a demand multiplier: the
// expected number of tickets per (day, destination) grows linearly with
// scale while the noise grows with sqrt(scale), keeping the latent
// weather→sales relationship intact. scale 1 reproduces PopulateScenario
// bit for bit; large scales emit 100k+ fact rows for the scaling
// benchmarks.
func PopulateScenarioScaled(wh ScenarioTarget, year int, months []int, seed int64, scale int) error {
	if scale < 1 {
		scale = 1
	}
	// Dimension members. Insertion order must be deterministic — member
	// ids follow it, and the durable snapshots encode those ids, so two
	// pipelines built from the same config must create members in the
	// same order to export byte-identical state (the seeder's
	// kill-and-resume convergence check compares exactly that).
	cities := map[string]string{} // city → country
	for _, a := range ScenarioAirports {
		cities[a.City] = a.Country
	}
	countryNames := map[string]bool{}
	for _, country := range cities {
		countryNames[country] = true
	}
	for _, c := range sortedKeys(countryNames) {
		if _, err := wh.AddMember("Airport", "Country", c, nil, ""); err != nil {
			return err
		}
		if _, err := wh.AddMember("City", "Country", c, nil, ""); err != nil {
			return err
		}
	}
	for _, city := range sortedKeys(cities) {
		country := cities[city]
		if _, err := wh.AddMember("Airport", "City", city, nil, country); err != nil {
			return err
		}
		if _, err := wh.AddMember("City", "City", city, nil, country); err != nil {
			return err
		}
	}
	for _, a := range ScenarioAirports {
		attrs := map[string]string{"IATA": a.IATA, "Alias": a.Alias}
		if _, err := wh.AddMember("Airport", "Airport", a.Name, attrs, a.City); err != nil {
			return err
		}
	}
	for _, seg := range []string{"Business", "Leisure"} {
		if _, err := wh.AddMember("Customer", "Segment", seg, nil, ""); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	customers := make([]string, 24)
	for i := range customers {
		customers[i] = fmt.Sprintf("Customer-%02d", i+1)
		seg := "Leisure"
		if i%3 == 0 {
			seg = "Business"
		}
		rate := 1 + rng.Float64()*4
		attrs := map[string]string{"Rate": fmt.Sprintf("%.2f", rate)}
		if _, err := wh.AddMember("Customer", "Customer", customers[i], attrs, seg); err != nil {
			return err
		}
	}

	// Date members and fact rows.
	for _, month := range months {
		series := map[string][]webcorpus.WeatherDay{}
		for city := range cities {
			series[city] = webcorpus.WeatherSeries(city, year, month, seed)
		}
		monthKey := fmt.Sprintf("%04d-%02d", year, month)
		yearKey := fmt.Sprintf("%04d", year)
		if _, err := wh.AddMember("Date", "Year", yearKey, nil, ""); err != nil {
			return err
		}
		if _, err := wh.AddMember("Date", "Month", monthKey, nil, yearKey); err != nil {
			return err
		}
		nDays := len(series[ScenarioAirports[0].City])
		for day := 1; day <= nDays; day++ {
			dayKey := fmt.Sprintf("%s-%02d", monthKey, day)
			if _, err := wh.AddMember("Date", "Day", dayKey, nil, monthKey); err != nil {
				return err
			}
			for _, dst := range ScenarioAirports {
				temp := float64(series[dst.City][day-1].HighC)
				// Demand model: warmer destinations attract more
				// last-minute travellers; noise keeps it realistic.
				expected := float64(scale)*(1.5+0.35*temp) + rng.NormFloat64()*1.2*math.Sqrt(float64(scale))
				n := int(math.Round(expected))
				if n < 0 {
					n = 0
				}
				for k := 0; k < n; k++ {
					dep := ScenarioAirports[rng.Intn(len(ScenarioAirports))]
					if dep.Name == dst.Name {
						continue
					}
					miles := milesBetween(dep.City, dst.City)
					price := 60 + rng.Float64()*240 + miles*0.05
					err := wh.AddFact("LastMinuteSales",
						map[string]string{
							"Departure":   dep.Name,
							"Destination": dst.Name,
							"Date":        dayKey,
							"Customer":    customers[rng.Intn(len(customers))],
						},
						map[string]float64{"Price": math.Round(price*100) / 100, "Miles": miles})
					if err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// ScaledOLAPQuery is the canonical workload of the OLAP scaling
// benchmarks: a grouped roll-up (destination country × month) with a dice
// filter on the destination city — the hot path of the BI analysis at
// warehouse scale. bench_test.go and cmd/benchreport share it so
// BENCH_PERF.json measures the same query CI benchmarks.
func ScaledOLAPQuery() dw.Query {
	return dw.Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
		GroupBy: []dw.LevelSel{
			{Role: "Destination", Level: "Country"},
			{Role: "Date", Level: "Month"},
		},
		Filters: []dw.Filter{{
			Role: "Destination", Level: "City",
			Values: []string{"Barcelona", "Madrid", "New York", "Seville"},
		}},
	}
}

// PrepareScaledBenchmark builds a warehouse of at least targetRows sales
// rows and verifies the compiled and reference OLAP engines agree on
// ScaledOLAPQuery before anything is timed. Both benchmark harnesses
// (bench_test.go and cmd/benchreport) share it so BENCH_PERF.json always
// measures exactly what CI's benchmarks measure.
func PrepareScaledBenchmark(targetRows int, seed int64) (*dw.Warehouse, dw.Query, error) {
	wh, err := BuildScaledWarehouse(targetRows, seed)
	if err != nil {
		return nil, dw.Query{}, err
	}
	q := ScaledOLAPQuery()
	got, err := wh.Execute(q)
	if err != nil {
		return nil, dw.Query{}, err
	}
	want, err := wh.ExecuteReference(q)
	if err != nil {
		return nil, dw.Query{}, err
	}
	if err := ResultsAlmostEqual(got, want); err != nil {
		return nil, dw.Query{}, fmt.Errorf("engines diverge over %d rows: %w",
			wh.FactCount("LastMinuteSales"), err)
	}
	return wh, q, nil
}

// RunCompiledOLAP executes the query n times with the compiled engine —
// the exact loop body both benchmark harnesses (bench_test.go and
// cmd/benchreport) time, shared so neither drifts.
func RunCompiledOLAP(wh *dw.Warehouse, q dw.Query, n int) error {
	for i := 0; i < n; i++ {
		if _, err := wh.Execute(q); err != nil {
			return err
		}
	}
	return nil
}

// RunReferenceOLAP is RunCompiledOLAP for the row-at-a-time engine.
func RunReferenceOLAP(wh *dw.Warehouse, q dw.Query, n int) error {
	for i := 0; i < n; i++ {
		if _, err := wh.ExecuteReference(q); err != nil {
			return err
		}
	}
	return nil
}

// RunIRSearchTopK runs the passage search n times — the timed loop body of
// the IR benchmark in both harnesses.
func RunIRSearchTopK(ix *ir.Index, terms []string, k, n int) error {
	for i := 0; i < n; i++ {
		if len(ix.Search(terms, k)) == 0 {
			return fmt.Errorf("search returned no results")
		}
	}
	return nil
}

// ResultsAlmostEqual compares two OLAP results: groups and per-row fact
// counts must match exactly, aggregate values within a small relative
// tolerance. The slack absorbs float association differences between the
// compiled engine's chunk-merged sums and the reference engine's
// sequential sums over non-integer measures (the dw equivalence tests use
// integer measures and assert byte identity; at benchmark scale the prices
// have cents). Returns nil when equivalent.
func ResultsAlmostEqual(a, b *dw.Result) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra.Groups) != len(rb.Groups) {
			return fmt.Errorf("row %d: group arity differs", i)
		}
		for g := range ra.Groups {
			if ra.Groups[g] != rb.Groups[g] {
				return fmt.Errorf("row %d: groups differ: %v vs %v", i, ra.Groups, rb.Groups)
			}
		}
		if ra.Count != rb.Count {
			return fmt.Errorf("row %d %v: counts differ: %d vs %d", i, ra.Groups, ra.Count, rb.Count)
		}
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(ra.Value), math.Abs(rb.Value)))
		if math.Abs(ra.Value-rb.Value) > tol {
			return fmt.Errorf("row %d %v: values differ: %v vs %v", i, ra.Groups, ra.Value, rb.Value)
		}
	}
	return nil
}

// BuildScaledWarehouse returns a Figure 1 warehouse whose LastMinuteSales
// fact holds at least targetRows rows, by probing the unscaled generator
// once and then re-running it with the demand multiplier that reaches the
// target. Deterministic given the seed; used by the scaling benchmarks and
// cmd/benchreport.
func BuildScaledWarehouse(targetRows int, seed int64) (*dw.Warehouse, error) {
	year, months := 2004, []int{1, 2, 3}
	probe, err := dw.New(Figure1Schema())
	if err != nil {
		return nil, err
	}
	if err := PopulateScenario(probe, year, months, seed); err != nil {
		return nil, err
	}
	base := probe.FactCount("LastMinuteSales")
	scale := 1
	if base > 0 && targetRows > base {
		scale = (targetRows + base - 1) / base
	}
	if scale == 1 {
		return probe, nil
	}
	// Demand is expected-linear in scale but noisy, so ceil(target/base)
	// can land just under the floor; bump the scale until the target is
	// actually met.
	for attempt := 0; attempt < 8; attempt++ {
		wh, err := dw.New(Figure1Schema())
		if err != nil {
			return nil, err
		}
		if err := PopulateScenarioScaled(wh, year, months, seed, scale); err != nil {
			return nil, err
		}
		if wh.FactCount("LastMinuteSales") >= targetRows {
			return wh, nil
		}
		scale += 1 + scale/10
	}
	return nil, fmt.Errorf("core: could not reach %d fact rows (base %d)", targetRows, base)
}
