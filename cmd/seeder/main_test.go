package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMainSmoke drives the CLI entrypoint end to end on a tiny
// generated ingestion: flag parsing, config assembly, a real seed.Run
// over a temp data directory, and the summary line. The streaming and
// resume semantics themselves are pinned in internal/seed; this guards
// the flag wiring.
func TestMainSmoke(t *testing.T) {
	dir := t.TempDir()
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{
		"seeder",
		"-data", filepath.Join(dir, "data"),
		"-pages", "32",
		"-batch", "16",
		"-snapshot-every", "-1",
		"-seed", "7",
		"-progress-every", "1",
	}
	main()

	if _, err := os.Stat(filepath.Join(dir, "data", "seeder.ckpt")); err != nil {
		t.Fatalf("CLI run left no checkpoint: %v", err)
	}
}
