package main

import (
	"os"
	"testing"
)

// TestMainSmoke drives the CLI end to end: flag parsing, pipeline boot,
// the Step 1–5 integration, one factoid Ask with candidate printout.
// The QA system itself is pinned in internal/qa; this guards the flag
// wiring and output path.
func TestMainSmoke(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{
		"qacli",
		"-candidates", "2",
		"What is the weather like in January of 2004 in El Prat?",
	}
	main()
}
