// Package ontology implements the domain ontology that mediates between
// the data warehouse and the question answering system (Steps 1-2 of the
// paper's integration model). An ontology holds concepts (derived from the
// UML multidimensional model), subclass and association relations,
// instances (fed from the DW contents) and axioms (the Step 4 tuning
// knowledge: e.g. a temperature is a number followed by a scale, with
// valid intervals and conversion formulae between Celsius and Fahrenheit).
package ontology

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// AttrKind classifies a concept attribute following the UML profile of the
// multidimensional model: fact measures, dimension descriptors, surrogate
// identifiers and plain attributes.
type AttrKind string

// Attribute kinds.
const (
	KindMeasure    AttrKind = "measure"    // fact measure (Price, Miles)
	KindDescriptor AttrKind = "descriptor" // level descriptor (Name)
	KindOID        AttrKind = "oid"        // surrogate identifier
	KindAttribute  AttrKind = "attribute"  // any other attribute
)

// Attribute is a named, typed attribute of a concept.
type Attribute struct {
	Name string
	Kind AttrKind
	Type string // free-form type name: "Float", "String", "Date"...
}

// Relation is a named association from one concept to another, e.g.
// Airport --locatedIn--> City or LastMinuteSales --analyzedBy--> Date.
type Relation struct {
	Name   string
	Target string
}

// Instance is a concrete individual of a concept, carried over from the DW
// contents in Step 2 ("the ontological concept Airport will have instances
// like JFK, John Wayne or La Guardia").
type Instance struct {
	Name       string            // canonical name, e.g. "El Prat"
	Aliases    []string          // alternative names, e.g. "Barcelona-El Prat"
	Properties map[string]string // relation values, e.g. "locatedIn" → "Barcelona"
}

// Concept is an ontological concept: a node in the subclass hierarchy with
// attributes, associations, instances and axioms.
type Concept struct {
	Name       string
	Parents    []string // subclass-of
	Attributes []Attribute
	Relations  []Relation
	Instances  map[string]*Instance
	Axioms     []Axiom
}

// Ontology is a mutable concept graph, safe for concurrent use.
type Ontology struct {
	Name string

	mu       sync.RWMutex
	concepts map[string]*Concept // key: Normalize(name)
}

// New returns an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{Name: name, concepts: make(map[string]*Concept)}
}

// Normalize canonicalises a concept or instance name for lookup: lower
// case, single spaces. Already-canonical names are returned as-is and
// names that only need case folding take the single-allocation ToLower
// path — lookups sit on the QA answer-validation hot path, where the
// general Fields/Join form was a measurable allocation source.
func Normalize(name string) string {
	switch scanNormalized(name) {
	case normYes:
		return name
	case normFold:
		return strings.ToLower(name)
	}
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}

type normState int

const (
	normYes  normState = iota // already canonical
	normFold                  // canonical spacing, needs ASCII case folding only
	normFull                  // needs the general rewrite
)

// scanNormalized classifies how much work Normalize must do. Any
// non-ASCII byte is classified normFull — multi-byte case folding and
// Unicode whitespace are left to the general path.
func scanNormalized(s string) normState {
	st := normYes
	prevSpace := true // a leading space is never canonical
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return normFull
		}
		switch {
		case c == ' ':
			if prevSpace {
				return normFull
			}
			prevSpace = true
		case c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r':
			return normFull
		default:
			if c >= 'A' && c <= 'Z' {
				st = normFold
			}
			prevSpace = false
		}
	}
	if prevSpace && len(s) > 0 {
		return normFull // trailing space
	}
	return st
}

// equalNormalized reports Normalize(a) == Normalize(b) without
// allocating on the all-ASCII path (unit and concept comparisons run per
// answer candidate). Non-ASCII input falls back to the materialised
// comparison.
func equalNormalized(a, b string) bool {
	for i := 0; i < len(a); i++ {
		if a[i] >= 0x80 {
			return Normalize(a) == Normalize(b)
		}
	}
	for j := 0; j < len(b); j++ {
		if b[j] >= 0x80 {
			return Normalize(a) == Normalize(b)
		}
	}
	i, j := skipSpace(a, 0), skipSpace(b, 0)
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		sa, sb := asciiSpace(ca), asciiSpace(cb)
		if sa || sb {
			if !sa || !sb {
				return false
			}
			i, j = skipSpace(a, i), skipSpace(b, j)
			// Both either reached a next word or ran out; loop re-checks.
			continue
		}
		if lowerASCII(ca) != lowerASCII(cb) {
			return false
		}
		i++
		j++
	}
	return skipSpace(a, i) == len(a) && skipSpace(b, j) == len(b)
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

func skipSpace(s string, i int) int {
	for i < len(s) && asciiSpace(s[i]) {
		i++
	}
	return i
}

func lowerASCII(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// AddConcept creates a concept. Creating an existing concept returns the
// existing one (idempotent, since Step 1 and Step 2 may both touch it).
func (o *Ontology) AddConcept(name string) *Concept {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addConceptLocked(name)
}

func (o *Ontology) addConceptLocked(name string) *Concept {
	key := Normalize(name)
	if c, ok := o.concepts[key]; ok {
		return c
	}
	c := &Concept{Name: name, Instances: make(map[string]*Instance)}
	o.concepts[key] = c
	return c
}

// Subclass records that child is-a parent, creating both concepts if
// needed. Duplicate edges are ignored.
func (o *Ontology) Subclass(child, parent string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.addConceptLocked(child)
	o.addConceptLocked(parent)
	pk := Normalize(parent)
	for _, p := range c.Parents {
		if Normalize(p) == pk {
			return
		}
	}
	c.Parents = append(c.Parents, parent)
}

// AddAttribute attaches an attribute to a concept (created if absent).
func (o *Ontology) AddAttribute(concept string, a Attribute) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.addConceptLocked(concept)
	for _, existing := range c.Attributes {
		if existing.Name == a.Name {
			return
		}
	}
	c.Attributes = append(c.Attributes, a)
}

// AddRelation attaches an association from concept to target.
func (o *Ontology) AddRelation(concept string, r Relation) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.addConceptLocked(concept)
	o.addConceptLocked(r.Target)
	for _, existing := range c.Relations {
		if existing.Name == r.Name && Normalize(existing.Target) == Normalize(r.Target) {
			return
		}
	}
	c.Relations = append(c.Relations, r)
}

// AddInstance records an individual of a concept. Re-adding merges aliases
// and properties rather than overwriting.
func (o *Ontology) AddInstance(concept string, inst Instance) *Instance {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.addConceptLocked(concept)
	key := Normalize(inst.Name)
	cur, ok := c.Instances[key]
	if !ok {
		cp := inst
		cp.Properties = map[string]string{}
		for k, v := range inst.Properties {
			cp.Properties[k] = v
		}
		cp.Aliases = append([]string(nil), inst.Aliases...)
		c.Instances[key] = &cp
		return &cp
	}
	for _, a := range inst.Aliases {
		if !containsFold(cur.Aliases, a) {
			cur.Aliases = append(cur.Aliases, a)
		}
	}
	for k, v := range inst.Properties {
		cur.Properties[k] = v
	}
	return cur
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if Normalize(x) == Normalize(s) {
			return true
		}
	}
	return false
}

// Concept returns the concept with the given name, or nil.
func (o *Ontology) Concept(name string) *Concept {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.concepts[Normalize(name)]
}

// Concepts returns all concept names sorted alphabetically.
func (o *Ontology) Concepts() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	names := make([]string, 0, len(o.concepts))
	for _, c := range o.concepts {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of concepts.
func (o *Ontology) Size() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.concepts)
}

// InstanceCount returns the total number of instances across concepts.
func (o *Ontology) InstanceCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := 0
	for _, c := range o.concepts {
		n += len(c.Instances)
	}
	return n
}

// FindInstance locates an instance by name or alias anywhere in the
// ontology, returning its concept and the instance. The search is
// case-insensitive. Returns ("", nil) when absent.
func (o *Ontology) FindInstance(name string) (string, *Instance) {
	key := Normalize(name)
	o.mu.RLock()
	defer o.mu.RUnlock()
	// Deterministic order: scan concepts sorted by name.
	names := make([]string, 0, len(o.concepts))
	for k := range o.concepts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, ck := range names {
		c := o.concepts[ck]
		if inst, ok := c.Instances[key]; ok {
			return c.Name, inst
		}
		for _, inst := range c.Instances {
			if containsFold(inst.Aliases, name) {
				return c.Name, inst
			}
		}
	}
	return "", nil
}

// IsA reports whether concept child is (transitively) a subclass of
// ancestor. A concept IsA itself.
func (o *Ontology) IsA(child, ancestor string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ck, ak := Normalize(child), Normalize(ancestor)
	if ck == ak {
		_, ok := o.concepts[ck]
		return ok
	}
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(cur string) bool {
		if cur == ak {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		c, ok := o.concepts[cur]
		if !ok {
			return false
		}
		for _, p := range c.Parents {
			if walk(Normalize(p)) {
				return true
			}
		}
		return false
	}
	return walk(ck)
}

// Validate checks structural invariants: parents and relation targets
// exist and the subclass graph is acyclic.
func (o *Ontology) Validate() error {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for key, c := range o.concepts {
		for _, p := range c.Parents {
			if _, ok := o.concepts[Normalize(p)]; !ok {
				return fmt.Errorf("ontology %s: concept %q has unknown parent %q", o.Name, c.Name, p)
			}
		}
		for _, r := range c.Relations {
			if _, ok := o.concepts[Normalize(r.Target)]; !ok {
				return fmt.Errorf("ontology %s: concept %q relation %q targets unknown %q", o.Name, c.Name, r.Name, r.Target)
			}
		}
		if err := o.checkAcyclicFrom(key); err != nil {
			return err
		}
	}
	return nil
}

func (o *Ontology) checkAcyclicFrom(start string) error {
	state := map[string]int{} // 0 unvisited, 1 in-stack, 2 done
	var walk func(string) error
	walk = func(cur string) error {
		switch state[cur] {
		case 1:
			return fmt.Errorf("ontology %s: subclass cycle through %q", o.Name, cur)
		case 2:
			return nil
		}
		state[cur] = 1
		if c, ok := o.concepts[cur]; ok {
			for _, p := range c.Parents {
				if err := walk(Normalize(p)); err != nil {
					return err
				}
			}
		}
		state[cur] = 2
		return nil
	}
	return walk(start)
}
