// Package etl implements Step 5 of the paper's integration model: "the QA
// system will feed the DW with the new information extracted from the
// queries posed on the Web". Harvested answers are normalised into
// structured records (temperature – date – city – web page), validated
// against the ontology axioms (unit known, value in the valid interval,
// Fahrenheit converted through the conversion formula), and loaded into a
// Weather fact table with full provenance — the paper stores the web page
// alongside each record "to make the approach robust against errors".
package etl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"dwqa/internal/dw"
	"dwqa/internal/mdm"
	"dwqa/internal/ontology"
	"dwqa/internal/qa"
)

// CanonicalCity returns the canonical member-name form of a city
// mention: whitespace-normalised, with each word's first rune
// upper-cased ("el  prat" → "El Prat") and shouted words folded down
// ("BARCELONA" → "Barcelona"). Normalize, LoadAll, LoadRecords,
// RestoreDedup and the NL→OLAP member grounding all key on this one
// form, so "Barcelona", "barcelona" and "BARCELONA" are the same dedup
// key, the same City member AND the same query filter value — the
// pre-fix code lowercased the dedup key but created members from the
// raw surface form, letting arrival order mint case-variant members for
// records it had already deduplicated, and the grounding path had its
// own title-casing that disagreed with this one on ALL-CAPS mentions.
// Mixed-case words ("McMurdo", "O'Hare") pass through untouched: only a
// fully upper-cased word (more than one letter) is treated as shouting.
func CanonicalCity(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if allUpper(f) {
			r, size := utf8.DecodeRuneInString(f)
			fields[i] = string(r) + strings.ToLower(f[size:])
			continue
		}
		r, size := utf8.DecodeRuneInString(f)
		if unicode.IsLower(r) {
			fields[i] = string(unicode.ToUpper(r)) + f[size:]
		}
	}
	return strings.Join(fields, " ")
}

// allUpper reports whether the word consists of at least two letters,
// all upper-case (ignoring non-letters, so "NEW-YORK" counts).
func allUpper(s string) bool {
	letters := 0
	for _, r := range s {
		if !unicode.IsLetter(r) {
			continue
		}
		if !unicode.IsUpper(r) {
			return false
		}
		letters++
	}
	return letters > 1
}

// WeatherRecord is a normalised (temperature – date – city – web page)
// tuple ready for warehouse loading. TempC is always Celsius.
type WeatherRecord struct {
	City      string
	Year      int
	Month     int
	Day       int
	TempC     float64
	SourceURL string
	Score     float64 // extraction confidence carried from the QA system
}

// DayKey renders the Date-dimension member name for the record's day.
func (r WeatherRecord) DayKey() string {
	return fmt.Sprintf("%04d-%02d-%02d", r.Year, r.Month, r.Day)
}

// MonthKey renders the Date-dimension member name for the record's month.
func (r WeatherRecord) MonthKey() string {
	return fmt.Sprintf("%04d-%02d", r.Year, r.Month)
}

// YearKey renders the Date-dimension member name for the record's year.
func (r WeatherRecord) YearKey() string { return fmt.Sprintf("%04d", r.Year) }

// Rejection explains why an answer did not become a record.
type Rejection struct {
	Answer qa.Answer
	Reason string
}

// Report summarises one load.
type Report struct {
	Normalized int
	Loaded     int
	Skipped    int // duplicates of already-loaded records
	Rejections []Rejection
}

// String renders a compact summary.
func (r *Report) String() string {
	return fmt.Sprintf("etl: %d normalized, %d loaded, %d duplicates skipped, %d rejected",
		r.Normalized, r.Loaded, r.Skipped, len(r.Rejections))
}

// RejectionReasons aggregates rejection counts by reason, sorted.
func (r *Report) RejectionReasons() []string {
	counts := map[string]int{}
	for _, rej := range r.Rejections {
		counts[rej.Reason]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s ×%d", k, counts[k]))
	}
	return out
}

// Loader normalises QA answers and feeds them into a warehouse fact. It
// deduplicates across its lifetime: re-harvesting the same (city, day)
// from the same source page does not duplicate fact rows, so repeated
// Step 5 runs are idempotent. A Loader is safe for concurrent use; loads
// are serialised by an internal mutex (the parallel harvest in
// internal/engine extracts concurrently, then commits through one
// Loader).
type Loader struct {
	dom     *ontology.Ontology // axioms; may be nil (built-in fallbacks)
	wh      Warehouse
	fact    string // Weather fact name
	cityDim string // dimension holding the City base level
	dateDim string // dimension holding the Day base level

	mu     sync.Mutex
	loaded map[string]bool // dedup key: city|day|source
}

// Warehouse is what the loader needs from its OLAP back end: schema
// introspection, the atomic member+rows transaction, parent walks for
// roll-up invalidation reporting, and the fact scan that rebuilds dedup
// state after recovery. A single *dw.Warehouse satisfies it directly; a
// sharded cluster satisfies it by routing rows to their owning shards
// (internal/shard).
type Warehouse interface {
	Schema() *mdm.Schema
	AddBatch(specs []dw.MemberSpec, fact string, rows []dw.FactRow) error
	ParentName(dim, level, name string) (string, error)
	ScanFact(fact string, roles []string, fn func(row int, names []string, provenance string) error) error
}

// NewLoader builds a loader for a warehouse whose schema contains the
// weather fact with a City-based role and a Date role.
func NewLoader(dom *ontology.Ontology, wh Warehouse, fact, cityDim, dateDim string) (*Loader, error) {
	if wh == nil {
		return nil, fmt.Errorf("etl: nil warehouse")
	}
	if wh.Schema().Fact(fact) == nil {
		return nil, fmt.Errorf("etl: warehouse has no fact %q", fact)
	}
	for _, dim := range []string{cityDim, dateDim} {
		if wh.Schema().Dimension(dim) == nil {
			return nil, fmt.Errorf("etl: warehouse has no dimension %q", dim)
		}
	}
	return &Loader{
		dom: dom, wh: wh, fact: fact, cityDim: cityDim, dateDim: dateDim,
		loaded: make(map[string]bool),
	}, nil
}

// RestoreDedup rebuilds the loader's dedup state from the warehouse
// itself: every existing fact row's (city, day, source-page) key is
// marked loaded, exactly as if this Loader had loaded it. Recovery calls
// it after restoring a snapshot, so a re-run of the same harvest skips
// every record that survived the crash instead of duplicating it — the
// property that makes "recover, then re-feed" converge on the
// uninterrupted run's state. It returns the number of keys restored.
func (l *Loader) RestoreDedup() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	restored := 0
	err := l.wh.ScanFact(l.fact, []string{"City", "Date"}, func(row int, names []string, prov string) error {
		// Member names are canonical by construction (every load path
		// goes through CanonicalCity), so the scanned name IS the dedup
		// key's city form — no case folding, or the key would diverge
		// from the member again.
		key := names[0] + "|" + names[1] + "|" + prov
		if !l.loaded[key] {
			l.loaded[key] = true
			restored++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("etl: restoring dedup state: %w", err)
	}
	return restored, nil
}

// Normalize converts one QA answer into a weather record, applying the
// ontology's conversion and range axioms. It returns a reason string when
// the answer must be rejected.
func (l *Loader) Normalize(ans qa.Answer) (WeatherRecord, string) {
	if !ans.HasValue {
		return WeatherRecord{}, "no numeric value"
	}
	if ans.Location == "" {
		return WeatherRecord{}, "no location"
	}
	if ans.Date.Year == 0 || ans.Date.Month == 0 || ans.Date.Day == 0 {
		return WeatherRecord{}, "incomplete date"
	}
	tempC := ans.Value
	switch strings.ToUpper(ans.Unit) {
	case "C", "ºC", "°C", "":
		// Unitless values are assumed Celsius but validated below; the
		// assumption mirrors the robustness fallback of §4.2.
	case "F", "ºF", "°F":
		tempC = l.convertFtoC(ans.Value)
	default:
		return WeatherRecord{}, "unknown unit " + ans.Unit
	}
	if !l.inRange(tempC) {
		return WeatherRecord{}, fmt.Sprintf("out of range: %.1fC", tempC)
	}
	return WeatherRecord{
		City: CanonicalCity(ans.Location),
		Year: ans.Date.Year, Month: ans.Date.Month, Day: ans.Date.Day,
		TempC: tempC, SourceURL: ans.URL, Score: ans.Score,
	}, ""
}

func (l *Loader) convertFtoC(v float64) float64 {
	if l.dom != nil {
		if c, err := l.dom.Convert("Temperature", v, "F", "C"); err == nil {
			return c
		}
	}
	return (v - 32) / 1.8
}

func (l *Loader) inRange(tempC float64) bool {
	if l.dom != nil {
		if ok, err := l.dom.InRange("Temperature", tempC, "C"); err == nil {
			return ok
		}
	}
	return tempC >= -90 && tempC <= 60
}

// TouchedMember names one dimension member a committed load wrote rows
// under or aggregated into (ancestors included).
type TouchedMember struct {
	Dim   string
	Level string
	Name  string
}

// Touched is the write footprint of one committed load: every dimension
// member a committed row's coordinates name — with the full ancestor
// closure, so a query filtered at a coarser level (Country when rows
// landed under a City) still intersects — plus the facts that gained
// rows. The serving engine turns it into cache-invalidation tags: a
// feed evicts only the cached answers whose dependencies intersect this
// set, instead of flushing everything. Over-reporting is safe (spurious
// evictions); under-reporting would serve stale answers, so the set is
// built from the same member specs the warehouse transaction committed.
type Touched struct {
	Members []TouchedMember
	Facts   []string // facts that gained rows
}

// Empty reports whether the load changed nothing a cached answer could
// depend on (everything deduplicated or rejected).
func (t *Touched) Empty() bool {
	return t == nil || (len(t.Members) == 0 && len(t.Facts) == 0)
}

// Load normalises and loads a batch of QA answers, creating the needed
// Date and City dimension members on the fly. Every loaded fact row
// carries the source URL as provenance.
func (l *Loader) Load(answers []qa.Answer) (*Report, error) {
	reports, _, _, err := l.LoadAll([][]qa.Answer{answers})
	if err != nil {
		return nil, err
	}
	return reports[0], nil
}

// LoadAll normalises and loads a sequence of answer batches (one per
// harvest question) in order, committing all dimension members and fact
// rows in ONE warehouse transaction (dw.AddBatch): either every member
// and every row lands — journalled as a single combined WAL record — or
// nothing does, so a failed feed can no longer strand members without
// their rows or abandon dedup keys. Deduplication is identical to
// looping Load over the batches: within the call and across the
// Loader's lifetime, only the first (city, day, source) record loads;
// later duplicates count as skipped in their batch's report. It returns
// one report per batch, the combined report, and the commit's write
// footprint (nil Touched members/facts when nothing new landed).
func (l *Loader) LoadAll(batches [][]qa.Answer) ([]*Report, *Report, *Touched, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	reports := make([]*Report, len(batches))
	recBatches := make([][]WeatherRecord, len(batches))
	for bi, answers := range batches {
		rep := &Report{}
		reports[bi] = rep
		for _, ans := range answers {
			rec, reason := l.Normalize(ans)
			if reason != "" {
				rep.Rejections = append(rep.Rejections, Rejection{ans, reason})
				continue
			}
			rep.Normalized++
			recBatches[bi] = append(recBatches[bi], rec)
		}
	}
	touched, err := l.commitLocked(recBatches, reports)
	if err != nil {
		return nil, nil, nil, err
	}
	total := &Report{}
	for _, rep := range reports {
		total.Normalized += rep.Normalized
		total.Loaded += rep.Loaded
		total.Skipped += rep.Skipped
		total.Rejections = append(total.Rejections, rep.Rejections...)
	}
	return reports, total, touched, nil
}

// LoadRecords loads a batch of already-normalised records in one atomic
// warehouse transaction — the streaming seeder's commit unit. City names
// are canonicalised (CanonicalCity) so the dedup key and the member name
// agree with every other load path; records with no city are rejected.
// It returns the batch report and the commit's write footprint.
func (l *Loader) LoadRecords(recs []WeatherRecord) (*Report, *Touched, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := &Report{}
	batch := make([]WeatherRecord, 0, len(recs))
	for _, rec := range recs {
		rec.City = CanonicalCity(rec.City)
		if rec.City == "" {
			rep.Rejections = append(rep.Rejections, Rejection{Reason: "no location"})
			continue
		}
		rep.Normalized++
		batch = append(batch, rec)
	}
	touched, err := l.commitLocked([][]WeatherRecord{batch}, []*Report{rep})
	if err != nil {
		return nil, nil, err
	}
	return rep, touched, nil
}

// LoadRecord loads one normalised record into the warehouse. It reports
// whether the record was stored: records already loaded by this Loader
// (same city, day and source page) are skipped, making repeated Step 5
// runs idempotent.
func (l *Loader) LoadRecord(rec WeatherRecord) (bool, error) {
	rep, _, err := l.LoadRecords([]WeatherRecord{rec})
	if err != nil {
		return false, err
	}
	if len(rep.Rejections) > 0 {
		return false, fmt.Errorf("etl: %s", rep.Rejections[0].Reason)
	}
	return rep.Loaded == 1, nil
}

// commitLocked deduplicates the record batches, commits the needed
// members and fact rows as one warehouse transaction, marks the dedup
// keys loaded and fills in the per-batch Loaded/Skipped counts. Caller
// holds l.mu. Records are assumed canonicalised (Normalize or
// LoadRecords did it).
func (l *Loader) commitLocked(recBatches [][]WeatherRecord, reports []*Report) (*Touched, error) {
	var memberSpecs []dw.MemberSpec
	seenMember := map[string]bool{}
	ensureMember := func(dim, level, name, parent string) {
		k := dim + "|" + level + "|" + name
		if !seenMember[k] {
			seenMember[k] = true
			memberSpecs = append(memberSpecs, dw.MemberSpec{Dim: dim, Level: level, Name: name, Parent: parent})
		}
	}
	type pendingRow struct {
		batch int
		key   string
	}
	var rows []dw.FactRow
	var pendings []pendingRow
	inFlight := map[string]bool{}

	for bi, recs := range recBatches {
		rep := reports[bi]
		for _, rec := range recs {
			// The dedup key's city form IS the member name — one
			// canonical form end to end (CanonicalCity), never a
			// case-folded variant of it.
			key := rec.City + "|" + rec.DayKey() + "|" + rec.SourceURL
			if l.loaded[key] || inFlight[key] {
				rep.Skipped++
				continue
			}
			inFlight[key] = true
			// Date hierarchy and city members (idempotent adds, parents
			// first so the batch insert can resolve them).
			ensureMember(l.dateDim, "Year", rec.YearKey(), "")
			ensureMember(l.dateDim, "Month", rec.MonthKey(), rec.YearKey())
			ensureMember(l.dateDim, "Day", rec.DayKey(), rec.MonthKey())
			ensureMember(l.cityDim, "City", rec.City, "")
			rows = append(rows, dw.FactRow{
				Coords:     map[string]string{"City": rec.City, "Date": rec.DayKey()},
				Measures:   map[string]float64{"TempC": rec.TempC},
				Provenance: rec.SourceURL,
			})
			pendings = append(pendings, pendingRow{batch: bi, key: key})
		}
	}

	// One transaction: members and rows land together or not at all, and
	// the dedup keys below are marked only after the commit is acked.
	if err := l.wh.AddBatch(memberSpecs, l.fact, rows); err != nil {
		return nil, fmt.Errorf("etl: %w", err)
	}
	for _, p := range pendings {
		l.loaded[p.key] = true
		reports[p.batch].Loaded++
	}
	return l.touchedFrom(memberSpecs, len(rows)), nil
}

// touchedFrom expands the committed member specs into the full touch
// set: each spec'd member plus its ancestor chain up the dimension
// hierarchy (the Date specs carry their own Year/Month parents; City
// members need the walk to reach their Country, so Country-level
// filters see the touch).
func (l *Loader) touchedFrom(specs []dw.MemberSpec, rowsLoaded int) *Touched {
	t := &Touched{}
	if len(specs) == 0 && rowsLoaded == 0 {
		return t
	}
	seen := map[TouchedMember]bool{}
	add := func(m TouchedMember) bool {
		if seen[m] {
			return false
		}
		seen[m] = true
		t.Members = append(t.Members, m)
		return true
	}
	for _, s := range specs {
		add(TouchedMember{Dim: s.Dim, Level: s.Level, Name: s.Name})
		dim := l.wh.Schema().Dimension(s.Dim)
		if dim == nil {
			continue
		}
		level, name := s.Level, s.Name
		for {
			lvl := dim.Level(level)
			if lvl == nil || lvl.RollsUpTo == "" {
				break
			}
			parent, err := l.wh.ParentName(s.Dim, level, name)
			if err != nil || parent == "" {
				break
			}
			level, name = lvl.RollsUpTo, parent
			if !add(TouchedMember{Dim: s.Dim, Level: level, Name: name}) {
				break // ancestors of a seen member are already in
			}
		}
	}
	if rowsLoaded > 0 {
		t.Facts = append(t.Facts, l.fact)
	}
	return t
}
