package core

import (
	"fmt"
	"reflect"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/ontology"
	"dwqa/internal/store"
	"dwqa/internal/uml2onto"
)

// The restore-vs-refeed benchmark harness behind BenchmarkSnapshotRestore
// and cmd/benchreport's store_snapshot_restore block. The claim under
// measurement is the tentpole durability property: bringing the system
// back from a snapshot (decode + bulk column/posting load) must beat
// rebuilding the same state through the feed path (re-tokenise, re-tag,
// re-lemmatise, re-intern, re-window the corpus; re-resolve every fact
// row) by an order of magnitude at the 100k scale.

// StoreBench holds one prepared scale: the encoded snapshot the restore
// arm decodes, and the inputs of the two rebuild baselines —
//
//   - refeed: the product's actual snapshotless cold boot, which must
//     regenerate the corpus pages, re-extract their text, re-analyse and
//     re-index every document and regenerate the warehouse (what
//     OpenPipeline does on a fresh directory);
//   - reindex: a deliberately conservative baseline that is handed the
//     already-extracted document text and the already-resolved member/
//     fact batches, paying only re-analysis, re-indexing and re-loading.
type StoreBench struct {
	SnapBytes []byte // encoded store.State (warehouse + index + ontology)

	// Cold-boot regeneration parameters (the refeed arm).
	TargetPassages int
	TargetRows     int
	Seed           int64

	// Reindex inputs, reconstructed from the same state.
	Docs      []ir.Document
	Members   []dw.MemberSpec         // parents before children
	FactRows  map[string][]dw.FactRow // fact → rows in insertion order
	FactOrder []string                // deterministic fact iteration order

	Passages    int
	Rows        int
	MemberCount int

	// Posting-storage footprint of the prepared index (compressed bytes
	// held and postings stored) — the compression-ratio metric
	// BENCH_PERF.json tracks against the 8-bytes-per-posting fixed-width
	// baseline.
	PostingsBytes int
	PostingsCount int
}

// PrepareStoreBenchmark builds the scaled state (a BuildScaledCorpus
// index and a BuildScaledWarehouse warehouse plus the derived ontology),
// encodes its snapshot, derives the refeed inputs, and verifies both arms
// reproduce the state exactly before anything is timed.
func PrepareStoreBenchmark(targetPassages, targetRows int, seed int64) (*StoreBench, error) {
	sc, err := BuildScaledCorpus(targetPassages, seed)
	if err != nil {
		return nil, err
	}
	wh, err := BuildScaledWarehouse(targetRows, seed)
	if err != nil {
		return nil, err
	}
	onto, err := uml2onto.Transform(Figure1Schema())
	if err != nil {
		return nil, err
	}

	state := &store.State{DW: wh.Export(), IR: sc.Index.Export(), Onto: onto.Export()}
	b := &StoreBench{
		SnapBytes:      store.EncodeState(state),
		TargetPassages: targetPassages,
		TargetRows:     targetRows,
		Seed:           seed,
		Passages:       sc.Index.PassageCount(),
	}
	b.MemberCount, b.Rows = wh.Counts()
	b.PostingsBytes, b.PostingsCount = sc.Index.PostingsBytes()

	// Refeed inputs come from the snapshot itself, so both arms rebuild
	// exactly the same state.
	b.Docs = append([]ir.Document(nil), state.IR.Docs...)
	b.Members, err = memberSpecsFromSnapshot(state.DW)
	if err != nil {
		return nil, err
	}
	b.FactRows, b.FactOrder, err = factRowsFromSnapshot(state.DW)
	if err != nil {
		return nil, err
	}

	// Equivalence gate: one restore, one cold refeed and one reindex must
	// all reproduce the exported state byte-for-byte.
	rwh, rix, ronto, err := restoreOnce(b.SnapBytes)
	if err != nil {
		return nil, fmt.Errorf("core: store bench restore arm: %w", err)
	}
	if err := statesEqual(exportAll(rwh, rix, ronto), state); err != nil {
		return nil, fmt.Errorf("core: store bench restore arm diverges: %w", err)
	}
	// The cold refeed regenerates the scenario, whose member insertion
	// order (hence surrogate keys) is not stable across runs — names and
	// aggregates are. Gate it on the index bytes plus warehouse counts
	// and query results rather than raw keys.
	cwh, cix, conto, err := refeedOnce(b)
	if err != nil {
		return nil, fmt.Errorf("core: store bench refeed arm: %w", err)
	}
	if !reflect.DeepEqual(cix.Export(), state.IR) {
		return nil, fmt.Errorf("core: store bench refeed arm diverges: index state")
	}
	if !reflect.DeepEqual(conto.Export(), state.Onto) {
		return nil, fmt.Errorf("core: store bench refeed arm diverges: ontology state")
	}
	if m, r := cwh.Counts(); m != b.MemberCount || r != b.Rows {
		return nil, fmt.Errorf("core: store bench refeed arm diverges: %d/%d members/rows, want %d/%d",
			m, r, b.MemberCount, b.Rows)
	}
	q := ScaledOLAPQuery()
	wantRes, err := rwh.Execute(q)
	if err != nil {
		return nil, err
	}
	gotRes, err := cwh.Execute(q)
	if err != nil {
		return nil, err
	}
	if err := ResultsAlmostEqual(gotRes, wantRes); err != nil {
		return nil, fmt.Errorf("core: store bench refeed arm diverges: %w", err)
	}
	fwh, fix, fonto, err := reindexOnce(b)
	if err != nil {
		return nil, fmt.Errorf("core: store bench reindex arm: %w", err)
	}
	if err := statesEqual(exportAll(fwh, fix, fonto), state); err != nil {
		return nil, fmt.Errorf("core: store bench reindex arm diverges: %w", err)
	}
	return b, nil
}

// PrepareFootprintBenchmark builds the snapshot-restore inputs at an
// arbitrary (possibly very large) scale. PrepareStoreBenchmark's full
// refeed/reindex verification regenerates the corpus several times —
// prohibitive at 1M passages on one core — so this variant pairs the
// scaled index with a small warehouse and verifies the restore arm only.
// It backs the gated large-corpus memory-footprint tier of
// BENCH_PERF.json.
func PrepareFootprintBenchmark(targetPassages int, seed int64) (*StoreBench, error) {
	sc, err := BuildScaledCorpus(targetPassages, seed)
	if err != nil {
		return nil, err
	}
	wh, err := BuildScaledWarehouse(1_000, seed)
	if err != nil {
		return nil, err
	}
	onto, err := uml2onto.Transform(Figure1Schema())
	if err != nil {
		return nil, err
	}
	state := &store.State{DW: wh.Export(), IR: sc.Index.Export(), Onto: onto.Export()}
	b := &StoreBench{
		SnapBytes:      store.EncodeState(state),
		TargetPassages: targetPassages,
		Seed:           seed,
		Passages:       sc.Index.PassageCount(),
	}
	b.MemberCount, b.Rows = wh.Counts()
	b.PostingsBytes, b.PostingsCount = sc.Index.PostingsBytes()
	rwh, rix, ronto, err := restoreOnce(b.SnapBytes)
	if err != nil {
		return nil, fmt.Errorf("core: footprint bench restore arm: %w", err)
	}
	if err := statesEqual(exportAll(rwh, rix, ronto), state); err != nil {
		return nil, fmt.Errorf("core: footprint bench restore arm diverges: %w", err)
	}
	return b, nil
}

// exportAll re-exports live structures for the equivalence gate.
func exportAll(wh *dw.Warehouse, ix *ir.Index, onto *ontology.Ontology) *store.State {
	return &store.State{DW: wh.Export(), IR: ix.Export(), Onto: onto.Export()}
}

// memberSpecsFromSnapshot converts level tables back to insertion specs,
// ordering levels so parents exist before their children (hierarchy tops
// first). Within a level, members come in surrogate-key order, so the
// refeed assigns identical keys.
func memberSpecsFromSnapshot(snap *dw.Snapshot) ([]dw.MemberSpec, error) {
	var specs []dw.MemberSpec
	schema := Figure1Schema()
	for _, ds := range snap.Dims {
		dc := schema.Dimension(ds.Dim)
		if dc == nil {
			return nil, fmt.Errorf("core: snapshot dimension %q not in schema", ds.Dim)
		}
		byName := map[string]dw.LevelSnapshot{}
		for _, ls := range ds.Levels {
			byName[ls.Level] = ls
		}
		// Topological order: emit a level only after its RollsUpTo level.
		emitted := map[string]bool{}
		var order []string
		var emit func(level string) error
		emit = func(level string) error {
			if emitted[level] {
				return nil
			}
			lvl := dc.Level(level)
			if lvl == nil {
				return fmt.Errorf("core: snapshot level %q not in dimension %q", level, ds.Dim)
			}
			if lvl.RollsUpTo != "" {
				if err := emit(lvl.RollsUpTo); err != nil {
					return err
				}
			}
			emitted[level] = true
			order = append(order, level)
			return nil
		}
		for _, ls := range ds.Levels {
			if err := emit(ls.Level); err != nil {
				return nil, err
			}
		}
		for _, level := range order {
			ls := byName[level]
			lvl := dc.Level(level)
			parentTable := dw.LevelSnapshot{}
			if lvl.RollsUpTo != "" {
				parentTable = byName[lvl.RollsUpTo]
			}
			for _, m := range ls.Members {
				spec := dw.MemberSpec{Dim: ds.Dim, Level: level, Name: m.Name, Attrs: m.Attrs}
				if m.Parent >= 0 && lvl.RollsUpTo != "" {
					if m.Parent >= len(parentTable.Members) {
						return nil, fmt.Errorf("core: member %s.%s/%s parent key %d out of range", ds.Dim, level, m.Name, m.Parent)
					}
					spec.Parent = parentTable.Members[m.Parent].Name
				}
				specs = append(specs, spec)
			}
		}
	}
	return specs, nil
}

// factRowsFromSnapshot converts columnar fact data back into named rows.
func factRowsFromSnapshot(snap *dw.Snapshot) (map[string][]dw.FactRow, []string, error) {
	schema := Figure1Schema()
	levelMembers := map[string][]dw.Member{} // "dim/level" → members
	for _, ds := range snap.Dims {
		for _, ls := range ds.Levels {
			levelMembers[ds.Dim+"/"+ls.Level] = ls.Members
		}
	}
	out := map[string][]dw.FactRow{}
	var order []string
	for _, fs := range snap.Facts {
		fc := schema.Fact(fs.Fact)
		if fc == nil {
			return nil, nil, fmt.Errorf("core: snapshot fact %q not in schema", fs.Fact)
		}
		prov := map[int]string{}
		for i, r := range fs.ProvRows {
			prov[int(r)] = fs.ProvVals[i]
		}
		baseMembers := make([][]dw.Member, len(fc.Dimensions))
		for i, ref := range fc.Dimensions {
			dc := schema.Dimension(ref.Dimension)
			baseMembers[i] = levelMembers[ref.Dimension+"/"+dc.Base().Name]
		}
		rows := make([]dw.FactRow, fs.Rows)
		for r := 0; r < fs.Rows; r++ {
			coords := make(map[string]string, len(fc.Dimensions))
			for i, ref := range fc.Dimensions {
				key := int(fs.Coords[i][r])
				if key < 0 || key >= len(baseMembers[i]) {
					return nil, nil, fmt.Errorf("core: fact %q row %d key %d out of range", fs.Fact, r, key)
				}
				coords[ref.Role] = baseMembers[i][key].Name
			}
			measures := make(map[string]float64, len(fc.Measures))
			for i, m := range fc.Measures {
				measures[m.Name] = fs.Measures[i][r]
			}
			rows[r] = dw.FactRow{Coords: coords, Measures: measures, Provenance: prov[r]}
		}
		out[fs.Fact] = rows
		order = append(order, fs.Fact)
	}
	return out, order, nil
}

// restoreOnce is one restore-arm iteration: decode the snapshot and bulk
// load warehouse, index and ontology.
func restoreOnce(snapBytes []byte) (*dw.Warehouse, *ir.Index, *ontology.Ontology, error) {
	state, err := store.DecodeState(snapBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	wh, err := dw.New(Figure1Schema())
	if err != nil {
		return nil, nil, nil, err
	}
	if err := wh.Import(state.DW); err != nil {
		return nil, nil, nil, err
	}
	ix := ir.NewIndex()
	if err := ix.Import(state.IR); err != nil {
		return nil, nil, nil, err
	}
	onto, err := ontology.FromSnapshot(state.Onto)
	if err != nil {
		return nil, nil, nil, err
	}
	return wh, ix, onto, nil
}

// refeedOnce is one cold-refeed iteration: the boot a snapshotless
// system pays at this scale — regenerate the corpus pages, re-extract
// their text, re-analyse and re-index every document, regenerate and
// re-load the warehouse, re-derive the ontology. This is exactly the
// fresh-directory path of OpenPipeline, at benchmark scale.
func refeedOnce(b *StoreBench) (*dw.Warehouse, *ir.Index, *ontology.Ontology, error) {
	sc, err := BuildScaledCorpus(b.TargetPassages, b.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	wh, err := BuildScaledWarehouse(b.TargetRows, b.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	onto, err := uml2onto.Transform(Figure1Schema())
	if err != nil {
		return nil, nil, nil, err
	}
	return wh, sc.Index, onto, nil
}

// reindexOnce is one reindex-arm iteration: the conservative rebuild
// baseline that already holds the extracted text and resolved batches.
func reindexOnce(b *StoreBench) (*dw.Warehouse, *ir.Index, *ontology.Ontology, error) {
	wh, err := dw.New(Figure1Schema())
	if err != nil {
		return nil, nil, nil, err
	}
	if err := wh.AddMembers(b.Members); err != nil {
		return nil, nil, nil, err
	}
	for _, fact := range b.FactOrder {
		if err := wh.AddFactRows(fact, b.FactRows[fact]); err != nil {
			return nil, nil, nil, err
		}
	}
	ix := ir.NewIndex()
	if err := ix.AddAll(b.Docs); err != nil {
		return nil, nil, nil, err
	}
	onto, err := uml2onto.Transform(Figure1Schema())
	if err != nil {
		return nil, nil, nil, err
	}
	return wh, ix, onto, nil
}

func statesEqual(got, want *store.State) error {
	if !reflect.DeepEqual(got.DW, want.DW) {
		return fmt.Errorf("warehouse state diverges")
	}
	if !reflect.DeepEqual(got.IR, want.IR) {
		return fmt.Errorf("index state diverges")
	}
	if !reflect.DeepEqual(got.Onto, want.Onto) {
		return fmt.Errorf("ontology state diverges")
	}
	return nil
}

// RestoreState decodes a snapshot and bulk-loads warehouse, index and
// ontology — one restore-arm iteration, exported so the footprint tier
// can hold a restored state live while sampling residency.
func RestoreState(snapBytes []byte) (*dw.Warehouse, *ir.Index, *ontology.Ontology, error) {
	return restoreOnce(snapBytes)
}

// RunSnapshotRestore runs n restore-arm iterations — the timed loop body
// of BenchmarkSnapshotRestore.
func RunSnapshotRestore(b *StoreBench, n int) error {
	for i := 0; i < n; i++ {
		if _, _, _, err := restoreOnce(b.SnapBytes); err != nil {
			return err
		}
	}
	return nil
}

// RunStoreRefeed runs n cold-refeed iterations — the headline baseline
// the restore speedup is measured against.
func RunStoreRefeed(b *StoreBench, n int) error {
	for i := 0; i < n; i++ {
		if _, _, _, err := refeedOnce(b); err != nil {
			return err
		}
	}
	return nil
}

// RunStoreReindex runs n reindex-arm iterations — the conservative
// secondary baseline (extracted text and resolved batches in hand).
func RunStoreReindex(b *StoreBench, n int) error {
	for i := 0; i < n; i++ {
		if _, _, _, err := reindexOnce(b); err != nil {
			return err
		}
	}
	return nil
}

// PrepareWALReplayBenchmark encodes the scaled warehouse's fact rows as
// WAL-sized batches in a real store directory and returns a replay
// runner plus the record count. dir must be empty and writable.
func PrepareWALReplayBenchmark(dir string, targetRows int, seed int64, batchSize int) (runner func(n int) error, records int, err error) {
	wh, err := BuildScaledWarehouse(targetRows, seed)
	if err != nil {
		return nil, 0, err
	}
	snap := wh.Export()
	members, err := memberSpecsFromSnapshot(snap)
	if err != nil {
		return nil, 0, err
	}
	factRows, factOrder, err := factRowsFromSnapshot(snap)
	if err != nil {
		return nil, 0, err
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, 0, err
	}
	if err := st.LogMembers(members); err != nil {
		return nil, 0, err
	}
	records = 1
	for _, fact := range factOrder {
		rows := factRows[fact]
		for start := 0; start < len(rows); start += batchSize {
			end := min(start+batchSize, len(rows))
			if err := st.LogFactRows(fact, rows[start:end]); err != nil {
				return nil, 0, err
			}
			records++
		}
	}
	if err := st.Close(); err != nil {
		return nil, 0, err
	}
	wantMembers, wantRows := wh.Counts()

	runner = func(n int) error {
		for i := 0; i < n; i++ {
			st, err := store.Open(dir)
			if err != nil {
				return err
			}
			fresh, err := dw.New(Figure1Schema())
			if err != nil {
				st.Close()
				return err
			}
			applied, err := st.Replay(0, store.ReplayHandlers{
				Members:  fresh.AddMembers,
				FactRows: func(fact string, rows []dw.FactRow) error { return fresh.AddFactRows(fact, rows) },
			})
			st.Close()
			if err != nil {
				return err
			}
			if applied != records {
				return fmt.Errorf("replayed %d of %d records", applied, records)
			}
			if m, r := fresh.Counts(); m != wantMembers || r != wantRows {
				return fmt.Errorf("replay rebuilt %d/%d members/rows, want %d/%d", m, r, wantMembers, wantRows)
			}
		}
		return nil
	}
	return runner, records, nil
}
